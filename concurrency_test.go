package pathcost

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// freshSystem trains a private small system for tests that mutate
// system state (probe hooks, cache toggling) and therefore must not
// share the package-wide testSystem fixture.
func freshSystem(t testing.TB) *System {
	t.Helper()
	params := DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	s, err := Synthesize(SynthesizeConfig{Preset: "test", Trips: 2000, Seed: 5, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// pollUntil waits up to 5 s for cond; it marks the test failed on
// timeout but returns (Errorf, not Fatalf) so callers on any
// goroutine can still unblock their peers before bailing out.
func pollUntil(t *testing.T, cond func() bool, msg string) bool {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Errorf("timeout waiting for %s", msg)
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// densePath returns a trajectory-backed query path and a departure
// time inside its populated α-interval.
func densePath(t testing.TB, s *System) (Path, float64) {
	t.Helper()
	for _, card := range []int{4, 3, 2} {
		if dense := s.DensePaths(card, 10); len(dense) > 0 {
			lo, _ := s.Params.IntervalBounds(dense[0].Interval)
			return dense[0].Path, lo + 1
		}
	}
	t.Fatal("no dense paths in test workload")
	return nil, 0
}

// TestPathDistributionSingleflightExactlyOnce proves the stampede fix
// end to end: K concurrent misses on one (path, α-interval, method)
// key run exactly one underlying CostDistribution computation, and
// every caller receives the same shared result. The computation count
// is observed via the compute probe hook; determinism comes from
// blocking the leader inside the probe until every follower is parked
// on the in-flight call.
func TestPathDistributionSingleflightExactlyOnce(t *testing.T) {
	s := freshSystem(t)
	s.EnableQueryCache(64)
	p, depart := densePath(t, s)
	key := s.queryKey(s.CurrentEpoch(), p, depart, OD)

	const callers = 16
	var execs atomic.Int32
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	s.computeProbe = func() {
		if execs.Add(1) == 1 {
			close(leaderIn)
			<-release
		}
	}

	var wg sync.WaitGroup
	results := make([]*QueryResult, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.PathDistribution(p, depart, OD)
		}(i)
	}

	<-leaderIn
	pollUntil(t, func() bool { return s.flight.Waiting(key) == callers-1 },
		"all followers parked on the flight")
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("%d concurrent misses ran %d computations, want exactly 1", callers, n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d received a different result object; stampede survivors should share one", i)
		}
	}

	// The flight's product must now be resident: a fresh query is a
	// pure cache hit and runs no further computation.
	if _, err := s.PathDistribution(p, depart, OD); err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("post-flight query recomputed (%d executions)", n)
	}
	st, ok := s.QueryCacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("expected a cache hit after the flight, stats %+v ok=%v", st, ok)
	}
}

// TestPathDistributionGatedChargesLeadersOnly: the computation gate
// must be acquired exactly once per underlying computation — never by
// cache hits, never by singleflight followers — so serving layers can
// bound CPU work without charging parked requests.
func TestPathDistributionGatedChargesLeadersOnly(t *testing.T) {
	s := freshSystem(t)
	s.EnableQueryCache(64)
	p, depart := densePath(t, s)
	key := s.queryKey(s.CurrentEpoch(), p, depart, OD)

	var acquires, releases atomic.Int32
	acquire := func() bool { acquires.Add(1); return true }
	release := func() { releases.Add(1) }

	const callers = 12
	leaderIn := make(chan struct{})
	releaseCh := make(chan struct{})
	var execs atomic.Int32
	s.computeProbe = func() {
		if execs.Add(1) == 1 {
			close(leaderIn)
			<-releaseCh
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.PathDistributionGated(nil, p, depart, OD, acquire, release); err != nil {
				t.Error(err)
			}
		}()
	}
	<-leaderIn
	pollUntil(t, func() bool { return s.flight.Waiting(key) == callers-1 },
		"all followers parked")
	close(releaseCh)
	wg.Wait()

	if a, r := acquires.Load(), releases.Load(); a != 1 || r != 1 {
		t.Fatalf("gate acquired %d / released %d times for %d concurrent misses, want 1/1", a, r, callers)
	}

	// Cache hit: the gate must not be touched at all.
	if _, err := s.PathDistributionGated(nil, p, depart, OD, acquire, release); err != nil {
		t.Fatal(err)
	}
	if a := acquires.Load(); a != 1 {
		t.Fatalf("cache hit acquired the gate (total %d)", a)
	}

	// A refused gate aborts with ErrGateRejected.
	p2, depart2 := densePath(t, s)
	_, err := s.PathDistributionGated(nil, p2, depart2+s.Params.IntervalSeconds(), RD,
		func() bool { return false }, func() {})
	if !errors.Is(err, ErrGateRejected) {
		t.Fatalf("refused gate returned %v, want ErrGateRejected", err)
	}
}

// TestPathDistributionGatedFollowerRetriesInheritedRejection: when a
// flight leader's own acquire refuses (its client vanished while
// queued), a parked follower must not surface that foreign rejection —
// it retries, becomes the new leader, and its own acquire decides.
func TestPathDistributionGatedFollowerRetriesInheritedRejection(t *testing.T) {
	s := freshSystem(t)
	s.EnableQueryCache(64)
	p, depart := densePath(t, s)
	key := s.queryKey(s.CurrentEpoch(), p, depart, OD)

	leaderErr := make(chan error, 1)
	go func() {
		// Leader: refuses its slot, but only once the follower is
		// parked — so the rejection is guaranteed to be inherited.
		_, err := s.PathDistributionGated(nil, p, depart, OD, func() bool {
			deadline := time.Now().Add(5 * time.Second)
			for s.flight.Waiting(key) != 1 && !time.Now().After(deadline) {
				time.Sleep(time.Millisecond)
			}
			return false
		}, nil)
		leaderErr <- err
	}()

	if !pollUntil(t, func() bool { return s.flight.Pending() == 1 }, "leader to hold the flight") {
		t.FailNow() // main test goroutine: safe to stop here
	}
	var ownAcquires atomic.Int32
	res, err := s.PathDistributionGated(nil, p, depart, OD,
		func() bool { ownAcquires.Add(1); return true }, nil)
	if err != nil || res == nil {
		t.Fatalf("follower surfaced inherited rejection: res=%v err=%v", res, err)
	}
	if n := ownAcquires.Load(); n != 1 {
		t.Fatalf("follower's own acquire consulted %d times, want exactly 1 (on retry as leader)", n)
	}
	if err := <-leaderErr; !errors.Is(err, ErrGateRejected) {
		t.Fatalf("leader got %v, want its own ErrGateRejected", err)
	}
}

// TestConcurrentQueriesWhileTogglingCache is the -race hammer: many
// goroutines issue PathDistribution and Route queries while the main
// goroutine repeatedly enables, resizes and disables the query cache
// and snapshots its stats. Before qcache became an atomic pointer
// this was a data race (and could nil-panic between the load and the
// use); now every interleaving must produce correct answers.
func TestConcurrentQueriesWhileTogglingCache(t *testing.T) {
	s := freshSystem(t)
	p, depart := densePath(t, s)

	// A reachable routing pair, as in cmd/pathcost.
	src := VertexID(s.Graph.NumVertices() / 3)
	dists := s.Graph.ShortestDistances(src, graph.FreeFlowWeight)
	dst := VertexID(-1)
	best := 0.0
	for v, d := range dists {
		if VertexID(v) != src && d > best && d < 600 {
			best = d
			dst = VertexID(v)
		}
	}

	var want float64
	if res, err := s.PathDistribution(p, depart, OD); err != nil {
		t.Fatal(err)
	} else {
		want = res.Dist.Mean()
	}

	const queriers = 8
	const iters = 25
	var wg sync.WaitGroup
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				m := []Method{OD, HP, LB}[n%3]
				res, err := s.PathDistribution(p, depart, m)
				if err != nil {
					t.Errorf("querier %d: %v", i, err)
					return
				}
				// Tolerance, not equality: independent evaluations may
				// associate float sums differently at the last ulp.
				if m == OD && math.Abs(res.Dist.Mean()-want) > 1e-9*want {
					t.Errorf("querier %d: OD mean %v, want %v", i, res.Dist.Mean(), want)
					return
				}
				if i < 2 && n%10 == 0 && dst >= 0 {
					if _, err := s.Route(src, dst, depart, best*2, OD); err != nil {
						t.Errorf("querier %d route: %v", i, err)
						return
					}
				}
			}
		}(i)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for toggles := 0; ; toggles++ {
		select {
		case <-done:
			return
		default:
		}
		switch toggles % 3 {
		case 0:
			s.EnableQueryCache(64)
		case 1:
			s.EnableQueryCache(8) // resize: fresh cache, tiny capacity
		case 2:
			s.EnableQueryCache(0) // disable
		}
		s.QueryCacheStats()
		time.Sleep(200 * time.Microsecond)
	}
}

// TestRandomQueryPathEmptyGraph: an edgeless graph must yield an
// error, not a panic inside the caller's rand source (rand.Intn
// panics on a non-positive bound).
func TestRandomQueryPathEmptyGraph(t *testing.T) {
	g := graph.NewBuilder().Freeze()
	s := &System{Graph: g}
	rnd := func(n int) int {
		if n <= 0 {
			panic(fmt.Sprintf("rnd called with non-positive bound %d", n))
		}
		return 0
	}
	p, err := s.RandomQueryPath(3, rnd)
	if err == nil {
		t.Fatalf("RandomQueryPath on empty graph returned %v, want error", p)
	}
}
