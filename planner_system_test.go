package pathcost

import (
	"context"
	"sync"
	"testing"

	"repro/internal/hist"
)

// System-level contract of PlanDistributions: how the batch planner
// composes with the query cache, the admission gate, per-entry
// failures and the accumulated PlannerStats. The trie and scheduler
// themselves are proven in internal/core.

var (
	planSysOnce sync.Once
	planSysInst *System
	planSysErr  error
)

// plannerTestSystem trains a private system so these tests can toggle
// the cache and planner without leaking state into the shared fixture.
func plannerTestSystem(t testing.TB) *System {
	t.Helper()
	planSysOnce.Do(func() {
		params := DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		planSysInst, planSysErr = Synthesize(SynthesizeConfig{
			Preset: "test", Trips: 3000, Seed: 21, Params: params,
		})
	})
	if planSysErr != nil {
		t.Fatal(planSysErr)
	}
	return planSysInst
}

// plannerBatchQueries builds a prefix-heavy batch over one dense path.
func plannerBatchQueries(t testing.TB, s *System) []PlanQuery {
	t.Helper()
	dense := s.DensePaths(4, 10)
	if len(dense) == 0 {
		dense = s.DensePaths(3, 10)
	}
	if len(dense) == 0 {
		t.Skip("no dense paths in this workload")
	}
	trunk := dense[0].Path
	lo, _ := s.Params.IntervalBounds(dense[0].Interval)
	depart := lo + 1
	var queries []PlanQuery
	for n := 2; n <= len(trunk); n++ {
		queries = append(queries, PlanQuery{Path: trunk[:n], Depart: depart})
	}
	queries = append(queries, queries[len(queries)-1]) // duplicate entry
	return queries
}

func identicalPlanHist(a, b *hist.Histogram) bool {
	if a.NumBuckets() != b.NumBuckets() {
		return false
	}
	ab, bb := a.Buckets(), b.Buckets()
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

func TestPlanDistributionsCacheInterplay(t *testing.T) {
	s := plannerTestSystem(t)
	queries := plannerBatchQueries(t, s)

	// Storeless reference, computed before any cache exists.
	ref := make([]*hist.Histogram, len(queries))
	for i, q := range queries {
		res, err := s.Hybrid().CostDistribution(q.Path, q.Depart, q.Opt)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = res.Dist
	}

	s.EnableQueryCache(256)
	s.EnableBatchPlanner(4)
	t.Cleanup(func() {
		s.EnableQueryCache(0)
		s.DisableBatchPlanner()
	})

	out, stats := s.PlanDistributions(context.Background(), queries, nil, nil)
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("entry %d: %v", i, out[i].Err)
		}
		if !identicalPlanHist(ref[i], out[i].Res.Dist) {
			t.Fatalf("entry %d: planned result diverged from independent evaluation", i)
		}
	}
	if stats.Nodes == 0 || stats.Convolutions == 0 {
		t.Fatalf("cold batch planned nothing: %+v", stats)
	}

	// Second pass: every entry is a query-cache hit, so nothing is
	// planned and the gate must never be consulted.
	out2, stats2 := s.PlanDistributions(context.Background(), queries,
		func() bool { t.Error("acquire called for a fully cached batch"); return true }, nil)
	if stats2.Nodes != 0 || stats2.Convolutions != 0 {
		t.Fatalf("warm batch re-planned cached entries: %+v", stats2)
	}
	for i := range out2 {
		if out2[i].Err != nil || !identicalPlanHist(ref[i], out2[i].Res.Dist) {
			t.Fatalf("entry %d: cached answer diverged", i)
		}
	}

	// The planned results also serve later single queries.
	cs, ok := s.QueryCacheStats()
	if !ok || cs.Hits == 0 {
		t.Fatalf("query cache never hit: %+v", cs)
	}

	pst, ok := s.PlannerStats()
	if !ok {
		t.Fatal("PlannerStats not available with the planner enabled")
	}
	if pst.Batches != 2 || pst.Nodes != stats.Nodes || pst.Workers != 4 {
		t.Fatalf("accumulated stats wrong: %+v", pst)
	}
	s.DisableBatchPlanner()
	if _, ok := s.PlannerStats(); ok {
		t.Fatal("PlannerStats still available after DisableBatchPlanner")
	}
}

func TestPlanDistributionsGateRejected(t *testing.T) {
	s := plannerTestSystem(t)
	queries := plannerBatchQueries(t, s)
	out, stats := s.PlanDistributions(context.Background(), queries,
		func() bool { return false }, nil)
	for i := range out {
		if out[i].Err != ErrGateRejected {
			t.Fatalf("entry %d: err = %v, want ErrGateRejected", i, out[i].Err)
		}
	}
	if stats.Convolutions != 0 {
		t.Fatalf("rejected batch still convolved: %+v", stats)
	}
}

// A batch entry that cannot be evaluated fails alone: entries sharing
// its prefix sub-paths answer normally and identically.
func TestPlanDistributionsErrorContainment(t *testing.T) {
	s := plannerTestSystem(t)
	queries := plannerBatchQueries(t, s)
	trunk := queries[len(queries)-1].Path
	depart := queries[0].Depart
	// Repeating the trunk's first edge breaks path validity at the
	// final chain step — after its prefixes joined the shared trie.
	bad := append(append(Path{}, trunk...), trunk[0])
	withBad := append([]PlanQuery{{Path: bad, Depart: depart}}, queries...)

	out, _ := s.PlanDistributions(context.Background(), withBad, nil, nil)
	if out[0].Err == nil {
		t.Fatal("invalid-path entry succeeded")
	}
	for i := 1; i < len(out); i++ {
		if out[i].Err != nil {
			t.Fatalf("valid entry %d poisoned by its neighbour: %v", i, out[i].Err)
		}
		res, err := s.Hybrid().CostDistribution(withBad[i].Path, withBad[i].Depart, withBad[i].Opt)
		if err != nil {
			t.Fatal(err)
		}
		if !identicalPlanHist(res.Dist, out[i].Res.Dist) {
			t.Fatalf("valid entry %d diverged next to a failing neighbour", i)
		}
	}
}
