package pathcost

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/netgen"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// rawFixture simulates a test-size city with noisy GPS traces for the
// ingestion tests and benchmarks.
func rawFixture(seed int64, trips int) (*Graph, []*Trajectory) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: seed, NumTrips: trips, EmitGPS: true,
		SamplingIntervalS: 3, GPSNoiseM: 5,
	})
	return g, gen.Generate().Raw
}

// TestParallelMatchMatchesSequential checks the tentpole determinism
// claim: sharding ingestion across workers changes wall-clock time
// only — matched paths, per-edge costs and stats are identical to the
// sequential run. Run with -race to also verify the pool's memory
// discipline.
func TestParallelMatchMatchesSequential(t *testing.T) {
	g, raw := rawFixture(7, 400)

	seq, seqSt, err := MatchTrajectories(g, raw, MatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 64} {
		par, parSt, err := MatchTrajectories(g, raw, MatcherConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if seqSt != parSt {
			t.Fatalf("workers=%d: stats %+v, sequential %+v", workers, parSt, seqSt)
		}
		if seq.Len() != par.Len() {
			t.Fatalf("workers=%d: %d matched vs %d sequential", workers, par.Len(), seq.Len())
		}
		for i := 0; i < seq.Len(); i++ {
			a, b := seq.Traj(i), par.Traj(i)
			if a.ID != b.ID || a.Depart != b.Depart || !a.Path.Equal(b.Path) {
				t.Fatalf("workers=%d: trajectory %d differs: %+v vs %+v", workers, i, a, b)
			}
			for j := range a.EdgeCosts {
				if a.EdgeCosts[j] != b.EdgeCosts[j] {
					t.Fatalf("workers=%d: trajectory %d cost %d: %v vs %v",
						workers, i, j, b.EdgeCosts[j], a.EdgeCosts[j])
				}
			}
		}
	}
}

// TestParallelTrainingModelIdentical trains the hybrid graph serially
// and with a worker pool and asserts the serialized models are
// byte-identical (model serialization is deterministic, so this is the
// strongest possible equality).
func TestParallelTrainingModelIdentical(t *testing.T) {
	g, raw := rawFixture(11, 400)
	data, _, err := MatchTrajectories(g, raw, MatcherConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Beta = 5
	params.MaxRank = 3

	var models [][]byte
	for _, workers := range []int{1, 8} {
		p := params
		p.Workers = workers
		sys, err := NewSystem(g, data, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := sys.SaveModel(&buf); err != nil {
			t.Fatal(err)
		}
		models = append(models, buf.Bytes())
	}
	if !bytes.Equal(models[0], models[1]) {
		t.Fatalf("serial and parallel training produced different models (%d vs %d bytes)",
			len(models[0]), len(models[1]))
	}
}

// TestQueryCache exercises the cache wiring end to end: repeated
// queries hit, distinct intervals miss, and stats reflect both.
func TestQueryCache(t *testing.T) {
	sys, err := Synthesize(SynthesizeConfig{Preset: "test", Trips: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dense := sys.DensePaths(3, 10)
	if len(dense) == 0 {
		t.Skip("no dense paths")
	}
	p := dense[0].Path
	lo, _ := sys.Params.IntervalBounds(dense[0].Interval)

	if _, ok := sys.QueryCacheStats(); ok {
		t.Fatal("cache reported enabled before EnableQueryCache")
	}
	sys.EnableQueryCache(128)

	first, err := sys.PathDistribution(p, lo+60, OD)
	if err != nil {
		t.Fatal(err)
	}
	// Same interval, different second: must be served from the cache
	// (the documented α-interval granularity), as the same pointer.
	again, err := sys.PathDistribution(p, lo+120, OD)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("repeated same-interval query was recomputed")
	}
	// A different method is a different key.
	if _, err := sys.PathDistribution(p, lo+60, LB); err != nil {
		t.Fatal(err)
	}
	st, ok := sys.QueryCacheStats()
	if !ok {
		t.Fatal("cache stats unavailable")
	}
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses / 2 entries", st)
	}

	// Disabling brings back recomputation.
	sys.EnableQueryCache(0)
	fresh, err := sys.PathDistribution(p, lo+60, OD)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == first {
		t.Fatal("disabled cache still serving cached results")
	}
}

// TestQueryCacheConcurrent runs cached queries from many goroutines;
// meaningful under -race.
func TestQueryCacheConcurrent(t *testing.T) {
	sys, err := Synthesize(SynthesizeConfig{Preset: "test", Trips: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dense := sys.DensePaths(3, 10)
	if len(dense) < 2 {
		t.Skip("not enough dense paths")
	}
	if len(dense) > 6 {
		dense = dense[:6] // a hot working set that fits the cache
	}
	sys.EnableQueryCache(64)
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 40; i++ {
				dp := dense[(w+i)%len(dense)]
				lo, _ := sys.Params.IntervalBounds(dp.Interval)
				if _, err := sys.PathDistribution(dp.Path, lo+60, OD); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st, _ := sys.QueryCacheStats()
	if st.Hits == 0 {
		t.Fatal("no cache hits under a skewed concurrent workload")
	}
}
