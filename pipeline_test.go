package pathcost

import (
	"math"
	"testing"

	"repro/internal/netgen"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// TestGPSPipelineEndToEnd runs the entire paper pipeline on raw GPS:
// simulate traces with noise, map-match them, train the hybrid graph,
// and check that queried distributions are close to those trained on
// the generator's ground-truth matches.
func TestGPSPipelineEndToEnd(t *testing.T) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 21, NumTrips: 1200, EmitGPS: true,
		SamplingIntervalS: 3, GPSNoiseM: 5,
	})
	res := gen.Generate()

	params := DefaultParams()
	params.Beta = 10
	params.MaxRank = 3

	sys, st, err := SystemFromGPS(g, res.Raw, MatcherConfig{}, params)
	if err != nil {
		t.Fatal(err)
	}
	if st.Matched < 1000 {
		t.Fatalf("only %d/%d trajectories matched", st.Matched, len(res.Raw))
	}
	if st.Records == 0 {
		t.Fatal("record count missing")
	}
	if sys.Stats().TotalVariables() == 0 {
		t.Fatal("no variables trained from matched GPS")
	}

	// Train a reference system on the generator's exact matches and
	// compare a dense-path distribution: matching noise should not move
	// the mean by much.
	ref, err := NewSystem(g, res.Collection, params)
	if err != nil {
		t.Fatal(err)
	}
	dense := ref.DensePaths(3, 15)
	if len(dense) == 0 {
		t.Skip("no dense paths in reference data")
	}
	compared := 0
	for _, dp := range dense {
		if compared >= 5 {
			break
		}
		lo, _ := params.IntervalBounds(dp.Interval)
		refDist, err1 := ref.PathDistribution(dp.Path, lo+60, OD)
		gpsDist, err2 := sys.PathDistribution(dp.Path, lo+60, OD)
		if err1 != nil || err2 != nil {
			continue
		}
		rm, gm := refDist.Dist.Mean(), gpsDist.Dist.Mean()
		if math.Abs(rm-gm) > 0.35*rm+10 {
			t.Fatalf("path %v: GPS-pipeline mean %v vs reference %v", dp.Path, gm, rm)
		}
		compared++
	}
	if compared == 0 {
		t.Skip("no comparable paths")
	}
}

func TestMatchTrajectoriesEmptyAndBroken(t *testing.T) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	if _, _, err := MatchTrajectories(g, nil, MatcherConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
	// A single far-away trace: pipeline must fail cleanly.
	tr := &Trajectory{ID: 1, Records: []Record{
		{Pt: g.BBox().Center(), Time: 0},
		{Pt: g.BBox().Center(), Time: 5},
	}}
	tr.Records[0].Pt.Lat += 2
	tr.Records[1].Pt.Lat += 2
	if _, st, err := MatchTrajectories(g, []*Trajectory{tr}, MatcherConfig{}); err == nil {
		t.Fatalf("unmatchable input accepted (stats %+v)", st)
	}
}
