#!/usr/bin/env sh
# Coverage gate, run by CI and runnable locally: total statement
# coverage across ./... must not regress below the checked-in
# threshold. The threshold starts at the measured baseline (78.5% at
# the time the gate was introduced, recorded slightly below to absorb
# run-to-run noise from timing-dependent paths) and should be ratcheted
# up — never down — as coverage grows.
#
# Override for local experiments: COVERAGE_THRESHOLD=70 sh scripts/check-coverage.sh
set -eu

cd "$(dirname "$0")/.."

threshold="${COVERAGE_THRESHOLD:-76.0}"
profile="${COVERAGE_PROFILE:-coverage.out}"

go test -count=1 -coverprofile="$profile" ./... > /dev/null

total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "coverage gate: could not read total coverage from $profile"
    exit 1
fi

echo "coverage gate: total statement coverage ${total}% (threshold ${threshold}%)"
awk -v total="$total" -v threshold="$threshold" 'BEGIN {
    if (total + 0 < threshold + 0) {
        printf "coverage gate: FAILED — %.1f%% is below the %.1f%% threshold\n", total, threshold
        exit 1
    }
    printf "coverage gate: ok\n"
}'
