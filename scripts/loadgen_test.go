package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunCLISelftest runs the whole CLI in selftest mode: fleet boot,
// load, JSON report.
func TestRunCLISelftest(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a fleet and runs load")
	}
	var out bytes.Buffer
	if err := runCLI([]string{"-selftest", "-qps", "50", "-duration", "500ms"}, &out); err != nil {
		t.Fatalf("runCLI: %v", err)
	}
	var res struct {
		Sent   int `json:"sent"`
		OK     int `json:"ok"`
		Errors int `json:"errors"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if res.Sent == 0 || res.OK == 0 || res.Errors != 0 {
		t.Fatalf("unhealthy selftest run: %+v", res)
	}
}

func TestRunCLIRejectsBadArgs(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string
	}{
		{"no target", []string{"-qps", "10"}, "-base and -path"},
		{"bad edge id", []string{"-base", "http://127.0.0.1:1", "-path", "1,x,3"}, "bad edge ID"},
		{"unknown flag", []string{"-nope"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		err := runCLI(tc.argv, &out)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, err, tc.want)
		}
	}
}
