// Command loadgen fires a constant-rate query workload at a pathcost
// serving tier — a single pathcostd or a sharded coordinator — and
// reports outcome counts and latency quantiles as JSON, the stanza
// scripts/bench.sh records alongside the micro-benchmarks.
//
// Two modes:
//
//	go run ./scripts -base http://coordinator:8080 -path 12,13,14 -qps 100 -duration 10s
//	go run ./scripts -selftest -qps 80 -duration 3s
//
// -selftest needs no deployment: it synthesizes the test model, splits
// it three ways, boots the shards and a coordinator in-process, and
// drives the load against that fleet — the smoke the CI bench job runs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	pathcost "repro"
	"repro/internal/api"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	if err := runCLI(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// runCLI is the whole command as a testable function of its arguments.
func runCLI(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		base     = fs.String("base", "", "target base URL (serves POST {base}/v1/distribution)")
		pathArg  = fs.String("path", "", "comma-separated edge IDs of the query path")
		depart   = fs.Float64("depart", 8*3600, "departure time in seconds")
		method   = fs.String("method", "OD", "estimation method (OD, HP, LB)")
		qps      = fs.Float64("qps", 100, "target arrival rate")
		duration = fs.Duration("duration", 10*time.Second, "generation window")
		workers  = fs.Int("workers", 16, "max in-flight requests")
		selftest = fs.Bool("selftest", false, "boot an in-process 3-way sharded fleet and load it")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	var bodies [][]byte
	target := *base
	if *selftest {
		fleetURL, fleetBodies, shutdown, err := bootFleet(*depart, *method)
		if err != nil {
			return err
		}
		defer shutdown()
		target, bodies = fleetURL, fleetBodies
	} else {
		if *base == "" || *pathArg == "" {
			return fmt.Errorf("need -base and -path (or -selftest)")
		}
		var ids []int64
		for _, f := range strings.Split(*pathArg, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return fmt.Errorf("bad edge ID %q: %v", f, err)
			}
			ids = append(ids, id)
		}
		b, err := json.Marshal(api.DistributionRequest{Path: ids, Depart: *depart, Method: *method})
		if err != nil {
			return err
		}
		bodies = [][]byte{b}
	}

	next := 0
	res, err := shard.RunLoad(context.Background(), shard.LoadConfig{
		QPS:      *qps,
		Duration: *duration,
		Workers:  *workers,
		NewRequest: func() (*http.Request, error) {
			b := bodies[next%len(bodies)]
			next++
			req, err := http.NewRequest(http.MethodPost, target+"/v1/distribution", bytes.NewReader(b))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		},
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	if res.Errors > 0 || res.OK == 0 {
		return fmt.Errorf("load run unhealthy: %d ok, %d errors", res.OK, res.Errors)
	}
	return nil
}

// bootFleet synthesizes the test model, splits it 3 ways, and serves
// shards + coordinator in-process. The returned bodies are a mixed
// single-/cross-region distribution workload.
func bootFleet(depart float64, method string) (string, [][]byte, func(), error) {
	params := pathcost.DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "test", Trips: 3000, Seed: 11, Params: params,
	})
	if err != nil {
		return "", nil, nil, err
	}
	part, err := shard.NewPartition(sys.Graph, 3, sys.Params)
	if err != nil {
		return "", nil, nil, err
	}
	split, err := shard.SplitModel(sys, part)
	if err != nil {
		return "", nil, nil, err
	}
	var servers []*httptest.Server
	shutdown := func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
	cfg := shard.Config{ProbeInterval: -1, MaxQueue: 64}
	for _, ss := range split.Shards {
		ts := httptest.NewServer(server.New(ss, server.Config{MaxInFlight: 4}).Handler())
		servers = append(servers, ts)
		cfg.Shards = append(cfg.Shards, ts.URL)
	}
	coord, err := shard.New(sys.Graph, part, cfg)
	if err != nil {
		shutdown()
		return "", nil, nil, err
	}
	coordTS := httptest.NewServer(coord.Handler())
	servers = append(servers, coordTS)

	rnd := rand.New(rand.NewSource(41))
	var bodies [][]byte
	for len(bodies) < 16 {
		p, err := sys.RandomQueryPath(2+rnd.Intn(8), rnd.Intn)
		if err != nil {
			shutdown()
			return "", nil, nil, err
		}
		ids := make([]int64, len(p))
		for i, e := range p {
			ids[i] = int64(e)
		}
		b, err := json.Marshal(api.DistributionRequest{Path: ids, Depart: depart, Method: method})
		if err != nil {
			shutdown()
			return "", nil, nil, err
		}
		bodies = append(bodies, b)
	}
	return coordTS.URL, bodies, shutdown, nil
}
