#!/bin/sh
# bench.sh — benchmark trajectory for the convolution/memo/synopsis
# engine, the epoch-publish ingest path, and the sharded serving tier.
# Runs the root benchmarks with -benchmem, parses ns/op, B/op,
# allocs/op (plus deltas/sec where a benchmark reports it), runs the
# loadgen selftest against an in-process 3-way sharded fleet, and
# writes everything as JSON (default: BENCH_8.json) so perf changes
# land with recorded numbers instead of anecdotes.
#
# Usage:
#   sh scripts/bench.sh              # writes BENCH_8.json
#   sh scripts/bench.sh out.json     # custom output path
#   BENCHTIME=5s sh scripts/bench.sh # custom -benchtime
#   LOADQPS=200 LOADDUR=5s sh scripts/bench.sh
set -eu

OUT=${1:-BENCH_8.json}
BENCHTIME=${BENCHTIME:-2s}
LOADQPS=${LOADQPS:-80}
LOADDUR=${LOADDUR:-3s}
PATTERN='BenchmarkPathDistribution$|BenchmarkPathDistributionMemo$|BenchmarkPathDistributionColdMemo$|BenchmarkPathDistributionSynopsis$|BenchmarkCostDistribution$|BenchmarkBatchIndependent$|BenchmarkBatchPlanned$|BenchmarkIngestThroughput$|BenchmarkQueryDuringIngest$'

TMP=$(mktemp)
LOADTMP=$(mktemp)
trap 'rm -f "$TMP" "$LOADTMP"' EXIT

go test -run='^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"

# Load smoke: constant-rate workload against an in-process sharded
# fleet (3 shard servers + coordinator); fails the run on any error
# or zero served requests.
go run ./scripts -selftest -qps "$LOADQPS" -duration "$LOADDUR" | tee "$LOADTMP"

{
    awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ && /allocs\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")      ns[n]     = $i
        if ($(i+1) == "B/op")       bytes[n]  = $i
        if ($(i+1) == "allocs/op")  allocs[n] = $i
        if ($(i+1) == "deltas/sec") deltas[n] = $i
    }
    names[n] = name
    n++
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"results\": [\n", benchtime
    for (i = 0; i < n; i++) {
        extra = (i in deltas) ? sprintf(", \"deltas_per_sec\": %s", deltas[i]) : ""
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}%s\n", \
            names[i], ns[i], bytes[i], allocs[i], extra, (i+1 < n) ? "," : ""
    }
    printf "  ],\n"
}' "$TMP"
    printf '  "loadgen": '
    sed 's/^/  /' "$LOADTMP" | sed '1s/^  //'
    printf '}\n'
} > "$OUT"

echo "wrote $OUT"
