#!/bin/sh
# bench.sh — benchmark trajectory for the convolution/memo/synopsis
# engine, the epoch-publish ingest path, and the sharded serving tier.
# Runs the root benchmarks with -benchmem, parses ns/op, B/op,
# allocs/op (plus deltas/sec where a benchmark reports it), runs the
# loadgen selftest against an in-process 3-way sharded fleet, and
# writes everything as JSON (default: BENCH_10.json) so perf changes
# land with recorded numbers instead of anecdotes.
#
# After writing the output it diffs against the previous recorded
# baseline (the highest-numbered other BENCH_N.json, or $BASELINE):
# every shared benchmark gets a ns/op delta line, and a convolution
# benchmark (PathDistribution*/CostDistribution*) regressing by more
# than 25% fails the run. REPORT_ONLY=1 downgrades that failure to a
# report — the CI smoke mode, where runner noise would make a hard
# gate flaky.
#
# Usage:
#   sh scripts/bench.sh              # writes BENCH_10.json
#   sh scripts/bench.sh out.json     # custom output path
#   BENCHTIME=5s sh scripts/bench.sh # custom -benchtime
#   BASELINE=BENCH_7.json sh scripts/bench.sh
#   REPORT_ONLY=1 sh scripts/bench.sh
#   LOADQPS=200 LOADDUR=5s sh scripts/bench.sh
set -eu

OUT=${1:-BENCH_10.json}
BENCHTIME=${BENCHTIME:-2s}
LOADQPS=${LOADQPS:-80}
LOADDUR=${LOADDUR:-3s}
PATTERN='BenchmarkPathDistribution$|BenchmarkPathDistributionMemo$|BenchmarkPathDistributionColdMemo$|BenchmarkPathDistributionSynopsis$|BenchmarkCostDistribution$|BenchmarkBatchIndependent$|BenchmarkBatchPlanned$|BenchmarkIngestThroughput$|BenchmarkIngestWithWAL$|BenchmarkQueryDuringIngest$'

TMP=$(mktemp)
LOADTMP=$(mktemp)
trap 'rm -f "$TMP" "$LOADTMP"' EXIT

go test -run='^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"

# Load smoke: constant-rate workload against an in-process sharded
# fleet (3 shard servers + coordinator); fails the run on any error
# or zero served requests.
go run ./scripts -selftest -qps "$LOADQPS" -duration "$LOADDUR" | tee "$LOADTMP"

{
    awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ && /allocs\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")      ns[n]     = $i
        if ($(i+1) == "B/op")       bytes[n]  = $i
        if ($(i+1) == "allocs/op")  allocs[n] = $i
        if ($(i+1) == "deltas/sec") deltas[n] = $i
    }
    names[n] = name
    n++
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"results\": [\n", benchtime
    for (i = 0; i < n; i++) {
        extra = (i in deltas) ? sprintf(", \"deltas_per_sec\": %s", deltas[i]) : ""
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}%s\n", \
            names[i], ns[i], bytes[i], allocs[i], extra, (i+1 < n) ? "," : ""
    }
    printf "  ],\n"
}' "$TMP"
    printf '  "loadgen": '
    sed 's/^/  /' "$LOADTMP" | sed '1s/^  //'
    printf '}\n'
} > "$OUT"

echo "wrote $OUT"

# --- Baseline delta --------------------------------------------------
# Pick the previous recording: the highest-numbered BENCH_N.json that
# is not the file just written (override with BASELINE=).
BASELINE=${BASELINE:-}
if [ -z "$BASELINE" ]; then
    cur=$(basename "$OUT")
    best=-1
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        [ "$(basename "$f")" = "$cur" ] && continue
        n=${f#BENCH_}
        n=${n%.json}
        case $n in
            *[!0-9]* | '') continue ;;
        esac
        if [ "$n" -gt "$best" ]; then
            best=$n
            BASELINE=$f
        fi
    done
fi

if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
    echo "no baseline BENCH_N.json found; skipping delta report"
    exit 0
fi

echo ""
echo "delta vs $BASELINE (threshold: +25% ns/op on convolution benchmarks)"
awk -v report_only="${REPORT_ONLY:-0}" -v baseline="$BASELINE" '
# Both files carry one result object per line; extract name and ns/op.
FNR == 1 { nfile++ }
/"name":/ {
    if (match($0, /"name": "[^"]*"/) == 0) next
    name = substr($0, RSTART + 9, RLENGTH - 10)
    if (match($0, /"ns_per_op": [0-9.eE+-]+/) == 0) next
    ns = substr($0, RSTART + 13, RLENGTH - 13) + 0
    if (nfile == 1) {
        base[name] = ns
    } else if (name in seen == 0) {
        seen[name] = 1
        order[m++] = name
        curns[name] = ns
    }
}
END {
    fail = 0
    printf "  %-52s %14s %14s %9s\n", "benchmark", "base ns/op", "new ns/op", "delta"
    for (i = 0; i < m; i++) {
        name = order[i]
        if (!(name in base)) {
            printf "  %-52s %14s %14.0f %9s\n", name, "-", curns[name], "new"
            continue
        }
        pct = (curns[name] - base[name]) / base[name] * 100
        flag = ""
        if (name ~ /^Benchmark(PathDistribution|CostDistribution)/ && pct > 25) {
            flag = "  REGRESSION"
            fail = 1
        }
        printf "  %-52s %14.0f %14.0f %+8.1f%%%s\n", name, base[name], curns[name], pct, flag
    }
    if (fail) {
        if (report_only + 0) {
            print "convolution regression past threshold (report-only mode, not failing)"
        } else {
            print "FAIL: convolution benchmark regressed more than 25% vs " baseline
            exit 1
        }
    }
}' "$BASELINE" "$OUT"
