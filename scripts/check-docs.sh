#!/usr/bin/env sh
# Docs gate, run by CI and runnable locally: every internal package
# must carry a doc.go (so godoc has a package overview to show), and
# every relative markdown link in README.md and docs/ must resolve.
set -eu

cd "$(dirname "$0")/.."
fail=0

for d in internal/*/; do
    if [ ! -f "${d}doc.go" ]; then
        echo "docs gate: ${d} has no doc.go (package overview required)"
        fail=1
    fi
done

# Relative-link check: extract [text](target) targets, drop external
# URLs and pure anchors, strip #fragments, resolve against the linking
# file's directory.
for f in README.md docs/*.md; do
    links=$(grep -o '\[[^]]*\]([^)#][^)]*)' "$f" | sed 's/.*(\(.*\))/\1/' || true)
    for l in $links; do
        case "$l" in
        http://*|https://*|mailto:*) continue ;;
        esac
        target=${l%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$(dirname "$f")/$target" ] && [ ! -e "$target" ]; then
            echo "docs gate: $f links to missing file: $target"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "docs gate: FAILED"
    exit 1
fi
echo "docs gate: ok"
