// Emissions: the paper's second cost domain. The same hybrid-graph
// machinery estimates greenhouse-gas emission distributions of paths:
// distributions are over grams of CO2-equivalent, while temporal
// relevance still follows travel time.
//
// Run with:
//
//	go run ./examples/emissions
package main

import (
	"fmt"
	"log"

	pathcost "repro"
)

func main() {
	// Emissions distributions are coarser than second-level travel
	// times; use a 5-gram lattice.
	params := pathcost.DefaultParams()
	params.Domain = pathcost.DomainEmissions
	params.Resolution = 5

	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset:        "test",
		Trips:         6000,
		Seed:          5,
		Params:        params,
		WithEmissions: true, // simulate the GHG cost of every edge
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid graph over the %s domain: %d variables\n",
		params.Domain, sys.Stats().TotalVariables())

	dense := sys.DensePaths(4, 20)
	if len(dense) == 0 {
		log.Fatal("no dense paths; increase Trips")
	}
	q := dense[0]
	lo, _ := sys.Params.IntervalBounds(q.Interval)

	res, err := sys.PathDistribution(q.Path, lo+60, pathcost.OD)
	if err != nil {
		log.Fatal(err)
	}
	d := res.Dist
	fmt.Printf("\npath %v at %02d:%02d\n", q.Path, int(lo)/3600, int(lo)/60%60)
	fmt.Printf("GHG emissions: mean %.0fg | p10 %.0fg | p90 %.0fg\n",
		d.Mean(), d.Quantile(0.1), d.Quantile(0.9))

	// Emissions follow a U-shaped speed curve (minimum near 65 km/h),
	// so the time-of-day effect depends on the road class: stop-and-go
	// on city streets emits more, while slowing a 110 km/h motorway
	// down can emit *less*. Compare rush hour against free-flow night.
	night, err := sys.PathDistribution(q.Path, 3*3600, pathcost.OD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same path at 03:00:  mean %.0fg (night free-flow)\n", night.Dist.Mean())
	switch {
	case d.Mean() > night.Dist.Mean()*1.02:
		fmt.Println("→ rush hour emits more here: congestion pushes speeds below the efficient range.")
	case d.Mean() < night.Dist.Mean()*0.98:
		fmt.Println("→ rush hour emits less here: these are fast roads, and free-flow speed is beyond the efficient range of the U-shaped emission curve.")
	default:
		fmt.Println("→ both regimes emit about the same on this path.")
	}
}
