// Quickstart: build a synthetic city, train the hybrid graph, and
// estimate the travel-time distribution of one path at rush hour.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pathcost "repro"
)

func main() {
	// 1. Build a system: a synthetic city with a simulated GPS fleet.
	//    With real data you would call pathcost.NewSystem with your own
	//    road network and map-matched trajectories instead.
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "test", // 12×12 intersections; try "small" or "aalborg"
		Trips:  6000,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("trained hybrid graph: %d variables (ranks %v)\n",
		st.TotalVariables(), st.VariablesByRank)

	// 2. Pick a query path that real trajectories actually travel
	//    (DensePaths lists the busiest sub-paths per time interval).
	dense := sys.DensePaths(4, 20)
	if len(dense) == 0 {
		log.Fatal("no dense paths; increase Trips")
	}
	q := dense[0]
	lo, _ := sys.Params.IntervalBounds(q.Interval)
	fmt.Printf("query: path %v, departing %02d:%02d (%d supporting trajectories)\n",
		q.Path, int(lo)/3600, int(lo)/60%60, q.Count)

	// 3. Estimate the travel-time distribution with the paper's OD
	//    method and print what a mean-based estimator would hide.
	res, err := sys.PathDistribution(q.Path, lo+60, pathcost.OD)
	if err != nil {
		log.Fatal(err)
	}
	d := res.Dist
	fmt.Printf("mean %.0fs | p10 %.0fs | median %.0fs | p90 %.0fs\n",
		d.Mean(), d.Quantile(0.1), d.Quantile(0.5), d.Quantile(0.9))
	budget := d.Mean() * 1.2
	fmt.Printf("P(arrive within %.0fs) = %.2f\n", budget, d.ProbWithin(budget))
	fmt.Printf("decomposition: %d sub-paths, max rank %d, %.2fms\n",
		res.Decomp.Cardinality(), res.Decomp.MaxRank(),
		float64(res.Timing.Total().Microseconds())/1000)
}
