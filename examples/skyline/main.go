// Skyline: probabilistic top-k and stochastic-skyline routing. The
// top-k query ranks paths by probability of on-time arrival; the
// skyline keeps only paths no rational traveller would discard —
// those not first-order stochastically dominated by an alternative.
//
// Run with:
//
//	go run ./examples/skyline
package main

import (
	"fmt"
	"log"
	"math"

	pathcost "repro"
	"repro/internal/graph"
	"repro/internal/routing"
)

func main() {
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "test",
		Trips:  8000,
		Seed:   9,
	})
	if err != nil {
		log.Fatal(err)
	}

	src, dst, ff := pickPair(sys)
	depart := 8 * 3600.0
	budget := ff * 2
	fmt.Printf("top-3 paths %d → %d at 08:00, budget %.0fs\n\n", src, dst, budget)

	topk, err := sys.TopKRoutes(src, dst, depart, budget, 3, pathcost.OD)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range topk {
		fmt.Printf("#%d: P(on time) = %.3f  %2d edges  mean %.0fs  p90 %.0fs\n",
			i+1, r.Prob, len(r.Path), r.Dist.Mean(), r.Dist.Quantile(0.9))
	}

	sky, err := sys.Router().SkylinePaths(routing.Query{
		Source: src, Dest: dst, Depart: depart, Budget: budget,
	}, 3, routing.Options{Method: pathcost.OD, Incremental: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstochastic skyline keeps %d of %d candidates\n", len(sky), len(topk))
	fmt.Println("(a kept path is not dominated: no alternative is at least as")
	fmt.Println("likely to arrive by *every* deadline)")
}

func pickPair(sys *pathcost.System) (pathcost.VertexID, pathcost.VertexID, float64) {
	src := pathcost.VertexID(30)
	dists := sys.Graph.ShortestDistances(src, graph.FreeFlowWeight)
	var dst pathcost.VertexID = -1
	best := 0.0
	for v, d := range dists {
		if pathcost.VertexID(v) != src && !math.IsInf(d, 1) && d > best && d < 250 {
			best = d
			dst = pathcost.VertexID(v)
		}
	}
	if dst < 0 {
		log.Fatal("no destination reachable")
	}
	return src, dst, best
}
