// Airport: the paper's Figure 1(a) scenario. Two candidate paths lead
// to the airport; the one with the better *mean* travel time is not
// the one with the higher probability of arriving before the flight
// closes. Only a distribution-aware estimator can tell them apart.
//
// Run with:
//
//	go run ./examples/airport
package main

import (
	"fmt"
	"log"
	"math"

	pathcost "repro"
	"repro/internal/graph"
)

func main() {
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "small",
		Trips:  15000,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	depart := 7.8 * 3600 // 07:48, heading into the morning peak

	// For several origins, build two candidate paths to the "airport"
	// (the distance-shortest one and a time-shortest one) and prefer an
	// origin where the mean and the arrival probability disagree — the
	// exact situation of the paper's Figure 1(a).
	p1, p2, d1, d2 := pickCandidates(sys, depart)
	fmt.Printf("depart %s: candidate paths with %d and %d edges\n",
		"07:48", len(p1), len(p2))

	// The flight scenario: the means may rank the paths one way...
	fmt.Printf("\nP1: mean %6.1fs (σ %.1fs)\n", d1.Mean(), math.Sqrt(d1.Variance()))
	fmt.Printf("P2: mean %6.1fs (σ %.1fs)\n", d2.Mean(), math.Sqrt(d2.Variance()))

	// ...but what matters is the probability of making the flight.
	budget := chooseBudget(d1, d2)
	fmt.Printf("\nmust reach the airport within %.0fs:\n", budget)
	fmt.Printf("P1: P(arrive in time) = %.3f\n", d1.ProbWithin(budget))
	fmt.Printf("P2: P(arrive in time) = %.3f\n", d2.ProbWithin(budget))

	better := "P1"
	if d2.ProbWithin(budget) > d1.ProbWithin(budget) {
		better = "P2"
	}
	meanBetter := "P1"
	if d2.Mean() < d1.Mean() {
		meanBetter = "P2"
	}
	fmt.Printf("\nby mean, %s looks better; by arrival probability, choose %s\n",
		meanBetter, better)
	if better != meanBetter {
		fmt.Println("→ exactly the paper's Figure 1(a): the mean is not enough.")
	}
}

// pickCandidates scans origins for a candidate pair whose mean
// ordering and probability ordering disagree, falling back to the last
// pair examined.
func pickCandidates(sys *pathcost.System, depart float64) (pathcost.Path, pathcost.Path, *pathcost.Histogram, *pathcost.Histogram) {
	var p1, p2 pathcost.Path
	var d1, d2 *pathcost.Histogram
	for v := 41; v < sys.Graph.NumVertices(); v += 131 {
		origin := pathcost.VertexID(v)
		airport := findFarVertex(sys, origin)
		if airport < 0 {
			continue
		}
		q1, _, ok1 := sys.Graph.ShortestPath(origin, airport, graph.LengthWeight)
		q2, _, ok2 := sys.Graph.ShortestPath(origin, airport, graph.FreeFlowWeight)
		if !ok1 || !ok2 {
			continue
		}
		if q1.Equal(q2) {
			q1 = detour(sys, origin, airport, q2)
			if q1.Equal(q2) {
				continue
			}
		}
		e1 := mustDist(sys, q1, depart)
		e2 := mustDist(sys, q2, depart)
		p1, p2, d1, d2 = q1, q2, e1, e2
		b := chooseBudget(e1, e2)
		meanSaysP2 := e2.Mean() < e1.Mean()
		probSaysP2 := e2.ProbWithin(b) > e1.ProbWithin(b)
		if meanSaysP2 != probSaysP2 {
			break // found the Figure 1(a) inversion
		}
	}
	if p1 == nil {
		log.Fatal("no candidate pair found")
	}
	return p1, p2, d1, d2
}

func mustDist(sys *pathcost.System, p pathcost.Path, depart float64) *pathcost.Histogram {
	res, err := sys.PathDistribution(p, depart, pathcost.OD)
	if err != nil {
		log.Fatal(err)
	}
	return res.Dist
}

// findFarVertex returns a vertex far from origin but still reachable.
func findFarVertex(sys *pathcost.System, origin pathcost.VertexID) pathcost.VertexID {
	dists := sys.Graph.ShortestDistances(origin, graph.LengthWeight)
	var best pathcost.VertexID = -1
	bestD := 0.0
	for v, d := range dists {
		if !math.IsInf(d, 1) && d > bestD {
			bestD = d
			best = pathcost.VertexID(v)
		}
	}
	return best
}

// detour builds an alternative path that avoids the first edge of the
// reference path.
func detour(sys *pathcost.System, src, dst pathcost.VertexID, ref pathcost.Path) pathcost.Path {
	avoid := ref[0]
	w := func(e graph.Edge) float64 {
		if e.ID == avoid {
			return 1e12
		}
		return e.FreeFlowSeconds()
	}
	p, _, ok := sys.Graph.ShortestPath(src, dst, w)
	if !ok {
		return ref
	}
	return p
}

// chooseBudget picks a deadline between the two means so the
// probability comparison is interesting.
func chooseBudget(d1, d2 *pathcost.Histogram) float64 {
	hi := math.Max(d1.Quantile(0.95), d2.Quantile(0.95))
	lo := math.Max(d1.Mean(), d2.Mean())
	return (hi + lo) / 2
}
