// Routing: plug the hybrid-graph estimator into the DFS stochastic
// routing algorithm (paper Section 4.3 / Figure 18) and compare the
// OD and LB estimators on probabilistic budget queries.
//
// Run with:
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	pathcost "repro"
	"repro/internal/graph"
)

func main() {
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "small",
		Trips:  15000,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}

	depart := 8 * 3600.0 // morning rush hour
	queries := pickQueries(sys, 4)
	fmt.Printf("%d budget queries at 08:00 (budget = 1.8 × free-flow time)\n\n", len(queries))

	for qi, q := range queries {
		budget := q.freeflow * 1.8
		fmt.Printf("query %d: %d → %d, budget %.0fs\n", qi+1, q.src, q.dst, budget)
		for _, m := range []pathcost.Method{pathcost.OD, pathcost.LB} {
			t0 := time.Now()
			res, err := sys.Route(q.src, q.dst, depart, budget, m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-2s-DFS: P = %.3f  path %2d edges  explored %4d  pruned %4d  %v\n",
				m, res.Prob, len(res.Path), res.Explored, res.Pruned,
				time.Since(t0).Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("OD both prunes better (tighter distributions) and estimates")
	fmt.Println("each candidate faster (fewer, coarser factors), which is why")
	fmt.Println("the paper's OD-DFS outperforms LB-DFS (Figure 18).")
}

type query struct {
	src, dst pathcost.VertexID
	freeflow float64
}

// pickQueries samples OD pairs with moderate free-flow distances.
func pickQueries(sys *pathcost.System, n int) []query {
	var out []query
	for v := 0; len(out) < n && v < sys.Graph.NumVertices(); v += 97 {
		src := pathcost.VertexID(v)
		dists := sys.Graph.ShortestDistances(src, graph.FreeFlowWeight)
		var dst pathcost.VertexID = -1
		best := 0.0
		for u, d := range dists {
			if pathcost.VertexID(u) != src && !math.IsInf(d, 1) && d > best && d < 220 && d > 90 {
				best = d
				dst = pathcost.VertexID(u)
			}
		}
		if dst >= 0 {
			out = append(out, query{src: src, dst: dst, freeflow: best})
		}
	}
	return out
}
