package stats

import (
	"fmt"
	"math"
)

// Fitted is a fitted standard distribution exposing its CDF; the
// Figure 11(a) comparison only needs CDF evaluations on the raw
// value lattice.
type Fitted struct {
	Name string
	CDF  func(x float64) float64
	Mean float64
}

// FitGaussian fits a normal distribution by maximum likelihood
// (sample mean and sample standard deviation).
func FitGaussian(samples []float64) (Fitted, error) {
	if len(samples) < 2 {
		return Fitted{}, fmt.Errorf("stats: need ≥ 2 samples to fit a Gaussian")
	}
	mu := Mean(samples)
	sd := math.Sqrt(Variance(samples))
	if sd <= 0 {
		sd = 1e-6 // degenerate data; keep the CDF well-defined
	}
	return Fitted{
		Name: "gaussian",
		Mean: mu,
		CDF: func(x float64) float64 {
			return 0.5 * (1 + math.Erf((x-mu)/(sd*math.Sqrt2)))
		},
	}, nil
}

// FitExponential fits a (non-shifted) exponential distribution by
// maximum likelihood: rate = 1/mean. Samples must be positive on
// average.
func FitExponential(samples []float64) (Fitted, error) {
	if len(samples) == 0 {
		return Fitted{}, fmt.Errorf("stats: no samples")
	}
	mu := Mean(samples)
	if mu <= 0 {
		return Fitted{}, fmt.Errorf("stats: exponential fit needs positive mean, got %v", mu)
	}
	rate := 1 / mu
	return Fitted{
		Name: "exponential",
		Mean: mu,
		CDF: func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			return 1 - math.Exp(-rate*x)
		},
	}, nil
}

// FitGamma fits a gamma distribution by maximum likelihood using the
// standard Newton iteration on the shape parameter k:
//
//	log(k) − ψ(k) = log(mean) − mean(log x)
//
// with θ = mean/k. All samples must be positive.
func FitGamma(samples []float64) (Fitted, error) {
	if len(samples) < 2 {
		return Fitted{}, fmt.Errorf("stats: need ≥ 2 samples to fit a Gamma")
	}
	var sum, sumLog float64
	for _, x := range samples {
		if x <= 0 {
			return Fitted{}, fmt.Errorf("stats: gamma fit needs positive samples, got %v", x)
		}
		sum += x
		sumLog += math.Log(x)
	}
	n := float64(len(samples))
	mu := sum / n
	s := math.Log(mu) - sumLog/n
	if s <= 0 {
		// Nearly constant data; use a huge shape (tight around the mean).
		s = 1e-9
	}
	// Minka's initialization followed by Newton steps.
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	for i := 0; i < 50; i++ {
		f := math.Log(k) - digamma(k) - s
		fp := 1/k - trigamma(k)
		nk := k - f/fp
		if nk <= 0 || math.IsNaN(nk) {
			break
		}
		if math.Abs(nk-k) < 1e-12*k {
			k = nk
			break
		}
		k = nk
	}
	theta := mu / k
	return Fitted{
		Name: "gamma",
		Mean: mu,
		CDF: func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			return regularizedGammaP(k, x/theta)
		},
	}, nil
}

// digamma computes ψ(x) via the recurrence and asymptotic expansion.
func digamma(x float64) float64 {
	var r float64
	for x < 10 {
		r -= 1 / x
		x++
	}
	f := 1 / (x * x)
	return r + math.Log(x) - 0.5/x -
		f*(1.0/12-f*(1.0/120-f*(1.0/252-f*(1.0/240-f/132))))
}

// trigamma computes ψ′(x) via the recurrence and asymptotic expansion.
func trigamma(x float64) float64 {
	var r float64
	for x < 10 {
		r += 1 / (x * x)
		x++
	}
	f := 1 / (x * x)
	return r + 1/x + f/2 + f/x*(1.0/6-f*(1.0/30-f*(1.0/42-f/30)))
}

// regularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function, via the series expansion for x < a+1 and the
// continued fraction otherwise (Numerical Recipes style).
func regularizedGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-14 {
				break
			}
		}
		lg, _ := math.Lgamma(a)
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a, x); P = 1 − Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	p := 1 - q
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
