package stats

import (
	"math"
	"sort"

	"repro/internal/hist"
)

func sortFloats(xs []float64) { sort.Float64s(xs) }

// EntropyHistogram returns the differential entropy of a
// piecewise-uniform histogram: −Σ pr·log(pr/width) in nats.
func EntropyHistogram(h *hist.Histogram) float64 {
	var e float64
	for _, b := range h.Buckets() {
		if b.Pr <= 0 {
			continue
		}
		e -= b.Pr * math.Log(b.Pr/b.Width())
	}
	return e
}

// EntropyMulti returns the differential entropy of a multi-dimensional
// histogram: −Σ pr·log(pr/volume) in nats, where volume is the
// hyper-bucket's product of side lengths. This is the H(·) of
// Theorem 2 under the histogram representation.
func EntropyMulti(m *hist.Multi) float64 {
	var e float64
	// Sorted order: float accumulation is not associative, so an
	// arbitrary iteration order would make repeated entropy
	// computations differ at the bit level between runs (see
	// hist.Multi.Total). The columnar store keeps cells in exactly
	// this order, so the scan is direct.
	keys, probs := m.Cells()
	for i, k := range keys {
		pr := probs[i]
		if pr <= 0 {
			continue
		}
		vol := 1.0
		for d := 0; d < m.Dims(); d++ {
			lo, hi := m.BucketRange(d, int(k.Dim(d)))
			vol *= hi - lo
		}
		e -= pr * math.Log(pr/vol)
	}
	return e
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
