// Package stats provides the statistical measures used in the paper's
// analyses and evaluation: Kullback-Leibler divergence between cost
// distributions (Figures 4, 11, 14), entropies of histograms and joint
// histograms (Theorem 2, Figures 8 and 15), and maximum-likelihood
// fits of the standard distributions the paper compares against
// (Gaussian, Gamma, exponential; Figures 1(b) and 11(a)).
package stats

import (
	"math"

	"repro/internal/hist"
)

// SmoothEps is the mass mixed into the reference distribution when
// computing KL divergence so that the divergence stays finite where
// the reference has empty support; the paper's KL comparisons
// implicitly need the same guard.
const SmoothEps = 1e-9

// KLHistograms returns KL(P ‖ Q) for piecewise-uniform histograms:
// the integral of p·log(p/q) over the union of bucket boundaries.
// Regions where P has mass but Q does not contribute via an
// ε-smoothed Q to keep the result finite; the result is never
// negative (clamped at 0 against floating-point noise).
func KLHistograms(p, q *hist.Histogram) float64 {
	cuts := make([]float64, 0, 2*(p.NumBuckets()+q.NumBuckets()))
	for _, b := range p.Buckets() {
		cuts = append(cuts, b.Lo, b.Hi)
	}
	for _, b := range q.Buckets() {
		cuts = append(cuts, b.Lo, b.Hi)
	}
	cuts = sortedUnique(cuts)

	lo := math.Min(p.Min(), q.Min())
	hi := math.Max(p.Max(), q.Max())
	span := hi - lo
	var kl float64
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		pm := p.MassOn(a, b)
		if pm <= 0 {
			continue
		}
		qm := q.MassOn(a, b)
		// Smooth Q with a tiny uniform component over the joint span.
		qm = (1-SmoothEps)*qm + SmoothEps*(b-a)/span
		kl += pm * math.Log(pm/qm)
	}
	if kl < 0 {
		kl = 0
	}
	return kl
}

// KLRawVsHistogram returns the discrete KL divergence of the histogram
// approximation H from the raw cost distribution D over D's value
// lattice: Σ_c D(c)·log(D(c)/H(c)), with H(c) the histogram mass on
// the lattice cell of c (ε-smoothed). This is the comparison behind
// Figure 11(a)/(b).
func KLRawVsHistogram(d *hist.Raw, h *hist.Histogram) float64 {
	var kl float64
	for _, e := range d.Entries {
		hm := h.MassOn(e.Value, e.Value+d.Resolution)
		hm = (1-SmoothEps)*hm + SmoothEps/float64(d.NumDistinct())
		kl += e.Perc * math.Log(e.Perc/hm)
	}
	if kl < 0 {
		kl = 0
	}
	return kl
}

// KLRawVsFunc returns the discrete KL divergence of a fitted
// continuous distribution (given by its CDF) from the raw
// distribution, evaluated on the raw value lattice.
func KLRawVsFunc(d *hist.Raw, cdf func(float64) float64) float64 {
	var kl float64
	for _, e := range d.Entries {
		m := cdf(e.Value+d.Resolution) - cdf(e.Value)
		if m < 0 {
			m = 0
		}
		m = (1-SmoothEps)*m + SmoothEps/float64(d.NumDistinct())
		kl += e.Perc * math.Log(e.Perc/m)
	}
	if kl < 0 {
		kl = 0
	}
	return kl
}

func sortedUnique(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	// Insertion sort is fine for the small cut sets seen here, but use
	// the library sort for clarity and robustness.
	sortFloats(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
