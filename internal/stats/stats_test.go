package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hist"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func uniformHist(t testing.TB, lo, hi float64) *hist.Histogram {
	t.Helper()
	h, err := hist.FromBuckets([]hist.Bucket{{Lo: lo, Hi: hi, Pr: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestKLSelfIsZero(t *testing.T) {
	h := uniformHist(t, 0, 10)
	if got := KLHistograms(h, h); got > 1e-9 {
		t.Fatalf("KL(P‖P) = %v, want ~0", got)
	}
}

func TestKLAsymmetricAndPositive(t *testing.T) {
	p := uniformHist(t, 0, 5)
	q := uniformHist(t, 0, 10)
	pq := KLHistograms(p, q)
	qp := KLHistograms(q, p)
	if pq <= 0 {
		t.Fatalf("KL(p‖q) = %v, want > 0", pq)
	}
	// KL(uniform[0,5] ‖ uniform[0,10]) = log 2 exactly.
	if !almostEq(pq, math.Log(2), 1e-6) {
		t.Fatalf("KL = %v, want log 2 = %v", pq, math.Log(2))
	}
	// q has mass where p has none; smoothing keeps it finite but large.
	if qp <= pq {
		t.Fatalf("KL(q‖p) = %v should exceed KL(p‖q) = %v", qp, pq)
	}
	if math.IsInf(qp, 1) {
		t.Fatal("smoothed KL must be finite")
	}
}

func TestKLDisjointSupportsFinite(t *testing.T) {
	p := uniformHist(t, 0, 1)
	q := uniformHist(t, 100, 101)
	kl := KLHistograms(p, q)
	if math.IsInf(kl, 1) || math.IsNaN(kl) {
		t.Fatalf("KL = %v, want finite", kl)
	}
	if kl < 5 {
		t.Fatalf("KL = %v, want large for disjoint supports", kl)
	}
}

func TestKLMoreSimilarIsSmaller(t *testing.T) {
	p := uniformHist(t, 0, 10)
	close := uniformHist(t, 0, 11)
	far := uniformHist(t, 0, 30)
	if KLHistograms(p, close) >= KLHistograms(p, far) {
		t.Fatal("closer distribution should have smaller divergence")
	}
}

func TestKLRawVsHistogramExactFit(t *testing.T) {
	samples := []float64{10, 10, 11, 12, 12, 12}
	raw, err := hist.NewRaw(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := hist.VOptimal(raw, raw.NumDistinct())
	if err != nil {
		t.Fatal(err)
	}
	if got := KLRawVsHistogram(raw, exact); got > 1e-6 {
		t.Fatalf("KL vs exact histogram = %v, want ~0", got)
	}
	coarse, err := hist.VOptimal(raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if KLRawVsHistogram(raw, coarse) <= KLRawVsHistogram(raw, exact) {
		t.Fatal("coarser histogram must have larger divergence")
	}
}

func TestEntropyHistogramUniform(t *testing.T) {
	// Differential entropy of uniform [0, w) is log w.
	for _, w := range []float64{1, 2, 10, 100} {
		h := uniformHist(t, 0, w)
		if got := EntropyHistogram(h); !almostEq(got, math.Log(w), 1e-9) {
			t.Errorf("entropy(U[0,%v)) = %v, want %v", w, got, math.Log(w))
		}
	}
}

func TestEntropyMoreConcentratedIsSmaller(t *testing.T) {
	wide := uniformHist(t, 0, 100)
	narrow := uniformHist(t, 0, 10)
	if EntropyHistogram(narrow) >= EntropyHistogram(wide) {
		t.Fatal("narrow distribution must have lower entropy")
	}
}

func TestEntropyMultiMatchesProductOfIndependents(t *testing.T) {
	// For independent dims, joint entropy = sum of marginal entropies.
	m, err := hist.NewMulti([][]float64{{0, 10, 20}, {0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	// p(x) = (0.3, 0.7), y uniform single bucket.
	m.SetCell([]int{0, 0}, 0.3)
	m.SetCell([]int{1, 0}, 0.7)
	joint := EntropyMulti(m)
	want := EntropyHistogram(m.Marginal(0)) + EntropyHistogram(m.Marginal(1))
	if !almostEq(joint, want, 1e-9) {
		t.Fatalf("joint entropy %v, want %v", joint, want)
	}
}

func TestEntropyMultiDependenceReducesEntropy(t *testing.T) {
	bounds := [][]float64{{0, 1, 2}, {0, 1, 2}}
	indep, _ := hist.NewMulti(bounds)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			indep.SetCell([]int{i, j}, 0.25)
		}
	}
	dep, _ := hist.NewMulti(bounds)
	dep.SetCell([]int{0, 0}, 0.5)
	dep.SetCell([]int{1, 1}, 0.5)
	if EntropyMulti(dep) >= EntropyMulti(indep) {
		t.Fatal("perfectly correlated joint must have lower entropy")
	}
	// Marginals agree, so the difference is purely dependency.
	if !almostEq(EntropyHistogram(dep.Marginal(0)), EntropyHistogram(indep.Marginal(0)), 1e-12) {
		t.Fatal("marginals should match")
	}
}

func TestFitGaussianRecoversParameters(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = 100 + rnd.NormFloat64()*15
	}
	fit, err := FitGaussian(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mean-100) > 0.5 {
		t.Fatalf("mean = %v", fit.Mean)
	}
	// CDF at mean = 0.5; at mean+1.96σ ≈ 0.975.
	if !almostEq(fit.CDF(fit.Mean), 0.5, 0.01) {
		t.Fatalf("CDF(mean) = %v", fit.CDF(fit.Mean))
	}
	if !almostEq(fit.CDF(100+1.96*15), 0.975, 0.01) {
		t.Fatalf("CDF(mean+1.96σ) = %v", fit.CDF(100+1.96*15))
	}
	if _, err := FitGaussian([]float64{1}); err == nil {
		t.Fatal("single sample should error")
	}
}

func TestFitExponential(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = rnd.ExpFloat64() * 30 // mean 30
	}
	fit, err := FitExponential(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mean-30) > 1 {
		t.Fatalf("mean = %v", fit.Mean)
	}
	if !almostEq(fit.CDF(30*math.Log(2)), 0.5, 0.02) {
		t.Fatalf("CDF(median) = %v", fit.CDF(30*math.Log(2)))
	}
	if fit.CDF(-5) != 0 {
		t.Fatal("CDF of negative value must be 0")
	}
	if _, err := FitExponential([]float64{-1, -2}); err == nil {
		t.Fatal("negative mean should error")
	}
	if _, err := FitExponential(nil); err == nil {
		t.Fatal("empty should error")
	}
}

func TestFitGammaRecoversShape(t *testing.T) {
	// Gamma(k=4, θ=10): mean 40, simulate via sum of 4 exponentials.
	rnd := rand.New(rand.NewSource(3))
	samples := make([]float64, 20000)
	for i := range samples {
		var s float64
		for j := 0; j < 4; j++ {
			s += rnd.ExpFloat64() * 10
		}
		samples[i] = s
	}
	fit, err := FitGamma(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mean-40) > 1 {
		t.Fatalf("mean = %v", fit.Mean)
	}
	// Median of Gamma(4,10) ≈ 36.7.
	med := fit.CDF(36.7)
	if !almostEq(med, 0.5, 0.03) {
		t.Fatalf("CDF(36.7) = %v, want ≈0.5", med)
	}
	if fit.CDF(0) != 0 {
		t.Fatal("CDF(0) must be 0")
	}
	if got := fit.CDF(1e6); !almostEq(got, 1, 1e-6) {
		t.Fatalf("CDF(huge) = %v", got)
	}
	if _, err := FitGamma([]float64{1, -1}); err == nil {
		t.Fatal("non-positive samples should error")
	}
}

func TestKLRawVsFuncPrefersBetterFit(t *testing.T) {
	// Bimodal data: neither Gaussian nor exponential fits well, but the
	// Gaussian (matching mean/variance) should beat the exponential,
	// and an exact histogram beats both — the Figure 11(a) ordering.
	rnd := rand.New(rand.NewSource(4))
	var samples []float64
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			samples = append(samples, math.Round(80+rnd.NormFloat64()*4))
		} else {
			samples = append(samples, math.Round(140+rnd.NormFloat64()*6))
		}
	}
	raw, err := hist.NewRaw(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := FitGaussian(samples)
	e, _ := FitExponential(samples)
	auto, _, err := hist.AutoHistogram(samples, 1, hist.DefaultAutoConfig())
	if err != nil {
		t.Fatal(err)
	}
	klG := KLRawVsFunc(raw, g.CDF)
	klE := KLRawVsFunc(raw, e.CDF)
	klA := KLRawVsHistogram(raw, auto)
	if !(klA < klG && klG < klE) {
		t.Fatalf("ordering violated: auto %v, gaussian %v, exponential %v", klA, klG, klE)
	}
}

func TestDigammaTrigammaKnownValues(t *testing.T) {
	// ψ(1) = −γ (Euler–Mascheroni), ψ′(1) = π²/6.
	const gamma = 0.5772156649015329
	if got := digamma(1); !almostEq(got, -gamma, 1e-10) {
		t.Fatalf("digamma(1) = %v, want %v", got, -gamma)
	}
	if got := trigamma(1); !almostEq(got, math.Pi*math.Pi/6, 1e-10) {
		t.Fatalf("trigamma(1) = %v, want %v", got, math.Pi*math.Pi/6)
	}
	// Recurrence check: ψ(x+1) = ψ(x) + 1/x.
	for _, x := range []float64{0.5, 2.3, 7.7} {
		if got := digamma(x + 1); !almostEq(got, digamma(x)+1/x, 1e-10) {
			t.Fatalf("digamma recurrence fails at %v", x)
		}
	}
}

func TestRegularizedGammaP(t *testing.T) {
	// P(1, x) = 1 − e^{−x} (exponential CDF).
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := 1 - math.Exp(-x)
		if got := regularizedGammaP(1, x); !almostEq(got, want, 1e-10) {
			t.Fatalf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	if regularizedGammaP(3, 0) != 0 {
		t.Fatal("P(a,0) must be 0")
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x < 20; x += 0.5 {
		p := regularizedGammaP(2.5, x)
		if p < prev-1e-12 {
			t.Fatalf("P(2.5,·) not monotone at %v", x)
		}
		prev = p
	}
}

func TestMeanVariancePercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Fatal("mean")
	}
	if Variance(xs) != 2 {
		t.Fatalf("variance = %v, want 2", Variance(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile extremes")
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Percentile must not mutate its input.
	ys := []float64{5, 1, 3}
	Percentile(ys, 50)
	if ys[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}
