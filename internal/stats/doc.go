// Package stats provides the statistical machinery behind the
// empirical study: distribution fitting against standard families,
// Kullback–Leibler divergence between estimated and ground-truth
// histograms (the accuracy metric of the paper's Figures 13–14), and
// differential entropy (the informativeness metric of Figure 15).
package stats
