package core

import (
	"fmt"
	"sync"

	"repro/internal/gps"
	"repro/internal/graph"
)

// TimeInterval is an absolute-time interval [Lo, Hi] used by the
// shift-and-enlarge computation (Eq. 3).
type TimeInterval struct {
	Lo, Hi float64
}

// Width returns Hi − Lo.
func (ti TimeInterval) Width() float64 { return ti.Hi - ti.Lo }

// sae implements SAE([ts,te], V) = [ts + V.min, te + V.max] (Eq. 3),
// always over travel time (even when the cost domain is emissions).
func sae(ti TimeInterval, v *Variable) TimeInterval {
	return TimeInterval{Lo: ti.Lo + v.TimeMin, Hi: ti.Hi + v.TimeMax}
}

// overlapWithInterval measures |I_j ∩ UI| where I_j is a time-of-day
// interval and UI an absolute interval; the interval repeats daily, so
// the overlap accumulates across the days UI spans.
func (h *HybridGraph) overlapWithInterval(iv int, ui TimeInterval) float64 {
	ivLo, ivHi := h.Params.IntervalBounds(iv)
	day := gps.SecondsPerDay
	if ui.Width() == 0 {
		// A point departure interval (the query's own departure time,
		// UI_1 = [t, t]): relevance is containment.
		tod := gps.SecondsOfDay(ui.Lo)
		if tod >= ivLo && tod < ivHi {
			return 1
		}
		return 0
	}
	var total float64
	// Iterate the daily copies of I_j that can intersect UI.
	firstDay := int((ui.Lo - ivHi) / day)
	for d := firstDay - 1; ; d++ {
		lo := float64(d)*day + ivLo
		hi := float64(d)*day + ivHi
		if lo > ui.Hi {
			break
		}
		ol := minF(hi, ui.Hi) - maxF(lo, ui.Lo)
		if ol > 0 {
			total += ol
		}
	}
	return total
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// CandidateRow is one row of the two-dimensional candidate array
// (Table 1): the spatio-temporally relevant variables whose paths
// start at the k-th edge of the query path, ordered by rank.
type CandidateRow struct {
	Edge graph.EdgeID
	Vars []*Variable // ascending rank; always ≥ 1 entry (unit fallback)
}

// CandidateArray holds one row per query-path edge plus the updated
// departure intervals UI_k used for temporal relevance.
type CandidateArray struct {
	Rows []CandidateRow
	UIs  []TimeInterval

	// Per-row overlap memo: |I_j ∩ UI_k| depends only on the interval
	// index and the row's departure interval, but is probed once per
	// candidate variable — many of which share intervals. ovSet uses a
	// generation counter so clearing the memo between rows is O(1).
	ovPr  []float64
	ovSet []uint32
	ovGen uint32

	// Relevant-interval window of the current row: interval j can have
	// positive overlap with UI_k only when (j − ivFirst) mod nIv ≤
	// ivSpan. The window is conservative (it may include zero-overlap
	// boundary intervals, which never win selection), so filtering with
	// it changes no picks.
	ivFirst, ivSpan, ivCount int
}

// ivRelevant reports whether interval j can overlap the current row's
// departure interval.
func (ca *CandidateArray) ivRelevant(j int) bool {
	d := j - ca.ivFirst
	if d < 0 {
		d += ca.ivCount
	}
	return d <= ca.ivSpan
}

// caPool recycles candidate arrays: one is built and discarded per
// query, and its row/interval slices dominate the per-query allocation
// profile otherwise.
var caPool = sync.Pool{New: func() any { return new(CandidateArray) }}

// Release returns the candidate array to the internal pool. Call it
// once the decomposition has been selected; decompositions stay valid
// (they reference the model's variables, never the array). The array
// must not be used after Release.
func (ca *CandidateArray) Release() {
	caPool.Put(ca)
}

// getCandidateArray returns a pooled array resized for an n-edge query
// with empty rows.
func getCandidateArray(n int) *CandidateArray {
	ca := caPool.Get().(*CandidateArray)
	if cap(ca.Rows) < n {
		ca.Rows = make([]CandidateRow, n)
	} else {
		ca.Rows = ca.Rows[:n]
		for k := range ca.Rows {
			ca.Rows[k].Edge = 0
			ca.Rows[k].Vars = ca.Rows[k].Vars[:0]
		}
	}
	if cap(ca.UIs) < n {
		ca.UIs = make([]TimeInterval, n)
	} else {
		ca.UIs = ca.UIs[:n]
	}
	return ca
}

// BuildCandidateArray computes the spatially and temporally relevant
// instantiated variables for query path p departing at t
// (Section 4.1.3). Row k always contains a rank-1 variable: the
// trajectory-backed one when temporally relevant, else the speed-limit
// fallback, so a decomposition covering p always exists.
func (h *HybridGraph) BuildCandidateArray(p graph.Path, t float64) (*CandidateArray, error) {
	ca, _, err := h.buildCandidateArrayFrom(p, TimeInterval{Lo: t, Hi: t})
	return ca, err
}

// buildCandidateArrayFrom is BuildCandidateArray seeded with an
// arbitrary departure interval — the continuation case of cross-shard
// evaluation, where UI_0 is the interval relayed from the previous
// segment rather than the query's point departure. It also returns the
// interval past the last edge (the next segment's seed). UI chaining
// is a left fold over single-edge variables, so segment-local chaining
// from a relayed interval reproduces the whole-path intervals exactly.
func (h *HybridGraph) buildCandidateArrayFrom(p graph.Path, ui0 TimeInterval) (*CandidateArray, TimeInterval, error) {
	if !h.G.ValidPath(p) {
		return nil, TimeInterval{}, fmt.Errorf("core: query %v is not a valid path", p)
	}
	ca := getCandidateArray(len(p))
	nIv := h.Params.NumIntervals()
	ivSec := h.Params.IntervalSeconds()
	// One pass over the rows: the departure interval UI_k is chained
	// per Eq. 3 (driven by the rank-1 variables of the preceding edges)
	// and consumed by row k's relevance scan in the same iteration, so
	// the per-row overlap memo serves both the unit-variable pick and
	// every candidate variable of the row.
	ui := ui0
	for k := range p {
		ca.UIs[k] = ui
		ca.beginRow(nIv, ui, ivSec)
		unit := h.bestUnitVariable(p[k], ui, ca)
		ca.Rows[k].Edge = p[k]
		// Spatial relevance: instantiated paths starting at p[k] that
		// are sub-paths of p aligned at position k.
		for _, pv := range h.byStart[p[k]] {
			if k+len(pv.path) > len(p) {
				continue
			}
			aligned := true
			for j, e := range pv.path {
				if p[k+j] != e {
					aligned = false
					break
				}
			}
			if !aligned {
				continue
			}
			// Temporal relevance: the variable's interval must
			// intersect UI_k; among multiple intervals of the same
			// path, keep the largest-overlap one. Iterating the
			// interval-sorted view (never the map) breaks overlap
			// ties toward the earliest interval, keeping repeated
			// queries deterministic.
			var best *Variable
			var bestOverlap float64
			for _, v := range pv.sorted {
				if !ca.ivRelevant(v.Interval) {
					continue // provably zero overlap; cannot win
				}
				ol := ca.overlapMemo(h, v.Interval, ui)
				if ol > bestOverlap {
					bestOverlap = ol
					best = v
				}
			}
			if best != nil {
				ca.Rows[k].Vars = append(ca.Rows[k].Vars, best)
			}
		}
		// Guarantee a rank-1 entry.
		hasUnit := false
		for _, v := range ca.Rows[k].Vars {
			if v.Rank() == 1 {
				hasUnit = true
				break
			}
		}
		if !hasUnit {
			vars := append(ca.Rows[k].Vars, nil)
			copy(vars[1:], vars)
			vars[0] = h.fallbackVariable(p[k])
			ca.Rows[k].Vars = vars
		}
		sortByRank(ca.Rows[k].Vars)
		ui = sae(ui, unit)
	}
	return ca, ui, nil
}

// beginRow readies the overlap memo and the relevant-interval window
// for a new row (a new UI).
func (ca *CandidateArray) beginRow(nIv int, ui TimeInterval, ivSec float64) {
	if cap(ca.ovPr) < nIv {
		ca.ovPr = make([]float64, nIv)
		ca.ovSet = make([]uint32, nIv)
		ca.ovGen = 1
	} else {
		ca.ovPr = ca.ovPr[:nIv]
		ca.ovSet = ca.ovSet[:nIv]
		ca.ovGen++
		if ca.ovGen == 0 { // generation wrap: invalidate explicitly
			clear(ca.ovSet)
			ca.ovGen = 1
		}
	}
	ca.ivCount = nIv
	// The UI covers the circular arc starting at tod(ui.Lo) of length
	// ui.Width(); only the α-intervals touching that arc can overlap.
	// A window spanning a full day admits every interval.
	if ui.Width() >= gps.SecondsPerDay-ivSec {
		ca.ivFirst, ca.ivSpan = 0, nIv
		return
	}
	a := gps.SecondsOfDay(ui.Lo)
	first := int(a / ivSec)
	span := int((a+ui.Width())/ivSec) - first
	if first >= nIv { // tod rounding at the day boundary
		first = nIv - 1
	}
	if span >= nIv {
		span = nIv
	}
	ca.ivFirst, ca.ivSpan = first, span
}

// overlapMemo returns h.overlapWithInterval(iv, ui) memoized for the
// current row. The cached value is exactly the function's result —
// identical floats, identical selections.
func (ca *CandidateArray) overlapMemo(h *HybridGraph, iv int, ui TimeInterval) float64 {
	if iv < 0 || iv >= len(ca.ovPr) {
		return h.overlapWithInterval(iv, ui)
	}
	if ca.ovSet[iv] == ca.ovGen {
		return ca.ovPr[iv]
	}
	ol := h.overlapWithInterval(iv, ui)
	ca.ovPr[iv] = ol
	ca.ovSet[iv] = ca.ovGen
	return ol
}

func sortByRank(vs []*Variable) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Rank() < vs[j-1].Rank(); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// bestUnitVariable picks the rank-1 variable of edge e whose interval
// overlaps ui the most, falling back to the speed-limit variable. ca
// (optional) supplies the row-scoped overlap memo.
func (h *HybridGraph) bestUnitVariable(e graph.EdgeID, ui TimeInterval, ca *CandidateArray) *Variable {
	var pv *pathVars
	if int(e) >= 0 && int(e) < len(h.unit) {
		pv = h.unit[e]
	}
	ok := pv != nil
	if ok {
		// Sorted iteration: overlap ties resolve to the earliest
		// interval, deterministically (see BuildCandidateArray).
		var best *Variable
		var bestOverlap float64
		for _, v := range pv.sorted {
			var ol float64
			if ca != nil {
				if !ca.ivRelevant(v.Interval) {
					continue // provably zero overlap; cannot win
				}
				ol = ca.overlapMemo(h, v.Interval, ui)
			} else {
				ol = h.overlapWithInterval(v.Interval, ui)
			}
			if ol > bestOverlap {
				bestOverlap = ol
				best = v
			}
		}
		if best != nil {
			return best
		}
	}
	return h.fallbackVariable(e)
}

// Decomposition is an ordered sequence of selected variables whose
// paths cover the query path (Section 4.1.1). Pos[i] is the position
// of Paths[i]'s first edge within the query path.
type Decomposition struct {
	Vars []*Variable
	Pos  []int
}

// Cardinality returns the number of paths in the decomposition.
func (d *Decomposition) Cardinality() int { return len(d.Vars) }

// MaxRank returns the largest rank among the selected variables.
func (d *Decomposition) MaxRank() int {
	m := 0
	for _, v := range d.Vars {
		if v.Rank() > m {
			m = v.Rank()
		}
	}
	return m
}

// CoarsestDecomposition implements Algorithm 1: per row take the
// highest-rank relevant variable (optionally capped at maxRank; 0
// means uncapped), omit paths that are sub-paths of already selected
// ones, and return the unique coarsest decomposition (Theorem 4).
func (ca *CandidateArray) CoarsestDecomposition(maxRank int) *Decomposition {
	de := &Decomposition{
		Vars: make([]*Variable, 0, len(ca.Rows)),
		Pos:  make([]int, 0, len(ca.Rows)),
	}
	covered := -1 // last query position covered so far
	for k, row := range ca.Rows {
		var pick *Variable
		for i := len(row.Vars) - 1; i >= 0; i-- {
			if maxRank <= 0 || row.Vars[i].Rank() <= maxRank {
				pick = row.Vars[i]
				break
			}
		}
		if pick == nil {
			pick = row.Vars[0]
		}
		// Sub-path test: with per-row maximal picks aligned at k, the
		// pick is a sub-path of an earlier pick iff it ends no later
		// than the furthest coverage.
		end := k + pick.Rank() - 1
		if end <= covered {
			continue
		}
		de.Vars = append(de.Vars, pick)
		de.Pos = append(de.Pos, k)
		covered = end
	}
	return de
}

// Intner is any deterministic integer source (math/rand.Rand works).
type Intner interface {
	Intn(n int) int
}

// RandomDecomposition builds the RD baseline's decomposition: per row
// a uniformly random-rank relevant variable is considered, and the
// usual sub-path elimination is applied.
func (ca *CandidateArray) RandomDecomposition(rnd Intner) *Decomposition {
	de := &Decomposition{}
	covered := -1
	for k, row := range ca.Rows {
		pick := row.Vars[rnd.Intn(len(row.Vars))]
		end := k + pick.Rank() - 1
		if end <= covered {
			continue
		}
		de.Vars = append(de.Vars, pick)
		de.Pos = append(de.Pos, k)
		covered = end
	}
	return de
}

// PairDecomposition builds the HP baseline's decomposition: the
// rank-2 variable for every adjacent edge pair when relevant, unit
// variables to fill pairs without data. Rank > 2 variables are never
// used (the HP method of [10] models pairwise dependence only).
func (ca *CandidateArray) PairDecomposition() *Decomposition {
	de := &Decomposition{}
	covered := -1
	for k, row := range ca.Rows {
		var pick *Variable
		// Prefer the rank-2 variable; otherwise the best rank-1.
		for _, v := range row.Vars {
			switch v.Rank() {
			case 2:
				pick = v
			case 1:
				if pick == nil {
					pick = v
				}
			}
			if pick != nil && pick.Rank() == 2 {
				break
			}
		}
		end := k + pick.Rank() - 1
		if end <= covered {
			continue
		}
		de.Vars = append(de.Vars, pick)
		de.Pos = append(de.Pos, k)
		covered = end
	}
	return de
}

// UnitDecomposition builds the LB baseline's decomposition: one rank-1
// variable per edge (the legacy edge-granularity model of Section 2.3).
func (ca *CandidateArray) UnitDecomposition() *Decomposition {
	de := &Decomposition{}
	for k, row := range ca.Rows {
		de.Vars = append(de.Vars, row.Vars[0]) // rank-1 is always first
		de.Pos = append(de.Pos, k)
	}
	return de
}

// Validate checks the Section 4.1.1 decomposition conditions against
// the query path.
func (d *Decomposition) Validate(query graph.Path) error {
	if len(d.Vars) == 0 {
		return fmt.Errorf("core: empty decomposition")
	}
	// Typical queries fit the stack array; only pathological path
	// lengths allocate.
	var coveredArr [64]bool
	var covered []bool
	if len(query) <= len(coveredArr) {
		covered = coveredArr[:len(query)]
	} else {
		covered = make([]bool, len(query))
	}
	prevPos := -1
	for i, v := range d.Vars {
		pos := d.Pos[i]
		if pos <= prevPos {
			return fmt.Errorf("core: decomposition not ordered by start position")
		}
		prevPos = pos
		if pos < 0 || pos >= len(query) {
			// Checked separately from the overrun test below: on
			// untrusted positions pos+Rank() can overflow and wrap
			// negative, slipping past the bound into an index panic.
			return fmt.Errorf("core: path %v starts outside the query (position %d)", v.Path, pos)
		}
		if pos+v.Rank() > len(query) {
			return fmt.Errorf("core: path %v overruns the query", v.Path)
		}
		for j, e := range v.Path {
			if query[pos+j] != e {
				return fmt.Errorf("core: path %v misaligned at query position %d", v.Path, pos)
			}
			covered[pos+j] = true
		}
		// Condition (3): no selected path is a sub-path of another.
		for j, w := range d.Vars {
			if i == j {
				continue
			}
			if d.Pos[j] <= pos && d.Pos[j]+w.Rank() >= pos+v.Rank() {
				return fmt.Errorf("core: %v is a sub-path of %v", v.Path, w.Path)
			}
		}
	}
	for k, c := range covered {
		if !c {
			return fmt.Errorf("core: query edge at position %d not covered", k)
		}
	}
	return nil
}
