package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hist"
)

// These tests verify the paper's theorems numerically on exact
// discrete joints (unit-width buckets make differential and discrete
// entropy coincide). The estimated joint p̂ of a decomposition is
// computed by Equation 2 with factors that are exact marginals of the
// true joint p, which is the setting of Theorems 2 and 3.

// randomJoint3 builds a random strictly-positive 3-variable joint
// distribution on a 2×2×2 grid of unit buckets.
func randomJoint3(seed int64) *hist.Multi {
	rnd := rand.New(rand.NewSource(seed))
	m, err := hist.NewMulti([][]float64{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				m.SetCell([]int{i, j, k}, 0.05+rnd.Float64())
			}
		}
	}
	if err := m.Normalize(); err != nil {
		panic(err)
	}
	return m
}

// estimatePairChain computes p̂(c0,c1,c2) = p(c0,c1)·p(c1,c2)/p(c1)
// (the DE = (⟨e0,e1⟩, ⟨e1,e2⟩) decomposition) as a dense cell map.
func estimatePairChain(p *hist.Multi) map[[3]int]float64 {
	p01, _ := p.MarginalOnto([]int{0, 1})
	p12, _ := p.MarginalOnto([]int{1, 2})
	p1, _ := p.MarginalOnto([]int{1})
	out := make(map[[3]int]float64)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			den := p1.Cell([]int{j})
			for k := 0; k < 2; k++ {
				if den > 0 {
					out[[3]int{i, j, k}] = p01.Cell([]int{i, j}) * p12.Cell([]int{j, k}) / den
				}
			}
		}
	}
	return out
}

// estimateIndependent computes p̂ = p(c0)·p(c1)·p(c2) (the legacy
// all-unit decomposition).
func estimateIndependent(p *hist.Multi) map[[3]int]float64 {
	m0, _ := p.MarginalOnto([]int{0})
	m1, _ := p.MarginalOnto([]int{1})
	m2, _ := p.MarginalOnto([]int{2})
	out := make(map[[3]int]float64)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				out[[3]int{i, j, k}] = m0.Cell([]int{i}) * m1.Cell([]int{j}) * m2.Cell([]int{k})
			}
		}
	}
	return out
}

func jointCell(p *hist.Multi, i, j, k int) float64 {
	return p.Cell([]int{i, j, k})
}

func klCells(p *hist.Multi, q map[[3]int]float64) float64 {
	var kl float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				pv := jointCell(p, i, j, k)
				if pv <= 0 {
					continue
				}
				kl += pv * math.Log(pv/q[[3]int{i, j, k}])
			}
		}
	}
	return kl
}

func entropyCells(q map[[3]int]float64) float64 {
	var e float64
	for _, v := range q {
		if v > 0 {
			e -= v * math.Log(v)
		}
	}
	return e
}

func entropyJoint(p *hist.Multi) float64 {
	var e float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				v := jointCell(p, i, j, k)
				if v > 0 {
					e -= v * math.Log(v)
				}
			}
		}
	}
	return e
}

// TestTheorem2Identity verifies KL(p, p̂_DE) = H_DE(C_P) − H(C_P)
// (Theorem 2) for random joints under both the pair-chain and the
// independent decompositions.
func TestTheorem2Identity(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := randomJoint3(seed)
		hP := entropyJoint(p)
		for name, est := range map[string]map[[3]int]float64{
			"pair-chain":  estimatePairChain(p),
			"independent": estimateIndependent(p),
		} {
			kl := klCells(p, est)
			hDE := entropyCells(est)
			if math.Abs(kl-(hDE-hP)) > 1e-9 {
				t.Fatalf("seed %d %s: KL %v != H_DE−H = %v", seed, name, kl, hDE-hP)
			}
			if kl < -1e-12 {
				t.Fatalf("seed %d %s: negative KL %v", seed, name, kl)
			}
		}
	}
}

// TestTheorem3CoarserIsBetter verifies that the coarser decomposition
// (pair chain) never has larger divergence than the finer independent
// one (Theorem 3), and that a rank-3 "decomposition" (the joint
// itself) is exact.
func TestTheorem3CoarserIsBetter(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		p := randomJoint3(seed)
		klPair := klCells(p, estimatePairChain(p))
		klInd := klCells(p, estimateIndependent(p))
		if klPair > klInd+1e-9 {
			t.Fatalf("seed %d: KL(pair)=%v > KL(independent)=%v", seed, klPair, klInd)
		}
		// The full joint as its own (single-path) decomposition is exact.
		exact := make(map[[3]int]float64)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for k := 0; k < 2; k++ {
					exact[[3]int{i, j, k}] = jointCell(p, i, j, k)
				}
			}
		}
		if kl := klCells(p, exact); kl > 1e-12 {
			t.Fatalf("seed %d: exact decomposition has KL %v", seed, kl)
		}
	}
}

// TestTheorem1MarginalEntropy verifies the Theorem 1 building block:
// Σ_{C_P} p(C_P) · log p(C_{P′}) = −H(C_{P′}) for a sub-path marginal.
func TestTheorem1MarginalEntropy(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		p := randomJoint3(seed)
		p01, _ := p.MarginalOnto([]int{0, 1})
		// LHS: expectation over the full joint of log of the marginal.
		var lhs float64
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for k := 0; k < 2; k++ {
					pv := jointCell(p, i, j, k)
					if pv > 0 {
						lhs += pv * math.Log(p01.Cell([]int{i, j}))
					}
				}
			}
		}
		// RHS: −H of the marginal.
		var h01 float64
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				v := p01.Cell([]int{i, j})
				if v > 0 {
					h01 -= v * math.Log(v)
				}
			}
		}
		if math.Abs(lhs-(-h01)) > 1e-9 {
			t.Fatalf("seed %d: Theorem 1 identity violated: %v vs %v", seed, lhs, -h01)
		}
	}
}
