package core

import (
	"math/rand"
	"testing"

	"repro/internal/hist"
)

// Unit tests pinning foldCells' ordering invariant: folds must be
// produced in sorted cell-key order, because accCuts and
// distributeFolds accumulate floats over the fold sequence and float
// addition is not associative — map-order iteration would make chain
// states (and everything downstream: memo entries, synopsis entries,
// served answers) drift at the bit level between runs.

// foldFixtureMulti builds a 3-dim multi with adversarial masses (ones
// mixed with ~1e-16s) inserted in permuted order.
func foldFixtureMulti(t *testing.T, rnd *rand.Rand) *hist.Multi {
	t.Helper()
	bounds := [][]float64{
		{0, 1e-9, 5, 9},
		{0, 2, 4, 8, 16},
		{0, 3, 6},
	}
	m, err := hist.NewMulti(bounds)
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		idx []int
		pr  float64
	}
	var cells []cell
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 2; k++ {
				if rnd.Intn(3) == 0 {
					continue // keep it sparse
				}
				pr := rnd.Float64() * 1e-16
				if (i+j+k)%3 == 0 {
					pr = 1.0
				}
				cells = append(cells, cell{idx: []int{i, j, k}, pr: pr})
			}
		}
	}
	if len(cells) == 0 {
		cells = append(cells, cell{idx: []int{0, 0, 0}, pr: 1})
	}
	for _, ci := range rnd.Perm(len(cells)) {
		m.SetCell(cells[ci].idx, cells[ci].pr)
	}
	return m
}

// INVARIANT: the fold sequence follows sorted cell-key order exactly.
func TestFoldCellsSortedOrder(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		m := foldFixtureMulti(t, rnd)
		for _, keepIdx := range [][]int{nil, {1}, {2}, {1, 2}} {
			folds, nKept, err := foldCells(m, keepIdx)
			if err != nil {
				t.Fatal(err)
			}
			if nKept != len(keepIdx) {
				t.Fatalf("nKept = %d, want %d", nKept, len(keepIdx))
			}
			// Reconstruct the expected sequence via ForEachSorted and
			// compare element-wise: same order, same folded intervals,
			// same kept indexes, same probabilities.
			var want []cellFold
			m.ForEachSorted(func(k hist.CellKey, pr float64) {
				keepSet := make(map[int]bool, len(keepIdx))
				for _, d := range keepIdx {
					keepSet[d] = true
				}
				var lo, hi float64
				for d := 0; d < m.Dims(); d++ {
					if keepSet[d] {
						continue
					}
					l, u := m.BucketRange(d, int(k[d]))
					lo += l
					hi += u
				}
				idx := make([]int, len(keepIdx))
				for i, d := range keepIdx {
					idx[i] = int(k[d])
				}
				want = append(want, cellFold{lo: lo, hi: hi, idx: idx, pr: pr})
			})
			if len(folds) != len(want) {
				t.Fatalf("keep %v: %d folds, want %d", keepIdx, len(folds), len(want))
			}
			for i := range folds {
				if folds[i].lo != want[i].lo || folds[i].hi != want[i].hi || folds[i].pr != want[i].pr {
					t.Fatalf("keep %v: fold %d = %+v, want %+v (order or content drift)",
						keepIdx, i, folds[i], want[i])
				}
				for j := range folds[i].idx {
					if folds[i].idx[j] != want[i].idx[j] {
						t.Fatalf("keep %v: fold %d kept idx differs", keepIdx, i)
					}
				}
			}
		}
	}
}

// INVARIANT: two multis with identical cells inserted in different
// orders fold to bit-identical sequences, so accCuts and
// distributeFolds see the same float stream and chain states are
// insertion-order independent.
func TestFoldCellsInsertionOrderIndependent(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		a := foldFixtureMulti(t, rand.New(rand.NewSource(int64(100+trial))))
		b := foldFixtureMulti(t, rand.New(rand.NewSource(int64(100+trial))))
		// Same seed twice gives identical cells; force a genuinely
		// different insertion order by rebuilding b's grid from a's
		// sorted dump in reverse.
		bounds := make([][]float64, b.Dims())
		for d := range bounds {
			bounds[d] = b.Bounds(d)
		}
		rebuilt, err := hist.NewMulti(bounds)
		if err != nil {
			t.Fatal(err)
		}
		type cv struct {
			idx []int
			pr  float64
		}
		var cells []cv
		a.ForEachSorted(func(k hist.CellKey, pr float64) {
			cells = append(cells, cv{idx: []int{int(k[0]), int(k[1]), int(k[2])}, pr: pr})
		})
		for i := len(cells) - 1; i >= 0; i-- {
			rebuilt.SetCell(cells[i].idx, cells[i].pr)
		}
		for _, keepIdx := range [][]int{nil, {0}, {1, 2}} {
			fa, _, err1 := foldCells(a, keepIdx)
			fb, _, err2 := foldCells(rebuilt, keepIdx)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if len(fa) != len(fb) {
				t.Fatalf("trial %d keep %v: fold counts differ", trial, keepIdx)
			}
			for i := range fa {
				if fa[i].lo != fb[i].lo || fa[i].hi != fb[i].hi || fa[i].pr != fb[i].pr {
					t.Fatalf("trial %d keep %v: fold %d differs across insertion orders", trial, keepIdx, i)
				}
			}
		}
	}
}
