package core

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestMemoMatchesUnmemoizedByteIdentical(t *testing.T) {
	g, data, params := table1Fixture(t)
	_ = g
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	path := graph.Path{0, 1, 2, 3, 4}
	memo := NewConvMemo(256)
	for _, method := range []Method{MethodOD, MethodHP, MethodLB} {
		opt := QueryOptions{Method: method}
		for _, depart := range []float64{8 * 3600, 8*3600 + 300, 9 * 3600} {
			// Every prefix, twice: the second pass must be answered
			// from memoized states and still match exactly.
			for pass := 0; pass < 2; pass++ {
				for n := 1; n <= len(path); n++ {
					p := path[:n]
					plain, err := h.CostDistribution(p, depart, opt)
					if err != nil {
						t.Fatalf("%s n=%d: plain: %v", method, n, err)
					}
					memod, err := h.CostDistributionMemo(memo, p, depart, opt)
					if err != nil {
						t.Fatalf("%s n=%d: memo: %v", method, n, err)
					}
					ab, bb := plain.Dist.Buckets(), memod.Dist.Buckets()
					if len(ab) != len(bb) {
						t.Fatalf("%s n=%d pass %d: %d vs %d buckets", method, n, pass, len(ab), len(bb))
					}
					for i := range ab {
						if ab[i] != bb[i] {
							t.Fatalf("%s n=%d pass %d bucket %d: plain %+v vs memo %+v",
								method, n, pass, i, ab[i], bb[i])
						}
					}
					if plain.Decomp.Cardinality() != memod.Decomp.Cardinality() ||
						plain.Decomp.MaxRank() != memod.Decomp.MaxRank() {
						t.Fatalf("%s n=%d: decompositions differ", method, n)
					}
				}
			}
		}
	}
	if st := memo.Stats(); st.Hits == 0 {
		t.Fatalf("memo never hit: %+v", st)
	}
}

func TestMemoRDFallsThrough(t *testing.T) {
	g, data, params := table1Fixture(t)
	_ = g
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewConvMemo(64)
	p := graph.Path{0, 1, 2}
	rd, err := h.CostDistributionMemo(memo, p, 8*3600, QueryOptions{Method: MethodRD, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := h.CostDistribution(p, 8*3600, QueryOptions{Method: MethodRD, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Dist.Mean() != plain.Dist.Mean() {
		t.Fatalf("RD memoized mean %v != plain %v", rd.Dist.Mean(), plain.Dist.Mean())
	}
	if st := memo.Stats(); st.Entries != 0 {
		t.Fatalf("RD stored %d memo entries, want 0", st.Entries)
	}
}

func TestMemoExactDepartureKeys(t *testing.T) {
	// Two departures in one α-interval must not share an entry: the
	// memo is exact, unlike the α-interval query cache.
	g, data, params := table1Fixture(t)
	_ = g
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewConvMemo(64)
	p := graph.Path{0, 1}
	opt := QueryOptions{Method: MethodOD}
	for _, depart := range []float64{8 * 3600, 8*3600 + 60} {
		memod, err := h.CostDistributionMemo(memo, p, depart, opt)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := h.CostDistribution(p, depart, opt)
		if err != nil {
			t.Fatal(err)
		}
		if memod.Dist.Mean() != plain.Dist.Mean() {
			t.Fatalf("depart %v: memo %v != plain %v", depart, memod.Dist.Mean(), plain.Dist.Mean())
		}
	}
	if st := memo.Stats(); st.Entries != 4 { // 2 departures × 2 prefixes
		t.Fatalf("entries = %d, want 4 (no aliasing between departures)", st.Entries)
	}
}

func TestMemoConcurrentSharedStates(t *testing.T) {
	// Many goroutines extend the same memoized prefix states; run
	// under -race this proves the states are safely shareable (the
	// multiply purity guarantee).
	g, data, params := table1Fixture(t)
	_ = g
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewConvMemo(256)
	path := graph.Path{0, 1, 2, 3, 4}
	want, err := h.CostDistribution(path, 8*3600, QueryOptions{Method: MethodOD})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 1; n <= len(path); n++ {
				res, err := h.CostDistributionMemo(memo, path[:n], 8*3600, QueryOptions{Method: MethodOD})
				if err != nil {
					errs <- err
					return
				}
				if n == len(path) && res.Dist.Mean() != want.Dist.Mean() {
					errs <- errMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = fmtError("memoized mean diverged under concurrency")

type fmtError string

func (e fmtError) Error() string { return string(e) }
