package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hist"
)

// Differential test for the fold distribution: distributeFoldsInto
// (flat packed-key arrays, tail fast paths, binary-search inserts)
// against distributeFoldsRef (the retained Multi.AddCell walk). The
// two run the identical slab loop, so every per-cell float sum must
// match bit for bit.

// randomFoldCase builds a random cuts grid, kept-dim bounds, and fold
// list shaped like real accCuts/foldCells output — plus the edge cases
// the evaluator produces: degenerate (point) folds, folds clipped at
// either end of the cut range, and repeated kept-dim indexes forcing
// out-of-order accumulation across folds.
func randomFoldCase(rnd *rand.Rand) ([][]float64, []cellFold, []float64) {
	nCuts := 2 + rnd.Intn(8)
	cuts := make([]float64, 0, nCuts)
	x := float64(rnd.Intn(4))
	for i := 0; i < nCuts; i++ {
		cuts = append(cuts, x)
		x += 0.5 + float64(rnd.Intn(6))*0.75
	}
	kd := rnd.Intn(3) // kept dims beyond the accumulator
	bounds := make([][]float64, 1+kd)
	bounds[0] = cuts
	nb := make([]int, kd)
	for d := 0; d < kd; d++ {
		nb[d] = 1 + rnd.Intn(4)
		bd := make([]float64, nb[d]+1)
		for i := range bd {
			bd[i] = float64(i) * 2.5
		}
		bounds[1+d] = bd
	}
	span := cuts[len(cuts)-1] - cuts[0]
	folds := make([]cellFold, 1+rnd.Intn(12))
	for i := range folds {
		lo := cuts[0] + (rnd.Float64()*1.4-0.2)*span // may start outside the grid
		var hi float64
		switch rnd.Intn(4) {
		case 0:
			hi = lo // degenerate point fold
		default:
			hi = lo + rnd.Float64()*span/2
		}
		idx := make([]int, kd)
		for d := range idx {
			idx[d] = rnd.Intn(nb[d])
		}
		folds[i] = cellFold{lo: lo, hi: hi, idx: idx, pr: 0.01 + rnd.Float64()}
	}
	return bounds, folds, cuts
}

// INVARIANT: distributeFoldsInto ≡ distributeFoldsRef, bit for bit —
// same cells, same order, same accumulated probabilities.
func TestDistributeFoldsMatchesReference(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	sc := &evalScratch{}
	for trial := 0; trial < 500; trial++ {
		bounds, folds, cuts := randomFoldCase(rnd)
		if !sort.Float64sAreSorted(cuts) {
			t.Fatalf("trial %d: test bug, cuts unsorted", trial)
		}
		ref, err := hist.NewMulti(bounds)
		if err != nil {
			t.Fatal(err)
		}
		distributeFoldsRef(ref, folds, cuts)
		keys, probs := distributeFoldsInto(sc, folds, cuts)
		rk, rp := ref.Cells()
		if len(keys) != len(rk) {
			t.Fatalf("trial %d: %d cells, reference %d", trial, len(keys), len(rk))
		}
		for i := range keys {
			if keys[i] != rk[i] {
				t.Fatalf("trial %d cell %d: key %v, reference %v",
					trial, i, keys[i].Unpack(), rk[i].Unpack())
			}
			if math.Float64bits(probs[i]) != math.Float64bits(rp[i]) {
				t.Fatalf("trial %d cell %d: probability differs at the bit level: %x vs %x",
					trial, i, math.Float64bits(probs[i]), math.Float64bits(rp[i]))
			}
		}
	}
}
