package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// TestIncrementalMatchesBatch extends a path edge by edge and checks
// that each incremental distribution matches the batch computation.
func TestIncrementalMatchesBatch(t *testing.T) {
	g, data, params := table1Fixture(t)
	_ = g
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	depart := 8*3600 + 300.0
	for _, method := range []Method{MethodOD, MethodHP, MethodLB} {
		opt := QueryOptions{Method: method}
		st, err := h.StartPath(0, depart, opt)
		if err != nil {
			t.Fatalf("%s: start: %v", method, err)
		}
		for _, e := range []graph.EdgeID{1, 2, 3, 4} {
			st, err = h.ExtendPath(st, e)
			if err != nil {
				t.Fatalf("%s: extend by %d: %v", method, e, err)
			}
			batch, err := h.CostDistribution(st.Path(), depart, opt)
			if err != nil {
				t.Fatalf("%s: batch: %v", method, err)
			}
			im, bm := st.Dist().Mean(), batch.Dist.Mean()
			if math.Abs(im-bm) > 0.02*bm+0.5 {
				t.Fatalf("%s at %v: incremental mean %v vs batch %v",
					method, st.Path(), im, bm)
			}
			for _, q := range []float64{0.25, 0.5, 0.75} {
				x := batch.Dist.Quantile(q)
				if d := math.Abs(st.Dist().CDF(x) - batch.Dist.CDF(x)); d > 0.1 {
					t.Fatalf("%s at %v: CDF differs by %v at %v", method, st.Path(), d, x)
				}
			}
		}
	}
}

func TestIncrementalParentRemainsUsable(t *testing.T) {
	// DFS keeps the parent alive and extends it along multiple
	// branches; extending must not corrupt the parent.
	g, data, params := table1Fixture(t)
	_ = g
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	depart := 8*3600 + 300.0
	st, err := h.StartPath(0, depart, QueryOptions{Method: MethodOD})
	if err != nil {
		t.Fatal(err)
	}
	st, err = h.ExtendPath(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	meanBefore := st.Dist().Mean()
	if _, err := h.ExtendPath(st, 2); err != nil {
		t.Fatal(err)
	}
	// Extend the same parent again (sibling exploration).
	child2, err := h.ExtendPath(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dist().Mean() != meanBefore {
		t.Fatal("parent state mutated by extension")
	}
	if child2.Path().Cardinality() != 3 {
		t.Fatal("extension path wrong")
	}
}

func TestIncrementalRejectsBadExtension(t *testing.T) {
	g, data, params := table1Fixture(t)
	_ = g
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.StartPath(0, 8*3600, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ExtendPath(st, 3); err == nil {
		t.Fatal("non-adjacent extension accepted")
	}
	if _, err := h.StartPath(0, 8*3600, QueryOptions{Method: MethodRD}); err == nil {
		t.Fatal("RD should not support incremental evaluation")
	}
}
