package core

import (
	"bufio"
	"bytes"
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/hist"
)

// Partial-state evaluation: the cross-shard composition primitive.
//
// A region partition of the road network cuts every query path into
// maximal same-region segments. In a model whose variables each lie
// within a single region, no candidate variable spans a cut, so the
// Eq. 2 chain folds to an accumulator-only state at exactly each
// segment boundary. That state — one dimension, no open edges — plus
// the updated departure interval UI (Eq. 3) is everything the next
// segment's evaluation needs: relaying (state, UI) shard to shard and
// applying each shard's local decomposition reproduces the float
// sequence of whole-path evaluation operation for operation, which is
// what makes sharded answers byte-identical to single-process ones.

// partialStateVersion tags the partial-state wire format. States cross
// process boundaries, so the version fails loudly on mismatch instead
// of misparsing.
const partialStateVersion = "pstate-v1"

// ChainState is an exported handle on one chain evaluation state — the
// running joint of Equation 2 — so it can cross a process boundary
// between shards. Relay states are accumulator-only (no open edges);
// Encode/DecodeChainState accept any state shape.
type ChainState struct {
	cs *chainState
}

// AccOnly reports whether the state has folded every edge into the
// accumulated-cost dimension — the only shape a cross-shard relay
// carries.
func (s *ChainState) AccOnly() bool { return len(s.cs.open) == 0 }

// Open returns the query positions of the state's open dimensions.
func (s *ChainState) Open() []int {
	return append([]int(nil), s.cs.open...)
}

// Encode serializes the state with the same lossless %g encoding the
// synopsis store uses: every float parses back to the identical
// float64, so a decoded state resumes evaluation bit-exactly.
func (s *ChainState) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := fmt.Fprintln(&buf, partialStateVersion); err != nil {
		return nil, err
	}
	if err := writeChainState(&buf, "s", s.cs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeChainState parses an Encode dump. pathLen bounds the open
// positions (relay states have none; pass the segment length). The
// input is untrusted wire data: every index and probability is
// validated, normalization is checked, and malformed input returns a
// descriptive error — never a panic.
func DecodeChainState(data []byte, pathLen int) (*ChainState, error) {
	if pathLen < 1 {
		pathLen = 1
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rd := &hybridReader{sc: sc}
	line, ok := rd.next()
	if !ok {
		return nil, fmt.Errorf("core: empty partial state")
	}
	if line != partialStateVersion {
		return nil, fmt.Errorf("core: unsupported partial state %q (this build reads %s)", line, partialStateVersion)
	}
	cs, err := readChainState(rd, "s", pathLen)
	if err != nil {
		return nil, fmt.Errorf("core: partial state: %w", err)
	}
	return &ChainState{cs: cs}, nil
}

// Finalize flattens an accumulator-only state into the final cost
// distribution, exactly as Evaluate does after its last fold. The
// coordinator calls this with the model's MaxResultBuckets once the
// last segment's state returns.
func (s *ChainState) Finalize(maxResultBuckets int) (*hist.Histogram, error) {
	if len(s.cs.open) != 0 {
		return nil, fmt.Errorf("core: finalizing a state with open dims %v", s.cs.open)
	}
	return s.cs.m.SumHistogram(maxResultBuckets)
}

// SegmentInput describes one segment of a decomposed query: the
// segment's edges, the original departure time, the updated departure
// interval at the segment's first edge, and the accumulated state of
// every earlier segment (nil for the first).
type SegmentInput struct {
	Path   graph.Path
	Depart float64
	UI     TimeInterval
	State  *ChainState
	Opt    QueryOptions
	// Ctx, when non-nil, bounds the segment's evaluation: the factor
	// chain and edge derivations check its deadline as they go. It is
	// request-scoped and ephemeral — never serialized with the state,
	// never stored in anything that outlives the call.
	Ctx context.Context
}

// SegmentResult is one segment's contribution: the accumulator-only
// state after the segment's last factor, the updated departure
// interval past the segment's last edge, and the decomposition shape
// (Factors sum and MaxRank max across segments reproduce the
// whole-path decomposition's cardinality and max rank).
type SegmentResult struct {
	State   *ChainState
	UI      TimeInterval
	Factors int
	MaxRank int
}

// EvaluateSegment evaluates one segment of a partitioned query. A
// first segment (nil state) runs the ordinary synopsis/memo-backed
// path evaluation and hands out its final folded state; a continuation
// seeds the candidate array with the relayed UI, decomposes the
// segment locally, and multiplies its factors onto the relayed state.
// Continuations never touch the synopsis or memo: their keys assume
// evaluation from a point departure interval, which only the first
// segment has.
//
// RD is rejected: its random decomposition draws one value per row of
// the whole query path, so it cannot be reproduced segment by segment
// (single-region RD queries are proxied whole instead).
func (h *HybridGraph) EvaluateSegment(syn *SynopsisStore, memo *ConvMemo, in SegmentInput) (*SegmentResult, error) {
	if len(in.Path) == 0 {
		return nil, fmt.Errorf("core: cannot evaluate an empty segment")
	}
	if !h.G.ValidPath(in.Path) {
		return nil, fmt.Errorf("core: segment %v is not a valid path", in.Path)
	}
	opt := in.Opt
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if opt.Method == MethodRD {
		return nil, fmt.Errorf("core: method RD draws one random decomposition over the whole query; it cannot be evaluated segment by segment")
	}
	if in.UI.Hi < in.UI.Lo {
		return nil, fmt.Errorf("core: inverted departure interval [%g, %g]", in.UI.Lo, in.UI.Hi)
	}

	if in.State == nil {
		// First segment: a fresh evaluation from the point departure
		// interval [t, t], exactly what the incremental evaluators
		// compute — so the synopsis and memo apply, and their answers
		// are byte-identical by the store-equivalence guarantee.
		if in.UI.Lo != in.Depart || in.UI.Hi != in.Depart {
			return nil, fmt.Errorf("core: a first segment must start from the point interval [depart, depart], got [%g, %g]", in.UI.Lo, in.UI.Hi)
		}
		st, err := h.pathStateCtx(in.Ctx, syn, memo, in.Path, in.Depart, opt)
		if err != nil {
			return nil, err
		}
		// Outgoing UI: chain Eq. 3 across the whole segment, the same
		// left fold BuildCandidateArray runs internally.
		ui := in.UI
		for _, e := range in.Path {
			ui = sae(ui, h.bestUnitVariable(e, ui, nil))
		}
		return &SegmentResult{
			State:   &ChainState{cs: st.inter[len(st.inter)-1]},
			UI:      ui,
			Factors: len(st.de.Vars),
			MaxRank: st.de.MaxRank(),
		}, nil
	}

	if !in.State.AccOnly() {
		return nil, fmt.Errorf("core: continuation state must be accumulator-only, has open dims %v", in.State.cs.open)
	}
	ca, uiOut, err := h.buildCandidateArrayFrom(in.Path, in.UI)
	if err != nil {
		return nil, err
	}
	defer ca.Release()
	var de *Decomposition
	switch opt.Method {
	case MethodOD:
		de = ca.CoarsestDecomposition(opt.RankCap)
	case MethodHP:
		de = ca.PairDecomposition()
	case MethodLB:
		de = ca.UnitDecomposition()
	default:
		return nil, fmt.Errorf("core: unknown method %q", opt.Method)
	}
	// The relayed state has no open dims, so the first multiply is the
	// independent outer product — the identical operation whole-path
	// evaluation performs right after its boundary fold. A non-nil
	// start state disables runChain's recycling, so the caller's state
	// (and anything sharing its buffers) stays untouched.
	state, err := h.runChain(in.Ctx, de, in.State.cs, 0, nil)
	if err != nil {
		return nil, err
	}
	return &SegmentResult{
		State:   &ChainState{cs: state},
		UI:      uiOut,
		Factors: len(de.Vars),
		MaxRank: de.MaxRank(),
	}, nil
}

// FilterVariables derives a model holding exactly the trajectory-backed
// variables keep accepts, sharing Variable pointers with the receiver.
// Insertion follows ForEachVariable's deterministic order and rows are
// re-sorted the way the model loader does, so a filtered model
// serializes byte-stably. CoveredEdges is recomputed from the kept
// rank-1 variables; EdgesWithData (a property of the training data,
// not the variable set) carries over.
func (h *HybridGraph) FilterVariables(keep func(*Variable) bool) *HybridGraph {
	out := &HybridGraph{
		G:         h.G,
		Params:    h.Params,
		vars:      make(map[string]*pathVars),
		unit:      make([]*pathVars, h.G.NumEdges()),
		byStart:   make([][]*pathVars, h.G.NumEdges()),
		fallbacks: make(map[graph.EdgeID]*Variable),
	}
	out.stats.VariablesByRank = make([]int, len(h.stats.VariablesByRank))
	covered := make(map[graph.EdgeID]bool)
	h.ForEachVariable(func(v *Variable) {
		if !keep(v) {
			return
		}
		out.addVariable(v)
		if v.Rank() == 1 && !v.SpeedLimit {
			covered[v.Path[0]] = true
		}
	})
	sortRows(out)
	out.stats.CoveredEdges = len(covered)
	out.stats.EdgesWithData = h.stats.EdgesWithData
	return out
}

// Filter derives a synopsis holding exactly the entries whose path
// keep accepts, sharing PathStates with the receiver. Used by the
// shard splitter: an entry whose path lies within one region
// references only within-region variables, so it remains resolvable
// against that region's filtered model. Probe counters start fresh.
func (s *SynopsisStore) Filter(keep func(graph.Path) bool) (*SynopsisStore, error) {
	out := newSynopsisStore(s.opt)
	for _, key := range s.keys {
		st := s.entries[key]
		if !keep(st.path) {
			continue
		}
		nbytes, err := synopsisEntryBytes(st)
		if err != nil {
			return nil, err
		}
		out.add(key, st, nbytes)
	}
	return out, nil
}
