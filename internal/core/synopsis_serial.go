package core

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/hist"
)

// synopsisVersion tags the synopsis section of a model file. The
// section is optional and versioned independently of the surrounding
// model format: models written before the synopsis existed load with
// an empty synopsis, and an unknown section version fails loudly
// instead of being misparsed.
const synopsisVersion = "synopsis-v1"

// normTolerance bounds how far a deserialized distribution's total
// mass may sit from one. Stored masses are exact images of normalized
// in-memory values, so anything beyond float accumulation noise means
// corruption.
const normTolerance = 1e-6

// writeSynopsis appends the synopsis section: a header, one entry per
// materialized state in sorted key order (so output is deterministic),
// and a trailer that guards against truncation.
func writeSynopsis(w io.Writer, syn *SynopsisStore) error {
	if _, err := fmt.Fprintf(w, "%s %d %s %d\n",
		synopsisVersion, len(syn.keys), syn.opt.Method, syn.opt.RankCap); err != nil {
		return err
	}
	for _, k := range syn.keys {
		if err := writeSynopsisEntry(w, syn.entries[k]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "end-synopsis")
	return err
}

// writeSynopsisEntry serializes one materialized PathState: its path
// and departure, the decomposition as references into the model
// (variables are stored once, in the var records; the synopsis only
// names them), and the chain states that make extension and
// marginalization possible without recomputation.
func writeSynopsisEntry(w io.Writer, st *PathState) error {
	hasPre := 0
	if st.preFold != nil {
		hasPre = 1
	}
	if _, err := fmt.Fprintf(w, "syn %s %g %d %d\n",
		st.path.Key(), st.t, len(st.de.Vars), hasPre); err != nil {
		return err
	}
	for i, v := range st.de.Vars {
		var err error
		if v.SpeedLimit {
			_, err = fmt.Fprintf(w, "u %d %d\n", st.de.Pos[i], v.Path[0])
		} else {
			_, err = fmt.Fprintf(w, "v %d %s %d\n", st.de.Pos[i], v.Path.Key(), v.Interval)
		}
		if err != nil {
			return err
		}
	}
	for _, cs := range st.inter {
		if err := writeChainState(w, "state", cs); err != nil {
			return err
		}
	}
	if st.preFold != nil {
		if err := writeChainState(w, "pre", st.preFold); err != nil {
			return err
		}
	}
	return nil
}

func writeChainState(w io.Writer, tag string, cs *chainState) error {
	if _, err := fmt.Fprintf(w, "%s %d", tag, len(cs.open)); err != nil {
		return err
	}
	for _, q := range cs.open {
		if _, err := fmt.Fprintf(w, " %d", q); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return writeMultiRaw(w, cs.m)
}

// writeMultiRaw dumps a Multi exactly (the %g verb is the shortest
// representation that parses back to the same float64, so the dump is
// lossless); cells go out in sorted key order for determinism.
func writeMultiRaw(w io.Writer, m *hist.Multi) error {
	if _, err := fmt.Fprintf(w, "m %d\n", m.Dims()); err != nil {
		return err
	}
	for d := 0; d < m.Dims(); d++ {
		bd := m.Bounds(d)
		if _, err := fmt.Fprintf(w, "b %d", len(bd)); err != nil {
			return err
		}
		for _, x := range bd {
			if _, err := fmt.Fprintf(w, " %g", x); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "c %d\n", m.NumCells()); err != nil {
		return err
	}
	var err error
	m.ForEachSorted(func(k hist.CellKey, pr float64) {
		if err != nil {
			return
		}
		for d := 0; d < m.Dims(); d++ {
			if _, werr := fmt.Fprintf(w, "%d ", k[d]); werr != nil {
				err = werr
				return
			}
		}
		_, err = fmt.Fprintf(w, "%g\n", pr)
	})
	return err
}

// countWriter measures serialized size without buffering anything.
type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// synopsisEntryBytes returns the serialized size of one entry — the
// unit the byte budget of BuildSynopsis is charged in, and the size
// reported by SynopsisStats.Bytes for built and loaded stores alike.
func synopsisEntryBytes(st *PathState) (int, error) {
	var cw countWriter
	if err := writeSynopsisEntry(&cw, st); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// --- reading ----------------------------------------------------------

// Strict numeric parsing: the model reader's lenient atoi/atof (which
// map garbage to zero) are fine for the trusted var records it guards
// with cross-checks, but the synopsis section promises descriptive
// errors on corruption, so every number is parsed loudly here.

func atoiStrict(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("core: synopsis: bad integer %q", s)
	}
	return n, nil
}

// factorPos parses a factor's query position, rejecting anything
// outside the entry path before it can reach Decomposition.Validate —
// whose pos+rank bound check can overflow on adversarial positions,
// turning a corrupt file into an index panic downstream.
func factorPos(s string, pathLen int) (int, error) {
	pos, err := atoiStrict(s)
	if err != nil {
		return 0, err
	}
	if pos < 0 || pos >= pathLen {
		return 0, fmt.Errorf("core: synopsis: factor position %d outside the %d-edge path", pos, pathLen)
	}
	return pos, nil
}

func atofStrict(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("core: synopsis: bad number %q", s)
	}
	return v, nil
}

// readSynopsis parses the synopsis section whose header line has
// already been consumed. h must be fully loaded: entries resolve their
// decomposition factors against the model's variables (by path and
// interval), so the in-memory synopsis shares Variable pointers with
// the model exactly as a freshly built one does.
func readSynopsis(rd *hybridReader, h *HybridGraph, header string) (*SynopsisStore, error) {
	f := strings.Fields(header)
	if f[0] != synopsisVersion {
		return nil, fmt.Errorf("core: unsupported synopsis section %q (this build reads %s)", f[0], synopsisVersion)
	}
	if len(f) != 4 {
		return nil, fmt.Errorf("core: bad synopsis header %q", header)
	}
	count, err := atoiStrict(f[1])
	if err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("core: synopsis entry count %d is negative", count)
	}
	opt := QueryOptions{Method: Method(f[2])}
	if !memoizable(opt.Method) {
		return nil, fmt.Errorf("core: synopsis method %q has no incremental evaluator", f[2])
	}
	if opt.RankCap, err = atoiStrict(f[3]); err != nil {
		return nil, err
	}
	syn := newSynopsisStore(opt)
	for i := 0; i < count; i++ {
		st, err := readSynopsisEntry(rd, h, opt)
		if err != nil {
			return nil, fmt.Errorf("core: synopsis entry %d/%d: %w", i+1, count, err)
		}
		key := memoKey(st.path.Key(), st.t, opt)
		if _, dup := syn.entries[key]; dup {
			return nil, fmt.Errorf("core: synopsis entry %d/%d: duplicate entry for %v", i+1, count, st.path)
		}
		nbytes, err := synopsisEntryBytes(st)
		if err != nil {
			return nil, err
		}
		syn.add(key, st, nbytes)
	}
	line, ok := rd.next()
	if !ok || line != "end-synopsis" {
		return nil, fmt.Errorf("core: synopsis section truncated (missing end-synopsis trailer)")
	}
	return syn, nil
}

func readSynopsisEntry(rd *hybridReader, h *HybridGraph, opt QueryOptions) (*PathState, error) {
	line, ok := rd.next()
	if !ok {
		return nil, fmt.Errorf("truncated (expected syn record)")
	}
	f := strings.Fields(line)
	if len(f) != 5 || f[0] != "syn" {
		return nil, fmt.Errorf("expected syn record, got %q", line)
	}
	path, err := parsePathKey(f[1])
	if err != nil {
		return nil, err
	}
	if !h.G.ValidPath(path) {
		return nil, fmt.Errorf("path %v is not valid in this graph", path)
	}
	depart, err := atofStrict(f[2])
	if err != nil {
		return nil, err
	}
	nFactors, err := atoiStrict(f[3])
	if err != nil {
		return nil, err
	}
	if nFactors < 1 || nFactors > len(path) {
		return nil, fmt.Errorf("factor count %d out of range [1,%d]", nFactors, len(path))
	}
	hasPre, err := atoiStrict(f[4])
	if err != nil {
		return nil, err
	}
	if hasPre != 0 && hasPre != 1 {
		return nil, fmt.Errorf("preFold flag %d must be 0 or 1", hasPre)
	}

	de := &Decomposition{
		Vars: make([]*Variable, nFactors),
		Pos:  make([]int, nFactors),
	}
	for i := 0; i < nFactors; i++ {
		line, ok := rd.next()
		if !ok {
			return nil, fmt.Errorf("truncated (factor %d of %v)", i, path)
		}
		ff := strings.Fields(line)
		switch {
		case ff[0] == "v" && len(ff) == 4:
			pos, err := factorPos(ff[1], len(path))
			if err != nil {
				return nil, err
			}
			vp, err := parsePathKey(ff[2])
			if err != nil {
				return nil, err
			}
			iv, err := atoiStrict(ff[3])
			if err != nil {
				return nil, err
			}
			v := h.LookupInterval(vp, iv)
			if v == nil {
				return nil, fmt.Errorf("factor %v@%d not found in this model", vp, iv)
			}
			de.Vars[i], de.Pos[i] = v, pos
		case ff[0] == "u" && len(ff) == 3:
			pos, err := factorPos(ff[1], len(path))
			if err != nil {
				return nil, err
			}
			e, err := atoiStrict(ff[2])
			if err != nil {
				return nil, err
			}
			if e < 0 || e >= h.G.NumEdges() {
				return nil, fmt.Errorf("fallback edge %d out of range [0,%d)", e, h.G.NumEdges())
			}
			de.Vars[i], de.Pos[i] = h.fallbackVariable(graph.EdgeID(e)), pos
		default:
			return nil, fmt.Errorf("expected factor record, got %q", line)
		}
	}
	if err := de.Validate(path); err != nil {
		return nil, fmt.Errorf("stored decomposition invalid: %w", err)
	}

	st := &PathState{h: h, path: path, t: depart, opt: opt, de: de}
	st.inter = make([]*chainState, nFactors)
	for i := 0; i < nFactors; i++ {
		cs, err := readChainState(rd, "state", len(path))
		if err != nil {
			return nil, fmt.Errorf("chain state %d of %v: %w", i, path, err)
		}
		st.inter[i] = cs
	}
	if hasPre == 1 {
		cs, err := readChainState(rd, "pre", len(path))
		if err != nil {
			return nil, fmt.Errorf("preFold state of %v: %w", path, err)
		}
		st.preFold = cs
	}
	return st, nil
}

func readChainState(rd *hybridReader, tag string, pathLen int) (*chainState, error) {
	line, ok := rd.next()
	if !ok {
		return nil, fmt.Errorf("truncated (expected %s record)", tag)
	}
	f := strings.Fields(line)
	if f[0] != tag || len(f) < 2 {
		return nil, fmt.Errorf("expected %s record, got %q", tag, line)
	}
	nOpen, err := atoiStrict(f[1])
	if err != nil {
		return nil, err
	}
	if nOpen < 0 || nOpen >= hist.MaxDims || len(f) != 2+nOpen {
		return nil, fmt.Errorf("bad open-dimension list %q", line)
	}
	open := make([]int, nOpen)
	for i := range open {
		q, err := atoiStrict(f[2+i])
		if err != nil {
			return nil, err
		}
		if q < 0 || q >= pathLen || (i > 0 && q <= open[i-1]) {
			return nil, fmt.Errorf("open positions %v not ascending within the path", f[2:])
		}
		open[i] = q
	}
	m, err := readMultiRaw(rd)
	if err != nil {
		return nil, err
	}
	if m.Dims() != 1+nOpen {
		return nil, fmt.Errorf("state joint has %d dims, want %d (acc + open)", m.Dims(), 1+nOpen)
	}
	return &chainState{m: m, open: open}, nil
}

// readMultiRaw parses a writeMultiRaw dump, validating every index and
// probability so corrupt files error descriptively instead of
// panicking, and checking — not restoring — normalization so values
// stay bit-exact.
func readMultiRaw(rd *hybridReader) (*hist.Multi, error) {
	line, ok := rd.next()
	if !ok {
		return nil, fmt.Errorf("truncated (expected m record)")
	}
	f := strings.Fields(line)
	if f[0] != "m" || len(f) != 2 {
		return nil, fmt.Errorf("expected m record, got %q", line)
	}
	dims, err := atoiStrict(f[1])
	if err != nil {
		return nil, err
	}
	if dims < 1 || dims > hist.MaxDims {
		return nil, fmt.Errorf("dimension count %d out of range [1,%d]", dims, hist.MaxDims)
	}
	bounds := make([][]float64, dims)
	for d := 0; d < dims; d++ {
		line, ok := rd.next()
		if !ok {
			return nil, fmt.Errorf("truncated (bounds of dim %d)", d)
		}
		bf := strings.Fields(line)
		if bf[0] != "b" || len(bf) < 2 {
			return nil, fmt.Errorf("expected b record, got %q", line)
		}
		n, err := atoiStrict(bf[1])
		if err != nil {
			return nil, err
		}
		if n < 2 || len(bf) != 2+n {
			return nil, fmt.Errorf("bad bounds record %q", line)
		}
		bounds[d] = make([]float64, n)
		for i := 0; i < n; i++ {
			if bounds[d][i], err = atofStrict(bf[2+i]); err != nil {
				return nil, err
			}
		}
	}
	m, err := hist.NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	line, ok = rd.next()
	if !ok {
		return nil, fmt.Errorf("truncated (expected c record)")
	}
	cf := strings.Fields(line)
	if cf[0] != "c" || len(cf) != 2 {
		return nil, fmt.Errorf("expected c record, got %q", line)
	}
	count, err := atoiStrict(cf[1])
	if err != nil {
		return nil, err
	}
	if count < 1 {
		return nil, fmt.Errorf("cell count %d must be positive", count)
	}
	// Cells were written in sorted key order, so SetCell appends each
	// one straight onto the columnar arrays — the sorted layout is
	// rebuilt directly (out-of-order cells in a hand-edited file still
	// load correctly through SetCell's insertion path).
	idx := make([]int, dims)
	for i := 0; i < count; i++ {
		line, ok := rd.next()
		if !ok {
			return nil, fmt.Errorf("truncated (cell %d of %d)", i, count)
		}
		xf := strings.Fields(line)
		if len(xf) != dims+1 {
			return nil, fmt.Errorf("bad cell record %q", line)
		}
		for d := 0; d < dims; d++ {
			j, err := atoiStrict(xf[d])
			if err != nil {
				return nil, err
			}
			if j < 0 || j >= m.NumBuckets(d) {
				return nil, fmt.Errorf("cell index %d out of range on dim %d (%d buckets)", j, d, m.NumBuckets(d))
			}
			idx[d] = j
		}
		pr, err := atofStrict(xf[dims])
		if err != nil {
			return nil, err
		}
		if pr < 0 {
			return nil, fmt.Errorf("cell probability %v is negative", pr)
		}
		m.SetCell(idx, pr)
	}
	if err := m.CheckNormalized(normTolerance); err != nil {
		return nil, err
	}
	return m, nil
}
