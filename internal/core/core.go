package core
