package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/graph"
)

// randomWorkload builds a random chain-graph workload: trajectories of
// random spans with regime-correlated costs, so instantiated variables
// of many ranks exist.
func randomWorkload(seed int64) (*graph.Graph, *gps.Collection, Params) {
	rnd := rand.New(rand.NewSource(seed))
	nEdges := 6 + rnd.Intn(5)
	b := graph.NewBuilder()
	var vs []graph.VertexID
	for i := 0; i <= nEdges; i++ {
		vs = append(vs, b.AddVertex(pointAt(i)))
	}
	for i := 0; i < nEdges; i++ {
		b.AddEdge(vs[i], vs[i+1], 200+rnd.Float64()*400, 50, graph.ClassSecondary)
	}
	g := b.Freeze()

	params := DefaultParams()
	params.Beta = 8
	params.MaxRank = 3 + rnd.Intn(3)

	var trajs []*gps.Matched
	day := gps.SecondsPerDay
	nTrips := 120 + rnd.Intn(200)
	for i := 0; i < nTrips; i++ {
		start := rnd.Intn(nEdges - 2)
		span := 3 + rnd.Intn(nEdges-start-2)
		path := make(graph.Path, span)
		for j := range path {
			path[j] = graph.EdgeID(start + j)
		}
		depart := float64(i%7)*day + 8*3600 + rnd.Float64()*1200
		base := 20 + rnd.Float64()*10
		if rnd.Float64() < 0.4 {
			base *= 2.2 // congested regime for the whole trip
		}
		costs := make([]float64, span)
		for j := range costs {
			costs[j] = base + rnd.Float64()*8
		}
		trajs = append(trajs, &gps.Matched{
			ID: int64(i), Path: path, Depart: depart, EdgeCosts: costs,
		})
	}
	return g, gps.NewCollection(trajs, 0), params
}

func pointAt(i int) geo.Point {
	return geo.Point{Lat: 57 + float64(i)*0.002, Lon: 9.9}
}

// PROPERTY: on arbitrary random workloads, every decomposition kind is
// valid, the coarsest decomposition dominates the others (their paths
// are sub-paths of OD's), and every estimator returns a proper
// distribution.
func TestPropertyDecompositionsValid(t *testing.T) {
	f := func(seed int64) bool {
		g, data, params := randomWorkload(seed)
		h, err := Build(g, data, params)
		if err != nil {
			return false
		}
		// Query the full chain.
		query := make(graph.Path, g.NumEdges())
		for i := range query {
			query[i] = graph.EdgeID(i)
		}
		if !g.ValidPath(query) {
			return false
		}
		depart := 8*3600 + 600.0
		ca, err := h.BuildCandidateArray(query, depart)
		if err != nil {
			return false
		}
		od := ca.CoarsestDecomposition(0)
		others := []*Decomposition{
			ca.UnitDecomposition(),
			ca.PairDecomposition(),
			ca.CoarsestDecomposition(2),
			ca.RandomDecomposition(rand.New(rand.NewSource(seed))),
		}
		if od.Validate(query) != nil {
			return false
		}
		for _, alt := range others {
			if alt.Validate(query) != nil {
				return false
			}
			for _, v := range alt.Vars {
				contained := false
				for _, w := range od.Vars {
					if w.Path.HasSubPath(v.Path) {
						contained = true
						break
					}
				}
				if !contained {
					return false
				}
			}
		}
		// Every method yields a normalized distribution with plausible
		// support.
		for _, m := range []Method{MethodOD, MethodHP, MethodLB, MethodRD} {
			res, err := h.CostDistribution(query, depart, QueryOptions{Method: m, Seed: seed})
			if err != nil {
				return false
			}
			if math.Abs(res.Dist.CDF(math.Inf(1))-1) > 1e-9 {
				return false
			}
			if res.Dist.Min() < 0 || res.Dist.Mean() <= 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// PROPERTY: the chain evaluator is mean-consistent with the dense
// factorization on arbitrary workloads and decompositions.
func TestPropertyChainVsDense(t *testing.T) {
	f := func(seed int64) bool {
		g, data, params := randomWorkload(seed)
		params.MaxAccBuckets = 0
		params.MaxResultBuckets = 0
		h, err := Build(g, data, params)
		if err != nil {
			return false
		}
		n := g.NumEdges()
		if n > 8 {
			n = 8 // keep the dense grid tractable
		}
		query := make(graph.Path, n)
		for i := range query {
			query[i] = graph.EdgeID(i)
		}
		depart := 8*3600 + 600.0
		ca, err := h.BuildCandidateArray(query, depart)
		if err != nil {
			return false
		}
		for _, de := range []*Decomposition{
			ca.CoarsestDecomposition(0),
			ca.PairDecomposition(),
		} {
			chain, _, err := h.Evaluate(de, query)
			if err != nil {
				return false
			}
			dense, err := h.EvaluateDense(de, query)
			if err != nil {
				// The dense grid can exceed its size limit on unlucky
				// seeds; that is not a property violation.
				continue
			}
			if math.Abs(chain.Mean()-dense.Mean()) > 1e-6*(1+dense.Mean()) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// PROPERTY: shift-and-enlarge intervals are monotone along the query
// path for any workload and departure time.
func TestPropertySAEMonotone(t *testing.T) {
	f := func(seed int64, hourRaw float64) bool {
		g, data, params := randomWorkload(seed)
		h, err := Build(g, data, params)
		if err != nil {
			return false
		}
		hour := math.Mod(math.Abs(hourRaw), 24)
		query := make(graph.Path, g.NumEdges())
		for i := range query {
			query[i] = graph.EdgeID(i)
		}
		ca, err := h.BuildCandidateArray(query, hour*3600)
		if err != nil {
			return false
		}
		for k := 1; k < len(ca.UIs); k++ {
			if ca.UIs[k].Lo < ca.UIs[k-1].Lo-1e-9 {
				return false
			}
			if ca.UIs[k].Width() < ca.UIs[k-1].Width()-1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
