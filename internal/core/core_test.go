package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/stats"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// chainGraph builds a simple chain v0 -> v1 -> ... with edge IDs 0..n-1.
func chainGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	var vs []graph.VertexID
	for i := 0; i <= n; i++ {
		vs = append(vs, b.AddVertex(geo.Point{Lat: 57 + float64(i)*0.002, Lon: 9.9}))
	}
	for i := 0; i < n; i++ {
		b.AddEdge(vs[i], vs[i+1], 300, 50, graph.ClassSecondary)
	}
	return b.Freeze()
}

// table1Fixture reproduces the paper's Table 1 situation on a 5-edge
// chain: 30+ trajectories on <e0,e1,e2,e3> around 8:00 and 30+ on
// <e3,e4> timed so they are temporally relevant for a query departing
// at 8:00 on the full path.
func table1Fixture(t testing.TB) (*graph.Graph, *gps.Collection, Params) {
	t.Helper()
	g := chainGraph(t, 5)
	params := DefaultParams()
	params.MaxRank = 4
	rnd := rand.New(rand.NewSource(42))
	var trajs []*gps.Matched
	id := int64(0)
	day := gps.SecondsPerDay
	// Long trajectories on <e0..e3>, departing ~8:00 on several days.
	for i := 0; i < 40; i++ {
		depart := float64(i%10)*day + 8*3600 + rnd.Float64()*600
		costs := []float64{
			30 + rnd.Float64()*10, 35 + rnd.Float64()*10,
			28 + rnd.Float64()*8, 33 + rnd.Float64()*9,
		}
		trajs = append(trajs, &gps.Matched{
			ID: id, Path: graph.Path{0, 1, 2, 3}, Depart: depart, EdgeCosts: costs,
		})
		id++
	}
	// Trajectories on <e3,e4> arriving where the query's SAE window
	// lands (≈ 8:00 + cost of e0..e2 ≈ 100 s — same interval).
	for i := 0; i < 40; i++ {
		depart := float64(i%10)*day + 8*3600 + 100 + rnd.Float64()*600
		costs := []float64{31 + rnd.Float64()*9, 27 + rnd.Float64()*8}
		trajs = append(trajs, &gps.Matched{
			ID: id, Path: graph.Path{3, 4}, Depart: depart, EdgeCosts: costs,
		})
		id++
	}
	return g, gps.NewCollection(trajs, 0), params
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{AlphaMinutes: 0, Beta: 30, MaxRank: 4, GTThresholdS: 1, Resolution: 1},
		{AlphaMinutes: 7, Beta: 30, MaxRank: 4, GTThresholdS: 1, Resolution: 1},
		{AlphaMinutes: 30, Beta: 0, MaxRank: 4, GTThresholdS: 1, Resolution: 1},
		{AlphaMinutes: 30, Beta: 30, MaxRank: 0, GTThresholdS: 1, Resolution: 1},
		{AlphaMinutes: 30, Beta: 30, MaxRank: 99, GTThresholdS: 1, Resolution: 1},
		{AlphaMinutes: 30, Beta: 30, MaxRank: 4, GTThresholdS: 0, Resolution: 1},
		{AlphaMinutes: 30, Beta: 30, MaxRank: 4, GTThresholdS: 1, Resolution: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestParamsIntervals(t *testing.T) {
	p := DefaultParams()
	if p.NumIntervals() != 48 {
		t.Fatalf("intervals = %d", p.NumIntervals())
	}
	if got := p.IntervalOf(8 * 3600); got != 16 {
		t.Fatalf("interval of 8:00 = %d, want 16", got)
	}
	if got := p.IntervalOf(gps.SecondsPerDay + 8*3600); got != 16 {
		t.Fatal("interval must be time-of-day based")
	}
	lo, hi := p.IntervalBounds(16)
	if lo != 8*3600 || hi != 8*3600+1800 {
		t.Fatalf("bounds = [%v,%v)", lo, hi)
	}
}

func TestBuildInstantiatesExpectedVariables(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	// Edges 0..4 all have data.
	if st.EdgesWithData != 5 {
		t.Fatalf("edges with data = %d, want 5", st.EdgesWithData)
	}
	// Rank-4 variable for <e0,e1,e2,e3> must exist at interval 16.
	v := h.LookupInterval(graph.Path{0, 1, 2, 3}, 16)
	if v == nil {
		t.Fatal("rank-4 variable missing")
	}
	if v.Joint == nil || v.Support < params.Beta {
		t.Fatalf("rank-4 variable malformed: %+v", v)
	}
	// Rank-2 variable for <e3,e4>.
	if h.LookupInterval(graph.Path{3, 4}, 16) == nil {
		t.Fatal("rank-2 variable <e3,e4> missing")
	}
	// No variable may span <e0..e4> (no trajectory covers it).
	if h.LookupInterval(graph.Path{0, 1, 2, 3, 4}, 16) != nil {
		t.Fatal("phantom rank-5 variable")
	}
	// Sub-path variables come from sub-occurrences.
	for _, p := range []graph.Path{{1, 2, 3}, {2, 3}, {1, 2}} {
		if h.LookupInterval(p, 16) == nil {
			t.Fatalf("sub-path variable %v missing", p)
		}
	}
	// Every rank-1 variable must be supported by ≥ β trajectories.
	h.ForEachVariable(func(v *Variable) {
		if v.Support < params.Beta {
			t.Fatalf("variable %v interval %d has support %d < β", v.Path, v.Interval, v.Support)
		}
	})
	if st.TotalVariables() == 0 || st.StorageFloats == 0 {
		t.Fatal("stats not populated")
	}
	if st.Coverage() != 1 {
		t.Fatalf("coverage = %v, want 1 (all edges have ≥β data)", st.Coverage())
	}
}

func TestBuildAprioriProperty(t *testing.T) {
	// Every rank-k (k≥2) variable's rank-(k−1) prefix and suffix paths
	// must also have variables in some interval (they have at least the
	// same occurrences).
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	h.ForEachVariable(func(v *Variable) {
		if v.Rank() < 2 {
			return
		}
		prefix := v.Path[:v.Rank()-1]
		suffix := v.Path[1:]
		if len(h.VariablesOf(prefix)) == 0 {
			t.Errorf("prefix %v of %v has no variables", prefix, v.Path)
		}
		if len(h.VariablesOf(suffix)) == 0 {
			t.Errorf("suffix %v of %v has no variables", suffix, v.Path)
		}
	})
}

func TestUnitVariableFallback(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	// At 03:00 no trajectories exist: the unit variable must be the
	// speed-limit fallback.
	v := h.UnitVariable(0, 3*3600)
	if !v.SpeedLimit {
		t.Fatal("expected speed-limit fallback at night")
	}
	ff := g.Edge(0).FreeFlowSeconds()
	if !almostEq(v.Hist.Mean(), ff+0.5, 1) {
		t.Fatalf("fallback mean %v, want ≈ free-flow %v", v.Hist.Mean(), ff)
	}
	// At 08:00 the trajectory-backed variable must win.
	if h.UnitVariable(0, 8*3600).SpeedLimit {
		t.Fatal("expected data-backed variable at 8:00")
	}
	// Fallback is cached.
	if h.fallbackVariable(0) != h.fallbackVariable(0) {
		t.Fatal("fallback not cached")
	}
}

func TestCandidateArrayTable1(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3, 4}
	ca, err := h.BuildCandidateArray(query, 8*3600+300)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Rows) != 5 {
		t.Fatalf("rows = %d", len(ca.Rows))
	}
	// Row 0 must include ranks 1..4; its highest rank is 4.
	row0 := ca.Rows[0]
	if got := row0.Vars[len(row0.Vars)-1].Rank(); got != 4 {
		t.Fatalf("row 0 max rank = %d, want 4", got)
	}
	// Rows are rank-sorted and every row has a rank-1 entry.
	for k, row := range ca.Rows {
		if row.Vars[0].Rank() != 1 {
			t.Fatalf("row %d lacks a rank-1 variable", k)
		}
		for i := 1; i < len(row.Vars); i++ {
			if row.Vars[i].Rank() < row.Vars[i-1].Rank() {
				t.Fatalf("row %d not rank-sorted", k)
			}
		}
	}
	// UI intervals grow monotonically (shift-and-enlarge).
	for k := 1; k < len(ca.UIs); k++ {
		if ca.UIs[k].Lo < ca.UIs[k-1].Lo || ca.UIs[k].Width() < ca.UIs[k-1].Width() {
			t.Fatalf("UI not monotone at %d: %+v", k, ca.UIs)
		}
	}
	// The coarsest decomposition is exactly the paper's:
	// (<e0,e1,e2,e3>, <e3,e4>).
	de := ca.CoarsestDecomposition(0)
	if de.Cardinality() != 2 {
		t.Fatalf("decomposition size = %d: %v", de.Cardinality(), de.Vars)
	}
	if !de.Vars[0].Path.Equal(graph.Path{0, 1, 2, 3}) || !de.Vars[1].Path.Equal(graph.Path{3, 4}) {
		t.Fatalf("decomposition = %v, %v", de.Vars[0].Path, de.Vars[1].Path)
	}
	if err := de.Validate(query); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateArrayRejectsInvalidQuery(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.BuildCandidateArray(graph.Path{0, 2}, 8*3600); err == nil {
		t.Fatal("invalid path accepted")
	}
}

func TestTemporalRelevanceExcludesWrongInterval(t *testing.T) {
	// Variables exist only around 08:00; a query at 20:00 must fall
	// back to unit variables (speed limits), mirroring the T7 example
	// of Section 2.2.
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := h.BuildCandidateArray(graph.Path{0, 1, 2, 3}, 20*3600)
	if err != nil {
		t.Fatal(err)
	}
	for k, row := range ca.Rows {
		for _, v := range row.Vars {
			if !v.SpeedLimit {
				t.Fatalf("row %d has a temporally irrelevant variable %v@%d", k, v.Path, v.Interval)
			}
		}
	}
}

func TestDecompositionKinds(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3, 4}
	ca, err := h.BuildCandidateArray(query, 8*3600+300)
	if err != nil {
		t.Fatal(err)
	}
	// LB: all rank 1, |P| paths.
	lb := ca.UnitDecomposition()
	if lb.Cardinality() != 5 || lb.MaxRank() != 1 {
		t.Fatalf("LB decomposition wrong: %d paths, max rank %d", lb.Cardinality(), lb.MaxRank())
	}
	if err := lb.Validate(query); err != nil {
		t.Fatal(err)
	}
	// HP: rank ≤ 2, overlapping pairs.
	hp := ca.PairDecomposition()
	if hp.MaxRank() != 2 {
		t.Fatalf("HP max rank = %d", hp.MaxRank())
	}
	if err := hp.Validate(query); err != nil {
		t.Fatal(err)
	}
	// OD-2 caps rank at 2.
	od2 := ca.CoarsestDecomposition(2)
	if od2.MaxRank() > 2 {
		t.Fatalf("OD-2 max rank = %d", od2.MaxRank())
	}
	if err := od2.Validate(query); err != nil {
		t.Fatal(err)
	}
	// RD: valid for any seed.
	for seed := int64(0); seed < 20; seed++ {
		rd := ca.RandomDecomposition(rand.New(rand.NewSource(seed)))
		if err := rd.Validate(query); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// Coarseness: every path of every other decomposition must be a
	// sub-path of some OD path or the decompositions coincide
	// (Theorem 3's premise, checked structurally).
	od := ca.CoarsestDecomposition(0)
	for _, alt := range []*Decomposition{lb, hp, od2} {
		for _, v := range alt.Vars {
			found := false
			for _, w := range od.Vars {
				if w.Path.HasSubPath(v.Path) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("path %v of a finer decomposition not contained in OD", v.Path)
			}
		}
	}
}

func TestEvaluateChainMatchesDense(t *testing.T) {
	g, data, params := table1Fixture(t)
	params.MaxAccBuckets = 0 // exact chain evaluation
	params.MaxResultBuckets = 0
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3, 4}
	ca, err := h.BuildCandidateArray(query, 8*3600+300)
	if err != nil {
		t.Fatal(err)
	}
	for name, de := range map[string]*Decomposition{
		"OD":  ca.CoarsestDecomposition(0),
		"HP":  ca.PairDecomposition(),
		"LB":  ca.UnitDecomposition(),
		"OD3": ca.CoarsestDecomposition(3),
	} {
		chain, _, err := h.Evaluate(de, query)
		if err != nil {
			t.Fatalf("%s chain: %v", name, err)
		}
		dense, err := h.EvaluateDense(de, query)
		if err != nil {
			t.Fatalf("%s dense: %v", name, err)
		}
		if !almostEq(chain.Mean(), dense.Mean(), 1e-6*dense.Mean()+1e-6) {
			t.Fatalf("%s: chain mean %v vs dense mean %v", name, chain.Mean(), dense.Mean())
		}
		// CDFs agree up to the incremental-vs-single uniform spreading.
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			x := dense.Quantile(q)
			if d := math.Abs(chain.CDF(x) - dense.CDF(x)); d > 0.08 {
				t.Fatalf("%s: CDF differs by %v at %v", name, d, x)
			}
		}
	}
}

func TestEvaluateSingleFactorLuckyCase(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3}
	res, err := h.CostDistribution(query, 8*3600+300, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decomp.Cardinality() != 1 {
		t.Fatalf("expected single-factor decomposition, got %d", res.Decomp.Cardinality())
	}
	// The result must match the joint's own sum distribution.
	v := h.LookupInterval(query, 16)
	want, err := v.Joint.SumHistogram(params.MaxResultBuckets)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Dist.Mean(), want.Mean(), 1e-9) {
		t.Fatalf("lucky-case mean %v vs %v", res.Dist.Mean(), want.Mean())
	}
}

func TestCostDistributionMethods(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3, 4}
	for _, m := range []Method{MethodOD, MethodRD, MethodHP, MethodLB} {
		res, err := h.CostDistribution(query, 8*3600+300, QueryOptions{Method: m, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Dist == nil || res.Dist.NumBuckets() == 0 {
			t.Fatalf("%s: empty distribution", m)
		}
		if !almostEq(res.Dist.CDF(math.Inf(1)), 1, 1e-9) {
			t.Fatalf("%s: mass != 1", m)
		}
		// All methods estimate the same path, so means are comparable.
		if res.Dist.Mean() < 100 || res.Dist.Mean() > 250 {
			t.Fatalf("%s: implausible mean %v", m, res.Dist.Mean())
		}
		if res.Timing.Total() <= 0 {
			t.Fatalf("%s: timing not recorded", m)
		}
	}
	if _, err := h.CostDistribution(query, 8*3600, QueryOptions{Method: "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestDecompositionEntropyOrdering(t *testing.T) {
	// Theorem 3: coarser decompositions have lower (or equal) estimated
	// joint entropy. OD ≤ OD-2 and OD ≤ LB on the Table 1 fixture.
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3, 4}
	ca, err := h.BuildCandidateArray(query, 8*3600+300)
	if err != nil {
		t.Fatal(err)
	}
	entropy := func(de *Decomposition) float64 {
		e, err := h.DecompositionEntropy(de)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	od := entropy(ca.CoarsestDecomposition(0))
	od2 := entropy(ca.CoarsestDecomposition(2))
	lb := entropy(ca.UnitDecomposition())
	if od > od2+1e-9 {
		t.Fatalf("H(OD)=%v > H(OD-2)=%v", od, od2)
	}
	if od > lb+1e-9 {
		t.Fatalf("H(OD)=%v > H(LB)=%v", od, lb)
	}
}

func TestGroundTruthBaseline(t *testing.T) {
	g, data, params := table1Fixture(t)
	_ = g
	p := graph.Path{0, 1, 2, 3}
	gt, n, err := GroundTruth(data, p, 8*3600+300, params)
	if err != nil {
		t.Fatal(err)
	}
	if n < params.Beta {
		t.Fatalf("qualified = %d", n)
	}
	// Mean must be near the generating mean (4 edges ≈ 126+18 ≈ 144).
	if gt.Mean() < 110 || gt.Mean() > 180 {
		t.Fatalf("GT mean = %v", gt.Mean())
	}
	// Sparse case: full 5-edge path has no trajectories.
	if _, _, err := GroundTruth(data, graph.Path{0, 1, 2, 3, 4}, 8*3600, params); err == nil {
		t.Fatal("sparse path should fail")
	}
	// Wrong time: no qualified trajectories at 20:00.
	if _, _, err := GroundTruth(data, p, 20*3600, params); err == nil {
		t.Fatal("wrong departure time should fail")
	}
	// Interval variant.
	if _, _, err := GroundTruthInterval(data, p, 16, params); err != nil {
		t.Fatal(err)
	}
	if _, _, err := GroundTruthInterval(data, p, 40, params); err == nil {
		t.Fatal("empty interval should fail")
	}
}

func TestODBeatsLBOnDependentCosts(t *testing.T) {
	// Build a workload with strong inter-edge dependence where the
	// query path is longer than any instantiated variable, so OD must
	// stitch sub-path joints. OD's distribution must be closer to the
	// ground truth than LB's (the paper's headline result).
	g := chainGraph(t, 6)
	params := DefaultParams()
	params.MaxRank = 3
	rnd := rand.New(rand.NewSource(7))
	var trajs []*gps.Matched
	day := gps.SecondsPerDay
	for i := 0; i < 300; i++ {
		depart := float64(i%10)*day + 8*3600 + rnd.Float64()*900
		// Two regimes shared by the whole trip: all edges fast or all
		// slow — maximal positive dependence.
		base := 25.0
		if rnd.Float64() < 0.5 {
			base = 60.0
		}
		costs := make([]float64, 6)
		for j := range costs {
			costs[j] = base + rnd.Float64()*6
		}
		trajs = append(trajs, &gps.Matched{
			ID: int64(i), Path: graph.Path{0, 1, 2, 3, 4, 5}, Depart: depart, EdgeCosts: costs,
		})
	}
	data := gps.NewCollection(trajs, 0)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3, 4, 5}
	depart := 8*3600 + 450.0
	gt, _, err := GroundTruth(data, query, depart, params)
	if err != nil {
		t.Fatal(err)
	}
	od, err := h.CostDistribution(query, depart, QueryOptions{Method: MethodOD})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := h.CostDistribution(query, depart, QueryOptions{Method: MethodLB})
	if err != nil {
		t.Fatal(err)
	}
	if od.Decomp.MaxRank() != 3 {
		t.Fatalf("OD should use rank-3 variables, got %d", od.Decomp.MaxRank())
	}
	// The true total is bimodal (~150+36 or ~360+36); LB's convolution
	// of independent bimodal edges concentrates around the middle.
	klOD := stats.KLHistograms(gt, od.Dist)
	klLB := stats.KLHistograms(gt, lb.Dist)
	if klOD >= klLB {
		t.Fatalf("KL(GT,OD)=%v should be < KL(GT,LB)=%v", klOD, klLB)
	}
	// OD must preserve bimodality: low probability mass mid-range.
	mid := gt.Mean()
	if od.Dist.MassOn(mid-20, mid+20) > lb.Dist.MassOn(mid-20, mid+20) {
		t.Fatal("OD should put less mass in the spurious middle than LB")
	}
}

var _ = hist.DefaultResolution // hist is exercised via Evaluate internals

// TestParallelBuildMatchesSerial checks that the worker-pool
// instantiation produces exactly the same hybrid graph as the serial
// one: same statistics and same query answers.
func TestParallelBuildMatchesSerial(t *testing.T) {
	g, data, params := table1Fixture(t)
	serial, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	params.Workers = 8
	parallel, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	ss, ps := serial.Stats(), parallel.Stats()
	if ss.TotalVariables() != ps.TotalVariables() ||
		ss.CoveredEdges != ps.CoveredEdges ||
		ss.StorageFloats != ps.StorageFloats {
		t.Fatalf("stats differ: serial %+v vs parallel %+v", ss, ps)
	}
	query := graph.Path{0, 1, 2, 3, 4}
	depart := 8*3600 + 300.0
	for _, m := range []Method{MethodOD, MethodHP, MethodLB} {
		a, err1 := serial.CostDistribution(query, depart, QueryOptions{Method: m})
		b, err2 := parallel.CostDistribution(query, depart, QueryOptions{Method: m})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(a.Dist.Mean()-b.Dist.Mean()) > 1e-9 {
			t.Fatalf("%s: serial %v vs parallel %v", m, a.Dist.Mean(), b.Dist.Mean())
		}
	}
}

// TestConcurrentQueries checks that a trained hybrid graph is safe for
// concurrent readers (queries share the fallback cache).
func TestConcurrentQueries(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3, 4}
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func(seed int64) {
			for i := 0; i < 20; i++ {
				// Mix of in-data and fallback-only departure times.
				depart := 8*3600 + float64(i*60)
				if i%3 == 0 {
					depart = 20 * 3600
				}
				if _, err := h.CostDistribution(query, depart, QueryOptions{Method: MethodOD}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(int64(w))
	}
	for w := 0; w < 16; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
