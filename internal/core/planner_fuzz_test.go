package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/gps"
	"repro/internal/graph"
)

// FuzzBatchPlanner is a differential fuzz target over raw batch
// decompositions: arbitrary bytes decode into a batch of chain
// queries — overlapping, duplicated, invalid, mixed-method — and the
// planned answers must match independent evaluation entry for entry,
// bit for bit, without panicking and without breaking the planner's
// accounting invariants. A shared memo persists across executions so
// later inputs also exercise the probe path against states planned by
// earlier ones.

const fuzzChainEdges = 10

var (
	fuzzPlanOnce sync.Once
	fuzzPlanH    *HybridGraph
	fuzzPlanErr  error
	fuzzPlanMemo = NewConvMemo(1 << 12)
)

func fuzzPlannerFixture(t testing.TB) *HybridGraph {
	t.Helper()
	fuzzPlanOnce.Do(func() {
		b := graph.NewBuilder()
		var vs []graph.VertexID
		for i := 0; i <= fuzzChainEdges; i++ {
			vs = append(vs, b.AddVertex(pointAt(i)))
		}
		for i := 0; i < fuzzChainEdges; i++ {
			b.AddEdge(vs[i], vs[i+1], 300, 50, graph.ClassSecondary)
		}
		g := b.Freeze()
		params := DefaultParams()
		params.Beta = 8
		var trajs []*gps.Matched
		for i := 0; i < 120; i++ {
			path := make(graph.Path, fuzzChainEdges)
			costs := make([]float64, fuzzChainEdges)
			for j := range path {
				path[j] = graph.EdgeID(j)
				costs[j] = 22 + float64((i+j)%9)
			}
			trajs = append(trajs, &gps.Matched{
				ID: int64(i), Path: path, Depart: 8*3600 + float64(i%5)*200, EdgeCosts: costs,
			})
		}
		fuzzPlanH, fuzzPlanErr = Build(g, gps.NewCollection(trajs, 0), params)
	})
	if fuzzPlanErr != nil {
		t.Fatal(fuzzPlanErr)
	}
	return fuzzPlanH
}

// decodePlanBatch turns raw bytes into a batch: three bytes per query
// select a chain segment, a method, a departure, and whether to break
// the path's validity by repeating its first edge at the end.
func decodePlanBatch(data []byte) []PlanQuery {
	methods := []Method{MethodOD, MethodHP, MethodLB, MethodRD}
	var queries []PlanQuery
	for i := 0; i+2 < len(data) && len(queries) < 12; i += 3 {
		start := int(data[i]) % fuzzChainEdges
		n := 1 + int(data[i+1])%8
		if start+n > fuzzChainEdges {
			n = fuzzChainEdges - start
		}
		p := chainPath(start, n)
		v := data[i+2]
		if v&0x80 != 0 {
			// Edge p[0] never follows the segment's last edge, so the
			// query fails its final chain step after sharing every
			// earlier trie node with its valid neighbours.
			p = append(p, p[0])
		}
		queries = append(queries, PlanQuery{
			Path:   p,
			Depart: 8*3600 + float64((v>>2)&0x1f)*100,
			Opt:    QueryOptions{Method: methods[v&3], Seed: 1},
		})
	}
	return queries
}

func FuzzBatchPlanner(f *testing.F) {
	f.Add([]byte{0, 7, 0, 0, 5, 0, 0, 3, 0, 0, 1, 0})     // prefix ladder from edge 0
	f.Add([]byte{0, 7, 0x80, 0, 7, 0, 0, 4, 0})           // invalid entry sharing a valid trunk
	f.Add([]byte{0, 7, 0, 0, 7, 1, 0, 7, 2, 0, 7, 3})     // same path, all four methods
	f.Add([]byte{2, 5, 8, 2, 5, 8, 2, 3, 40, 5, 4, 0x84}) // duplicates + depart spread + invalid
	f.Add([]byte{9, 1, 0, 0, 9, 0})                       // single-edge tail and full chain
	f.Add([]byte{1, 2})                                   // too short: empty batch
	f.Fuzz(func(t *testing.T, data []byte) {
		h := fuzzPlannerFixture(t)
		queries := decodePlanBatch(data)
		if len(queries) == 0 {
			return
		}
		bp := NewBatchPlanner(h, 4)
		out, stats := bp.Distributions(context.Background(), nil, fuzzPlanMemo, queries)
		if len(out) != len(queries) {
			t.Fatalf("%d results for %d queries", len(out), len(queries))
		}
		checkPlannedMatchesIndependent(t, h, queries, out)
		if stats.Planned+stats.Fallback != stats.Queries {
			t.Fatalf("planned %d + fallback %d != queries %d",
				stats.Planned, stats.Fallback, stats.Queries)
		}
		if stats.Convolutions+stats.ProbeHits > stats.Nodes {
			t.Fatalf("%d convolutions + %d probe hits exceed %d trie nodes",
				stats.Convolutions, stats.ProbeHits, stats.Nodes)
		}
	})
}
