package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/stats"
)

// Method selects a path-cost estimation strategy (Section 5.2.2).
type Method string

// The estimator family of the empirical study.
const (
	// MethodOD uses the optimal (coarsest) decomposition — the paper's
	// proposal.
	MethodOD Method = "OD"
	// MethodRD uses a randomly chosen decomposition.
	MethodRD Method = "RD"
	// MethodHP uses pairwise joints only (Hua & Pei [10]).
	MethodHP Method = "HP"
	// MethodLB is the legacy baseline: independent edge convolution
	// with progressively updated arrival intervals (Section 2.3, [22]).
	MethodLB Method = "LB"
)

// QueryOptions tunes one cost-distribution query.
type QueryOptions struct {
	Method Method
	// RankCap caps variable ranks for OD (the OD-x variants of
	// Figure 16); 0 means uncapped.
	RankCap int
	// Seed drives MethodRD's random decomposition choice.
	Seed int64
	// Quantized evaluates the chain with the float32 fast-path kernel
	// (EvaluateQuantized): run masses and per-cell divisions happen in
	// float32, trading ~1e-6 relative error per multiply for less
	// division latency. Exact (default) answers stay byte-identical to
	// the reference kernel; quantized answers carry a measured error
	// bound (see TestQuantizedKernelErrorBound).
	Quantized bool
}

// Timing is the Figure 17 breakdown of one query: OI (identify the
// optimal decomposition), JC (compute the joint distribution), MC
// (derive the marginal cost distribution).
type Timing struct {
	OI, JC, MC time.Duration
}

// Total returns OI+JC+MC.
func (t Timing) Total() time.Duration { return t.OI + t.JC + t.MC }

// QueryResult is the outcome of a cost-distribution query.
type QueryResult struct {
	// Dist is the travel-cost distribution of the query path at the
	// departure time — the paper's problem output.
	Dist *hist.Histogram
	// Decomp is the decomposition that produced it.
	Decomp *Decomposition
	// Stats and Timing instrument the evaluation.
	Stats  EvalStats
	Timing Timing
}

// CostDistribution estimates the travel cost distribution of query
// path p departing at absolute time t (Section 4). The zero options
// value runs the paper's OD method.
func (h *HybridGraph) CostDistribution(p graph.Path, t float64, opt QueryOptions) (*QueryResult, error) {
	return h.CostDistributionCtx(nil, p, t, opt)
}

// CostDistributionCtx is CostDistribution bounded by ctx: the factor
// chain checks the deadline before each multiply and returns ctx's
// error once it expires. ctx travels as a parameter, never inside
// QueryOptions or any cached state — cached PathStates outlive the
// request that built them, so a stored context would poison later
// queries. nil ctx means unbounded.
func (h *HybridGraph) CostDistributionCtx(ctx context.Context, p graph.Path, t float64, opt QueryOptions) (*QueryResult, error) {
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	t0 := time.Now()
	ca, err := h.BuildCandidateArray(p, t)
	if err != nil {
		return nil, err
	}
	defer ca.Release()
	var de *Decomposition
	switch opt.Method {
	case MethodOD:
		de = ca.CoarsestDecomposition(opt.RankCap)
	case MethodRD:
		de = ca.RandomDecomposition(rand.New(rand.NewSource(opt.Seed)))
	case MethodHP:
		de = ca.PairDecomposition()
	case MethodLB:
		de = ca.UnitDecomposition()
	default:
		return nil, fmt.Errorf("core: unknown method %q", opt.Method)
	}
	t1 := time.Now()
	oi := t1.Sub(t0)

	dist, stats, err := h.evaluateMode(ctx, de, p, opt.Quantized)
	if err != nil {
		return nil, err
	}
	// One end-of-evaluation clock read settles both JC and MC (see
	// EvalStats.mcStart).
	end := time.Now()
	evalDur := end.Sub(t1)
	if !stats.mcStart.IsZero() {
		stats.MCDur = end.Sub(stats.mcStart)
	}
	jc := evalDur - stats.MCDur
	if jc < 0 {
		jc = 0
	}
	return &QueryResult{
		Dist:   dist,
		Decomp: de,
		Stats:  stats,
		Timing: Timing{OI: oi, JC: jc, MC: stats.MCDur},
	}, nil
}

// DecompositionEntropy computes H_DE(C_P) of Theorem 2 for the
// decomposition: Σ H(C_{P_i}) − Σ H(C_{P_i ∩ P_{i−1}}), the entropy of
// the estimated joint. Lower is a more informative (more accurate)
// estimate; Figure 15 compares methods by this quantity.
func (h *HybridGraph) DecompositionEntropy(de *Decomposition) (float64, error) {
	var sum float64
	for i, v := range de.Vars {
		sum += variableEntropy(v)
		if i == 0 {
			continue
		}
		prevEnd := de.Pos[i-1] + de.Vars[i-1].Rank()
		ovLen := prevEnd - de.Pos[i]
		if ovLen <= 0 {
			continue
		}
		fm, err := asMulti(v)
		if err != nil {
			return 0, err
		}
		ovIdx := make([]int, ovLen)
		for d := range ovIdx {
			ovIdx[d] = d
		}
		marg, err := fm.MarginalOnto(ovIdx)
		if err != nil {
			return 0, err
		}
		sum -= multiEntropy(marg)
	}
	return sum, nil
}

// Entropy returns the differential entropy of the variable's
// distribution in nats (Figure 8(b) reports these per rank).
func (v *Variable) Entropy() float64 { return variableEntropy(v) }

// variableEntropy returns the differential entropy of the variable's
// distribution.
func variableEntropy(v *Variable) float64 {
	if v.Hist != nil {
		return histEntropy(v.Hist)
	}
	return multiEntropy(v.Joint)
}

// histEntropy and multiEntropy delegate to the stats package — one
// implementation of the Theorem 2 H(·), one place for its sorted-order
// accumulation invariant.
func histEntropy(hg *hist.Histogram) float64 { return stats.EntropyHistogram(hg) }

func multiEntropy(m *hist.Multi) float64 { return stats.EntropyMulti(m) }

// GroundTruth implements the accuracy-optimal baseline of Section 2.2:
// the distribution of total path costs over the qualified trajectories
// (those that occurred on p within the departure-time threshold of t).
// It returns the distribution and the number of qualified trajectories;
// fewer than β qualified trajectories is an error (data sparseness —
// the baseline is inapplicable).
func GroundTruth(data *gps.Collection, p graph.Path, t float64, params Params) (*hist.Histogram, int, error) {
	occs := data.OccurrencesOfPath(p)
	var samples []float64
	for _, oc := range occs {
		m := data.Traj(oc.Traj)
		arr := m.ArrivalAt(oc.Pos)
		if todDistance(arr, t) <= params.GTThresholdS {
			samples = append(samples, domainCost(m, oc.Pos, len(p), params.Domain))
		}
	}
	if len(samples) < params.Beta {
		return nil, len(samples), fmt.Errorf(
			"core: only %d qualified trajectories on %v (β = %d): accuracy-optimal baseline inapplicable",
			len(samples), p, params.Beta)
	}
	hg, _, err := hist.AutoHistogram(samples, params.Resolution, params.Auto)
	if err != nil {
		return nil, len(samples), err
	}
	return hg, len(samples), nil
}

// GroundTruthInterval is GroundTruth with interval semantics: the
// qualified trajectories are those arriving within time-of-day
// interval iv (any day), matching how W_P variables are instantiated.
func GroundTruthInterval(data *gps.Collection, p graph.Path, iv int, params Params) (*hist.Histogram, int, error) {
	occs := data.OccurrencesOfPath(p)
	var samples []float64
	for _, oc := range occs {
		m := data.Traj(oc.Traj)
		if params.IntervalOf(m.ArrivalAt(oc.Pos)) == iv {
			samples = append(samples, domainCost(m, oc.Pos, len(p), params.Domain))
		}
	}
	if len(samples) < params.Beta {
		return nil, len(samples), fmt.Errorf(
			"core: only %d qualified trajectories on %v in interval %d (β = %d)",
			len(samples), p, iv, params.Beta)
	}
	hg, _, err := hist.AutoHistogram(samples, params.Resolution, params.Auto)
	if err != nil {
		return nil, len(samples), err
	}
	return hg, len(samples), nil
}

// domainCost sums the configured-domain costs of a trajectory sub-path.
func domainCost(m *gps.Matched, pos, n int, d CostDomain) float64 {
	if d == DomainEmissions {
		var s float64
		for j := pos; j < pos+n; j++ {
			s += m.Emissions[j]
		}
		return s
	}
	return m.CostOfSubPath(pos, n)
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// todDistance returns the circular time-of-day distance between two
// absolute times: trajectories from different days qualify when their
// clock times are close (the paper's fleets span months, so qualified
// trajectories necessarily come from many days).
func todDistance(a, b float64) float64 {
	d := absF(gps.SecondsOfDay(a) - gps.SecondsOfDay(b))
	if d > gps.SecondsPerDay/2 {
		d = gps.SecondsPerDay - d
	}
	return d
}
