package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestModelRoundTrip(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHybrid(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	// Same statistics.
	if h2.Stats().TotalVariables() != h.Stats().TotalVariables() {
		t.Fatalf("variables: %d vs %d", h2.Stats().TotalVariables(), h.Stats().TotalVariables())
	}
	if h2.Stats().CoveredEdges != h.Stats().CoveredEdges {
		t.Fatal("covered edges differ")
	}
	if h2.Params.Beta != h.Params.Beta || h2.Params.AlphaMinutes != h.Params.AlphaMinutes {
		t.Fatal("params differ")
	}
	// Same query answers.
	query := graph.Path{0, 1, 2, 3, 4}
	depart := 8*3600 + 300.0
	for _, m := range []Method{MethodOD, MethodHP, MethodLB} {
		a, err1 := h.CostDistribution(query, depart, QueryOptions{Method: m})
		b, err2 := h2.CostDistribution(query, depart, QueryOptions{Method: m})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", m, err1, err2)
		}
		if math.Abs(a.Dist.Mean()-b.Dist.Mean()) > 1e-9 {
			t.Fatalf("%s: mean %v vs %v after round trip", m, a.Dist.Mean(), b.Dist.Mean())
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			if math.Abs(a.Dist.Quantile(q)-b.Dist.Quantile(q)) > 1e-9 {
				t.Fatalf("%s: quantile %v differs after round trip", m, q)
			}
		}
	}
	// Same decomposition structure.
	ca1, _ := h.BuildCandidateArray(query, depart)
	ca2, _ := h2.BuildCandidateArray(query, depart)
	d1 := ca1.CoarsestDecomposition(0)
	d2 := ca2.CoarsestDecomposition(0)
	if d1.Cardinality() != d2.Cardinality() || d1.MaxRank() != d2.MaxRank() {
		t.Fatal("decomposition structure differs after round trip")
	}
}

func TestReadHybridRejectsWrongGraph(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	// A 3-edge chain cannot hold paths over edges 3, 4.
	small := chainGraph(t, 2)
	if _, err := ReadHybrid(bytes.NewReader(buf.Bytes()), small); err == nil {
		t.Fatal("model loaded against an incompatible graph")
	}
}

func TestReadHybridRejectsGarbage(t *testing.T) {
	g := chainGraph(t, 3)
	cases := []string{
		"",
		"not-a-model\n",
		"hybridgraph-v1\nbogus\n",
		"hybridgraph-v1\nparams 30 30 4 1 0 48 64 0 5 1800\nstats 1 1 1 1 1\nvar xyz 16 30 1 2\n",
		"hybridgraph-v1\nparams 30 30 4 1 0 48 64 0 5 1800\nstats 1 1 1 1 1\nvar 0 16 30 1 2\nh 1 5 4 1\n",
		"hybridgraph-v1\nparams 0 0 0 0 0 0 0 0 0 0\n",
	}
	for i, c := range cases {
		if _, err := ReadHybrid(strings.NewReader(c), g); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestModelRoundTripDetectsCorruption(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Drop the last variable block: rank counts no longer match.
	text := buf.String()
	idx := strings.LastIndex(text, "var ")
	if idx < 0 {
		t.Fatal("no var records")
	}
	if _, err := ReadHybrid(strings.NewReader(text[:idx]), g); err == nil {
		t.Fatal("truncated model accepted")
	}
}
