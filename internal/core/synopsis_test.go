package core

import (
	"testing"

	"repro/internal/graph"
)

// Selection must respect both budgets exactly: never more entries
// than MaxEntries, never more serialized bytes than MaxBytes.
func TestSynopsisBudgetsRespected(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Path{0, 1, 2, 3, 4}
	var workload []WorkloadQuery
	for n := 2; n <= len(full); n++ {
		workload = append(workload, WorkloadQuery{Path: full[:n], Depart: 8 * 3600})
		workload = append(workload, WorkloadQuery{Path: full[:n], Depart: 9 * 3600})
	}

	unbounded, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Len() == 0 {
		t.Fatal("nothing selected with an effectively unbounded budget")
	}

	for _, entries := range []int{1, 2, 3} {
		syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: entries})
		if err != nil {
			t.Fatal(err)
		}
		if syn.Len() > entries {
			t.Fatalf("entry budget %d exceeded: %d entries", entries, syn.Len())
		}
	}

	byteBudget := unbounded.Bytes() / 2
	syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 1000, MaxBytes: byteBudget})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Bytes() > byteBudget {
		t.Fatalf("byte budget %d exceeded: %d bytes", byteBudget, syn.Bytes())
	}
	if syn.Len() == 0 || syn.Len() >= unbounded.Len() {
		t.Fatalf("byte budget %d selected %d of %d entries; expected a strict, non-empty subset",
			byteBudget, syn.Len(), unbounded.Len())
	}
}

// With budget for a single entry, the greedy must pick the candidate
// with the highest weight × depth-saved marginal: the deepest prefix
// shared by the whole workload beats shallower (more frequent per
// query but less saving) and deeper (rarer) ones.
func TestSynopsisGreedyPicksBestMarginal(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Path{0, 1, 2, 3, 4}
	// 10 queries of depth 4 and one of depth 5, all sharing prefixes.
	var workload []WorkloadQuery
	workload = append(workload, WorkloadQuery{Path: full[:4], Depart: 8 * 3600, Weight: 10})
	workload = append(workload, WorkloadQuery{Path: full, Depart: 8 * 3600, Weight: 1})

	syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() != 1 {
		t.Fatalf("selected %d entries, want 1", syn.Len())
	}
	// Marginals: prefix[:4] saves (10+1)×4 = 44; prefix[:5] saves
	// 10×4 + 1×5 = 45 — wait, [:5] only serves the depth-5 query
	// (prefix containment is exact): 1×5 = 5. [:4] serves both:
	// (10+1)×4 = 44. So [:4] must win.
	st, ok := syn.Lookup(full[:4], 8*3600, QueryOptions{Method: MethodOD})
	if !ok {
		t.Fatalf("greedy picked %v, want the shared depth-4 prefix", syn.Keys())
	}
	if !st.Path().Equal(full[:4]) {
		t.Fatalf("entry path %v, want %v", st.Path(), full[:4])
	}
}

// Selection must be deterministic: same workload, same budgets, same
// entries and bytes, run after run.
func TestSynopsisSelectionDeterministic(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Path{0, 1, 2, 3, 4}
	var workload []WorkloadQuery
	for n := 2; n <= len(full); n++ {
		for _, dep := range []float64{8 * 3600, 8*3600 + 450, 9 * 3600} {
			workload = append(workload, WorkloadQuery{Path: full[:n], Depart: dep})
		}
	}
	a, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 7})
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("entry counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("selection differs at %d: %q vs %q", i, ka[i], kb[i])
		}
	}
	if a.Bytes() != b.Bytes() {
		t.Fatalf("byte accounting differs: %d vs %d", a.Bytes(), b.Bytes())
	}
}

// A full-path synopsis hit must answer with zero convolutions: no
// memo present, no chain work — the state is already materialized,
// and the probe counters must say so.
func TestSynopsisHitIsZeroConvolutions(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	p := graph.Path{0, 1, 2, 3}
	dep := 8 * 3600.0
	syn, err := h.BuildSynopsis([]WorkloadQuery{{Path: p, Depart: dep}}, SynopsisConfig{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := syn.Stats()
	st, err := h.PathStateWith(syn, nil, p, dep, QueryOptions{Method: MethodOD})
	if err != nil {
		t.Fatal(err)
	}
	after := syn.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("probe counters: before %+v, after %+v; want exactly one hit", before, after)
	}
	// The returned state must be the stored one, not a recomputation.
	stored, _ := syn.Lookup(p, dep, QueryOptions{Method: MethodOD})
	if st != stored {
		t.Fatal("full-path hit returned a recomputed state instead of the stored one")
	}
	// A query for a path outside the synopsis counts a miss.
	if _, err := h.PathStateWith(syn, nil, graph.Path{1, 2}, dep, QueryOptions{Method: MethodOD}); err != nil {
		t.Fatal(err)
	}
	if st := syn.Stats(); st.Misses != after.Misses+1 {
		t.Fatalf("miss not counted: %+v", st)
	}
}

// A synopsis prefix must compose with the runtime memo: resuming from
// the synopsis base, the extension states land in the memo.
func TestSynopsisComposesWithMemo(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Path{0, 1, 2, 3, 4}
	dep := 8 * 3600.0
	// Synopsis holds only the depth-3 prefix.
	syn, err := h.BuildSynopsis([]WorkloadQuery{{Path: full[:3], Depart: dep}}, SynopsisConfig{MaxEntries: 1, MinDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() != 1 {
		t.Fatalf("fixture synopsis has %d entries, want 1", syn.Len())
	}
	memo := NewConvMemo(64)
	if _, err := h.PathStateWith(syn, memo, full, dep, QueryOptions{Method: MethodOD}); err != nil {
		t.Fatal(err)
	}
	// Extensions [:4] and [:5] were computed once and memoized.
	if st := memo.Stats(); st.Entries != 2 {
		t.Fatalf("memo holds %d states after composing, want 2 (the extensions)", st.Entries)
	}
	if st := syn.Stats(); st.Hits != 1 {
		t.Fatalf("synopsis hits = %d, want 1 (the depth-3 base)", st.Hits)
	}
	// Second evaluation: deepest base now comes from the memo, and no
	// new states are stored.
	if _, err := h.PathStateWith(syn, memo, full, dep, QueryOptions{Method: MethodOD}); err != nil {
		t.Fatal(err)
	}
	if st := memo.Stats(); st.Entries != 2 || st.Hits == 0 {
		t.Fatalf("memo after warm pass: %+v", st)
	}
}

// RD has no incremental evaluator; building a synopsis for it must
// fail loudly, as must degenerate budgets and empty workloads.
func TestSynopsisBuildRejectsBadInput(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	wl := []WorkloadQuery{{Path: graph.Path{0, 1}, Depart: 8 * 3600}}
	if _, err := h.BuildSynopsis(wl, SynopsisConfig{MaxEntries: 4, Method: MethodRD}); err == nil {
		t.Fatal("RD synopsis built without error")
	}
	if _, err := h.BuildSynopsis(wl, SynopsisConfig{MaxEntries: 0}); err == nil {
		t.Fatal("zero entry budget accepted")
	}
	if _, err := h.BuildSynopsis(nil, SynopsisConfig{MaxEntries: 4}); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := h.BuildSynopsis([]WorkloadQuery{{Path: graph.Path{0, 4}, Depart: 0}},
		SynopsisConfig{MaxEntries: 4}); err == nil {
		t.Fatal("invalid workload path accepted")
	}
}

// Weights must steer selection: under a one-entry budget, a heavy
// query's prefix beats a light query's deeper prefix.
func TestSynopsisWeightsSteerSelection(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	heavy := graph.Path{0, 1}       // depth 2, weight 100 → marginal 200
	light := graph.Path{1, 2, 3, 4} // depth 4, weight 1 → marginal ≤ 4×..
	workload := []WorkloadQuery{
		{Path: heavy, Depart: 8 * 3600, Weight: 100},
		{Path: light, Depart: 8 * 3600, Weight: 1},
	}
	syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := syn.Lookup(heavy, 8*3600, QueryOptions{}); !ok {
		t.Fatalf("weight-100 prefix not selected; entries: %v", syn.Keys())
	}
}
