package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/hist"
)

// serialVersion tags the model file format.
const serialVersion = "hybridgraph-v1"

// WriteModel serializes the trained hybrid graph (parameters, statistics
// and every trajectory-backed variable) as line-oriented text, so a
// model can be trained once and served later. The road network is not
// embedded; loading requires the same graph.
func (h *HybridGraph) WriteModel(w io.Writer) error {
	return h.WriteModelSynopsis(w, nil)
}

// WriteModelSynopsis is WriteModel plus an optional synopsis section:
// the offline sub-path synopsis is trained with the model and ships
// inside the same file, so the serving daemon loads pre-materialized
// states at boot. A nil or empty synopsis writes a plain model file,
// and readers predating the synopsis section only lose the synopsis —
// the model records are unchanged.
func (h *HybridGraph) WriteModelSynopsis(w io.Writer, syn *SynopsisStore) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, serialVersion)
	p := h.Params
	fmt.Fprintf(bw, "params %d %d %d %g %d %d %d %d %d %g\n",
		p.AlphaMinutes, p.Beta, p.MaxRank, p.Resolution, int(p.Domain),
		p.MaxAccBuckets, p.MaxResultBuckets, p.StaticBuckets, p.Auto.Folds, p.GTThresholdS)
	st := h.stats
	fmt.Fprintf(bw, "stats %d %d %d %d", st.CoveredEdges, st.EdgesWithData, st.StorageFloats, st.SupportTotal)
	for _, c := range st.VariablesByRank {
		fmt.Fprintf(bw, " %d", c)
	}
	fmt.Fprintln(bw)

	var err error
	h.ForEachVariable(func(v *Variable) {
		if err != nil {
			return
		}
		err = writeVariable(bw, v)
	})
	if err != nil {
		return err
	}
	if syn != nil && syn.Len() > 0 {
		if err := writeSynopsis(bw, syn); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeVariable(bw *bufio.Writer, v *Variable) error {
	fmt.Fprintf(bw, "var %s %d %d %g %g\n", v.Path.Key(), v.Interval, v.Support, v.TimeMin, v.TimeMax)
	if v.Hist != nil {
		bs := v.Hist.Buckets()
		fmt.Fprintf(bw, "h %d", len(bs))
		for _, b := range bs {
			fmt.Fprintf(bw, " %g %g %g", b.Lo, b.Hi, b.Pr)
		}
		fmt.Fprintln(bw)
		return nil
	}
	m := v.Joint
	fmt.Fprintf(bw, "m %d\n", m.Dims())
	for d := 0; d < m.Dims(); d++ {
		bd := m.Bounds(d)
		fmt.Fprintf(bw, "b %d", len(bd))
		for _, x := range bd {
			fmt.Fprintf(bw, " %g", x)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "c %d\n", m.NumCells())
	var err error
	m.ForEachSorted(func(k hist.CellKey, pr float64) {
		if err != nil {
			return
		}
		for d := 0; d < m.Dims(); d++ {
			if _, werr := fmt.Fprintf(bw, "%d ", k[d]); werr != nil {
				err = werr
				return
			}
		}
		_, err = fmt.Fprintf(bw, "%g\n", pr)
	})
	return err
}

// ReadHybrid deserializes a model written by WriteModel, re-binding it to
// the given road network, and discarding any synopsis section (see
// ReadHybridSynopsis). Every variable path is validated against the
// graph so a mismatched network fails loudly instead of answering
// nonsense.
func ReadHybrid(r io.Reader, g *graph.Graph) (*HybridGraph, error) {
	h, _, err := ReadHybridSynopsis(r, g)
	return h, err
}

// ReadHybridSynopsis deserializes a model plus its optional synopsis
// section. Models written before the synopsis existed — or with a nil
// synopsis — return a nil store; files carrying an unknown synopsis
// version or a corrupt section fail with a descriptive error.
func ReadHybridSynopsis(r io.Reader, g *graph.Graph) (*HybridGraph, *SynopsisStore, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rd := &hybridReader{sc: sc}

	if line, ok := rd.next(); !ok || line != serialVersion {
		return nil, nil, fmt.Errorf("core: not a %s file", serialVersion)
	}
	h := &HybridGraph{
		G:         g,
		vars:      make(map[string]*pathVars),
		unit:      make([]*pathVars, g.NumEdges()),
		byStart:   make([][]*pathVars, g.NumEdges()),
		fallbacks: make(map[graph.EdgeID]*Variable),
	}
	// params
	line, ok := rd.next()
	if !ok {
		return nil, nil, fmt.Errorf("core: truncated model (params)")
	}
	f := strings.Fields(line)
	if len(f) != 11 || f[0] != "params" {
		return nil, nil, fmt.Errorf("core: bad params line %q", line)
	}
	p := DefaultParams()
	p.AlphaMinutes = atoi(f[1])
	p.Beta = atoi(f[2])
	p.MaxRank = atoi(f[3])
	p.Resolution = atof(f[4])
	p.Domain = CostDomain(atoi(f[5]))
	p.MaxAccBuckets = atoi(f[6])
	p.MaxResultBuckets = atoi(f[7])
	p.StaticBuckets = atoi(f[8])
	p.Auto.Folds = atoi(f[9])
	p.GTThresholdS = atof(f[10])
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: model params invalid: %w", err)
	}
	h.Params = p
	// stats
	line, ok = rd.next()
	if !ok {
		return nil, nil, fmt.Errorf("core: truncated model (stats)")
	}
	f = strings.Fields(line)
	if len(f) < 5 || f[0] != "stats" {
		return nil, nil, fmt.Errorf("core: bad stats line %q", line)
	}
	savedStats := BuildStats{
		CoveredEdges:  atoi(f[1]),
		EdgesWithData: atoi(f[2]),
		StorageFloats: atoi(f[3]),
		SupportTotal:  atoi(f[4]),
	}
	for _, c := range f[5:] {
		savedStats.VariablesByRank = append(savedStats.VariablesByRank, atoi(c))
	}
	h.stats.VariablesByRank = make([]int, len(savedStats.VariablesByRank))

	// variables, up to EOF or the optional synopsis section
	var synHeader string
	for {
		line, ok := rd.next()
		if !ok {
			break
		}
		f := strings.Fields(line)
		if strings.HasPrefix(f[0], "synopsis-") {
			// Defer parsing until the model is complete: synopsis
			// entries resolve factors against the loaded variables.
			synHeader = line
			break
		}
		if len(f) != 6 || f[0] != "var" {
			return nil, nil, fmt.Errorf("core: expected var line, got %q", line)
		}
		path, err := parsePathKey(f[1])
		if err != nil {
			return nil, nil, err
		}
		if !g.ValidPath(path) {
			return nil, nil, fmt.Errorf("core: model path %v is not valid in this graph", path)
		}
		v := &Variable{
			Path:     path,
			Interval: atoi(f[2]),
			Support:  atoi(f[3]),
			TimeMin:  atof(f[4]),
			TimeMax:  atof(f[5]),
		}
		if err := rd.readDistribution(v); err != nil {
			return nil, nil, err
		}
		h.addVariable(v)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	// Cross-check the variable counts; other stats fields are not
	// recomputable without the data, so trust the file.
	for r := range savedStats.VariablesByRank {
		if r < len(h.stats.VariablesByRank) && h.stats.VariablesByRank[r] != savedStats.VariablesByRank[r] {
			return nil, nil, fmt.Errorf("core: model corrupt: rank-%d count %d, file says %d",
				r+1, h.stats.VariablesByRank[r], savedStats.VariablesByRank[r])
		}
	}
	h.stats.CoveredEdges = savedStats.CoveredEdges
	h.stats.EdgesWithData = savedStats.EdgesWithData
	h.stats.SupportTotal = savedStats.SupportTotal
	sortRows(h)
	var syn *SynopsisStore
	if synHeader != "" {
		var err error
		syn, err = readSynopsis(rd, h, synHeader)
		if err != nil {
			return nil, nil, err
		}
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
	}
	return h, syn, nil
}

func sortRows(h *HybridGraph) {
	for _, list := range h.byStart {
		for i := 1; i < len(list); i++ {
			for j := i; j > 0 && len(list[j].path) < len(list[j-1].path); j-- {
				list[j], list[j-1] = list[j-1], list[j]
			}
		}
	}
}

type hybridReader struct {
	sc     *bufio.Scanner
	peeked *string
}

func (r *hybridReader) next() (string, bool) {
	if r.peeked != nil {
		s := *r.peeked
		r.peeked = nil
		return s, true
	}
	for r.sc.Scan() {
		line := strings.TrimSpace(r.sc.Text())
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (r *hybridReader) readDistribution(v *Variable) error {
	line, ok := r.next()
	if !ok {
		return fmt.Errorf("core: truncated model (distribution of %v)", v.Path)
	}
	f := strings.Fields(line)
	switch f[0] {
	case "h":
		if len(f) < 2 {
			return fmt.Errorf("core: bad histogram line for %v", v.Path)
		}
		n := atoi(f[1])
		if n < 1 || n >= len(f) || len(f) != 2+3*n {
			return fmt.Errorf("core: bad histogram line for %v", v.Path)
		}
		bs := make([]hist.Bucket, n)
		for i := 0; i < n; i++ {
			bs[i] = hist.Bucket{Lo: atof(f[2+3*i]), Hi: atof(f[3+3*i]), Pr: atof(f[4+3*i])}
		}
		// Exact, not renormalizing: stored masses already sum to ≈1,
		// and dividing by that almost-one total would perturb every
		// bucket at the bit level — loaded models would then answer
		// slightly differently than the process that trained them, and
		// write→read→write would not reproduce the file.
		hg, err := hist.FromBucketsExact(bs, 1e-6)
		if err != nil {
			return fmt.Errorf("core: %v: %w", v.Path, err)
		}
		v.Hist = hg
		return nil
	case "m":
		if len(f) != 2 {
			return fmt.Errorf("core: bad joint line for %v", v.Path)
		}
		dims := atoi(f[1])
		if dims < 1 || dims > hist.MaxDims {
			return fmt.Errorf("core: joint of %v has %d dims, range is [1,%d]", v.Path, dims, hist.MaxDims)
		}
		bounds := make([][]float64, dims)
		for d := 0; d < dims; d++ {
			line, ok := r.next()
			if !ok {
				return fmt.Errorf("core: truncated bounds of %v", v.Path)
			}
			bf := strings.Fields(line)
			if bf[0] != "b" || len(bf) < 2 {
				return fmt.Errorf("core: expected bounds line for %v", v.Path)
			}
			n := atoi(bf[1])
			if n < 2 || len(bf) != 2+n {
				return fmt.Errorf("core: bad bounds line for %v", v.Path)
			}
			bounds[d] = make([]float64, n)
			for i := 0; i < n; i++ {
				bounds[d][i] = atof(bf[2+i])
			}
		}
		m, err := hist.NewMulti(bounds)
		if err != nil {
			return fmt.Errorf("core: %v: %w", v.Path, err)
		}
		line, ok := r.next()
		if !ok {
			return fmt.Errorf("core: truncated cells of %v", v.Path)
		}
		cf := strings.Fields(line)
		if cf[0] != "c" || len(cf) != 2 {
			return fmt.Errorf("core: expected cell count for %v", v.Path)
		}
		count := atoi(cf[1])
		if count < 1 {
			return fmt.Errorf("core: bad cell count for %v", v.Path)
		}
		// Cells were written by ForEachSorted, so they arrive in
		// ascending key order and SetCell appends each one straight
		// onto the columnar arrays — loading builds the sorted layout
		// directly, with no re-sorting and no hashing.
		idx := make([]int, dims)
		for i := 0; i < count; i++ {
			line, ok := r.next()
			if !ok {
				return fmt.Errorf("core: truncated cell %d of %v", i, v.Path)
			}
			xf := strings.Fields(line)
			if len(xf) != dims+1 {
				return fmt.Errorf("core: bad cell line for %v", v.Path)
			}
			for d := 0; d < dims; d++ {
				idx[d] = atoi(xf[d])
				if idx[d] < 0 || idx[d] >= m.NumBuckets(d) {
					return fmt.Errorf("core: cell index out of range for %v", v.Path)
				}
			}
			m.SetCell(idx, atof(xf[dims]))
		}
		// Validated, not renormalized — see the histogram case above.
		if err := m.CheckNormalized(1e-6); err != nil {
			return fmt.Errorf("core: %v: %w", v.Path, err)
		}
		v.Joint = m
		return nil
	default:
		return fmt.Errorf("core: unknown distribution record %q for %v", f[0], v.Path)
	}
}

func parsePathKey(key string) (graph.Path, error) {
	parts := strings.Split(key, ",")
	p := make(graph.Path, len(parts))
	for i, s := range parts {
		id, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("core: bad path key %q", key)
		}
		p[i] = graph.EdgeID(id)
	}
	return p, nil
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func atof(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}
