package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hist"
)

// This file is the differential oracle harness: a deliberately naive,
// obviously-correct implementation of the Equation 2 evaluation — no
// memo, no lazy marginals, no synopsis, no incremental resumption —
// against which every optimized evaluation path is checked for
// byte-identical output on randomly generated workloads. The naive
// evaluator applies the chain primitives (initialState, multiply,
// foldTo) in one straight-line loop, so anything the optimized paths
// add (prefix reuse, shared states, persisted states) must be
// observationally invisible.

// naiveDistribution evaluates query p departing at t the slow,
// transparent way.
func naiveDistribution(h *HybridGraph, p graph.Path, t float64, opt QueryOptions) (*hist.Histogram, error) {
	ca, err := h.BuildCandidateArray(p, t)
	if err != nil {
		return nil, err
	}
	var de *Decomposition
	switch opt.Method {
	case MethodOD, "":
		de = ca.CoarsestDecomposition(opt.RankCap)
	case MethodHP:
		de = ca.PairDecomposition()
	case MethodLB:
		de = ca.UnitDecomposition()
	default:
		return nil, nil
	}
	if err := de.Validate(p); err != nil {
		return nil, err
	}
	// Single factor covering the whole query: its own distribution is
	// the answer (mirrors Evaluate's "lucky" case).
	if len(de.Vars) == 1 {
		v := de.Vars[0]
		if v.Hist != nil {
			return v.Hist, nil
		}
		return v.Joint.SumHistogram(h.Params.MaxResultBuckets)
	}
	var state *chainState
	for i := range de.Vars {
		fm, err := asMulti(de.Vars[i])
		if err != nil {
			return nil, err
		}
		positions := factorPositions(de, i)
		if state == nil {
			state, err = initialState(fm, positions)
		} else {
			state, err = state.multiply(fm, positions, nil)
		}
		if err != nil {
			return nil, err
		}
		state, err = state.foldTo(overlapWithNext(de, i), h.Params.MaxAccBuckets)
		if err != nil {
			return nil, err
		}
	}
	return state.m.SumHistogram(h.Params.MaxResultBuckets)
}

// identicalHist reports bit-level equality of two histograms.
func identicalHist(a, b *hist.Histogram) bool {
	ab, bb := a.Buckets(), b.Buckets()
	if len(ab) != len(bb) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// oracleQueries derives a deterministic prefix-heavy query set from a
// workload's full chain path: every prefix of the chain, at a couple
// of departures.
func oracleQueries(g *graph.Graph, seed int64) ([]graph.Path, []float64) {
	full := make(graph.Path, g.NumEdges())
	for i := range full {
		full[i] = graph.EdgeID(i)
	}
	var paths []graph.Path
	for n := 1; n <= len(full); n++ {
		paths = append(paths, full[:n])
	}
	rnd := rand.New(rand.NewSource(seed))
	departs := []float64{8 * 3600, 8*3600 + float64(rnd.Intn(1200))}
	return paths, departs
}

// PROPERTY: on arbitrary random workloads, the memoized, the
// synopsis-backed, and the combined evaluation paths all reproduce
// the naive oracle bit for bit, for every incremental method, every
// prefix of the query chain, and repeated evaluation (warm states).
func TestOracleDifferentialByteIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g, data, params := randomWorkload(seed)
		h, err := Build(g, data, params)
		if err != nil {
			return false
		}
		paths, departs := oracleQueries(g, seed)

		for _, method := range []Method{MethodOD, MethodHP, MethodLB} {
			opt := QueryOptions{Method: method}
			// One synopsis over the whole query set, one shared memo.
			var workload []WorkloadQuery
			for _, p := range paths {
				for _, dep := range departs {
					workload = append(workload, WorkloadQuery{Path: p, Depart: dep})
				}
			}
			syn, err := h.BuildSynopsis(workload, SynopsisConfig{
				MaxEntries: 64, Method: method, MinDepth: 2,
			})
			if err != nil {
				t.Logf("seed %d: synopsis: %v", seed, err)
				return false
			}
			memo := NewConvMemo(256)
			for _, dep := range departs {
				for _, p := range paths {
					want, err := naiveDistribution(h, p, dep, opt)
					if err != nil {
						t.Logf("seed %d %s %v: naive: %v", seed, method, p, err)
						return false
					}
					for pass := 0; pass < 2; pass++ { // cold, then warm
						for name, got := range map[string]func() (*QueryResult, error){
							"plain": func() (*QueryResult, error) { return h.CostDistribution(p, dep, opt) },
							"memo":  func() (*QueryResult, error) { return h.CostDistributionMemo(memo, p, dep, opt) },
							"syn":   func() (*QueryResult, error) { return h.CostDistributionWith(syn, nil, p, dep, opt) },
							"both":  func() (*QueryResult, error) { return h.CostDistributionWith(syn, memo, p, dep, opt) },
						} {
							res, err := got()
							if err != nil {
								t.Logf("seed %d %s %v %s: %v", seed, method, p, name, err)
								return false
							}
							if !identicalHist(want, res.Dist) {
								t.Logf("seed %d %s %v pass %d: %s diverged from naive oracle", seed, method, p, pass, name)
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The synopsis-backed answers must survive a save/load round trip
// unchanged: persisted states are exact images of the in-memory ones,
// and the lossless model reader keeps every variable bit-identical.
func TestOracleByteIdentityAfterSaveLoad(t *testing.T) {
	g, data, params := randomWorkload(3)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	paths, departs := oracleQueries(g, 3)
	var workload []WorkloadQuery
	for _, p := range paths {
		for _, dep := range departs {
			workload = append(workload, WorkloadQuery{Path: p, Depart: dep})
		}
	}
	syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	h2, syn2 := reloadModel(t, h, syn, g)
	if syn2 == nil || syn2.Len() != syn.Len() {
		t.Fatalf("synopsis did not survive the round trip: %v", syn2)
	}
	opt := QueryOptions{Method: MethodOD}
	for _, dep := range departs {
		for _, p := range paths {
			want, err := naiveDistribution(h, p, dep, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := h2.CostDistributionWith(syn2, nil, p, dep, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !identicalHist(want, got.Dist) {
				t.Fatalf("loaded synopsis diverged from naive oracle on %v@%v", p, dep)
			}
		}
	}
}

// Concurrent queries through one shared synopsis and memo must match
// the oracle bit for bit; under -race this also proves the loaded and
// built states are safely shareable.
func TestOracleConcurrentByteIdentity(t *testing.T) {
	g, data, params := randomWorkload(11)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	paths, departs := oracleQueries(g, 11)
	var workload []WorkloadQuery
	for _, p := range paths {
		workload = append(workload, WorkloadQuery{Path: p, Depart: departs[0]})
	}
	syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	opt := QueryOptions{Method: MethodOD}
	want := make([]*hist.Histogram, len(paths))
	for i, p := range paths {
		if want[i], err = naiveDistribution(h, p, departs[0], opt); err != nil {
			t.Fatal(err)
		}
	}
	memo := NewConvMemo(128)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for i, p := range paths {
					res, err := h.CostDistributionWith(syn, memo, p, departs[0], opt)
					if err != nil {
						errs <- err
						return
					}
					if !identicalHist(want[i], res.Dist) {
						errs <- oracleMismatch(p)
						return
					}
					_ = w
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := syn.Stats(); st.Hits == 0 {
		t.Fatalf("synopsis never hit under the concurrent workload: %+v", st)
	}
}

type oracleMismatch graph.Path

func (e oracleMismatch) Error() string {
	return "concurrent result diverged from naive oracle on " + graph.Path(e).String()
}
