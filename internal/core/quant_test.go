package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hist"
)

// Tests for the quantized float32 kernel (multiplyQuant /
// EvaluateQuantized): it must touch exactly the cells the exact kernel
// touches — quantization perturbs values, never support or order — and
// its per-cell relative error must stay within the bound implied by
// the float32 roundings it performs (three operand casts, one multiply,
// one divide: ≲ 5·2⁻²⁴ ≈ 3·10⁻⁷ per cell for a single multiply).

// quantRelBound is the asserted per-cell relative error for one
// quantized multiply. The measured maximum across the differential
// trials is logged so drift shows up in test output.
const quantRelBound = 1e-6

func maxQuantRelError(tb testing.TB, exact, quant *hist.Multi) float64 {
	tb.Helper()
	ke, pe := exact.Cells()
	kq, pq := quant.Cells()
	if len(ke) != len(kq) {
		tb.Fatalf("support differs: %d cells exact, %d quantized", len(ke), len(kq))
	}
	var worst float64
	for i := range ke {
		if ke[i] != kq[i] {
			tb.Fatalf("cell %d key differs: %v vs %v", i, ke[i].Unpack(), kq[i].Unpack())
		}
		if pe[i] == 0 {
			if pq[i] != 0 {
				tb.Fatalf("cell %d: exact 0, quantized %g", i, pq[i])
			}
			continue
		}
		if rel := math.Abs(pq[i]-pe[i]) / math.Abs(pe[i]); rel > worst {
			worst = rel
		}
	}
	return worst
}

// quantTrial runs one random multiply through both kernels and returns
// the measured worst relative error (or -1 when both kernels rejected
// the pair).
func quantTrial(tb testing.TB, rnd *rand.Rand) float64 {
	rankA := 1 + rnd.Intn(3)
	rankB := 1 + rnd.Intn(3)
	overlap := rnd.Intn(minInt(rankA, rankB) + 1)
	if overlap >= rankB {
		overlap = rankB - 1
	}
	fa := randomFactor(rnd, rankA)
	fb := randomFactor(rnd, rankB)

	posA := make([]int, rankA)
	for i := range posA {
		posA[i] = i
	}
	st0, err := initialState(fa, posA)
	if err != nil {
		tb.Fatal(err)
	}
	keep := make([]int, 0, overlap)
	posB := make([]int, rankB)
	for i := range posB {
		posB[i] = rankA - overlap + i
	}
	for q := rankA - overlap; q < rankA; q++ {
		keep = append(keep, q)
	}
	folded, err := st0.foldTo(keep, 16)
	if err != nil {
		tb.Fatal(err)
	}

	exact, errExact := folded.multiply(fb, posB, nil)
	quant, errQuant := folded.multiplyQuant(fb, posB, nil)
	if (errExact == nil) != (errQuant == nil) {
		tb.Fatalf("error mismatch: exact %v, quantized %v", errExact, errQuant)
	}
	if errExact != nil {
		return -1 // both kernels rejected (e.g. all mass conditioned away)
	}
	if !sameInts(exact.open, quant.open) {
		tb.Fatalf("open dims differ: %v vs %v", exact.open, quant.open)
	}
	return maxQuantRelError(tb, exact.m, quant.m)
}

// INVARIANT: the quantized kernel touches the exact kernel's support
// and stays within quantRelBound per cell.
func TestQuantizedKernelErrorBound(t *testing.T) {
	rnd := rand.New(rand.NewSource(314))
	var worst float64
	trials := 0
	for trials < 300 {
		if rel := quantTrial(t, rnd); rel >= 0 {
			trials++
			if rel > worst {
				worst = rel
			}
		}
	}
	t.Logf("measured max relative error over %d multiplies: %.3g (bound %.3g)", trials, worst, quantRelBound)
	if worst > quantRelBound {
		t.Fatalf("quantized kernel error %.3g exceeds bound %.3g", worst, quantRelBound)
	}
}

// End to end: a quantized CostDistribution stays within float32
// accumulation error of the exact answer. Quantized cell values feed
// downstream cut selection and compression, so the assertion is on
// the distribution (mean, CDF), not on bucket structure.
func TestCostDistributionQuantizedEndToEnd(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	query := graph.Path{0, 1, 2, 3, 4}
	// LB forces a multi-factor chain, so the quantized multiply actually
	// runs (a single-factor lucky case never multiplies).
	exact, err := h.CostDistribution(query, 8*3600+300, QueryOptions{Method: MethodLB})
	if err != nil {
		t.Fatal(err)
	}
	quant, err := h.CostDistribution(query, 8*3600+300, QueryOptions{Method: MethodLB, Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	em, qm := exact.Dist.Mean(), quant.Dist.Mean()
	if rel := math.Abs(qm-em) / em; rel > 1e-5 {
		t.Fatalf("quantized mean %v vs exact %v: relative error %.3g", qm, em, rel)
	}
	var worst float64
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x := exact.Dist.Quantile(p)
		if d := math.Abs(quant.Dist.CDF(x) - exact.Dist.CDF(x)); d > worst {
			worst = d
		}
	}
	t.Logf("max CDF deviation at quantiles: %.3g", worst)
	if worst > 1e-5 {
		t.Fatalf("quantized CDF deviates by %.3g", worst)
	}
}

// FuzzQuantizedKernel drives the same differential from fuzzed seeds —
// the CI fuzz job runs it alongside the existing targets, so corpus
// growth keeps probing support equality and the error bound.
func FuzzQuantizedKernel(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rnd := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			if rel := quantTrial(t, rnd); rel > quantRelBound {
				t.Fatalf("seed %d trial %d: relative error %.3g exceeds %.3g", seed, trial, rel, quantRelBound)
			}
		}
	})
}
