package core

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/hist"
)

// This file is the planner equivalence harness: on arbitrary random
// workloads, a batch answered through the BatchPlanner must be
// byte-identical to answering every query independently — across
// plain, memoized, synopsis-backed and combined configurations, for
// every method (including RD's fallback path), on cold and warm
// stores, with duplicate entries mixed in. Run under -race it also
// proves the trie scheduler publishes shared states safely.

func TestPlannerEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, data, params := randomWorkload(seed)
		h, err := Build(g, data, params)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		paths, departs := oracleQueries(g, seed)
		var queries []PlanQuery
		for _, m := range []Method{MethodOD, MethodHP, MethodLB, MethodRD} {
			for _, dep := range departs {
				for _, p := range paths {
					queries = append(queries, PlanQuery{
						Path: p, Depart: dep, Opt: QueryOptions{Method: m, Seed: seed},
					})
				}
			}
		}
		// Duplicates share one trie end node and must both answer.
		queries = append(queries, queries[0], queries[len(queries)/2])

		// Reference: every query evaluated independently, storeless.
		ref := make([]*hist.Histogram, len(queries))
		for i, q := range queries {
			res, err := h.CostDistribution(q.Path, q.Depart, q.Opt)
			if err != nil {
				t.Logf("seed %d query %d: independent: %v", seed, i, err)
				return false
			}
			ref[i] = res.Dist
		}

		var workload []WorkloadQuery
		for _, dep := range departs {
			for _, p := range paths {
				workload = append(workload, WorkloadQuery{Path: p, Depart: dep})
			}
		}
		syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 64, MinDepth: 2})
		if err != nil {
			t.Logf("seed %d: synopsis: %v", seed, err)
			return false
		}

		bp := NewBatchPlanner(h, 4)
		for _, cfg := range []struct {
			name string
			syn  *SynopsisStore
			memo *ConvMemo
		}{
			{"plain", nil, nil},
			{"memo", nil, NewConvMemo(1 << 10)},
			{"synopsis", syn, nil},
			{"both", syn, NewConvMemo(1 << 10)},
		} {
			for pass := 0; pass < 2; pass++ { // cold, then warm stores
				out, stats := bp.Distributions(context.Background(), cfg.syn, cfg.memo, queries)
				if len(out) != len(queries) {
					return false
				}
				for i := range out {
					if out[i].Err != nil {
						t.Logf("seed %d %s pass %d query %d: %v", seed, cfg.name, pass, i, out[i].Err)
						return false
					}
					if !identicalHist(ref[i], out[i].Res.Dist) {
						t.Logf("seed %d %s pass %d query %d: planned diverged from independent",
							seed, cfg.name, pass, i)
						return false
					}
				}
				// Every trie node is answered exactly once, by a probe or
				// by one chain step — never both, never twice.
				if stats.Convolutions+stats.ProbeHits != stats.Nodes {
					t.Logf("seed %d %s pass %d: Convolutions %d + ProbeHits %d != Nodes %d",
						seed, cfg.name, pass, stats.Convolutions, stats.ProbeHits, stats.Nodes)
					return false
				}
				if stats.Planned+stats.Fallback != stats.Queries {
					return false
				}
				// The batch is prefix-heavy by construction: sharing must
				// be found and steps must be saved.
				if stats.SharedNodes == 0 || stats.IndependentSteps <= stats.Nodes {
					t.Logf("seed %d %s: no sharing found: %+v", seed, cfg.name, stats)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// The planner must agree with the naive Equation 2 oracle too — not
// just with the optimized independent path it is built from.
func TestPlannerMatchesNaiveOracle(t *testing.T) {
	g, data, params := randomWorkload(17)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	paths, departs := oracleQueries(g, 17)
	var queries []PlanQuery
	for _, p := range paths {
		queries = append(queries, PlanQuery{Path: p, Depart: departs[0]})
	}
	out, _ := NewBatchPlanner(h, 4).Distributions(context.Background(), nil, nil, queries)
	for i, q := range queries {
		want, err := naiveDistribution(h, q.Path, q.Depart, q.Opt)
		if err != nil {
			t.Fatal(err)
		}
		if out[i].Err != nil {
			t.Fatal(out[i].Err)
		}
		if !identicalHist(want, out[i].Res.Dist) {
			t.Fatalf("query %d (%v): planned result diverged from the naive oracle", i, q.Path)
		}
	}
}
