package core

import (
	"context"
	"testing"

	"repro/internal/gps"
	"repro/internal/graph"
)

// plannerChain builds a hybrid graph over an nEdges-edge chain whose
// trajectories all traverse exactly the first covered edges, so every
// sub-path inside [0, covered) is answerable while any query touching
// edge covered or beyond fails at evaluation — the per-entry failure
// shape the planner must contain to the failing query's own subtree.
func plannerChain(t testing.TB, nEdges, covered int) *HybridGraph {
	t.Helper()
	b := graph.NewBuilder()
	var vs []graph.VertexID
	for i := 0; i <= nEdges; i++ {
		vs = append(vs, b.AddVertex(pointAt(i)))
	}
	for i := 0; i < nEdges; i++ {
		b.AddEdge(vs[i], vs[i+1], 300, 50, graph.ClassSecondary)
	}
	g := b.Freeze()
	params := DefaultParams()
	params.Beta = 8
	var trajs []*gps.Matched
	for i := 0; i < 120; i++ {
		path := make(graph.Path, covered)
		costs := make([]float64, covered)
		for j := range path {
			path[j] = graph.EdgeID(j)
			costs[j] = 22 + float64((i+j)%9)
		}
		trajs = append(trajs, &gps.Matched{
			ID: int64(i), Path: path, Depart: 8*3600 + float64(i%5)*200, EdgeCosts: costs,
		})
	}
	h, err := Build(g, gps.NewCollection(trajs, 0), params)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// chainPath returns the path over edges [lo, lo+n).
func chainPath(lo, n int) graph.Path {
	p := make(graph.Path, n)
	for i := range p {
		p[i] = graph.EdgeID(lo + i)
	}
	return p
}

// checkPlannedMatchesIndependent asserts every planned entry
// reproduces the independent evaluation bit for bit.
func checkPlannedMatchesIndependent(t *testing.T, h *HybridGraph, queries []PlanQuery, out []PlanResult) {
	t.Helper()
	for i, q := range queries {
		ref, err := h.CostDistribution(q.Path, q.Depart, q.Opt)
		if (err != nil) != (out[i].Err != nil) {
			t.Fatalf("query %d (%v): independent err = %v, planned err = %v", i, q.Path, err, out[i].Err)
		}
		if err != nil {
			continue
		}
		if !identicalHist(ref.Dist, out[i].Res.Dist) {
			t.Fatalf("query %d (%v): planned result diverged from independent evaluation", i, q.Path)
		}
	}
}

// A prefix-heavy batch builds the expected trie: refcounts show up as
// SharedNodes, and every shared sub-path is convolved exactly once —
// Convolutions equals the distinct node count, not the step sum.
func TestPlannerSharedPrefixConvolvedOnce(t *testing.T) {
	h := plannerChain(t, 8, 8)
	depart := 8*3600 + 100.0
	queries := []PlanQuery{
		{Path: chainPath(0, 2), Depart: depart},
		{Path: chainPath(0, 3), Depart: depart},
		{Path: chainPath(0, 4), Depart: depart},
		{Path: chainPath(0, 4), Depart: depart}, // duplicate: same end node
	}
	bp := NewBatchPlanner(h, 4)
	out, stats := bp.Distributions(context.Background(), nil, nil, queries)
	checkPlannedMatchesIndependent(t, h, queries, out)

	// Trie: e0, e0-1, e0-1-2, e0-1-2-3. Every node is traversed by ≥ 2
	// queries, and independent evaluation would run 2+3+4+4 steps.
	if stats.Nodes != 4 {
		t.Fatalf("Nodes = %d, want 4", stats.Nodes)
	}
	if stats.SharedNodes != 4 {
		t.Fatalf("SharedNodes = %d, want 4 (refcounts: 4,4,3,2)", stats.SharedNodes)
	}
	if stats.Convolutions != 4 {
		t.Fatalf("Convolutions = %d, want 4 — a shared sub-path was convolved more than once", stats.Convolutions)
	}
	if stats.ProbeHits != 0 {
		t.Fatalf("ProbeHits = %d, want 0 with no stores", stats.ProbeHits)
	}
	if stats.IndependentSteps != 13 {
		t.Fatalf("IndependentSteps = %d, want 13", stats.IndependentSteps)
	}
	if got := stats.SavedSteps(); got != 9 {
		t.Fatalf("SavedSteps = %d, want 9", got)
	}
	if stats.Queries != 4 || stats.Planned != 4 || stats.Fallback != 0 {
		t.Fatalf("Queries/Planned/Fallback = %d/%d/%d, want 4/4/0",
			stats.Queries, stats.Planned, stats.Fallback)
	}
}

// A single-query batch degrades to exactly today's path: one chain
// step per edge, nothing shared, nothing saved.
func TestPlannerSingleQueryDegrades(t *testing.T) {
	h := plannerChain(t, 8, 8)
	queries := []PlanQuery{{Path: chainPath(0, 5), Depart: 8 * 3600}}
	bp := NewBatchPlanner(h, 4)
	out, stats := bp.Distributions(context.Background(), nil, nil, queries)
	checkPlannedMatchesIndependent(t, h, queries, out)
	if stats.Nodes != 5 || stats.Convolutions != 5 || stats.IndependentSteps != 5 {
		t.Fatalf("Nodes/Convolutions/IndependentSteps = %d/%d/%d, want 5/5/5",
			stats.Nodes, stats.Convolutions, stats.IndependentSteps)
	}
	if stats.SharedNodes != 0 || stats.SavedSteps() != 0 {
		t.Fatalf("SharedNodes = %d, SavedSteps = %d, want 0/0",
			stats.SharedNodes, stats.SavedSteps())
	}
}

// A zero-overlap batch must not pay any planning overhead in chain
// steps: convolutions equal exactly what independent evaluation runs.
func TestPlannerZeroOverlapDegrades(t *testing.T) {
	h := plannerChain(t, 8, 8)
	depart := 8*3600 + 60.0
	queries := []PlanQuery{
		{Path: chainPath(0, 3), Depart: depart},
		{Path: chainPath(4, 3), Depart: depart},
	}
	bp := NewBatchPlanner(h, 4)
	out, stats := bp.Distributions(context.Background(), nil, nil, queries)
	checkPlannedMatchesIndependent(t, h, queries, out)
	if stats.Nodes != 6 || stats.Convolutions != 6 || stats.IndependentSteps != 6 {
		t.Fatalf("Nodes/Convolutions/IndependentSteps = %d/%d/%d, want 6/6/6",
			stats.Nodes, stats.Convolutions, stats.IndependentSteps)
	}
	if stats.SharedNodes != 0 || stats.SavedSteps() != 0 {
		t.Fatalf("SharedNodes = %d, SavedSteps = %d, want 0/0",
			stats.SharedNodes, stats.SavedSteps())
	}
}

// Different departures and methods must never share trie nodes: the
// exact-identity rule the memo keys enforce.
func TestPlannerGroupsByDepartureAndMethod(t *testing.T) {
	h := plannerChain(t, 8, 8)
	queries := []PlanQuery{
		{Path: chainPath(0, 3), Depart: 8 * 3600},
		{Path: chainPath(0, 3), Depart: 8*3600 + 1}, // own group: exact departure differs
		{Path: chainPath(0, 3), Depart: 8 * 3600, Opt: QueryOptions{Method: MethodLB}},
	}
	bp := NewBatchPlanner(h, 2)
	out, stats := bp.Distributions(context.Background(), nil, nil, queries)
	checkPlannedMatchesIndependent(t, h, queries, out)
	if stats.Nodes != 9 || stats.SharedNodes != 0 || stats.Convolutions != 9 {
		t.Fatalf("Nodes/SharedNodes/Convolutions = %d/%d/%d, want 9/0/9",
			stats.Nodes, stats.SharedNodes, stats.Convolutions)
	}
}

// The scheduler evaluates parents strictly before children whatever
// the worker count: a serial and a wide pool must agree bit for bit
// on a batch deep and branchy enough to interleave levels. (A
// dependency-order violation would read a nil parent state and panic;
// -race additionally checks the published states.)
func TestPlannerDependencyOrderAcrossWorkers(t *testing.T) {
	h := plannerChain(t, 10, 10)
	depart := 8*3600 + 30.0
	var queries []PlanQuery
	for n := 1; n <= 10; n++ {
		queries = append(queries, PlanQuery{Path: chainPath(0, n), Depart: depart})
	}
	for _, lo := range []int{2, 4, 6} {
		queries = append(queries, PlanQuery{Path: chainPath(lo, 4), Depart: depart})
	}
	serial, sstats := NewBatchPlanner(h, 1).Distributions(context.Background(), nil, nil, queries)
	wide, wstats := NewBatchPlanner(h, 8).Distributions(context.Background(), nil, nil, queries)
	for i := range queries {
		if serial[i].Err != nil || wide[i].Err != nil {
			t.Fatalf("query %d: serial err %v, wide err %v", i, serial[i].Err, wide[i].Err)
		}
		if !identicalHist(serial[i].Res.Dist, wide[i].Res.Dist) {
			t.Fatalf("query %d: worker pools disagree", i)
		}
	}
	if sstats != wstats {
		t.Fatalf("stats differ by worker count: serial %+v, wide %+v", sstats, wstats)
	}
	if sstats.Convolutions != sstats.Nodes {
		t.Fatalf("Convolutions = %d, Nodes = %d: a node was convolved twice or skipped",
			sstats.Convolutions, sstats.Nodes)
	}
	checkPlannedMatchesIndependent(t, h, queries, serial)
}

// A query whose evaluation fails must fail alone: the sub-paths it
// shares with valid queries evaluate normally, and only the failing
// node's own subtree inherits the error.
func TestPlannerErrorDoesNotPoisonSharedNodes(t *testing.T) {
	h := plannerChain(t, 8, 8)
	depart := 8*3600 + 100.0
	// Edge 0 does not follow edge 5, so this query fails its last
	// chain step — after sharing its first six trie nodes with the
	// valid queries (the /v1/batch shape: one unanswerable entry whose
	// prefixes belong to answerable ones).
	bad := append(chainPath(0, 6), graph.EdgeID(0))
	if _, err := h.CostDistribution(bad, depart, QueryOptions{}); err == nil {
		t.Fatal("fixture broke: the invalid-path query evaluates cleanly independently")
	}
	queries := []PlanQuery{
		{Path: bad, Depart: depart},             // fails at its seventh node, inserted first
		{Path: chainPath(0, 6), Depart: depart}, // ends at the failing node's parent
		{Path: chainPath(0, 3), Depart: depart}, // shares the root prefix
		{},                                      // empty path: per-entry error before the trie
	}
	bp := NewBatchPlanner(h, 4)
	out, stats := bp.Distributions(context.Background(), nil, nil, queries)
	if out[0].Err == nil {
		t.Fatal("invalid-path query succeeded under the planner")
	}
	if out[3].Err == nil {
		t.Fatal("empty path succeeded under the planner")
	}
	for _, i := range []int{1, 2} {
		if out[i].Err != nil {
			t.Fatalf("valid query %d poisoned by its neighbour's failure: %v", i, out[i].Err)
		}
	}
	checkPlannedMatchesIndependent(t, h, queries[:3], out[:3])
	// Six shared nodes convolved once; the seventh (failing) node ran
	// its chain step attempt but recorded no convolution.
	if stats.Nodes != 7 || stats.Convolutions != 6 {
		t.Fatalf("Nodes/Convolutions = %d/%d, want 7/6", stats.Nodes, stats.Convolutions)
	}
	if stats.Queries != 4 || stats.Planned != 3 {
		t.Fatalf("Queries/Planned = %d/%d, want 4/3 (the empty path never enters the trie)",
			stats.Queries, stats.Planned)
	}
}

// Methods without an incremental evaluator fall back to independent
// evaluation inside the same call, with identical results.
func TestPlannerFallbackForNonIncrementalMethods(t *testing.T) {
	h := plannerChain(t, 8, 8)
	depart := 8*3600 + 100.0
	queries := []PlanQuery{
		{Path: chainPath(0, 4), Depart: depart},
		{Path: chainPath(0, 4), Depart: depart, Opt: QueryOptions{Method: MethodRD, Seed: 42}},
		{Path: chainPath(0, 3), Depart: depart, Opt: QueryOptions{Method: MethodRD, Seed: 7}},
	}
	bp := NewBatchPlanner(h, 4)
	out, stats := bp.Distributions(context.Background(), nil, nil, queries)
	checkPlannedMatchesIndependent(t, h, queries, out)
	if stats.Fallback != 2 || stats.Planned != 1 {
		t.Fatalf("Fallback/Planned = %d/%d, want 2/1", stats.Fallback, stats.Planned)
	}
	if stats.IndependentSteps != 4 {
		t.Fatalf("IndependentSteps = %d, want 4 (fallback queries are not planned steps)",
			stats.IndependentSteps)
	}
}

// A cancelled context surfaces per-entry, for trie and fallback
// entries alike, without evaluating anything.
func TestPlannerContextCancellation(t *testing.T) {
	h := plannerChain(t, 8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := []PlanQuery{
		{Path: chainPath(0, 4), Depart: 8 * 3600},
		{Path: chainPath(0, 2), Depart: 8 * 3600, Opt: QueryOptions{Method: MethodRD}},
	}
	out, stats := NewBatchPlanner(h, 2).Distributions(ctx, nil, nil, queries)
	for i := range out {
		if out[i].Err == nil {
			t.Fatalf("entry %d evaluated under a cancelled context", i)
		}
	}
	if stats.Convolutions != 0 {
		t.Fatalf("Convolutions = %d after cancellation, want 0", stats.Convolutions)
	}
}

// The memo is a first-class probe target: a second planned batch over
// the same queries answers every node from the memo with zero new
// convolutions, and a warm synopsis does the same from boot.
func TestPlannerProbesMemoAndSynopsis(t *testing.T) {
	h := plannerChain(t, 8, 8)
	depart := 8*3600 + 100.0
	var queries []PlanQuery
	for n := 2; n <= 6; n++ {
		queries = append(queries, PlanQuery{Path: chainPath(0, n), Depart: depart})
	}
	bp := NewBatchPlanner(h, 4)

	memo := NewConvMemo(256)
	cold, cstats := bp.Distributions(context.Background(), nil, memo, queries)
	warm, wstats := bp.Distributions(context.Background(), nil, memo, queries)
	if cstats.Convolutions != cstats.Nodes || cstats.ProbeHits != 0 {
		t.Fatalf("cold pass: Convolutions/ProbeHits = %d/%d, want %d/0",
			cstats.Convolutions, cstats.ProbeHits, cstats.Nodes)
	}
	if wstats.Convolutions != 0 || wstats.ProbeHits != wstats.Nodes {
		t.Fatalf("warm pass: Convolutions/ProbeHits = %d/%d, want 0/%d",
			wstats.Convolutions, wstats.ProbeHits, wstats.Nodes)
	}
	for i := range queries {
		if cold[i].Err != nil || warm[i].Err != nil {
			t.Fatalf("query %d errored: cold %v, warm %v", i, cold[i].Err, warm[i].Err)
		}
		if !identicalHist(cold[i].Res.Dist, warm[i].Res.Dist) {
			t.Fatalf("query %d: memo-served plan diverged", i)
		}
	}

	var workload []WorkloadQuery
	for _, q := range queries {
		workload = append(workload, WorkloadQuery{Path: q.Path, Depart: q.Depart})
	}
	syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	out, sstats := bp.Distributions(context.Background(), syn, nil, queries)
	if sstats.ProbeHits == 0 {
		t.Fatalf("synopsis never hit: %+v", sstats)
	}
	for i := range queries {
		if out[i].Err != nil {
			t.Fatal(out[i].Err)
		}
		if !identicalHist(cold[i].Res.Dist, out[i].Res.Dist) {
			t.Fatalf("query %d: synopsis-served plan diverged", i)
		}
	}
}
