package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/hist"
)

// asMulti lifts a variable's distribution to a Multi so rank-1 and
// rank-k factors share one representation in the evaluators. Histogram
// support gaps become zero-mass cells. The conversion is cached on the
// variable (it is hit once per query otherwise).
func asMulti(v *Variable) (*hist.Multi, error) {
	if v.Joint != nil {
		return v.Joint, nil
	}
	v.multiOnce.Do(func() {
		v.multi, v.multiErr = histToMulti(v.Hist)
	})
	return v.multi, v.multiErr
}

func histToMulti(hg *hist.Histogram) (*hist.Multi, error) {
	bs := hg.Buckets()
	cuts := make([]float64, 0, 2*len(bs))
	for _, b := range bs {
		cuts = append(cuts, b.Lo, b.Hi)
	}
	sort.Float64s(cuts)
	bounds := cuts[:1]
	for _, c := range cuts[1:] {
		if c != bounds[len(bounds)-1] {
			bounds = append(bounds, c)
		}
	}
	m, err := hist.NewMulti([][]float64{bounds})
	if err != nil {
		return nil, err
	}
	for _, b := range bs {
		i := sort.SearchFloat64s(bounds, b.Lo)
		m.SetCell([]int{i}, b.Pr)
	}
	if err := m.Normalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// chainState is the running joint during Equation 2 evaluation: a
// Multi whose dimension 0 is the accumulated cost of all already
// folded (finished) edges, and whose remaining dimensions are the
// still-open edges, identified by their positions in the query path.
type chainState struct {
	m    *hist.Multi
	open []int // query positions of dims 1..; ascending
}

// EvalStats instruments the Figure 17 breakdown: time is measured by
// the caller; the evaluator reports structural counts.
type EvalStats struct {
	Factors       int           // number of decomposition paths applied (JC work)
	CellsTouched  int           // hyper-bucket operations during joint computation
	ResultBuckets int           // buckets of the final marginal (MC output)
	MCDur         time.Duration // time spent deriving the marginal (Fig. 17's MC)
}

// Evaluate computes the estimated cost distribution of the query path
// from a decomposition, per Equation 2 followed by the Section 4.2
// marginalization: factors are applied left to right; before each new
// factor the state keeps open exactly the overlap edges (conditioning
// set), everything else being folded into the accumulated-cost
// dimension.
func (h *HybridGraph) Evaluate(de *Decomposition, query graph.Path) (*hist.Histogram, EvalStats, error) {
	var st EvalStats
	if err := de.Validate(query); err != nil {
		return nil, st, err
	}
	st.Factors = len(de.Vars)

	// Single factor covering the whole query: its sum distribution is
	// the answer (the "lucky" case of Section 4.1).
	if len(de.Vars) == 1 {
		v := de.Vars[0]
		var out *hist.Histogram
		mc := time.Now()
		if v.Hist != nil {
			out = v.Hist
		} else {
			var err error
			out, err = v.Joint.SumHistogram(h.Params.MaxResultBuckets)
			if err != nil {
				return nil, st, err
			}
		}
		st.MCDur = time.Since(mc)
		st.ResultBuckets = out.NumBuckets()
		return out, st, nil
	}

	state, err := h.runChain(de, nil, 0, &st)
	if err != nil {
		return nil, st, err
	}
	mc := time.Now()
	out, err := state.m.SumHistogram(h.Params.MaxResultBuckets)
	if err != nil {
		return nil, st, err
	}
	st.MCDur = time.Since(mc)
	st.ResultBuckets = out.NumBuckets()
	return out, st, nil
}

// runChain applies decomposition factors from index `from` onward,
// starting from `state` (nil to start fresh). It returns the final
// folded state; intermediate states per factor are reported through
// onStep when non-nil (used by the incremental routing estimator).
func (h *HybridGraph) runChain(de *Decomposition, state *chainState, from int, st *EvalStats) (*chainState, error) {
	return h.runChainSteps(de, state, from, st, nil)
}

func (h *HybridGraph) runChainSteps(de *Decomposition, state *chainState, from int, st *EvalStats, onStep func(i int, s *chainState)) (*chainState, error) {
	for i := from; i < len(de.Vars); i++ {
		v := de.Vars[i]
		fm, err := asMulti(v)
		if err != nil {
			return nil, err
		}
		positions := factorPositions(de, i)
		if state == nil {
			state, err = initialState(fm, positions)
		} else {
			state, err = state.multiply(fm, positions, st)
		}
		if err != nil {
			return nil, err
		}
		if onStep != nil {
			onStep(i, state)
		}
		keep := overlapWithNext(de, i)
		state, err = state.foldTo(keep, h.Params.MaxAccBuckets)
		if err != nil {
			return nil, err
		}
	}
	return state, nil
}

// factorPositions returns the query positions covered by factor i.
func factorPositions(de *Decomposition, i int) []int {
	positions := make([]int, de.Vars[i].Rank())
	for j := range positions {
		positions[j] = de.Pos[i] + j
	}
	return positions
}

// overlapWithNext returns the positions of factor i that the next
// factor also covers (empty for the last factor).
func overlapWithNext(de *Decomposition, i int) []int {
	if i+1 >= len(de.Vars) {
		return nil
	}
	var keep []int
	end := de.Pos[i] + de.Vars[i].Rank()
	for q := de.Pos[i+1]; q < end; q++ {
		keep = append(keep, q)
	}
	return keep
}

// initialState wraps a factor as a chain state with a zero-width
// accumulator and all factor dims open.
func initialState(fm *hist.Multi, positions []int) (*chainState, error) {
	bounds := make([][]float64, 1+fm.Dims())
	bounds[0] = []float64{0, 1e-9}
	for d := 0; d < fm.Dims(); d++ {
		bounds[1+d] = fm.Bounds(d)
	}
	m, err := hist.NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	idxBuf := make([]int, 1+fm.Dims())
	fm.ForEach(func(k hist.CellKey, pr float64) {
		idxBuf[0] = 0
		for d := 0; d < fm.Dims(); d++ {
			idxBuf[1+d] = int(k[d])
		}
		m.SetCell(idxBuf, pr)
	})
	return &chainState{m: m, open: positions}, nil
}

// multiply advances the chain by one factor: the state's open dims
// must be a prefix of the factor's positions (its overlap); the result
// has all factor dims open. With an empty overlap this is the
// independent outer product.
//
// multiply never mutates the receiver: chain states are shared — a DFS
// parent is extended along many siblings, and the convolution memo
// hands one state to concurrent queries — so the remapped copies below
// must stay local. (A receiver write here would also make results
// depend on sibling evaluation order, breaking the memo-on/memo-off
// byte-identity guarantee.)
func (s *chainState) multiply(fm *hist.Multi, positions []int, st *EvalStats) (*chainState, error) {
	overlap := s.open
	ovIdxF := indexOf(positions, overlap)
	if len(ovIdxF) != len(overlap) {
		return nil, fmt.Errorf("core: state open dims %v not contained in factor positions %v", overlap, positions)
	}

	// Align overlap dimensions on a shared grid. The two sides may
	// disagree about the cost support (they come from different
	// trajectory sets), so a union remap — not a refinement — is
	// required for cell indices to be comparable.
	sm := s.m
	fmAligned := fm
	var err error
	for i := range overlap {
		sd := 1 + i // state dim (open dims are ordered and contiguous)
		fd := ovIdxF[i]
		union := hist.UnionBounds(sm.Bounds(sd), fmAligned.Bounds(fd))
		sm, err = sm.RemapDim(sd, union)
		if err != nil {
			return nil, err
		}
		fmAligned, err = fmAligned.RemapDim(fd, union)
		if err != nil {
			return nil, err
		}
	}
	var marg *hist.Multi
	if len(overlap) > 0 {
		marg, err = fmAligned.MarginalOnto(ovIdxF)
		if err != nil {
			return nil, err
		}
	}

	// Group factor cells by overlap index tuple (a single group when
	// the overlap is empty).
	type fcell struct {
		key hist.CellKey
		pr  float64
	}
	groups := make(map[hist.CellKey][]fcell)
	fmAligned.ForEach(func(k hist.CellKey, pr float64) {
		var gk hist.CellKey
		for i, fd := range ovIdxF {
			gk[i] = k[fd]
		}
		groups[gk] = append(groups[gk], fcell{key: k, pr: pr})
	})

	// Result dims: acc + all factor dims (in factor order).
	bounds := make([][]float64, 1+fmAligned.Dims())
	bounds[0] = sm.Bounds(0)
	for d := 0; d < fmAligned.Dims(); d++ {
		bounds[1+d] = fmAligned.Bounds(d)
	}
	res, err := hist.NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	idxBuf := make([]int, 1+fmAligned.Dims())
	mi := make([]int, len(overlap))
	sm.ForEach(func(sk hist.CellKey, spr float64) {
		var gk hist.CellKey
		for i := range overlap {
			gk[i] = sk[1+i]
		}
		cells := groups[gk]
		if len(cells) == 0 {
			// The factor assigns zero probability to this overlap
			// region; the state mass there is dropped (renormalized
			// later), mirroring conditioning on a measure-zero event.
			return
		}
		div := 1.0
		if marg != nil {
			for i := range overlap {
				mi[i] = int(gk[i])
			}
			div = marg.Cell(mi)
			if div <= 0 {
				return
			}
		}
		for _, fc := range cells {
			idxBuf[0] = int(sk[0])
			for d := 0; d < fmAligned.Dims(); d++ {
				idxBuf[1+d] = int(fc.key[d])
			}
			if st != nil {
				st.CellsTouched++
			}
			res.SetCell(idxBuf, res.Cell(idxBuf)+spr*fc.pr/div)
		}
	})
	if err := res.Normalize(); err != nil {
		return nil, err
	}
	return &chainState{m: res, open: positions}, nil
}

// foldTo folds all open dims except keep into the accumulator and
// re-buckets the accumulator axis to at most maxAcc buckets.
func (s *chainState) foldTo(keep []int, maxAcc int) (*chainState, error) {
	// State-dim indexes of the kept positions (dim 0 is the acc).
	keepIdx := make([]int, 0, len(keep))
	for _, q := range keep {
		found := false
		for j, p := range s.open {
			if p == q {
				keepIdx = append(keepIdx, 1+j)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: keep position %d not open (open: %v)", q, s.open)
		}
	}
	folds, nKept, err := foldCells(s.m, keepIdx)
	if err != nil {
		return nil, err
	}
	m, err := assembleState(s.m, folds, nKept, keepIdx, maxAcc)
	if err != nil {
		return nil, err
	}
	return &chainState{m: m, open: keep}, nil
}

// indexOf maps query positions to dim indexes within a factor.
func indexOf(positions, subset []int) []int {
	var out []int
	for _, q := range subset {
		for j, p := range positions {
			if p == q {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// cellFold is one folded cell: the accumulated-cost interval, the
// kept-dim indexes (in keep order) and the probability.
type cellFold struct {
	lo, hi float64
	idx    []int
	pr     float64
}

// foldCells folds a Multi's non-kept dims into accumulated-cost
// intervals (an existing accumulator dim, when present, is simply not
// listed in keepIdx and its bucket bounds join the interval sums).
// Sorted iteration keeps the fold order — and therefore the float
// accumulation downstream in accCuts/distributeFolds — reproducible.
func foldCells(m *hist.Multi, keepIdx []int) ([]cellFold, int, error) {
	keepSet := make(map[int]bool, len(keepIdx))
	for _, d := range keepIdx {
		keepSet[d] = true
	}
	var folds []cellFold
	m.ForEachSorted(func(k hist.CellKey, pr float64) {
		var lo, hi float64
		for d := 0; d < m.Dims(); d++ {
			if keepSet[d] {
				continue
			}
			l, u := m.BucketRange(d, int(k[d]))
			lo += l
			hi += u
		}
		idx := make([]int, len(keepIdx))
		for i, d := range keepIdx {
			idx[i] = int(k[d])
		}
		folds = append(folds, cellFold{lo: lo, hi: hi, idx: idx, pr: pr})
	})
	if len(folds) == 0 {
		return nil, 0, fmt.Errorf("core: folding an empty joint")
	}
	return folds, len(keepIdx), nil
}

// assembleState builds the state Multi (dim 0 = acc, then kept dims of
// src in keepIdx order) from folded cells, re-bucketing the acc axis
// to at most maxAcc buckets.
func assembleState(src *hist.Multi, folds []cellFold, nKept int, keepIdx []int, maxAcc int) (*hist.Multi, error) {
	cuts, err := accCuts(folds, maxAcc)
	if err != nil {
		return nil, err
	}
	bounds := make([][]float64, 1+nKept)
	bounds[0] = cuts
	for i, d := range keepIdx {
		bounds[1+i] = src.Bounds(d)
	}
	out, err := hist.NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	distributeFolds(out, folds, cuts)
	if err := out.Normalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// accCuts derives the accumulated-cost bucket boundaries: the exact
// interval endpoints when few, otherwise the boundaries of the
// compressed exact marginal.
func accCuts(folds []cellFold, maxAcc int) ([]float64, error) {
	ivals := make([]hist.Bucket, len(folds))
	for i, f := range folds {
		hi := f.hi
		if !(hi > f.lo) {
			hi = f.lo + 1e-9 // degenerate (point) accumulations
		}
		ivals[i] = hist.Bucket{Lo: f.lo, Hi: hi, Pr: f.pr}
	}
	exact, err := hist.Rearranged(ivals)
	if err != nil {
		return nil, err
	}
	if maxAcc > 0 {
		exact = exact.Compress(maxAcc)
	}
	bs := exact.Buckets()
	cuts := make([]float64, 0, len(bs)+1)
	for _, b := range bs {
		cuts = append(cuts, b.Lo)
	}
	cuts = append(cuts, bs[len(bs)-1].Hi)
	return cuts, nil
}

// distributeFolds spreads each folded cell's mass across the acc slabs
// proportionally to overlap (uniform-within-interval, the Section 4.2
// rule).
func distributeFolds(out *hist.Multi, folds []cellFold, cuts []float64) {
	idxBuf := make([]int, out.Dims())
	for _, f := range folds {
		lo, hi := f.lo, f.hi
		if !(hi > lo) {
			hi = lo + 1e-9
		}
		w := hi - lo
		for s := 0; s+1 < len(cuts); s++ {
			ol := math.Min(cuts[s+1], hi) - math.Max(cuts[s], lo)
			if ol <= 0 {
				continue
			}
			idxBuf[0] = s
			copy(idxBuf[1:], f.idx)
			out.SetCell(idxBuf, out.Cell(idxBuf)+f.pr*ol/w)
		}
	}
}

// EvaluateDense materializes the full joint of Equation 2 on the
// common refinement grid and flattens it. Exponential in the query
// cardinality — a reference implementation used by tests and small
// queries to validate the chain evaluator.
func (h *HybridGraph) EvaluateDense(de *Decomposition, query graph.Path) (*hist.Histogram, error) {
	if err := de.Validate(query); err != nil {
		return nil, err
	}
	n := len(query)
	if n > 10 {
		return nil, fmt.Errorf("core: dense evaluation limited to 10 edges, got %d", n)
	}
	factorMs := make([]*hist.Multi, len(de.Vars))
	for i, v := range de.Vars {
		fm, err := asMulti(v)
		if err != nil {
			return nil, err
		}
		factorMs[i] = fm
	}
	// Remap every factor dimension onto the union grid of all factors
	// sharing the position, so cell indices agree across factors.
	for pos := 0; pos < n; pos++ {
		union := []float64(nil)
		for i, v := range de.Vars {
			d := pos - de.Pos[i]
			if d >= 0 && d < v.Rank() {
				union = hist.UnionBounds(union, factorMs[i].Bounds(d))
			}
		}
		for i, v := range de.Vars {
			d := pos - de.Pos[i]
			if d >= 0 && d < v.Rank() {
				var err error
				factorMs[i], err = factorMs[i].RemapDim(d, union)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	// Overlap marginals (denominators of Eq. 2).
	margs := make([]*hist.Multi, len(de.Vars)) // margs[i]: overlap of factor i with i−1
	for i := 1; i < len(de.Vars); i++ {
		prevEnd := de.Pos[i-1] + de.Vars[i-1].Rank() // exclusive
		var ovIdx []int
		for d := 0; d < de.Vars[i].Rank(); d++ {
			if de.Pos[i]+d < prevEnd {
				ovIdx = append(ovIdx, d)
			}
		}
		if len(ovIdx) > 0 {
			m, err := factorMs[i].MarginalOnto(ovIdx)
			if err != nil {
				return nil, err
			}
			margs[i] = m
		}
	}
	// Grid sizes per position (identical across factors after remap).
	gridBounds := make([][]float64, n)
	for pos := 0; pos < n; pos++ {
		for i, v := range de.Vars {
			d := pos - de.Pos[i]
			if d >= 0 && d < v.Rank() {
				gridBounds[pos] = factorMs[i].Bounds(d)
				break
			}
		}
	}
	// Enumerate the full grid.
	counts := make([]int, n)
	total := 1
	for pos := range counts {
		counts[pos] = len(gridBounds[pos]) - 1
		total *= counts[pos]
		if total > 2_000_000 {
			return nil, fmt.Errorf("core: dense grid too large")
		}
	}
	idx := make([]int, n)
	var ivals []hist.Bucket
	var advance func(int) bool
	advance = func(pos int) bool {
		idx[pos]++
		if idx[pos] < counts[pos] {
			return true
		}
		idx[pos] = 0
		if pos+1 < n {
			return advance(pos + 1)
		}
		return false
	}
	fIdx := make([]int, hist.MaxDims)
	for {
		pr := 1.0
		for i, v := range de.Vars {
			m := factorMs[i]
			nd := v.Rank()
			for d := 0; d < nd; d++ {
				fIdx[d] = idx[de.Pos[i]+d]
			}
			pr *= m.Cell(fIdx[:nd])
			if pr == 0 {
				break
			}
			if margs[i] != nil {
				nOv := margs[i].Dims()
				for d := 0; d < nOv; d++ {
					fIdx[d] = idx[de.Pos[i]+d]
				}
				den := margs[i].Cell(fIdx[:nOv])
				if den <= 0 {
					pr = 0
					break
				}
				pr /= den
			}
		}
		if pr > 0 {
			var lo, hi float64
			for pos := 0; pos < n; pos++ {
				lo += gridBounds[pos][idx[pos]]
				hi += gridBounds[pos][idx[pos]+1]
			}
			ivals = append(ivals, hist.Bucket{Lo: lo, Hi: hi, Pr: pr})
		}
		if !advance(0) {
			break
		}
	}
	if len(ivals) == 0 {
		return nil, fmt.Errorf("core: dense evaluation produced no mass")
	}
	return hist.Rearranged(ivals)
}
