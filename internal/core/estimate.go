package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/hist"
)

// asMulti lifts a variable's distribution to a Multi so rank-1 and
// rank-k factors share one representation in the evaluators. Histogram
// support gaps become zero-mass cells. The conversion is cached on the
// variable (it is hit once per query otherwise).
func asMulti(v *Variable) (*hist.Multi, error) {
	if v.Joint != nil {
		return v.Joint, nil
	}
	v.multiOnce.Do(func() {
		v.multi, v.multiErr = histToMulti(v.Hist)
	})
	return v.multi, v.multiErr
}

func histToMulti(hg *hist.Histogram) (*hist.Multi, error) {
	bs := hg.Buckets()
	cuts := make([]float64, 0, 2*len(bs))
	for _, b := range bs {
		cuts = append(cuts, b.Lo, b.Hi)
	}
	sort.Float64s(cuts)
	bounds := cuts[:1]
	for _, c := range cuts[1:] {
		if c != bounds[len(bounds)-1] {
			bounds = append(bounds, c)
		}
	}
	m, err := hist.NewMulti([][]float64{bounds})
	if err != nil {
		return nil, err
	}
	for _, b := range bs {
		i := sort.SearchFloat64s(bounds, b.Lo)
		m.SetCell([]int{i}, b.Pr)
	}
	if err := m.Normalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// chainState is the running joint during Equation 2 evaluation: a
// Multi whose dimension 0 is the accumulated cost of all already
// folded (finished) edges, and whose remaining dimensions are the
// still-open edges, identified by their positions in the query path.
type chainState struct {
	m    *hist.Multi
	open []int // query positions of dims 1..; ascending
}

// EvalStats instruments the Figure 17 breakdown: time is measured by
// the caller; the evaluator reports structural counts.
type EvalStats struct {
	Factors       int           // number of decomposition paths applied (JC work)
	CellsTouched  int           // hyper-bucket operations during joint computation
	ResultBuckets int           // buckets of the final marginal (MC output)
	MCDur         time.Duration // time spent deriving the marginal (Fig. 17's MC)

	// mcStart is the instant the chain finished and marginalization
	// began. evaluateMode records it and leaves MCDur unset; callers
	// finalize MCDur against their own end-of-evaluation clock read,
	// sparing the hot path one time.Now per query.
	mcStart time.Time
}

// evalScratch is the arena of one chain step: flat contiguous buffers
// for the merge-join emission (packed keys + probabilities), the
// pre-shifted factor keys, the factor group runs, the fold arena and
// the fold-distribution emission log. Pooled so steady-state
// evaluation reuses warm buffers instead of allocating per
// multiply/fold call; the inner loops stream through these arrays
// sequentially. Result histograms copy out of the scratch before it
// returns to the pool; nothing pooled escapes.
type evalScratch struct {
	keys    []hist.PackedKey
	probs   []float64
	fs      []hist.PackedKey // factor keys pre-shifted to state dims
	bounds  [][]float64
	runs    []factorRun
	folds   []cellFold
	foldIdx []int
	keepIdx []int
	ivals   []hist.Bucket
}

// boundsScratch returns the scratch's bounds slice resized to n with
// nil elements.
func (sc *evalScratch) boundsScratch(n int) [][]float64 {
	if cap(sc.bounds) < n {
		sc.bounds = make([][]float64, n)
	} else {
		sc.bounds = sc.bounds[:n]
	}
	return sc.bounds
}

// accSeedBounds is the zero-width accumulator axis every chain starts
// from; shared and immutable.
var accSeedBounds = []float64{0, 1e-9}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// factorRun is one overlap group of the aligned factor: the contiguous
// run of factor cells sharing the first nOv dimension indices (the
// conditioning tuple), plus the group's probability mass — the Eq. 2
// denominator, summed in storage order so it is bit-identical to the
// overlap marginal the map-based kernel derived.
type factorRun struct {
	start, end int
	div        float64
}

// Evaluate computes the estimated cost distribution of the query path
// from a decomposition, per Equation 2 followed by the Section 4.2
// marginalization: factors are applied left to right; before each new
// factor the state keeps open exactly the overlap edges (conditioning
// set), everything else being folded into the accumulated-cost
// dimension.
func (h *HybridGraph) Evaluate(de *Decomposition, query graph.Path) (*hist.Histogram, EvalStats, error) {
	out, st, err := h.evaluateMode(nil, de, query, false)
	st.finalizeMC()
	return out, st, err
}

// EvaluateQuantized is Evaluate with the float32 inner-product kernel
// (multiplyQuant) on every chain step. Structure and merge order are
// identical to the exact evaluator; per-cell probabilities round
// through single precision, trading a measured (tested) error bound
// for halved multiply bandwidth. Memo, synopsis and serialization
// paths never use it — they require the exact kernel's byte-identity.
func (h *HybridGraph) EvaluateQuantized(de *Decomposition, query graph.Path) (*hist.Histogram, EvalStats, error) {
	out, st, err := h.evaluateMode(nil, de, query, true)
	st.finalizeMC()
	return out, st, err
}

// finalizeMC stamps MCDur from the recorded marginalization start.
func (st *EvalStats) finalizeMC() {
	if !st.mcStart.IsZero() {
		st.MCDur = time.Since(st.mcStart)
	}
}

func (h *HybridGraph) evaluateMode(ctx context.Context, de *Decomposition, query graph.Path, quant bool) (*hist.Histogram, EvalStats, error) {
	var st EvalStats
	if err := de.Validate(query); err != nil {
		return nil, st, err
	}
	st.Factors = len(de.Vars)

	// Single factor covering the whole query: its sum distribution is
	// the answer (the "lucky" case of Section 4.1).
	if len(de.Vars) == 1 {
		v := de.Vars[0]
		var out *hist.Histogram
		st.mcStart = time.Now()
		if v.Hist != nil {
			out = v.Hist
		} else {
			var err error
			out, err = v.Joint.SumHistogram(h.Params.MaxResultBuckets)
			if err != nil {
				return nil, st, err
			}
		}
		st.ResultBuckets = out.NumBuckets()
		return out, st, nil
	}

	state, err := h.runChainSteps(ctx, de, nil, 0, &st, nil, quant)
	if err != nil {
		return nil, st, err
	}
	st.mcStart = time.Now()
	out, err := state.m.SumHistogram(h.Params.MaxResultBuckets)
	// The chain belonged to this evaluation alone (runChain recycled
	// every intermediate state); the final state dies here too.
	hist.PutMulti(state.m)
	if err != nil {
		return nil, st, err
	}
	st.ResultBuckets = out.NumBuckets()
	return out, st, nil
}

// runChain applies decomposition factors from index `from` onward,
// starting from `state` (nil to start fresh). It returns the final
// folded state; intermediate states per factor are reported through
// onStep when non-nil (used by the incremental routing estimator).
// A non-nil ctx bounds the chain: its deadline is checked before each
// factor multiply, so a long evaluation stops burning CPU within one
// factor of the caller's budget expiring.
func (h *HybridGraph) runChain(ctx context.Context, de *Decomposition, state *chainState, from int, st *EvalStats) (*chainState, error) {
	return h.runChainSteps(ctx, de, state, from, st, nil, false)
}

func (h *HybridGraph) runChainSteps(ctx context.Context, de *Decomposition, state *chainState, from int, st *EvalStats, onStep func(i int, s *chainState), quant bool) (*chainState, error) {
	// When the chain starts fresh and no observer keeps references to
	// intermediate states, every state this loop creates dies as soon
	// as the next one exists — recycle their histograms.
	recycle := state == nil && from == 0 && onStep == nil
	for i := from; i < len(de.Vars); i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				if recycle && state != nil {
					hist.PutMulti(state.m)
				}
				return nil, err
			}
		}
		v := de.Vars[i]
		fm, err := asMulti(v)
		if err != nil {
			return nil, err
		}
		positions := factorPositions(de, i)
		prev := state
		switch {
		case state == nil:
			state, err = initialState(fm, positions)
		case quant:
			state, err = state.multiplyQuant(fm, positions, st)
		default:
			state, err = state.multiply(fm, positions, st)
		}
		if err != nil {
			return nil, err
		}
		if recycle && prev != nil {
			hist.PutMulti(prev.m)
		}
		if onStep != nil {
			onStep(i, state)
		}
		keep := overlapWithNext(de, i)
		folded, err := state.foldTo(keep, h.Params.MaxAccBuckets)
		if err != nil {
			return nil, err
		}
		if recycle {
			hist.PutMulti(state.m)
		}
		state = folded
	}
	return state, nil
}

// factorPositions returns the query positions covered by factor i.
func factorPositions(de *Decomposition, i int) []int {
	positions := make([]int, de.Vars[i].Rank())
	for j := range positions {
		positions[j] = de.Pos[i] + j
	}
	return positions
}

// overlapWithNext returns the positions of factor i that the next
// factor also covers (empty for the last factor).
func overlapWithNext(de *Decomposition, i int) []int {
	if i+1 >= len(de.Vars) {
		return nil
	}
	var keep []int
	end := de.Pos[i] + de.Vars[i].Rank()
	for q := de.Pos[i+1]; q < end; q++ {
		keep = append(keep, q)
	}
	return keep
}

// initialState wraps a factor as a chain state with a zero-width
// accumulator and all factor dims open. The factor's sorted cells map
// to state cells by prepending the accumulator index 0, which keeps
// them sorted, so the state is built columnar in one pass.
func initialState(fm *hist.Multi, positions []int) (*chainState, error) {
	dims := fm.Dims()
	if 1+dims > hist.MaxDims {
		return nil, fmt.Errorf("hist: %d dimensions out of range [1,%d]", 1+dims, hist.MaxDims)
	}
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	bounds := sc.boundsScratch(1 + dims)
	bounds[0] = accSeedBounds
	for d := 0; d < dims; d++ {
		bounds[1+d] = fm.Bounds(d)
	}
	fKeys, fProbs := fm.Cells()
	keys := sc.keys[:0]
	probs := sc.probs[:0]
	for i, k := range fKeys {
		if fProbs[i] == 0 {
			continue
		}
		// Prepend the accumulator axis: dims shift up one, dim 0 = 0.
		// The shift is order-preserving, so the cells stay sorted.
		keys = append(keys, k.ShiftDimRight())
		probs = append(probs, fProbs[i])
	}
	sc.keys, sc.probs = keys, probs
	m, err := hist.NewMultiFromPackedCells(bounds, keys, probs)
	if err != nil {
		return nil, err
	}
	return &chainState{m: m, open: positions}, nil
}

// multiply advances the chain by one factor: the state's open dims
// must be a prefix of the factor's positions (its overlap); the result
// has all factor dims open. With an empty overlap this is the
// independent outer product.
//
// The kernel is a merge-join over the two sorted cell arrays: the
// aligned factor's cells group into contiguous runs by their overlap
// prefix (with each run's mass — the Eq. 2 denominator — summed in
// storage order), each state cell binary-searches its run, and the
// emitted product cells come out already in sorted order, so the
// result is assembled columnar with no group maps, no hashing and no
// per-cell closures. All float operations replicate the map-based
// kernel's sequence exactly, so results are bit-identical to it.
//
// multiply never mutates the receiver: chain states are shared — a DFS
// parent is extended along many siblings, and the convolution memo
// hands one state to concurrent queries — so the remapped views below
// must stay local. (A receiver write here would also make results
// depend on sibling evaluation order, breaking the memo-on/memo-off
// byte-identity guarantee.)
func (s *chainState) multiply(fm *hist.Multi, positions []int, st *EvalStats) (*chainState, error) {
	return s.multiplyKernel(fm, positions, st, false)
}

// multiplyQuant is multiply with the quantized float32 inner product:
// each emitted cell's probability is computed in single precision
// (float32 multiply + divide) and widened back. Everything structural
// — alignment, runs, merge order, zero-dropping — is identical to the
// exact kernel, so the only divergence is per-cell rounding; the
// measured error bound is asserted by TestQuantizedKernelErrorBound.
func (s *chainState) multiplyQuant(fm *hist.Multi, positions []int, st *EvalStats) (*chainState, error) {
	return s.multiplyKernel(fm, positions, st, true)
}

func (s *chainState) multiplyKernel(fm *hist.Multi, positions []int, st *EvalStats, quant bool) (*chainState, error) {
	overlap := s.open
	ovIdxF := indexOf(positions, overlap)
	if len(ovIdxF) != len(overlap) {
		return nil, fmt.Errorf("core: state open dims %v not contained in factor positions %v", overlap, positions)
	}
	for i, fd := range ovIdxF {
		if fd != i {
			// Chain evaluation always overlaps on a leading prefix of
			// the factor (overlaps are path prefixes); keep the
			// reference kernel for the general case.
			return s.multiplyRef(fm, positions, st)
		}
	}
	if 1+fm.Dims() > hist.MaxDims {
		return nil, fmt.Errorf("hist: %d dimensions out of range [1,%d]", 1+fm.Dims(), hist.MaxDims)
	}

	// Align overlap dimensions on a shared grid. The two sides may
	// disagree about the cost support (they come from different
	// trajectory sets), so a union remap — not a refinement — is
	// required for cell indices to be comparable. The union and the
	// translation tables are derived once per dimension; when the
	// supports already agree (the common case) the remap is the
	// identity and the histograms pass through untouched.
	sm := s.m
	fmAligned := fm
	var err error
	for i := range overlap {
		sd, fd := 1+i, i
		union := hist.UnionBounds(sm.Bounds(sd), fmAligned.Bounds(fd))
		prevS, prevF := sm, fmAligned
		sm, err = sm.RemapDim(sd, union)
		if err != nil {
			return nil, err
		}
		if prevS != s.m && prevS != sm {
			hist.PutMulti(prevS) // intermediate alignment view, now dead
		}
		fmAligned, err = fmAligned.RemapDim(fd, union)
		if err != nil {
			return nil, err
		}
		if prevF != fm && prevF != fmAligned {
			hist.PutMulti(prevF)
		}
	}

	fKeys, fProbs := fmAligned.Cells()
	sKeys, sProbs := sm.Cells()
	nOv := len(overlap)
	dims := fmAligned.Dims()

	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)

	// Group the aligned factor's cells into contiguous overlap runs.
	runs := sc.runs[:0]
	for i := 0; i < len(fKeys); {
		j := i + 1
		for j < len(fKeys) && fKeys[i].PrefixEq(fKeys[j], nOv) {
			j++
		}
		var div float64
		if nOv == 0 {
			// No conditioning: the independent outer product divides by
			// nothing (the run covers every factor cell).
			div = 1
		} else {
			for c := i; c < j; c++ {
				div += fProbs[c]
			}
		}
		runs = append(runs, factorRun{start: i, end: j, div: div})
		i = j
	}
	sc.runs = runs

	// Pre-shift every factor key to its state position (dims move up
	// one; dim 0 is free for the accumulator index) once, so the inner
	// emission loop is a single masked word-merge per cell instead of a
	// per-dimension scatter.
	fs := sc.fs
	if cap(fs) < len(fKeys) {
		fs = make([]hist.PackedKey, len(fKeys))
	} else {
		fs = fs[:len(fKeys)]
	}
	for i, k := range fKeys {
		fs[i] = k.ShiftDimRight()
	}
	sc.fs = fs

	// Merge-join: state cells are sorted by (acc, overlap...), runs by
	// overlap, and each emitted product key (acc, factor dims...) is
	// strictly larger than its predecessor — the result arrays are born
	// sorted.
	resKeys := sc.keys[:0]
	resProbs := sc.probs[:0]
	for ci, sk := range sKeys {
		spr := sProbs[ci]
		run, ok := findRun(fKeys, runs, sk.ShiftDimLeft(), nOv)
		if !ok {
			// The factor assigns zero probability to this overlap
			// region; the state mass there is dropped (renormalized
			// later), mirroring conditioning on a measure-zero event.
			continue
		}
		if nOv > 0 && run.div <= 0 {
			continue
		}
		if st != nil {
			st.CellsTouched += run.end - run.start
		}
		if quant {
			spr32, div32 := float32(spr), float32(run.div)
			for c := run.start; c < run.end; c++ {
				v := float64(spr32 * float32(fProbs[c]) / div32)
				if v == 0 {
					continue
				}
				resKeys = append(resKeys, fs[c].WithDim0From(sk))
				resProbs = append(resProbs, v)
			}
		} else {
			for c := run.start; c < run.end; c++ {
				v := spr * fProbs[c] / run.div
				if v == 0 {
					// The map-based kernel's SetCell dropped exact zeros.
					continue
				}
				resKeys = append(resKeys, fs[c].WithDim0From(sk))
				resProbs = append(resProbs, v)
			}
		}
	}
	sc.keys, sc.probs = resKeys, resProbs

	// Result dims: acc + all factor dims (in factor order).
	bounds := sc.boundsScratch(1 + dims)
	bounds[0] = sm.Bounds(0)
	for d := 0; d < dims; d++ {
		bounds[1+d] = fmAligned.Bounds(d)
	}
	res, err := hist.NewMultiFromPackedCells(bounds, resKeys, resProbs)
	// The remapped alignment views die here; their buffers recycle.
	// (res copied the cells and shares only their per-dim boundary
	// slices, which PutMulti leaves alone.)
	if sm != s.m {
		hist.PutMulti(sm)
	}
	if fmAligned != fm {
		hist.PutMulti(fmAligned)
	}
	if err != nil {
		return nil, err
	}
	if err := res.Normalize(); err != nil {
		return nil, err
	}
	return &chainState{m: res, open: positions}, nil
}

// findRun binary-searches the factor run whose overlap prefix matches
// the state cell's open dims. skShift is the state key shifted down one
// dimension (the accumulator dropped), so its leading nOv dims line up
// with the factor keys' and the comparisons are masked word compares.
func findRun(fKeys []hist.PackedKey, runs []factorRun, skShift hist.PackedKey, nOv int) (factorRun, bool) {
	if len(runs) == 0 {
		return factorRun{}, false
	}
	if nOv == 0 {
		return runs[0], true
	}
	lo, hi := 0, len(runs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if fKeys[runs[mid].start].PrefixLess(skShift, nOv) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(runs) && fKeys[runs[lo].start].PrefixEq(skShift, nOv) {
		return runs[lo], true
	}
	return factorRun{}, false
}

// multiplyRef is the pre-columnar reference kernel: group maps and
// per-cell dispatch over the same float sequence. It survives as the
// fallback for non-prefix overlaps (unreachable from chain evaluation)
// and as the differential oracle the kernel tests compare against.
func (s *chainState) multiplyRef(fm *hist.Multi, positions []int, st *EvalStats) (*chainState, error) {
	overlap := s.open
	ovIdxF := indexOf(positions, overlap)
	if len(ovIdxF) != len(overlap) {
		return nil, fmt.Errorf("core: state open dims %v not contained in factor positions %v", overlap, positions)
	}

	sm := s.m
	fmAligned := fm
	var err error
	for i := range overlap {
		sd := 1 + i // state dim (open dims are ordered and contiguous)
		fd := ovIdxF[i]
		union := hist.UnionBounds(sm.Bounds(sd), fmAligned.Bounds(fd))
		sm, err = sm.RemapDim(sd, union)
		if err != nil {
			return nil, err
		}
		fmAligned, err = fmAligned.RemapDim(fd, union)
		if err != nil {
			return nil, err
		}
	}
	var marg *hist.Multi
	if len(overlap) > 0 {
		marg, err = fmAligned.MarginalOnto(ovIdxF)
		if err != nil {
			return nil, err
		}
	}

	// Group factor cells by overlap index tuple (a single group when
	// the overlap is empty).
	type fcell struct {
		key hist.CellKey
		pr  float64
	}
	groups := make(map[hist.CellKey][]fcell)
	fmAligned.ForEach(func(k hist.CellKey, pr float64) {
		var gk hist.CellKey
		for i, fd := range ovIdxF {
			gk[i] = k[fd]
		}
		groups[gk] = append(groups[gk], fcell{key: k, pr: pr})
	})

	// Result dims: acc + all factor dims (in factor order).
	bounds := make([][]float64, 1+fmAligned.Dims())
	bounds[0] = sm.Bounds(0)
	for d := 0; d < fmAligned.Dims(); d++ {
		bounds[1+d] = fmAligned.Bounds(d)
	}
	res, err := hist.NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	idxBuf := make([]int, 1+fmAligned.Dims())
	mi := make([]int, len(overlap))
	sm.ForEach(func(sk hist.CellKey, spr float64) {
		var gk hist.CellKey
		for i := range overlap {
			gk[i] = sk[1+i]
		}
		cells := groups[gk]
		if len(cells) == 0 {
			return
		}
		div := 1.0
		if marg != nil {
			for i := range overlap {
				mi[i] = int(gk[i])
			}
			div = marg.Cell(mi)
			if div <= 0 {
				return
			}
		}
		for _, fc := range cells {
			idxBuf[0] = int(sk[0])
			for d := 0; d < fmAligned.Dims(); d++ {
				idxBuf[1+d] = int(fc.key[d])
			}
			if st != nil {
				st.CellsTouched++
			}
			res.SetCell(idxBuf, res.Cell(idxBuf)+spr*fc.pr/div)
		}
	})
	if err := res.Normalize(); err != nil {
		return nil, err
	}
	return &chainState{m: res, open: positions}, nil
}

// foldTo folds all open dims except keep into the accumulator and
// re-buckets the accumulator axis to at most maxAcc buckets.
func (s *chainState) foldTo(keep []int, maxAcc int) (*chainState, error) {
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	// State-dim indexes of the kept positions (dim 0 is the acc).
	keepIdx := sc.keepIdx[:0]
	for _, q := range keep {
		found := false
		for j, p := range s.open {
			if p == q {
				keepIdx = append(keepIdx, 1+j)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: keep position %d not open (open: %v)", q, s.open)
		}
	}
	sc.keepIdx = keepIdx
	folds, nKept, err := foldCellsInto(sc, s.m, keepIdx)
	if err != nil {
		return nil, err
	}
	m, err := assembleState(sc, s.m, folds, nKept, keepIdx, maxAcc)
	if err != nil {
		return nil, err
	}
	return &chainState{m: m, open: keep}, nil
}

// indexOf maps query positions to dim indexes within a factor.
func indexOf(positions, subset []int) []int {
	var out []int
	for _, q := range subset {
		for j, p := range positions {
			if p == q {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// cellFold is one folded cell: the accumulated-cost interval, the
// kept-dim indexes (in keep order) and the probability.
type cellFold struct {
	lo, hi float64
	idx    []int
	pr     float64
}

// foldCells folds a Multi's non-kept dims into accumulated-cost
// intervals (an existing accumulator dim, when present, is simply not
// listed in keepIdx and its bucket bounds join the interval sums).
// The columnar scan runs in storage order — sorted cell-key order —
// which keeps the fold order, and therefore the float accumulation
// downstream in accCuts/distributeFolds, reproducible.
func foldCells(m *hist.Multi, keepIdx []int) ([]cellFold, int, error) {
	return foldCellsInto(nil, m, keepIdx)
}

// foldCellsInto is foldCells writing into pooled scratch when sc is
// non-nil: the folds slice and the shared index arena come from the
// pool, so a warm fold allocates nothing.
func foldCellsInto(sc *evalScratch, m *hist.Multi, keepIdx []int) ([]cellFold, int, error) {
	keys, probs := m.Cells()
	if len(keys) == 0 {
		return nil, 0, fmt.Errorf("core: folding an empty joint")
	}
	var keep [hist.MaxDims]bool
	for _, d := range keepIdx {
		keep[d] = true
	}
	var folds []cellFold
	var arena []int
	need := len(keys) * len(keepIdx)
	if sc != nil {
		if cap(sc.folds) < len(keys) {
			sc.folds = make([]cellFold, 0, len(keys))
		}
		if cap(sc.foldIdx) < need {
			sc.foldIdx = make([]int, 0, need)
		}
		folds, arena = sc.folds[:0], sc.foldIdx[:0]
	} else {
		folds = make([]cellFold, 0, len(keys))
		arena = make([]int, 0, need)
	}
	// arena has full capacity up front so the idx sub-slices below
	// never dangle on growth.
	dims := m.Dims()
	for i, k := range keys {
		var lo, hi float64
		for d := 0; d < dims; d++ {
			if keep[d] {
				continue
			}
			l, u := m.BucketRange(d, int(k.Dim(d)))
			lo += l
			hi += u
		}
		base := len(arena)
		for _, d := range keepIdx {
			arena = append(arena, int(k.Dim(d)))
		}
		folds = append(folds, cellFold{lo: lo, hi: hi, idx: arena[base:len(arena):len(arena)], pr: probs[i]})
	}
	if sc != nil {
		sc.folds, sc.foldIdx = folds, arena
	}
	return folds, len(keepIdx), nil
}

// assembleState builds the state Multi (dim 0 = acc, then kept dims of
// src in keepIdx order) from folded cells, re-bucketing the acc axis
// to at most maxAcc buckets.
func assembleState(sc *evalScratch, src *hist.Multi, folds []cellFold, nKept int, keepIdx []int, maxAcc int) (*hist.Multi, error) {
	cuts, err := accCuts(sc, folds, maxAcc)
	if err != nil {
		return nil, err
	}
	bounds := sc.boundsScratch(1 + nKept)
	bounds[0] = cuts
	for i, d := range keepIdx {
		bounds[1+i] = src.Bounds(d)
	}
	keys, probs := distributeFoldsInto(sc, folds, cuts)
	out, err := hist.NewMultiFromPackedCells(bounds, keys, probs)
	if err != nil {
		return nil, err
	}
	if err := out.Normalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// accCuts derives the accumulated-cost bucket boundaries: the exact
// interval endpoints when few, otherwise the boundaries of the
// compressed exact marginal. hist.RearrangedCuts keeps the whole
// rearrangement pooled; only the returned boundary slice — which
// becomes the state's accumulator axis — is allocated.
func accCuts(sc *evalScratch, folds []cellFold, maxAcc int) ([]float64, error) {
	var ivals []hist.Bucket
	if sc != nil {
		if cap(sc.ivals) < len(folds) {
			sc.ivals = make([]hist.Bucket, 0, len(folds))
		}
		ivals = sc.ivals[:len(folds)]
		sc.ivals = ivals
	} else {
		ivals = make([]hist.Bucket, len(folds))
	}
	for i, f := range folds {
		hi := f.hi
		if !(hi > f.lo) {
			hi = f.lo + 1e-9 // degenerate (point) accumulations
		}
		ivals[i] = hist.Bucket{Lo: f.lo, Hi: hi, Pr: f.pr}
	}
	return hist.RearrangedCuts(ivals, maxAcc)
}

// distributeFoldsInto spreads each folded cell's mass across the acc
// slabs proportionally to overlap (uniform-within-interval, the
// Section 4.2 rule) and returns the resulting sorted cell arrays,
// owned by the scratch.
//
// Accumulation happens immediately per emission — the same order as
// the reference path's out.AddCell, so the per-cell float sums are
// identical — but into flat local packed-key/probability arrays
// instead of a Multi: appends and in-place accruals are word compares
// on packed keys, the binary search on out-of-order emissions is a
// handful of word compares, and there is no per-emission marginal
// invalidation. Within one fold the emitted keys strictly ascend
// (only the slab index varies), so the tail fast paths absorb most
// emissions.
func distributeFoldsInto(sc *evalScratch, folds []cellFold, cuts []float64) ([]hist.PackedKey, []float64) {
	keys := sc.keys[:0]
	probs := sc.probs[:0]
	for _, f := range folds {
		lo, hi := f.lo, f.hi
		if !(hi > lo) {
			hi = lo + 1e-9
		}
		w := hi - lo
		// Kept-dim indexes are fixed per fold; only dim 0 varies.
		var base hist.PackedKey
		for j, v := range f.idx {
			base = base.WithDim(1+j, uint16(v))
		}
		s := sort.SearchFloat64s(cuts, lo)
		if s > 0 {
			s--
		}
		for ; s+1 < len(cuts); s++ {
			if cuts[s] >= hi {
				break
			}
			ol := math.Min(cuts[s+1], hi) - math.Max(cuts[s], lo)
			if ol <= 0 {
				continue
			}
			add := f.pr * ol / w
			if add == 0 {
				// Matches the map kernel: Cell+SetCell with a zero delta
				// never materialized an absent cell.
				continue
			}
			key := base.WithDim(0, uint16(s))
			n := len(keys)
			switch {
			case n == 0 || keys[n-1].Less(key):
				keys = append(keys, key)
				probs = append(probs, add)
			case keys[n-1] == key:
				probs[n-1] += add
			default:
				// Out-of-order emission: binary search, accrue or insert.
				i := sort.Search(n, func(i int) bool { return !keys[i].Less(key) })
				if keys[i] == key {
					probs[i] += add
				} else {
					keys = append(keys, hist.PackedKey{})
					probs = append(probs, 0)
					copy(keys[i+1:], keys[i:])
					copy(probs[i+1:], probs[i:])
					keys[i] = key
					probs[i] = add
				}
			}
		}
	}
	sc.keys, sc.probs = keys, probs
	return keys, probs
}

// distributeFoldsRef is the reference fold distribution — the same
// slab walk accumulating through Multi.AddCell immediately. It is the
// differential oracle for distributeFoldsInto (see
// TestDistributeFoldsMatchesReference); the float sequence per cell is
// identical by construction.
func distributeFoldsRef(out *hist.Multi, folds []cellFold, cuts []float64) {
	var idxArr [hist.MaxDims]int
	idxBuf := idxArr[:out.Dims()]
	for _, f := range folds {
		lo, hi := f.lo, f.hi
		if !(hi > lo) {
			hi = lo + 1e-9
		}
		w := hi - lo
		s := sort.SearchFloat64s(cuts, lo)
		if s > 0 {
			s--
		}
		for ; s+1 < len(cuts); s++ {
			if cuts[s] >= hi {
				break
			}
			ol := math.Min(cuts[s+1], hi) - math.Max(cuts[s], lo)
			if ol <= 0 {
				continue
			}
			add := f.pr * ol / w
			if add == 0 {
				continue
			}
			idxBuf[0] = s
			copy(idxBuf[1:], f.idx)
			out.AddCell(idxBuf, add)
		}
	}
}

// EvaluateDense materializes the full joint of Equation 2 on the
// common refinement grid and flattens it. Exponential in the query
// cardinality — a reference implementation used by tests and small
// queries to validate the chain evaluator.
func (h *HybridGraph) EvaluateDense(de *Decomposition, query graph.Path) (*hist.Histogram, error) {
	if err := de.Validate(query); err != nil {
		return nil, err
	}
	n := len(query)
	if n > 10 {
		return nil, fmt.Errorf("core: dense evaluation limited to 10 edges, got %d", n)
	}
	factorMs := make([]*hist.Multi, len(de.Vars))
	for i, v := range de.Vars {
		fm, err := asMulti(v)
		if err != nil {
			return nil, err
		}
		factorMs[i] = fm
	}
	// Remap every factor dimension onto the union grid of all factors
	// sharing the position, so cell indices agree across factors.
	for pos := 0; pos < n; pos++ {
		union := []float64(nil)
		for i, v := range de.Vars {
			d := pos - de.Pos[i]
			if d >= 0 && d < v.Rank() {
				union = hist.UnionBounds(union, factorMs[i].Bounds(d))
			}
		}
		for i, v := range de.Vars {
			d := pos - de.Pos[i]
			if d >= 0 && d < v.Rank() {
				var err error
				factorMs[i], err = factorMs[i].RemapDim(d, union)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	// Overlap marginals (denominators of Eq. 2).
	margs := make([]*hist.Multi, len(de.Vars)) // margs[i]: overlap of factor i with i−1
	for i := 1; i < len(de.Vars); i++ {
		prevEnd := de.Pos[i-1] + de.Vars[i-1].Rank() // exclusive
		var ovIdx []int
		for d := 0; d < de.Vars[i].Rank(); d++ {
			if de.Pos[i]+d < prevEnd {
				ovIdx = append(ovIdx, d)
			}
		}
		if len(ovIdx) > 0 {
			m, err := factorMs[i].MarginalOnto(ovIdx)
			if err != nil {
				return nil, err
			}
			margs[i] = m
		}
	}
	// Grid sizes per position (identical across factors after remap).
	gridBounds := make([][]float64, n)
	for pos := 0; pos < n; pos++ {
		for i, v := range de.Vars {
			d := pos - de.Pos[i]
			if d >= 0 && d < v.Rank() {
				gridBounds[pos] = factorMs[i].Bounds(d)
				break
			}
		}
	}
	// Enumerate the full grid.
	counts := make([]int, n)
	total := 1
	for pos := range counts {
		counts[pos] = len(gridBounds[pos]) - 1
		total *= counts[pos]
		if total > 2_000_000 {
			return nil, fmt.Errorf("core: dense grid too large")
		}
	}
	idx := make([]int, n)
	var ivals []hist.Bucket
	var advance func(int) bool
	advance = func(pos int) bool {
		idx[pos]++
		if idx[pos] < counts[pos] {
			return true
		}
		idx[pos] = 0
		if pos+1 < n {
			return advance(pos + 1)
		}
		return false
	}
	fIdx := make([]int, hist.MaxDims)
	for {
		pr := 1.0
		for i, v := range de.Vars {
			m := factorMs[i]
			nd := v.Rank()
			for d := 0; d < nd; d++ {
				fIdx[d] = idx[de.Pos[i]+d]
			}
			pr *= m.Cell(fIdx[:nd])
			if pr == 0 {
				break
			}
			if margs[i] != nil {
				nOv := margs[i].Dims()
				for d := 0; d < nOv; d++ {
					fIdx[d] = idx[de.Pos[i]+d]
				}
				den := margs[i].Cell(fIdx[:nOv])
				if den <= 0 {
					pr = 0
					break
				}
				pr /= den
			}
		}
		if pr > 0 {
			var lo, hi float64
			for pos := 0; pos < n; pos++ {
				lo += gridBounds[pos][idx[pos]]
				hi += gridBounds[pos][idx[pos]+1]
			}
			ivals = append(ivals, hist.Bucket{Lo: lo, Hi: hi, Pr: pr})
		}
		if !advance(0) {
			break
		}
	}
	if len(ivals) == 0 {
		return nil, fmt.Errorf("core: dense evaluation produced no mass")
	}
	return hist.Rearranged(ivals)
}
