package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/hist"
)

// This file implements incremental model maintenance: building the
// next epoch's hybrid graph from the previous one plus a batch of
// newly matched trajectories, rebuilding only the variables the batch
// touches (copy-on-write) while sharing everything else by pointer
// with the previous epoch, which keeps serving concurrently.
//
// Two modes exist. Exact mode (ApplyBatchExact) extends the training
// collection and re-instantiates every touched (path, interval)
// variable from its full occurrence list through the same code path
// Build uses — the result is byte-identical to a full retrain on the
// concatenated data. This works because variable existence is a pure
// threshold on per-interval occurrence counts: a variable exists for
// (P, iv) iff |occurrences of P arriving in iv| ≥ β and |P| ≤ MaxRank
// (Section 3.2's frontier condition is equivalent: a path is extended
// iff its total occurrences reach β, and per-interval count ≥ β
// implies total ≥ β for the path and every prefix). Occurrence counts
// only grow when trajectories are appended, so only sub-paths that
// occur in the batch can gain or change variables.
//
// Decay mode (ApplyBatchDecay) implements exponential time-decay of
// stale mass without retaining the trajectory history: each touched
// variable's histogram grid is frozen and the update is an EWMA in
// the count domain — decayed old mass plus new per-cell sample counts,
// renormalized (hist.MergeDelta / hist.MergeCounts). Untouched
// variables need no decay pass at all: scaling every cell of a
// histogram by the same factor is a normalization no-op, so their
// distributions are unchanged and copy-on-write sharing is preserved.

// EpochDelta summarizes one incremental model update.
type EpochDelta struct {
	// Trajs is the number of trajectories applied.
	Trajs int
	// TouchedPaths is the number of distinct sub-paths (≤ MaxRank)
	// occurring in the batch.
	TouchedPaths int
	// RebuiltVars counts existing variables that were re-instantiated
	// or merged; NewVars counts variables that did not exist before.
	RebuiltVars, NewVars int
	// TouchedEdges is the set of edges traversed by the batch; any
	// synopsis entry or cached decomposition whose path avoids all of
	// them is provably unaffected by this update.
	TouchedEdges map[graph.EdgeID]bool
}

// touchedPath records one sub-path occurring in a batch and the set of
// arrival intervals the batch touches it in.
type touchedPath struct {
	path graph.Path
	ivs  map[int]bool
}

// touchedFromBatch enumerates every (sub-path, interval) pair the
// batch adds occurrences to, up to MaxRank, plus the traversed edges.
func (h *HybridGraph) touchedFromBatch(batch []*gps.Matched) (map[string]*touchedPath, map[graph.EdgeID]bool) {
	touched := make(map[string]*touchedPath)
	edges := make(map[graph.EdgeID]bool)
	for _, m := range batch {
		for pos := range m.Path {
			edges[m.Path[pos]] = true
			iv := h.Params.IntervalOf(m.ArrivalAt(pos))
			maxN := h.Params.MaxRank
			if pos+maxN > len(m.Path) {
				maxN = len(m.Path) - pos
			}
			for n := 1; n <= maxN; n++ {
				sub := m.Path[pos : pos+n]
				k := sub.Key()
				tp := touched[k]
				if tp == nil {
					tp = &touchedPath{path: sub.Clone(), ivs: make(map[int]bool)}
					touched[k] = tp
				}
				tp.ivs[iv] = true
			}
		}
	}
	return touched, edges
}

// validateBatch rejects trajectories the trainer could not consume.
func (h *HybridGraph) validateBatch(batch []*gps.Matched) error {
	for i, m := range batch {
		if m == nil {
			return fmt.Errorf("core: batch trajectory %d is nil", i)
		}
		if err := m.Validate(h.G); err != nil {
			return fmt.Errorf("core: batch trajectory %d: %w", i, err)
		}
		if h.Params.Domain == DomainEmissions && m.Emissions == nil {
			return fmt.Errorf("core: batch trajectory %d has no emissions but the model's cost domain is emissions", i)
		}
	}
	return nil
}

// cowHybrid clones a hybrid graph's top-level indexes while sharing
// every untouched pathVars (and its variables) by pointer, then lets
// the caller replace individual variables; per-path structures are
// cloned lazily on first write so the source graph is never mutated.
type cowHybrid struct {
	h        *HybridGraph
	cowVars  map[string]bool       // path keys whose pathVars we own
	cowStart map[graph.EdgeID]bool // byStart lists we own
	resort   map[graph.EdgeID]bool // byStart lists that gained a path
}

func (h *HybridGraph) newCOW() *cowHybrid {
	nh := &HybridGraph{
		G:      h.G,
		Params: h.Params,
		vars:   make(map[string]*pathVars, len(h.vars)+16),
		// Fallback variables are synthesized on demand under their own
		// mutex and never serialized; each epoch gets a fresh map so
		// epochs never contend on it.
		unit:      append([]*pathVars(nil), h.unit...),
		unitCount: h.unitCount,
		byStart:   append([][]*pathVars(nil), h.byStart...),
		fallbacks: make(map[graph.EdgeID]*Variable),
		stats:     h.stats,
	}
	for k, v := range h.vars {
		nh.vars[k] = v
	}
	nh.stats.VariablesByRank = append([]int(nil), h.stats.VariablesByRank...)
	return &cowHybrid{
		h:        nh,
		cowVars:  make(map[string]bool),
		cowStart: make(map[graph.EdgeID]bool),
		resort:   make(map[graph.EdgeID]bool),
	}
}

// ownStart ensures the byStart list of edge e is a private copy.
func (c *cowHybrid) ownStart(e graph.EdgeID) {
	if !c.cowStart[e] {
		c.h.byStart[e] = append([]*pathVars(nil), c.h.byStart[e]...)
		c.cowStart[e] = true
	}
}

// replace installs v, cloning the owning pathVars on first write, and
// keeps the build statistics consistent (subtract the displaced
// variable, add the new one). Reports whether v's (path, interval)
// slot was previously empty.
func (c *cowHybrid) replace(v *Variable) bool {
	h := c.h
	key := v.Path.Key()
	pv, ok := h.vars[key]
	switch {
	case !ok:
		pv = &pathVars{path: v.Path, byIv: make(map[int]*Variable)}
		h.vars[key] = pv
		c.cowVars[key] = true
		start := v.Path[0]
		c.ownStart(start)
		h.byStart[start] = append(h.byStart[start], pv)
		c.resort[start] = true
		if len(v.Path) == 1 {
			if h.unit[start] == nil {
				h.unitCount++
			}
			h.unit[start] = pv
		}
	case !c.cowVars[key]:
		clone := &pathVars{
			path:   pv.path,
			byIv:   make(map[int]*Variable, len(pv.byIv)+1),
			sorted: append([]*Variable(nil), pv.sorted...),
		}
		for iv, ov := range pv.byIv {
			clone.byIv[iv] = ov
		}
		h.vars[key] = clone
		c.cowVars[key] = true
		start := pv.path[0]
		c.ownStart(start)
		list := h.byStart[start]
		for i := range list {
			if list[i] == pv {
				list[i] = clone
				break
			}
		}
		if len(pv.path) == 1 {
			h.unit[start] = clone
		}
		pv = clone
	}
	if old := pv.byIv[v.Interval]; old != nil {
		h.stats.VariablesByRank[old.Rank()-1]--
		h.stats.StorageFloats -= old.StorageFloats()
		h.stats.SupportTotal -= old.Support
	}
	isNew := pv.byIv[v.Interval] == nil
	pv.byIv[v.Interval] = v
	i := sort.Search(len(pv.sorted), func(i int) bool { return pv.sorted[i].Interval >= v.Interval })
	if i < len(pv.sorted) && pv.sorted[i].Interval == v.Interval {
		pv.sorted[i] = v
	} else {
		pv.sorted = append(pv.sorted, nil)
		copy(pv.sorted[i+1:], pv.sorted[i:])
		pv.sorted[i] = v
	}
	h.stats.VariablesByRank[v.Rank()-1]++
	h.stats.StorageFloats += v.StorageFloats()
	h.stats.SupportTotal += v.Support
	return isNew
}

// finish restores the byStart ordering invariant (ascending rank, ties
// by path key — the same comparator Build uses) on every list that
// gained a path.
func (c *cowHybrid) finish() {
	for e := range c.resort {
		list := c.h.byStart[e]
		sort.Slice(list, func(i, j int) bool {
			if len(list[i].path) != len(list[j].path) {
				return len(list[i].path) < len(list[j].path)
			}
			return list[i].path.Key() < list[j].path.Key()
		})
	}
}

// sortedTouched returns the touched paths in deterministic key order.
func sortedTouched(touched map[string]*touchedPath) []string {
	keys := make([]string, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedIvs(ivs map[int]bool) []int {
	out := make([]int, 0, len(ivs))
	for iv := range ivs {
		out = append(out, iv)
	}
	sort.Ints(out)
	return out
}

// ApplyBatchExact builds the next epoch's hybrid graph from the
// receiver, its training collection, and a batch of newly matched
// trajectories: the collection is extended (copy-on-write) and every
// (path, interval) variable the batch touches is re-instantiated from
// its full occurrence list through Build's own helpers. The result is
// byte-identical to Build over the concatenated data (see the file
// comment for why), shares every untouched variable with the
// receiver, and leaves the receiver fully serving.
func (h *HybridGraph) ApplyBatchExact(data *gps.Collection, batch []*gps.Matched) (*HybridGraph, *gps.Collection, EpochDelta, error) {
	delta := EpochDelta{Trajs: len(batch), TouchedEdges: make(map[graph.EdgeID]bool)}
	if data == nil {
		return nil, nil, delta, fmt.Errorf("core: exact incremental update requires the training collection; use decay mode when serving a model without data")
	}
	if err := h.validateBatch(batch); err != nil {
		return nil, nil, delta, err
	}
	if len(batch) == 0 {
		return h, data, delta, nil
	}
	next := data.Extend(batch, 0)
	touched, edges := h.touchedFromBatch(batch)
	delta.TouchedEdges = edges
	delta.TouchedPaths = len(touched)

	cow := h.newCOW()
	for _, k := range sortedTouched(touched) {
		tp := touched[k]
		occs := next.OccurrencesOfPath(tp.path)
		byIv := cow.h.groupByInterval(next, tp.path, occs)
		for _, iv := range sortedIvs(tp.ivs) {
			ivOccs := byIv[iv]
			if len(ivOccs) < h.Params.Beta {
				continue
			}
			var v *Variable
			var err error
			if len(tp.path) == 1 {
				v, err = cow.h.buildRank1Variable(next, tp.path, iv, ivOccs)
			} else {
				v, err = cow.h.buildJointVariable(next, tp.path.Clone(), iv, ivOccs)
			}
			if err != nil {
				return nil, nil, delta, fmt.Errorf("core: path %v interval %d: %w", tp.path, iv, err)
			}
			if cow.replace(v) {
				delta.NewVars++
			} else {
				delta.RebuiltVars++
			}
		}
	}
	cow.finish()
	cow.h.stats.EdgesWithData = next.NumEdgesWithData()
	cow.h.stats.CoveredEdges = cow.h.unitCount
	return cow.h, next, delta, nil
}

// ApplyBatchDecay builds the next epoch by merging the batch into the
// touched variables' frozen histogram grids with exponential decay of
// the existing mass: new cell mass = factor×support×P_old + sample
// counts, renormalized. factor ∈ (0, 1] is the per-publish decay
// (e.g. 2^(−Δt/halflife)); factor 1 keeps all old mass. No trajectory
// history is needed or retained. Variables untouched by the batch keep
// their exact distributions (uniform decay cancels under
// normalization) and are shared with the receiver. Sub-paths that
// reach β occurrences within the batch itself gain fresh variables.
func (h *HybridGraph) ApplyBatchDecay(batch []*gps.Matched, factor float64) (*HybridGraph, EpochDelta, error) {
	delta := EpochDelta{Trajs: len(batch), TouchedEdges: make(map[graph.EdgeID]bool)}
	if factor <= 0 || factor > 1 || math.IsNaN(factor) {
		return nil, delta, fmt.Errorf("core: decay factor %v outside (0, 1]", factor)
	}
	if err := h.validateBatch(batch); err != nil {
		return nil, delta, err
	}
	if len(batch) == 0 {
		return h, delta, nil
	}
	batchColl := gps.NewCollection(batch, 0)
	touched, edges := h.touchedFromBatch(batch)
	delta.TouchedEdges = edges
	delta.TouchedPaths = len(touched)

	cow := h.newCOW()
	for _, k := range sortedTouched(touched) {
		tp := touched[k]
		occs := batchColl.OccurrencesOfPath(tp.path)
		byIv := cow.h.groupByInterval(batchColl, tp.path, occs)
		for _, iv := range sortedIvs(tp.ivs) {
			ivOccs := byIv[iv]
			if len(ivOccs) == 0 {
				continue
			}
			old := h.LookupInterval(tp.path, iv)
			var v *Variable
			var err error
			switch {
			case old == nil && len(ivOccs) < h.Params.Beta:
				continue
			case old == nil && len(tp.path) == 1:
				v, err = cow.h.buildRank1Variable(batchColl, tp.path, iv, ivOccs)
			case old == nil:
				v, err = cow.h.buildJointVariable(batchColl, tp.path.Clone(), iv, ivOccs)
			default:
				v, err = cow.h.mergeDecayVariable(old, batchColl, ivOccs, factor)
			}
			if err != nil {
				return nil, delta, fmt.Errorf("core: path %v interval %d: %w", tp.path, iv, err)
			}
			if cow.replace(v) {
				delta.NewVars++
			} else {
				delta.RebuiltVars++
			}
		}
	}
	cow.finish()
	cow.h.stats.CoveredEdges = cow.h.unitCount
	// Without a retained collection the exact |E″| is unknowable in
	// decay mode; keep it monotone so Coverage stays ≤ 1.
	if cow.h.stats.EdgesWithData < cow.h.stats.CoveredEdges {
		cow.h.stats.EdgesWithData = cow.h.stats.CoveredEdges
	}
	return cow.h, delta, nil
}

// mergeDecayVariable merges new qualified occurrences into an existing
// variable on its frozen grid. Old mass re-enters the count domain as
// factor×Support×P, new samples add unit counts (snapped to the
// model's resolution, clamped to the grid), and the result is
// renormalized. Support becomes round(factor×Support)+|new|; the time
// envelope only widens.
func (h *HybridGraph) mergeDecayVariable(old *Variable, data *gps.Collection, ivOccs []gps.Occurrence, factor float64) (*Variable, error) {
	oldW := factor * float64(old.Support)
	res := h.Params.Resolution
	tMin, tMax := old.TimeMin, old.TimeMax
	support := int(math.Round(oldW)) + len(ivOccs)
	if support < len(ivOccs) {
		support = len(ivOccs)
	}
	if len(old.Path) == 1 {
		samples := make([]float64, len(ivOccs))
		for i, oc := range ivOccs {
			m := data.Traj(oc.Traj)
			samples[i] = math.Round(h.costValue(m, oc.Pos, 1)/res) * res
			tt := m.EdgeCosts[oc.Pos]
			if tt < tMin {
				tMin = tt
			}
			if tt > tMax {
				tMax = tt
			}
		}
		hg, err := old.Hist.MergeCounts(samples, oldW)
		if err != nil {
			return nil, err
		}
		return &Variable{
			Path: old.Path, Interval: old.Interval, Support: support,
			Hist: hg, TimeMin: tMin, TimeMax: tMax,
		}, nil
	}
	n := len(old.Path)
	d := hist.NewDelta()
	point := make([]float64, n)
	for _, oc := range ivOccs {
		m := data.Traj(oc.Traj)
		for j := 0; j < n; j++ {
			point[j] = math.Round(h.costValueAt(m, oc.Pos+j)/res) * res
		}
		key, err := old.Joint.BinClamped(point)
		if err != nil {
			return nil, err
		}
		d.Add(key, 1)
		tt := m.CostOfSubPath(oc.Pos, n)
		if tt < tMin {
			tMin = tt
		}
		if tt > tMax {
			tMax = tt
		}
	}
	merged, err := old.Joint.MergeDelta(d, oldW)
	if err != nil {
		return nil, err
	}
	if err := merged.Normalize(); err != nil {
		return nil, err
	}
	return &Variable{
		Path: old.Path, Interval: old.Interval, Support: support,
		Joint: merged, TimeMin: tMin, TimeMax: tMax,
	}, nil
}
