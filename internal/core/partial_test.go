package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// partitionedFixture builds the Table 1 model and filters it so no
// variable spans the cut between edges 2 and 3 — the shape a region
// partition guarantees. The cut splits the query path <e0..e4> into
// segments <e0,e1,e2> and <e3,e4>.
func partitionedFixture(t testing.TB) *HybridGraph {
	t.Helper()
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	inSeg := func(p graph.Path, lo, hi graph.EdgeID) bool {
		for _, e := range p {
			if e < lo || e > hi {
				return false
			}
		}
		return true
	}
	return h.FilterVariables(func(v *Variable) bool {
		return inSeg(v.Path, 0, 2) || inSeg(v.Path, 3, 4)
	})
}

func TestChainStateEncodeDecodeRoundTrip(t *testing.T) {
	h := partitionedFixture(t)
	seg := graph.Path{0, 1, 2}
	depart := 8 * 3600.0
	res, err := h.EvaluateSegment(nil, nil, SegmentInput{
		Path: seg, Depart: depart,
		UI: TimeInterval{Lo: depart, Hi: depart},
	})
	if err != nil {
		t.Fatalf("EvaluateSegment: %v", err)
	}
	if !res.State.AccOnly() {
		t.Fatalf("relay state has open dims %v, want acc-only", res.State.Open())
	}
	enc, err := res.State.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.HasPrefix(enc, []byte(partialStateVersion+"\n")) {
		t.Fatalf("encoding lacks version header: %q", enc[:min(len(enc), 40)])
	}
	dec, err := DecodeChainState(enc, len(seg))
	if err != nil {
		t.Fatalf("DecodeChainState: %v", err)
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("encode/decode/encode is not a fixed point:\n%s\nvs\n%s", enc, enc2)
	}
}

// TestEvaluateSegmentRelayMatchesWholePath is the exactness theorem
// behind the sharded tier: on a model where no variable spans the
// cut, relaying (state, UI) across the cut reproduces the whole-path
// evaluation bit for bit — same buckets, same decomposition shape.
func TestEvaluateSegmentRelayMatchesWholePath(t *testing.T) {
	h := partitionedFixture(t)
	full := graph.Path{0, 1, 2, 3, 4}
	segA, segB := graph.Path{0, 1, 2}, graph.Path{3, 4}
	depart := 8 * 3600.0

	for _, m := range []Method{MethodOD, MethodHP, MethodLB} {
		opt := QueryOptions{Method: m}
		whole, err := h.CostDistribution(full, depart, opt)
		if err != nil {
			t.Fatalf("%s: CostDistribution: %v", m, err)
		}

		r1, err := h.EvaluateSegment(nil, nil, SegmentInput{
			Path: segA, Depart: depart,
			UI: TimeInterval{Lo: depart, Hi: depart}, Opt: opt,
		})
		if err != nil {
			t.Fatalf("%s: first segment: %v", m, err)
		}
		// Round-trip the relay through its wire encoding, exactly as the
		// coordinator does between processes.
		enc, err := r1.State.Encode()
		if err != nil {
			t.Fatalf("%s: Encode: %v", m, err)
		}
		relay, err := DecodeChainState(enc, len(segB))
		if err != nil {
			t.Fatalf("%s: DecodeChainState: %v", m, err)
		}
		r2, err := h.EvaluateSegment(nil, nil, SegmentInput{
			Path: segB, Depart: depart, UI: r1.UI, State: relay, Opt: opt,
		})
		if err != nil {
			t.Fatalf("%s: continuation: %v", m, err)
		}
		dist, err := r2.State.Finalize(h.Params.MaxResultBuckets)
		if err != nil {
			t.Fatalf("%s: Finalize: %v", m, err)
		}
		if !reflect.DeepEqual(dist.Buckets(), whole.Dist.Buckets()) {
			t.Errorf("%s: composed distribution differs from whole-path:\n%v\nvs\n%v",
				m, dist.Buckets(), whole.Dist.Buckets())
		}
		if got, want := r1.Factors+r2.Factors, whole.Decomp.Cardinality(); got != want {
			t.Errorf("%s: segment factors sum to %d, whole decomposition has %d", m, got, want)
		}
		if got, want := max(r1.MaxRank, r2.MaxRank), whole.Decomp.MaxRank(); got != want {
			t.Errorf("%s: segment max rank %d, whole %d", m, got, want)
		}
	}
}

// TestEvaluateSegmentFirstUsesStores checks that a first segment with
// a synopsis/memo answers byte-identically to the store-free path —
// the store-equivalence guarantee extends to partial evaluation.
func TestEvaluateSegmentFirstUsesStores(t *testing.T) {
	h := partitionedFixture(t)
	seg := graph.Path{0, 1, 2}
	depart := 8 * 3600.0
	in := SegmentInput{Path: seg, Depart: depart, UI: TimeInterval{Lo: depart, Hi: depart}}

	bare, err := h.EvaluateSegment(nil, nil, in)
	if err != nil {
		t.Fatalf("bare: %v", err)
	}
	memo := NewConvMemo(256)
	var warmed *SegmentResult
	for i := 0; i < 2; i++ { // second pass resumes from the memo
		warmed, err = h.EvaluateSegment(nil, memo, in)
		if err != nil {
			t.Fatalf("memo pass %d: %v", i, err)
		}
	}
	be, _ := bare.State.Encode()
	we, _ := warmed.State.Encode()
	if !bytes.Equal(be, we) {
		t.Fatalf("memo-backed first segment diverged from bare evaluation")
	}
	if bare.UI != warmed.UI || bare.Factors != warmed.Factors || bare.MaxRank != warmed.MaxRank {
		t.Fatalf("segment metadata diverged: %+v vs %+v", bare, warmed)
	}
}

func TestEvaluateSegmentRejections(t *testing.T) {
	h := partitionedFixture(t)
	depart := 8 * 3600.0
	point := TimeInterval{Lo: depart, Hi: depart}
	relay := func() *ChainState {
		res, err := h.EvaluateSegment(nil, nil, SegmentInput{Path: graph.Path{0, 1, 2}, Depart: depart, UI: point})
		if err != nil {
			t.Fatalf("building relay state: %v", err)
		}
		return res.State
	}()

	cases := []struct {
		name string
		in   SegmentInput
		want string
	}{
		{"empty", SegmentInput{Depart: depart, UI: point}, "empty segment"},
		{"invalid path", SegmentInput{Path: graph.Path{0, 3}, Depart: depart, UI: point}, "not a valid path"},
		{"rd", SegmentInput{Path: graph.Path{0, 1}, Depart: depart, UI: point, Opt: QueryOptions{Method: MethodRD}}, "cannot be evaluated segment by segment"},
		{"inverted ui", SegmentInput{Path: graph.Path{0, 1}, Depart: depart, UI: TimeInterval{Lo: 2, Hi: 1}}, "inverted departure interval"},
		{"first not point", SegmentInput{Path: graph.Path{0, 1}, Depart: depart, UI: TimeInterval{Lo: depart, Hi: depart + 60}}, "point interval"},
		{"unknown method", SegmentInput{Path: graph.Path{3, 4}, Depart: depart, UI: point, State: relay, Opt: QueryOptions{Method: "XX"}}, "unknown method"},
	}
	for _, tc := range cases {
		_, err := h.EvaluateSegment(nil, nil, tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// A continuation must start from an accumulator-only state.
	st, err := h.PathStateWith(nil, nil, graph.Path{0, 1, 2}, depart, QueryOptions{Method: MethodOD})
	if err != nil {
		t.Fatalf("PathStateWith: %v", err)
	}
	if st.preFold == nil || len(st.preFold.open) == 0 {
		t.Skip("fixture produced no open pre-fold state")
	}
	open := &ChainState{cs: st.preFold}
	_, err = h.EvaluateSegment(nil, nil, SegmentInput{
		Path: graph.Path{3, 4}, Depart: depart, UI: point, State: open,
	})
	if err == nil || !strings.Contains(err.Error(), "accumulator-only") {
		t.Errorf("open-dim continuation: got %v, want accumulator-only rejection", err)
	}
}

func TestDecodeChainStateRejectsGarbage(t *testing.T) {
	h := partitionedFixture(t)
	res, err := h.EvaluateSegment(nil, nil, SegmentInput{
		Path: graph.Path{0, 1, 2}, Depart: 8 * 3600.0,
		UI: TimeInterval{Lo: 8 * 3600.0, Hi: 8 * 3600.0},
	})
	if err != nil {
		t.Fatalf("EvaluateSegment: %v", err)
	}
	good, err := res.State.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	cases := map[string][]byte{
		"empty":         nil,
		"wrong version": []byte("pstate-v9\ns 0\n"),
		"no state":      []byte(partialStateVersion + "\n"),
		"truncated":     good[:len(good)-len(good)/3],
		"binary":        {0x00, 0xff, 0x13, 0x37},
		"html":          []byte("<html><body>502 Bad Gateway</body></html>"),
	}
	for name, data := range cases {
		if _, err := DecodeChainState(data, 3); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestFilterVariablesStableAndExact(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	keep := func(v *Variable) bool { return v.Path[0] <= 2 }
	f1 := h.FilterVariables(keep)
	f2 := h.FilterVariables(keep)

	f1.ForEachVariable(func(v *Variable) {
		if !keep(v) {
			t.Errorf("filtered model kept rejected variable %v", v.Path)
		}
	})
	total, kept, matched := 0, 0, 0
	h.ForEachVariable(func(v *Variable) {
		total++
		if keep(v) {
			matched++
		}
	})
	f1.ForEachVariable(func(*Variable) { kept++ })
	if kept != matched || kept == 0 || kept == total {
		t.Fatalf("filter kept %d of %d (predicate matches %d)", kept, total, matched)
	}

	var b1, b2 bytes.Buffer
	if err := f1.WriteModelSynopsis(&b1, nil); err != nil {
		t.Fatalf("serialize f1: %v", err)
	}
	if err := f2.WriteModelSynopsis(&b2, nil); err != nil {
		t.Fatalf("serialize f2: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("filtered model does not serialize byte-stably")
	}
}

// FuzzPartialState feeds arbitrary bytes to the partial-state decoder:
// it must reject or accept, never panic, and anything it accepts must
// re-encode to a decodable state.
func FuzzPartialState(f *testing.F) {
	h := partitionedFixture(f)
	res, err := h.EvaluateSegment(nil, nil, SegmentInput{
		Path: graph.Path{0, 1, 2}, Depart: 8 * 3600.0,
		UI: TimeInterval{Lo: 8 * 3600.0, Hi: 8 * 3600.0},
	})
	if err != nil {
		f.Fatalf("EvaluateSegment: %v", err)
	}
	good, err := res.State.Encode()
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add(good)
	f.Add([]byte(partialStateVersion + "\ns 0\n"))
	f.Add([]byte(partialStateVersion + "\ns 2 0 1\n"))
	f.Add([]byte("pstate-v9\n"))
	f.Add([]byte("<html>oops</html>"))
	f.Add([]byte{0x00, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeChainState(data, 8)
		if err != nil {
			return
		}
		enc, err := st.Encode()
		if err != nil {
			t.Fatalf("accepted state failed to encode: %v", err)
		}
		if _, err := DecodeChainState(enc, 8); err != nil {
			t.Fatalf("re-encoded state failed to decode: %v", err)
		}
	})
}
