package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hist"
)

// Differential tests for the merge-join convolution kernel: multiply's
// columnar merge-join must reproduce the retained map-based reference
// kernel (multiplyRef) bit for bit — same cells, same probabilities,
// same stats — across random factor pairs, overlap widths and support
// mismatches.

// randomFactor builds a normalized random joint with the given rank
// whose supports may differ between calls (forcing union remaps).
func randomFactor(rnd *rand.Rand, rank int) *hist.Multi {
	bounds := make([][]float64, rank)
	for d := range bounds {
		n := 2 + rnd.Intn(4)
		bd := make([]float64, n)
		bd[0] = float64(rnd.Intn(3)) * 2.5
		for i := 1; i < n; i++ {
			bd[i] = bd[i-1] + 0.5 + float64(rnd.Intn(6))*1.25
		}
		bounds[d] = bd
	}
	m, err := hist.NewMulti(bounds)
	if err != nil {
		panic(err)
	}
	idx := make([]int, rank)
	cells := 1 + rnd.Intn(10)
	for c := 0; c < cells; c++ {
		for d := range idx {
			idx[d] = rnd.Intn(m.NumBuckets(d))
		}
		m.SetCell(idx, m.Cell(idx)+0.02+rnd.Float64())
	}
	if err := m.Normalize(); err != nil {
		panic(err)
	}
	return m
}

func sameMultiBits(tb testing.TB, a, b *hist.Multi) {
	tb.Helper()
	ka, pa := a.Cells()
	kb, pb := b.Cells()
	if len(ka) != len(kb) {
		tb.Fatalf("cell counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			tb.Fatalf("cell %d key differs: %v vs %v", i, ka[i], kb[i])
		}
		if math.Float64bits(pa[i]) != math.Float64bits(pb[i]) {
			tb.Fatalf("cell %d probability differs at the bit level: %x vs %x",
				i, math.Float64bits(pa[i]), math.Float64bits(pb[i]))
		}
	}
	if a.Dims() != b.Dims() {
		tb.Fatalf("dims differ: %d vs %d", a.Dims(), b.Dims())
	}
	for d := 0; d < a.Dims(); d++ {
		ba, bb := a.Bounds(d), b.Bounds(d)
		if len(ba) != len(bb) {
			tb.Fatalf("dim %d bounds length differ", d)
		}
		for i := range ba {
			if math.Float64bits(ba[i]) != math.Float64bits(bb[i]) {
				tb.Fatalf("dim %d bound %d differs", d, i)
			}
		}
	}
}

// INVARIANT: merge-join multiply ≡ reference multiply, bit for bit,
// for every overlap width the chain evaluator produces (0 = outer
// product, up to rank−1 conditioning dims).
func TestMultiplyMatchesReferenceKernel(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		rankA := 1 + rnd.Intn(3)
		rankB := 1 + rnd.Intn(3)
		overlap := rnd.Intn(minInt(rankA, rankB) + 1)
		if overlap >= rankB {
			overlap = rankB - 1
		}
		fa := randomFactor(rnd, rankA)
		fb := randomFactor(rnd, rankB)

		posA := make([]int, rankA)
		for i := range posA {
			posA[i] = i
		}
		st0, err := initialState(fa, posA)
		if err != nil {
			t.Fatal(err)
		}
		// Fold to the overlap: factor B starts at rankA-overlap.
		keep := make([]int, 0, overlap)
		posB := make([]int, rankB)
		for i := range posB {
			posB[i] = rankA - overlap + i
		}
		for q := rankA - overlap; q < rankA; q++ {
			keep = append(keep, q)
		}
		folded, err := st0.foldTo(keep, 16)
		if err != nil {
			t.Fatal(err)
		}

		var stFast, stRef EvalStats
		fast, errFast := folded.multiply(fb, posB, &stFast)
		ref, errRef := folded.multiplyRef(fb, posB, &stRef)
		if (errFast == nil) != (errRef == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errFast, errRef)
		}
		if errFast != nil {
			continue // both kernels rejected (e.g. all mass conditioned away)
		}
		sameMultiBits(t, fast.m, ref.m)
		if stFast.CellsTouched != stRef.CellsTouched {
			t.Fatalf("trial %d: CellsTouched %d vs %d", trial, stFast.CellsTouched, stRef.CellsTouched)
		}
		if !sameInts(fast.open, ref.open) {
			t.Fatalf("trial %d: open dims %v vs %v", trial, fast.open, ref.open)
		}
	}
}

// A non-prefix overlap (impossible in chain evaluation, where overlaps
// are path prefixes) falls back to the reference kernel rather than
// mis-joining.
func TestMultiplyNonPrefixOverlapFallsBack(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	fa := randomFactor(rnd, 1)
	fb := randomFactor(rnd, 2)
	st0, err := initialState(fa, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := st0.foldTo([]int{1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Factor covers positions {0,1}; the state's open dim 1 maps to
	// factor dim 1, not 0 — a non-prefix overlap.
	fast, errFast := folded.multiply(fb, []int{0, 1}, nil)
	ref, errRef := folded.multiplyRef(fb, []int{0, 1}, nil)
	if (errFast == nil) != (errRef == nil) {
		t.Fatalf("error mismatch: %v vs %v", errFast, errRef)
	}
	if errFast == nil {
		sameMultiBits(t, fast.m, ref.m)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
