package core

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/graph"
)

// ConvMemo is the incremental sub-path convolution engine: a
// prefix-keyed memo of PathStates layered on the internal/cache LRU.
// Evaluating an n-edge path runs a chain of factor convolutions
// (Equation 2); candidate paths explored from one source — by the
// routing DFS, by the queries of one /v1/batch request, or by
// successive PathDistribution calls — share long prefixes, and the
// memo lets each "prefix + one more edge" step reuse the stored chain
// state of the prefix instead of re-deriving the whole path.
//
// Keys are exact: (path signature, departure time, method, rank cap).
// Unlike the α-interval query cache, two departures in the same
// interval do NOT share a memo entry — the shift-and-enlarge windows
// of Eq. 3 depend on the exact departure — so memoized results are
// byte-identical to unmemoized ones, never approximate.
//
// A ConvMemo is safe for concurrent use: the LRU shards its locks and
// the memoized PathStates are immutable after construction (every
// chain operation builds new states). One memo may be shared by any
// number of concurrent routing and distribution queries.
type ConvMemo struct {
	lru *cache.LRU[*PathState]
}

// NewConvMemo builds a memo holding at most capacity prefix states.
// capacity < 1 is treated as 1.
func NewConvMemo(capacity int) *ConvMemo {
	return &ConvMemo{lru: cache.NewLRU[*PathState](capacity)}
}

// Stats snapshots the memo's hit/miss/eviction counters.
func (m *ConvMemo) Stats() cache.Stats { return m.lru.Stats() }

// memoKey is the exact identity of a prefix state. The departure is
// formatted losslessly ('b' is exact for float64), so distinct
// departures never alias.
func memoKey(pathKey string, t float64, opt QueryOptions) string {
	return pathKey + "@" + strconv.FormatFloat(t, 'b', -1, 64) +
		"/" + string(opt.Method) + "#" + strconv.Itoa(opt.RankCap)
}

// memoizable reports whether the method has an incremental (chain)
// evaluator; RD's random decomposition does not.
func memoizable(m Method) bool {
	return m == MethodOD || m == MethodHP || m == MethodLB
}

// MemoStartPath is StartPath through the memo: a hit returns the
// stored single-edge state, a miss computes and stores it. A nil memo
// degrades to plain StartPath.
func (h *HybridGraph) MemoStartPath(m *ConvMemo, e graph.EdgeID, t float64, opt QueryOptions) (*PathState, error) {
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if m == nil || !memoizable(opt.Method) {
		return h.StartPath(e, t, opt)
	}
	key := memoKey((graph.Path{e}).Key(), t, opt)
	if s, ok := m.lru.Get(key); ok {
		return s, nil
	}
	s, err := h.StartPath(e, t, opt)
	if err != nil {
		return nil, err
	}
	m.lru.Put(key, s)
	return s, nil
}

// MemoExtendPath is ExtendPath through the memo: a hit returns the
// stored state for the extended path — one map lookup instead of a
// convolution step — and a miss extends s and stores the result. A nil
// memo degrades to plain ExtendPath.
func (h *HybridGraph) MemoExtendPath(m *ConvMemo, s *PathState, e graph.EdgeID) (*PathState, error) {
	if m == nil || !memoizable(s.opt.Method) {
		return h.ExtendPath(s, e)
	}
	np := make(graph.Path, len(s.path)+1)
	copy(np, s.path)
	np[len(s.path)] = e
	key := memoKey(np.Key(), s.t, s.opt)
	if ns, ok := m.lru.Get(key); ok {
		return ns, nil
	}
	ns, err := h.ExtendPath(s, e)
	if err != nil {
		return nil, err
	}
	m.lru.Put(key, ns)
	return ns, nil
}

// MemoPathState evaluates path p departing at t through the memo: it
// resumes from the longest memoized prefix of p and extends one edge
// at a time, storing every intermediate prefix state so later queries
// (longer paths, sibling branches, other batch entries) can resume
// even deeper.
func (h *HybridGraph) MemoPathState(m *ConvMemo, p graph.Path, t float64, opt QueryOptions) (*PathState, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("core: cannot evaluate an empty path")
	}
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if m == nil || !memoizable(opt.Method) {
		var st *PathState
		var err error
		for i, e := range p {
			if i == 0 {
				st, err = h.StartPath(e, t, opt)
			} else {
				st, err = h.ExtendPath(st, e)
			}
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	var st *PathState
	base := 0
	// Longest-prefix probe. Peek keeps the scan out of the hit/miss
	// counters and its value is what we commit to — the follow-up Get
	// only counts the logical hit and refreshes recency, so a
	// concurrent eviction between the two calls costs a stats blip,
	// never a wrong base.
	for n := len(p); n >= 1; n-- {
		key := memoKey(p[:n].Key(), t, opt)
		if s, ok := m.lru.Peek(key); ok {
			st, base = s, n
			m.lru.Get(key)
			break
		}
	}
	if st == nil {
		m.lru.Get(memoKey(p.Key(), t, opt)) // count the cold miss
	}
	var err error
	for i := base; i < len(p); i++ {
		if st == nil {
			st, err = h.StartPath(p[0], t, opt)
		} else {
			st, err = h.ExtendPath(st, p[i])
		}
		if err != nil {
			return nil, err
		}
		m.lru.Put(memoKey(p[:i+1].Key(), t, opt), st)
	}
	return st, nil
}

// CostDistributionMemo is CostDistribution through the memo. Results
// are byte-identical to the unmemoized call: the chain evaluator
// applies exactly the operations Evaluate applies, the memoized
// states it resumes from were produced by those same operations, and
// the single-factor shortcut below mirrors Evaluate's. Methods
// without an incremental evaluator (RD) and a nil memo fall through
// to CostDistribution unchanged.
//
// Timing in the result reflects only work this call actually did: a
// deep prefix hit reports a near-zero JC, which is the point.
func (h *HybridGraph) CostDistributionMemo(m *ConvMemo, p graph.Path, t float64, opt QueryOptions) (*QueryResult, error) {
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if m == nil || !memoizable(opt.Method) {
		return h.CostDistribution(p, t, opt)
	}
	t0 := time.Now()
	st, err := h.MemoPathState(m, p, t, opt)
	if err != nil {
		return nil, err
	}
	de := st.de
	res := &QueryResult{
		Decomp: de,
		Stats:  EvalStats{Factors: len(de.Vars)},
	}
	if len(de.Vars) == 1 {
		// Single-factor parity: Evaluate answers a fully covered query
		// with the variable's own distribution, not the folded chain
		// state — and skipping DistErr here leaves the state's lazy
		// marginal unpaid on the short-path hot case.
		v := de.Vars[0]
		if v.Hist != nil {
			res.Dist = v.Hist
		} else {
			out, err := v.Joint.SumHistogram(h.Params.MaxResultBuckets)
			if err != nil {
				return nil, err
			}
			res.Dist = out
		}
	} else {
		dist, err := st.DistErr()
		if err != nil {
			return nil, err
		}
		res.Dist = dist
	}
	res.Stats.ResultBuckets = res.Dist.NumBuckets()
	res.Timing = Timing{JC: time.Since(t0)}
	return res, nil
}
