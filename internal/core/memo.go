package core

import (
	"strconv"

	"repro/internal/cache"
	"repro/internal/graph"
)

// ConvMemo is the incremental sub-path convolution engine: a
// prefix-keyed memo of PathStates layered on the internal/cache LRU.
// Evaluating an n-edge path runs a chain of factor convolutions
// (Equation 2); candidate paths explored from one source — by the
// routing DFS, by the queries of one /v1/batch request, or by
// successive PathDistribution calls — share long prefixes, and the
// memo lets each "prefix + one more edge" step reuse the stored chain
// state of the prefix instead of re-deriving the whole path.
//
// Keys are exact: (path signature, departure time, method, rank cap).
// Unlike the α-interval query cache, two departures in the same
// interval do NOT share a memo entry — the shift-and-enlarge windows
// of Eq. 3 depend on the exact departure — so memoized results are
// byte-identical to unmemoized ones, never approximate.
//
// A ConvMemo is safe for concurrent use: the LRU shards its locks and
// the memoized PathStates are immutable after construction (every
// chain operation builds new states). One memo may be shared by any
// number of concurrent routing and distribution queries.
type ConvMemo struct {
	lru *cache.LRU[*PathState]
	// prefix namespaces every key with the model epoch the entries
	// were computed against (see ForEpoch). Empty for a standalone
	// memo, whose entries then have no epoch identity.
	prefix string
}

// NewConvMemo builds a memo holding at most capacity prefix states.
// capacity < 1 is treated as 1.
func NewConvMemo(capacity int) *ConvMemo {
	return &ConvMemo{lru: cache.NewLRU[*PathState](capacity)}
}

// ForEpoch returns a view of the memo whose keys carry the given
// epoch sequence number. Views share the underlying LRU — its
// capacity, shards and statistics — but entries written through one
// epoch's view are invisible to every other epoch: publishing a new
// model invalidates logically, with stale entries aging out of the
// shared LRU instead of being flushed wholesale.
func (m *ConvMemo) ForEpoch(seq uint64) *ConvMemo {
	return &ConvMemo{lru: m.lru, prefix: "e" + strconv.FormatUint(seq, 10) + "|"}
}

// key namespaces the exact prefix-state identity with the view's
// epoch.
func (m *ConvMemo) key(pathKey string, t float64, opt QueryOptions) string {
	return m.prefix + memoKey(pathKey, t, opt)
}

// Stats snapshots the memo's hit/miss/eviction counters.
func (m *ConvMemo) Stats() cache.Stats { return m.lru.Stats() }

// memoKey is the exact identity of a prefix state. The departure is
// formatted losslessly ('b' is exact for float64), so distinct
// departures never alias.
func memoKey(pathKey string, t float64, opt QueryOptions) string {
	return pathKey + "@" + strconv.FormatFloat(t, 'b', -1, 64) +
		"/" + string(opt.Method) + "#" + strconv.Itoa(opt.RankCap)
}

// memoizable reports whether the method has an incremental (chain)
// evaluator; RD's random decomposition does not.
func memoizable(m Method) bool {
	return m == MethodOD || m == MethodHP || m == MethodLB
}

// MemoStartPath is StartPath through the memo: a hit returns the
// stored single-edge state, a miss computes and stores it. A nil memo
// degrades to plain StartPath.
func (h *HybridGraph) MemoStartPath(m *ConvMemo, e graph.EdgeID, t float64, opt QueryOptions) (*PathState, error) {
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if m == nil || !memoizable(opt.Method) {
		return h.StartPath(e, t, opt)
	}
	key := m.key((graph.Path{e}).Key(), t, opt)
	if s, ok := m.lru.Get(key); ok {
		return s, nil
	}
	s, err := h.StartPath(e, t, opt)
	if err != nil {
		return nil, err
	}
	m.lru.Put(key, s)
	return s, nil
}

// MemoExtendPath is ExtendPath through the memo: a hit returns the
// stored state for the extended path — one map lookup instead of a
// convolution step — and a miss extends s and stores the result. A nil
// memo degrades to plain ExtendPath.
func (h *HybridGraph) MemoExtendPath(m *ConvMemo, s *PathState, e graph.EdgeID) (*PathState, error) {
	if m == nil || !memoizable(s.opt.Method) {
		return h.ExtendPath(s, e)
	}
	np := make(graph.Path, len(s.path)+1)
	copy(np, s.path)
	np[len(s.path)] = e
	key := m.key(np.Key(), s.t, s.opt)
	if ns, ok := m.lru.Get(key); ok {
		return ns, nil
	}
	ns, err := h.ExtendPath(s, e)
	if err != nil {
		return nil, err
	}
	m.lru.Put(key, ns)
	return ns, nil
}

// MemoPathState evaluates path p departing at t through the memo: it
// resumes from the longest memoized prefix of p and extends one edge
// at a time, storing every intermediate prefix state so later queries
// (longer paths, sibling branches, other batch entries) can resume
// even deeper.
//
// The longest-prefix probe (in PathStateWith) Peeks during the scan
// and Gets only the committed base, so one logical query counts one
// hit or miss however deep the scan went; a concurrent eviction
// between the Peek and the Get costs a stats blip, never a wrong base.
func (h *HybridGraph) MemoPathState(m *ConvMemo, p graph.Path, t float64, opt QueryOptions) (*PathState, error) {
	return h.PathStateWith(nil, m, p, t, opt)
}

// CostDistributionMemo is CostDistribution through the memo. Results
// are byte-identical to the unmemoized call: the chain evaluator
// applies exactly the operations Evaluate applies, the memoized
// states it resumes from were produced by those same operations, and
// the single-factor shortcut below mirrors Evaluate's. Methods
// without an incremental evaluator (RD) and a nil memo fall through
// to CostDistribution unchanged.
//
// Timing in the result reflects only work this call actually did: a
// deep prefix hit reports a near-zero JC, which is the point.
func (h *HybridGraph) CostDistributionMemo(m *ConvMemo, p graph.Path, t float64, opt QueryOptions) (*QueryResult, error) {
	return h.CostDistributionWith(nil, m, p, t, opt)
}
