package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

// reloadModel writes h (and syn, possibly nil) to a buffer and reads
// both back against g.
func reloadModel(t *testing.T, h *HybridGraph, syn *SynopsisStore, g *graph.Graph) (*HybridGraph, *SynopsisStore) {
	t.Helper()
	var buf bytes.Buffer
	if err := h.WriteModelSynopsis(&buf, syn); err != nil {
		t.Fatal(err)
	}
	h2, syn2, err := ReadHybridSynopsis(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	return h2, syn2
}

// buildFixtureSynopsis trains a model plus a synopsis over its full
// query chain — the shared setup of the serialization tests.
func buildFixtureSynopsis(t *testing.T) (*graph.Graph, *HybridGraph, *SynopsisStore) {
	t.Helper()
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Path{0, 1, 2, 3, 4}
	var workload []WorkloadQuery
	for n := 2; n <= len(full); n++ {
		workload = append(workload, WorkloadQuery{Path: full[:n], Depart: 8 * 3600})
	}
	syn, err := h.BuildSynopsis(workload, SynopsisConfig{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() == 0 {
		t.Fatal("fixture synopsis is empty")
	}
	return g, h, syn
}

// Old-format files (no synopsis section) must load with a nil
// synopsis — the backward-compatibility contract.
func TestModelWithoutSynopsisLoadsEmpty(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	h2, syn, err := ReadHybridSynopsis(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if syn != nil {
		t.Fatalf("plain model produced a synopsis: %+v", syn.Stats())
	}
	if h2.Stats().TotalVariables() != h.Stats().TotalVariables() {
		t.Fatal("variables lost")
	}
}

// New-format files must round-trip byte-identically: write → read →
// write reproduces the file exactly, for the model records (whose
// reader validates instead of renormalizing) and the synopsis section
// (sorted entries, lossless floats) alike.
func TestModelSynopsisRoundTripByteIdentical(t *testing.T) {
	g, h, syn := buildFixtureSynopsis(t)
	var buf1 bytes.Buffer
	if err := h.WriteModelSynopsis(&buf1, syn); err != nil {
		t.Fatal(err)
	}
	h2, syn2, err := ReadHybridSynopsis(bytes.NewReader(buf1.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if syn2 == nil || syn2.Len() != syn.Len() || syn2.Bytes() != syn.Bytes() {
		t.Fatalf("synopsis changed across the round trip: %d/%d entries, %d/%d bytes",
			synLen(syn2), syn.Len(), synBytes(syn2), syn.Bytes())
	}
	var buf2 bytes.Buffer
	if err := h2.WriteModelSynopsis(&buf2, syn2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		a, b := buf1.String(), buf2.String()
		line := 1
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("write→read→write differs at byte %d (line %d)", i, line)
			}
			if a[i] == '\n' {
				line++
			}
		}
		t.Fatalf("write→read→write differs in length: %d vs %d bytes", len(a), len(b))
	}
}

// A plain model (no synopsis) must also round-trip byte-identically —
// the lossless-reader guarantee is independent of the new section.
func TestPlainModelRoundTripByteIdentical(t *testing.T) {
	g, data, params := table1Fixture(t)
	h, err := Build(g, data, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := h.WriteModel(&buf1); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHybrid(bytes.NewReader(buf1.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := h2.WriteModel(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("plain model write→read→write is not byte-identical")
	}
}

func synLen(s *SynopsisStore) int {
	if s == nil {
		return -1
	}
	return s.Len()
}

func synBytes(s *SynopsisStore) int {
	if s == nil {
		return -1
	}
	return s.bytes
}

// Corrupting or truncating the synopsis section must produce a
// descriptive error — never a panic, never a silently partial store.
func TestSynopsisCorruptionErrors(t *testing.T) {
	g, h, syn := buildFixtureSynopsis(t)
	var buf bytes.Buffer
	if err := h.WriteModelSynopsis(&buf, syn); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	headerAt := strings.Index(good, synopsisVersion)
	if headerAt < 0 {
		t.Fatal("no synopsis section in fixture file")
	}

	cases := []struct {
		name string
		file string
	}{
		{"unknown version", strings.Replace(good, synopsisVersion, "synopsis-v99", 1)},
		{"truncated after header", good[:headerAt+len(synopsisVersion)+8]},
		{"truncated mid-entry", good[:headerAt+(len(good)-headerAt)/2]},
		{"missing trailer", strings.Replace(good, "end-synopsis\n", "", 1)},
		{"garbage entry count", regexpReplaceHeader(good, headerAt, "synopsis-v1 zork OD 0")},
		{"negative entry count", regexpReplaceHeader(good, headerAt, "synopsis-v1 -3 OD 0")},
		{"non-incremental method", regexpReplaceHeader(good, headerAt, regexpHeaderWithMethod(good, headerAt, "RD"))},
		{"cell index out of range", replaceFirstCellIndex(good, headerAt)},
		{"garbage depart", replaceFirstSynField(good, headerAt, 2, "not-a-number")},
		{"factor not in model", replaceFirstFactorInterval(good, headerAt)},
		{"factor position overflows", replaceFirstFactorPos(good, headerAt, "9223372036854775807")},
		{"factor position negative", replaceFirstFactorPos(good, headerAt, "-1")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.file == good {
				t.Fatal("mutation did not change the file")
			}
			_, _, err := ReadHybridSynopsis(strings.NewReader(tc.file), g)
			if err == nil {
				t.Fatal("corrupt synopsis loaded without error")
			}
			if len(err.Error()) < 10 {
				t.Fatalf("error %q is not descriptive", err)
			}
		})
	}
}

// regexpReplaceHeader swaps the synopsis header line for repl.
func regexpReplaceHeader(file string, headerAt int, repl string) string {
	end := strings.IndexByte(file[headerAt:], '\n')
	return file[:headerAt] + repl + file[headerAt+end:]
}

// regexpHeaderWithMethod rewrites only the method field of the header.
func regexpHeaderWithMethod(file string, headerAt int, method string) string {
	end := strings.IndexByte(file[headerAt:], '\n')
	f := strings.Fields(file[headerAt : headerAt+end])
	f[2] = method
	return strings.Join(f, " ")
}

// replaceFirstSynField rewrites field i of the first "syn" record.
func replaceFirstSynField(file string, headerAt int, i int, repl string) string {
	at := strings.Index(file[headerAt:], "\nsyn ")
	if at < 0 {
		return file
	}
	at += headerAt + 1
	end := strings.IndexByte(file[at:], '\n')
	f := strings.Fields(file[at : at+end])
	f[i] = repl
	return file[:at] + strings.Join(f, " ") + file[at+end:]
}

// replaceFirstCellIndex corrupts the first cell record of the first
// chain state so its index exceeds the dimension's bucket count.
func replaceFirstCellIndex(file string, headerAt int) string {
	at := strings.Index(file[headerAt:], "\nc ")
	if at < 0 {
		return file
	}
	at += headerAt + 1
	// Skip the "c <n>" line; the next line is the first cell.
	nl := strings.IndexByte(file[at:], '\n')
	cell := at + nl + 1
	end := strings.IndexByte(file[cell:], '\n')
	f := strings.Fields(file[cell : cell+end])
	f[0] = "60000"
	return file[:cell] + strings.Join(f, " ") + file[cell+end:]
}

// replaceFirstFactorPos rewrites the first factor's query position —
// huge values used to overflow Decomposition.Validate's bound check
// and panic instead of erroring.
func replaceFirstFactorPos(file string, headerAt int, pos string) string {
	for _, tag := range []string{"\nv ", "\nu "} {
		at := strings.Index(file[headerAt:], tag)
		if at < 0 {
			continue
		}
		at += headerAt + 1
		end := strings.IndexByte(file[at:], '\n')
		f := strings.Fields(file[at : at+end])
		f[1] = pos
		return file[:at] + strings.Join(f, " ") + file[at+end:]
	}
	return file
}

// replaceFirstFactorInterval points the first trajectory-backed factor
// at an interval the model does not hold.
func replaceFirstFactorInterval(file string, headerAt int) string {
	at := strings.Index(file[headerAt:], "\nv ")
	if at < 0 {
		return file
	}
	at += headerAt + 1
	end := strings.IndexByte(file[at:], '\n')
	f := strings.Fields(file[at : at+end])
	f[3] = "424242"
	return file[:at] + strings.Join(f, " ") + file[at+end:]
}
