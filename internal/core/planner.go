package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// BatchPlanner is the batch-aware query planner: given the N query
// paths of one batch, it eliminates their common sub-expressions —
// the shared sub-path convolutions Equation 2 composes every answer
// from — instead of letting each query rediscover shared prefixes
// through the memo cache. All paths are decomposed edge-wise into a
// prefix trie; every interior node carries a refcount of the queries
// traversing it; and each node's chain state is evaluated exactly
// once (probing synopsis → memo → compute, the same order the *With
// entry points use), in dependency order across a bounded worker
// pool. Per-query results come out in input order and are
// byte-identical to independent evaluation: node states are built by
// the same StartPath/ExtendPath chain operations, and the final
// marginal is derived by the same stateResult the single-query path
// uses.
//
// A BatchPlanner is immutable after construction and safe for
// concurrent use; each Distributions/ExtendAll call runs its own
// worker pool.
type BatchPlanner struct {
	h       *HybridGraph
	workers int
}

// NewBatchPlanner builds a planner over h whose evaluation runs on at
// most workers goroutines; workers ≤ 0 means GOMAXPROCS. workers == 1
// still plans (the CSE win is independent of parallelism) but
// evaluates serially.
func NewBatchPlanner(h *HybridGraph, workers int) *BatchPlanner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &BatchPlanner{h: h, workers: workers}
}

// Workers returns the planner's worker-pool bound.
func (bp *BatchPlanner) Workers() int { return bp.workers }

// Hybrid returns the model the planner evaluates against; an
// epoch-versioned System uses this to detect a planner built for an
// older model snapshot.
func (bp *BatchPlanner) Hybrid() *HybridGraph { return bp.h }

// PlanQuery is one entry of a batch handed to the planner.
type PlanQuery struct {
	Path   graph.Path
	Depart float64
	Opt    QueryOptions
}

// PlanResult is one entry's outcome, in input order. Exactly one of
// Res and Err is set.
type PlanResult struct {
	Res *QueryResult
	Err error
}

// PlanStats instruments one planned batch. Independent evaluation of
// a batch runs one chain step (StartPath or ExtendPath) per query
// edge — IndependentSteps in total; the planner runs Convolutions of
// them (one per trie node not answered by a probe), so
// IndependentSteps − Convolutions − ProbeHits is the work sharing
// eliminated outright.
type PlanStats struct {
	// Queries is the batch size; Planned of them entered the trie,
	// Fallback were evaluated independently (methods without an
	// incremental evaluator, e.g. RD, cannot share chain states).
	Queries, Planned, Fallback int
	// Nodes is the number of distinct trie nodes (unique sub-path
	// convolutions the batch needs); SharedNodes of them are traversed
	// by more than one query.
	Nodes, SharedNodes int
	// Convolutions counts chain steps actually executed; ProbeHits
	// counts nodes answered by the synopsis or the memo with no chain
	// step at all.
	Convolutions, ProbeHits int
	// IndependentSteps is Σ len(path) over planned queries — the chain
	// steps independent (plain) evaluation would run.
	IndependentSteps int
}

// SavedSteps returns the chain steps the plan avoided versus
// independent plain evaluation.
func (s PlanStats) SavedSteps() int {
	saved := s.IndependentSteps - s.Convolutions - s.ProbeHits
	if saved < 0 {
		saved = 0
	}
	return saved
}

// planNode is one trie node: the chain state of one sub-path prefix,
// shared by every query whose path runs through it.
type planNode struct {
	prefix   graph.Path // aliases the first inserting query's backing array (read-only)
	parent   *planNode  // nil for depth-1 nodes
	children []*planNode
	refs     int   // queries whose paths traverse this node
	ends     []int // query indices whose full path ends exactly here
	state    *PathState
	err      error
}

// planGroup is one trie: nodes are only shared between queries with
// identical (departure, method, rank cap) — the exact-identity rule
// the memo and synopsis keys already enforce.
type planGroup struct {
	t     float64
	opt   QueryOptions
	roots map[graph.EdgeID]*planNode
}

// planCounters aggregates scheduler-side stats race-free.
type planCounters struct {
	convolutions atomic.Int64
	probeHits    atomic.Int64
}

// Distributions plans and answers a batch of distribution queries.
// Results are positional: out[i] answers queries[i], byte-identical
// to CostDistributionWith(syn, memo, …) on the same stores. Either
// store may be nil. A query whose evaluation fails gets a per-entry
// error; the failure never poisons trie nodes other queries share
// (only the failing node's own subtree inherits it). ctx cancellation
// abandons nodes not yet evaluated, surfacing ctx.Err() on the
// affected entries.
//
// Each planned entry's Timing reports the batch's shared evaluation
// elapsed (the plan evaluates nodes for many queries at once, so
// per-entry attribution is not meaningful).
func (bp *BatchPlanner) Distributions(ctx context.Context, syn *SynopsisStore, memo *ConvMemo, queries []PlanQuery) ([]PlanResult, PlanStats) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	out := make([]PlanResult, len(queries))
	var stats PlanStats
	stats.Queries = len(queries)

	// Build the tries: one per (depart, method, rankcap) group.
	groups := make(map[string]*planGroup)
	var groupKeys []string // deterministic iteration
	var fallback []int
	total := 0 // nodes across all groups
	for i, q := range queries {
		opt := q.Opt
		if opt.Method == "" {
			opt.Method = MethodOD
		}
		if len(q.Path) == 0 {
			out[i] = PlanResult{Err: fmt.Errorf("core: cannot evaluate an empty path")}
			continue
		}
		if !memoizable(opt.Method) {
			fallback = append(fallback, i)
			continue
		}
		stats.Planned++
		stats.IndependentSteps += len(q.Path)
		gk := memoKey("", q.Depart, opt)
		g, ok := groups[gk]
		if !ok {
			g = &planGroup{t: q.Depart, opt: opt, roots: make(map[graph.EdgeID]*planNode)}
			groups[gk] = g
			groupKeys = append(groupKeys, gk)
		}
		// Walk/create the node chain for q.Path.
		var node *planNode
		for n := 1; n <= len(q.Path); n++ {
			e := q.Path[n-1]
			var next *planNode
			if node == nil {
				next = g.roots[e]
			} else {
				for _, c := range node.children {
					if c.prefix[n-1] == e {
						next = c
						break
					}
				}
			}
			if next == nil {
				next = &planNode{prefix: q.Path[:n], parent: node}
				if node == nil {
					g.roots[e] = next
				} else {
					node.children = append(node.children, next)
				}
				total++
			}
			next.refs++
			node = next
		}
		node.ends = append(node.ends, i)
	}
	sort.Strings(groupKeys)

	// Evaluate the tries: dependency order (a node is ready once its
	// parent is done), bounded workers, no barriers between levels.
	var ctr planCounters
	if total > 0 {
		ready := make(chan evalTask, total)
		var wg sync.WaitGroup
		wg.Add(total)
		for _, gk := range groupKeys {
			g := groups[gk]
			for _, e := range sortedRootEdges(g.roots) {
				ready <- evalTask{node: g.roots[e], group: g}
			}
		}
		go func() { wg.Wait(); close(ready) }()
		workers := bp.workers
		if workers > total {
			workers = total
		}
		var pool sync.WaitGroup
		for w := 0; w < workers; w++ {
			pool.Add(1)
			go func() {
				defer pool.Done()
				for task := range ready {
					bp.evalNode(ctx, syn, memo, task.group, task.node, &ctr)
					// The node's fields are fully written before its
					// children are enqueued, so the channel's
					// happens-before edge publishes them to whichever
					// worker picks a child up.
					for _, c := range task.node.children {
						ready <- evalTask{node: c, group: task.group}
					}
					wg.Done()
				}
			}()
		}
		pool.Wait()
	}

	// Assemble positional results.
	for _, gk := range groupKeys {
		g := groups[gk]
		var walk func(n *planNode)
		walk = func(n *planNode) {
			if n.refs > 1 {
				stats.SharedNodes++
			}
			for _, qi := range n.ends {
				if n.err != nil {
					out[qi] = PlanResult{Err: n.err}
					continue
				}
				res, err := bp.h.stateResult(n.state)
				if err != nil {
					out[qi] = PlanResult{Err: err}
					continue
				}
				res.Timing = Timing{JC: time.Since(t0)}
				out[qi] = PlanResult{Res: res}
			}
			for _, c := range n.children {
				walk(c)
			}
		}
		for _, e := range sortedRootEdges(g.roots) {
			walk(g.roots[e])
		}
	}

	// Fallback queries (no incremental evaluator): evaluate
	// independently, still on a bounded pool.
	if len(fallback) > 0 {
		stats.Fallback = len(fallback)
		workers := bp.workers
		if workers > len(fallback) {
			workers = len(fallback)
		}
		idx := make(chan int, len(fallback))
		for _, i := range fallback {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if err := ctx.Err(); err != nil {
						out[i] = PlanResult{Err: err}
						continue
					}
					res, err := bp.h.CostDistribution(queries[i].Path, queries[i].Depart, queries[i].Opt)
					out[i] = PlanResult{Res: res, Err: err}
				}
			}()
		}
		wg.Wait()
	}

	stats.Nodes = total
	stats.Convolutions = int(ctr.convolutions.Load())
	stats.ProbeHits = int(ctr.probeHits.Load())
	return out, stats
}

type evalTask struct {
	node  *planNode
	group *planGroup
}

func sortedRootEdges(roots map[graph.EdgeID]*planNode) []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(roots))
	for e := range roots {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// evalNode computes one trie node's chain state: probe the synopsis,
// then the memo, then extend the parent's state by one edge — exactly
// the StartPathWith/ExtendPathWith order, so planned states are the
// states independent evaluation would build. A failing node records
// its error; descendants inherit it (they cannot be evaluated without
// the parent state) but siblings and ancestors are untouched — one
// unanswerable query never poisons the sub-paths it shares with valid
// ones.
func (bp *BatchPlanner) evalNode(ctx context.Context, syn *SynopsisStore, memo *ConvMemo, g *planGroup, n *planNode, ctr *planCounters) {
	if n.parent != nil && n.parent.err != nil {
		n.err = n.parent.err
		return
	}
	if err := ctx.Err(); err != nil {
		n.err = err
		return
	}
	// Synopsis keys carry no epoch tag (the store is rebuilt per
	// epoch); the memo may be an epoch-scoped view of a shared LRU, so
	// its probes go through the view's prefixed key.
	key := memoKey(n.prefix.Key(), g.t, g.opt)
	if syn != nil {
		if s, ok := syn.lookupKey(key); ok {
			n.state = s
			ctr.probeHits.Add(1)
			bp.primeDist(n)
			return
		}
	}
	if memo != nil {
		if s, ok := memo.lru.Get(memo.prefix + key); ok {
			n.state = s
			ctr.probeHits.Add(1)
			bp.primeDist(n)
			return
		}
	}
	var s *PathState
	var err error
	if n.parent == nil {
		s, err = bp.h.StartPath(n.prefix[0], g.t, g.opt)
	} else {
		s, err = bp.h.ExtendPath(n.parent.state, n.prefix[len(n.prefix)-1])
	}
	if err != nil {
		n.err = err
		return
	}
	n.state = s
	ctr.convolutions.Add(1)
	if memo != nil {
		memo.lru.Put(memo.prefix+key, s)
	}
	bp.primeDist(n)
}

// primeDist derives the cost marginal of end nodes inside the worker
// pool, so the sequential result-assembly pass only reads memoized
// Once values. Errors are left for stateResult to surface per query.
func (bp *BatchPlanner) primeDist(n *planNode) {
	if len(n.ends) > 0 && len(n.state.de.Vars) > 1 {
		_, _ = n.state.DistErr()
	}
}

// ExtendAll evaluates the sibling extensions of one shared parent
// state concurrently — the DFS-frontier form of batch planning: the
// expansions of one routing search node are an implicit batch whose
// common sub-expression is the parent's chain state. parent == nil
// starts fresh single-edge states. Each extension goes through the
// regular StartPathWith/ExtendPathWith entry points (synopsis → memo
// → compute), so results are byte-identical to sequential expansion.
// Positional: states[i]/errs[i] answer edges[i].
func (bp *BatchPlanner) ExtendAll(syn *SynopsisStore, memo *ConvMemo, parent *PathState, t float64, opt QueryOptions, edges []graph.EdgeID) ([]*PathState, []error) {
	states := make([]*PathState, len(edges))
	errs := make([]error, len(edges))
	workers := bp.workers
	if workers > len(edges) {
		workers = len(edges)
	}
	if workers <= 1 {
		for i, e := range edges {
			states[i], errs[i] = bp.extendOne(syn, memo, parent, t, opt, e)
		}
		return states, errs
	}
	idx := make(chan int, len(edges))
	for i := range edges {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				states[i], errs[i] = bp.extendOne(syn, memo, parent, t, opt, edges[i])
			}
		}()
	}
	wg.Wait()
	return states, errs
}

func (bp *BatchPlanner) extendOne(syn *SynopsisStore, memo *ConvMemo, parent *PathState, t float64, opt QueryOptions, e graph.EdgeID) (*PathState, error) {
	var s *PathState
	var err error
	if parent == nil {
		s, err = bp.h.StartPathWith(syn, memo, e, t, opt)
	} else {
		s, err = bp.h.ExtendPathWith(syn, memo, parent, e)
	}
	if err != nil {
		return nil, err
	}
	// Routing consumers read every extension's marginal immediately;
	// deriving it here keeps that work on the pool too. DistErr is
	// memoized, so this costs nothing when the consumer re-asks, and
	// errors are left for the consumer to surface in loop order.
	_, _ = s.DistErr()
	return s, nil
}
