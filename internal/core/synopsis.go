package core

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// SynopsisStore is the offline sub-path synopsis: a read-only set of
// pre-materialized PathStates for the sub-paths a workload reuses
// most, selected under an entry/byte budget and persisted with the
// model (WriteModelSynopsis/ReadHybridSynopsis). Where the runtime
// ConvMemo warms up lazily — every cold server start and every evicted
// prefix pays full convolution cost again — the synopsis is trained
// once, ships inside the model file, and answers its sub-paths with
// zero convolutions from the first query onward.
//
// Entries are keyed exactly like memo entries: (path signature, exact
// departure time, method, rank cap), so synopsis-backed answers are
// byte-identical to unmemoized evaluation, never approximate. A store
// is immutable after BuildSynopsis or load; the hit/miss counters are
// atomic, so one store may serve any number of concurrent queries.
type SynopsisStore struct {
	opt     QueryOptions
	entries map[string]*PathState
	// keys lists the entry keys in sorted order so serialization and
	// inspection are deterministic.
	keys  []string
	bytes int

	report SynopsisReport

	hits, misses atomic.Uint64
}

// WorkloadQuery is one observation of a query log (or one synthetic
// stand-in): a path queried at a departure time, with an optional
// multiplicity. BuildSynopsis scores candidate sub-paths by how much
// convolution work across the whole workload they would absorb.
type WorkloadQuery struct {
	Path   graph.Path
	Depart float64
	// Weight is the query's multiplicity in the log; 0 counts as 1.
	Weight int
}

// SynopsisConfig tunes the offline selection pass.
type SynopsisConfig struct {
	// MaxEntries is the entry budget (required, > 0).
	MaxEntries int
	// MaxBytes bounds the serialized size of the selected entries;
	// 0 means unbounded. Candidates that would overflow the remaining
	// byte budget are skipped, not truncated.
	MaxBytes int
	// Method and RankCap fix the query options the synopsis serves
	// (entries only match queries with the same options). Method ""
	// means OD; RD has no incremental evaluator and is rejected.
	Method  Method
	RankCap int
	// MinDepth is the smallest prefix cardinality worth materializing
	// (0 means 2: single-edge states save too little to spend budget
	// on unless explicitly requested).
	MinDepth int
}

// SynopsisReport summarizes one selection pass.
type SynopsisReport struct {
	// Queries is the number of distinct (path, depart) workload
	// queries; Candidates the number of distinct candidate prefixes.
	Queries, Candidates int
	// Selected entries and their serialized Bytes.
	Selected int
	Bytes    int
	// SavedSteps is the workload-weighted number of per-edge chain
	// steps the selected entries absorb; TotalSteps is the workload's
	// total (the upper bound a perfect synopsis would reach).
	SavedSteps, TotalSteps int
}

// SynopsisStats is a point-in-time snapshot of a store's size and
// probe counters.
type SynopsisStats struct {
	Entries int
	Bytes   int
	Hits    uint64
	Misses  uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any probe.
func (s SynopsisStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func newSynopsisStore(opt QueryOptions) *SynopsisStore {
	return &SynopsisStore{opt: opt, entries: make(map[string]*PathState)}
}

// Len returns the number of materialized entries.
func (s *SynopsisStore) Len() int { return len(s.entries) }

// Bytes returns the serialized size of the store's entries.
func (s *SynopsisStore) Bytes() int { return s.bytes }

// Options returns the query options the store was built for.
func (s *SynopsisStore) Options() QueryOptions { return s.opt }

// Report returns the selection report (zero for loaded stores, whose
// selection ran in the training process).
func (s *SynopsisStore) Report() SynopsisReport { return s.report }

// Stats snapshots the store's size and probe counters.
func (s *SynopsisStore) Stats() SynopsisStats {
	return SynopsisStats{
		Entries: len(s.entries),
		Bytes:   s.bytes,
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
	}
}

// Keys returns the entry keys in sorted order (for inspection).
func (s *SynopsisStore) Keys() []string {
	return append([]string(nil), s.keys...)
}

// peek looks an exact key up without touching the probe counters.
func (s *SynopsisStore) peek(key string) (*PathState, bool) {
	st, ok := s.entries[key]
	return st, ok
}

// lookupKey is peek plus one hit-or-miss count — the single-probe
// primitive behind StartPathWith/ExtendPathWith.
func (s *SynopsisStore) lookupKey(key string) (*PathState, bool) {
	st, ok := s.entries[key]
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return st, ok
}

// Lookup returns the materialized state for exactly path p departing
// at t under opt, counting one probe.
func (s *SynopsisStore) Lookup(p graph.Path, t float64, opt QueryOptions) (*PathState, bool) {
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	return s.lookupKey(memoKey(p.Key(), t, opt))
}

// add registers a materialized entry. Callers keep keys unique.
func (s *SynopsisStore) add(key string, st *PathState, nbytes int) {
	s.entries[key] = st
	i := sort.SearchStrings(s.keys, key)
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
	s.bytes += nbytes
}

// --- budgeted selection ----------------------------------------------

// synCandidate is one candidate prefix: a sub-path some workload
// queries share, with the query indexes it would serve.
type synCandidate struct {
	key     string
	prefix  graph.Path
	depart  float64
	depth   int
	queries []int
}

// candHeap is a max-heap over cached marginal scores, ties broken by
// ascending key so selection is deterministic.
type candHeap []*candHeapItem

type candHeapItem struct {
	c     *synCandidate
	score int
}

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].c.key < h[j].c.key
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(*candHeapItem)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BuildSynopsis runs the offline selection pass: it enumerates every
// prefix of every workload query as a candidate, scores candidates by
// the chain steps they would absorb (weight × prefix depth, the
// frequency × convolution-depth-saved objective), and greedily selects
// the best marginal candidate until the entry or byte budget is
// exhausted. The marginal gain of a candidate shrinks as deeper
// prefixes of the same queries are selected (a query resumes from its
// deepest materialized prefix only), so selection uses a lazy greedy
// over the submodular coverage objective: popped candidates are
// re-scored against current coverage and re-queued unless they still
// dominate.
//
// Selected prefixes are materialized through a build-local ConvMemo,
// so overlapping candidates share their convolution work.
func (h *HybridGraph) BuildSynopsis(workload []WorkloadQuery, cfg SynopsisConfig) (*SynopsisStore, error) {
	opt := QueryOptions{Method: cfg.Method, RankCap: cfg.RankCap}
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if !memoizable(opt.Method) {
		return nil, fmt.Errorf("core: method %q has no incremental evaluator; a synopsis cannot serve it", opt.Method)
	}
	if cfg.MaxEntries <= 0 {
		return nil, fmt.Errorf("core: synopsis entry budget must be positive, got %d", cfg.MaxEntries)
	}
	minDepth := cfg.MinDepth
	if minDepth <= 0 {
		minDepth = 2
	}
	if len(workload) == 0 {
		return nil, fmt.Errorf("core: empty workload sample")
	}

	// Deduplicate the workload by exact (path, depart) identity.
	type wq struct {
		path   graph.Path
		depart float64
		weight int
	}
	qIndex := make(map[string]int)
	var qs []wq
	for _, q := range workload {
		if !h.G.ValidPath(q.Path) {
			return nil, fmt.Errorf("core: workload query %v is not a valid path", q.Path)
		}
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		key := memoKey(q.Path.Key(), q.Depart, opt)
		if i, ok := qIndex[key]; ok {
			qs[i].weight += w
			continue
		}
		qIndex[key] = len(qs)
		qs = append(qs, wq{path: q.Path.Clone(), depart: q.Depart, weight: w})
	}

	// Candidate prefixes, with the queries each would serve.
	cands := make(map[string]*synCandidate)
	for qi, q := range qs {
		for n := minDepth; n <= len(q.path); n++ {
			key := memoKey(q.path[:n].Key(), q.depart, opt)
			c, ok := cands[key]
			if !ok {
				c = &synCandidate{
					key: key, prefix: q.path[:n].Clone(),
					depart: q.depart, depth: n,
				}
				cands[key] = c
			}
			c.queries = append(c.queries, qi)
		}
	}

	syn := newSynopsisStore(opt)
	syn.report.Queries = len(qs)
	syn.report.Candidates = len(cands)
	for _, q := range qs {
		syn.report.TotalSteps += q.weight * len(q.path)
	}

	// covered[qi] is the depth of the deepest selected prefix of query
	// qi; a candidate's marginal gain is the extra depth it adds,
	// workload-weighted.
	covered := make([]int, len(qs))
	marginal := func(c *synCandidate) int {
		sum := 0
		for _, qi := range c.queries {
			if d := c.depth - covered[qi]; d > 0 {
				sum += qs[qi].weight * d
			}
		}
		return sum
	}

	pq := make(candHeap, 0, len(cands))
	for _, c := range cands {
		if s := marginal(c); s > 0 {
			pq = append(pq, &candHeapItem{c: c, score: s})
		}
	}
	heap.Init(&pq)

	buildMemo := NewConvMemo(4 * cfg.MaxEntries)
	for pq.Len() > 0 && len(syn.entries) < cfg.MaxEntries {
		it := heap.Pop(&pq).(*candHeapItem)
		fresh := marginal(it.c)
		if fresh <= 0 {
			continue
		}
		if pq.Len() > 0 && fresh < pq[0].score {
			// Stale score: coverage grew since this candidate was
			// queued. Cached scores only ever shrink, so re-queue with
			// the fresh score and keep popping.
			it.score = fresh
			heap.Push(&pq, it)
			continue
		}
		st, err := h.MemoPathState(buildMemo, it.c.prefix, it.c.depart, opt)
		if err != nil {
			return nil, fmt.Errorf("core: materializing synopsis entry %v: %w", it.c.prefix, err)
		}
		nbytes, err := synopsisEntryBytes(st)
		if err != nil {
			return nil, err
		}
		if cfg.MaxBytes > 0 && syn.bytes+nbytes > cfg.MaxBytes {
			continue // over the byte budget: drop, try smaller candidates
		}
		syn.add(it.c.key, st, nbytes)
		for _, qi := range it.c.queries {
			if it.c.depth > covered[qi] {
				covered[qi] = it.c.depth
			}
		}
	}
	for qi, q := range qs {
		syn.report.SavedSteps += q.weight * covered[qi]
	}
	syn.report.Selected = len(syn.entries)
	syn.report.Bytes = syn.bytes
	return syn, nil
}

// --- synopsis-aware evaluation ---------------------------------------
//
// These are the Memo* evaluators with one extra probe layer: the
// synopsis is consulted before the runtime ConvMemo (a synopsis hit
// costs zero convolutions and no LRU traffic), and a synopsis prefix
// composes with the memo — extensions beyond a synopsis base are
// memoized as usual. Either store may be nil; with both nil the plain
// evaluators run. The Memo* functions delegate here with a nil
// synopsis, so all four call sites share one code path and memoized,
// synopsis-backed and plain answers are byte-identical by
// construction.

// StartPathWith is StartPath through the synopsis then the memo.
func (h *HybridGraph) StartPathWith(syn *SynopsisStore, m *ConvMemo, e graph.EdgeID, t float64, opt QueryOptions) (*PathState, error) {
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if syn != nil && memoizable(opt.Method) {
		if s, ok := syn.lookupKey(memoKey((graph.Path{e}).Key(), t, opt)); ok {
			return s, nil
		}
	}
	return h.MemoStartPath(m, e, t, opt)
}

// ExtendPathWith is ExtendPath through the synopsis then the memo.
func (h *HybridGraph) ExtendPathWith(syn *SynopsisStore, m *ConvMemo, s *PathState, e graph.EdgeID) (*PathState, error) {
	if syn != nil && memoizable(s.opt.Method) {
		np := make(graph.Path, len(s.path)+1)
		copy(np, s.path)
		np[len(s.path)] = e
		if ns, ok := syn.lookupKey(memoKey(np.Key(), s.t, s.opt)); ok {
			return ns, nil
		}
	}
	return h.MemoExtendPath(m, s, e)
}

// PathStateWith evaluates path p departing at t, resuming from the
// deepest prefix state either store holds. Per query it counts one
// synopsis hit (the resumed base came from the synopsis) or one miss;
// every state derived past the base is offered to the memo so later
// queries resume deeper still.
func (h *HybridGraph) PathStateWith(syn *SynopsisStore, m *ConvMemo, p graph.Path, t float64, opt QueryOptions) (*PathState, error) {
	return h.pathStateCtx(nil, syn, m, p, t, opt)
}

// pathStateCtx is PathStateWith bounded by ctx: the deadline is
// checked before each edge derivation, so evaluation stops within one
// extend of the budget expiring. ctx stays a parameter — PathStates
// land in the memo and synopsis and outlive the request, so a stored
// context would poison every later query resuming from them. nil ctx
// means unbounded.
func (h *HybridGraph) pathStateCtx(ctx context.Context, syn *SynopsisStore, m *ConvMemo, p graph.Path, t float64, opt QueryOptions) (*PathState, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("core: cannot evaluate an empty path")
	}
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if (syn == nil && m == nil) || !memoizable(opt.Method) {
		var st *PathState
		var err error
		for i, e := range p {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if i == 0 {
				st, err = h.StartPath(e, t, opt)
			} else {
				st, err = h.ExtendPath(st, e)
			}
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	var st *PathState
	base := 0
	synBase := false
	// Longest-prefix probe across both stores; at equal depth the
	// synopsis wins (no LRU traffic, and the answer is identical). The
	// memo side peeks first and Gets only the committed base, exactly
	// as MemoPathState does (see the comment there). The two stores
	// key differently on purpose: a synopsis is rebuilt per epoch so
	// its keys carry no epoch tag, while the memo may be an
	// epoch-scoped view of an LRU shared across epochs.
	for n := len(p); n >= 1; n-- {
		key := memoKey(p[:n].Key(), t, opt)
		if syn != nil {
			if s, ok := syn.peek(key); ok {
				st, base, synBase = s, n, true
				break
			}
		}
		if m != nil {
			mkey := m.prefix + key
			if s, ok := m.lru.Peek(mkey); ok {
				st, base = s, n
				m.lru.Get(mkey)
				break
			}
		}
	}
	if syn != nil {
		if synBase {
			syn.hits.Add(1)
		} else {
			syn.misses.Add(1)
		}
	}
	if st == nil && m != nil {
		m.lru.Get(m.key(p.Key(), t, opt)) // count the cold miss
	}
	var err error
	for i := base; i < len(p); i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if st == nil {
			st, err = h.StartPath(p[0], t, opt)
		} else {
			st, err = h.ExtendPath(st, p[i])
		}
		if err != nil {
			return nil, err
		}
		if m != nil {
			m.lru.Put(m.key(p[:i+1].Key(), t, opt), st)
		}
	}
	return st, nil
}

// CostDistributionWith is CostDistribution through the synopsis and
// the memo; see CostDistributionMemo for the byte-identity argument,
// which applies unchanged (synopsis states were produced by the same
// chain operations the memo stores).
func (h *HybridGraph) CostDistributionWith(syn *SynopsisStore, m *ConvMemo, p graph.Path, t float64, opt QueryOptions) (*QueryResult, error) {
	return h.CostDistributionWithCtx(nil, syn, m, p, t, opt)
}

// CostDistributionWithCtx is CostDistributionWith bounded by ctx (see
// CostDistributionCtx for the deadline contract). nil ctx means
// unbounded.
func (h *HybridGraph) CostDistributionWithCtx(ctx context.Context, syn *SynopsisStore, m *ConvMemo, p graph.Path, t float64, opt QueryOptions) (*QueryResult, error) {
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	if (syn == nil && m == nil) || !memoizable(opt.Method) {
		return h.CostDistributionCtx(ctx, p, t, opt)
	}
	t0 := time.Now()
	st, err := h.pathStateCtx(ctx, syn, m, p, t, opt)
	if err != nil {
		return nil, err
	}
	res, err := h.stateResult(st)
	if err != nil {
		return nil, err
	}
	res.Timing = Timing{JC: time.Since(t0)}
	return res, nil
}

// stateResult converts a fully evaluated chain state into a
// QueryResult, mirroring Evaluate's single-factor shortcut. It is the
// one result-assembly path shared by CostDistributionWith and the
// batch planner, which is what makes planned and independent answers
// byte-identical by construction. Timing is left zero for the caller
// to fill.
func (h *HybridGraph) stateResult(st *PathState) (*QueryResult, error) {
	de := st.de
	res := &QueryResult{
		Decomp: de,
		Stats:  EvalStats{Factors: len(de.Vars)},
	}
	if len(de.Vars) == 1 {
		// Single-factor parity with Evaluate; see CostDistributionMemo.
		v := de.Vars[0]
		if v.Hist != nil {
			res.Dist = v.Hist
		} else {
			out, err := v.Joint.SumHistogram(h.Params.MaxResultBuckets)
			if err != nil {
				return nil, err
			}
			res.Dist = out
		}
	} else {
		dist, err := st.DistErr()
		if err != nil {
			return nil, err
		}
		res.Dist = dist
	}
	res.Stats.ResultBuckets = res.Dist.NumBuckets()
	return res, nil
}

// Rebuild produces the synopsis for a new model epoch: entries whose
// path the update provably did not affect (per the stale predicate,
// typically "shares an edge with the batch") are carried over by
// pointer — their chain states reference variables the new hybrid
// shares with the old one — and stale entries are re-materialized
// against the new hybrid. Entries that can no longer be materialized
// (their paths lost coverage, possible under decay) are dropped and
// counted. The receiver is unchanged and keeps serving the old epoch;
// hit/miss counters start fresh on the returned store.
func (s *SynopsisStore) Rebuild(h *HybridGraph, stale func(graph.Path) bool) (*SynopsisStore, SynopsisRebuildStats, error) {
	out := newSynopsisStore(s.opt)
	out.report = s.report
	var st SynopsisRebuildStats
	// A build-local memo so re-materialized entries share prefix work,
	// exactly as BuildSynopsis does.
	memo := NewConvMemo(4*len(s.entries) + 16)
	for _, key := range s.keys {
		entry := s.entries[key]
		if !stale(entry.path) {
			nbytes, err := synopsisEntryBytes(entry)
			if err != nil {
				return nil, st, err
			}
			out.add(key, entry, nbytes)
			st.Carried++
			continue
		}
		ns, err := h.MemoPathState(memo, entry.path, entry.t, entry.opt)
		if err != nil {
			st.Dropped++
			continue
		}
		nbytes, err := synopsisEntryBytes(ns)
		if err != nil {
			return nil, st, err
		}
		out.add(key, ns, nbytes)
		st.Rematerialized++
	}
	return out, st, nil
}

// SynopsisRebuildStats summarizes one per-epoch synopsis rebuild.
type SynopsisRebuildStats struct {
	// Carried entries were shared with the previous epoch unchanged;
	// Rematerialized were recomputed against the new model; Dropped
	// could no longer be materialized and were evicted.
	Carried, Rematerialized, Dropped int
}
