package core

import (
	"fmt"

	"repro/internal/gps"
	"repro/internal/hist"
)

// CostDomain selects which travel cost the distributions describe.
// Temporal relevance (shift-and-enlarge) always uses travel time,
// whichever domain the distributions are over.
type CostDomain int

// The two cost domains of the paper: travel time (seconds) and GHG
// emissions (grams).
const (
	DomainTime CostDomain = iota
	DomainEmissions
)

// String names the domain.
func (d CostDomain) String() string {
	if d == DomainEmissions {
		return "emissions"
	}
	return "time"
}

// Params mirrors the paper's Table 2 parameters plus implementation
// bounds.
type Params struct {
	// AlphaMinutes is the finest time-interval granularity α.
	AlphaMinutes int
	// Beta is the qualified-trajectory count threshold β.
	Beta int
	// MaxRank bounds the cardinality of instantiated non-unit paths
	// (the paper instantiates "until longer paths cannot be obtained";
	// the bound keeps hyper-bucket dimensionality within hist.MaxDims).
	MaxRank int
	// GTThresholdS is the accuracy-optimal baseline's departure-time
	// tolerance in seconds ("e.g., 30 minutes", Section 2.2).
	GTThresholdS float64
	// Auto configures the histogram bucket-count selection.
	Auto hist.AutoConfig
	// Resolution is the cost lattice step in cost units (seconds).
	Resolution float64
	// MaxAccBuckets caps the accumulated-cost dimension during chain
	// evaluation; 0 means unlimited (exact but potentially slow).
	MaxAccBuckets int
	// MaxResultBuckets caps the final marginal cost histogram; 0 means
	// uncompressed.
	MaxResultBuckets int
	// StaticBuckets, when positive, replaces Auto selection with a
	// fixed per-dimension bucket count (the Sta-b baseline).
	StaticBuckets int
	// Domain selects the cost domain (travel time by default).
	Domain CostDomain
	// Workers parallelizes weight instantiation (the paper trains with
	// 48 threads); ≤ 1 means serial. Results are identical either way.
	Workers int
}

// DefaultParams returns the paper's default setting: α = 30 minutes,
// β = 30.
func DefaultParams() Params {
	return Params{
		AlphaMinutes:     30,
		Beta:             30,
		MaxRank:          8,
		GTThresholdS:     30 * 60,
		Auto:             hist.DefaultAutoConfig(),
		Resolution:       hist.DefaultResolution,
		MaxAccBuckets:    48,
		MaxResultBuckets: 64,
	}
}

// Validate rejects unusable parameter combinations.
func (p Params) Validate() error {
	if p.AlphaMinutes <= 0 || 1440%p.AlphaMinutes != 0 {
		return fmt.Errorf("core: α = %d minutes must positively divide 1440", p.AlphaMinutes)
	}
	if p.Beta < 1 {
		return fmt.Errorf("core: β = %d must be ≥ 1", p.Beta)
	}
	if p.MaxRank < 1 || p.MaxRank > hist.MaxDims-1 {
		return fmt.Errorf("core: MaxRank = %d out of range [1,%d]", p.MaxRank, hist.MaxDims-1)
	}
	if p.GTThresholdS <= 0 {
		return fmt.Errorf("core: ground-truth threshold must be positive")
	}
	if p.Resolution <= 0 {
		return fmt.Errorf("core: resolution must be positive")
	}
	return nil
}

// NumIntervals returns the number of α-intervals in a day.
func (p Params) NumIntervals() int { return 1440 / p.AlphaMinutes }

// IntervalSeconds returns the interval length in seconds.
func (p Params) IntervalSeconds() float64 { return float64(p.AlphaMinutes) * 60 }

// IntervalOf maps an absolute time to its time-of-day interval index.
func (p Params) IntervalOf(t float64) int {
	return int(gps.SecondsOfDay(t) / p.IntervalSeconds())
}

// IntervalBounds returns [lo, hi) time-of-day seconds of interval j.
func (p Params) IntervalBounds(j int) (lo, hi float64) {
	lo = float64(j) * p.IntervalSeconds()
	return lo, lo + p.IntervalSeconds()
}
