package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/traffic"
)

// Variable is one instantiated random variable V^{I_j}_{P}: the joint
// travel-cost distribution of path P during time-of-day interval I_j
// (Section 3.3). Rank-1 variables carry a one-dimensional histogram;
// higher ranks carry a multi-dimensional histogram over the path's
// edges.
type Variable struct {
	Path     graph.Path
	Interval int
	Support  int // number of qualified trajectories behind it
	// Hist is set for rank-1 variables, Joint for rank ≥ 2.
	Hist  *hist.Histogram
	Joint *hist.Multi
	// SpeedLimit marks rank-1 variables derived from the speed limit
	// rather than trajectories (the sparse-edge fallback of §3.1).
	SpeedLimit bool
	// TimeMin and TimeMax bound the *travel time* of the qualified
	// trajectories on the path, regardless of the cost domain; the
	// shift-and-enlarge test (Eq. 3) always advances clock time.
	TimeMin, TimeMax float64

	// multiOnce caches the Multi representation used by the Eq. 2
	// evaluators (rank-1 histograms are lifted lazily, once).
	multiOnce sync.Once
	multi     *hist.Multi
	multiErr  error
}

// Rank returns the cardinality of the variable's path.
func (v *Variable) Rank() int { return len(v.Path) }

// MinCost and MaxCost bound the total cost support; for rank-1 they
// are the histogram support, for higher ranks the min/max hyper-bucket
// sums. They drive the shift-and-enlarge temporal test (Eq. 3).
func (v *Variable) MinCost() float64 {
	if v.Hist != nil {
		return v.Hist.Min()
	}
	return v.Joint.MinSum()
}

// MaxCost returns the maximum total-cost support bound.
func (v *Variable) MaxCost() float64 {
	if v.Hist != nil {
		return v.Hist.Max()
	}
	return v.Joint.MaxSum()
}

// StorageFloats approximates the variable's memory footprint in float
// counts (Figure 12).
func (v *Variable) StorageFloats() int {
	if v.Hist != nil {
		return 3 * v.Hist.NumBuckets()
	}
	return v.Joint.StorageFloats()
}

// pathVars groups the per-interval variables of one path. sorted is
// the same set ordered by ascending interval: temporal-relevance
// selection must iterate it (not the map) so that overlap ties are
// broken deterministically — map iteration order would otherwise make
// repeated identical queries pick different variables.
type pathVars struct {
	path   graph.Path
	byIv   map[int]*Variable
	sorted []*Variable
}

// HybridGraph is the instantiated hybrid graph: the road network plus
// the path weight function W_P realized as instantiated random
// variables (Section 3.3).
type HybridGraph struct {
	G      *graph.Graph
	Params Params

	// vars indexes all instantiated variables by path key.
	vars map[string]*pathVars
	// unit indexes the rank-1 rows directly by edge, sparing the
	// per-edge path-key string the temporal-relevance scan of every
	// query would otherwise build. Edge identifiers are dense, so both
	// per-edge indexes are flat slices (length G.NumEdges()) — a query
	// touches them once per row and a slice load beats a map probe.
	unit []*pathVars
	// unitCount counts edges with a trajectory-backed rank-1 row
	// (non-nil unit entries); the epoch builder reads it as |E′|.
	unitCount int
	// byStart lists instantiated paths by their first edge, used to
	// build candidate arrays (Section 4.1.3). Sorted by rank.
	byStart [][]*pathVars
	// fallbacks caches speed-limit rank-1 variables, built on demand;
	// the mutex keeps concurrent queries safe.
	fbMu      sync.Mutex
	fallbacks map[graph.EdgeID]*Variable

	// Build statistics.
	stats BuildStats
}

// BuildStats summarizes an instantiation run; the Section 5.2.1
// experiments (Figures 8–10, 12) read these.
type BuildStats struct {
	// VariablesByRank[r] counts instantiated (trajectory-backed)
	// variables of rank r+1.
	VariablesByRank []int
	// CoveredEdges is |E′|: edges covered by trajectory-backed
	// variables. EdgesWithData is |E″|: edges with ≥ 1 occurrence.
	CoveredEdges, EdgesWithData int
	// StorageFloats approximates total variable memory (float count).
	StorageFloats int
	// SupportTotal sums the qualified-trajectory counts.
	SupportTotal int
}

// Coverage returns |E′| / |E″| (Figure 8(a)).
func (s BuildStats) Coverage() float64 {
	if s.EdgesWithData == 0 {
		return 0
	}
	return float64(s.CoveredEdges) / float64(s.EdgesWithData)
}

// TotalVariables sums VariablesByRank.
func (s BuildStats) TotalVariables() int {
	n := 0
	for _, c := range s.VariablesByRank {
		n += c
	}
	return n
}

// Build instantiates the hybrid graph from a trajectory collection:
// rank-1 variables per edge and interval (Section 3.1), then bottom-up
// growth of higher-rank joint variables wherever ≥ β qualified
// trajectories support them (Section 3.2).
func Build(g *graph.Graph, data *gps.Collection, params Params) (*HybridGraph, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	h := &HybridGraph{
		G:         g,
		Params:    params,
		vars:      make(map[string]*pathVars),
		unit:      make([]*pathVars, g.NumEdges()),
		byStart:   make([][]*pathVars, g.NumEdges()),
		fallbacks: make(map[graph.EdgeID]*Variable),
	}
	h.stats.VariablesByRank = make([]int, params.MaxRank)

	type frontierEntry struct {
		path graph.Path
		occs []gps.Occurrence
	}
	// rank1Result is one edge's instantiation outcome, computed in
	// parallel and merged deterministically afterwards.
	type rank1Result struct {
		hasData  bool
		covered  bool
		vars     []*Variable
		frontier *frontierEntry
		err      error
	}

	workers := params.Workers
	if workers < 1 {
		workers = 1
	}

	// Rank 1: group per-edge occurrences by interval. Edges are
	// independent, so this parallelizes directly (the paper trains with
	// 48 threads the same way).
	edges := g.Edges()
	r1 := pmap(len(edges), workers, func(i int) rank1Result {
		e := edges[i]
		var res rank1Result
		occs := data.EdgeOccurrences(e.ID)
		if len(occs) == 0 {
			return res
		}
		res.hasData = true
		path := graph.Path{e.ID}
		byIv := h.groupByInterval(data, path, occs)
		for iv, ivOccs := range byIv {
			if len(ivOccs) < params.Beta {
				continue
			}
			v, err := h.buildRank1Variable(data, path, iv, ivOccs)
			if err != nil {
				res.err = fmt.Errorf("core: edge %d interval %d: %w", e.ID, iv, err)
				return res
			}
			res.vars = append(res.vars, v)
			res.covered = true
		}
		// Any edge with data enters the growth frontier; extensions
		// re-check β per interval.
		if len(occs) >= params.Beta {
			res.frontier = &frontierEntry{path: path, occs: occs}
		}
		return res
	})
	var frontier []frontierEntry
	for _, res := range r1 {
		if res.err != nil {
			return nil, res.err
		}
		if res.hasData {
			h.stats.EdgesWithData++
		}
		if res.covered {
			h.stats.CoveredEdges++
		}
		for _, v := range res.vars {
			h.addVariable(v)
		}
		if res.frontier != nil {
			frontier = append(frontier, *res.frontier)
		}
	}

	// Ranks 2..MaxRank: Apriori-style growth, parallel over the
	// frontier. A rank-k extension can only reach β qualified
	// trajectories in some interval if its rank-(k−1) prefix has ≥ β
	// occurrences overall.
	type growResult struct {
		vars []*Variable
		next []frontierEntry
		err  error
	}
	for rank := 2; rank <= params.MaxRank && len(frontier) > 0; rank++ {
		results := pmap(len(frontier), workers, func(fi int) growResult {
			fe := frontier[fi]
			var res growResult
			// Group candidate continuations by next edge.
			ext := make(map[graph.EdgeID][]gps.Occurrence)
			n := len(fe.path)
			for _, oc := range fe.occs {
				tp := data.Traj(oc.Traj).Path
				if oc.Pos+n < len(tp) {
					e := tp[oc.Pos+n]
					ext[e] = append(ext[e], oc)
				}
			}
			// Deterministic order over extension edges.
			keys := make([]graph.EdgeID, 0, len(ext))
			for e := range ext {
				keys = append(keys, e)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, e := range keys {
				occs := ext[e]
				if len(occs) < params.Beta {
					continue
				}
				newPath := append(fe.path.Clone(), e)
				byIv := h.groupByInterval(data, newPath, occs)
				created := false
				for iv, ivOccs := range byIv {
					if len(ivOccs) < params.Beta {
						continue
					}
					v, err := h.buildJointVariable(data, newPath, iv, ivOccs)
					if err != nil {
						res.err = fmt.Errorf("core: path %v interval %d: %w", newPath, iv, err)
						return res
					}
					res.vars = append(res.vars, v)
					created = true
				}
				if created || len(occs) >= params.Beta {
					res.next = append(res.next, frontierEntry{path: newPath, occs: occs})
				}
			}
			return res
		})
		var next []frontierEntry
		for _, res := range results {
			if res.err != nil {
				return nil, res.err
			}
			for _, v := range res.vars {
				h.addVariable(v)
			}
			next = append(next, res.next...)
		}
		frontier = next
	}

	// Keep candidate rows sorted by rank (ties broken by path key so
	// parallel builds are deterministic); Algorithm 1 takes the
	// rightmost (highest-rank) entry per row directly.
	for _, list := range h.byStart {
		sort.Slice(list, func(i, j int) bool {
			if len(list[i].path) != len(list[j].path) {
				return len(list[i].path) < len(list[j].path)
			}
			return list[i].path.Key() < list[j].path.Key()
		})
	}
	return h, nil
}

// groupByInterval buckets the occurrences of path p by the α-interval
// of the trajectory's arrival time at the occurrence position ("T
// occurred on P at t", Section 2.1).
func (h *HybridGraph) groupByInterval(data *gps.Collection, p graph.Path, occs []gps.Occurrence) map[int][]gps.Occurrence {
	out := make(map[int][]gps.Occurrence)
	for _, oc := range occs {
		t := data.Traj(oc.Traj).ArrivalAt(oc.Pos)
		iv := h.Params.IntervalOf(t)
		out[iv] = append(out[iv], oc)
	}
	return out
}

// buildHistogram builds a rank-1 histogram with the configured bucket
// selection (Auto by default, Sta-b when StaticBuckets is set).
func (h *HybridGraph) buildHistogram(samples []float64) (*hist.Histogram, error) {
	if h.Params.StaticBuckets > 0 {
		return hist.StaticHistogram(samples, h.Params.Resolution, h.Params.StaticBuckets)
	}
	hg, _, err := hist.AutoHistogram(samples, h.Params.Resolution, h.Params.Auto)
	return hg, err
}

// buildJoint builds a rank ≥ 2 joint histogram.
func (h *HybridGraph) buildJoint(rows [][]float64) (*hist.Multi, error) {
	cfg := hist.FromSamplesConfig{
		Resolution:   h.Params.Resolution,
		Auto:         h.Params.Auto,
		FixedBuckets: h.Params.StaticBuckets,
	}
	return hist.NewMultiFromSamples(rows, cfg)
}

// buildRank1Variable instantiates the rank-1 variable of single-edge
// path p for interval iv from its qualified occurrences. Build and the
// incremental epoch builder share this code path, which is what makes
// an incremental rebuild of a touched variable byte-identical to a
// full retrain: identical samples in identical order through identical
// arithmetic.
func (h *HybridGraph) buildRank1Variable(data *gps.Collection, path graph.Path, iv int, ivOccs []gps.Occurrence) (*Variable, error) {
	samples := make([]float64, len(ivOccs))
	tMin, tMax := mathInf(1), mathInf(-1)
	for i, oc := range ivOccs {
		m := data.Traj(oc.Traj)
		samples[i] = h.costValue(m, oc.Pos, 1)
		tt := m.EdgeCosts[oc.Pos]
		if tt < tMin {
			tMin = tt
		}
		if tt > tMax {
			tMax = tt
		}
	}
	hg, err := h.buildHistogram(samples)
	if err != nil {
		return nil, err
	}
	return &Variable{
		Path: path.Clone(), Interval: iv, Support: len(ivOccs),
		Hist: hg, TimeMin: tMin, TimeMax: tMax,
	}, nil
}

// buildJointVariable instantiates the rank ≥ 2 joint variable of path
// p for interval iv from its qualified occurrences; shared between
// Build and the incremental epoch builder (see buildRank1Variable).
// The path is stored as passed, not cloned.
func (h *HybridGraph) buildJointVariable(data *gps.Collection, path graph.Path, iv int, ivOccs []gps.Occurrence) (*Variable, error) {
	rows := make([][]float64, len(ivOccs))
	tMin, tMax := mathInf(1), mathInf(-1)
	for i, oc := range ivOccs {
		m := data.Traj(oc.Traj)
		row := make([]float64, len(path))
		for j := range path {
			row[j] = h.costValueAt(m, oc.Pos+j)
		}
		rows[i] = row
		tt := m.CostOfSubPath(oc.Pos, len(path))
		if tt < tMin {
			tMin = tt
		}
		if tt > tMax {
			tMax = tt
		}
	}
	joint, err := h.buildJoint(rows)
	if err != nil {
		return nil, err
	}
	return &Variable{
		Path: path, Interval: iv,
		Support: len(ivOccs), Joint: joint,
		TimeMin: tMin, TimeMax: tMax,
	}, nil
}

// addVariable registers a variable in the indexes and statistics.
func (h *HybridGraph) addVariable(v *Variable) {
	key := v.Path.Key()
	pv, ok := h.vars[key]
	if !ok {
		pv = &pathVars{path: v.Path, byIv: make(map[int]*Variable)}
		h.vars[key] = pv
		start := v.Path[0]
		h.byStart[start] = append(h.byStart[start], pv)
		if len(v.Path) == 1 {
			if h.unit[start] == nil {
				h.unitCount++
			}
			h.unit[start] = pv
		}
	}
	pv.byIv[v.Interval] = v
	i := sort.Search(len(pv.sorted), func(i int) bool { return pv.sorted[i].Interval >= v.Interval })
	if i < len(pv.sorted) && pv.sorted[i].Interval == v.Interval {
		pv.sorted[i] = v
	} else {
		pv.sorted = append(pv.sorted, nil)
		copy(pv.sorted[i+1:], pv.sorted[i:])
		pv.sorted[i] = v
	}
	h.stats.VariablesByRank[v.Rank()-1]++
	h.stats.StorageFloats += v.StorageFloats()
	h.stats.SupportTotal += v.Support
}

// Stats returns the build statistics.
func (h *HybridGraph) Stats() BuildStats { return h.stats }

// Lookup returns W_P(P, t): the instantiated variable for exactly path
// P whose interval contains t, or nil when none exists.
func (h *HybridGraph) Lookup(p graph.Path, t float64) *Variable {
	pv, ok := h.vars[p.Key()]
	if !ok {
		return nil
	}
	return pv.byIv[h.Params.IntervalOf(t)]
}

// LookupInterval returns the variable of path p for interval iv.
func (h *HybridGraph) LookupInterval(p graph.Path, iv int) *Variable {
	pv, ok := h.vars[p.Key()]
	if !ok {
		return nil
	}
	return pv.byIv[iv]
}

// VariablesOf returns all per-interval variables of path p, ordered
// by ascending interval.
func (h *HybridGraph) VariablesOf(p graph.Path) []*Variable {
	pv, ok := h.vars[p.Key()]
	if !ok {
		return nil
	}
	return append([]*Variable(nil), pv.sorted...)
}

// ForEachVariable visits every trajectory-backed variable in a
// deterministic order (path key, then interval), so that model
// serialization is byte-stable across runs and across serial/parallel
// builds of the same data.
func (h *HybridGraph) ForEachVariable(fn func(*Variable)) {
	keys := make([]string, 0, len(h.vars))
	for k := range h.vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pv := h.vars[k]
		ivs := make([]int, 0, len(pv.byIv))
		for iv := range pv.byIv {
			ivs = append(ivs, iv)
		}
		sort.Ints(ivs)
		for _, iv := range ivs {
			fn(pv.byIv[iv])
		}
	}
}

// UnitVariable returns the rank-1 variable for edge e relevant to
// absolute time t, falling back to the speed-limit distribution when
// no trajectory-backed variable covers the interval (Section 3.1:
// both count as ground truth for unit paths).
func (h *HybridGraph) UnitVariable(e graph.EdgeID, t float64) *Variable {
	if v := h.Lookup(graph.Path{e}, t); v != nil {
		return v
	}
	return h.fallbackVariable(e)
}

// unitVariableInterval is UnitVariable keyed by interval index.
func (h *HybridGraph) unitVariableInterval(e graph.EdgeID, iv int) *Variable {
	if v := h.LookupInterval(graph.Path{e}, iv); v != nil {
		return v
	}
	return h.fallbackVariable(e)
}

func (h *HybridGraph) fallbackVariable(e graph.EdgeID) *Variable {
	h.fbMu.Lock()
	defer h.fbMu.Unlock()
	if v, ok := h.fallbacks[e]; ok {
		return v
	}
	ed := h.G.Edge(e)
	ff := ed.FreeFlowSeconds()
	val := ff
	if h.Params.Domain == DomainEmissions {
		val = traffic.Emissions(ed, ff)
	}
	v := &Variable{
		Path:       graph.Path{e},
		Interval:   -1,
		Hist:       hist.Point(val, h.Params.Resolution),
		SpeedLimit: true,
		TimeMin:    ff,
		TimeMax:    ff,
	}
	h.fallbacks[e] = v
	return v
}

// costValue returns the configured-domain cost of the n-edge sub-path
// of m starting at pos.
func (h *HybridGraph) costValue(m *gps.Matched, pos, n int) float64 {
	var s float64
	for j := pos; j < pos+n; j++ {
		s += h.costValueAt(m, j)
	}
	return s
}

// costValueAt returns one edge's cost in the configured domain.
func (h *HybridGraph) costValueAt(m *gps.Matched, pos int) float64 {
	if h.Params.Domain == DomainEmissions {
		return m.Emissions[pos]
	}
	return m.EdgeCosts[pos]
}

func mathInf(sign int) float64 { return math.Inf(sign) }

// pmap computes fn(i) for i in [0, n) using the given number of worker
// goroutines, preserving index order in the result.
func pmap[R any](n, workers int, fn func(int) R) []R {
	out := make([]R, n)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	idx := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
