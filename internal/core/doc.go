// Package core implements the paper's central contribution: the
// hybrid graph and its query machinery.
//
// Paper-section map:
//
//   - Section 2.1 (problem setting): consumed via package gps — core
//     reads (path, departure, per-edge cost) observations from a
//     gps.Collection.
//   - Section 2.2: GroundTruth, the accuracy-optimal baseline that
//     needs ≥ β qualifying trajectories and therefore suffers the
//     sparseness problem.
//   - Section 2.3: MethodLB, the legacy independent-edge convolution
//     baseline with progressively updated arrival intervals.
//   - Section 3 (hybrid graph G = (V, E, W_P)): Build instantiates
//     rank-1 variables per edge and α-interval (Section 3.1, with the
//     speed-limit fallback for uncovered edges) and grows higher-rank
//     joint variables bottom-up wherever ≥ β qualified trajectories
//     support them (Section 3.2). Params carries α, β and the
//     implementation bounds; Params.Workers shards instantiation
//     across a goroutine pool with results identical to a serial
//     build (ForEachVariable and model serialization are
//     deterministic, so serial and parallel models are byte-equal).
//   - Section 4 (queries): BuildCandidateArray applies the spatial
//     and temporal (shift-and-enlarge, Eq. 3) relevance tests;
//     CoarsestDecomposition is Algorithm 1; Evaluate computes
//     Equation 2 by chain multiplication followed by the Section 4.2
//     marginalization. Theorems 1–4 are exercised in theorem_test.go.
//   - Section 5 (empirical study): the estimator family — MethodOD
//     (and its rank-capped OD-x variants), MethodRD, MethodHP,
//     MethodLB — plus BuildStats, EvalStats and Timing, which
//     instrument the figures.
//
// Beyond the paper, PathState implements the incremental property of
// Section 4.3 ("path + another edge" reuses the chain evaluation of
// the path), and ConvMemo builds the incremental sub-path convolution
// engine on top of it: a prefix-keyed memo of chain states, keyed by
// the exact departure time, that lets routing searches, batched
// server queries and repeated distribution queries reuse one
// another's prefixes with byte-identical results
// (CostDistributionMemo, MemoStartPath, MemoExtendPath).
//
// Query evaluation is bit-deterministic by construction: float
// accumulation over hyper-buckets always runs in sorted cell order,
// and temporal-relevance ties break toward the earliest interval —
// never map iteration order.
//
// A trained HybridGraph is safe for concurrent readers; training
// itself is single-writer.
package core
