package core

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/hist"
)

// PathState supports the "path + another edge" exploration pattern of
// stochastic routing algorithms (Section 4.3): extending a path by one
// edge reuses the chain evaluation of the existing path instead of
// recomputing it, which is the paper's "incremental property".
//
// A PathState is immutable after construction and safe to share
// between goroutines (the convolution memo hands one state to many
// concurrent queries); the lazily derived marginal is guarded by a
// sync.Once and is a deterministic function of the state.
type PathState struct {
	h    *HybridGraph
	path graph.Path
	t    float64
	opt  QueryOptions

	de *Decomposition
	// inter[i] is the chain state after factor i was folded to its
	// overlap with factor i+1; preFold is the state after the last
	// factor's multiplication, before any folding (all its dims open),
	// so a future factor can still condition on any suffix edge.
	inter   []*chainState
	preFold *chainState

	// dist is the flattened cost marginal of the final chain state,
	// derived on first use: a memoized intermediate prefix that is
	// only ever extended never pays for a marginal nobody reads.
	distOnce sync.Once
	dist     *hist.Histogram
	distErr  error
}

// Dist returns the cost distribution of the state's path, deriving it
// on first call (nil in the never-expected case that marginalization
// fails; DistErr surfaces the error).
func (s *PathState) Dist() *hist.Histogram {
	d, _ := s.DistErr()
	return d
}

// DistErr returns the cost distribution of the state's path,
// flattening the final chain state on first call.
func (s *PathState) DistErr() (*hist.Histogram, error) {
	s.distOnce.Do(func() {
		s.dist, s.distErr = s.inter[len(s.inter)-1].m.SumHistogram(s.h.Params.MaxResultBuckets)
	})
	return s.dist, s.distErr
}

// Decomp returns the decomposition behind the state's distribution.
func (s *PathState) Decomp() *Decomposition { return s.de }

// Path returns the state's path (callers must not modify it).
func (s *PathState) Path() graph.Path { return s.path }

// Depart returns the departure time the state was built for.
func (s *PathState) Depart() float64 { return s.t }

// StartPath begins incremental evaluation with a single-edge path.
func (h *HybridGraph) StartPath(e graph.EdgeID, t float64, opt QueryOptions) (*PathState, error) {
	if opt.Method == "" {
		opt.Method = MethodOD
	}
	s := &PathState{h: h, path: graph.Path{e}, t: t, opt: opt}
	if err := s.recompute(nil); err != nil {
		return nil, err
	}
	return s, nil
}

// ExtendPath returns a new state for the path extended by edge e,
// reusing as much of the previous chain evaluation as the new coarsest
// decomposition allows. The receiver remains valid (DFS keeps parent
// states alive across siblings).
func (h *HybridGraph) ExtendPath(s *PathState, e graph.EdgeID) (*PathState, error) {
	np := make(graph.Path, len(s.path)+1)
	copy(np, s.path)
	np[len(s.path)] = e
	if !h.G.ValidPath(np) {
		return nil, fmt.Errorf("core: extension %v is not a valid path", np)
	}
	ns := &PathState{h: h, path: np, t: s.t, opt: s.opt}
	if err := ns.recompute(s); err != nil {
		return nil, err
	}
	return ns, nil
}

// recompute evaluates the state's path, reusing prev's chain prefix
// when the decompositions share one.
func (s *PathState) recompute(prev *PathState) error {
	h := s.h
	ca, err := h.BuildCandidateArray(s.path, s.t)
	if err != nil {
		return err
	}
	defer ca.Release()
	switch s.opt.Method {
	case MethodOD:
		s.de = ca.CoarsestDecomposition(s.opt.RankCap)
	case MethodHP:
		s.de = ca.PairDecomposition()
	case MethodLB:
		s.de = ca.UnitDecomposition()
	default:
		return fmt.Errorf("core: method %q does not support incremental evaluation", s.opt.Method)
	}

	// Longest shared factor prefix with prev.
	shared := 0
	if prev != nil && prev.de != nil {
		max := len(prev.de.Vars)
		if len(s.de.Vars) < max {
			max = len(s.de.Vars)
		}
		for shared < max &&
			prev.de.Vars[shared] == s.de.Vars[shared] &&
			prev.de.Pos[shared] == s.de.Pos[shared] {
			shared++
		}
	}

	var st EvalStats
	var state *chainState
	from := 0
	if shared > 0 && prev != nil {
		// Resume right after the last shared factor. Its fold target
		// (the overlap with the *new* next factor) may differ from what
		// prev folded to, so refold from the stored states.
		i := shared - 1
		keep := overlapWithNext(s.de, i)
		switch {
		case i == len(prev.de.Vars)-1 && prev.preFold != nil:
			state, err = prev.preFold.foldTo(keep, h.Params.MaxAccBuckets)
		case i < len(prev.inter) && sameInts(keep, prev.inter[i].open):
			state, err = prev.inter[i], nil
		default:
			state, err = nil, nil
			shared = 0
		}
		if err != nil {
			return err
		}
		if state != nil {
			from = shared
		}
	}

	s.inter = make([]*chainState, len(s.de.Vars))
	if prev != nil && from > 0 {
		copy(s.inter, prev.inter[:from-1])
		s.inter[from-1] = state
	}
	for i := from; i < len(s.de.Vars); i++ {
		fm, err := asMulti(s.de.Vars[i])
		if err != nil {
			return err
		}
		positions := factorPositions(s.de, i)
		if state == nil {
			state, err = initialState(fm, positions)
		} else {
			state, err = state.multiply(fm, positions, &st)
		}
		if err != nil {
			return err
		}
		if i == len(s.de.Vars)-1 {
			s.preFold = state
		}
		state, err = state.foldTo(overlapWithNext(s.de, i), h.Params.MaxAccBuckets)
		if err != nil {
			return err
		}
		s.inter[i] = state
	}
	if from == len(s.de.Vars) && prev != nil {
		// The whole decomposition was shared (possible when the new
		// edge extends the last factor's path without changing the
		// decomposition — cannot happen by construction, but guard).
		s.preFold = prev.preFold
	}
	// The cost marginal of s.inter[last] is derived lazily in DistErr.
	return nil
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var _ = hist.DefaultResolution
