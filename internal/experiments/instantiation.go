package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig8 reproduces the α sweep (Figure 8): edge coverage and average
// variable entropy per rank as the interval granularity grows.
func Fig8(e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("Effect of α, %s", e.Cfg.Name),
		Header: []string{"α (min)", "coverage", "H rank1", "H rank2", "H rank3+", "#vars"},
	}
	var coverages []float64
	for _, alpha := range []int{15, 30, 60, 120} {
		params := e.Params()
		params.AlphaMinutes = alpha
		h, err := e.Hybrid(params, 1)
		if err != nil {
			return nil, err
		}
		st := h.Stats()
		sums, counts := entropyByRank(h)
		row := []string{d0(alpha), pct(st.Coverage())}
		for r := 0; r < 3; r++ {
			if counts[r] > 0 {
				row = append(row, f2(sums[r]/float64(counts[r])))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, d0(st.TotalVariables()))
		t.Rows = append(t.Rows, row)
		coverages = append(coverages, st.Coverage())
	}
	if w := verifyShape(coverages, true); w != "" {
		t.Note("%s", w)
	}
	t.Note("paper shape: coverage grows with α; entropy grows with α (coarser intervals mix more traffic)")
	return t, nil
}

// Fig9 reproduces the β sweep (Figure 9): instantiated variables per
// rank as the qualified-trajectory threshold grows.
func Fig9(e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("Effect of β, %s", e.Cfg.Name),
		Header: []string{"β", "|V|=1", "|V|=2", "|V|=3", "|V|>=4", "total"},
	}
	var totals []float64
	for _, beta := range []int{15, 30, 45, 60} {
		params := e.Params()
		params.Beta = beta
		h, err := e.Hybrid(params, 1)
		if err != nil {
			return nil, err
		}
		st := h.Stats()
		t.AddRow(d0(beta),
			d0(st.VariablesByRank[0]),
			d0(st.VariablesByRank[1]),
			d0(st.VariablesByRank[2]),
			d0(sumFrom(st.VariablesByRank, 3)),
			d0(st.TotalVariables()))
		totals = append(totals, float64(st.TotalVariables()))
	}
	if w := verifyShape(totals, false); w != "" {
		t.Note("%s", w)
	}
	t.Note("paper shape: variable counts drop as β grows")
	return t, nil
}

// Fig10 reproduces the dataset-size sweep (Figure 10): instantiated
// variables per rank for 25/50/75/100%% of the trajectories.
func Fig10(e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  fmt.Sprintf("Varying dataset size, %s", e.Cfg.Name),
		Header: []string{"fraction", "|V|=1", "|V|=2", "|V|=3", "|V|>=4", "total"},
	}
	var totals, high []float64
	for _, frac := range []float64{0.25, 0.5, 0.75, 1} {
		params := e.Params()
		h, err := e.Hybrid(params, frac)
		if err != nil {
			return nil, err
		}
		st := h.Stats()
		t.AddRow(pct(frac),
			d0(st.VariablesByRank[0]),
			d0(st.VariablesByRank[1]),
			d0(st.VariablesByRank[2]),
			d0(sumFrom(st.VariablesByRank, 3)),
			d0(st.TotalVariables()))
		totals = append(totals, float64(st.TotalVariables()))
		high = append(high, float64(sumFrom(st.VariablesByRank, 3)))
	}
	if w := verifyShape(totals, true); w != "" {
		t.Note("%s", w)
	}
	if w := verifyShape(high, true); w != "" {
		t.Note("high-rank %s", w)
	}
	t.Note("paper shape: more data → more variables, especially high-rank ones")
	return t, nil
}

// Fig12 reproduces the memory-usage analysis (Figure 12): storage of
// the instantiated variables vs dataset size.
func Fig12(e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  fmt.Sprintf("Memory usage of instantiated variables, %s", e.Cfg.Name),
		Header: []string{"fraction", "storage (MB)"},
	}
	var series []float64
	for _, frac := range []float64{0.25, 0.5, 0.75, 1} {
		params := e.Params()
		h, err := e.Hybrid(params, frac)
		if err != nil {
			return nil, err
		}
		mb := float64(h.Stats().StorageFloats) * 8 / (1 << 20)
		t.AddRow(pct(frac), f2(mb))
		series = append(series, mb)
	}
	if w := verifyShape(series, true); w != "" {
		t.Note("%s", w)
	}
	t.Note("paper shape: memory grows with data volume but remains main-memory scale")
	return t, nil
}

// entropyByRank averages variable entropies, bucketing ranks ≥ 3
// together.
func entropyByRank(h *core.HybridGraph) ([3]float64, [3]int) {
	var sums [3]float64
	var counts [3]int
	h.ForEachVariable(func(v *core.Variable) {
		r := v.Rank() - 1
		if r > 2 {
			r = 2
		}
		sums[r] += v.Entropy()
		counts[r]++
	})
	return sums, counts
}

func sumFrom(xs []int, from int) int {
	s := 0
	for i := from; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

var _ = stats.SmoothEps
