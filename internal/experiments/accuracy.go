package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/stats"
)

// methodsUnderTest is the Figure 13/14 estimator family.
var methodsUnderTest = []core.Method{core.MethodOD, core.MethodLB, core.MethodRD, core.MethodHP}

// heldOutHybrid enforces the Figure 13/14 protocol: for each query
// path, enough of its supporting trajectories are removed from the
// training data that the full path can no longer be instantiated
// (fewer than β remain, so the accuracy-optimal baseline "does not
// work"), while β−1 supporters stay so the path's *edges* keep their
// data — exactly the sparse regime the decomposition methods exist
// for. The ground truth is still computed from the full data set.
func heldOutHybrid(e *Env, params core.Params, queries []densePath) (*core.HybridGraph, error) {
	hold := make(map[int64]bool)
	data := e.Data()
	for _, dp := range queries {
		var ids []int64
		for _, oc := range data.OccurrencesOfPath(dp.path) {
			m := data.Traj(oc.Traj)
			if params.IntervalOf(m.ArrivalAt(oc.Pos)) == dp.interval {
				ids = append(ids, m.ID)
			}
		}
		sortInt64(ids)
		// Keep the first β−1 supporters in training, hold out the rest.
		keep := params.Beta - 1
		if keep > len(ids) {
			keep = len(ids)
		}
		for _, id := range ids[keep:] {
			hold[id] = true
		}
	}
	trainData := data.Filter(func(m *gps.Matched) bool { return !hold[m.ID] })
	return core.Build(e.G, trainData, params)
}

// mostIllustrative evaluates the candidates and returns the one with
// the largest KL(GT, LB) − KL(GT, OD) gap, with its ground truth and
// the held-out hybrid graph trained for it.
func mostIllustrative(e *Env, params core.Params, candidates []densePath) (densePath, *hist.Histogram, *core.HybridGraph, error) {
	var bestDP densePath
	var bestGT *hist.Histogram
	var bestH *core.HybridGraph
	bestGap := mathInfNeg()
	var firstErr error
	for _, dp := range candidates {
		gt, _, err := core.GroundTruthInterval(e.Data(), dp.path, dp.interval, params)
		if err != nil {
			continue
		}
		h, err := heldOutHybrid(e, params, []densePath{dp})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		depart := departureFor(params, dp.interval)
		od, err1 := h.CostDistribution(dp.path, depart, core.QueryOptions{Method: core.MethodOD})
		lb, err2 := h.CostDistribution(dp.path, depart, core.QueryOptions{Method: core.MethodLB})
		if err1 != nil || err2 != nil {
			continue
		}
		gap := stats.KLHistograms(gt, lb.Dist) - stats.KLHistograms(gt, od.Dist)
		if gap > bestGap {
			bestGap, bestDP, bestGT, bestH = gap, dp, gt, h
		}
	}
	if bestGT == nil {
		if firstErr == nil {
			firstErr = fmt.Errorf("fig13: no candidate with ground truth")
		}
		return densePath{}, nil, nil, firstErr
	}
	return bestDP, bestGT, bestH, nil
}

func mathInfNeg() float64 { return -1e308 }

// moderateSupport keeps query paths whose support is high enough for
// a ground truth but not so high that holding their trajectories out
// would drain the corridor's entire data (support in [2β, 8β]).
func moderateSupport(ds []densePath, params core.Params, limit int) []densePath {
	var out []densePath
	for _, dp := range ds {
		if dp.count <= 8*params.Beta {
			out = append(out, dp)
			if limit > 0 && len(out) == limit {
				break
			}
		}
	}
	if out == nil && len(ds) > 0 {
		out = ds // all are very dense; use them anyway
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
	}
	return out
}

func sortInt64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Fig13 reproduces the single-path shape comparison (Figure 13): the
// estimated distributions of OD, LB, HP and RD on one dense held-out
// path, against the ground truth.
func Fig13(e *Env) (*Table, error) {
	params := e.Params()
	candidates := moderateSupport(e.densePathsRelaxed(params, 5, 2*params.Beta, 0), params, 6)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("fig13: no dense 5-edge path")
	}
	// The paper presents "a concrete example": pick the candidate where
	// the dependence effect is most visible (largest LB-vs-OD KL gap).
	dp, gt, h, err := mostIllustrative(e, params, candidates)
	if err != nil {
		return nil, err
	}
	depart := departureFor(params, dp.interval)
	t := &Table{
		ID:     "fig13",
		Title:  fmt.Sprintf("Estimated distributions on one held-out path, %s (|P|=%d, support %d)", e.Cfg.Name, len(dp.path), dp.count),
		Header: []string{"method", "mean", "p10", "p50", "p90", "KL vs GT"},
	}
	t.AddRow("GT", f2(gt.Mean()), f2(gt.Quantile(0.1)), f2(gt.Quantile(0.5)), f2(gt.Quantile(0.9)), "0")
	for _, m := range methodsUnderTest {
		res, err := h.CostDistribution(dp.path, depart, core.QueryOptions{Method: m, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("fig13 %s: %w", m, err)
		}
		t.AddRow(string(m),
			f2(res.Dist.Mean()),
			f2(res.Dist.Quantile(0.1)),
			f2(res.Dist.Quantile(0.5)),
			f2(res.Dist.Quantile(0.9)),
			f3(stats.KLHistograms(gt, res.Dist)))
	}
	t.Note("paper shape: OD tracks the ground truth; LB over-smooths (central limit); HP and RD fall between")
	return t, nil
}

// Fig14 reproduces the accuracy-with-ground-truth study (Figure 14):
// average KL(GT, method) over held-out dense paths per cardinality.
func Fig14(e *Env) (*Table, error) {
	params := e.Params()
	t := &Table{
		ID:     "fig14",
		Title:  fmt.Sprintf("Accuracy vs ground truth, %s: avg KL(GT, ·)", e.Cfg.Name),
		Header: []string{"|P|", "OD", "LB", "RD", "HP", "#paths"},
	}
	var odSeries, lbSeries []float64
	for _, card := range []int{3, 5, 7, 9} {
		queries := moderateSupport(e.densePaths(params, card, 2*params.Beta, 0), params, e.Cfg.PathsPerPoint)
		if len(queries) == 0 {
			continue
		}
		h, err := heldOutHybrid(e, params, queries)
		if err != nil {
			return nil, err
		}
		sums := make(map[core.Method]float64)
		n := 0
		for _, dp := range queries {
			gt, _, err := core.GroundTruthInterval(e.Data(), dp.path, dp.interval, params)
			if err != nil {
				continue
			}
			depart := departureFor(params, dp.interval)
			ok := true
			vals := make(map[core.Method]float64)
			for _, m := range methodsUnderTest {
				res, err := h.CostDistribution(dp.path, depart, core.QueryOptions{Method: m, Seed: int64(n)})
				if err != nil {
					ok = false
					break
				}
				vals[m] = stats.KLHistograms(gt, res.Dist)
			}
			if !ok {
				continue
			}
			for m, v := range vals {
				sums[m] += v
			}
			n++
		}
		if n == 0 {
			continue
		}
		nf := float64(n)
		t.AddRow(d0(card), f3(sums[core.MethodOD]/nf), f3(sums[core.MethodLB]/nf),
			f3(sums[core.MethodRD]/nf), f3(sums[core.MethodHP]/nf), d0(n))
		odSeries = append(odSeries, sums[core.MethodOD]/nf)
		lbSeries = append(lbSeries, sums[core.MethodLB]/nf)
	}
	if len(odSeries) == 0 {
		return nil, fmt.Errorf("fig14: no paths with ground truth")
	}
	// Shape check: OD ≤ LB at the largest cardinality.
	last := len(odSeries) - 1
	if odSeries[last] > lbSeries[last] {
		t.Note("WARNING: OD not better than LB at the largest cardinality")
	}
	t.Note("paper shape: KL of LB grows quickly with |P|; OD grows slowly and stays lowest")
	return t, nil
}

// Fig15 reproduces the entropy comparison on long paths (Figure 15):
// average decomposition entropy H_DE per method for long random query
// paths with no ground truth.
func Fig15(e *Env) (*Table, error) {
	params := e.Params()
	h, err := e.Hybrid(params, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig15",
		Title:  fmt.Sprintf("Decomposition entropy H_DE on long paths, %s", e.Cfg.Name),
		Header: []string{"|P|", "OD", "HP", "RD", "LB", "#paths"},
	}
	depart := departureFor(params, params.IntervalOf(8*3600))
	for _, card := range []int{10, 20, 30, 40} {
		paths := e.randomPaths(card, e.Cfg.PathsPerPoint, int64(card))
		sums := make(map[core.Method]float64)
		n := 0
		for pi, p := range paths {
			ca, err := h.BuildCandidateArray(p, depart)
			if err != nil {
				continue
			}
			des := map[core.Method]*core.Decomposition{
				core.MethodOD: ca.CoarsestDecomposition(0),
				core.MethodHP: ca.PairDecomposition(),
				core.MethodLB: ca.UnitDecomposition(),
				core.MethodRD: ca.RandomDecomposition(newRand(int64(pi))),
			}
			ok := true
			vals := make(map[core.Method]float64)
			for m, de := range des {
				ent, err := h.DecompositionEntropy(de)
				if err != nil {
					ok = false
					break
				}
				vals[m] = ent
			}
			if !ok {
				continue
			}
			for m, v := range vals {
				sums[m] += v
			}
			n++
		}
		if n == 0 {
			continue
		}
		nf := float64(n)
		t.AddRow(d0(card), f2(sums[core.MethodOD]/nf), f2(sums[core.MethodHP]/nf),
			f2(sums[core.MethodRD]/nf), f2(sums[core.MethodLB]/nf), d0(n))
		if sums[core.MethodOD] > sums[core.MethodLB]+1e-9 {
			t.Note("WARNING: H(OD) > H(LB) at |P|=%d", card)
		}
	}
	t.Note("paper shape: OD lowest entropy (most informative), then RD/HP, LB highest")
	return t, nil
}

func newRand(seed int64) *randSource {
	return &randSource{state: uint64(seed)*2862933555777941757 + 3037000493}
}

// randSource is a tiny splitmix-based rand.Rand replacement sufficient
// for RandomDecomposition's Intn calls, avoiding math/rand state
// sharing across goroutines in benchmarks.
type randSource struct{ state uint64 }

// Intn returns a pseudo-random int in [0, n).
func (r *randSource) Intn(n int) int {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

var _ = graph.NoEdge
