package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows the corresponding
// paper figure plots.
type Table struct {
	ID     string // e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-text annotation rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func d0(v int) string      { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func ms(v float64) string  { return fmt.Sprintf("%.2fms", v) }
