package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	envInst *Env
)

func tinyEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() { envInst = NewEnv(Tiny()) })
	return envInst
}

// TestAllFiguresRunOnTinyWorkload executes every registered experiment
// end to end on the tiny environment and checks structural sanity of
// the outputs (every figure produces rows, titles and renders).
func TestAllFiguresRunOnTinyWorkload(t *testing.T) {
	e := tinyEnv(t)
	for _, id := range IDs() {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			tab, err := Run(e, id)
			if err != nil {
				t.Fatalf("figure %s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("figure %s produced no rows", id)
			}
			out := tab.Render()
			if !strings.Contains(out, tab.Title) {
				t.Fatalf("figure %s render missing title", id)
			}
			for _, n := range tab.Notes {
				if strings.Contains(n, "WARNING") {
					t.Logf("figure %s: %s", id, n)
				}
			}
		})
	}
}

func TestRunUnknownFigure(t *testing.T) {
	e := tinyEnv(t)
	if _, err := Run(e, "99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bbbb"}}
	tab.AddRow("1", "2")
	tab.Note("hello %d", 5)
	out := tab.Render()
	if !strings.Contains(out, "hello 5") {
		t.Fatal("note missing")
	}
	if !strings.Contains(out, "----") {
		t.Fatal("separator missing")
	}
}

func TestFigureShapesOnTinyWorkload(t *testing.T) {
	// Beyond "it runs": check the headline orderings hold even on the
	// tiny workload where they are expected to.
	e := tinyEnv(t)
	tab, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	// Sparseness: support at |P|=1 must exceed support at |P|=25.
	first := tab.Rows[0][1]
	last := tab.Rows[len(tab.Rows)-1][1]
	if atoiSafe(first) <= atoiSafe(last) {
		t.Errorf("fig3: support did not decay: %s .. %s", first, last)
	}
}

func TestRoutePairsFound(t *testing.T) {
	e := tinyEnv(t)
	pairs := e.routePairs(e.Params())
	if len(pairs) == 0 {
		t.Fatal("no route pairs found")
	}
	for _, p := range pairs {
		if p.src == p.dst || p.freeflow <= 0 {
			t.Fatalf("bad pair %+v", p)
		}
	}
}
