package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/stats"
)

// Fig3 reproduces the data-sparseness analysis (Figure 3): the maximum
// number of trajectories that occurred on any path, per path
// cardinality, with no time constraint.
func Fig3(e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Data sparseness, %s: max #trajectories on a path vs |P|", e.Cfg.Name),
		Header: []string{"|P|", "max #trajectories"},
	}
	data := e.Data()
	prev := -1
	for _, card := range []int{1, 5, 9, 13, 17, 21, 25} {
		counts := make(map[string]int)
		for i := 0; i < data.Len(); i++ {
			m := data.Traj(i)
			for pos := 0; pos+card <= len(m.Path); pos++ {
				counts[m.Path[pos:pos+card].Key()]++
			}
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		t.AddRow(d0(card), d0(max))
		if prev >= 0 && max > prev {
			t.Note("WARNING: support did not decay at |P|=%d", card)
		}
		prev = max
	}
	t.Note("paper shape: support decays rapidly with cardinality")
	return t, nil
}

// Fig4 reproduces the independence-assumption analysis (Figure 4):
// (a) the distribution of KL(D_GT, D_LB) over 2-edge paths with dense
// support, and (b) the average KL divergence as cardinality grows.
func Fig4(e *Env) (*Table, error) {
	params := e.Params()
	h, err := e.Hybrid(params, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig4",
		Title: fmt.Sprintf("Independence assumption, %s: KL(D_GT, D_LB)", e.Cfg.Name),
		Header: []string{
			"series", "value", "KL or share",
		},
	}
	// (a) 2-edge dense paths.
	dense := e.densePathsRelaxed(params, 2, 60, 300)
	bins := []float64{0, 0, 0, 0} // [0,.5) [.5,1) [1,1.5) >=1.5
	n := 0
	for _, dp := range dense {
		gt, _, err := core.GroundTruthInterval(e.Data(), dp.path, dp.interval, params)
		if err != nil {
			continue
		}
		lb, err := h.CostDistribution(dp.path, departureFor(params, dp.interval), core.QueryOptions{Method: core.MethodLB})
		if err != nil {
			continue
		}
		kl := stats.KLHistograms(gt, lb.Dist)
		switch {
		case kl < 0.5:
			bins[0]++
		case kl < 1:
			bins[1]++
		case kl < 1.5:
			bins[2]++
		default:
			bins[3]++
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("fig4: no dense 2-edge paths")
	}
	labels := []string{"[0,0.5)", "[0.5,1)", "[1,1.5)", ">=1.5"}
	for i, b := range bins {
		t.AddRow("4a KL bin", labels[i], pct(b/float64(n)))
	}
	t.Note("4(a): %d paths; paper shape: a large share of adjacent pairs are dependent (KL > 0)", n)

	// (b) KL vs cardinality.
	for _, card := range []int{2, 4, 6, 8, 10} {
		dps := e.densePaths(params, card, params.Beta, e.Cfg.PathsPerPoint)
		var sum float64
		cnt := 0
		for _, dp := range dps {
			gt, _, err := core.GroundTruthInterval(e.Data(), dp.path, dp.interval, params)
			if err != nil {
				continue
			}
			lb, err := h.CostDistribution(dp.path, departureFor(params, dp.interval), core.QueryOptions{Method: core.MethodLB})
			if err != nil {
				continue
			}
			sum += stats.KLHistograms(gt, lb.Dist)
			cnt++
		}
		if cnt == 0 {
			continue
		}
		t.AddRow("4b avg KL", d0(card), f3(sum/float64(cnt)))
	}
	t.Note("4(b): paper shape: KL grows with |P|")
	return t, nil
}

// Fig5 reproduces the bucket-count self-tuning example (Figure 5):
// the cross-validated error E_b as b grows and the Auto choice.
func Fig5(e *Env) (*Table, error) {
	params := e.Params()
	dense := e.densePathsRelaxed(params, 1, 100, 1)
	if len(dense) == 0 {
		return nil, fmt.Errorf("fig5: no dense unit path")
	}
	dp := dense[0]
	var samples []float64
	data := e.Data()
	for _, oc := range data.OccurrencesOfPath(dp.path) {
		m := data.Traj(oc.Traj)
		if params.IntervalOf(m.ArrivalAt(oc.Pos)) == dp.interval {
			samples = append(samples, m.EdgeCosts[oc.Pos])
		}
	}
	cfg := params.Auto
	cfg.MaxBuckets = 10
	// Record the full error curve (not stopping early) for the plot.
	curveCfg := cfg
	curveCfg.MinImprove = -1 // never stop: capture E_b for all b
	curve, err := hist.AutoBucketCount(samples, params.Resolution, curveCfg)
	if err != nil {
		return nil, err
	}
	choice, err := hist.AutoBucketCount(samples, params.Resolution, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5",
		Title:  fmt.Sprintf("Auto bucket selection, %s: E_b vs b (densest unit path, %d samples)", e.Cfg.Name, len(samples)),
		Header: []string{"b", "E_b"},
	}
	for b, eb := range curve.Errors {
		t.AddRow(d0(b+1), fmt.Sprintf("%.6f", eb))
	}
	t.Note("Auto chose b = %d; paper shape: error drops sharply, then flattens", choice.Chosen)
	return t, nil
}

// Fig11 reproduces the histogram-representation study (Figure 11):
// (a) KL of Gamma/Gaussian/Auto fits from the raw distribution,
// (b) KL of Sta-3/Sta-4/Auto histograms, (c) the space-saving ratio.
func Fig11(e *Env) (*Table, error) {
	params := e.Params()
	dense := e.densePathsRelaxed(params, 1, 80, 60)
	if len(dense) == 0 {
		return nil, fmt.Errorf("fig11: no dense unit paths")
	}
	data := e.Data()
	var klGamma, klGauss, klAuto, klSta3, klSta4 float64
	var saveSta3, saveSta4, saveAuto float64
	n := 0
	for _, dp := range dense {
		var samples []float64
		for _, oc := range data.OccurrencesOfPath(dp.path) {
			m := data.Traj(oc.Traj)
			if params.IntervalOf(m.ArrivalAt(oc.Pos)) == dp.interval {
				samples = append(samples, m.EdgeCosts[oc.Pos])
			}
		}
		raw, err := hist.NewRaw(samples, params.Resolution)
		if err != nil {
			continue
		}
		gam, err1 := stats.FitGamma(samples)
		gau, err2 := stats.FitGaussian(samples)
		auto, _, err3 := hist.AutoHistogram(samples, params.Resolution, params.Auto)
		sta3, err4 := hist.StaticHistogram(samples, params.Resolution, 3)
		sta4, err5 := hist.StaticHistogram(samples, params.Resolution, 4)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			continue
		}
		klGamma += stats.KLRawVsFunc(raw, gam.CDF)
		klGauss += stats.KLRawVsFunc(raw, gau.CDF)
		klAuto += stats.KLRawVsHistogram(raw, auto)
		klSta3 += stats.KLRawVsHistogram(raw, sta3)
		klSta4 += stats.KLRawVsHistogram(raw, sta4)
		rawStorage := float64(2 * raw.StorageEntries())
		saveSta3 += 1 - float64(3*sta3.NumBuckets())/rawStorage
		saveSta4 += 1 - float64(3*sta4.NumBuckets())/rawStorage
		saveAuto += 1 - float64(3*auto.NumBuckets())/rawStorage
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("fig11: no usable unit paths")
	}
	nf := float64(n)
	t := &Table{
		ID:     "fig11",
		Title:  fmt.Sprintf("Histogram representation, %s (%d unit-path variables)", e.Cfg.Name, n),
		Header: []string{"panel", "method", "value"},
	}
	t.AddRow("11a KL", "Gamma", f3(klGamma/nf))
	t.AddRow("11a KL", "Gaussian", f3(klGauss/nf))
	t.AddRow("11a KL", "Auto", f3(klAuto/nf))
	t.AddRow("11b KL", "Sta-3", f3(klSta3/nf))
	t.AddRow("11b KL", "Sta-4", f3(klSta4/nf))
	t.AddRow("11b KL", "Auto", f3(klAuto/nf))
	t.AddRow("11c space saved", "Sta-3", pct(saveSta3/nf))
	t.AddRow("11c space saved", "Sta-4", pct(saveSta4/nf))
	t.AddRow("11c space saved", "Auto", pct(saveAuto/nf))
	t.Note("paper shape: Auto most accurate in (a); Auto ≈ Sta-4 in (b); Auto saves more space in (c)")
	return t, nil
}

// verifyShape returns a note when a monotone expectation is violated;
// experiments use it to self-check the reproduced trends.
func verifyShape(vals []float64, increasing bool) string {
	for i := 1; i < len(vals); i++ {
		if increasing && vals[i] < vals[i-1] {
			return fmt.Sprintf("WARNING: series not increasing at index %d", i)
		}
		if !increasing && vals[i] > vals[i-1] {
			return fmt.Sprintf("WARNING: series not decreasing at index %d", i)
		}
	}
	return ""
}

var _ = graph.NoEdge

// Table2 prints the parameter grid of the paper's Table 2 with the
// values this reproduction sweeps; it is configuration, not a
// measurement, but cmd/experiments exposes it for completeness.
func Table2(e *Env) (*Table, error) {
	params := e.Params()
	t := &Table{
		ID:     "table2",
		Title:  "Parameter settings (paper Table 2; defaults in use marked *)",
		Header: []string{"parameter", "values", "in use"},
	}
	t.AddRow("α (min)", "15, 30*, 45, 60, 120", d0(params.AlphaMinutes))
	t.AddRow("β", "15, 30*, 45, 60", d0(params.Beta))
	t.AddRow("|P_query|", "5..100 (figure-dependent)", "-")
	t.AddRow("MaxRank", "bound on instantiated path cardinality", d0(params.MaxRank))
	t.AddRow("cost domain", "time, emissions", params.Domain.String())
	return t, nil
}
