// Package experiments regenerates every table and figure of the
// paper's empirical study (Section 5) on the synthetic-city substitute
// workloads. Each FigNN function returns a Table whose rows mirror the
// series the paper plots; cmd/experiments renders them and
// EXPERIMENTS.md records the measured-vs-paper comparison.
package experiments
