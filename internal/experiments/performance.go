package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
)

// Fig16 reproduces the query-efficiency study (Figure 16): average
// run-time of estimating one path's cost distribution, per method and
// query cardinality, including the rank-capped OD-2/OD-3/OD-4.
func Fig16(e *Env) (*Table, error) {
	params := e.Params()
	h, err := e.Hybrid(params, 1)
	if err != nil {
		return nil, err
	}
	variants := []queryVariant{
		{"OD", core.QueryOptions{Method: core.MethodOD}},
		{"RD", core.QueryOptions{Method: core.MethodRD, Seed: 3}},
		{"HP", core.QueryOptions{Method: core.MethodHP}},
		{"LB", core.QueryOptions{Method: core.MethodLB}},
		{"OD-4", core.QueryOptions{Method: core.MethodOD, RankCap: 4}},
		{"OD-3", core.QueryOptions{Method: core.MethodOD, RankCap: 3}},
		{"OD-2", core.QueryOptions{Method: core.MethodOD, RankCap: 2}},
	}
	t := &Table{
		ID:     "fig16",
		Title:  fmt.Sprintf("Query run-time per method, %s (avg ms per path)", e.Cfg.Name),
		Header: append([]string{"|P|"}, names(variants)...),
	}
	depart := departureFor(params, params.IntervalOf(8*3600))
	for _, card := range []int{10, 20, 40, 60} {
		paths := e.randomPaths(card, e.Cfg.PathsPerPoint, 1000+int64(card))
		if len(paths) == 0 {
			continue
		}
		row := []string{d0(card)}
		for _, v := range variants {
			var total time.Duration
			n := 0
			for _, p := range paths {
				start := time.Now()
				if _, err := h.CostDistribution(p, depart, v.opt); err != nil {
					continue
				}
				total += time.Since(start)
				n++
			}
			if n == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, ms(float64(total.Microseconds())/1000/float64(n)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note("paper shape: OD fastest (fewest, coarsest factors); LB and HP slowest; OD-x faster for larger x")
	return t, nil
}

// queryVariant names one estimator configuration of Figure 16.
type queryVariant struct {
	name string
	opt  core.QueryOptions
}

func names(vs []queryVariant) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.name
	}
	return out
}

// Fig17 reproduces the OD run-time breakdown (Figure 17): time in the
// three steps — OI (identify optimal decomposition), JC (joint
// computation), MC (marginal derivation) — as the dataset grows.
func Fig17(e *Env) (*Table, error) {
	params := e.Params()
	t := &Table{
		ID:     "fig17",
		Title:  fmt.Sprintf("OD run-time breakdown, %s (|P|=20, avg ms)", e.Cfg.Name),
		Header: []string{"fraction", "OI", "JC", "MC", "total"},
	}
	paths := e.randomPaths(20, e.Cfg.PathsPerPoint, 1717)
	depart := departureFor(params, params.IntervalOf(8*3600))
	for _, frac := range []float64{0.25, 0.5, 0.75, 1} {
		h, err := e.Hybrid(params, frac)
		if err != nil {
			return nil, err
		}
		var oi, jc, mc time.Duration
		n := 0
		for _, p := range paths {
			res, err := h.CostDistribution(p, depart, core.QueryOptions{Method: core.MethodOD})
			if err != nil {
				continue
			}
			oi += res.Timing.OI
			jc += res.Timing.JC
			mc += res.Timing.MC
			n++
		}
		if n == 0 {
			continue
		}
		nf := float64(n)
		t.AddRow(pct(frac),
			ms(float64(oi.Microseconds())/1000/nf),
			ms(float64(jc.Microseconds())/1000/nf),
			ms(float64(mc.Microseconds())/1000/nf),
			ms(float64((oi+jc+mc).Microseconds())/1000/nf))
	}
	t.Note("paper shape: JC dominates; OI and MC are cheap")
	return t, nil
}

// Fig18 reproduces the stochastic-routing integration study
// (Figure 18): DFS budget-query run-times with LB, HP and OD cost
// estimators under three budget levels.
func Fig18(e *Env) (*Table, error) {
	params := e.Params()
	h, err := e.Hybrid(params, 1)
	if err != nil {
		return nil, err
	}
	r := routing.New(h)
	t := &Table{
		ID:     "fig18",
		Title:  fmt.Sprintf("Stochastic routing run-time, %s (avg ms per query)", e.Cfg.Name),
		Header: []string{"budget", "LB-DFS", "HP-DFS", "OD-DFS", "#queries"},
	}
	pairs := e.routePairs(params)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("fig18: no routable pairs")
	}
	for _, budgetMult := range []float64{1.3, 1.8, 2.5} {
		times := make(map[core.Method]time.Duration)
		n := 0
		for _, pr := range pairs {
			ok := true
			for _, m := range []core.Method{core.MethodLB, core.MethodHP, core.MethodOD} {
				start := time.Now()
				_, err := r.BestPath(routing.Query{
					Source: pr.src, Dest: pr.dst,
					Depart: 8 * 3600, Budget: pr.freeflow * budgetMult,
				}, routing.Options{Method: m, Incremental: true, MaxExpansions: 3000})
				if err != nil {
					ok = false
					break
				}
				times[m] += time.Since(start)
			}
			if ok {
				n++
			}
		}
		if n == 0 {
			continue
		}
		nf := float64(n)
		t.AddRow(fmt.Sprintf("%.1f×ff", budgetMult),
			ms(float64(times[core.MethodLB].Microseconds())/1000/nf),
			ms(float64(times[core.MethodHP].Microseconds())/1000/nf),
			ms(float64(times[core.MethodOD].Microseconds())/1000/nf),
			d0(n))
	}
	t.Note("paper shape: OD-DFS outperforms HP-DFS and LB-DFS at every budget")
	return t, nil
}

type routePair struct {
	src, dst graph.VertexID
	freeflow float64
}

// routePairs samples reachable OD pairs with moderate free-flow times.
func (e *Env) routePairs(params core.Params) []routePair {
	rnd := newRand(99)
	var out []routePair
	for attempt := 0; attempt < 500 && len(out) < e.Cfg.RoutePairs; attempt++ {
		src := graph.VertexID(rnd.Intn(e.G.NumVertices()))
		dists := e.G.ShortestDistances(src, graph.FreeFlowWeight)
		var dst graph.VertexID = -1
		best := 0.0
		for v, d := range dists {
			if graph.VertexID(v) == src {
				continue
			}
			if d > best && d < 600 && d > 120 {
				best = d
				dst = graph.VertexID(v)
			}
		}
		if dst >= 0 {
			out = append(out, routePair{src: src, dst: dst, freeflow: best})
		}
	}
	return out
}
