package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// Config selects a workload. D1 plays the role of the Aalborg fleet
// (all-roads city, moderate data), D2 the Beijing fleet (main-roads
// city, more data).
type Config struct {
	Name   string
	Preset netgen.Preset
	Trips  int
	Seed   int64
	// PathsPerPoint and RoutePairs bound experiment workload sizes so
	// the suite stays laptop-scale.
	PathsPerPoint int
	RoutePairs    int
	// Beta overrides the qualified-trajectory threshold (0 = paper
	// default of 30); tiny test workloads need a smaller one.
	Beta int
}

// D1 returns the Aalborg-like workload configuration.
func D1() Config {
	return Config{
		Name: "D1", Preset: netgen.PresetSmall, Trips: 25000, Seed: 11,
		PathsPerPoint: 25, RoutePairs: 8,
	}
}

// D2 returns the Beijing-like workload configuration.
func D2() Config {
	return Config{
		Name: "D2", Preset: netgen.PresetSmall, Trips: 50000, Seed: 22,
		PathsPerPoint: 25, RoutePairs: 8,
	}
}

// Tiny returns a minimal configuration for tests.
func Tiny() Config {
	return Config{
		Name: "tiny", Preset: netgen.PresetTest, Trips: 3000, Seed: 7,
		PathsPerPoint: 5, RoutePairs: 3, Beta: 10,
	}
}

// Env is a lazily built, cached experiment environment: one network,
// one trajectory workload, and trained hybrid graphs per parameter
// set.
type Env struct {
	Cfg Config
	G   *graph.Graph
	Res *trajgen.Result

	mu      sync.Mutex
	hybrids map[string]*core.HybridGraph
}

// NewEnv generates the network and workload for cfg.
func NewEnv(cfg Config) *Env {
	g := netgen.Generate(netgen.PresetConfig(cfg.Preset))
	gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: cfg.Seed, NumTrips: cfg.Trips, WithEmissions: true,
	})
	return &Env{
		Cfg:     cfg,
		G:       g,
		Res:     gen.Generate(),
		hybrids: make(map[string]*core.HybridGraph),
	}
}

// Params returns the defaults adjusted for the experiment scale: the
// paper's α and β with a rank bound that keeps joints tractable.
func (e *Env) Params() core.Params {
	p := core.DefaultParams()
	// Rank 4 matches the paper's regime: its Figures 9–10 show rank ≥ 4
	// variables are the scarcest class, so decompositions rarely chain
	// many deeply-overlapping high-rank joints.
	p.MaxRank = 4
	if e.Cfg.Beta > 0 {
		p.Beta = e.Cfg.Beta
	}
	return p
}

// densePathsRelaxed looks for dense paths at the ideal support level
// and falls back to the β threshold when the scaled workload has none.
func (e *Env) densePathsRelaxed(params core.Params, card, ideal, limit int) []densePath {
	if out := e.densePaths(params, card, ideal, limit); len(out) > 0 {
		return out
	}
	if ideal > params.Beta {
		return e.densePaths(params, card, params.Beta, limit)
	}
	return nil
}

// Hybrid returns (building and caching on first use) the hybrid graph
// for the given parameters over the given data subset fraction
// (1.0 = all trajectories).
func (e *Env) Hybrid(params core.Params, fraction float64) (*core.HybridGraph, error) {
	key := fmt.Sprintf("%d|%d|%d|%d|%v|%.2f",
		params.AlphaMinutes, params.Beta, params.MaxRank, params.StaticBuckets, params.Domain, fraction)
	e.mu.Lock()
	defer e.mu.Unlock()
	if h, ok := e.hybrids[key]; ok {
		return h, nil
	}
	data := e.Res.Collection
	if fraction < 1 {
		data = data.Subset(int(float64(data.Len()) * fraction))
	}
	h, err := core.Build(e.G, data, params)
	if err != nil {
		return nil, err
	}
	e.hybrids[key] = h
	return h, nil
}

// Data returns the full trajectory collection.
func (e *Env) Data() *gps.Collection { return e.Res.Collection }

// densePaths finds sub-paths of the given cardinality with at least
// minCount traversals within one α-interval, most supported first.
func (e *Env) densePaths(params core.Params, cardinality, minCount, limit int) []densePath {
	type key struct {
		pk string
		iv int
	}
	counts := make(map[key]int)
	samples := make(map[key]graph.Path)
	data := e.Res.Collection
	for i := 0; i < data.Len(); i++ {
		m := data.Traj(i)
		for pos := 0; pos+cardinality <= len(m.Path); pos++ {
			sub := m.Path[pos : pos+cardinality]
			iv := params.IntervalOf(m.ArrivalAt(pos))
			k := key{pk: sub.Key(), iv: iv}
			counts[k]++
			if _, ok := samples[k]; !ok {
				samples[k] = sub.Clone()
			}
		}
	}
	var out []densePath
	for k, c := range counts {
		if c >= minCount {
			out = append(out, densePath{path: samples[k], interval: k.iv, count: c})
		}
	}
	sortDense(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

type densePath struct {
	path     graph.Path
	interval int
	count    int
}

func sortDense(ds []densePath) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(a, b densePath) bool {
	if a.count != b.count {
		return a.count > b.count
	}
	return a.path.Key() < b.path.Key()
}

// randomPaths samples n simple paths of exactly card edges, seeded
// deterministically. Paths are drawn as windows of real trajectories
// (falling back to random walks), so query workloads follow travelled
// corridors the way the paper's query paths do, instead of wandering
// into roads no vehicle ever used.
func (e *Env) randomPaths(card, n int, seed int64) []graph.Path {
	rnd := rand.New(rand.NewSource(seed))
	data := e.Res.Collection
	var out []graph.Path
	seen := make(map[string]bool)
	for attempt := 0; attempt < n*200 && len(out) < n; attempt++ {
		m := data.Traj(rnd.Intn(data.Len()))
		if len(m.Path) >= card {
			pos := rnd.Intn(len(m.Path) - card + 1)
			p := m.Path[pos : pos+card].Clone()
			if !seen[p.Key()] {
				seen[p.Key()] = true
				out = append(out, p)
			}
			continue
		}
		start := graph.EdgeID(rnd.Intn(e.G.NumEdges()))
		if p := e.G.RandomWalkPath(start, card, rnd.Intn); p != nil && !seen[p.Key()] {
			seen[p.Key()] = true
			out = append(out, p)
		}
	}
	return out
}

// departureFor returns a departure second inside interval iv.
func departureFor(params core.Params, iv int) float64 {
	lo, _ := params.IntervalBounds(iv)
	return lo + 60
}
