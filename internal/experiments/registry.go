package experiments

import (
	"fmt"
	"sort"
)

// Runner is one figure-reproduction function.
type Runner func(*Env) (*Table, error)

// Registry maps figure identifiers to their reproduction runners.
var Registry = map[string]Runner{
	"2":  Table2,
	"3":  Fig3,
	"4":  Fig4,
	"5":  Fig5,
	"8":  Fig8,
	"9":  Fig9,
	"10": Fig10,
	"11": Fig11,
	"12": Fig12,
	"13": Fig13,
	"14": Fig14,
	"15": Fig15,
	"16": Fig16,
	"17": Fig17,
	"18": Fig18,
}

// IDs returns the registered figure identifiers in numeric order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		return atoiSafe(out[i]) < atoiSafe(out[j])
	})
	return out
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Run executes one figure on the environment.
func Run(e *Env, id string) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, IDs())
	}
	return r(e)
}
