package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkBatchDistribution measures a prefix-heavy /v1/batch
// workload with the convolution memo off vs on — the end-to-end
// speedup the memo buys the serving path. The query cache stays off
// so the comparison isolates the memo.
func BenchmarkBatchDistribution(b *testing.B) {
	sys := testSystem(b)
	sys.EnableQueryCache(0)
	srv := New(sys, Config{MaxInFlight: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Long random paths and all their even prefixes, one batch.
	rnd := rand.New(rand.NewSource(23))
	var queries []batchQuery
	for i := 0; i < 3; i++ {
		p, err := sys.RandomQueryPath(10, rnd.Intn)
		if err != nil {
			b.Fatal(err)
		}
		for n := 2; n <= len(p); n += 2 {
			ids := make([]int64, n)
			for j, e := range p[:n] {
				ids[j] = int64(e)
			}
			queries = append(queries, batchQuery{Kind: "distribution", Path: ids, Depart: 8 * 3600})
		}
	}
	body, err := json.Marshal(batchRequest{Queries: queries})
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var out batchResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			for _, r := range out.Results {
				if r.Status != http.StatusOK {
					b.Fatalf("entry status %d: %s", r.Status, r.Error)
				}
			}
		}
	}
	b.Run("memo-off", func(b *testing.B) { sys.EnableConvMemo(0); run(b) })
	b.Run("memo-on", func(b *testing.B) { sys.EnableConvMemo(1 << 16); run(b) })
}
