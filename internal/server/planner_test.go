package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// Server-side contract of the batch planner: /v1/batch plans its
// distribution entries as one unit against one model snapshot, with
// answers byte-identical to the unplanned per-entry path, the
// per-entry status contract intact, and the planner's accumulated
// effectiveness reported by /v1/stats.

func TestBatchPlannedMatchesUnplanned(t *testing.T) {
	sys := testSystem(t)
	sys.EnableConvMemo(4096)
	// No query cache: the unplanned pass would fill it and the planned
	// pass would be answered before planning (tests needing the cache
	// enable their own).
	sys.EnableQueryCache(0)
	sys.DisableBatchPlanner()
	t.Cleanup(sys.DisableBatchPlanner)
	srv := New(sys, Config{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	src, dst, budget := routePair(t, sys)
	// The invalid entry repeats the trunk's first edge: it shares
	// every prefix with the valid entries but is not a simple path,
	// so it must fail alone with a per-entry 400.
	bad := append(append([]int64{}, path...), path[0])
	req := batchRequest{Queries: []batchQuery{
		{Kind: "distribution", Path: path, Depart: depart, Budget: 3600},
		{Kind: "distribution", Path: path[:len(path)-1], Depart: depart},
		{Kind: "distribution", Path: path[:2], Depart: depart},
		{Kind: "distribution", Path: path, Depart: depart, Budget: 3600}, // duplicate
		{Kind: "distribution", Path: bad, Depart: depart},
		{Kind: "route", Source: src, Dest: dst, Depart: depart, Budget: budget},
	}}

	var unplanned batchResponse
	if code := postJSON(t, ts.URL+"/v1/batch", req, &unplanned); code != http.StatusOK {
		t.Fatalf("unplanned batch = %d", code)
	}

	sys.EnableBatchPlanner(4)
	var planned batchResponse
	if code := postJSON(t, ts.URL+"/v1/batch", req, &planned); code != http.StatusOK {
		t.Fatalf("planned batch = %d", code)
	}

	for i := range req.Queries {
		u, p := unplanned.Results[i], planned.Results[i]
		if u.Status != p.Status {
			t.Fatalf("entry %d: planned status %d, unplanned %d", i, p.Status, u.Status)
		}
		if u.Distribution == nil != (p.Distribution == nil) {
			t.Fatalf("entry %d: planned/unplanned distribution presence differs", i)
		}
		if u.Distribution == nil {
			continue
		}
		if u.Distribution.MeanS != p.Distribution.MeanS ||
			u.Distribution.P50S != p.Distribution.P50S ||
			len(u.Distribution.Buckets) != len(p.Distribution.Buckets) {
			t.Fatalf("entry %d: planned answer differs from unplanned: %+v vs %+v",
				i, p.Distribution, u.Distribution)
		}
		for j := range u.Distribution.Buckets {
			if u.Distribution.Buckets[j] != p.Distribution.Buckets[j] {
				t.Fatalf("entry %d bucket %d differs under planning", i, j)
			}
		}
		if u.Distribution.ProbWithin != nil &&
			(p.Distribution.ProbWithin == nil || *u.Distribution.ProbWithin != *p.Distribution.ProbWithin) {
			t.Fatalf("entry %d: prob_within differs under planning", i)
		}
	}
	r := planned.Results
	if r[4].Status != http.StatusBadRequest || r[4].Error == "" {
		t.Fatalf("invalid-path entry should be a per-entry 400: %+v", r[4])
	}
	if r[5].Status != http.StatusOK || r[5].Route == nil {
		t.Fatalf("route entry must bypass the planner and still answer: %+v", r[5])
	}
}

func TestStatsReportsPlanner(t *testing.T) {
	sys := testSystem(t)
	sys.DisableBatchPlanner()
	t.Cleanup(sys.DisableBatchPlanner)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var off statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &off); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if off.Planner != nil {
		t.Fatalf("planner block present with the planner disabled: %+v", off.Planner)
	}

	sys.EnableBatchPlanner(3)
	// A fresh (empty) query cache: earlier tests may have cached these
	// exact queries, and cache hits are answered before planning.
	sys.EnableQueryCache(256)
	path, depart := densePath(t, sys)
	req := batchRequest{Queries: []batchQuery{
		{Kind: "distribution", Path: path, Depart: depart},
		{Kind: "distribution", Path: path[:len(path)-1], Depart: depart},
		{Kind: "distribution", Path: path[:2], Depart: depart},
	}}
	var resp batchResponse
	if code := postJSON(t, ts.URL+"/v1/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	for i, r := range resp.Results {
		if r.Status != http.StatusOK {
			t.Fatalf("entry %d: status %d (%s)", i, r.Status, r.Error)
		}
	}

	var on statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &on); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	p := on.Planner
	if p == nil {
		t.Fatal("no planner block with the planner enabled")
	}
	if p.Workers != 3 || p.Batches != 1 || p.Queries != 3 || p.Planned != 3 {
		t.Fatalf("planner counters wrong: %+v", p)
	}
	// The three queries are prefixes of one trunk: the trie holds
	// len(path) nodes, each answered exactly once.
	if p.Nodes != len(path) || p.Convolutions+p.ProbeHits != p.Nodes {
		t.Fatalf("planner accounting broken for a %d-edge trunk: %+v", len(path), p)
	}
	if p.SharedNodes == 0 || p.SavedSteps == 0 {
		t.Fatalf("prefix sharing not detected: %+v", p)
	}
	if p.IndependentSteps != p.Convolutions+p.ProbeHits+p.SavedSteps {
		t.Fatalf("saved_steps does not reconcile: %+v", p)
	}
}
