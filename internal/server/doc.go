// Package server exposes a trained pathcost.System over an HTTP JSON
// API — the serving half of the paper's train-once/serve-many
// economics (training takes minutes to ~45 minutes on the paper's
// fleets; a query takes milliseconds). The API surface:
//
//	POST /v1/distribution  — path cost-distribution query
//	POST /v1/route         — probabilistic budget routing
//	POST /v1/topk          — top-k paths by on-time probability
//	POST /v1/batch         — N distribution/route/topk queries at once
//	GET  /v1/stats         — model, cache, memo and serving counters
//	GET  /healthz          — liveness
//
// docs/API.md is the full request/response reference.
//
// The handler is safe for arbitrary client concurrency: query
// evaluation is bounded by a semaphore (Config.MaxInFlight) so a
// traffic spike degrades into queueing rather than into unbounded
// goroutine and memory growth, and the underlying System is swappable
// at runtime (Swap) for zero-downtime model reloads. Batch entries
// evaluate concurrently against one system snapshot, each charged
// individually under the same semaphore; when the served System has a
// convolution memo enabled (EnableConvMemo), overlapping entries
// reuse each other's sub-path convolutions.
package server
