package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	pathcost "repro"
	"repro/internal/api"
)

var (
	deadlineSysOnce sync.Once
	deadlineSysInst *pathcost.System
	deadlineSysErr  error
)

// deadlineSystem is a private System for the deadline tests. The
// package-shared testSystem carries a query cache some tests enable,
// and a cached answer legitimately bypasses the admission gate — so a
// request these tests expect to park behind a held slot could answer
// 200 from cache instead. A system no test ever attaches a cache to
// keeps every query on the gated path.
func deadlineSystem(t *testing.T) *pathcost.System {
	t.Helper()
	deadlineSysOnce.Do(func() {
		params := pathcost.DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		deadlineSysInst, deadlineSysErr = pathcost.Synthesize(pathcost.SynthesizeConfig{
			Preset: "test", Trips: 3000, Seed: 11, Params: params,
		})
	})
	if deadlineSysErr != nil {
		t.Fatal(deadlineSysErr)
	}
	return deadlineSysInst
}

// postWithBudget POSTs body with an api.BudgetHeader value ("" omits
// the header) and returns the status code and decoded error message
// (empty on 200).
func postWithBudget(t *testing.T, url, budget string, body any) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if budget != "" {
		req.Header.Set(api.BudgetHeader, budget)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, ""
	}
	var e errorResponse
	_ = json.Unmarshal(raw, &e)
	return resp.StatusCode, e.Error
}

// TestDefaultTimeoutAnswers504 pins the deadline contract: when the
// server-imposed deadline expires before an answer is ready, every
// query endpoint answers 504 — a definitive outcome for a
// still-listening client — instead of silently writing nothing (the
// client-disconnect path) or mislabeling the timeout a 422/503. The
// expiry is made deterministic by holding the only evaluation slot:
// each request parks in the admission gate until its deadline fires.
func TestDefaultTimeoutAnswers504(t *testing.T) {
	sys := deadlineSystem(t)
	s := New(sys, Config{MaxInFlight: 1, DefaultTimeout: 40 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	src, dst, budget := routePair(t, sys)

	s.sem <- struct{}{} // saturate the gate: every request below parks
	defer func() { <-s.sem }()

	cases := []struct {
		name string
		url  string
		body any
	}{
		{"distribution", ts.URL + "/v1/distribution", distributionRequest{Path: path, Depart: depart}},
		{"route", ts.URL + "/v1/route", routeRequest{Source: src, Dest: dst, Depart: depart, Budget: budget}},
		{"topk", ts.URL + "/v1/topk", topkRequest{RouteRequest: routeRequest{Source: src, Dest: dst, Depart: depart, Budget: budget}, K: 2}},
		{"state", ts.URL + "/v1/state", stateRequest{Path: path, Depart: depart, UILo: depart, UIHi: depart}},
	}
	for _, tc := range cases {
		status, msg := postWithBudget(t, tc.url, "", tc.body)
		if status != http.StatusGatewayTimeout {
			t.Errorf("%s: status %d (%s), want 504", tc.name, status, msg)
		} else if !strings.Contains(msg, "deadline") {
			t.Errorf("%s: 504 message %q does not mention the deadline", tc.name, msg)
		}
	}

	// A batch whose deadline expires mid-request still answers 200:
	// the envelope arrived, every entry inside carries its own 504.
	var bresp batchResponse
	status := postJSON(t, ts.URL+"/v1/batch", batchRequest{Queries: []batchQuery{
		{Kind: "distribution", Path: path, Depart: depart},
		{Kind: "route", Source: src, Dest: dst, Depart: depart, Budget: budget},
	}}, &bresp)
	if status != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with per-entry 504s", status)
	}
	for i, res := range bresp.Results {
		if res.Status != http.StatusGatewayTimeout {
			t.Errorf("batch entry %d: status %d (%s), want 504", i, res.Status, res.Error)
		}
	}
}

// TestExpiredContextRejectedAtAdmission pins the born-expired path: a
// request context whose deadline already passed is refused at the
// gate with a 504 mapping, before any evaluation work starts.
func TestExpiredContextRejectedAtAdmission(t *testing.T) {
	sys := deadlineSystem(t)
	s := New(sys, Config{MaxInFlight: 4})

	path, depart := densePath(t, sys)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, status, msg := s.evalDistribution(ctx, sys, &distributionRequest{Path: path, Depart: depart})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired-context distribution: status %d (%s), want 504", status, msg)
	}
	if !strings.Contains(msg, "deadline") {
		t.Fatalf("504 message %q does not mention the deadline", msg)
	}
}

// TestBudgetHeaderTightensDeadline pins the per-request budget: on a
// server with no default timeout, an X-Budget-Ms header bounds the
// request — here it expires while the request is parked behind a
// saturated MaxInFlight gate, which must answer 504, not hang and not
// write nothing.
func TestBudgetHeaderTightensDeadline(t *testing.T) {
	sys := deadlineSystem(t)
	s := New(sys, Config{MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	body := distributionRequest{Path: path, Depart: depart}

	// Hold the only evaluation slot so the budgeted request queues.
	s.sem <- struct{}{}
	status, msg := postWithBudget(t, ts.URL+"/v1/distribution", "40", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("budgeted request behind a full gate: status %d (%s), want 504", status, msg)
	}
	<-s.sem

	// With the slot free and a generous budget the same request
	// answers normally — the header codepath must not distort success.
	if status, msg := postWithBudget(t, ts.URL+"/v1/distribution", "30000", body); status != http.StatusOK {
		t.Fatalf("generous budget: status %d (%s), want 200", status, msg)
	}
}

// TestBudgetHeaderGarbageRejected pins loud rejection: a budget that
// does not parse as a positive integer is a 400, never silently
// treated as unlimited.
func TestBudgetHeaderGarbageRejected(t *testing.T) {
	sys := testSystem(t)
	s := New(sys, Config{MaxInFlight: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	for _, bad := range []string{"soon", "-5", "0", "1.5"} {
		status, msg := postWithBudget(t, ts.URL+"/v1/distribution", bad,
			distributionRequest{Path: path, Depart: depart})
		if status != http.StatusBadRequest {
			t.Errorf("budget %q: status %d (%s), want 400", bad, status, msg)
		}
	}
}

// TestSlowLorisConnectionReaped pins the listener hygiene bound: a
// connection that dribbles its request header forever is cut off at
// ServeReadHeaderTimeout instead of holding a connection (and
// eventually the whole accept loop's file descriptors) hostage.
func TestSlowLorisConnectionReaped(t *testing.T) {
	saved := ServeReadHeaderTimeout
	ServeReadHeaderTimeout = 150 * time.Millisecond
	defer func() { ServeReadHeaderTimeout = saved }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ServeListener(ctx, http.NotFoundHandler(), ln, 0) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Send a partial request line and then stall, never finishing the
	// headers — the classic slow-loris hold.
	if _, err := conn.Write([]byte("POST /v1/stats HTTP/1.1\r\nHost: x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || err == io.EOF {
		// EOF is fine too: the server closed us. What must NOT happen
		// is the read deadline firing with the connection still open.
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("connection still open %v after ReadHeaderTimeout %v: slow-loris hold not reaped",
			5*time.Second, ServeReadHeaderTimeout)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("ServeListener: %v", err)
	}
}
