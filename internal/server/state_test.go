package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

// TestStateEndpoint drives the partial-state relay the sharded
// coordinator runs: a first segment from a point interval, then a
// continuation seeded with the returned (state, UI).
func TestStateEndpoint(t *testing.T) {
	sys := testSystem(t)
	srv := New(sys, Config{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	if len(path) < 2 {
		t.Fatal("need a multi-edge dense path")
	}
	cut := len(path) / 2
	if cut == 0 {
		cut = 1
	}

	var first stateResult
	code := postJSON(t, ts.URL+"/v1/state", stateRequest{
		Path: path[:cut], Depart: depart, UILo: depart, UIHi: depart,
	}, &first)
	if code != http.StatusOK {
		t.Fatalf("first segment = %d", code)
	}
	if first.State == "" || !strings.HasPrefix(first.State, "pstate-v1\n") {
		t.Fatalf("first segment state malformed: %q", first.State)
	}
	if first.Factors <= 0 || first.MaxRank <= 0 || first.UIHi < first.UILo {
		t.Fatalf("first segment metadata malformed: %+v", first)
	}

	var cont stateResult
	code = postJSON(t, ts.URL+"/v1/state", stateRequest{
		Path: path[cut:], Depart: depart,
		UILo: first.UILo, UIHi: first.UIHi, State: first.State,
	}, &cont)
	if code != http.StatusOK {
		t.Fatalf("continuation = %d", code)
	}
	if cont.State == "" || cont.Factors <= 0 {
		t.Fatalf("continuation malformed: %+v", cont)
	}

	// The batch "state" kind must answer identically to the endpoint.
	var batch batchResponse
	code = postJSON(t, ts.URL+"/v1/batch", api.BatchRequest{Queries: []api.BatchQuery{{
		Kind: "state", Path: path[:cut], Depart: depart, UILo: depart, UIHi: depart,
	}}}, &batch)
	if code != http.StatusOK || len(batch.Results) != 1 {
		t.Fatalf("batch state = %d (%d results)", code, len(batch.Results))
	}
	br := batch.Results[0]
	if br.Status != http.StatusOK || br.State == nil {
		t.Fatalf("batch state entry = %+v", br)
	}
	if br.State.State != first.State || br.State.Factors != first.Factors {
		t.Fatalf("batch state diverged from /v1/state:\n%+v\nvs\n%+v", br.State, first)
	}
}

func TestStateEndpointRejections(t *testing.T) {
	sys := testSystem(t)
	srv := New(sys, Config{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	cases := []struct {
		name string
		req  stateRequest
		want string
	}{
		{"rd", stateRequest{Path: path, Depart: depart, Method: "rd", UILo: depart, UIHi: depart},
			"cannot be evaluated segment by segment"},
		{"inverted ui", stateRequest{Path: path, Depart: depart, UILo: depart + 60, UIHi: depart},
			"inverted departure interval"},
		{"garbage state", stateRequest{Path: path, Depart: depart, UILo: depart, UIHi: depart,
			State: "not a pstate dump"}, "unsupported partial state"},
		{"first not point", stateRequest{Path: path, Depart: depart, UILo: depart, UIHi: depart + 60},
			"point interval"},
	}
	for _, tc := range cases {
		var e errorResponse
		code := postJSON(t, ts.URL+"/v1/state", tc.req, &e)
		if code != http.StatusBadRequest && code != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 4xx", tc.name, code)
			continue
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, e.Error, tc.want)
		}
	}

	// An unknown batch kind must advertise the state kind.
	var batch batchResponse
	code := postJSON(t, ts.URL+"/v1/batch", api.BatchRequest{Queries: []api.BatchQuery{{
		Kind: "nonsense",
	}}}, &batch)
	if code != http.StatusOK || len(batch.Results) != 1 {
		t.Fatalf("batch = %d", code)
	}
	if got := batch.Results[0].Error; !strings.Contains(got, "state") {
		t.Errorf("unknown-kind error %q does not mention the state kind", got)
	}
}

// TestMetricsEndpoint scrapes the Prometheus handler the daemon mounts
// on the pprof listener.
func TestMetricsEndpoint(t *testing.T) {
	sys := testSystem(t)
	srv := New(sys, Config{MaxInFlight: 4})
	apiSrv := httptest.NewServer(srv.Handler())
	defer apiSrv.Close()
	metrics := httptest.NewServer(srv.Metrics())
	defer metrics.Close()

	// Serve one query so the counters move.
	path, depart := densePath(t, sys)
	if code := postJSON(t, apiSrv.URL+"/v1/distribution",
		distributionRequest{Path: path, Depart: depart}, nil); code != http.StatusOK {
		t.Fatalf("distribution = %d", code)
	}

	resp, err := http.Get(metrics.URL)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		"pathcost_requests_served_total 1",
		"pathcost_requests_shed_total 0",
		"pathcost_max_in_flight 4",
		"pathcost_queued 0",
		"pathcost_uptime_seconds",
		"# TYPE pathcost_requests_served_total counter",
		"# TYPE pathcost_max_in_flight gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	post, err := http.Post(metrics.URL, "text/plain", nil)
	if err != nil {
		t.Fatalf("POST /metrics: %v", err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", post.StatusCode)
	}
}

// TestLoadShedding saturates the evaluation gate and its waiter queue,
// then checks the next request is answered 429 + Retry-After instead
// of queuing behind them.
func TestLoadShedding(t *testing.T) {
	sys := testSystem(t)
	srv := New(sys, Config{MaxInFlight: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The waiter is a route query: routing always takes an evaluation
	// slot directly, where a distribution query on the shared test
	// system could be answered from its query cache without queuing.
	src, dst, budget := routePair(t, sys)
	req := routeRequest{Source: src, Dest: dst, Depart: 8 * 3600, Budget: budget}

	// Occupy the only evaluation slot directly, then park one request
	// as the queue's only permitted waiter.
	srv.sem <- struct{}{}
	waiter := make(chan int, 1)
	go func() {
		waiter <- postJSON(t, ts.URL+"/v1/route", req, nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no request queued behind the held slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: this request must be shed.
	hr, err := http.Post(ts.URL+"/v1/distribution", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded server answered %d, want 429", hr.StatusCode)
	}
	if hr.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", hr.Header.Get("Retry-After"))
	}

	// Release the slot: the parked waiter must still complete normally —
	// shedding rejects new arrivals, never queued ones.
	<-srv.sem
	if code := <-waiter; code != http.StatusOK {
		t.Fatalf("queued request = %d after slot release, want 200", code)
	}
	if got := srv.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Shed != 1 || stats.MaxQueue != 1 {
		t.Fatalf("stats shed=%d max_queue=%d, want 1/1", stats.Shed, stats.MaxQueue)
	}
}

// TestStatsIngestGating: a query-only server must not advertise the
// ingest/epoch lifecycle it refuses to feed (regression: these blocks
// used to leak into /v1/stats with -ingest off).
func TestStatsIngestGating(t *testing.T) {
	sys := testSystem(t)

	off := httptest.NewServer(New(sys, Config{}).Handler())
	defer off.Close()
	var stats statsResponse
	if code := getJSON(t, off.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Ingest != nil || stats.Epoch != nil {
		t.Fatalf("ingest-off stats advertise the update pipeline: ingest=%+v epoch=%+v",
			stats.Ingest, stats.Epoch)
	}

	on := httptest.NewServer(New(sys, Config{EnableIngest: true}).Handler())
	defer on.Close()
	var stats2 statsResponse
	if code := getJSON(t, on.URL+"/v1/stats", &stats2); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats2.Ingest == nil || stats2.Epoch == nil {
		t.Fatalf("ingest-on stats omit the update pipeline: ingest=%+v epoch=%+v",
			stats2.Ingest, stats2.Epoch)
	}
}
