package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	pathcost "repro"
)

// Native fuzz targets for the HTTP handlers: arbitrary bodies must
// never panic the server and must only ever produce the documented
// status contract — 200 for answered queries, 400 for malformed or
// invalid requests, 422 for valid-but-unanswerable queries, 500 for
// internal evaluation faults. (503 needs a dead client context and
// cannot occur here; 405 needs a non-POST method and the targets only
// POST.) Every response body must be valid JSON.
//
// Seed corpus lives in testdata/fuzz/; CI runs a short fuzzing pass
// (-fuzz=FuzzServer... -fuzztime=10s) on every push, and any crasher
// it finds is minimized into that corpus automatically.

var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzErr  error
)

// fuzzServer builds one small served system shared by all fuzz
// executions (training per-execution would drown the fuzzer).
func fuzzServer(t testing.TB) *Server {
	t.Helper()
	fuzzOnce.Do(func() {
		params := pathcost.DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		var sys *pathcost.System
		sys, fuzzErr = pathcost.Synthesize(pathcost.SynthesizeConfig{
			Preset: "test", Trips: 2000, Seed: 17, Params: params,
		})
		if fuzzErr != nil {
			return
		}
		sys.EnableQueryCache(256)
		sys.EnableConvMemo(512)
		sys.EnableBatchPlanner(4)
		fuzzSrv = New(sys, Config{MaxInFlight: 8, MaxBatch: 16, MaxPathEdges: 64})
	})
	if fuzzErr != nil {
		t.Fatal(fuzzErr)
	}
	return fuzzSrv
}

// postFuzzBody drives one handler invocation and enforces the
// contract shared by both targets.
func postFuzzBody(t *testing.T, path string, body []byte) {
	t.Helper()
	srv := fuzzServer(t)
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req) // a panic here fails the fuzz run
	switch rec.Code {
	case 200, 400, 422, 500:
	default:
		t.Fatalf("status %d outside the documented contract (200/400/422/500) for body %q",
			rec.Code, body)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("status %d carried a non-JSON body %q for request %q",
			rec.Code, rec.Body.Bytes(), body)
	}
}

func FuzzServerDistribution(f *testing.F) {
	f.Add([]byte(`{"path":[0,1],"depart":28800}`))
	f.Add([]byte(`{"path":[0],"depart":0,"method":"LB","budget":600}`))
	f.Add([]byte(`{"path":[],"depart":-1}`))
	f.Add([]byte(`{"path":[999999999],"depart":1e308,"method":"??"}`))
	f.Add([]byte(`{"path":[0,1,"x"]`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"path":[0,5,0],"depart":28800,"unknown_field":true}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		postFuzzBody(t, "/v1/distribution", body)
	})
}

func FuzzServerBatch(f *testing.F) {
	f.Add([]byte(`{"queries":[{"kind":"distribution","path":[0,1],"depart":28800}]}`))
	f.Add([]byte(`{"queries":[{"kind":"route","source":0,"dest":5,"depart":28800,"budget":900},` +
		`{"kind":"topk","source":0,"dest":5,"depart":28800,"budget":900,"k":3}]}`))
	f.Add([]byte(`{"queries":[]}`))
	f.Add([]byte(`{"queries":[{"kind":"nope"}]}`))
	f.Add([]byte(`{"queries":null}`))
	f.Add([]byte(`{"queries":[{"path":[-1],"depart":-5}],"extra":1}`))
	f.Add([]byte(`[1,2,3]`))
	// Overlapping-path batches drive the batch planner's prefix trie:
	// shared trunks, duplicate entries, and an invalid entry whose
	// prefixes belong to the valid ones.
	f.Add([]byte(`{"queries":[{"path":[0,1,2,3],"depart":28800},` +
		`{"path":[0,1,2],"depart":28800},{"path":[0,1],"depart":28800},` +
		`{"path":[0,1,2,3],"depart":28800}]}`))
	f.Add([]byte(`{"queries":[{"path":[0,1,2],"depart":28800},` +
		`{"path":[0,1,2,0],"depart":28800},{"path":[0,1],"depart":28800,"method":"HP"}]}`))
	f.Add([]byte(`{"queries":[{"path":[0,1],"depart":28800,"method":"RD"},` +
		`{"path":[0,1],"depart":28800,"method":"LB"},` +
		`{"kind":"route","source":0,"dest":5,"depart":28800,"budget":900}]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		postFuzzBody(t, "/v1/batch", body)
	})
}
