package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	pathcost "repro"
	"repro/internal/api"
	"repro/internal/cache"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/ingest"
)

// DefaultMaxInFlight bounds concurrently evaluated queries when
// Config.MaxInFlight is 0. Query evaluation is CPU-bound, so a small
// multiple of typical core counts is plenty; excess requests queue.
const DefaultMaxInFlight = 32

// Config tunes a Server.
type Config struct {
	// MaxInFlight caps concurrently evaluated queries. Requests
	// beyond the cap wait for a slot or for the client to give up.
	// Route and topk requests each hold a slot for their whole
	// evaluation; distribution requests are charged per underlying
	// computation, so cache hits and singleflight followers are free.
	// Batch entries are charged individually under the same cap.
	// 0 means DefaultMaxInFlight.
	MaxInFlight int
	// MaxTopK caps the k accepted by /v1/topk (0 = 32).
	MaxTopK int
	// MaxPathEdges caps the path cardinality accepted by
	// /v1/distribution (0 = 256). Evaluation cost grows with path
	// length, so an uncapped path would let a few maximal requests
	// monopolize the MaxInFlight evaluation slots.
	MaxPathEdges int
	// MaxBatch caps the number of queries accepted in one /v1/batch
	// request (0 = 64).
	MaxBatch int
	// EnableIngest turns on POST /v1/ingest: raw GPS batches are
	// map-matched and staged into the served system's epoch delta
	// buffer (published by the daemon's epoch loop or SIGHUP). When
	// false the endpoint answers 404.
	EnableIngest bool
	// IngestWorkers bounds the map-matching pool per ingest batch
	// (≤ 1 = sequential).
	IngestWorkers int
	// MaxIngestBatch caps the trajectories accepted in one /v1/ingest
	// request (0 = 1024).
	MaxIngestBatch int
	// MaxQueue, when > 0, sheds load: a query arriving while MaxQueue
	// or more requests are already waiting for an evaluation slot is
	// answered 429 with Retry-After instead of joining the queue.
	// Shedding at admission keeps queue depth — and thus worst-case
	// latency behind the MaxInFlight gate — bounded. 0 disables
	// shedding (requests queue until the client gives up).
	MaxQueue int
	// DefaultTimeout, when > 0, bounds every query request
	// (/v1/distribution, /v1/route, /v1/topk, /v1/state, /v1/batch)
	// with a server-imposed deadline: the evaluation context expires
	// after this long and the request answers 504. A client can
	// tighten (never widen) the bound per request with the
	// api.BudgetHeader header. 0 leaves requests unbounded, the
	// pre-deadline behavior.
	DefaultTimeout time.Duration
}

// Server serves one pathcost.System over HTTP. Create with New, mount
// via Handler. All methods are safe for concurrent use.
type Server struct {
	sys   atomic.Pointer[pathcost.System]
	sem   chan struct{}
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	// pipeline, when ingestion is enabled, map-matches /v1/ingest
	// batches and stages them into the served system. Rebuilt on Swap
	// so staged deltas always target the system being served (its
	// cumulative counters restart with the new system).
	pipeline atomic.Pointer[ingest.Pipeline]

	served    atomic.Uint64 // requests answered 2xx
	rejected  atomic.Uint64 // requests answered 4xx/5xx
	abandoned atomic.Uint64 // clients that disconnected while queued for a slot
	shed      atomic.Uint64 // requests answered 429 by the MaxQueue load shedder
	reloads   atomic.Uint64 // Swap calls
	queued    atomic.Int64  // requests currently waiting for an evaluation slot
}

// New builds a Server around sys.
func New(sys *pathcost.System, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxTopK <= 0 {
		cfg.MaxTopK = 32
	}
	if cfg.MaxPathEdges <= 0 {
		cfg.MaxPathEdges = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxIngestBatch <= 0 {
		cfg.MaxIngestBatch = 1024
	}
	s := &Server{
		sem:   make(chan struct{}, cfg.MaxInFlight),
		cfg:   cfg,
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.sys.Store(sys)
	if cfg.EnableIngest {
		s.rebuildPipeline(sys)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/distribution", s.handleDistribution)
	s.mux.HandleFunc("/v1/route", s.handleRoute)
	s.mux.HandleFunc("/v1/topk", s.handleTopK)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/state", s.handleState)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// rebuildPipeline points the ingest pipeline at sys; the pipeline's
// construction cannot fail here (graph and sink are non-nil by
// construction of a System).
func (s *Server) rebuildPipeline(sys *pathcost.System) {
	p, err := ingest.New(sys.Graph, sys, ingest.Config{Workers: s.cfg.IngestWorkers})
	if err != nil {
		panic("server: building ingest pipeline: " + err.Error())
	}
	s.pipeline.Store(p)
}

// Handler returns the HTTP handler tree (also usable with httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// System returns the currently served system.
func (s *Server) System() *pathcost.System { return s.sys.Load() }

// Swap atomically replaces the served system and returns the previous
// one — the hot-reload primitive behind pathcostd's SIGHUP handling.
// In-flight queries finish against the system they started with; new
// requests see next. The swapped-in system keeps its own query-cache
// configuration (a fresh System starts uncached; enable its cache
// before swapping it in).
func (s *Server) Swap(next *pathcost.System) *pathcost.System {
	s.reloads.Add(1)
	prev := s.sys.Swap(next)
	if s.cfg.EnableIngest {
		// Re-point ingestion at the new system; an ingest batch racing
		// the swap stages into the system it loaded, whose epoch
		// machinery remains valid even after it stops being served.
		s.rebuildPipeline(next)
	}
	return prev
}

// Run serves the handler on addr until ctx is cancelled, then drains
// in-flight requests for up to drain before forcing connections
// closed (graceful shutdown). drain == 0 skips draining and closes
// immediately; drain < 0 means the 10-second default. Run returns
// nil after a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.RunListener(ctx, ln, drain)
}

// RunListener is Run over an already-bound listener — the form the
// daemon's testable run loop uses so tests can bind port 0 and
// discover the address before requests fly. The listener is owned and
// closed by the server.
func (s *Server) RunListener(ctx context.Context, ln net.Listener, drain time.Duration) error {
	return ServeListener(ctx, s.mux, ln, drain)
}

// ServeListener serves handler on ln until ctx is cancelled, then
// drains with the same contract as RunListener (drain == 0 closes
// immediately, drain < 0 means the 10-second default). Extracted so
// the sharded coordinator reuses the exact shutdown behavior for its
// own handler tree.
// Connection-hygiene bounds for every listener this package serves
// (query servers and the sharded coordinator alike). ReadHeaderTimeout
// caps how long a connection may dribble its request headers — the
// classic slow-loris hold — and IdleTimeout reclaims keep-alive
// connections that have gone quiet. Variables, not constants, so the
// regression test can shrink them to something observable.
var (
	ServeReadHeaderTimeout = 10 * time.Second
	ServeIdleTimeout       = 120 * time.Second
)

func ServeListener(ctx context.Context, handler http.Handler, ln net.Listener, drain time.Duration) error {
	if drain < 0 {
		drain = 10 * time.Second
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: ServeReadHeaderTimeout,
		IdleTimeout:       ServeIdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		var err error
		if drain == 0 {
			err = srv.Close()
		} else {
			sctx, cancel := context.WithTimeout(context.Background(), drain)
			defer cancel()
			err = srv.Shutdown(sctx)
			if errors.Is(err, context.DeadlineExceeded) {
				// Drain window elapsed with requests still running:
				// force the remaining connections closed, as
				// promised. That is still an orderly stop.
				err = srv.Close()
			}
		}
		// Shutdown/Close make ListenAndServe return, so this cannot
		// block; surface a real serve failure (e.g. a bind error that
		// raced the signal) instead of swallowing it.
		if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			return serr
		}
		return err
	}
}

// acquire takes a query-evaluation slot, giving up when the caller's
// context ends first. It reports whether the slot was obtained; the
// caller must release() exactly once when it was. Batch entries pass
// their request's context, so one disconnected batch client frees
// every slot its entries were waiting for.
func (s *Server) acquire(ctx context.Context) bool {
	if ctx.Err() != nil {
		// Already-dead client: don't let select's random choice burn
		// a slot on an evaluation nobody will receive.
		s.abandoned.Add(1)
		return false
	}
	select {
	case s.sem <- struct{}{}:
		// Free slot: never counts toward queue depth, so an idle
		// server cannot shed.
		return true
	default:
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		// Nothing will be written for this request; count it so
		// /v1/stats still shows traffic shed under saturation.
		s.abandoned.Add(1)
		return false
	}
}

func (s *Server) release() { <-s.sem }

// shedIfOverloaded implements Config.MaxQueue admission control: when
// the slot queue is already at its bound, answer 429 + Retry-After now
// rather than stacking another waiter behind the MaxInFlight gate.
// Checked at handler entry, before the body is even parsed — a shed
// request should cost close to nothing. Distinct from the 503 a gate
// rejection maps to: 429 means "healthy but full, back off", and the
// coordinator's hedging treats it as advisory, not as shard failure.
func (s *Server) shedIfOverloaded(w http.ResponseWriter) bool {
	if s.cfg.MaxQueue <= 0 || s.queued.Load() < int64(s.cfg.MaxQueue) {
		return false
	}
	s.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	s.writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	return true
}

// requestContext derives the evaluation context for one query
// request: the tighter of Config.DefaultTimeout and the caller's
// api.BudgetHeader header, layered on the request's own context so a
// client disconnect still cancels immediately. ok = false means the
// header was garbage and a 400 was already written. The returned
// cancel must always be called.
func (s *Server) requestContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	budget, hasBudget, err := api.ParseBudget(r.Header.Get(api.BudgetHeader))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return nil, nil, false
	}
	timeout := s.cfg.DefaultTimeout
	if hasBudget && (timeout <= 0 || budget < timeout) {
		timeout = budget
	}
	if timeout <= 0 {
		return r.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, true
}

// timeoutOutcome maps an evaluation that died with its context to the
// right answer: a server-imposed (or header-requested) deadline is a
// real outcome the client is still waiting to hear — 504; a vanished
// client gets nothing (status 0).
func (s *Server) timeoutOutcome(ctx context.Context) (int, string) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, "deadline exceeded"
	}
	return 0, ""
}

// --- JSON shapes -----------------------------------------------------
//
// The request/response shapes live in internal/api so the sharded
// coordinator emits byte-identical bodies; the aliases keep this file
// readable and the handler signatures unchanged.

type (
	errorResponse        = api.Error
	bucketJSON           = api.Bucket
	distributionRequest  = api.DistributionRequest
	distributionResponse = api.DistributionResponse
	routeRequest         = api.RouteRequest
	routeResponse        = api.RouteResponse
	topkRequest          = api.TopKRequest
	topkEntry            = api.TopKEntry
	topkResponse         = api.TopKResponse
	batchQuery           = api.BatchQuery
	batchRequest         = api.BatchRequest
	batchResult          = api.BatchResult
	batchResponse        = api.BatchResponse
	stateRequest         = api.StateRequest
	stateResult          = api.StateResult
)

// ingestPointJSON is one raw GPS fix.
type ingestPointJSON struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	T   float64 `json:"t"` // absolute seconds
}

// ingestTrajJSON is one raw GPS trace.
type ingestTrajJSON struct {
	ID     int64             `json:"id"`
	Points []ingestPointJSON `json:"points"`
}

// ingestRequest is a batch of raw traces for POST /v1/ingest.
type ingestRequest struct {
	Trajectories []ingestTrajJSON `json:"trajectories"`
}

// ingestResponse reports what happened to the batch: how map matching
// partitioned it, how staging partitioned the matches, and the delta
// backlog plus served epoch after staging. Staged trajectories enter
// the model at the next epoch publish, not immediately — epoch tells
// pollers when that happened.
type ingestResponse struct {
	Received      int    `json:"received"`
	Matched       int    `json:"matched"`
	MatchFailed   int    `json:"match_failed"`
	Staged        int    `json:"staged"`
	Rejected      int    `json:"rejected"`
	StagedPending int    `json:"staged_pending"`
	Epoch         uint64 `json:"epoch"`
}

type statsResponse struct {
	Vertices        int     `json:"vertices"`
	Edges           int     `json:"edges"`
	Variables       int     `json:"variables"`
	VariablesByRank []int   `json:"variables_by_rank"`
	Coverage        float64 `json:"coverage"`
	AlphaMinutes    int     `json:"alpha_minutes"`
	Beta            int     `json:"beta"`

	Cache    *cacheStatsJSON    `json:"cache,omitempty"`
	Memo     *cacheStatsJSON    `json:"memo,omitempty"`
	Synopsis *synopsisStatsJSON `json:"synopsis,omitempty"`
	Planner  *plannerStatsJSON  `json:"planner,omitempty"`
	Ingest   *ingestStatsJSON   `json:"ingest,omitempty"`
	Epoch    *epochStatsJSON    `json:"epoch,omitempty"`
	WAL      *walStatsJSON      `json:"wal,omitempty"`

	UptimeS     float64 `json:"uptime_s"`
	Served      uint64  `json:"served"`
	Rejected    uint64  `json:"rejected"`
	Abandoned   uint64  `json:"abandoned"`
	Shed        uint64  `json:"shed"`
	Reloads     uint64  `json:"reloads"`
	MaxInFlight int     `json:"max_in_flight"`
	MaxQueue    int     `json:"max_queue,omitempty"`
}

type cacheStatsJSON struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// synopsisStatsJSON reports the offline sub-path synopsis loaded with
// the model: entry count, serialized bytes, and probe effectiveness.
type synopsisStatsJSON struct {
	Entries int     `json:"entries"`
	Bytes   int     `json:"bytes"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// plannerStatsJSON reports the batch planner's accumulated
// effectiveness: of the independent_steps chain steps the planned
// batches would have cost evaluated one query at a time, only
// convolutions were executed and probe_hits were answered by the
// synopsis or memo; saved_steps is the remainder the prefix trie
// eliminated outright.
type plannerStatsJSON struct {
	Workers          int `json:"workers"`
	Batches          int `json:"batches"`
	Queries          int `json:"queries"`
	Planned          int `json:"planned"`
	Fallback         int `json:"fallback"`
	Nodes            int `json:"nodes"`
	SharedNodes      int `json:"shared_nodes"`
	Convolutions     int `json:"convolutions"`
	ProbeHits        int `json:"probe_hits"`
	IndependentSteps int `json:"independent_steps"`
	SavedSteps       int `json:"saved_steps"`
}

// ingestStatsJSON reports the streaming-ingestion pipeline's
// cumulative counters (present only when ingestion is enabled;
// counters restart when a model reload re-points the pipeline).
type ingestStatsJSON struct {
	Batches     int64 `json:"batches"`
	Received    int64 `json:"received"`
	Records     int64 `json:"records"`
	Matched     int64 `json:"matched"`
	MatchFailed int64 `json:"match_failed"`
	Staged      int64 `json:"staged"`
	Rejected    int64 `json:"rejected"`
}

// epochStatsJSON reports the served system's epoch lifecycle: the
// current epoch, the staged-delta backlog, and what the most recent
// incremental publish did.
type epochStatsJSON struct {
	Seq                    uint64  `json:"seq"`
	Publishes              uint64  `json:"publishes"`
	StagedPending          int     `json:"staged_pending"`
	StagedTotal            uint64  `json:"staged_total"`
	DecayHalflifeS         float64 `json:"decay_halflife_s"`
	LastTrajs              int     `json:"last_trajs"`
	LastTouchedVars        int     `json:"last_touched_vars"`
	LastRebuiltVars        int     `json:"last_rebuilt_vars"`
	LastNewVars            int     `json:"last_new_vars"`
	LastBuildMS            int64   `json:"last_build_ms"`
	LastDecayFactor        float64 `json:"last_decay_factor"`
	SynopsisCarried        int     `json:"synopsis_carried"`
	SynopsisRematerialized int     `json:"synopsis_rematerialized"`
	SynopsisDropped        int     `json:"synopsis_dropped"`
}

// walStatsJSON reports the attached ingest write-ahead log (present
// only when the daemon runs with -wal): durability frontier, how much
// of it a model checkpoint has retired, and the on-disk footprint.
// append_errors counts StageTrajectories batches rejected because the
// log could not persist them.
type walStatsJSON struct {
	LastSeq      uint64 `json:"last_seq"`
	Checkpoint   uint64 `json:"checkpoint"`
	Segments     int    `json:"segments"`
	Bytes        int64  `json:"bytes"`
	Appends      uint64 `json:"appends"`
	Truncations  uint64 `json:"truncations"`
	Discarded    int    `json:"discarded"`
	AppendErrors uint64 `json:"append_errors"`
}

// --- validation helpers ----------------------------------------------
//
// Shared with the coordinator via internal/api so both tiers reject
// malformed requests with identical messages.

// parseMethod validates the method name; empty selects OD.
func parseMethod(name string) (pathcost.Method, error) { return api.ParseMethod(name) }

// parsePath validates the edge sequence against the served graph.
func parsePath(g *pathcost.Graph, ids []int64, maxEdges int) (pathcost.Path, error) {
	return api.ParsePath(g, ids, maxEdges)
}

func checkVertex(g *pathcost.Graph, name string, v int64) error {
	return api.CheckVertex(g, name, v)
}

func checkDepart(depart float64) error { return api.CheckDepart(depart) }

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.writeJSONUncounted(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleDistribution(w http.ResponseWriter, r *http.Request) {
	if s.shedIfOverloaded(w) {
		return
	}
	var req distributionRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	resp, status, msg := s.evalDistribution(ctx, s.System(), &req)
	s.writeOutcome(w, status, msg, resp)
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if s.shedIfOverloaded(w) {
		return
	}
	var req routeRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	resp, status, msg := s.evalRoute(ctx, s.System(), &req)
	s.writeOutcome(w, status, msg, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if s.shedIfOverloaded(w) {
		return
	}
	var req topkRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	resp, status, msg := s.evalTopK(ctx, s.System(), &req)
	s.writeOutcome(w, status, msg, resp)
}

// handleState serves POST /v1/state: one segment of a partitioned
// query, evaluated against this shard's model slice. The endpoint is
// part of the cross-shard composition protocol — coordinators are the
// expected callers — but it is stateless and safe to expose alongside
// the query endpoints.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	if s.shedIfOverloaded(w) {
		return
	}
	var req stateRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	resp, status, msg := s.evalState(ctx, s.System(), &req)
	s.writeOutcome(w, status, msg, resp)
}

// handleBatch answers N queries in one request, against one system
// snapshot (a mid-batch Swap never splits a batch across models).
// When the served system has a batch planner (pathcostd
// -plan-workers), every distribution entry is planned as one unit:
// overlapping paths share each sub-path convolution outright, charged
// as one computation under the MaxInFlight gate. Remaining entries
// (route, topk — and all entries when no planner is enabled) evaluate
// concurrently, each charged individually under the same gate. One
// invalid entry fails that entry, not the batch: per-entry status
// codes carry what each query would have received standalone, planned
// or not.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.shedIfOverloaded(w) {
		return
	}
	var req batchRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch must contain at least one query")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d queries, cap is %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	sys := s.System()
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	results := make([]batchResult, len(req.Queries))
	var handled []bool
	if sys.Planner() != nil {
		handled = s.planBatchDistributions(ctx, sys, req.Queries, results)
	}
	var wg sync.WaitGroup
	for i := range req.Queries {
		if handled != nil && handled[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.evalBatchEntry(ctx, sys, &req.Queries[i])
		}(i)
	}
	wg.Wait()
	if r.Context().Err() != nil {
		return // client gone; entries already accounted their shed work
	}
	// An expired server deadline is different from a vanished client:
	// the caller is still listening, and every entry the deadline
	// caught already carries its own 504.
	s.writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// planBatchDistributions answers every distribution-kind entry of a
// batch through the system's batch planner and marks them handled.
// Entries failing validation get their 400 here (and are handled too
// — validation needs no planning); valid ones are planned together so
// shared sub-paths are convolved once. A per-entry evaluation failure
// maps through queryErrorStatus exactly like a standalone request,
// and never poisons entries sharing its prefixes (the planner
// contains failures to the failing node's own subtree).
func (s *Server) planBatchDistributions(ctx context.Context, sys *pathcost.System, queries []batchQuery, results []batchResult) []bool {
	handled := make([]bool, len(queries))
	var idx []int // planned entry → queries index
	var plan []pathcost.PlanQuery
	var methods []pathcost.Method
	for i := range queries {
		q := &queries[i]
		kind := strings.ToLower(strings.TrimSpace(q.Kind))
		if kind != "" && kind != "distribution" {
			continue
		}
		handled[i] = true
		results[i] = batchResult{Kind: "distribution"}
		m, p, err := s.checkDistribution(sys, &distributionRequest{
			Path: q.Path, Depart: q.Depart, Method: q.Method, Budget: q.Budget,
		})
		if err != nil {
			results[i].Status, results[i].Error = http.StatusBadRequest, err.Error()
			continue
		}
		idx = append(idx, i)
		plan = append(plan, pathcost.PlanQuery{
			Path: p, Depart: q.Depart, Opt: pathcost.QueryOptions{Method: m},
		})
		methods = append(methods, m)
	}
	if len(plan) == 0 {
		return handled
	}
	// One gate slot covers the whole planned evaluation: the plan is
	// one CPU-bound computation, however many entries it answers.
	res, _ := sys.PlanDistributions(ctx, plan,
		func() bool { return s.acquire(ctx) }, s.release)
	for j, i := range idx {
		if err := res[j].Err; err != nil {
			results[i].Status, results[i].Error = s.queryErrorStatus(ctx, err)
			continue
		}
		results[i].Status = http.StatusOK
		results[i].Distribution = distributionJSON(sys, methods[j], queries[i].Depart, queries[i].Budget, res[j].Res)
	}
	return handled
}

// evalBatchEntry dispatches one batch entry by kind.
func (s *Server) evalBatchEntry(ctx context.Context, sys *pathcost.System, q *batchQuery) batchResult {
	kind := strings.ToLower(strings.TrimSpace(q.Kind))
	if kind == "" {
		kind = "distribution"
	}
	out := batchResult{Kind: kind}
	switch kind {
	case "distribution":
		resp, status, msg := s.evalDistribution(ctx, sys, &distributionRequest{
			Path: q.Path, Depart: q.Depart, Method: q.Method, Budget: q.Budget,
		})
		out.Distribution, out.Status, out.Error = resp, status, msg
	case "route":
		resp, status, msg := s.evalRoute(ctx, sys, &routeRequest{
			Source: q.Source, Dest: q.Dest, Depart: q.Depart, Budget: q.Budget, Method: q.Method,
		})
		out.Route, out.Status, out.Error = resp, status, msg
	case "topk":
		resp, status, msg := s.evalTopK(ctx, sys, &topkRequest{
			RouteRequest: routeRequest{
				Source: q.Source, Dest: q.Dest, Depart: q.Depart, Budget: q.Budget, Method: q.Method,
			},
			K: q.K,
		})
		out.TopK, out.Status, out.Error = resp, status, msg
	case "state":
		resp, status, msg := s.evalState(ctx, sys, &stateRequest{
			Path: q.Path, Depart: q.Depart, Method: q.Method,
			UILo: q.UILo, UIHi: q.UIHi, State: q.State,
		})
		out.State, out.Status, out.Error = resp, status, msg
	default:
		out.Status = http.StatusBadRequest
		out.Error = fmt.Sprintf("unknown kind %q (want distribution, route, topk or state)", q.Kind)
	}
	return out
}

// --- query evaluation (shared by single-query handlers and batch) ----

// checkDistribution validates one distribution request; a non-nil
// error means a 400 with the error's message.
func (s *Server) checkDistribution(sys *pathcost.System, req *distributionRequest) (pathcost.Method, pathcost.Path, error) {
	m, err := parseMethod(req.Method)
	if err != nil {
		return "", nil, err
	}
	if err := checkDepart(req.Depart); err != nil {
		return "", nil, err
	}
	if req.Budget < 0 {
		return "", nil,
			fmt.Errorf("budget %v must be ≥ 0 seconds (0 or omitted skips prob_within)", req.Budget)
	}
	p, err := parsePath(sys.Graph, req.Path, s.cfg.MaxPathEdges)
	if err != nil {
		return "", nil, err
	}
	return m, p, nil
}

// distributionJSON shapes one evaluated distribution result; shared
// by the single-query path and the planned batch path so both emit
// identical bodies. The payload itself is assembled in internal/api,
// where the sharded coordinator builds its composed answers too.
func distributionJSON(sys *pathcost.System, m pathcost.Method, depart, budget float64, res *pathcost.QueryResult) *distributionResponse {
	return api.DistributionPayload(string(m), sys.Params.IntervalOf(depart), res.Dist,
		budget, res.Decomp.Cardinality(), res.Decomp.MaxRank(), res.Timing.Total().Microseconds())
}

// evalDistribution validates and answers one distribution query.
// status 0 means the caller's client disconnected and nothing should
// be written; any other non-200 status carries msg as the error body.
func (s *Server) evalDistribution(ctx context.Context, sys *pathcost.System, req *distributionRequest) (*distributionResponse, int, string) {
	m, p, err := s.checkDistribution(sys, req)
	if err != nil {
		return nil, http.StatusBadRequest, err.Error()
	}
	// The in-flight bound is charged per underlying computation, not
	// per request: cache hits and singleflight followers (requests
	// answered by a concurrent leader's work) bypass the semaphore,
	// so a hot-key stampede cannot starve unrelated queries. An
	// ErrGateRejected here is always this request's own — followers
	// who inherit a leader's rejection retry inside
	// PathDistributionGated until their own acquire decides. The
	// caller's context unparks this evaluation if its client
	// disconnects while waiting behind another request's computation.
	res, err := sys.PathDistributionGated(ctx, p, req.Depart, m,
		func() bool { return s.acquire(ctx) }, s.release)
	if err != nil {
		status, msg := s.queryErrorStatus(ctx, err)
		return nil, status, msg
	}
	return distributionJSON(sys, m, req.Depart, req.Budget, res), http.StatusOK, ""
}

// evalRoute validates and answers one budget-routing query; the
// status contract matches evalDistribution.
func (s *Server) evalRoute(ctx context.Context, sys *pathcost.System, req *routeRequest) (*routeResponse, int, string) {
	m, err := checkRouteRequest(sys.Graph, req)
	if err != nil {
		return nil, http.StatusBadRequest, err.Error()
	}
	if !s.acquire(ctx) {
		status, msg := s.timeoutOutcome(ctx)
		return nil, status, msg
	}
	defer s.release() // deferred: a panicking evaluation must not leak the slot
	res, err := sys.Route(pathcost.VertexID(req.Source), pathcost.VertexID(req.Dest),
		req.Depart, req.Budget, m)
	if err != nil {
		status, msg := s.queryErrorStatus(ctx, err)
		return nil, status, msg
	}
	return &routeResponse{
		Path:     edgeIDs(res.Path),
		Prob:     res.Prob,
		MeanS:    res.Dist.Mean(),
		Explored: res.Explored,
		Pruned:   res.Pruned,
		EvalUS:   res.Elapsed.Microseconds(),
	}, http.StatusOK, ""
}

// evalTopK validates and answers one top-k query; the status contract
// matches evalDistribution.
func (s *Server) evalTopK(ctx context.Context, sys *pathcost.System, req *topkRequest) (*topkResponse, int, string) {
	m, err := checkRouteRequest(sys.Graph, &req.RouteRequest)
	if err != nil {
		return nil, http.StatusBadRequest, err.Error()
	}
	if req.K < 1 || req.K > s.cfg.MaxTopK {
		return nil, http.StatusBadRequest,
			fmt.Sprintf("k = %d out of range [1, %d]", req.K, s.cfg.MaxTopK)
	}
	if !s.acquire(ctx) {
		status, msg := s.timeoutOutcome(ctx)
		return nil, status, msg
	}
	defer s.release() // deferred: a panicking evaluation must not leak the slot
	res, err := sys.TopKRoutes(pathcost.VertexID(req.Source), pathcost.VertexID(req.Dest),
		req.Depart, req.Budget, req.K, m)
	if err != nil {
		status, msg := s.queryErrorStatus(ctx, err)
		return nil, status, msg
	}
	out := &topkResponse{Routes: make([]topkEntry, 0, len(res))}
	for _, r := range res {
		out.Routes = append(out.Routes, topkEntry{
			Path: edgeIDs(r.Path), Prob: r.Prob, MeanS: r.Dist.Mean(),
		})
	}
	return out, http.StatusOK, ""
}

// evalState validates and answers one segment evaluation; the status
// contract matches evalDistribution. The relayed state is untrusted
// wire data: a decode failure is the caller's 400, never a panic.
// Segment evaluation is CPU-bound like any query, so it is charged one
// MaxInFlight slot.
func (s *Server) evalState(ctx context.Context, sys *pathcost.System, req *stateRequest) (*stateResult, int, string) {
	m, err := parseMethod(req.Method)
	if err != nil {
		return nil, http.StatusBadRequest, err.Error()
	}
	if m == pathcost.RD {
		return nil, http.StatusBadRequest,
			"method RD draws one random decomposition over the whole query; it cannot be evaluated segment by segment"
	}
	if err := checkDepart(req.Depart); err != nil {
		return nil, http.StatusBadRequest, err.Error()
	}
	if req.UIHi < req.UILo {
		return nil, http.StatusBadRequest,
			fmt.Sprintf("inverted departure interval [%g, %g]", req.UILo, req.UIHi)
	}
	p, err := parsePath(sys.Graph, req.Path, s.cfg.MaxPathEdges)
	if err != nil {
		return nil, http.StatusBadRequest, err.Error()
	}
	var st *pathcost.ChainState
	if req.State != "" {
		st, err = pathcost.DecodeChainState([]byte(req.State), len(p))
		if err != nil {
			return nil, http.StatusBadRequest, err.Error()
		}
	}
	if !s.acquire(ctx) {
		status, msg := s.timeoutOutcome(ctx)
		return nil, status, msg
	}
	res, err := func() (*pathcost.SegmentResult, error) {
		defer s.release() // deferred: a panicking evaluation must not leak the slot
		return sys.EvaluateSegment(pathcost.SegmentInput{
			Path:   p,
			Depart: req.Depart,
			UI:     pathcost.TimeInterval{Lo: req.UILo, Hi: req.UIHi},
			State:  st,
			Opt:    pathcost.QueryOptions{Method: m},
			Ctx:    ctx,
		})
	}()
	if err != nil {
		status, msg := s.queryErrorStatus(ctx, err)
		return nil, status, msg
	}
	enc, err := res.State.Encode()
	if err != nil {
		return nil, http.StatusInternalServerError, "internal error encoding partial state"
	}
	return &stateResult{
		State:   string(enc),
		UILo:    res.UI.Lo,
		UIHi:    res.UI.Hi,
		Factors: res.Factors,
		MaxRank: res.MaxRank,
	}, http.StatusOK, ""
}

// handleIngest accepts a batch of raw GPS traces, map-matches it on
// the pipeline's worker pool (one MaxInFlight slot for the whole
// batch — matching is CPU-bound like query evaluation) and stages the
// survivors into the served system's delta buffer. The model is not
// updated here: staged deltas fold in at the next epoch publish.
// Malformed traces are counted and dropped, never failing the batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	p := s.pipeline.Load()
	if p == nil {
		s.writeError(w, http.StatusNotFound, "ingestion is disabled on this server")
		return
	}
	var req ingestRequest
	// Raw GPS batches are bulkier than queries: a trace is hundreds of
	// fixes, so the body cap is 16 MiB instead of readRequest's 1 MiB.
	if !s.readRequestSized(w, r, &req, 16<<20) {
		return
	}
	if len(req.Trajectories) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch must contain at least one trajectory")
		return
	}
	if len(req.Trajectories) > s.cfg.MaxIngestBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d trajectories, cap is %d", len(req.Trajectories), s.cfg.MaxIngestBatch))
		return
	}
	raw := make([]*gps.Trajectory, len(req.Trajectories))
	for i, tj := range req.Trajectories {
		tr := &gps.Trajectory{ID: tj.ID, Records: make([]gps.Record, len(tj.Points))}
		for j, pt := range tj.Points {
			tr.Records[j] = gps.Record{Pt: geo.Point{Lat: pt.Lat, Lon: pt.Lon}, Time: pt.T}
		}
		raw[i] = tr
	}
	ctx := r.Context()
	if !s.acquire(ctx) {
		return
	}
	st := func() ingest.BatchStats {
		defer s.release() // deferred: a panicking match must not leak the slot
		return p.IngestRaw(raw)
	}()
	sys := s.System()
	est := sys.EpochStats()
	s.writeJSON(w, http.StatusOK, ingestResponse{
		Received:      st.Received,
		Matched:       st.Matched,
		MatchFailed:   st.MatchFailed,
		Staged:        st.Staged,
		Rejected:      st.Rejected,
		StagedPending: est.StagedPending,
		Epoch:         est.Seq,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	sys := s.System()
	st := sys.Stats()
	resp := statsResponse{
		Vertices:        sys.Graph.NumVertices(),
		Edges:           sys.Graph.NumEdges(),
		Variables:       st.TotalVariables(),
		VariablesByRank: st.VariablesByRank,
		Coverage:        st.Coverage(),
		AlphaMinutes:    sys.Params.AlphaMinutes,
		Beta:            sys.Params.Beta,
		UptimeS:         time.Since(s.start).Seconds(),
		Served:          s.served.Load(),
		Rejected:        s.rejected.Load(),
		Abandoned:       s.abandoned.Load(),
		Shed:            s.shed.Load(),
		Reloads:         s.reloads.Load(),
		MaxInFlight:     s.cfg.MaxInFlight,
		MaxQueue:        s.cfg.MaxQueue,
	}
	if cst, ok := sys.QueryCacheStats(); ok {
		resp.Cache = &cacheStatsJSON{
			Hits: cst.Hits, Misses: cst.Misses, Evictions: cst.Evictions,
			Entries: cst.Entries, Capacity: cst.Capacity, HitRate: cst.HitRate(),
		}
	}
	if mst, ok := sys.ConvMemoStats(); ok {
		resp.Memo = &cacheStatsJSON{
			Hits: mst.Hits, Misses: mst.Misses, Evictions: mst.Evictions,
			Entries: mst.Entries, Capacity: mst.Capacity, HitRate: mst.HitRate(),
		}
	}
	if sst, ok := sys.SynopsisStats(); ok {
		resp.Synopsis = &synopsisStatsJSON{
			Entries: sst.Entries, Bytes: sst.Bytes,
			Hits: sst.Hits, Misses: sst.Misses, HitRate: sst.HitRate(),
		}
	}
	if pst, ok := sys.PlannerStats(); ok {
		resp.Planner = &plannerStatsJSON{
			Workers: pst.Workers, Batches: pst.Batches,
			Queries: pst.Queries, Planned: pst.Planned, Fallback: pst.Fallback,
			Nodes: pst.Nodes, SharedNodes: pst.SharedNodes,
			Convolutions: pst.Convolutions, ProbeHits: pst.ProbeHits,
			IndependentSteps: pst.IndependentSteps, SavedSteps: pst.SavedSteps(),
		}
	}
	// The ingest and epoch blocks describe the streaming-ingestion
	// lifecycle; on a query-only server (-ingest off) that machinery is
	// deliberately dark, so the blocks are omitted just as the
	// /v1/ingest endpoint is — a read-only replica should not advertise
	// an update pipeline it refuses to feed.
	if s.cfg.EnableIngest {
		if p := s.pipeline.Load(); p != nil {
			ist := p.Stats()
			resp.Ingest = &ingestStatsJSON{
				Batches: ist.Batches, Received: ist.Received, Records: ist.Records,
				Matched: ist.Matched, MatchFailed: ist.MatchFailed,
				Staged: ist.Staged, Rejected: ist.Rejected,
			}
		}
		est := sys.EpochStats()
		if wst, werrs, ok := sys.WALStats(); ok {
			resp.WAL = &walStatsJSON{
				LastSeq: wst.LastSeq, Checkpoint: wst.Checkpoint,
				Segments: wst.Segments, Bytes: wst.Bytes,
				Appends: wst.Appends, Truncations: wst.Truncations,
				Discarded: wst.Discarded, AppendErrors: werrs,
			}
		}
		resp.Epoch = &epochStatsJSON{
			Seq:                    est.Seq,
			Publishes:              est.Publishes,
			StagedPending:          est.StagedPending,
			StagedTotal:            est.StagedTotal,
			DecayHalflifeS:         est.DecayHalflifeSec,
			LastTrajs:              est.LastTrajs,
			LastTouchedVars:        est.LastTouchedVars,
			LastRebuiltVars:        est.LastRebuiltVars,
			LastNewVars:            est.LastNewVars,
			LastBuildMS:            est.LastBuildMS,
			LastDecayFactor:        est.LastDecayFactor,
			SynopsisCarried:        est.SynopsisCarried,
			SynopsisRematerialized: est.SynopsisRematerialized,
			SynopsisDropped:        est.SynopsisDropped,
		}
	}
	s.writeJSONUncounted(w, http.StatusOK, resp)
}

// checkRouteRequest shares the routing-request checks between
// /v1/route, /v1/topk and their batch twins; a non-nil error means a
// 400 with the error's message.
func checkRouteRequest(g *pathcost.Graph, req *routeRequest) (pathcost.Method, error) {
	return api.CheckRoute(g, req)
}

// readRequest decodes a JSON POST body, rejecting anything else.
func (s *Server) readRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	return s.readRequestSized(w, r, dst, 1<<20)
}

// readRequestSized is readRequest with an explicit body cap, for the
// bulk endpoints.
func (s *Server) readRequestSized(w http.ResponseWriter, r *http.Request, dst any, maxBytes int64) bool {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// writeJSON answers a query and counts it toward served; probe-style
// endpoints (/healthz, /v1/stats) use writeJSONUncounted so liveness
// checks and metric pollers don't inflate the query-throughput stat.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	s.writeJSONUncounted(w, code, v)
	s.served.Add(1)
}

func (s *Server) writeJSONUncounted(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// queryErrorStatus maps an evaluation failure to the right status: a
// context error against an expired server deadline is a 504 (the
// client is still listening and deserves a definitive answer), while
// the same error from a vanished client writes nothing; a gate
// rejection with a live context is a 503 safety net
// (PathDistributionGated already retries rejections inherited from
// another request's leader); a leader panic shared by singleflight is
// a server fault (500, details withheld); anything else is a
// valid-but-unanswerable query (422, e.g. sparse coverage or an
// unreachable destination).
func (s *Server) queryErrorStatus(ctx context.Context, err error) (int, string) {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if status, msg := s.timeoutOutcome(ctx); status != 0 {
			return status, msg
		}
		// A follower unparked by its own dead caller context; the
		// semaphore was never touched, so account the shed load here.
		s.abandoned.Add(1)
		return 0, ""
	case errors.Is(err, pathcost.ErrGateRejected):
		if status, msg := s.timeoutOutcome(ctx); status != 0 {
			return status, msg
		}
		if ctx.Err() != nil {
			return 0, "" // our own client is gone; no one is listening
		}
		return http.StatusServiceUnavailable, "computation aborted, retry"
	case errors.Is(err, cache.ErrLeaderPanic):
		return http.StatusInternalServerError, "internal error during computation"
	default:
		return http.StatusUnprocessableEntity, err.Error()
	}
}

// writeOutcome writes an eval helper's result: status 0 writes
// nothing (the client is gone), 200 writes the response body, and
// anything else writes the error envelope.
func (s *Server) writeOutcome(w http.ResponseWriter, status int, msg string, resp any) {
	switch {
	case status == 0:
	case status == http.StatusOK:
		s.writeJSON(w, status, resp)
	default:
		s.writeError(w, status, msg)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg})
	s.rejected.Add(1)
}

func edgeIDs(p graph.Path) []int64 { return api.EdgeIDs(p) }
