package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	pathcost "repro"
	"repro/internal/graph"
)

var (
	sysOnce sync.Once
	sysInst *pathcost.System
	sysErr  error
)

// testSystem trains one shared small system for the server tests.
func testSystem(t testing.TB) *pathcost.System {
	t.Helper()
	sysOnce.Do(func() {
		params := pathcost.DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		sysInst, sysErr = pathcost.Synthesize(pathcost.SynthesizeConfig{
			Preset: "test", Trips: 3000, Seed: 11, Params: params,
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

// densePath returns a trajectory-backed path and an in-interval
// departure for distribution queries.
func densePath(t testing.TB, sys *pathcost.System) ([]int64, float64) {
	t.Helper()
	for _, card := range []int{4, 3, 2} {
		if dense := sys.DensePaths(card, 10); len(dense) > 0 {
			lo, _ := sys.Params.IntervalBounds(dense[0].Interval)
			ids := make([]int64, len(dense[0].Path))
			for i, e := range dense[0].Path {
				ids[i] = int64(e)
			}
			return ids, lo + 1
		}
	}
	t.Fatal("no dense paths in test workload")
	return nil, 0
}

// routePair returns a reachable source/dest pair and a generous budget.
func routePair(t testing.TB, sys *pathcost.System) (src, dst int64, budget float64) {
	t.Helper()
	s := pathcost.VertexID(sys.Graph.NumVertices() / 3)
	dists := sys.Graph.ShortestDistances(s, graph.FreeFlowWeight)
	best := 0.0
	d := pathcost.VertexID(-1)
	for v, dd := range dists {
		if pathcost.VertexID(v) != s && dd > best && dd < 600 {
			best = dd
			d = pathcost.VertexID(v)
		}
	}
	if d < 0 {
		t.Fatal("no reachable routing destination")
	}
	return int64(s), int64(d), best * 2
}

// postJSON POSTs body to url and decodes the JSON response into out.
// Failures are reported with Errorf (returning -1), not Fatalf, so
// the helper is safe to call from client goroutines.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Errorf("marshaling %s request: %v", url, err)
		return -1
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Errorf("POST %s: %v", url, err)
		return -1
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("reading %s response: %v", url, err)
		return -1
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Errorf("decoding %s response %q: %v", url, data, err)
			return -1
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Errorf("GET %s: %v", url, err)
		return -1
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Errorf("decoding %s: %v", url, err)
			return -1
		}
	}
	return resp.StatusCode
}

// TestServerSmoke drives every endpoint of a daemon serving a
// synthesized model — the httptest equivalent of a pathcostd session.
func TestServerSmoke(t *testing.T) {
	sys := testSystem(t)
	sys.EnableQueryCache(256)
	srv := New(sys, Config{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}

	path, depart := densePath(t, sys)

	var dist distributionResponse
	code := postJSON(t, ts.URL+"/v1/distribution",
		distributionRequest{Path: path, Depart: depart, Method: "od", Budget: 3600}, &dist)
	if code != http.StatusOK {
		t.Fatalf("distribution = %d", code)
	}
	if dist.Method != "OD" || dist.MeanS <= 0 || len(dist.Buckets) == 0 {
		t.Fatalf("distribution response malformed: %+v", dist)
	}
	if dist.ProbWithin == nil || *dist.ProbWithin < 0 || *dist.ProbWithin > 1+1e-9 {
		t.Fatalf("prob_within = %v, want in [0,1]", dist.ProbWithin)
	}
	if dist.P10S > dist.P50S || dist.P50S > dist.P90S {
		t.Fatalf("quantiles out of order: %+v", dist)
	}

	// Same query again: must hit the cache (shared result, same numbers).
	var dist2 distributionResponse
	if code := postJSON(t, ts.URL+"/v1/distribution",
		distributionRequest{Path: path, Depart: depart}, &dist2); code != http.StatusOK {
		t.Fatalf("repeat distribution = %d", code)
	}
	if dist2.MeanS != dist.MeanS {
		t.Fatalf("cached mean %v != first mean %v", dist2.MeanS, dist.MeanS)
	}

	src, dst, budget := routePair(t, sys)
	var route routeResponse
	code = postJSON(t, ts.URL+"/v1/route",
		routeRequest{Source: src, Dest: dst, Depart: depart, Budget: budget}, &route)
	if code != http.StatusOK {
		t.Fatalf("route = %d", code)
	}
	if len(route.Path) == 0 || route.Prob < 0 || route.Prob > 1+1e-9 {
		t.Fatalf("route response malformed: %+v", route)
	}

	var topk topkResponse
	code = postJSON(t, ts.URL+"/v1/topk",
		topkRequest{RouteRequest: routeRequest{Source: src, Dest: dst, Depart: depart, Budget: budget}, K: 2}, &topk)
	if code != http.StatusOK {
		t.Fatalf("topk = %d", code)
	}
	if len(topk.Routes) == 0 || len(topk.Routes) > 2 {
		t.Fatalf("topk returned %d routes, want 1..2", len(topk.Routes))
	}

	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Edges != sys.Graph.NumEdges() || stats.Variables == 0 {
		t.Fatalf("stats malformed: %+v", stats)
	}
	if stats.Cache == nil || stats.Cache.Hits == 0 {
		t.Fatalf("stats should report the enabled cache with ≥1 hit: %+v", stats.Cache)
	}
	if stats.MaxInFlight != 4 {
		t.Fatalf("max_in_flight = %d, want 4", stats.MaxInFlight)
	}
}

// Validation failures must be 400s with a JSON error, never 500s.
func TestServerValidation(t *testing.T) {
	sys := testSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	src, dst, budget := routePair(t, sys)

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown method", "/v1/distribution",
			distributionRequest{Path: path, Depart: depart, Method: "XX"}, http.StatusBadRequest},
		{"empty path", "/v1/distribution",
			distributionRequest{Depart: depart}, http.StatusBadRequest},
		{"edge out of range", "/v1/distribution",
			distributionRequest{Path: []int64{int64(sys.Graph.NumEdges()) + 5}, Depart: depart}, http.StatusBadRequest},
		{"negative depart", "/v1/distribution",
			distributionRequest{Path: path, Depart: -1}, http.StatusBadRequest},
		{"source equals dest", "/v1/route",
			routeRequest{Source: src, Dest: src, Depart: depart, Budget: budget}, http.StatusBadRequest},
		{"vertex out of range", "/v1/route",
			routeRequest{Source: src, Dest: int64(sys.Graph.NumVertices()) + 1, Depart: depart, Budget: budget}, http.StatusBadRequest},
		{"non-positive budget", "/v1/route",
			routeRequest{Source: src, Dest: dst, Depart: depart}, http.StatusBadRequest},
		{"k too small", "/v1/topk",
			topkRequest{RouteRequest: routeRequest{Source: src, Dest: dst, Depart: depart, Budget: budget}, K: 0}, http.StatusBadRequest},
	}
	for _, c := range cases {
		var e errorResponse
		if code := postJSON(t, ts.URL+c.url, c.body, &e); code != c.want {
			t.Errorf("%s: status %d, want %d (error %q)", c.name, code, c.want, e.Error)
		} else if e.Error == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}

	// Disconnected edge pair: structurally valid ids, not a path.
	g := sys.Graph
	var a, b int64 = -1, -1
	for i := 0; i < g.NumEdges() && a < 0; i++ {
		for j := 0; j < g.NumEdges(); j++ {
			if i != j && !g.Adjacent(pathcost.EdgeID(i), pathcost.EdgeID(j)) {
				a, b = int64(i), int64(j)
				break
			}
		}
	}
	if a >= 0 {
		var e errorResponse
		if code := postJSON(t, ts.URL+"/v1/distribution",
			distributionRequest{Path: []int64{a, b}, Depart: depart}, &e); code != http.StatusBadRequest {
			t.Errorf("disconnected path: status %d, want 400", code)
		}
	}

	// Wrong verb.
	resp, err := http.Get(ts.URL + "/v1/distribution")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/distribution = %d, want 405", resp.StatusCode)
	}
}

// TestServerSwap exercises the hot-reload primitive: requests keep
// succeeding across an atomic model swap and the reload counter ticks.
func TestServerSwap(t *testing.T) {
	sys := testSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	params := pathcost.DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	next, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "test", Trips: 2500, Seed: 29, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}

	if old := srv.Swap(next); old != sys {
		t.Fatalf("Swap returned %p, want the previous system %p", old, sys)
	}
	if srv.System() != next {
		t.Fatal("System() does not see the swapped-in model")
	}

	path, depart := densePath(t, next)
	var dist distributionResponse
	if code := postJSON(t, ts.URL+"/v1/distribution",
		distributionRequest{Path: path, Depart: depart}, &dist); code != http.StatusOK {
		t.Fatalf("post-swap distribution = %d", code)
	}
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK || stats.Reloads != 1 {
		t.Fatalf("stats after swap: code %d, reloads %d, want 1", code, stats.Reloads)
	}
}

// TestServerConcurrentRequests hammers the daemon from many clients
// with a tiny in-flight bound while a swap happens mid-storm; run
// under -race this also proves handler/swap memory safety.
func TestServerConcurrentRequests(t *testing.T) {
	sys := testSystem(t)
	sys.EnableQueryCache(64)
	srv := New(sys, Config{MaxInFlight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 5; n++ {
				var dist distributionResponse
				code := postJSON(t, ts.URL+"/v1/distribution",
					distributionRequest{Path: path, Depart: depart}, &dist)
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d iter %d: status %d", i, n, code)
					return
				}
			}
		}(i)
	}
	srv.Swap(sys) // self-swap: exercises the pointer path, model unchanged
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
