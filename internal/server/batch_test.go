package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestBatchSmoke answers a mixed batch — distribution, route, topk
// and one invalid entry — and checks the per-entry status contract.
func TestBatchSmoke(t *testing.T) {
	sys := testSystem(t)
	sys.EnableConvMemo(4096)
	srv := New(sys, Config{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	src, dst, budget := routePair(t, sys)

	req := batchRequest{Queries: []batchQuery{
		{Kind: "distribution", Path: path, Depart: depart, Budget: 3600},
		{Path: path, Depart: depart}, // kind omitted = distribution
		{Kind: "route", Source: src, Dest: dst, Depart: depart, Budget: budget},
		{Kind: "topk", Source: src, Dest: dst, Depart: depart, Budget: budget, K: 2},
		{Kind: "route", Source: src, Dest: src, Depart: depart, Budget: budget}, // invalid: src == dst
		{Kind: "teleport"}, // invalid kind
	}}
	var resp batchResponse
	if code := postJSON(t, ts.URL+"/v1/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	if len(resp.Results) != len(req.Queries) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(req.Queries))
	}
	r := resp.Results
	if r[0].Status != http.StatusOK || r[0].Distribution == nil || r[0].Distribution.MeanS <= 0 {
		t.Fatalf("entry 0 malformed: %+v", r[0])
	}
	if r[0].Distribution.ProbWithin == nil {
		t.Fatalf("entry 0 missing prob_within: %+v", r[0].Distribution)
	}
	if r[1].Status != http.StatusOK || r[1].Kind != "distribution" || r[1].Distribution == nil {
		t.Fatalf("entry 1 (defaulted kind) malformed: %+v", r[1])
	}
	if r[2].Status != http.StatusOK || r[2].Route == nil || len(r[2].Route.Path) == 0 {
		t.Fatalf("entry 2 malformed: %+v", r[2])
	}
	if r[3].Status != http.StatusOK || r[3].TopK == nil || len(r[3].TopK.Routes) == 0 {
		t.Fatalf("entry 3 malformed: %+v", r[3])
	}
	if r[4].Status != http.StatusBadRequest || r[4].Error == "" || r[4].Route != nil {
		t.Fatalf("entry 4 should be a per-entry 400: %+v", r[4])
	}
	if r[5].Status != http.StatusBadRequest || r[5].Error == "" {
		t.Fatalf("entry 5 should reject the unknown kind: %+v", r[5])
	}
}

// TestBatchMatchesSingleQueries proves a batch answers exactly what
// the standalone endpoints answer, including with the convolution
// memo enabled (prefix reuse across the batch must not change
// results).
func TestBatchMatchesSingleQueries(t *testing.T) {
	sys := testSystem(t)
	sys.EnableConvMemo(4096)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	src, dst, budget := routePair(t, sys)

	var single distributionResponse
	if code := postJSON(t, ts.URL+"/v1/distribution",
		distributionRequest{Path: path, Depart: depart}, &single); code != http.StatusOK {
		t.Fatalf("single distribution = %d", code)
	}
	var singleRoute routeResponse
	if code := postJSON(t, ts.URL+"/v1/route",
		routeRequest{Source: src, Dest: dst, Depart: depart, Budget: budget}, &singleRoute); code != http.StatusOK {
		t.Fatalf("single route = %d", code)
	}

	var resp batchResponse
	req := batchRequest{Queries: []batchQuery{
		{Kind: "distribution", Path: path, Depart: depart},
		{Kind: "route", Source: src, Dest: dst, Depart: depart, Budget: budget},
	}}
	if code := postJSON(t, ts.URL+"/v1/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	bd := resp.Results[0].Distribution
	if bd == nil || bd.MeanS != single.MeanS || bd.P50S != single.P50S || len(bd.Buckets) != len(single.Buckets) {
		t.Fatalf("batch distribution differs from single: %+v vs %+v", bd, single)
	}
	for i := range bd.Buckets {
		if bd.Buckets[i] != single.Buckets[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, bd.Buckets[i], single.Buckets[i])
		}
	}
	br := resp.Results[1].Route
	if br == nil || br.Prob != singleRoute.Prob || len(br.Path) != len(singleRoute.Path) {
		t.Fatalf("batch route differs from single: %+v vs %+v", br, singleRoute)
	}
	for i := range br.Path {
		if br.Path[i] != singleRoute.Path[i] {
			t.Fatalf("route edge %d differs", i)
		}
	}
}

// TestBatchValidation pins the whole-batch 400 contract.
func TestBatchValidation(t *testing.T) {
	sys := testSystem(t)
	srv := New(sys, Config{MaxBatch: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var e errorResponse
	if code := postJSON(t, ts.URL+"/v1/batch", batchRequest{}, &e); code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", code)
	}
	over := batchRequest{Queries: make([]batchQuery, 5)}
	if code := postJSON(t, ts.URL+"/v1/batch", over, &e); code != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400 (%s)", code, e.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/batch = %d, want 405", resp.StatusCode)
	}
}

// TestBatchConcurrentClients hammers /v1/batch from many clients over
// a tiny in-flight bound; under -race this proves batch fan-out,
// semaphore accounting and memo sharing are safe together.
func TestBatchConcurrentClients(t *testing.T) {
	sys := testSystem(t)
	sys.EnableQueryCache(128)
	sys.EnableConvMemo(4096)
	srv := New(sys, Config{MaxInFlight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path, depart := densePath(t, sys)
	src, dst, budget := routePair(t, sys)
	req := batchRequest{Queries: []batchQuery{
		{Kind: "distribution", Path: path, Depart: depart},
		{Kind: "route", Source: src, Dest: dst, Depart: depart, Budget: budget},
		{Kind: "topk", Source: src, Dest: dst, Depart: depart, Budget: budget, K: 2},
	}}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 3; n++ {
				var resp batchResponse
				code := postJSON(t, ts.URL+"/v1/batch", req, &resp)
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d iter %d: status %d", i, n, code)
					return
				}
				for j, res := range resp.Results {
					if res.Status != http.StatusOK {
						errs <- fmt.Errorf("client %d iter %d entry %d: status %d (%s)", i, n, j, res.Status, res.Error)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The memo must have been exercised by the overlapping entries.
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Memo == nil || stats.Memo.Entries == 0 {
		t.Fatalf("stats should report the enabled memo with entries: %+v", stats.Memo)
	}
}
