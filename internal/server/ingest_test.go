package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	pathcost "repro"
	"repro/internal/gps"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

var (
	ingOnce sync.Once
	ingSys  *pathcost.System
	ingRaw  []*gps.Trajectory
	ingErr  error
)

// ingestSystem trains one shared system plus a pool of raw GPS traces
// over the same network, for the ingest tests.
func ingestSystem(t testing.TB) (*pathcost.System, []*gps.Trajectory) {
	t.Helper()
	ingOnce.Do(func() {
		params := pathcost.DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		ingSys, ingErr = pathcost.Synthesize(pathcost.SynthesizeConfig{
			Preset: "test", Trips: 2000, Seed: 23, Params: params,
		})
		if ingErr != nil {
			return
		}
		// Fresh traces over the served graph, in raw GPS form, as a
		// vehicle fleet would stream them in.
		res := trajgen.New(ingSys.Graph, traffic.NewModel(traffic.Config{}), trajgen.Config{
			Seed: 41, NumTrips: 30, EmitGPS: true,
		}).Generate()
		ingRaw = res.Raw
		if len(ingRaw) == 0 {
			ingErr = fmt.Errorf("trajgen emitted no raw traces")
		}
	})
	if ingErr != nil {
		t.Fatal(ingErr)
	}
	return ingSys, ingRaw
}

// ingestBody serializes raw traces into the /v1/ingest JSON shape.
func ingestBody(t testing.TB, raw []*gps.Trajectory) []byte {
	t.Helper()
	var req ingestRequest
	for _, tr := range raw {
		tj := ingestTrajJSON{ID: tr.ID}
		for _, rec := range tr.Records {
			tj.Points = append(tj.Points, ingestPointJSON{
				Lat: rec.Pt.Lat, Lon: rec.Pt.Lon, T: rec.Time,
			})
		}
		req.Trajectories = append(req.Trajectories, tj)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postIngest(srv *Server, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

func TestIngestEndpointStagesAndPublishes(t *testing.T) {
	sys, raw := ingestSystem(t)
	srv := New(sys, Config{EnableIngest: true, IngestWorkers: 2})
	startSeq := sys.Epoch()

	rec := postIngest(srv, ingestBody(t, raw))
	if rec.Code != 200 {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Received != len(raw) || resp.Staged == 0 {
		t.Fatalf("ingest response %+v: want Received = %d, Staged > 0", resp, len(raw))
	}
	if resp.Epoch != startSeq {
		t.Fatalf("ingest alone must not publish: epoch %d, want %d", resp.Epoch, startSeq)
	}
	if resp.StagedPending < resp.Staged {
		t.Fatalf("StagedPending %d < Staged %d", resp.StagedPending, resp.Staged)
	}

	// Publishing folds the staged deltas into a new epoch, visible in
	// /v1/stats along with the ingest counters.
	if _, err := sys.PublishEpoch(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	sreq := httptest.NewRequest("GET", "/v1/stats", nil)
	srec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(srec, sreq)
	var stats statsResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Epoch == nil || stats.Epoch.Seq != startSeq+1 {
		t.Fatalf("stats epoch block %+v, want seq %d", stats.Epoch, startSeq+1)
	}
	if stats.Epoch.LastTrajs != resp.Staged {
		t.Fatalf("publish folded %d trajs, staged %d", stats.Epoch.LastTrajs, resp.Staged)
	}
	if stats.Ingest == nil || stats.Ingest.Staged != int64(resp.Staged) {
		t.Fatalf("stats ingest block %+v disagrees with response %+v", stats.Ingest, resp)
	}

	// The server still answers queries on the new epoch.
	ids, depart := densePath(t, sys)
	body, _ := json.Marshal(distributionRequest{Path: ids, Depart: depart})
	qreq := httptest.NewRequest("POST", "/v1/distribution", bytes.NewReader(body))
	qrec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(qrec, qreq)
	if qrec.Code != 200 {
		t.Fatalf("post-publish query status %d: %s", qrec.Code, qrec.Body.String())
	}
}

func TestIngestEndpointDisabled(t *testing.T) {
	sys, raw := ingestSystem(t)
	srv := New(sys, Config{}) // EnableIngest unset
	rec := postIngest(srv, ingestBody(t, raw[:1]))
	if rec.Code != 404 {
		t.Fatalf("disabled ingest answered %d, want 404", rec.Code)
	}
}

func TestIngestEndpointValidation(t *testing.T) {
	sys, raw := ingestSystem(t)
	srv := New(sys, Config{EnableIngest: true, MaxIngestBatch: 2})

	if rec := postIngest(srv, []byte(`{"trajectories":[]}`)); rec.Code != 400 {
		t.Fatalf("empty batch answered %d, want 400", rec.Code)
	}
	if rec := postIngest(srv, ingestBody(t, raw[:3])); rec.Code != 400 {
		t.Fatalf("over-cap batch answered %d, want 400", rec.Code)
	}
	if rec := postIngest(srv, []byte(`{"nope":1}`)); rec.Code != 400 {
		t.Fatalf("unknown field answered %d, want 400", rec.Code)
	}
	req := httptest.NewRequest("GET", "/v1/ingest", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 405 {
		t.Fatalf("GET answered %d, want 405", rec.Code)
	}
}

// Garbage traces must be counted, not staged, and must never corrupt
// the served epoch.
func TestIngestEndpointGarbageTraces(t *testing.T) {
	sys, _ := ingestSystem(t)
	srv := New(sys, Config{EnableIngest: true})
	seq := sys.Epoch()
	body := []byte(`{"trajectories":[
		{"id":1,"points":[]},
		{"id":2,"points":[{"lat":0,"lon":0,"t":10}]},
		{"id":3,"points":[{"lat":91,"lon":0,"t":1},{"lat":91,"lon":0,"t":2}]},
		{"id":4,"points":[{"lat":57,"lon":10,"t":100},{"lat":57,"lon":10,"t":50}]}
	]}`)
	rec := postIngest(srv, body)
	if rec.Code != 200 {
		t.Fatalf("garbage batch status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Staged != 0 || resp.MatchFailed != 4 {
		t.Fatalf("garbage batch staged %d, match-failed %d; want 0 and 4", resp.Staged, resp.MatchFailed)
	}
	if sys.Epoch() != seq {
		t.Fatalf("garbage batch moved the epoch: %d → %d", seq, sys.Epoch())
	}
}

var (
	fuzzIngOnce sync.Once
	fuzzIngSrv  *Server
	fuzzIngSys  *pathcost.System
	fuzzIngErr  error
)

// FuzzIngest: arbitrary bodies — malformed JSON, out-of-domain
// coordinates, disordered timestamps — must never panic the server,
// never corrupt or advance the served epoch (ingest only stages;
// publishing is the daemon's job), and must keep the query path
// serving. Responses follow the documented status contract with JSON
// bodies.
func FuzzIngest(f *testing.F) {
	f.Add([]byte(`{"trajectories":[{"id":1,"points":[{"lat":57,"lon":10,"t":1},{"lat":57.001,"lon":10.001,"t":20}]}]}`))
	f.Add([]byte(`{"trajectories":[]}`))
	f.Add([]byte(`{"trajectories":[{"id":-1,"points":[{"lat":1e308,"lon":-1e308,"t":-1}]}]}`))
	f.Add([]byte(`{"trajectories":[{"id":1,"points":[{"lat":57,"lon":10,"t":100},{"lat":57,"lon":10,"t":50}]}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"trajectories":null}`))
	f.Add([]byte(`{"trajectories":[{"id":1}]}`))
	f.Add([]byte(`[{"id":1}]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzIngOnce.Do(func() {
			params := pathcost.DefaultParams()
			params.Beta = 20
			params.MaxRank = 4
			fuzzIngSys, fuzzIngErr = pathcost.Synthesize(pathcost.SynthesizeConfig{
				Preset: "test", Trips: 1500, Seed: 29, Params: params,
			})
			if fuzzIngErr != nil {
				return
			}
			fuzzIngSrv = New(fuzzIngSys, Config{EnableIngest: true, MaxIngestBatch: 64})
		})
		if fuzzIngErr != nil {
			t.Fatal(fuzzIngErr)
		}
		seq := fuzzIngSys.Epoch()
		rec := postIngest(fuzzIngSrv, body)
		switch rec.Code {
		case 200, 400, 422, 500:
		default:
			t.Fatalf("status %d outside the contract for body %q", rec.Code, body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("non-JSON body %q for request %q", rec.Body.Bytes(), body)
		}
		if got := fuzzIngSys.Epoch(); got != seq {
			t.Fatalf("ingest moved the epoch %d → %d for body %q", seq, got, body)
		}
	})
}
