package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	pathcost "repro"
	"repro/internal/server"
)

// ExampleServer_batch is the batch client flow: train a system, mount
// the HTTP API, and answer several queries in one round trip. With a
// convolution memo enabled, the entries of one batch reuse each
// other's sub-path convolutions.
func ExampleServer_batch() {
	params := pathcost.DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	sys, err := pathcost.Synthesize(pathcost.SynthesizeConfig{
		Preset: "test", Trips: 3000, Seed: 11, Params: params,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys.EnableConvMemo(4096) // share sub-path convolutions across entries

	srv := server.New(sys, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A dense trajectory-backed path and every prefix of it: the
	// prefix-sharing shape the batch endpoint is built for.
	dense := sys.DensePaths(3, 10)
	if len(dense) == 0 {
		fmt.Println("no dense paths")
		return
	}
	lo, _ := sys.Params.IntervalBounds(dense[0].Interval)
	type query map[string]any
	var queries []query
	for n := 1; n <= len(dense[0].Path); n++ {
		ids := make([]int64, n)
		for i, e := range dense[0].Path[:n] {
			ids[i] = int64(e)
		}
		queries = append(queries, query{
			"kind": "distribution", "path": ids, "depart": lo + 1,
		})
	}

	body, _ := json.Marshal(map[string]any{"queries": queries})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer resp.Body.Close()

	var out struct {
		Results []struct {
			Kind         string `json:"kind"`
			Status       int    `json:"status"`
			Distribution *struct {
				MeanS float64 `json:"mean_s"`
			} `json:"distribution"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Println("error:", err)
		return
	}
	allOK := resp.StatusCode == http.StatusOK
	for _, r := range out.Results {
		if r.Status != http.StatusOK || r.Distribution == nil || r.Distribution.MeanS <= 0 {
			allOK = false
		}
	}
	fmt.Println("batch answered:", len(out.Results) == len(queries))
	fmt.Println("every entry ok with a positive mean:", allOK)
	// Output:
	// batch answered: true
	// every entry ok with a positive mean: true
}
