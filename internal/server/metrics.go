package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// metricsContentType is the Prometheus text exposition format version
// every mainstream scraper accepts.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// metricsWriter accumulates one exposition; methods keep the HELP/TYPE
// preamble next to each sample so the output stays well-formed as
// metrics are added.
type metricsWriter struct {
	b strings.Builder
}

func (m *metricsWriter) counter(name, help string, v uint64) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func (m *metricsWriter) gauge(name, help string, v float64) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// Metrics returns a GET handler exposing the server's operational
// counters in the Prometheus text format. It is not mounted on the
// query mux: the daemon mounts it on the observability listener
// (-pprof-addr) so scrapers never compete with query traffic for the
// serving socket.
func (s *Server) Metrics() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		var m metricsWriter
		m.counter("pathcost_requests_served_total", "Requests answered 2xx.", s.served.Load())
		m.counter("pathcost_requests_rejected_total", "Requests answered 4xx/5xx.", s.rejected.Load())
		m.counter("pathcost_requests_abandoned_total", "Clients gone before evaluation started.", s.abandoned.Load())
		m.counter("pathcost_requests_shed_total", "Requests answered 429 by the MaxQueue load shedder.", s.shed.Load())
		m.counter("pathcost_reloads_total", "Model hot reloads (Swap calls).", s.reloads.Load())
		m.gauge("pathcost_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())
		m.gauge("pathcost_max_in_flight", "Concurrent evaluation slot cap.", float64(s.cfg.MaxInFlight))
		m.gauge("pathcost_queued", "Requests currently waiting for an evaluation slot.", float64(s.queued.Load()))

		sys := s.System()
		est := sys.EpochStats()
		m.gauge("pathcost_epoch_seq", "Served model epoch sequence number.", float64(est.Seq))
		m.counter("pathcost_epoch_publishes_total", "Incremental epoch publishes.", est.Publishes)
		m.gauge("pathcost_epoch_staged_pending", "Trajectories staged for the next epoch publish.", float64(est.StagedPending))
		if cst, ok := sys.QueryCacheStats(); ok {
			m.counter("pathcost_query_cache_hits_total", "Query cache hits.", cst.Hits)
			m.counter("pathcost_query_cache_misses_total", "Query cache misses.", cst.Misses)
		}
		if mst, ok := sys.ConvMemoStats(); ok {
			m.counter("pathcost_conv_memo_hits_total", "Convolution memo hits.", mst.Hits)
			m.counter("pathcost_conv_memo_misses_total", "Convolution memo misses.", mst.Misses)
		}
		if sst, ok := sys.SynopsisStats(); ok {
			m.counter("pathcost_synopsis_hits_total", "Synopsis store hits.", sst.Hits)
			m.counter("pathcost_synopsis_misses_total", "Synopsis store misses.", sst.Misses)
		}

		w.Header().Set("Content-Type", metricsContentType)
		_, _ = w.Write([]byte(m.b.String()))
	})
}
