package ingest

import (
	"sync"
	"testing"

	"repro/internal/gps"
	"repro/internal/netgen"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// captureSink records everything staged, with a switch to reject all.
type captureSink struct {
	mu        sync.Mutex
	staged    []*gps.Matched
	rejectAll bool
}

func (s *captureSink) StageTrajectories(batch []*gps.Matched) (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rejectAll {
		return 0, len(batch)
	}
	s.staged = append(s.staged, batch...)
	return len(batch), 0
}

func TestIngestStagesMatchedTrajectories(t *testing.T) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	res := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 7, NumTrips: 40, EmitGPS: true,
	}).Generate()
	if len(res.Raw) == 0 {
		t.Fatal("generator emitted no raw traces")
	}

	sink := &captureSink{}
	p, err := New(g, sink, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := p.IngestRaw(res.Raw)
	if st.Received != len(res.Raw) {
		t.Fatalf("Received = %d, want %d", st.Received, len(res.Raw))
	}
	if st.Matched == 0 || st.Staged != st.Matched {
		t.Fatalf("Matched = %d, Staged = %d: want every match staged", st.Matched, st.Staged)
	}
	if st.Matched+st.MatchFailed != st.Received {
		t.Fatalf("Matched %d + MatchFailed %d != Received %d", st.Matched, st.MatchFailed, st.Received)
	}
	if len(sink.staged) != st.Staged {
		t.Fatalf("sink holds %d, stats say %d", len(sink.staged), st.Staged)
	}
	for _, m := range sink.staged {
		if err := m.Validate(g); err != nil {
			t.Fatalf("staged trajectory invalid: %v", err)
		}
	}
}

// The worker pool must stage the same set in the same order as a
// sequential run — parallelism only changes wall-clock time.
func TestIngestParallelMatchesSequential(t *testing.T) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	res := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 11, NumTrips: 60, EmitGPS: true,
	}).Generate()

	seq := &captureSink{}
	pseq, _ := New(g, seq, Config{Workers: 1})
	stSeq := pseq.IngestRaw(res.Raw)

	par := &captureSink{}
	ppar, _ := New(g, par, Config{Workers: 4})
	stPar := ppar.IngestRaw(res.Raw)

	if stSeq != stPar {
		t.Fatalf("stats diverge: seq %+v, par %+v", stSeq, stPar)
	}
	if len(seq.staged) != len(par.staged) {
		t.Fatalf("staged counts diverge: %d vs %d", len(seq.staged), len(par.staged))
	}
	for i := range seq.staged {
		if seq.staged[i].ID != par.staged[i].ID {
			t.Fatalf("order diverges at %d: %d vs %d", i, seq.staged[i].ID, par.staged[i].ID)
		}
		if seq.staged[i].Path.Key() != par.staged[i].Path.Key() {
			t.Fatalf("path diverges for trajectory %d", seq.staged[i].ID)
		}
	}
}

func TestIngestCountsBrokenTraces(t *testing.T) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	res := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 3, NumTrips: 10, EmitGPS: true,
	}).Generate()

	// Poison the batch: a nil entry, an empty trace, and a
	// time-disordered trace. None may fail the batch or reach the sink.
	bad := []*gps.Trajectory{
		nil,
		{ID: 9001},
		{ID: 9002, Records: []gps.Record{
			{Time: 100}, {Time: 50},
		}},
	}
	batch := append(append([]*gps.Trajectory{}, res.Raw...), bad...)

	sink := &captureSink{}
	p, _ := New(g, sink, Config{Workers: 2})
	st := p.IngestRaw(batch)
	if st.MatchFailed < len(bad) {
		t.Fatalf("MatchFailed = %d, want ≥ %d", st.MatchFailed, len(bad))
	}
	for _, m := range sink.staged {
		if m.ID >= 9000 {
			t.Fatalf("broken trace %d reached the sink", m.ID)
		}
	}
}

func TestIngestSinkRejectionCounted(t *testing.T) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	res := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 5, NumTrips: 10, EmitGPS: true,
	}).Generate()

	sink := &captureSink{rejectAll: true}
	p, _ := New(g, sink, Config{})
	st := p.IngestRaw(res.Raw)
	if st.Staged != 0 || st.Rejected != st.Matched {
		t.Fatalf("rejectAll sink: Staged = %d, Rejected = %d, Matched = %d",
			st.Staged, st.Rejected, st.Matched)
	}

	cum := p.Stats()
	if cum.Batches != 1 || cum.Rejected != int64(st.Rejected) {
		t.Fatalf("cumulative stats %+v disagree with batch %+v", cum, st)
	}
}

func TestIngestEmptyBatch(t *testing.T) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	p, _ := New(g, &captureSink{}, Config{})
	st := p.IngestRaw(nil)
	if st != (BatchStats{}) {
		t.Fatalf("empty batch produced stats %+v", st)
	}
	if p.Stats().Batches != 0 {
		t.Fatalf("empty batch counted as a batch")
	}
}
