// Package ingest is the streaming front half of the paper's ingestion
// pipeline (Section 2.1): raw GPS traces arrive in batches, an HMM
// map-matching worker pool aligns each with a road-network path, and
// the resulting (path, departure, per-edge cost) observations are
// staged into a Sink — in the serving system, the epoch-versioned
// model's delta buffer, from which the next PublishEpoch folds them
// into the model incrementally.
//
// The package is deliberately decoupled from the model: it knows how
// to turn raw fixes into validated Matched observations and hand them
// off, nothing more. That keeps the matcher pool reusable (offline
// bulk loads and the /v1/ingest endpoint share it) and keeps the
// model's epoch lifecycle the single owner of delta staging.
package ingest
