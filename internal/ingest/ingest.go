package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/mapmatch"
)

// Sink receives validated map-matched trajectories. The system's
// *pathcost.System satisfies it via StageTrajectories: staged
// observations accumulate until the next epoch publish. accepted and
// rejected partition the batch; a Sink must never panic on valid
// input.
type Sink interface {
	StageTrajectories(batch []*gps.Matched) (accepted, rejected int)
}

// Config tunes a Pipeline.
type Config struct {
	// Workers bounds the map-matching pool; ≤ 1 means sequential.
	Workers int
	// Match tunes the HMM matcher shared (by value) across workers.
	Match mapmatch.Config
}

// BatchStats summarizes one IngestRaw call.
type BatchStats struct {
	// Received counts the raw trajectories in the batch; Records the
	// GPS fixes across them.
	Received int
	Records  int64
	// Matched / MatchFailed partition Received by map-matching
	// outcome.
	Matched     int
	MatchFailed int
	// Staged / Rejected partition Matched by the Sink's validation
	// (e.g. a matched path failing adjacency against the serving
	// graph, which cannot happen when matcher and sink share one
	// graph, but the contract allows independent sinks).
	Staged   int
	Rejected int
}

// Pipeline is a reusable streaming ingester: each IngestRaw call
// map-matches one batch on the worker pool and stages the survivors
// into the Sink. A Pipeline is safe for concurrent use — matchers are
// built per worker per batch (share-nothing, matching pipeline.go's
// bulk loader), and the Sink is required to be concurrency-safe, as
// System.StageTrajectories is.
type Pipeline struct {
	g    *graph.Graph
	sink Sink
	cfg  Config

	// Cumulative counters across every IngestRaw call, for the
	// server's /v1/stats ingest block. Atomics: batches may ingest
	// concurrently.
	received    atomic.Int64
	records     atomic.Int64
	matched     atomic.Int64
	matchFailed atomic.Int64
	staged      atomic.Int64
	rejected    atomic.Int64
	batches     atomic.Int64
}

// New builds a Pipeline staging into sink.
func New(g *graph.Graph, sink Sink, cfg Config) (*Pipeline, error) {
	if g == nil {
		return nil, fmt.Errorf("ingest: nil graph")
	}
	if sink == nil {
		return nil, fmt.Errorf("ingest: nil sink")
	}
	return &Pipeline{g: g, sink: sink, cfg: cfg}, nil
}

// IngestRaw map-matches one batch of raw traces and stages the
// survivors. Unmatchable or invalid traces are counted and dropped,
// never failing the batch — real fleets always contain broken traces.
// An empty batch is a no-op.
func (p *Pipeline) IngestRaw(raw []*gps.Trajectory) BatchStats {
	st := BatchStats{Received: len(raw)}
	if len(raw) == 0 {
		return st
	}
	results := make([]*gps.Matched, len(raw))
	workers := p.cfg.Workers
	if workers > len(raw) {
		workers = len(raw)
	}
	if workers <= 1 {
		m := mapmatch.New(p.g, p.cfg.Match)
		for i := range raw {
			results[i] = p.matchOne(m, raw[i])
		}
	} else {
		// Same work-stealing shape as the bulk loader: workers pull
		// indexes from a shared counter so a pocket of hard traces
		// cannot idle the pool, and each builds its own Matcher.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := mapmatch.New(p.g, p.cfg.Match)
				for {
					i := int(next.Add(1) - 1)
					if i >= len(raw) {
						return
					}
					results[i] = p.matchOne(m, raw[i])
				}
			}()
		}
		wg.Wait()
	}
	matched := make([]*gps.Matched, 0, len(raw))
	for i, tr := range raw {
		if tr != nil {
			st.Records += int64(len(tr.Records))
		}
		if results[i] == nil {
			st.MatchFailed++
			continue
		}
		matched = append(matched, results[i])
		st.Matched++
	}
	if len(matched) > 0 {
		st.Staged, st.Rejected = p.sink.StageTrajectories(matched)
	}
	p.batches.Add(1)
	p.received.Add(int64(st.Received))
	p.records.Add(st.Records)
	p.matched.Add(int64(st.Matched))
	p.matchFailed.Add(int64(st.MatchFailed))
	p.staged.Add(int64(st.Staged))
	p.rejected.Add(int64(st.Rejected))
	return st
}

// matchOne matches one trace, returning nil when it cannot be aligned
// with the network or the alignment fails validation.
func (p *Pipeline) matchOne(m *mapmatch.Matcher, tr *gps.Trajectory) *gps.Matched {
	if tr == nil || tr.Validate() != nil {
		return nil
	}
	timed, err := m.MatchToTimed(tr)
	if err != nil {
		return nil
	}
	if err := timed.Validate(p.g); err != nil {
		return nil
	}
	return timed
}

// Stats reports the cumulative counters across every batch ingested
// through this Pipeline.
type Stats struct {
	Batches     int64
	Received    int64
	Records     int64
	Matched     int64
	MatchFailed int64
	Staged      int64
	Rejected    int64
}

// Stats snapshots the pipeline's cumulative counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Batches:     p.batches.Load(),
		Received:    p.received.Load(),
		Records:     p.records.Load(),
		Matched:     p.matched.Load(),
		MatchFailed: p.matchFailed.Load(),
		Staged:      p.staged.Load(),
		Rejected:    p.rejected.Load(),
	}
}
