// Package traffic is the microscopic travel-cost model behind the
// synthetic trajectory workload. It substitutes for the real GPS
// fleets of the paper (Aalborg D1, Beijing D2) by reproducing the
// three statistical phenomena the paper's method exploits:
//
//   - complex, multi-modal travel-time distributions: each edge
//     traversal happens in a FREE or CONGESTED regime with distinct
//     cost levels, so per-edge and per-path distributions are mixtures
//     rather than Gaussians (paper Figure 1(b));
//   - dependence between the costs of edges in one trip: the regime
//     evolves along the path as a Markov chain and a per-trip driver
//     factor multiplies every edge, so adjacent-edge costs are
//     positively correlated (paper Figure 4);
//   - time-varying behaviour: congestion probability and severity
//     follow a double-peaked (AM/PM) daily profile (paper Section 3.1's
//     interval partitioning exists because of this).
//
// All randomness flows through the caller's *rand.Rand, so workloads
// are reproducible from a seed.
package traffic
