package traffic

import (
	"math"
	"math/rand"

	"repro/internal/gps"
	"repro/internal/graph"
)

// Config parameterizes the cost model. Zero values are replaced by
// DefaultConfig values in NewModel.
type Config struct {
	// AMPeak and PMPeak are the centers (time-of-day seconds) of the
	// two rush-hour peaks; PeakWidth is their Gaussian width.
	AMPeak, PMPeak, PeakWidth float64
	// BaseCongestion is the off-peak probability that an edge
	// traversal happens in the congested regime; PeakCongestion is the
	// additional probability at the exact peak.
	BaseCongestion, PeakCongestion float64
	// RegimePersistence is the probability that the regime carries
	// over from one edge to the next within a trip (the source of
	// inter-edge dependence).
	RegimePersistence float64
	// CongestedFactor is the mean slowdown multiplier in the congested
	// regime; CongestedSpread is its lognormal sigma.
	CongestedFactor, CongestedSpread float64
	// DriverSigma is the lognormal sigma of the per-trip driver
	// factor; NoiseSigma is the lognormal sigma of per-edge noise.
	DriverSigma, NoiseSigma float64
	// JunctionDelay is the mean intersection delay in seconds added
	// per edge, by road class of the edge being entered.
	JunctionDelay [graph.NumRoadClasses]float64
}

// DefaultConfig returns the calibration used by the experiments.
func DefaultConfig() Config {
	return Config{
		AMPeak:            8 * 3600,
		PMPeak:            17 * 3600,
		PeakWidth:         5400,
		BaseCongestion:    0.08,
		PeakCongestion:    0.55,
		RegimePersistence: 0.78,
		CongestedFactor:   2.3,
		CongestedSpread:   0.12,
		DriverSigma:       0.08,
		NoiseSigma:        0.06,
		JunctionDelay:     [graph.NumRoadClasses]float64{0, 7, 11, 5},
	}
}

// Model evaluates the traffic state; it is stateless and safe for
// concurrent use. Per-trip state lives in Trip.
type Model struct {
	cfg Config
}

// NewModel builds a Model, filling zero config fields with defaults.
func NewModel(cfg Config) *Model {
	def := DefaultConfig()
	if cfg.AMPeak == 0 {
		cfg.AMPeak = def.AMPeak
	}
	if cfg.PMPeak == 0 {
		cfg.PMPeak = def.PMPeak
	}
	if cfg.PeakWidth == 0 {
		cfg.PeakWidth = def.PeakWidth
	}
	if cfg.BaseCongestion == 0 {
		cfg.BaseCongestion = def.BaseCongestion
	}
	if cfg.PeakCongestion == 0 {
		cfg.PeakCongestion = def.PeakCongestion
	}
	if cfg.RegimePersistence == 0 {
		cfg.RegimePersistence = def.RegimePersistence
	}
	if cfg.CongestedFactor == 0 {
		cfg.CongestedFactor = def.CongestedFactor
	}
	if cfg.CongestedSpread == 0 {
		cfg.CongestedSpread = def.CongestedSpread
	}
	if cfg.DriverSigma == 0 {
		cfg.DriverSigma = def.DriverSigma
	}
	if cfg.NoiseSigma == 0 {
		cfg.NoiseSigma = def.NoiseSigma
	}
	var zeroJD [graph.NumRoadClasses]float64
	if cfg.JunctionDelay == zeroJD {
		cfg.JunctionDelay = def.JunctionDelay
	}
	return &Model{cfg: cfg}
}

// Config returns the effective configuration.
func (m *Model) Config() Config { return m.cfg }

// Peakness returns how deep into a rush-hour peak the given absolute
// time is, in [0, 1].
func (m *Model) Peakness(t float64) float64 {
	tod := gps.SecondsOfDay(t)
	g := func(center float64) float64 {
		d := tod - center
		return math.Exp(-d * d / (2 * m.cfg.PeakWidth * m.cfg.PeakWidth))
	}
	p := g(m.cfg.AMPeak) + g(m.cfg.PMPeak)
	if p > 1 {
		p = 1
	}
	return p
}

// CongestionProb returns the stationary probability that a traversal
// at absolute time t happens in the congested regime.
func (m *Model) CongestionProb(t float64) float64 {
	p := m.cfg.BaseCongestion + m.cfg.PeakCongestion*m.Peakness(t)
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// Trip is the per-trajectory sampling state: the driver factor drawn
// once per trip and the regime Markov chain evolving edge to edge.
type Trip struct {
	m            *Model
	rnd          *rand.Rand
	driverFactor float64
	congested    bool
	started      bool
}

// NewTrip starts a trip departing at absolute time depart.
func (m *Model) NewTrip(rnd *rand.Rand, depart float64) *Trip {
	return &Trip{
		m:            m,
		rnd:          rnd,
		driverFactor: math.Exp(rnd.NormFloat64() * m.cfg.DriverSigma),
	}
}

// TraverseEdge samples the travel time in seconds for traversing e
// when arriving at its start at absolute time arrival, advancing the
// trip's regime chain. The returned cost is always positive and at
// least 40% of free-flow (vehicles cannot be arbitrarily fast).
func (t *Trip) TraverseEdge(e graph.Edge, arrival float64) float64 {
	cfg := t.m.cfg
	rho := t.m.CongestionProb(arrival)
	if !t.started {
		t.congested = t.rnd.Float64() < rho
		t.started = true
	} else {
		// Blend persistence with the stationary probability so the
		// chain both correlates along the path and tracks the clock.
		var p float64
		if t.congested {
			p = cfg.RegimePersistence + (1-cfg.RegimePersistence)*rho
		} else {
			p = (1 - cfg.RegimePersistence) * rho
		}
		t.congested = t.rnd.Float64() < p
	}

	base := e.FreeFlowSeconds()
	cost := base
	if t.congested {
		f := cfg.CongestedFactor * math.Exp(t.rnd.NormFloat64()*cfg.CongestedSpread)
		if f < 1 {
			f = 1
		}
		cost *= f
	}
	// Intersection delay for entering this edge, worse when congested.
	delay := cfg.JunctionDelay[e.Class] * t.rnd.ExpFloat64()
	if t.congested {
		delay *= 1.8
	}
	cost += delay
	// Driver factor and idiosyncratic noise.
	cost *= t.driverFactor * math.Exp(t.rnd.NormFloat64()*cfg.NoiseSigma)

	if min := 0.4 * base; cost < min {
		cost = min
	}
	return cost
}

// Congested reports the current regime; exported for tests that check
// the chain's correlation structure.
func (t *Trip) Congested() bool { return t.congested }

// Emissions returns the GHG cost in grams of traversing edge e in the
// given number of seconds, using a convex speed-emissions curve
// (U-shaped in speed, minimal near 65 km/h) in the spirit of the
// vehicular environmental models the paper cites [8, 9].
func Emissions(e graph.Edge, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	vKmh := e.LengthM / 1000 / (seconds / 3600)
	if vKmh < 3 {
		vKmh = 3 // idling floor
	}
	gramsPerKm := 110 + 3200/vKmh + 0.012*vKmh*vKmh
	return gramsPerKm * e.LengthM / 1000
}
