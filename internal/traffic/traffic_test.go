package traffic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func testEdge() graph.Edge {
	return graph.Edge{ID: 0, From: 0, To: 1, LengthM: 500, SpeedKmh: 50, Class: graph.ClassSecondary}
}

func TestNewModelFillsDefaults(t *testing.T) {
	m := NewModel(Config{})
	def := DefaultConfig()
	if m.Config() != def {
		t.Fatalf("zero config should become defaults:\n got %+v\nwant %+v", m.Config(), def)
	}
	// Partial overrides survive.
	m2 := NewModel(Config{CongestedFactor: 3})
	if m2.Config().CongestedFactor != 3 {
		t.Fatal("override lost")
	}
	if m2.Config().AMPeak != def.AMPeak {
		t.Fatal("default not filled")
	}
}

func TestPeaknessShape(t *testing.T) {
	m := NewModel(Config{})
	am := m.Peakness(8 * 3600)
	noon := m.Peakness(12 * 3600)
	night := m.Peakness(3 * 3600)
	pm := m.Peakness(17 * 3600)
	if am < 0.9 || pm < 0.9 {
		t.Fatalf("peaks should be ~1: am=%v pm=%v", am, pm)
	}
	if noon > 0.7 || night > 0.15 {
		t.Fatalf("off-peak should be low: noon=%v night=%v", noon, night)
	}
	// Works across day boundaries (absolute times).
	if got := m.Peakness(5*86400 + 8*3600); math.Abs(got-am) > 1e-12 {
		t.Fatal("peakness must depend only on time of day")
	}
}

func TestCongestionProbBounds(t *testing.T) {
	m := NewModel(Config{})
	for h := 0.0; h < 24; h += 0.25 {
		p := m.CongestionProb(h * 3600)
		if p < 0 || p > 0.95 {
			t.Fatalf("p=%v at hour %v", p, h)
		}
	}
	if m.CongestionProb(8*3600) <= m.CongestionProb(3*3600) {
		t.Fatal("rush hour must be more congested than night")
	}
}

func TestTraverseEdgePositiveAndBounded(t *testing.T) {
	m := NewModel(Config{})
	rnd := rand.New(rand.NewSource(1))
	e := testEdge()
	ff := e.FreeFlowSeconds()
	for i := 0; i < 5000; i++ {
		trip := m.NewTrip(rnd, 8*3600)
		c := trip.TraverseEdge(e, 8*3600)
		if c < 0.4*ff {
			t.Fatalf("cost %v below floor %v", c, 0.4*ff)
		}
		if c > ff*40 {
			t.Fatalf("cost %v absurdly high", c)
		}
	}
}

func TestRushHourSlowerOnAverage(t *testing.T) {
	m := NewModel(Config{})
	rnd := rand.New(rand.NewSource(2))
	e := testEdge()
	mean := func(hour float64) float64 {
		var s float64
		const n = 4000
		for i := 0; i < n; i++ {
			trip := m.NewTrip(rnd, hour*3600)
			s += trip.TraverseEdge(e, hour*3600)
		}
		return s / n
	}
	peak := mean(8)
	night := mean(3)
	if peak <= night*1.15 {
		t.Fatalf("rush hour mean %v should clearly exceed night mean %v", peak, night)
	}
}

func TestRegimePersistenceCreatesCorrelation(t *testing.T) {
	// Along a trip, consecutive edge costs must be positively
	// correlated; across independent trips they must not be.
	m := NewModel(Config{})
	rnd := rand.New(rand.NewSource(3))
	e := testEdge()
	const n = 6000
	within := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		trip := m.NewTrip(rnd, 8*3600)
		c1 := trip.TraverseEdge(e, 8*3600)
		c2 := trip.TraverseEdge(e, 8*3600+c1)
		within = append(within, [2]float64{c1, c2})
	}
	corr := pairCorrelation(within)
	if corr < 0.3 {
		t.Fatalf("within-trip correlation = %v, want strongly positive", corr)
	}
	across := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		t1 := m.NewTrip(rnd, 8*3600)
		t2 := m.NewTrip(rnd, 8*3600)
		across = append(across, [2]float64{
			t1.TraverseEdge(e, 8*3600),
			t2.TraverseEdge(e, 8*3600),
		})
	}
	if c := pairCorrelation(across); math.Abs(c) > 0.1 {
		t.Fatalf("across-trip correlation = %v, want ≈0", c)
	}
}

func pairCorrelation(xs [][2]float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for _, p := range xs {
		sx += p[0]
		sy += p[1]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for _, p := range xs {
		cov += (p[0] - mx) * (p[1] - my)
		vx += (p[0] - mx) * (p[0] - mx)
		vy += (p[1] - my) * (p[1] - my)
	}
	return cov / math.Sqrt(vx*vy)
}

func TestRushHourDistributionIsBimodal(t *testing.T) {
	// At a moderately congested time the cost distribution must show
	// two separated clusters (free vs congested), the phenomenon from
	// the paper's Figure 1(b).
	m := NewModel(Config{})
	rnd := rand.New(rand.NewSource(4))
	e := testEdge()
	ff := e.FreeFlowSeconds()
	var free, cong int
	for i := 0; i < 4000; i++ {
		trip := m.NewTrip(rnd, 7.2*3600)
		c := trip.TraverseEdge(e, 7.2*3600)
		if c < ff*1.6 {
			free++
		} else if c > ff*1.9 {
			cong++
		}
	}
	if free < 400 || cong < 400 {
		t.Fatalf("expected both modes populated: free=%d congested=%d", free, cong)
	}
}

func TestEmissionsShape(t *testing.T) {
	e := testEdge()
	// U-shaped in speed: very slow and very fast cost more than ~65km/h.
	atSpeed := func(vKmh float64) float64 {
		sec := e.LengthM / 1000 / vKmh * 3600
		return Emissions(e, sec)
	}
	mid := atSpeed(65)
	slow := atSpeed(10)
	fast := atSpeed(130)
	if mid >= slow || mid >= fast {
		t.Fatalf("emissions not U-shaped: slow=%v mid=%v fast=%v", slow, mid, fast)
	}
	if Emissions(e, 0) != 0 {
		t.Fatal("zero duration should have zero emissions")
	}
	if Emissions(e, -5) != 0 {
		t.Fatal("negative duration should have zero emissions")
	}
	// Longer edges emit proportionally more at the same speed.
	long := e
	long.LengthM = 1000
	if got := Emissions(long, 1000/1000/65.0*3600); got <= mid {
		t.Fatal("longer edge should emit more")
	}
}

func TestTripCongestedAccessor(t *testing.T) {
	m := NewModel(Config{})
	rnd := rand.New(rand.NewSource(5))
	trip := m.NewTrip(rnd, 8*3600)
	_ = trip.TraverseEdge(testEdge(), 8*3600)
	_ = trip.Congested() // must not panic; value is stochastic
}
