package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by Haversine.
const EarthRadiusMeters = 6371000.0

// Point is a WGS84 coordinate.
type Point struct {
	Lat float64 // latitude in degrees, positive north
	Lon float64 // longitude in degrees, positive east
}

// String renders the point as "lat,lon" with six decimals (~0.1 m).
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the legal WGS84 domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLat := la2 - la1
	dLon := lo2 - lo1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Bearing returns the initial bearing from a to b in degrees in [0, 360).
func Bearing(a, b Point) float64 {
	la1, la2 := deg2rad(a.Lat), deg2rad(b.Lat)
	dLon := deg2rad(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	br := rad2deg(math.Atan2(y, x))
	if br < 0 {
		br += 360
	}
	return br
}

// Offset returns the point reached from p by travelling dist meters on
// the given bearing (degrees).
func Offset(p Point, bearingDeg, dist float64) Point {
	la1 := deg2rad(p.Lat)
	lo1 := deg2rad(p.Lon)
	br := deg2rad(bearingDeg)
	ad := dist / EarthRadiusMeters
	la2 := math.Asin(math.Sin(la1)*math.Cos(ad) + math.Cos(la1)*math.Sin(ad)*math.Cos(br))
	lo2 := lo1 + math.Atan2(math.Sin(br)*math.Sin(ad)*math.Cos(la1),
		math.Cos(ad)-math.Sin(la1)*math.Sin(la2))
	return Point{Lat: rad2deg(la2), Lon: rad2deg(lo2)}
}

// Projection is a local equirectangular projection around an origin.
// It maps WGS84 points to planar (x, y) meters; accurate for city-scale
// extents, which is all the simulator and map matcher need.
type Projection struct {
	origin Point
	cosLat float64
}

// NewProjection creates a projection centered on origin.
func NewProjection(origin Point) *Projection {
	return &Projection{origin: origin, cosLat: math.Cos(deg2rad(origin.Lat))}
}

// Origin returns the projection center.
func (pr *Projection) Origin() Point { return pr.origin }

// ToXY projects p to planar meters relative to the origin.
func (pr *Projection) ToXY(p Point) (x, y float64) {
	x = deg2rad(p.Lon-pr.origin.Lon) * EarthRadiusMeters * pr.cosLat
	y = deg2rad(p.Lat-pr.origin.Lat) * EarthRadiusMeters
	return x, y
}

// ToPoint is the inverse of ToXY.
func (pr *Projection) ToPoint(x, y float64) Point {
	lat := pr.origin.Lat + rad2deg(y/EarthRadiusMeters)
	lon := pr.origin.Lon + rad2deg(x/(EarthRadiusMeters*pr.cosLat))
	return Point{Lat: lat, Lon: lon}
}

// XY is a planar coordinate in meters.
type XY struct {
	X, Y float64
}

// Dist returns the Euclidean distance between a and b.
func (a XY) Dist(b XY) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// Segment is a planar line segment.
type Segment struct {
	A, B XY
}

// Length returns the segment length in meters.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// ClosestPoint returns the point on the segment closest to p and the
// fraction t in [0,1] along the segment at which it lies.
func (s Segment) ClosestPoint(p XY) (XY, float64) {
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return s.A, 0
	}
	t := ((p.X-s.A.X)*dx + (p.Y-s.A.Y)*dy) / l2
	t = math.Max(0, math.Min(1, t))
	return XY{X: s.A.X + t*dx, Y: s.A.Y + t*dy}, t
}

// DistToPoint returns the distance from p to the segment.
func (s Segment) DistToPoint(p XY) float64 {
	c, _ := s.ClosestPoint(p)
	return c.Dist(p)
}

// BBox is an axis-aligned bounding box over WGS84 coordinates.
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// EmptyBBox returns a box that contains nothing; Extend grows it.
func EmptyBBox() BBox {
	return BBox{
		MinLat: math.Inf(1), MinLon: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLon: math.Inf(-1),
	}
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	b.MinLat = math.Min(b.MinLat, p.Lat)
	b.MinLon = math.Min(b.MinLon, p.Lon)
	b.MaxLat = math.Max(b.MaxLat, p.Lat)
	b.MaxLon = math.Max(b.MaxLon, p.Lon)
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box midpoint.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}
