// Package geo provides basic geographic primitives used across the
// library: WGS84 points, great-circle distances, a local planar
// projection, and point-to-segment geometry needed by the map matcher.
//
// All distances are in meters and all coordinates are in decimal
// degrees unless noted otherwise.
package geo
