package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHaversineZero(t *testing.T) {
	p := Point{Lat: 57.05, Lon: 9.92}
	if d := Haversine(p, p); d != 0 {
		t.Fatalf("distance to self = %v, want 0", d)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Aalborg to Copenhagen is roughly 237 km great circle.
	aal := Point{Lat: 57.0488, Lon: 9.9217}
	cph := Point{Lat: 55.6761, Lon: 12.5683}
	d := Haversine(aal, cph)
	if d < 220000 || d > 250000 {
		t.Fatalf("Aalborg-Copenhagen = %v m, want ~237 km", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: math.Mod(lat1, 89), Lon: math.Mod(lon1, 179)}
		b := Point{Lat: math.Mod(lat2, 89), Lon: math.Mod(lon2, 179)}
		return almostEq(Haversine(a, b), Haversine(b, a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{Lat: math.Mod(lat1, 89), Lon: math.Mod(lon1, 179)}
		b := Point{Lat: math.Mod(lat2, 89), Lon: math.Mod(lon2, 179)}
		c := Point{Lat: math.Mod(lat3, 89), Lon: math.Mod(lon3, 179)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	p := Point{Lat: 57.05, Lon: 9.92}
	for _, br := range []float64{0, 45, 90, 135, 180, 270, 359} {
		for _, d := range []float64{10, 500, 5000} {
			q := Offset(p, br, d)
			got := Haversine(p, q)
			if !almostEq(got, d, d*1e-3+0.01) {
				t.Errorf("Offset(%v, %v): distance %v, want %v", br, d, got, d)
			}
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	p := Point{Lat: 57.0, Lon: 9.9}
	cases := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{Lat: 57.1, Lon: 9.9}, 0},
		{"east", Point{Lat: 57.0, Lon: 10.0}, 90},
		{"south", Point{Lat: 56.9, Lon: 9.9}, 180},
		{"west", Point{Lat: 57.0, Lon: 9.8}, 270},
	}
	for _, c := range cases {
		got := Bearing(p, c.to)
		if !almostEq(got, c.want, 0.5) {
			t.Errorf("%s: bearing = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(Point{Lat: 57.05, Lon: 9.92})
	f := func(dx, dy float64) bool {
		dx = math.Mod(dx, 20000)
		dy = math.Mod(dy, 20000)
		p := pr.ToPoint(dx, dy)
		x, y := pr.ToXY(p)
		return almostEq(x, dx, 1e-6) && almostEq(y, dy, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionDistanceAgreesWithHaversine(t *testing.T) {
	pr := NewProjection(Point{Lat: 57.05, Lon: 9.92})
	a := Point{Lat: 57.06, Lon: 9.95}
	b := Point{Lat: 57.02, Lon: 9.90}
	ax, ay := pr.ToXY(a)
	bx, by := pr.ToXY(b)
	planar := XY{ax, ay}.Dist(XY{bx, by})
	sphere := Haversine(a, b)
	if math.Abs(planar-sphere)/sphere > 0.01 {
		t.Fatalf("planar %v vs sphere %v: error > 1%%", planar, sphere)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{A: XY{0, 0}, B: XY{10, 0}}
	cases := []struct {
		p     XY
		wantC XY
		wantT float64
	}{
		{XY{5, 3}, XY{5, 0}, 0.5},
		{XY{-4, 2}, XY{0, 0}, 0},
		{XY{14, -2}, XY{10, 0}, 1},
		{XY{0, 0}, XY{0, 0}, 0},
	}
	for _, c := range cases {
		got, tfrac := s.ClosestPoint(c.p)
		if !almostEq(got.X, c.wantC.X, 1e-9) || !almostEq(got.Y, c.wantC.Y, 1e-9) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.wantC)
		}
		if !almostEq(tfrac, c.wantT, 1e-9) {
			t.Errorf("ClosestPoint(%v) t = %v, want %v", c.p, tfrac, c.wantT)
		}
	}
}

func TestSegmentDegenerate(t *testing.T) {
	s := Segment{A: XY{3, 4}, B: XY{3, 4}}
	c, tfrac := s.ClosestPoint(XY{0, 0})
	if c != s.A || tfrac != 0 {
		t.Fatalf("degenerate segment: got %v, %v", c, tfrac)
	}
	if got := s.DistToPoint(XY{0, 0}); !almostEq(got, 5, 1e-9) {
		t.Fatalf("DistToPoint = %v, want 5", got)
	}
}

func TestSegmentDistNonNegativeAndBounded(t *testing.T) {
	clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Segment{A: XY{clamp(ax), clamp(ay)}, B: XY{clamp(bx), clamp(by)}}
		p := XY{clamp(px), clamp(py)}
		d := s.DistToPoint(p)
		// Distance must be >= 0 and <= distance to either endpoint.
		return d >= 0 && d <= p.Dist(s.A)+1e-9 && d <= p.Dist(s.B)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBBox(t *testing.T) {
	b := EmptyBBox()
	pts := []Point{{57.0, 9.9}, {57.1, 9.8}, {56.9, 10.0}}
	for _, p := range pts {
		b.Extend(p)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	if b.Contains(Point{Lat: 60, Lon: 9.9}) {
		t.Error("box should not contain far point")
	}
	c := b.Center()
	if !almostEq(c.Lat, 57.0, 1e-9) || !almostEq(c.Lon, 9.9, 1e-9) {
		t.Errorf("center = %v", c)
	}
}

func TestPointValid(t *testing.T) {
	if !(Point{Lat: 57, Lon: 9.9}).Valid() {
		t.Error("normal point should be valid")
	}
	if (Point{Lat: 91, Lon: 0}).Valid() {
		t.Error("lat 91 should be invalid")
	}
	if (Point{Lat: math.NaN(), Lon: 0}).Valid() {
		t.Error("NaN should be invalid")
	}
}
