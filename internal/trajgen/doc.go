// Package trajgen synthesizes vehicle trajectory workloads over a road
// network, substituting for the paper's real GPS fleets. Demand
// follows a gravity model over zones with a pool of heavily repeated
// commuter origin–destination pairs, departures follow a double-peaked
// daily profile, routes come from per-trip perturbed shortest paths,
// and per-edge travel costs come from the traffic model — so the
// resulting collection exhibits the paper's skewed coverage
// (Figure 3), inter-edge dependence (Figure 4) and time-varying,
// multi-modal cost distributions (Figure 1(b)).
package trajgen
