package trajgen

import (
	"math"
	"testing"

	"repro/internal/gps"
	"repro/internal/netgen"
	"repro/internal/traffic"
)

func testWorkload(t testing.TB, cfg Config) *Result {
	t.Helper()
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	gen := New(g, traffic.NewModel(traffic.Config{}), cfg)
	return gen.Generate()
}

func TestGenerateBasics(t *testing.T) {
	res := testWorkload(t, Config{Seed: 1, NumTrips: 300})
	c := res.Collection
	if c.Len() != 300 {
		t.Fatalf("trips = %d, want 300", c.Len())
	}
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	for i := 0; i < c.Len(); i++ {
		m := c.Traj(i)
		if err := m.Validate(g); err != nil {
			t.Fatalf("trajectory %d invalid: %v", i, err)
		}
		if len(m.Path) < 3 {
			t.Fatalf("trajectory %d shorter than MinEdges", i)
		}
		if m.Depart < 0 {
			t.Fatalf("trajectory %d negative departure", i)
		}
	}
	if c.Records() <= 0 {
		t.Fatal("record estimate missing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := testWorkload(t, Config{Seed: 7, NumTrips: 100})
	b := testWorkload(t, Config{Seed: 7, NumTrips: 100})
	if a.Collection.Len() != b.Collection.Len() {
		t.Fatal("same seed, different trip counts")
	}
	for i := 0; i < a.Collection.Len(); i++ {
		ma, mb := a.Collection.Traj(i), b.Collection.Traj(i)
		if !ma.Path.Equal(mb.Path) || ma.Depart != mb.Depart {
			t.Fatalf("trajectory %d differs across identical seeds", i)
		}
		for j := range ma.EdgeCosts {
			if ma.EdgeCosts[j] != mb.EdgeCosts[j] {
				t.Fatalf("trajectory %d cost %d differs", i, j)
			}
		}
	}
	c := testWorkload(t, Config{Seed: 8, NumTrips: 100})
	if c.Collection.Traj(0).Path.Equal(a.Collection.Traj(0).Path) &&
		c.Collection.Traj(0).Depart == a.Collection.Traj(0).Depart {
		t.Fatal("different seeds gave identical first trajectory")
	}
}

func TestCommuterSkewCreatesDenseCorridors(t *testing.T) {
	res := testWorkload(t, Config{Seed: 3, NumTrips: 800})
	c := res.Collection
	// Count identical full paths; the commuter pool must produce
	// heavily repeated paths, which is what gives long paths enough
	// support for high-rank variables.
	counts := make(map[string]int)
	for i := 0; i < c.Len(); i++ {
		counts[c.Traj(i).Path.Key()]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 10 {
		t.Fatalf("max identical-path count = %d, want ≥ 10 (commuter corridors)", max)
	}
}

func TestDeparturesFollowDoublePeak(t *testing.T) {
	res := testWorkload(t, Config{Seed: 4, NumTrips: 1500})
	c := res.Collection
	hourCounts := make([]int, 24)
	for i := 0; i < c.Len(); i++ {
		h := int(gps.SecondsOfDay(c.Traj(i).Depart) / 3600)
		hourCounts[h]++
	}
	peak := hourCounts[8] + hourCounts[7] + hourCounts[17] + hourCounts[16]
	night := hourCounts[1] + hourCounts[2] + hourCounts[3] + hourCounts[4]
	if peak < night*5 {
		t.Fatalf("peaks %d vs night %d: demand profile missing", peak, night)
	}
}

func TestEmissionsOptional(t *testing.T) {
	res := testWorkload(t, Config{Seed: 5, NumTrips: 50, WithEmissions: true})
	for i := 0; i < res.Collection.Len(); i++ {
		m := res.Collection.Traj(i)
		if m.Emissions == nil || len(m.Emissions) != len(m.Path) {
			t.Fatalf("trajectory %d missing emissions", i)
		}
		for _, g := range m.Emissions {
			if g <= 0 {
				t.Fatalf("trajectory %d non-positive emissions", i)
			}
		}
	}
	res2 := testWorkload(t, Config{Seed: 5, NumTrips: 10})
	if res2.Collection.Traj(0).Emissions != nil {
		t.Fatal("emissions should be nil when not requested")
	}
}

func TestEmitGPS(t *testing.T) {
	res := testWorkload(t, Config{Seed: 6, NumTrips: 40, EmitGPS: true, SamplingIntervalS: 2})
	if len(res.Raw) != res.Collection.Len() {
		t.Fatalf("raw trajectories = %d, want %d", len(res.Raw), res.Collection.Len())
	}
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	bb := g.BBox()
	for i, tr := range res.Raw {
		if err := tr.Validate(); err != nil {
			t.Fatalf("raw %d: %v", i, err)
		}
		m := res.Collection.Traj(i)
		// Duration of the GPS trace matches the matched costs.
		if math.Abs(tr.Duration()-m.TotalCost()) > m.TotalCost()*0.2+10 {
			t.Fatalf("raw %d duration %v vs cost %v", i, tr.Duration(), m.TotalCost())
		}
		// Fixes are near the network (within noise + jitter margin).
		for _, r := range tr.Records {
			if r.Pt.Lat < bb.MinLat-0.01 || r.Pt.Lat > bb.MaxLat+0.01 {
				t.Fatalf("raw %d fix far outside network: %v", i, r.Pt)
			}
		}
		// Sampling rate respected (records ≈ duration / interval).
		wantRecords := int(tr.Duration()/2) + 2
		if len(tr.Records) > wantRecords+5 {
			t.Fatalf("raw %d has %d records, want ≈%d", i, len(tr.Records), wantRecords)
		}
	}
}

func TestPerturbedWeightDeterministicAndPositive(t *testing.T) {
	w1 := perturbedWeight(42, 0.25)
	w2 := perturbedWeight(42, 0.25)
	w3 := perturbedWeight(43, 0.25)
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	diff := 0
	for _, e := range g.Edges()[:50] {
		a, b, c := w1(e), w2(e), w3(e)
		if a <= 0 {
			t.Fatalf("non-positive weight %v", a)
		}
		if a != b {
			t.Fatal("same seed must give same weight")
		}
		if a != c {
			diff++
		}
	}
	if diff < 40 {
		t.Fatalf("different trip seeds should perturb most edges, got %d/50", diff)
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	gen := New(g, traffic.NewModel(traffic.Config{}), Config{Seed: 9, NumTrips: 5})
	if gen.cfg.Zones == 0 || gen.cfg.Days == 0 || gen.cfg.MaxEdges == 0 {
		t.Fatalf("defaults not filled: %+v", gen.cfg)
	}
	res := gen.Generate()
	if res.Collection.Len() != 5 {
		t.Fatalf("trips = %d", res.Collection.Len())
	}
}
