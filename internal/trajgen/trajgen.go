package trajgen

import (
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/traffic"
)

// Config controls workload generation.
type Config struct {
	Seed     int64
	NumTrips int
	// Zones is the demand grid resolution (Zones×Zones cells).
	Zones int
	// CommuterFrac is the fraction of trips drawn from a small pool of
	// repeated OD pairs (dense corridors); CommuterPool is the pool
	// size.
	CommuterFrac float64
	CommuterPool int
	// Days spreads trips over this many days of collection.
	Days int
	// RoutePerturbSigma is the lognormal sigma of the per-trip edge
	// weight perturbation used for route diversity.
	RoutePerturbSigma float64
	// MinEdges and MaxEdges bound the usable route lengths.
	MinEdges, MaxEdges int
	// WithEmissions also computes per-edge GHG costs.
	WithEmissions bool
	// GPS emission (raw records for the map-matching pipeline).
	EmitGPS           bool
	SamplingIntervalS float64
	GPSNoiseM         float64
}

// DefaultConfig returns a workload calibration suitable for tests and
// benches; experiments scale NumTrips up.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumTrips:          2000,
		Zones:             6,
		CommuterFrac:      0.45,
		CommuterPool:      40,
		Days:              30,
		RoutePerturbSigma: 0.25,
		MinEdges:          3,
		MaxEdges:          120,
		SamplingIntervalS: 5,
		GPSNoiseM:         8,
	}
}

// Generator produces trajectory workloads for one network and traffic
// model.
type Generator struct {
	g     *graph.Graph
	model *traffic.Model
	cfg   Config
}

// New creates a Generator; zero config fields fall back to defaults.
func New(g *graph.Graph, model *traffic.Model, cfg Config) *Generator {
	def := DefaultConfig()
	if cfg.NumTrips == 0 {
		cfg.NumTrips = def.NumTrips
	}
	if cfg.Zones == 0 {
		cfg.Zones = def.Zones
	}
	if cfg.CommuterFrac == 0 {
		cfg.CommuterFrac = def.CommuterFrac
	}
	if cfg.CommuterPool == 0 {
		cfg.CommuterPool = def.CommuterPool
	}
	if cfg.Days == 0 {
		cfg.Days = def.Days
	}
	if cfg.RoutePerturbSigma == 0 {
		cfg.RoutePerturbSigma = def.RoutePerturbSigma
	}
	if cfg.MinEdges == 0 {
		cfg.MinEdges = def.MinEdges
	}
	if cfg.MaxEdges == 0 {
		cfg.MaxEdges = def.MaxEdges
	}
	if cfg.SamplingIntervalS == 0 {
		cfg.SamplingIntervalS = def.SamplingIntervalS
	}
	if cfg.GPSNoiseM == 0 {
		cfg.GPSNoiseM = def.GPSNoiseM
	}
	return &Generator{g: g, model: model, cfg: cfg}
}

// Result is a generated workload: the matched trajectory collection
// every estimator consumes and, when EmitGPS is set, the raw GPS
// trajectories for the map-matching pipeline.
type Result struct {
	Collection *gps.Collection
	Raw        []*gps.Trajectory
}

// zoneModel is the gravity demand over a Zones×Zones grid.
type zoneModel struct {
	zones     int
	vertices  [][]graph.VertexID // per-zone vertex lists
	weights   []float64          // per-zone attractiveness
	centroids []geo.XY
}

func buildZones(g *graph.Graph, zones int, rnd *rand.Rand) *zoneModel {
	bb := g.BBox()
	proj := geo.NewProjection(bb.Center())
	zm := &zoneModel{
		zones:     zones,
		vertices:  make([][]graph.VertexID, zones*zones),
		weights:   make([]float64, zones*zones),
		centroids: make([]geo.XY, zones*zones),
	}
	minX, minY := proj.ToXY(geo.Point{Lat: bb.MinLat, Lon: bb.MinLon})
	maxX, maxY := proj.ToXY(geo.Point{Lat: bb.MaxLat, Lon: bb.MaxLon})
	spanX, spanY := maxX-minX, maxY-minY
	for _, v := range g.Vertices() {
		x, y := proj.ToXY(v.Pt)
		zc := int((x - minX) / spanX * float64(zones))
		zr := int((y - minY) / spanY * float64(zones))
		if zc >= zones {
			zc = zones - 1
		}
		if zr >= zones {
			zr = zones - 1
		}
		zi := zr*zones + zc
		zm.vertices[zi] = append(zm.vertices[zi], v.ID)
	}
	for zi := range zm.weights {
		zr, zc := zi/zones, zi%zones
		cx := minX + (float64(zc)+0.5)*spanX/float64(zones)
		cy := minY + (float64(zr)+0.5)*spanY/float64(zones)
		zm.centroids[zi] = geo.XY{X: cx, Y: cy}
		if len(zm.vertices[zi]) == 0 {
			continue
		}
		// Lognormal attractiveness with a boost toward the center, so
		// central corridors see the densest traffic.
		centerBoost := 1.0 +
			2.0*math.Exp(-(cx*cx+cy*cy)/(0.15*(spanX*spanX+spanY*spanY)))
		zm.weights[zi] = math.Exp(rnd.NormFloat64()*0.8) * centerBoost
	}
	return zm
}

// sampleZone draws a zone index proportional to the given weights.
func sampleZone(weights []float64, rnd *rand.Rand) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := rnd.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// sampleOD draws an origin and destination vertex under the gravity
// model: destination choice decays with distance from the origin zone.
func (zm *zoneModel) sampleOD(rnd *rand.Rand) (graph.VertexID, graph.VertexID) {
	oz := sampleZone(zm.weights, rnd)
	for len(zm.vertices[oz]) == 0 {
		oz = sampleZone(zm.weights, rnd)
	}
	// Gravity destination weights.
	dw := make([]float64, len(zm.weights))
	oc := zm.centroids[oz]
	for i, w := range zm.weights {
		if len(zm.vertices[i]) == 0 || i == oz {
			continue
		}
		d := oc.Dist(zm.centroids[i]) + 500
		dw[i] = w / (d / 1000)
	}
	dz := sampleZone(dw, rnd)
	if len(zm.vertices[dz]) == 0 {
		dz = oz
	}
	o := zm.vertices[oz][rnd.Intn(len(zm.vertices[oz]))]
	d := zm.vertices[dz][rnd.Intn(len(zm.vertices[dz]))]
	return o, d
}

// departureTime samples an absolute departure: a uniform day plus a
// double-peaked time of day (35% AM peak, 35% PM peak, 30% daytime
// uniform).
func departureTime(rnd *rand.Rand, days int) float64 {
	day := float64(rnd.Intn(days))
	var tod float64
	switch u := rnd.Float64(); {
	case u < 0.35:
		tod = 8*3600 + rnd.NormFloat64()*3000
	case u < 0.70:
		tod = 17*3600 + rnd.NormFloat64()*3600
	default:
		tod = 6*3600 + rnd.Float64()*16*3600
	}
	if tod < 0 {
		tod = 0
	}
	if tod >= gps.SecondsPerDay {
		tod = gps.SecondsPerDay - 1
	}
	return day*gps.SecondsPerDay + tod
}

// perturbedWeight returns a deterministic per-trip edge weight: the
// free-flow time scaled by a lognormal multiplier derived by hashing
// (tripSeed, edgeID), giving route diversity at O(1) per edge.
func perturbedWeight(tripSeed uint64, sigma float64) graph.WeightFunc {
	return func(e graph.Edge) float64 {
		h := splitmix64(tripSeed ^ (uint64(e.ID)+1)*0x9e3779b97f4a7c15)
		// Map to a standard normal via two uniform halves (Box–Muller
		// would need two hashes; a sum of uniforms is plenty here).
		u1 := float64(h>>40) / float64(1<<24)
		u2 := float64(h&0xffffff) / float64(1<<24)
		z := (u1 + u2 - 1) * 2.449 // approx unit variance
		return e.FreeFlowSeconds() * math.Exp(z*sigma)
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Generate synthesizes the workload.
func (gen *Generator) Generate() *Result {
	rnd := rand.New(rand.NewSource(gen.cfg.Seed))
	zm := buildZones(gen.g, gen.cfg.Zones, rnd)

	// Commuter OD pool: heavily repeated pairs.
	type od struct{ o, d graph.VertexID }
	pool := make([]od, 0, gen.cfg.CommuterPool)
	for len(pool) < gen.cfg.CommuterPool {
		o, d := zm.sampleOD(rnd)
		if o != d {
			pool = append(pool, od{o, d})
		}
	}

	var trajs []*gps.Matched
	var raw []*gps.Trajectory
	var recordCount int64
	var proj *geo.Projection
	if gen.cfg.EmitGPS {
		proj = geo.NewProjection(gen.g.BBox().Center())
	}

	id := int64(0)
	attempts := 0
	for len(trajs) < gen.cfg.NumTrips && attempts < gen.cfg.NumTrips*20 {
		attempts++
		var o, d graph.VertexID
		if rnd.Float64() < gen.cfg.CommuterFrac {
			p := pool[rnd.Intn(len(pool))]
			o, d = p.o, p.d
		} else {
			o, d = zm.sampleOD(rnd)
		}
		if o == d {
			continue
		}
		w := perturbedWeight(uint64(rnd.Int63()), gen.cfg.RoutePerturbSigma)
		path, _, ok := gen.g.ShortestPath(o, d, w)
		if !ok || len(path) < gen.cfg.MinEdges || len(path) > gen.cfg.MaxEdges {
			continue
		}
		depart := departureTime(rnd, gen.cfg.Days)
		trip := gen.model.NewTrip(rnd, depart)
		costs := make([]float64, len(path))
		var emissions []float64
		if gen.cfg.WithEmissions {
			emissions = make([]float64, len(path))
		}
		t := depart
		for i, eid := range path {
			e := gen.g.Edge(eid)
			c := trip.TraverseEdge(e, t)
			costs[i] = c
			if emissions != nil {
				emissions[i] = traffic.Emissions(e, c)
			}
			t += c
		}
		m := &gps.Matched{
			ID:        id,
			Path:      path,
			Depart:    depart,
			EdgeCosts: costs,
			Emissions: emissions,
		}
		trajs = append(trajs, m)
		if gen.cfg.EmitGPS {
			tr := gen.emitGPS(rnd, proj, m)
			raw = append(raw, tr)
			recordCount += int64(len(tr.Records))
		} else {
			// Estimate records at a 1 Hz sampling rate for reporting.
			recordCount += int64(m.TotalCost())
		}
		id++
	}
	return &Result{Collection: gps.NewCollection(trajs, recordCount), Raw: raw}
}

// emitGPS renders a matched trajectory as noisy GPS fixes: the vehicle
// moves along each edge's straight-line geometry at the constant speed
// implied by the edge's sampled cost, and fixes are taken every
// SamplingIntervalS seconds with Gaussian position noise.
func (gen *Generator) emitGPS(rnd *rand.Rand, proj *geo.Projection, m *gps.Matched) *gps.Trajectory {
	tr := &gps.Trajectory{ID: m.ID}
	interval := gen.cfg.SamplingIntervalS
	noise := gen.cfg.GPSNoiseM

	emit := func(pt geo.Point, at float64) {
		x, y := proj.ToXY(pt)
		x += rnd.NormFloat64() * noise
		y += rnd.NormFloat64() * noise
		tr.Records = append(tr.Records, gps.Record{Pt: proj.ToPoint(x, y), Time: at})
	}

	t := m.Depart
	next := m.Depart
	for i, eid := range m.Path {
		e := gen.g.Edge(eid)
		a := gen.g.Vertex(e.From).Pt
		b := gen.g.Vertex(e.To).Pt
		ax, ay := proj.ToXY(a)
		bx, by := proj.ToXY(b)
		dur := m.EdgeCosts[i]
		for next < t+dur {
			frac := (next - t) / dur
			pt := proj.ToPoint(ax+(bx-ax)*frac, ay+(by-ay)*frac)
			emit(pt, next)
			next += interval
		}
		t += dur
	}
	// Always include the final arrival fix.
	last := gen.g.Vertex(gen.g.Edge(m.Path[len(m.Path)-1]).To).Pt
	emit(last, t)
	return tr
}
