package gps

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/graph"
)

// lineGraph builds a simple chain v0 -> v1 -> ... -> vn with one edge
// between consecutive vertices plus a branch at v1.
func lineGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	var vs []graph.VertexID
	for i := 0; i <= n; i++ {
		vs = append(vs, b.AddVertex(geo.Point{Lat: 57 + float64(i)*0.001, Lon: 9.9}))
	}
	for i := 0; i < n; i++ {
		b.AddEdge(vs[i], vs[i+1], 200, 50, graph.ClassSecondary)
	}
	// Branch edge from v1 to a side vertex.
	side := b.AddVertex(geo.Point{Lat: 57.0005, Lon: 9.92})
	b.AddEdge(vs[1], side, 200, 50, graph.ClassResidential)
	return b.Freeze()
}

func TestSecondsOfDay(t *testing.T) {
	if SecondsOfDay(0) != 0 {
		t.Fatal("zero")
	}
	if got := SecondsOfDay(86400 + 3600); got != 3600 {
		t.Fatalf("day wrap: %v", got)
	}
	if got := SecondsOfDay(-3600); got != 86400-3600 {
		t.Fatalf("negative wrap: %v", got)
	}
}

func TestTrajectoryValidate(t *testing.T) {
	tr := &Trajectory{ID: 1, Records: []Record{
		{Time: 10}, {Time: 20}, {Time: 30},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Duration(); got != 20 {
		t.Fatalf("duration = %v", got)
	}
	bad := &Trajectory{ID: 2, Records: []Record{{Time: 10}, {Time: 10}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-increasing times should fail")
	}
	short := &Trajectory{ID: 3, Records: []Record{{Time: 1}}}
	if err := short.Validate(); err == nil {
		t.Fatal("single record should fail")
	}
	if (&Trajectory{}).Duration() != 0 {
		t.Fatal("empty duration")
	}
}

func TestMatchedValidate(t *testing.T) {
	g := lineGraph(t, 4)
	ok := &Matched{ID: 1, Path: graph.Path{0, 1, 2}, Depart: 100, EdgeCosts: []float64{10, 20, 30}}
	if err := ok.Validate(g); err != nil {
		t.Fatal(err)
	}
	cases := []*Matched{
		{ID: 2, Path: graph.Path{0, 2}, EdgeCosts: []float64{1, 2}},                          // invalid path
		{ID: 3, Path: graph.Path{0, 1}, EdgeCosts: []float64{1}},                             // cost count
		{ID: 4, Path: graph.Path{0, 1}, EdgeCosts: []float64{1, -2}},                         // negative cost
		{ID: 5, Path: graph.Path{0, 1}, EdgeCosts: []float64{1, math.NaN()}},                 // NaN
		{ID: 6, Path: graph.Path{0, 1}, EdgeCosts: []float64{1, 2}, Emissions: []float64{1}}, // emissions count
	}
	for _, m := range cases {
		if err := m.Validate(g); err == nil {
			t.Errorf("trajectory %d should fail validation", m.ID)
		}
	}
}

func TestMatchedTimes(t *testing.T) {
	m := &Matched{Path: graph.Path{0, 1, 2}, Depart: 1000, EdgeCosts: []float64{10, 20, 30}}
	if got := m.TotalCost(); got != 60 {
		t.Fatalf("TotalCost = %v", got)
	}
	if got := m.ArrivalAt(0); got != 1000 {
		t.Fatalf("ArrivalAt(0) = %v", got)
	}
	if got := m.ArrivalAt(2); got != 1030 {
		t.Fatalf("ArrivalAt(2) = %v", got)
	}
	if got := m.CostOfSubPath(1, 2); got != 50 {
		t.Fatalf("CostOfSubPath = %v", got)
	}
}

func collectionFixture(t testing.TB) (*graph.Graph, *Collection) {
	t.Helper()
	g := lineGraph(t, 4)
	trajs := []*Matched{
		{ID: 0, Path: graph.Path{0, 1, 2, 3}, Depart: 100, EdgeCosts: []float64{10, 10, 10, 10}},
		{ID: 1, Path: graph.Path{0, 1, 2}, Depart: 200, EdgeCosts: []float64{12, 11, 10}},
		{ID: 2, Path: graph.Path{1, 2, 3}, Depart: 300, EdgeCosts: []float64{9, 8, 7}},
		{ID: 3, Path: graph.Path{2, 3}, Depart: 400, EdgeCosts: []float64{5, 5}},
	}
	for _, m := range trajs {
		if err := m.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
	return g, NewCollection(trajs, 1234)
}

func TestCollectionIndexing(t *testing.T) {
	_, c := collectionFixture(t)
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Records() != 1234 {
		t.Fatalf("records = %d", c.Records())
	}
	// Edge 2 appears in all four trajectories.
	if got := len(c.EdgeOccurrences(2)); got != 4 {
		t.Fatalf("occurrences of e2 = %d, want 4", got)
	}
	if got := len(c.EdgeOccurrences(99)); got != 0 {
		t.Fatalf("occurrences of absent edge = %d", got)
	}
	covered := c.CoveredEdges()
	if len(covered) != 4 {
		t.Fatalf("covered edges = %d, want 4 (0..3)", len(covered))
	}
}

func TestOccurrencesOfPath(t *testing.T) {
	_, c := collectionFixture(t)
	occ := c.OccurrencesOfPath(graph.Path{1, 2})
	// T0 at pos 1, T1 at pos 1, T2 at pos 0.
	if len(occ) != 3 {
		t.Fatalf("occurrences of <e1,e2> = %d, want 3", len(occ))
	}
	occ = c.OccurrencesOfPath(graph.Path{0, 1, 2, 3})
	if len(occ) != 1 || occ[0].Traj != 0 {
		t.Fatalf("occurrences of full path = %v", occ)
	}
	if got := c.OccurrencesOfPath(nil); got != nil {
		t.Fatal("empty path should have no occurrences")
	}
	if got := c.OccurrencesOfPath(graph.Path{3, 0}); got != nil {
		t.Fatal("non-occurring sequence")
	}
}

func TestExtendOccurrences(t *testing.T) {
	_, c := collectionFixture(t)
	base := c.OccurrencesOfPath(graph.Path{1})
	ext := c.ExtendOccurrences(base, 1, 2)
	if len(ext) != 3 {
		t.Fatalf("extensions = %d, want 3", len(ext))
	}
	ext2 := c.ExtendOccurrences(ext, 2, 3)
	if len(ext2) != 2 { // T0 and T2 continue with e3
		t.Fatalf("extensions = %d, want 2", len(ext2))
	}
	// Extending with a non-following edge yields nothing.
	if got := c.ExtendOccurrences(base, 1, 0); len(got) != 0 {
		t.Fatalf("bogus extension = %v", got)
	}
}

func TestSubsetAndFilter(t *testing.T) {
	_, c := collectionFixture(t)
	s := c.Subset(2)
	if s.Len() != 2 {
		t.Fatalf("subset len = %d", s.Len())
	}
	if s.Records() != 1234/2 {
		t.Fatalf("subset records = %d", s.Records())
	}
	if got := c.Subset(100); got != c {
		t.Fatal("oversized subset should return the original")
	}
	f := c.Filter(func(m *Matched) bool { return m.ID%2 == 0 })
	if f.Len() != 2 {
		t.Fatalf("filtered len = %d", f.Len())
	}
	for i := 0; i < f.Len(); i++ {
		if f.Traj(i).ID%2 != 0 {
			t.Fatal("filter kept wrong trajectory")
		}
	}
}

func TestCollectionSerializationRoundTrip(t *testing.T) {
	g, c := collectionFixture(t)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadCollection(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() || c2.Records() != c.Records() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", c2.Len(), c2.Records(), c.Len(), c.Records())
	}
	for i := 0; i < c.Len(); i++ {
		a, b := c.Traj(i), c2.Traj(i)
		if a.ID != b.ID || !a.Path.Equal(b.Path) {
			t.Fatalf("trajectory %d differs", i)
		}
		if math.Abs(a.Depart-b.Depart) > 0.002 {
			t.Fatalf("trajectory %d departure drifted", i)
		}
		for j := range a.EdgeCosts {
			if math.Abs(a.EdgeCosts[j]-b.EdgeCosts[j]) > 0.002 {
				t.Fatalf("trajectory %d cost %d drifted", i, j)
			}
		}
	}
}

func TestCollectionSerializationWithEmissions(t *testing.T) {
	g := lineGraph(t, 3)
	c := NewCollection([]*Matched{{
		ID: 7, Path: graph.Path{0, 1}, Depart: 100,
		EdgeCosts: []float64{10, 20}, Emissions: []float64{55.5, 66.25},
	}}, 42)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadCollection(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	m := c2.Traj(0)
	if m.Emissions == nil || math.Abs(m.Emissions[1]-66.25) > 0.002 {
		t.Fatalf("emissions lost: %v", m.Emissions)
	}
}

func TestReadCollectionErrors(t *testing.T) {
	g := lineGraph(t, 3)
	cases := []string{
		"",
		"bogus\n",
		"trajectories x y\n",
		"trajectories 1 0\nX 1 2\n",
		"trajectories 1 0\nT a 0 0:1\n",
		"trajectories 1 0\nT 1 0 zz\n",
		"trajectories 1 0\nT 1 0 0:bad\n",
		"trajectories 2 0\nT 1 0 0:10 1:10\n",   // count mismatch
		"trajectories 1 0\nT 1 0 0:10 2:10\n",   // invalid path
		"trajectories 1 0\nT 1 0 0:10:5 1:10\n", // inconsistent emissions
	}
	for i, c := range cases {
		if _, err := ReadCollection(strings.NewReader(c), g); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}
