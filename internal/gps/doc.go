// Package gps holds the trajectory data model: raw GPS records as
// produced by vehicles (Section 2.1), and map-matched trajectories —
// the (path, departure time, per-edge costs) observations that all
// cost-estimation machinery consumes.
//
// Times are absolute seconds since the start of the data collection
// period; SecondsOfDay projects them onto the paper's time-of-day
// domain T.
package gps
