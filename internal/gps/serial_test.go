package gps

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestRawRoundTrip(t *testing.T) {
	in := []*Trajectory{
		{ID: 1, Records: []Record{
			{Pt: pt(57.01, 9.92), Time: 100},
			{Pt: pt(57.0112345, 9.9254321), Time: 103.5},
			{Pt: pt(57.012, 9.93), Time: 109},
		}},
		{ID: 42, Records: []Record{
			{Pt: pt(57.05, 9.95), Time: 8 * 3600},
			{Pt: pt(57.051, 9.951), Time: 8*3600 + 3},
		}},
	}
	var buf bytes.Buffer
	if err := WriteRaw(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRaw(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d traces, want %d", len(out), len(in))
	}
	for i, tr := range in {
		got := out[i]
		if got.ID != tr.ID || len(got.Records) != len(tr.Records) {
			t.Fatalf("trace %d: %+v vs %+v", i, got, tr)
		}
		for j, rec := range tr.Records {
			g := got.Records[j]
			if abs(g.Pt.Lat-rec.Pt.Lat) > 1e-7 || abs(g.Pt.Lon-rec.Pt.Lon) > 1e-7 ||
				abs(g.Time-rec.Time) > 1e-3 {
				t.Fatalf("trace %d fix %d: %+v vs %+v", i, j, g, rec)
			}
		}
	}
}

func TestReadRawRejectsBrokenInput(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "trajectories 1 2\n",
		"bad count":      "rawgps two\n",
		"short trace":    "rawgps 1\nR 1 57.0:9.9:0\n",
		"bad fix":        "rawgps 1\nR 1 57.0:9.9:0 57.0:zzz:3\n",
		"time disorder":  "rawgps 1\nR 1 57.0:9.9:5 57.1:9.9:3\n",
		"count mismatch": "rawgps 2\nR 1 57.0:9.9:0 57.1:9.9:3\n",
	}
	for name, text := range cases {
		if _, err := ReadRaw(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func pt(lat, lon float64) geo.Point {
	return geo.Point{Lat: lat, Lon: lon}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
