package gps

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteCollection serializes matched trajectories as line-oriented
// text: one "T id depart edge:cost[:emission] ..." line per
// trajectory. The format round-trips exactly enough for training
// (costs keep three decimals ≈ millisecond precision).
func WriteCollection(w io.Writer, c *Collection) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trajectories %d %d\n", c.Len(), c.Records())
	for i := 0; i < c.Len(); i++ {
		m := c.Traj(i)
		fmt.Fprintf(bw, "T %d %.3f", m.ID, m.Depart)
		for j, e := range m.Path {
			if m.Emissions != nil {
				fmt.Fprintf(bw, " %d:%.3f:%.3f", e, m.EdgeCosts[j], m.Emissions[j])
			} else {
				fmt.Fprintf(bw, " %d:%.3f", e, m.EdgeCosts[j])
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteRaw serializes raw (unmatched) GPS traces as line-oriented
// text: one "R id lat:lon:time ..." line per trace. Latitude and
// longitude keep seven decimals (≈ centimeter precision), timestamps
// three (millisecond precision) — enough for map matching to
// round-trip.
func WriteRaw(w io.Writer, raw []*Trajectory) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "rawgps %d\n", len(raw))
	for _, tr := range raw {
		fmt.Fprintf(bw, "R %d", tr.ID)
		for _, rec := range tr.Records {
			fmt.Fprintf(bw, " %.7f:%.7f:%.3f", rec.Pt.Lat, rec.Pt.Lon, rec.Time)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadRaw parses the format written by WriteRaw. Traces are validated
// structurally (≥ 2 records, strictly increasing time); road-network
// consistency is the map matcher's job.
func ReadRaw(r io.Reader) ([]*Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("gps: empty raw-trace file")
	}
	header := strings.Fields(strings.TrimSpace(sc.Text()))
	if len(header) != 2 || header[0] != "rawgps" {
		return nil, fmt.Errorf("gps: bad raw-trace header %q", sc.Text())
	}
	count, err := strconv.Atoi(header[1])
	if err != nil || count < 0 {
		return nil, fmt.Errorf("gps: bad raw-trace header %q", sc.Text())
	}
	// Preallocation is capped so a corrupt header cannot demand
	// terabytes; the slice grows normally past the cap.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	raw := make([]*Trajectory, 0, prealloc)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] != "R" || len(fields) < 4 {
			return nil, fmt.Errorf("gps: line %d: bad raw-trace record", line)
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gps: line %d: bad trace id", line)
		}
		tr := &Trajectory{ID: id, Records: make([]Record, 0, len(fields)-2)}
		for _, f := range fields[2:] {
			parts := strings.Split(f, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("gps: line %d: bad fix %q", line, f)
			}
			lat, err1 := strconv.ParseFloat(parts[0], 64)
			lon, err2 := strconv.ParseFloat(parts[1], 64)
			t, err3 := strconv.ParseFloat(parts[2], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("gps: line %d: bad fix %q", line, f)
			}
			rec := Record{Time: t}
			rec.Pt.Lat, rec.Pt.Lon = lat, lon
			tr.Records = append(tr.Records, rec)
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("gps: line %d: %w", line, err)
		}
		raw = append(raw, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(raw) != count {
		return nil, fmt.Errorf("gps: header says %d traces, found %d", count, len(raw))
	}
	return raw, nil
}

// ReadCollection parses the format written by WriteCollection and
// validates every trajectory against the graph.
func ReadCollection(r io.Reader, g *graph.Graph) (*Collection, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("gps: empty collection file")
	}
	header := strings.Fields(strings.TrimSpace(sc.Text()))
	if len(header) != 3 || header[0] != "trajectories" {
		return nil, fmt.Errorf("gps: bad collection header %q", sc.Text())
	}
	count, err1 := strconv.Atoi(header[1])
	records, err2 := strconv.ParseInt(header[2], 10, 64)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("gps: bad collection header %q", sc.Text())
	}
	trajs := make([]*Matched, 0, count)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] != "T" || len(fields) < 4 {
			return nil, fmt.Errorf("gps: line %d: bad trajectory record", line)
		}
		id, err1 := strconv.ParseInt(fields[1], 10, 64)
		depart, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("gps: line %d: bad id or departure", line)
		}
		m := &Matched{ID: id, Depart: depart}
		withEmissions := strings.Count(fields[3], ":") == 2
		if withEmissions {
			m.Emissions = make([]float64, 0, len(fields)-3)
		}
		for _, f := range fields[3:] {
			parts := strings.Split(f, ":")
			if len(parts) < 2 || len(parts) > 3 {
				return nil, fmt.Errorf("gps: line %d: bad edge record %q", line, f)
			}
			e, err1 := strconv.Atoi(parts[0])
			cost, err2 := strconv.ParseFloat(parts[1], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("gps: line %d: bad edge record %q", line, f)
			}
			m.Path = append(m.Path, graph.EdgeID(e))
			m.EdgeCosts = append(m.EdgeCosts, cost)
			if withEmissions {
				if len(parts) != 3 {
					return nil, fmt.Errorf("gps: line %d: missing emission in %q", line, f)
				}
				g, err := strconv.ParseFloat(parts[2], 64)
				if err != nil {
					return nil, fmt.Errorf("gps: line %d: bad emission in %q", line, f)
				}
				m.Emissions = append(m.Emissions, g)
			}
		}
		if err := m.Validate(g); err != nil {
			return nil, fmt.Errorf("gps: line %d: %w", line, err)
		}
		trajs = append(trajs, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(trajs) != count {
		return nil, fmt.Errorf("gps: header says %d trajectories, found %d", count, len(trajs))
	}
	return NewCollection(trajs, records), nil
}
