package gps

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteCollection serializes matched trajectories as line-oriented
// text: one "T id depart edge:cost[:emission] ..." line per
// trajectory. The format round-trips exactly enough for training
// (costs keep three decimals ≈ millisecond precision).
func WriteCollection(w io.Writer, c *Collection) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trajectories %d %d\n", c.Len(), c.Records())
	for i := 0; i < c.Len(); i++ {
		m := c.Traj(i)
		fmt.Fprintf(bw, "T %d %.3f", m.ID, m.Depart)
		for j, e := range m.Path {
			if m.Emissions != nil {
				fmt.Fprintf(bw, " %d:%.3f:%.3f", e, m.EdgeCosts[j], m.Emissions[j])
			} else {
				fmt.Fprintf(bw, " %d:%.3f", e, m.EdgeCosts[j])
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadCollection parses the format written by WriteCollection and
// validates every trajectory against the graph.
func ReadCollection(r io.Reader, g *graph.Graph) (*Collection, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("gps: empty collection file")
	}
	header := strings.Fields(strings.TrimSpace(sc.Text()))
	if len(header) != 3 || header[0] != "trajectories" {
		return nil, fmt.Errorf("gps: bad collection header %q", sc.Text())
	}
	count, err1 := strconv.Atoi(header[1])
	records, err2 := strconv.ParseInt(header[2], 10, 64)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("gps: bad collection header %q", sc.Text())
	}
	trajs := make([]*Matched, 0, count)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] != "T" || len(fields) < 4 {
			return nil, fmt.Errorf("gps: line %d: bad trajectory record", line)
		}
		id, err1 := strconv.ParseInt(fields[1], 10, 64)
		depart, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("gps: line %d: bad id or departure", line)
		}
		m := &Matched{ID: id, Depart: depart}
		withEmissions := strings.Count(fields[3], ":") == 2
		if withEmissions {
			m.Emissions = make([]float64, 0, len(fields)-3)
		}
		for _, f := range fields[3:] {
			parts := strings.Split(f, ":")
			if len(parts) < 2 || len(parts) > 3 {
				return nil, fmt.Errorf("gps: line %d: bad edge record %q", line, f)
			}
			e, err1 := strconv.Atoi(parts[0])
			cost, err2 := strconv.ParseFloat(parts[1], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("gps: line %d: bad edge record %q", line, f)
			}
			m.Path = append(m.Path, graph.EdgeID(e))
			m.EdgeCosts = append(m.EdgeCosts, cost)
			if withEmissions {
				if len(parts) != 3 {
					return nil, fmt.Errorf("gps: line %d: missing emission in %q", line, f)
				}
				g, err := strconv.ParseFloat(parts[2], 64)
				if err != nil {
					return nil, fmt.Errorf("gps: line %d: bad emission in %q", line, f)
				}
				m.Emissions = append(m.Emissions, g)
			}
		}
		if err := m.Validate(g); err != nil {
			return nil, fmt.Errorf("gps: line %d: %w", line, err)
		}
		trajs = append(trajs, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(trajs) != count {
		return nil, fmt.Errorf("gps: header says %d trajectories, found %d", count, len(trajs))
	}
	return NewCollection(trajs, records), nil
}
