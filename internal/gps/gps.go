package gps

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/graph"
)

// SecondsPerDay is the length of the time-of-day domain T.
const SecondsPerDay = 86400.0

// SecondsOfDay maps an absolute timestamp to time-of-day seconds in
// [0, SecondsPerDay).
func SecondsOfDay(t float64) float64 {
	s := math.Mod(t, SecondsPerDay)
	if s < 0 {
		s += SecondsPerDay
	}
	return s
}

// Record is one GPS fix: a (location, time) pair.
type Record struct {
	Pt   geo.Point
	Time float64 // absolute seconds
}

// Trajectory is a time-ordered sequence of GPS records for one trip.
type Trajectory struct {
	ID      int64
	Records []Record
}

// Validate checks that the trajectory has at least two records in
// strictly increasing time order.
func (tr *Trajectory) Validate() error {
	if len(tr.Records) < 2 {
		return fmt.Errorf("gps: trajectory %d has %d records, need ≥ 2", tr.ID, len(tr.Records))
	}
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Time <= tr.Records[i-1].Time {
			return fmt.Errorf("gps: trajectory %d not strictly time-ordered at record %d", tr.ID, i)
		}
	}
	return nil
}

// Duration returns the elapsed time between first and last record.
func (tr *Trajectory) Duration() float64 {
	if len(tr.Records) == 0 {
		return 0
	}
	return tr.Records[len(tr.Records)-1].Time - tr.Records[0].Time
}

// Matched is a map-matched trajectory: the path of the trajectory
// (Section 2.1's P_T), the absolute departure time on the path's
// first edge, and the travel cost of each edge in the path.
//
// EdgeCosts[i] is the travel time in seconds spent on Path[i];
// Emissions[i], when present, is the GHG cost of Path[i] in grams.
type Matched struct {
	ID        int64
	Path      graph.Path
	Depart    float64
	EdgeCosts []float64
	Emissions []float64 // optional; nil when the cost domain is time only
}

// Validate checks structural consistency of the matched trajectory.
func (m *Matched) Validate(g *graph.Graph) error {
	if !g.ValidPath(m.Path) {
		return fmt.Errorf("gps: matched trajectory %d has invalid path %v", m.ID, m.Path)
	}
	if len(m.EdgeCosts) != len(m.Path) {
		return fmt.Errorf("gps: matched trajectory %d has %d costs for %d edges",
			m.ID, len(m.EdgeCosts), len(m.Path))
	}
	for i, c := range m.EdgeCosts {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("gps: matched trajectory %d has invalid cost %v at edge %d", m.ID, c, i)
		}
	}
	if m.Emissions != nil && len(m.Emissions) != len(m.Path) {
		return fmt.Errorf("gps: matched trajectory %d has %d emissions for %d edges",
			m.ID, len(m.Emissions), len(m.Path))
	}
	return nil
}

// TotalCost returns the total travel time over the whole path.
func (m *Matched) TotalCost() float64 {
	var s float64
	for _, c := range m.EdgeCosts {
		s += c
	}
	return s
}

// ArrivalAt returns the absolute time at which the vehicle arrives at
// the start of edge index i in the path (ArrivalAt(0) == Depart).
func (m *Matched) ArrivalAt(i int) float64 {
	t := m.Depart
	for j := 0; j < i; j++ {
		t += m.EdgeCosts[j]
	}
	return t
}

// CostOfSubPath returns the summed cost of edges [from, from+n).
func (m *Matched) CostOfSubPath(from, n int) float64 {
	var s float64
	for j := from; j < from+n; j++ {
		s += m.EdgeCosts[j]
	}
	return s
}

// Occurrence locates a sub-path occurrence within a matched
// trajectory: trajectory index (into a Collection) and the position of
// the sub-path's first edge within the trajectory's path.
type Occurrence struct {
	Traj int
	Pos  int
}

// Collection is an immutable-after-Build set of matched trajectories
// with an inverted index from edge ID to its occurrences, supporting
// the "trajectories that occurred on path P" lookups that drive
// weight instantiation (Section 3) and the accuracy-optimal baseline
// (Section 2.2).
type Collection struct {
	trajs   []*Matched
	byEdge  map[graph.EdgeID][]Occurrence
	records int64 // total GPS-record count estimate carried from generation
}

// NewCollection indexes the given matched trajectories. The records
// argument carries the raw GPS record count for reporting; pass 0 when
// unknown.
func NewCollection(trajs []*Matched, records int64) *Collection {
	c := &Collection{
		trajs:   trajs,
		byEdge:  make(map[graph.EdgeID][]Occurrence),
		records: records,
	}
	for ti, m := range trajs {
		for pos, e := range m.Path {
			c.byEdge[e] = append(c.byEdge[e], Occurrence{Traj: ti, Pos: pos})
		}
	}
	return c
}

// Len returns the number of matched trajectories.
func (c *Collection) Len() int { return len(c.trajs) }

// Records returns the raw GPS record count carried from generation.
func (c *Collection) Records() int64 { return c.records }

// Traj returns the i-th matched trajectory.
func (c *Collection) Traj(i int) *Matched { return c.trajs[i] }

// EdgeOccurrences returns all occurrences of edge e; do not modify.
func (c *Collection) EdgeOccurrences(e graph.EdgeID) []Occurrence { return c.byEdge[e] }

// CoveredEdges returns the set of edges with at least one occurrence
// (the paper's E″ when every GPS record is map-matched).
func (c *Collection) CoveredEdges() map[graph.EdgeID]struct{} {
	out := make(map[graph.EdgeID]struct{}, len(c.byEdge))
	for e := range c.byEdge {
		out[e] = struct{}{}
	}
	return out
}

// OccurrencesOfPath returns the occurrences of path p: positions where
// p is a contiguous sub-path of a trajectory's path. It extends the
// occurrences of p's first edge, which the index provides directly.
func (c *Collection) OccurrencesOfPath(p graph.Path) []Occurrence {
	if len(p) == 0 {
		return nil
	}
	first := c.byEdge[p[0]]
	var out []Occurrence
	for _, oc := range first {
		tp := c.trajs[oc.Traj].Path
		if oc.Pos+len(p) > len(tp) {
			continue
		}
		match := true
		for j := 1; j < len(p); j++ {
			if tp[oc.Pos+j] != p[j] {
				match = false
				break
			}
		}
		if match {
			out = append(out, oc)
		}
	}
	return out
}

// ExtendOccurrences narrows occurrences of a path of length n to those
// that continue with edge e, yielding the occurrences of the length
// n+1 extension. This is the incremental step used by bottom-up weight
// instantiation (Section 3.2).
func (c *Collection) ExtendOccurrences(occs []Occurrence, n int, e graph.EdgeID) []Occurrence {
	var out []Occurrence
	for _, oc := range occs {
		tp := c.trajs[oc.Traj].Path
		if oc.Pos+n < len(tp) && tp[oc.Pos+n] == e {
			out = append(out, oc)
		}
	}
	return out
}

// NumEdgesWithData returns the number of edges traversed by at least
// one trajectory (|E′| in the paper's coverage statistics).
func (c *Collection) NumEdgesWithData() int { return len(c.byEdge) }

// Extend returns a new collection over the receiver's trajectories
// plus the given batch, appended in order, with moreRecords added to
// the record count. The receiver is unchanged and remains fully
// usable: the trajectory slice is copied and occurrence lists for
// edges the batch touches are cloned before appending, so the two
// collections never share a mutable backing array (an old epoch can
// keep reading while the new one is built).
//
// The occurrence index of the result is identical to what
// NewCollection would build over the concatenated trajectories: new
// occurrences land strictly after old ones in each per-edge list,
// preserving the order-determinism the trainer relies on.
func (c *Collection) Extend(batch []*Matched, moreRecords int64) *Collection {
	trajs := make([]*Matched, 0, len(c.trajs)+len(batch))
	trajs = append(trajs, c.trajs...)
	trajs = append(trajs, batch...)
	out := &Collection{
		trajs:   trajs,
		byEdge:  make(map[graph.EdgeID][]Occurrence, len(c.byEdge)),
		records: c.records + moreRecords,
	}
	for e, occs := range c.byEdge {
		out.byEdge[e] = occs
	}
	cloned := make(map[graph.EdgeID]bool)
	for bi, m := range batch {
		ti := len(c.trajs) + bi
		for pos, e := range m.Path {
			if !cloned[e] {
				old := out.byEdge[e]
				fresh := make([]Occurrence, len(old), len(old)+4)
				copy(fresh, old)
				out.byEdge[e] = fresh
				cloned[e] = true
			}
			out.byEdge[e] = append(out.byEdge[e], Occurrence{Traj: ti, Pos: pos})
		}
	}
	return out
}

// Subset returns a new collection over the first n trajectories (used
// by the dataset-size sweeps of Figures 10, 12 and 17). Record counts
// are scaled proportionally.
func (c *Collection) Subset(n int) *Collection {
	if n >= len(c.trajs) {
		return c
	}
	var recs int64
	if len(c.trajs) > 0 {
		recs = c.records * int64(n) / int64(len(c.trajs))
	}
	return NewCollection(c.trajs[:n], recs)
}

// Filter returns a new collection containing only trajectories for
// which keep returns true; used to hold out ground-truth trajectories
// in the Figure 13/14 accuracy experiments.
func (c *Collection) Filter(keep func(*Matched) bool) *Collection {
	var out []*Matched
	for _, m := range c.trajs {
		if keep(m) {
			out = append(out, m)
		}
	}
	var recs int64
	if len(c.trajs) > 0 {
		recs = c.records * int64(len(out)) / int64(len(c.trajs))
	}
	return NewCollection(out, recs)
}
