package shard

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	pathcost "repro"
)

// partitionVersion tags the partition file format. The file crosses
// deployments (the trainer writes it, every shard and the coordinator
// read it), so it fails loudly on mismatch.
const partitionVersion = "partition-v1"

// Partition assigns every vertex of a road network to one of K
// regions. An edge belongs to the region of its source vertex, so a
// path changes region exactly where consecutive edges disagree — the
// cut points the coordinator decomposes queries at.
//
// The partition also carries the model's training parameters: the
// coordinator never loads a model, yet must agree with the shards on
// the α-interval grid and result resolution to compose their states.
type Partition struct {
	// K is the number of regions.
	K int
	// Vertex maps each vertex ID to its region in [0, K).
	Vertex []int
	// Params are the training parameters of the model this partition
	// serves, copied verbatim into the partition file.
	Params pathcost.Params
}

// NewPartition builds a deterministic K-way region partition of g by
// round-robin multi-source BFS: K seed vertices spread uniformly over
// the ID space grow their regions one frontier vertex per round, so
// regions come out contiguous (where the graph is) and balanced to
// within a frontier. Vertices unreachable from every seed fall back
// to an ID-range assignment. The construction reads nothing but the
// graph topology, so every process that runs it gets the same answer.
func NewPartition(g *pathcost.Graph, k int, params pathcost.Params) (*Partition, error) {
	n := g.NumVertices()
	if k < 1 {
		return nil, fmt.Errorf("shard: partition needs k ≥ 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("shard: cannot cut %d vertices into %d regions", n, k)
	}
	region := make([]int, n)
	for i := range region {
		region[i] = -1
	}
	queues := make([][]pathcost.VertexID, k)
	for r := 0; r < k; r++ {
		seed := pathcost.VertexID(r * n / k)
		for region[seed] >= 0 { // collision on tiny graphs: take the next free ID
			seed = (seed + 1) % pathcost.VertexID(n)
		}
		region[seed] = r
		queues[r] = append(queues[r], seed)
	}
	for remaining := true; remaining; {
		remaining = false
		for r := 0; r < k; r++ {
			if len(queues[r]) == 0 {
				continue
			}
			v := queues[r][0]
			queues[r] = queues[r][1:]
			if len(queues[r]) > 0 {
				remaining = true
			}
			// Expand along both edge directions: regions should follow
			// road connectivity, not just one-way reachability.
			for _, e := range g.Out(v) {
				if w := g.Edge(e).To; region[w] < 0 {
					region[w] = r
					queues[r] = append(queues[r], w)
					remaining = true
				}
			}
			for _, e := range g.In(v) {
				if w := g.Edge(e).From; region[w] < 0 {
					region[w] = r
					queues[r] = append(queues[r], w)
					remaining = true
				}
			}
		}
	}
	for v := range region {
		if region[v] < 0 {
			region[v] = v * k / n
		}
	}
	return &Partition{K: k, Vertex: region, Params: params}, nil
}

// EdgeRegion returns the region owning edge e (its source vertex's).
func (p *Partition) EdgeRegion(g *pathcost.Graph, e pathcost.EdgeID) int {
	return p.Vertex[g.Edge(e).From]
}

// PathInRegion reports whether every edge of path lies in one region,
// and which. The model splitter keeps a variable on a shard exactly
// when its path passes this test.
func (p *Partition) PathInRegion(g *pathcost.Graph, path pathcost.Path) (int, bool) {
	if len(path) == 0 {
		return 0, false
	}
	r := p.EdgeRegion(g, path[0])
	for _, e := range path[1:] {
		if p.EdgeRegion(g, e) != r {
			return 0, false
		}
	}
	return r, true
}

// Segment is one maximal same-region run of a query path.
type Segment struct {
	Region int
	Path   pathcost.Path
}

// SegmentPath cuts path into maximal same-region runs, in order. The
// concatenation of the segments is the original path.
func (p *Partition) SegmentPath(g *pathcost.Graph, path pathcost.Path) []Segment {
	var segs []Segment
	start := 0
	for i := 1; i <= len(path); i++ {
		if i == len(path) || p.EdgeRegion(g, path[i]) != p.EdgeRegion(g, path[start]) {
			segs = append(segs, Segment{
				Region: p.EdgeRegion(g, path[start]),
				Path:   path[start:i:i],
			})
			start = i
		}
	}
	return segs
}

// Write serializes the partition. The format follows the model file's
// conventions: a version line, the identical 10-field params line, the
// vertex regions in fixed-width chunks, and an end marker so
// truncation is detectable.
func (p *Partition) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d %d\n", partitionVersion, p.K, len(p.Vertex))
	pr := p.Params
	fmt.Fprintf(bw, "params %d %d %d %g %d %d %d %d %d %g\n",
		pr.AlphaMinutes, pr.Beta, pr.MaxRank, pr.Resolution, int(pr.Domain),
		pr.MaxAccBuckets, pr.MaxResultBuckets, pr.StaticBuckets, pr.Auto.Folds, pr.GTThresholdS)
	for i := 0; i < len(p.Vertex); i += 32 {
		end := i + 32
		if end > len(p.Vertex) {
			end = len(p.Vertex)
		}
		fmt.Fprint(bw, "region")
		for _, r := range p.Vertex[i:end] {
			fmt.Fprintf(bw, " %d", r)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "end-partition")
	return bw.Flush()
}

// ReadPartition parses a partition file and validates it against the
// road network it will serve. The input may come from operators'
// hands, so every count and region index is checked.
func ReadPartition(r io.Reader, g *pathcost.Graph) (*Partition, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() (string, bool) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				return line, true
			}
		}
		return "", false
	}
	line, ok := next()
	if !ok {
		return nil, fmt.Errorf("shard: empty partition file")
	}
	var k, nv int
	if _, err := fmt.Sscanf(line, partitionVersion+" %d %d", &k, &nv); err != nil {
		return nil, fmt.Errorf("shard: bad partition header %q: %w", line, err)
	}
	if k < 1 || nv != g.NumVertices() {
		return nil, fmt.Errorf("shard: partition is for %d vertices in %d regions; the network has %d vertices",
			nv, k, g.NumVertices())
	}
	line, ok = next()
	if !ok {
		return nil, fmt.Errorf("shard: partition file ends before params")
	}
	var pr pathcost.Params
	var domain int
	if _, err := fmt.Sscanf(line, "params %d %d %d %g %d %d %d %d %d %g",
		&pr.AlphaMinutes, &pr.Beta, &pr.MaxRank, &pr.Resolution, &domain,
		&pr.MaxAccBuckets, &pr.MaxResultBuckets, &pr.StaticBuckets, &pr.Auto.Folds, &pr.GTThresholdS); err != nil {
		return nil, fmt.Errorf("shard: bad params line %q: %w", line, err)
	}
	pr.Domain = pathcost.CostDomain(domain)
	out := &Partition{K: k, Vertex: make([]int, 0, nv), Params: pr}
	for {
		line, ok = next()
		if !ok {
			return nil, fmt.Errorf("shard: partition file truncated after %d of %d vertices", len(out.Vertex), nv)
		}
		if line == "end-partition" {
			break
		}
		fields := strings.Fields(line)
		if fields[0] != "region" {
			return nil, fmt.Errorf("shard: unexpected line %q in partition file", line)
		}
		for _, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 || v >= k {
				return nil, fmt.Errorf("shard: region %q out of range [0, %d)", f, k)
			}
			out.Vertex = append(out.Vertex, v)
		}
	}
	if len(out.Vertex) != nv {
		return nil, fmt.Errorf("shard: partition lists %d vertices, header promised %d", len(out.Vertex), nv)
	}
	return out, nil
}
