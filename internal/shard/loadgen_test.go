package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// TestLoadgenNominal is the load smoke the bench harness records: a
// sharded fleet under its target QPS must shed nothing, error nothing,
// and keep p99 within a generous bound.
func TestLoadgenNominal(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short")
	}
	sys := testSystem(t)
	f := startFleet(t, 3, func(cfg *Config) { cfg.MaxQueue = 64 })

	// Mixed workload: single- and cross-region paths, round-robin.
	var bodies [][]byte
	for _, p := range queryPaths(t, sys, 16, 41) {
		b, err := json.Marshal(api.DistributionRequest{Path: edgeIDs(p), Depart: 8 * 3600})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	var next atomic.Int64
	cfg := LoadConfig{
		QPS:      80,
		Duration: 2 * time.Second,
		Workers:  16,
		NewRequest: func() (*http.Request, error) {
			b := bodies[int(next.Add(1))%len(bodies)]
			req, err := http.NewRequest(http.MethodPost, f.coordTS.URL+"/v1/distribution", bytes.NewReader(b))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		},
	}
	res, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Sent == 0 || res.OK == 0 {
		t.Fatalf("no load delivered: %+v", res)
	}
	if res.Shed != 0 {
		t.Errorf("shed %d requests under nominal load, want 0", res.Shed)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors under nominal load, want 0", res.Errors)
	}
	// Generous: CI machines vary, but a healthy in-process fleet
	// answers cached/synopsis-backed queries in single-digit ms.
	if res.P99MS > 1000 {
		t.Errorf("p99 = %.1fms, want < 1000ms", res.P99MS)
	}
	if res.AchievedQPS < cfg.QPS/2 {
		t.Errorf("achieved %.1f qps against a %.0f qps target", res.AchievedQPS, cfg.QPS)
	}
}

func TestLoadgenConfigValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Error("nil request builder accepted")
	}
	nr := func() (*http.Request, error) { return http.NewRequest(http.MethodGet, "http://127.0.0.1:0/", nil) }
	if _, err := RunLoad(context.Background(), LoadConfig{NewRequest: nr}); err == nil {
		t.Error("zero qps accepted")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{NewRequest: nr, QPS: 10}); err == nil {
		t.Error("zero duration accepted")
	}
}

// TestLoadgenCountsShed points the generator at a server that sheds
// everything and checks 429s land in Shed, not Errors.
func TestLoadgenCountsShed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	ts := srv.URL
	res, err := RunLoad(context.Background(), LoadConfig{
		QPS: 200, Duration: 300 * time.Millisecond, Workers: 4,
		NewRequest: func() (*http.Request, error) {
			return http.NewRequest(http.MethodPost, ts, bytes.NewReader([]byte("{}")))
		},
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Shed == 0 || res.Errors != 0 || res.OK != 0 {
		t.Fatalf("shed accounting wrong: %+v", res)
	}
}
