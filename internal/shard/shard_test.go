package shard

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	pathcost "repro"
	"repro/internal/server"
)

var (
	sysOnce sync.Once
	sysInst *pathcost.System
	sysErr  error
)

// testSystem trains one shared small system for the shard tests — the
// same shape the server tests use.
func testSystem(t testing.TB) *pathcost.System {
	t.Helper()
	sysOnce.Do(func() {
		params := pathcost.DefaultParams()
		params.Beta = 20
		params.MaxRank = 4
		sysInst, sysErr = pathcost.Synthesize(pathcost.SynthesizeConfig{
			Preset: "test", Trips: 3000, Seed: 11, Params: params,
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

// fleet is one sharded deployment under test: K shard servers, the
// union reference server, and a coordinator over the shards.
type fleet struct {
	part    *Partition
	split   *SplitResult
	coord   *Coordinator
	coordTS *httptest.Server
	unionTS *httptest.Server
	shardTS []*httptest.Server
}

// startFleet splits the test model k ways and boots the whole
// deployment on httptest servers. Extra mutates the coordinator config
// before it is built (nil for defaults).
func startFleet(t testing.TB, k int, extra func(*Config)) *fleet {
	t.Helper()
	sys := testSystem(t)
	part, err := NewPartition(sys.Graph, k, sys.Params)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	split, err := SplitModel(sys, part)
	if err != nil {
		t.Fatalf("SplitModel: %v", err)
	}
	f := &fleet{part: part, split: split}
	cfg := Config{ProbeInterval: -1} // handler-only tests: no probe loops
	for r, ss := range split.Shards {
		ts := httptest.NewServer(server.New(ss, server.Config{MaxInFlight: 4}).Handler())
		f.shardTS = append(f.shardTS, ts)
		cfg.Shards = append(cfg.Shards, ts.URL)
		_ = r
	}
	f.unionTS = httptest.NewServer(server.New(split.Union, server.Config{MaxInFlight: 4}).Handler())
	if extra != nil {
		extra(&cfg)
	}
	f.coord, err = New(sys.Graph, part, cfg)
	if err != nil {
		t.Fatalf("New coordinator: %v", err)
	}
	f.coordTS = httptest.NewServer(f.coord.Handler())
	t.Cleanup(func() {
		f.coordTS.Close()
		f.unionTS.Close()
		for _, ts := range f.shardTS {
			ts.Close()
		}
	})
	return f
}

// postRaw POSTs body and returns (status, response bytes).
func postRaw(t testing.TB, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, data
}

// queryPaths samples deterministic random query paths of mixed length.
func queryPaths(t testing.TB, sys *pathcost.System, n int, seed int64) []pathcost.Path {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	var out []pathcost.Path
	for len(out) < n {
		p, err := sys.RandomQueryPath(2+rnd.Intn(8), rnd.Intn)
		if err != nil {
			t.Fatalf("RandomQueryPath: %v", err)
		}
		out = append(out, p)
	}
	return out
}

// crossRegionPath finds a sampled path spanning at least two regions;
// inRegionPath finds one that does not.
func crossRegionPath(t testing.TB, f *fleet, sys *pathcost.System) pathcost.Path {
	t.Helper()
	for _, p := range queryPaths(t, sys, 200, 7) {
		if len(f.part.SegmentPath(sys.Graph, p)) > 1 {
			return p
		}
	}
	t.Fatal("no cross-region path in 200 samples")
	return nil
}

func inRegionPath(t testing.TB, f *fleet, sys *pathcost.System) pathcost.Path {
	t.Helper()
	for _, p := range queryPaths(t, sys, 200, 8) {
		if len(f.part.SegmentPath(sys.Graph, p)) == 1 {
			return p
		}
	}
	t.Fatal("no single-region path in 200 samples")
	return nil
}

func edgeIDs(p pathcost.Path) []int64 {
	out := make([]int64, len(p))
	for i, e := range p {
		out[i] = int64(e)
	}
	return out
}
