// Package shard implements the sharded serving tier: a deterministic
// region partitioner that splits a trained model by graph partition,
// a model splitter that derives per-region model slices (plus the
// union reference model a single process would serve), and a
// coordinator daemon that decomposes each query path at region
// boundaries, fans per-shard sub-paths out over the ordinary
// /v1/batch machinery, and convolves the returned partial states into
// the final distribution.
//
// The composition is exact, not approximate: in a region-partitioned
// model no variable spans a region cut, so the Eq. 2 evaluation chain
// folds to an accumulator-only state at precisely each boundary, and
// relaying that state (serialized with the same lossless %g encoding
// the synopsis store uses) reproduces single-process evaluation float
// for float. Sharded answers are therefore byte-identical to a single
// process serving the union model — a property the differential test
// harness in this package checks literally, across partitions,
// methods and cache temperatures.
package shard
