package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// budgetRecorder is a RoundTripper that records the api.BudgetHeader
// value of every shard leg before delegating to the default transport.
type budgetRecorder struct {
	mu      sync.Mutex
	budgets []string
}

func (b *budgetRecorder) RoundTrip(req *http.Request) (*http.Response, error) {
	b.mu.Lock()
	b.budgets = append(b.budgets, req.Header.Get(api.BudgetHeader))
	b.mu.Unlock()
	return http.DefaultTransport.RoundTrip(req)
}

// TestCoordinatorDefaultTimeoutAnswers504 pins the coordinator's
// deadline contract: a composition deadline that expires before the
// work can start answers 504 on the single-query endpoints and on the
// batch envelope — never a 503, which would misblame healthy shards —
// and a deadline dying mid-composition settles every unfinished entry
// with its own 504. Expiry is made deterministic by holding the only
// admission slot: requests park in the gate until the deadline fires.
func TestCoordinatorDefaultTimeoutAnswers504(t *testing.T) {
	f := startFleet(t, 2, func(cfg *Config) {
		cfg.MaxInFlight = 1
		cfg.DefaultTimeout = 40 * time.Millisecond
	})
	sys := testSystem(t)
	p := crossRegionPath(t, f, sys)
	depart := 8 * 3600.0

	f.coord.sem <- struct{}{} // saturate admission: requests below park
	status, body := postRaw(t, f.coordTS.URL+"/v1/distribution", map[string]any{
		"path": edgeIDs(p), "depart": depart,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("distribution: status %d (%s), want 504", status, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("504 body %q does not mention the deadline", body)
	}

	// With the deadline expiring at admission, the whole batch is a
	// definitive 504 envelope — the composition never started.
	status, body = postRaw(t, f.coordTS.URL+"/v1/batch", map[string]any{
		"queries": []map[string]any{
			{"kind": "distribution", "path": edgeIDs(p), "depart": depart},
		},
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("batch: status %d (%s), want 504", status, body)
	}
	<-f.coord.sem

	// A deadline expiring mid-composition (after admission) settles
	// every unfinished entry with its own 504 instead of leaving a
	// zero-status result behind.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	results := f.coord.process(ctx, []api.BatchQuery{
		{Kind: "distribution", Path: edgeIDs(p), Depart: depart},
		{Kind: "distribution", Path: edgeIDs(p), Depart: depart},
	})
	for i, res := range results {
		if res.Status != http.StatusGatewayTimeout {
			t.Errorf("process entry %d: status %d (%s), want 504", i, res.Status, res.Error)
		}
	}
}

// TestCoordinatorForwardsBudgetToShards pins budget propagation: every
// shard leg carries an api.BudgetHeader with the leg's remaining
// budget — positive, and never more than the leg timeout, which
// already folds in the caller's end-to-end deadline.
func TestCoordinatorForwardsBudgetToShards(t *testing.T) {
	rec := &budgetRecorder{}
	legTimeout := 2 * time.Second
	f := startFleet(t, 2, func(cfg *Config) {
		cfg.Transport = rec
		cfg.Timeout = legTimeout
		cfg.DefaultTimeout = 5 * time.Second
	})
	sys := testSystem(t)
	p := crossRegionPath(t, f, sys)
	depart := 8 * 3600.0

	status, body := postRaw(t, f.coordTS.URL+"/v1/distribution", map[string]any{
		"path": edgeIDs(p), "depart": depart,
	})
	if status != http.StatusOK {
		t.Fatalf("distribution: status %d (%s)", status, body)
	}

	rec.mu.Lock()
	budgets := append([]string(nil), rec.budgets...)
	rec.mu.Unlock()
	if len(budgets) == 0 {
		t.Fatal("no shard legs recorded")
	}
	for i, b := range budgets {
		ms, err := strconv.ParseInt(b, 10, 64)
		if err != nil || ms <= 0 {
			t.Fatalf("leg %d: budget header %q is not a positive integer", i, b)
		}
		if ms > legTimeout.Milliseconds() {
			t.Fatalf("leg %d: budget %dms exceeds the %v leg timeout", i, ms, legTimeout)
		}
	}
}

// TestCoordinatorBudgetHeaderTightens pins the client-facing side: an
// X-Budget-Ms header on the coordinator bounds the whole composition
// even with no -default-timeout configured, and garbage is a 400.
func TestCoordinatorBudgetHeaderTightens(t *testing.T) {
	f := startFleet(t, 2, nil)
	sys := testSystem(t)
	p := crossRegionPath(t, f, sys)
	depart := 8 * 3600.0

	body, err := json.Marshal(map[string]any{"path": edgeIDs(p), "depart": depart})
	if err != nil {
		t.Fatal(err)
	}
	post := func(budget string) int {
		req, err := http.NewRequest(http.MethodPost, f.coordTS.URL+"/v1/distribution", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(api.BudgetHeader, budget)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := post("garbage"); status != http.StatusBadRequest {
		t.Fatalf("garbage budget: status %d, want 400", status)
	}
	if status := post("30000"); status != http.StatusOK {
		t.Fatalf("generous budget: status %d, want 200", status)
	}
}
