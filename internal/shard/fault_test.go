package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// faultTransport injects failures per shard host: "kill" refuses the
// connection, "hang" blocks until the request context dies, "garbage"
// answers 200 with an undecodable body. "hang-once"/"kill-once" fault
// only the first call to the host, so the hedged second leg succeeds.
type faultTransport struct {
	mu    sync.Mutex
	modes map[string]string // host -> mode
	hits  map[string]int
}

func newFaultTransport() *faultTransport {
	return &faultTransport{modes: map[string]string{}, hits: map[string]int{}}
}

func (ft *faultTransport) set(u, mode string) {
	pu, err := url.Parse(u)
	if err != nil {
		panic(err)
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if mode == "" {
		delete(ft.modes, pu.Host)
		delete(ft.hits, pu.Host)
		return
	}
	ft.modes[pu.Host] = mode
	ft.hits[pu.Host] = 0
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	mode := ft.modes[req.URL.Host]
	ft.hits[req.URL.Host]++
	first := ft.hits[req.URL.Host] == 1
	ft.mu.Unlock()
	switch {
	case mode == "kill" || (mode == "kill-once" && first):
		return nil, fmt.Errorf("dial tcp %s: connection refused (injected)", req.URL.Host)
	case mode == "hang" || (mode == "hang-once" && first):
		<-req.Context().Done()
		return nil, req.Context().Err()
	case mode == "garbage":
		return &http.Response{
			Status:     "200 OK",
			StatusCode: http.StatusOK,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/html"}},
			Body:    io.NopCloser(strings.NewReader("<html>not json</html>")),
			Request: req,
		}, nil
	}
	return http.DefaultTransport.RoundTrip(req)
}

// faultFleet boots a 3-way fleet with an injectable transport and fast
// hedge/timeout settings.
func faultFleet(t *testing.T) (*fleet, *faultTransport) {
	t.Helper()
	ft := newFaultTransport()
	f := startFleet(t, 3, func(cfg *Config) {
		cfg.Transport = ft
		cfg.HedgeAfter = 25 * time.Millisecond
		cfg.Timeout = 2 * time.Second
	})
	return f, ft
}

// regionQueries builds one single-region distribution query per region
// that has a usable path, returning the batch and each entry's region.
func regionQueries(t *testing.T, f *fleet) ([]api.BatchQuery, []int) {
	t.Helper()
	sys := testSystem(t)
	byRegion := map[int][]int64{}
	for _, p := range queryPaths(t, sys, 300, 31) {
		segs := f.part.SegmentPath(sys.Graph, p)
		if len(segs) == 1 {
			if _, ok := byRegion[segs[0].Region]; !ok {
				byRegion[segs[0].Region] = edgeIDs(p)
			}
		}
	}
	if len(byRegion) < 2 {
		t.Fatalf("only %d regions have single-region paths", len(byRegion))
	}
	var queries []api.BatchQuery
	var regions []int
	for r := 0; r < f.part.K; r++ {
		path, ok := byRegion[r]
		if !ok {
			continue
		}
		queries = append(queries, api.BatchQuery{Kind: "distribution", Path: path, Depart: 8 * 3600})
		regions = append(regions, r)
	}
	return queries, regions
}

func postBatch(t *testing.T, url string, queries []api.BatchQuery) []api.BatchResult {
	t.Helper()
	code, body := postRaw(t, url+"/v1/batch", api.BatchRequest{Queries: queries})
	if code != http.StatusOK {
		t.Fatalf("batch = %d: %s", code, body)
	}
	var resp api.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding batch: %v", err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(resp.Results), len(queries))
	}
	return resp.Results
}

// TestFaultIsolationAndRecovery kills, hangs, and garbles one shard
// mid-batch: its entries must fail 503 without poisoning siblings, and
// clearing the fault must restore full service with no unfencing step.
func TestFaultIsolationAndRecovery(t *testing.T) {
	f, ft := faultFleet(t)
	queries, regions := regionQueries(t, f)
	victim := regions[len(regions)-1]

	for _, mode := range []string{"kill", "garbage", "hang"} {
		t.Run(mode, func(t *testing.T) {
			ft.set(f.shardTS[victim].URL, mode)
			defer ft.set(f.shardTS[victim].URL, "")
			// The hang case takes ~Timeout (2s): both legs must sit out
			// their whole per-leg deadline before the entry can fail.
			results := postBatch(t, f.coordTS.URL, queries)
			for i, res := range results {
				if regions[i] == victim {
					if res.Status != http.StatusServiceUnavailable {
						t.Errorf("victim entry %d = %d (%s), want 503", i, res.Status, res.Error)
					}
					if !strings.Contains(res.Error, fmt.Sprintf("shard %d unavailable", victim)) {
						t.Errorf("victim entry error %q does not name the shard", res.Error)
					}
				} else if res.Status != http.StatusOK {
					t.Errorf("sibling entry %d (region %d) poisoned: %d (%s)",
						i, regions[i], res.Status, res.Error)
				}
			}
			if f.coord.shards[victim].healthy() {
				t.Error("victim still marked healthy after failed calls")
			}

			// Recovery: the fault is cleared and the very next call serves.
			// A single-replica group never starves itself: when every
			// breaker in a group is open the candidate set fails open, so
			// the sole replica is always tried and its first success
			// closes the breaker — no unfencing step.
			ft.set(f.shardTS[victim].URL, "")
			for i, res := range postBatch(t, f.coordTS.URL, queries) {
				if res.Status != http.StatusOK {
					t.Errorf("post-recovery entry %d = %d (%s)", i, res.Status, res.Error)
				}
				_ = i
			}
			if !f.coord.shards[victim].healthy() {
				t.Error("victim not marked healthy again after a served call")
			}
		})
	}
}

// TestHedgeRescuesSlowShard: only the first call to the shard hangs;
// the hedged second leg must answer within the same request.
func TestHedgeRescuesSlowShard(t *testing.T) {
	f, ft := faultFleet(t)
	queries, regions := regionQueries(t, f)
	victim := regions[0]
	before := f.coord.hedges.Load()

	ft.set(f.shardTS[victim].URL, "hang-once")
	defer ft.set(f.shardTS[victim].URL, "")
	start := time.Now()
	results := postBatch(t, f.coordTS.URL, queries[:1])
	if results[0].Status != http.StatusOK {
		t.Fatalf("hedged query = %d (%s), want 200", results[0].Status, results[0].Error)
	}
	if elapsed := time.Since(start); elapsed >= 2*time.Second {
		t.Fatalf("hedge did not race the hung leg: took %v", elapsed)
	}
	if f.coord.hedges.Load() == before {
		t.Fatal("hedge counter did not move")
	}
}

// TestHedgeRetriesFailedLegImmediately: a dead-socket first leg must
// trigger the retry at once, not after HedgeAfter.
func TestHedgeRetriesFailedLegImmediately(t *testing.T) {
	f, ft := faultFleet(t)
	queries, regions := regionQueries(t, f)
	victim := regions[0]

	ft.set(f.shardTS[victim].URL, "kill-once")
	defer ft.set(f.shardTS[victim].URL, "")
	results := postBatch(t, f.coordTS.URL, queries[:1])
	if results[0].Status != http.StatusOK {
		t.Fatalf("retried query = %d (%s), want 200", results[0].Status, results[0].Error)
	}
}

// TestCrossRegionQueryFailsCleanlyWhenRelayShardDies: a relayed
// distribution whose later segment lives on a dead shard must come
// back 503 — never a partial or wrong distribution.
func TestCrossRegionQueryFailsCleanlyWhenRelayShardDies(t *testing.T) {
	sys := testSystem(t)
	f, ft := faultFleet(t)
	p := crossRegionPath(t, f, sys)
	segs := f.part.SegmentPath(sys.Graph, p)
	victim := segs[len(segs)-1].Region

	ft.set(f.shardTS[victim].URL, "kill")
	defer ft.set(f.shardTS[victim].URL, "")
	code, body := postRaw(t, f.coordTS.URL+"/v1/distribution",
		api.DistributionRequest{Path: edgeIDs(p), Depart: 8 * 3600})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("relay with dead shard = %d (%s), want 503", code, body)
	}

	ft.set(f.shardTS[victim].URL, "")
	code, _ = postRaw(t, f.coordTS.URL+"/v1/distribution",
		api.DistributionRequest{Path: edgeIDs(p), Depart: 8 * 3600})
	if code != http.StatusOK {
		t.Fatalf("relay after recovery = %d, want 200", code)
	}
}
