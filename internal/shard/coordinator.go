package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	pathcost "repro"
	"repro/internal/api"
	"repro/internal/server"
)

// Config tunes a Coordinator.
type Config struct {
	// Shards lists the shard base URLs, indexed by region: Shards[r]
	// serves region r of the partition. Length must equal Partition.K.
	// Each element may name a replica group — several URLs separated by
	// "|" ("http://a:8080|http://b:8080") all serving the same region's
	// model. Calls round-robin across a group's breaker-admitted
	// replicas, and retry/hedge legs prefer a sibling replica, so one
	// replica dying degrades nothing.
	Shards []string
	// MaxInFlight caps concurrently composed client requests (0 =
	// server.DefaultMaxInFlight). One slot covers a request's whole
	// composition, however many shard calls it fans out to — the
	// coordinator's own work is I/O, not evaluation.
	MaxInFlight int
	// MaxQueue, when > 0, sheds: a request arriving with MaxQueue
	// waiters already queued is answered 429 + Retry-After.
	MaxQueue int
	// MaxPathEdges caps distribution path cardinality (0 = 256).
	MaxPathEdges int
	// MaxBatch caps /v1/batch entries (0 = 64).
	MaxBatch int
	// Timeout bounds each shard call leg (0 = 10s).
	Timeout time.Duration
	// HedgeAfter starts a second, racing leg against a shard that has
	// not answered yet (0 = 150ms). A leg that fails outright — dead
	// socket, garbage response — triggers the retry immediately,
	// without waiting for the timer.
	HedgeAfter time.Duration
	// ProbeInterval spaces /healthz probes per replica (0 = 2s,
	// negative disables probing). Probes feed /v1/stats and /metrics,
	// and a successful probe closes a replica's circuit breaker early —
	// recovery never waits longer than one probe interval.
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive leg-failure count that opens
	// a replica's circuit breaker (0 = 3, negative disables breaking).
	// An open breaker routes new calls to sibling replicas for
	// BreakerCooldown, then admits one half-open trial leg; a success
	// closes it, a failure re-opens it for another cooldown.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker deflects a replica's
	// traffic before the half-open trial (0 = 1s).
	BreakerCooldown time.Duration
	// DefaultTimeout, when > 0, bounds every client request with an
	// end-to-end deadline: the composition context expires after this
	// long and the request answers 504. The remaining budget is
	// forwarded to every shard leg as the api.BudgetHeader header, so
	// shards never burn evaluation time an expired caller cannot use.
	// Clients tighten (never widen) the bound per request with the
	// same header. 0 leaves requests unbounded.
	DefaultTimeout time.Duration
	// Transport overrides the HTTP transport (tests inject failures
	// here). nil means http.DefaultTransport.
	Transport http.RoundTripper
}

// replicaState is one replica's connection bookkeeping plus its
// circuit breaker: consecFails counts leg failures since the last
// success, openUntil (unix nanos) fences the replica out while > now.
type replicaState struct {
	base          string
	healthy       atomic.Bool
	probes        atomic.Uint64
	probeFailures atomic.Uint64
	calls         atomic.Uint64
	callFailures  atomic.Uint64
	consecFails   atomic.Uint32
	openUntil     atomic.Int64
	breakerTrips  atomic.Uint64
}

// admitted reports whether the breaker lets a leg through at t. Once
// the cooldown elapses the breaker is half-open: legs flow again, and
// the first one decides whether it closes (noteSuccess) or re-opens
// (noteFailure — consecFails is still past threshold).
func (rs *replicaState) admitted(t time.Time) bool {
	open := rs.openUntil.Load()
	return open == 0 || t.UnixNano() >= open
}

func (rs *replicaState) noteSuccess() {
	rs.consecFails.Store(0)
	rs.openUntil.Store(0)
	rs.healthy.Store(true)
}

func (rs *replicaState) noteFailure(cfg *Config, t time.Time) {
	rs.callFailures.Add(1)
	rs.healthy.Store(false)
	if cfg.BreakerThreshold < 0 {
		return
	}
	if n := rs.consecFails.Add(1); int(n) >= cfg.BreakerThreshold {
		rs.breakerTrips.Add(1)
		rs.openUntil.Store(t.Add(cfg.BreakerCooldown).UnixNano())
	}
}

// shardState is one region's replica group.
type shardState struct {
	region   int
	replicas []*replicaState
	rr       atomic.Uint64
}

// healthy reports whether any replica in the group is believed up.
func (ss *shardState) healthy() bool {
	for _, rs := range ss.replicas {
		if rs.healthy.Load() {
			return true
		}
	}
	return false
}

// candidates returns the breaker-admitted replicas rotated by the
// round-robin cursor. When every breaker is open the group fails open
// — all replicas are candidates — because refusing to try at all
// would turn a transient outage into a permanent one.
func (ss *shardState) candidates(t time.Time) []*replicaState {
	admitted := make([]*replicaState, 0, len(ss.replicas))
	for _, rs := range ss.replicas {
		if rs.admitted(t) {
			admitted = append(admitted, rs)
		}
	}
	if len(admitted) == 0 {
		admitted = append(admitted, ss.replicas...)
	}
	if len(admitted) > 1 {
		off := int(ss.rr.Add(1)) % len(admitted)
		admitted = append(admitted[off:len(admitted):len(admitted)], admitted[:off]...)
	}
	return admitted
}

// Coordinator serves the single-process HTTP API over a fleet of
// shards. Distribution queries whose path crosses region cuts are
// decomposed into per-region segments, evaluated shard by shard
// through the partial-state protocol (batch entries of kind "state"),
// and composed into the final distribution coordinator-side; every
// other query is proxied whole to the shard owning it. Create with
// New, mount via Handler.
type Coordinator struct {
	cfg    Config
	g      *pathcost.Graph
	part   *Partition
	mux    *http.ServeMux
	client *http.Client
	shards []*shardState
	sem    chan struct{}
	start  time.Time

	served    atomic.Uint64
	rejected  atomic.Uint64
	abandoned atomic.Uint64
	shed      atomic.Uint64
	hedges    atomic.Uint64
	queued    atomic.Int64
}

// New builds a Coordinator over g's partition.
func New(g *pathcost.Graph, part *Partition, cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) != part.K {
		return nil, fmt.Errorf("shard: partition has %d regions but %d shard addresses were given",
			part.K, len(cfg.Shards))
	}
	if len(part.Vertex) != g.NumVertices() {
		return nil, fmt.Errorf("shard: partition is for %d vertices, network has %d",
			len(part.Vertex), g.NumVertices())
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = server.DefaultMaxInFlight
	}
	if cfg.MaxPathEdges <= 0 {
		cfg.MaxPathEdges = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = 150 * time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	c := &Coordinator{
		cfg:    cfg,
		g:      g,
		part:   part,
		mux:    http.NewServeMux(),
		client: &http.Client{Transport: cfg.Transport},
		sem:    make(chan struct{}, cfg.MaxInFlight),
		start:  time.Now(),
	}
	for r, group := range cfg.Shards {
		ss := &shardState{region: r}
		for _, base := range strings.Split(group, "|") {
			base = strings.TrimSpace(base)
			if base == "" {
				return nil, fmt.Errorf("shard: region %d has an empty replica URL in %q", r, group)
			}
			rs := &replicaState{base: strings.TrimRight(base, "/")}
			rs.healthy.Store(true) // assume up until a probe or call says otherwise
			ss.replicas = append(ss.replicas, rs)
		}
		c.shards = append(c.shards, ss)
	}
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	c.mux.HandleFunc("/v1/distribution", c.handleDistribution)
	c.mux.HandleFunc("/v1/route", c.handleRoute)
	c.mux.HandleFunc("/v1/topk", c.handleTopK)
	c.mux.HandleFunc("/v1/batch", c.handleBatch)
	c.mux.HandleFunc("/v1/stats", c.handleStats)
	return c, nil
}

// Handler returns the HTTP handler tree (also usable with httptest).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Run serves on addr until ctx is cancelled, with the same drain
// contract as the single-process server.
func (c *Coordinator) Run(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.RunListener(ctx, ln, drain)
}

// RunListener is Run over an already-bound listener; it also starts
// the per-shard health probers, which live exactly as long as serving
// does.
func (c *Coordinator) RunListener(ctx context.Context, ln net.Listener, drain time.Duration) error {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if c.cfg.ProbeInterval > 0 {
		for _, ss := range c.shards {
			for _, rs := range ss.replicas {
				go c.probeLoop(pctx, rs)
			}
		}
	}
	return server.ServeListener(ctx, c.mux, ln, drain)
}

// probeLoop polls one replica's /healthz. A failed probe marks the
// replica unhealthy (visibility only — it does not trip the breaker);
// a successful probe closes its breaker, so a recovered replica
// rejoins the rotation within one probe interval even if no query has
// tried it since the cooldown.
func (c *Coordinator) probeLoop(ctx context.Context, rs *replicaState) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		c.probeOnce(ctx, rs)
	}
}

func (c *Coordinator) probeOnce(ctx context.Context, rs *replicaState) {
	rs.probes.Add(1)
	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, rs.base+"/healthz", nil)
	if err == nil {
		var resp *http.Response
		resp, err = c.client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("healthz answered %d", resp.StatusCode)
			}
		}
	}
	cancel()
	if err != nil {
		rs.probeFailures.Add(1)
		rs.healthy.Store(false)
		return
	}
	rs.noteSuccess()
}

// --- admission ---------------------------------------------------------

func (c *Coordinator) acquire(ctx context.Context) bool {
	if ctx.Err() != nil {
		c.abandoned.Add(1)
		return false
	}
	select {
	case c.sem <- struct{}{}:
		return true
	default:
	}
	c.queued.Add(1)
	defer c.queued.Add(-1)
	select {
	case c.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		c.abandoned.Add(1)
		return false
	}
}

func (c *Coordinator) release() { <-c.sem }

func (c *Coordinator) shedIfOverloaded(w http.ResponseWriter) bool {
	if c.cfg.MaxQueue <= 0 || c.queued.Load() < int64(c.cfg.MaxQueue) {
		return false
	}
	c.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	c.writeError(w, http.StatusTooManyRequests, "coordinator overloaded, retry later")
	return true
}

// --- query composition -------------------------------------------------

// pendingQuery tracks one batch entry through the wave engine.
type pendingQuery struct {
	q    api.BatchQuery
	kind string
	// segs is the region decomposition (state-relay entries only).
	segs   []Segment
	method pathcost.Method
	// relay progress
	seg     int
	state   string
	uiLo    float64
	uiHi    float64
	factors int
	maxRank int
	// outcome
	done bool
	res  api.BatchResult
}

func (p *pendingQuery) fail(status int, msg string) {
	p.done = true
	p.res = api.BatchResult{Kind: p.kind, Status: status, Error: msg}
}

// process runs a set of batch entries to completion: proxy entries go
// to their owning shard in the first wave; cross-region distribution
// entries relay partial states across as many waves as they have
// segments. Within a wave, all of a shard's sub-queries travel in ONE
// /v1/batch call, and distinct shards are called concurrently — the
// wall-clock cost of a wave is the slowest shard, not the sum.
func (c *Coordinator) process(ctx context.Context, queries []api.BatchQuery) []api.BatchResult {
	pend := make([]*pendingQuery, len(queries))
	for i := range queries {
		pend[i] = c.classify(&queries[i])
	}
	firstWave := true
	for {
		// Gather this wave's shard calls.
		perShard := map[int][]*pendingQuery{}
		for _, p := range pend {
			if p.done {
				continue
			}
			var region int
			switch p.kind {
			case "route", "topk", "distribution":
				if !firstWave {
					continue // proxied in wave 0; result already applied
				}
				if len(p.segs) > 0 { // single-segment distribution proxy
					region = p.segs[0].Region
				} else {
					region = c.part.Vertex[p.q.Source]
				}
			case "state":
				region = p.segs[p.seg].Region
			}
			perShard[region] = append(perShard[region], p)
		}
		if len(perShard) == 0 {
			break
		}
		var wg sync.WaitGroup
		for region, ps := range perShard {
			wg.Add(1)
			go func(region int, ps []*pendingQuery) {
				defer wg.Done()
				c.runWave(ctx, region, ps)
			}(region, ps)
		}
		wg.Wait()
		firstWave = false
		if ctx.Err() != nil {
			break
		}
	}
	out := make([]api.BatchResult, len(pend))
	for i, p := range pend {
		if !p.done {
			// The context died between waves, before this entry's next
			// runWave could settle it. A deadline is a definitive 504;
			// a cancellation's result is never written anyway.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				p.fail(http.StatusGatewayTimeout, "deadline exceeded")
			} else {
				p.fail(http.StatusServiceUnavailable, "composition abandoned")
			}
		}
		out[i] = p.res
	}
	return out
}

// classify validates one entry and decides how it travels.
func (c *Coordinator) classify(q *api.BatchQuery) *pendingQuery {
	kind := strings.ToLower(strings.TrimSpace(q.Kind))
	if kind == "" {
		kind = "distribution"
	}
	p := &pendingQuery{q: *q, kind: kind}
	switch kind {
	case "route", "topk":
		if _, err := api.CheckRoute(c.g, &api.RouteRequest{
			Source: q.Source, Dest: q.Dest, Depart: q.Depart, Budget: q.Budget, Method: q.Method,
		}); err != nil {
			p.fail(http.StatusBadRequest, err.Error())
		}
	case "distribution":
		m, err := api.ParseMethod(q.Method)
		if err == nil {
			err = api.CheckDepart(q.Depart)
		}
		if err == nil && q.Budget < 0 {
			err = fmt.Errorf("budget %v must be ≥ 0 seconds (0 or omitted skips prob_within)", q.Budget)
		}
		var path pathcost.Path
		if err == nil {
			path, err = api.ParsePath(c.g, q.Path, c.cfg.MaxPathEdges)
		}
		if err != nil {
			p.fail(http.StatusBadRequest, err.Error())
			return p
		}
		p.method = m
		p.segs = c.part.SegmentPath(c.g, path)
		if len(p.segs) > 1 {
			if m == pathcost.RD {
				p.fail(http.StatusUnprocessableEntity,
					"method RD draws one random decomposition over the whole query; it cannot be composed across shards")
				return p
			}
			p.kind = "state"
			p.uiLo, p.uiHi = q.Depart, q.Depart
		}
	case "state":
		// The partial-state protocol is shard-internal; accepting it
		// here would let clients smuggle states past the composition
		// invariants.
		p.fail(http.StatusBadRequest, `kind "state" is internal to the sharded tier (want distribution, route or topk)`)
	default:
		p.fail(http.StatusBadRequest,
			fmt.Sprintf("unknown kind %q (want distribution, route or topk)", q.Kind))
	}
	return p
}

// runWave sends one shard its share of a wave and applies the results.
func (c *Coordinator) runWave(ctx context.Context, region int, ps []*pendingQuery) {
	breq := &api.BatchRequest{Queries: make([]api.BatchQuery, len(ps))}
	for i, p := range ps {
		if p.kind == "state" {
			seg := p.segs[p.seg]
			breq.Queries[i] = api.BatchQuery{
				Kind:   "state",
				Path:   api.EdgeIDs(seg.Path),
				Depart: p.q.Depart,
				Method: string(p.method),
				UILo:   p.uiLo,
				UIHi:   p.uiHi,
				State:  p.state,
			}
		} else {
			breq.Queries[i] = p.q
		}
	}
	bresp, err := c.shardBatch(ctx, c.shards[region], breq)
	if err != nil {
		// The composition's own deadline expiring is the caller's 504,
		// not a shard fault — the replicas may be perfectly healthy.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			for _, p := range ps {
				p.fail(http.StatusGatewayTimeout, "deadline exceeded")
			}
			return
		}
		// This shard is down for this wave; its entries fail 503, and
		// nothing else does — sibling shards' waves proceed untouched.
		for _, p := range ps {
			p.fail(http.StatusServiceUnavailable,
				fmt.Sprintf("shard %d unavailable: %v", region, err))
		}
		return
	}
	for i, p := range ps {
		c.applyResult(p, &bresp.Results[i], region)
	}
}

// applyResult folds one shard answer into its pending entry.
func (c *Coordinator) applyResult(p *pendingQuery, res *api.BatchResult, region int) {
	if p.kind != "state" {
		p.done = true
		p.res = *res
		return
	}
	if res.Status != http.StatusOK {
		p.done = true
		p.res = api.BatchResult{Kind: "distribution", Status: res.Status, Error: res.Error}
		return
	}
	if res.State == nil {
		p.fail(http.StatusBadGateway, fmt.Sprintf("shard %d answered a state entry without a state", region))
		return
	}
	p.state = res.State.State
	p.uiLo, p.uiHi = res.State.UILo, res.State.UIHi
	p.factors += res.State.Factors
	if res.State.MaxRank > p.maxRank {
		p.maxRank = res.State.MaxRank
	}
	p.seg++
	if p.seg < len(p.segs) {
		return
	}
	// Last segment answered: compose the final distribution exactly as
	// Evaluate's tail does — flatten the accumulator-only state to
	// MaxResultBuckets — and shape it through the same payload builder
	// the single-process server uses.
	cs, err := pathcost.DecodeChainState([]byte(p.state), len(p.segs[len(p.segs)-1].Path))
	if err == nil && !cs.AccOnly() {
		err = errors.New("state has open dimensions")
	}
	var dist *pathcost.Histogram
	if err == nil {
		dist, err = cs.Finalize(c.part.Params.MaxResultBuckets)
	}
	if err != nil {
		p.fail(http.StatusBadGateway, fmt.Sprintf("shard %d returned an invalid final state: %v", region, err))
		return
	}
	p.done = true
	p.res = api.BatchResult{
		Kind:   "distribution",
		Status: http.StatusOK,
		Distribution: api.DistributionPayload(string(p.method),
			c.part.Params.IntervalOf(p.q.Depart), dist, p.q.Budget,
			p.factors, p.maxRank, 0),
	}
}

// shardBatch posts one batch to one replica of ss's group with hedged
// retry: legs race whole-call attempts — connect, send, read, decode —
// so a replica that answers garbage counts as failed just like one
// that answers nothing. The first leg goes to the round-robin pick
// among breaker-admitted replicas; a leg that fails outright launches
// the next leg immediately against the NEXT replica in rotation, and a
// leg that is merely slow (HedgeAfter) gets raced the same way. With
// replicas configured the call may try every sibling before giving up,
// so a single replica's death costs one leg's latency, never a 503.
func (c *Coordinator) shardBatch(ctx context.Context, ss *shardState, breq *api.BatchRequest) (*api.BatchResponse, error) {
	body, err := json.Marshal(breq)
	if err != nil {
		return nil, err
	}
	type legResult struct {
		rs   *replicaState
		resp *api.BatchResponse
		err  error
	}
	leg := func(rs *replicaState) legResult {
		lctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(lctx, http.MethodPost, rs.base+"/v1/batch", bytes.NewReader(body))
		if err != nil {
			return legResult{rs: rs, err: err}
		}
		req.Header.Set("Content-Type", "application/json")
		// Forward the leg's remaining budget so the shard stops
		// evaluating the moment this leg's clock (which already folds
		// in the caller's end-to-end deadline) runs out.
		if dl, ok := lctx.Deadline(); ok {
			req.Header.Set(api.BudgetHeader, api.FormatBudget(time.Until(dl)))
		}
		hresp, err := c.client.Do(req)
		if err != nil {
			return legResult{rs: rs, err: err}
		}
		defer hresp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
		if err != nil {
			return legResult{rs: rs, err: err}
		}
		if hresp.StatusCode != http.StatusOK {
			return legResult{rs: rs, err: fmt.Errorf("shard answered %d: %s", hresp.StatusCode, firstLine(raw))}
		}
		var bresp api.BatchResponse
		if err := json.Unmarshal(raw, &bresp); err != nil {
			return legResult{rs: rs, err: fmt.Errorf("undecodable shard response: %v", err)}
		}
		if len(bresp.Results) != len(breq.Queries) {
			return legResult{rs: rs, err: fmt.Errorf("shard answered %d results for %d queries", len(bresp.Results), len(breq.Queries))}
		}
		return legResult{rs: rs, resp: &bresp}
	}
	cands := ss.candidates(time.Now())
	// At least two legs even with one replica (the classic same-target
	// hedge); with more replicas, enough legs to try each sibling once.
	maxLegs := max(2, len(cands))
	ch := make(chan legResult, maxLegs)
	launched := 0
	launch := func() {
		rs := cands[launched%len(cands)]
		launched++
		rs.calls.Add(1)
		go func() { ch <- leg(rs) }()
	}
	launch()
	outstanding := 1
	next := func(hedge bool) {
		// A retry or hedge leg draws on the caller's remaining budget;
		// once the context is dead there is no budget left to spend.
		if launched >= maxLegs || ctx.Err() != nil {
			return
		}
		if hedge {
			c.hedges.Add(1)
		}
		outstanding++
		launch()
	}
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	var lastErr error
	for outstanding > 0 {
		select {
		case lr := <-ch:
			outstanding--
			if lr.err == nil {
				lr.rs.noteSuccess()
				return lr.resp, nil
			}
			lastErr = lr.err
			lr.rs.noteFailure(&c.cfg, time.Now())
			next(false) // a failed leg retries immediately on the next replica
		case <-timer.C:
			next(true) // a slow leg races the next replica
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
