package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	pathcost "repro"
	"repro/internal/api"
	"repro/internal/server"
)

// Config tunes a Coordinator.
type Config struct {
	// Shards lists the shard base URLs, indexed by region: Shards[r]
	// serves region r of the partition. Length must equal Partition.K.
	Shards []string
	// MaxInFlight caps concurrently composed client requests (0 =
	// server.DefaultMaxInFlight). One slot covers a request's whole
	// composition, however many shard calls it fans out to — the
	// coordinator's own work is I/O, not evaluation.
	MaxInFlight int
	// MaxQueue, when > 0, sheds: a request arriving with MaxQueue
	// waiters already queued is answered 429 + Retry-After.
	MaxQueue int
	// MaxPathEdges caps distribution path cardinality (0 = 256).
	MaxPathEdges int
	// MaxBatch caps /v1/batch entries (0 = 64).
	MaxBatch int
	// Timeout bounds each shard call leg (0 = 10s).
	Timeout time.Duration
	// HedgeAfter starts a second, racing leg against a shard that has
	// not answered yet (0 = 150ms). A leg that fails outright — dead
	// socket, garbage response — triggers the retry immediately,
	// without waiting for the timer.
	HedgeAfter time.Duration
	// ProbeInterval spaces /healthz probes per shard (0 = 2s,
	// negative disables probing). Probes are advisory: they feed
	// /v1/stats and /metrics, but every query call is still attempted
	// against its shard, so a recovered shard serves again on the
	// next request with no unfencing step.
	ProbeInterval time.Duration
	// Transport overrides the HTTP transport (tests inject failures
	// here). nil means http.DefaultTransport.
	Transport http.RoundTripper
}

// shardState is one shard's connection bookkeeping.
type shardState struct {
	region        int
	base          string
	healthy       atomic.Bool
	probes        atomic.Uint64
	probeFailures atomic.Uint64
	calls         atomic.Uint64
	callFailures  atomic.Uint64
}

// Coordinator serves the single-process HTTP API over a fleet of
// shards. Distribution queries whose path crosses region cuts are
// decomposed into per-region segments, evaluated shard by shard
// through the partial-state protocol (batch entries of kind "state"),
// and composed into the final distribution coordinator-side; every
// other query is proxied whole to the shard owning it. Create with
// New, mount via Handler.
type Coordinator struct {
	cfg    Config
	g      *pathcost.Graph
	part   *Partition
	mux    *http.ServeMux
	client *http.Client
	shards []*shardState
	sem    chan struct{}
	start  time.Time

	served    atomic.Uint64
	rejected  atomic.Uint64
	abandoned atomic.Uint64
	shed      atomic.Uint64
	hedges    atomic.Uint64
	queued    atomic.Int64
}

// New builds a Coordinator over g's partition.
func New(g *pathcost.Graph, part *Partition, cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) != part.K {
		return nil, fmt.Errorf("shard: partition has %d regions but %d shard addresses were given",
			part.K, len(cfg.Shards))
	}
	if len(part.Vertex) != g.NumVertices() {
		return nil, fmt.Errorf("shard: partition is for %d vertices, network has %d",
			len(part.Vertex), g.NumVertices())
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = server.DefaultMaxInFlight
	}
	if cfg.MaxPathEdges <= 0 {
		cfg.MaxPathEdges = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = 150 * time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	c := &Coordinator{
		cfg:    cfg,
		g:      g,
		part:   part,
		mux:    http.NewServeMux(),
		client: &http.Client{Transport: cfg.Transport},
		sem:    make(chan struct{}, cfg.MaxInFlight),
		start:  time.Now(),
	}
	for r, base := range cfg.Shards {
		ss := &shardState{region: r, base: strings.TrimRight(base, "/")}
		ss.healthy.Store(true) // assume up until a probe or call says otherwise
		c.shards = append(c.shards, ss)
	}
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	c.mux.HandleFunc("/v1/distribution", c.handleDistribution)
	c.mux.HandleFunc("/v1/route", c.handleRoute)
	c.mux.HandleFunc("/v1/topk", c.handleTopK)
	c.mux.HandleFunc("/v1/batch", c.handleBatch)
	c.mux.HandleFunc("/v1/stats", c.handleStats)
	return c, nil
}

// Handler returns the HTTP handler tree (also usable with httptest).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Run serves on addr until ctx is cancelled, with the same drain
// contract as the single-process server.
func (c *Coordinator) Run(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.RunListener(ctx, ln, drain)
}

// RunListener is Run over an already-bound listener; it also starts
// the per-shard health probers, which live exactly as long as serving
// does.
func (c *Coordinator) RunListener(ctx context.Context, ln net.Listener, drain time.Duration) error {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if c.cfg.ProbeInterval > 0 {
		for _, ss := range c.shards {
			go c.probeLoop(pctx, ss)
		}
	}
	return server.ServeListener(ctx, c.mux, ln, drain)
}

// probeLoop polls one shard's /healthz. The verdict is advisory
// visibility, not a circuit breaker: calls keep flowing to an
// unhealthy shard (each protected by its own hedged retry), which is
// what makes recovery automatic.
func (c *Coordinator) probeLoop(ctx context.Context, ss *shardState) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		c.probeOnce(ctx, ss)
	}
}

func (c *Coordinator) probeOnce(ctx context.Context, ss *shardState) {
	ss.probes.Add(1)
	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, ss.base+"/healthz", nil)
	if err == nil {
		var resp *http.Response
		resp, err = c.client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("healthz answered %d", resp.StatusCode)
			}
		}
	}
	cancel()
	if err != nil {
		ss.probeFailures.Add(1)
		ss.healthy.Store(false)
		return
	}
	ss.healthy.Store(true)
}

// --- admission ---------------------------------------------------------

func (c *Coordinator) acquire(ctx context.Context) bool {
	if ctx.Err() != nil {
		c.abandoned.Add(1)
		return false
	}
	select {
	case c.sem <- struct{}{}:
		return true
	default:
	}
	c.queued.Add(1)
	defer c.queued.Add(-1)
	select {
	case c.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		c.abandoned.Add(1)
		return false
	}
}

func (c *Coordinator) release() { <-c.sem }

func (c *Coordinator) shedIfOverloaded(w http.ResponseWriter) bool {
	if c.cfg.MaxQueue <= 0 || c.queued.Load() < int64(c.cfg.MaxQueue) {
		return false
	}
	c.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	c.writeError(w, http.StatusTooManyRequests, "coordinator overloaded, retry later")
	return true
}

// --- query composition -------------------------------------------------

// pendingQuery tracks one batch entry through the wave engine.
type pendingQuery struct {
	q    api.BatchQuery
	kind string
	// segs is the region decomposition (state-relay entries only).
	segs   []Segment
	method pathcost.Method
	// relay progress
	seg     int
	state   string
	uiLo    float64
	uiHi    float64
	factors int
	maxRank int
	// outcome
	done bool
	res  api.BatchResult
}

func (p *pendingQuery) fail(status int, msg string) {
	p.done = true
	p.res = api.BatchResult{Kind: p.kind, Status: status, Error: msg}
}

// process runs a set of batch entries to completion: proxy entries go
// to their owning shard in the first wave; cross-region distribution
// entries relay partial states across as many waves as they have
// segments. Within a wave, all of a shard's sub-queries travel in ONE
// /v1/batch call, and distinct shards are called concurrently — the
// wall-clock cost of a wave is the slowest shard, not the sum.
func (c *Coordinator) process(ctx context.Context, queries []api.BatchQuery) []api.BatchResult {
	pend := make([]*pendingQuery, len(queries))
	for i := range queries {
		pend[i] = c.classify(&queries[i])
	}
	firstWave := true
	for {
		// Gather this wave's shard calls.
		perShard := map[int][]*pendingQuery{}
		for _, p := range pend {
			if p.done {
				continue
			}
			var region int
			switch p.kind {
			case "route", "topk", "distribution":
				if !firstWave {
					continue // proxied in wave 0; result already applied
				}
				if len(p.segs) > 0 { // single-segment distribution proxy
					region = p.segs[0].Region
				} else {
					region = c.part.Vertex[p.q.Source]
				}
			case "state":
				region = p.segs[p.seg].Region
			}
			perShard[region] = append(perShard[region], p)
		}
		if len(perShard) == 0 {
			break
		}
		var wg sync.WaitGroup
		for region, ps := range perShard {
			wg.Add(1)
			go func(region int, ps []*pendingQuery) {
				defer wg.Done()
				c.runWave(ctx, region, ps)
			}(region, ps)
		}
		wg.Wait()
		firstWave = false
		if ctx.Err() != nil {
			break
		}
	}
	out := make([]api.BatchResult, len(pend))
	for i, p := range pend {
		out[i] = p.res
	}
	return out
}

// classify validates one entry and decides how it travels.
func (c *Coordinator) classify(q *api.BatchQuery) *pendingQuery {
	kind := strings.ToLower(strings.TrimSpace(q.Kind))
	if kind == "" {
		kind = "distribution"
	}
	p := &pendingQuery{q: *q, kind: kind}
	switch kind {
	case "route", "topk":
		if _, err := api.CheckRoute(c.g, &api.RouteRequest{
			Source: q.Source, Dest: q.Dest, Depart: q.Depart, Budget: q.Budget, Method: q.Method,
		}); err != nil {
			p.fail(http.StatusBadRequest, err.Error())
		}
	case "distribution":
		m, err := api.ParseMethod(q.Method)
		if err == nil {
			err = api.CheckDepart(q.Depart)
		}
		if err == nil && q.Budget < 0 {
			err = fmt.Errorf("budget %v must be ≥ 0 seconds (0 or omitted skips prob_within)", q.Budget)
		}
		var path pathcost.Path
		if err == nil {
			path, err = api.ParsePath(c.g, q.Path, c.cfg.MaxPathEdges)
		}
		if err != nil {
			p.fail(http.StatusBadRequest, err.Error())
			return p
		}
		p.method = m
		p.segs = c.part.SegmentPath(c.g, path)
		if len(p.segs) > 1 {
			if m == pathcost.RD {
				p.fail(http.StatusUnprocessableEntity,
					"method RD draws one random decomposition over the whole query; it cannot be composed across shards")
				return p
			}
			p.kind = "state"
			p.uiLo, p.uiHi = q.Depart, q.Depart
		}
	case "state":
		// The partial-state protocol is shard-internal; accepting it
		// here would let clients smuggle states past the composition
		// invariants.
		p.fail(http.StatusBadRequest, `kind "state" is internal to the sharded tier (want distribution, route or topk)`)
	default:
		p.fail(http.StatusBadRequest,
			fmt.Sprintf("unknown kind %q (want distribution, route or topk)", q.Kind))
	}
	return p
}

// runWave sends one shard its share of a wave and applies the results.
func (c *Coordinator) runWave(ctx context.Context, region int, ps []*pendingQuery) {
	breq := &api.BatchRequest{Queries: make([]api.BatchQuery, len(ps))}
	for i, p := range ps {
		if p.kind == "state" {
			seg := p.segs[p.seg]
			breq.Queries[i] = api.BatchQuery{
				Kind:   "state",
				Path:   api.EdgeIDs(seg.Path),
				Depart: p.q.Depart,
				Method: string(p.method),
				UILo:   p.uiLo,
				UIHi:   p.uiHi,
				State:  p.state,
			}
		} else {
			breq.Queries[i] = p.q
		}
	}
	bresp, err := c.shardBatch(ctx, c.shards[region], breq)
	if err != nil {
		// This shard is down for this wave; its entries fail 503, and
		// nothing else does — sibling shards' waves proceed untouched.
		for _, p := range ps {
			p.fail(http.StatusServiceUnavailable,
				fmt.Sprintf("shard %d unavailable: %v", region, err))
		}
		return
	}
	for i, p := range ps {
		c.applyResult(p, &bresp.Results[i], region)
	}
}

// applyResult folds one shard answer into its pending entry.
func (c *Coordinator) applyResult(p *pendingQuery, res *api.BatchResult, region int) {
	if p.kind != "state" {
		p.done = true
		p.res = *res
		return
	}
	if res.Status != http.StatusOK {
		p.done = true
		p.res = api.BatchResult{Kind: "distribution", Status: res.Status, Error: res.Error}
		return
	}
	if res.State == nil {
		p.fail(http.StatusBadGateway, fmt.Sprintf("shard %d answered a state entry without a state", region))
		return
	}
	p.state = res.State.State
	p.uiLo, p.uiHi = res.State.UILo, res.State.UIHi
	p.factors += res.State.Factors
	if res.State.MaxRank > p.maxRank {
		p.maxRank = res.State.MaxRank
	}
	p.seg++
	if p.seg < len(p.segs) {
		return
	}
	// Last segment answered: compose the final distribution exactly as
	// Evaluate's tail does — flatten the accumulator-only state to
	// MaxResultBuckets — and shape it through the same payload builder
	// the single-process server uses.
	cs, err := pathcost.DecodeChainState([]byte(p.state), len(p.segs[len(p.segs)-1].Path))
	if err == nil && !cs.AccOnly() {
		err = errors.New("state has open dimensions")
	}
	var dist *pathcost.Histogram
	if err == nil {
		dist, err = cs.Finalize(c.part.Params.MaxResultBuckets)
	}
	if err != nil {
		p.fail(http.StatusBadGateway, fmt.Sprintf("shard %d returned an invalid final state: %v", region, err))
		return
	}
	p.done = true
	p.res = api.BatchResult{
		Kind:   "distribution",
		Status: http.StatusOK,
		Distribution: api.DistributionPayload(string(p.method),
			c.part.Params.IntervalOf(p.q.Depart), dist, p.q.Budget,
			p.factors, p.maxRank, 0),
	}
}

// shardBatch posts one batch to one shard with hedged retry: a second
// leg races the first when it is slow (HedgeAfter) or starts the
// moment the first fails; the first decodable answer wins. Legs are
// whole-call attempts — connect, send, read, decode — so a shard that
// answers garbage counts as failed just like one that answers nothing.
func (c *Coordinator) shardBatch(ctx context.Context, ss *shardState, breq *api.BatchRequest) (*api.BatchResponse, error) {
	ss.calls.Add(1)
	body, err := json.Marshal(breq)
	if err != nil {
		return nil, err
	}
	type legResult struct {
		resp *api.BatchResponse
		err  error
	}
	leg := func() legResult {
		lctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(lctx, http.MethodPost, ss.base+"/v1/batch", bytes.NewReader(body))
		if err != nil {
			return legResult{err: err}
		}
		req.Header.Set("Content-Type", "application/json")
		hresp, err := c.client.Do(req)
		if err != nil {
			return legResult{err: err}
		}
		defer hresp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
		if err != nil {
			return legResult{err: err}
		}
		if hresp.StatusCode != http.StatusOK {
			return legResult{err: fmt.Errorf("shard answered %d: %s", hresp.StatusCode, firstLine(raw))}
		}
		var bresp api.BatchResponse
		if err := json.Unmarshal(raw, &bresp); err != nil {
			return legResult{err: fmt.Errorf("undecodable shard response: %v", err)}
		}
		if len(bresp.Results) != len(breq.Queries) {
			return legResult{err: fmt.Errorf("shard answered %d results for %d queries", len(bresp.Results), len(breq.Queries))}
		}
		return legResult{resp: &bresp}
	}
	ch := make(chan legResult, 2)
	launch := func() { go func() { ch <- leg() }() }
	launch()
	outstanding := 1
	hedged := false
	hedge := func() {
		if !hedged {
			hedged = true
			outstanding++
			c.hedges.Add(1)
			launch()
		}
	}
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	var lastErr error
	for outstanding > 0 {
		select {
		case lr := <-ch:
			outstanding--
			if lr.err == nil {
				ss.healthy.Store(true)
				return lr.resp, nil
			}
			lastErr = lr.err
			hedge() // a failed first leg retries immediately
		case <-timer.C:
			hedge() // a slow first leg races a second
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ss.callFailures.Add(1)
	ss.healthy.Store(false)
	return nil, lastErr
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
