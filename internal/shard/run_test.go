package shard

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/server"
)

// TestCoordinatorRunListenerServesAndProbes exercises the serve loop
// the daemon runs: RunListener on port 0 with live probe loops,
// /healthz answering, probes observed against every shard, and a
// clean drain on cancel.
func TestCoordinatorRunListenerServesAndProbes(t *testing.T) {
	sys := testSystem(t)
	f := startFleet(t, 2, nil)

	coord, err := New(sys.Graph, f.part, Config{
		Shards:        []string{f.shardTS[0].URL, f.shardTS[1].URL},
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- coord.RunListener(ctx, ln, time.Second) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, hz)
	}
	if hr, err := http.Post(base+"/healthz", "text/plain", nil); err == nil {
		if hr.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /healthz = %d, want 405", hr.StatusCode)
		}
		hr.Body.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if coord.shards[0].replicas[0].probes.Load() > 0 && coord.shards[1].replicas[0].probes.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe loops never probed both shards")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for r := range coord.shards {
		if !coord.shards[r].healthy() {
			t.Errorf("shard %d unhealthy after live probes", r)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunListener returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not drain")
	}
}

// TestCoordinatorShedsWhenOverloaded fills the coordinator's single
// admission slot and its one-waiter queue with requests parked on a
// hung shard, then checks the next arrival is shed 429 + Retry-After
// while the parked requests survive the hang unscathed.
func TestCoordinatorShedsWhenOverloaded(t *testing.T) {
	sys := testSystem(t)
	ft := newFaultTransport()
	part, err := NewPartition(sys.Graph, 2, sys.Params)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitModel(sys, part)
	if err != nil {
		t.Fatal(err)
	}
	f := &fleet{part: part, split: split}
	for _, ss := range split.Shards {
		ts := httptest.NewServer(server.New(ss, server.Config{MaxInFlight: 4}).Handler())
		t.Cleanup(ts.Close)
		f.shardTS = append(f.shardTS, ts)
	}
	coord, err := New(sys.Graph, part, Config{
		Shards:        []string{f.shardTS[0].URL, f.shardTS[1].URL},
		ProbeInterval: -1,
		MaxInFlight:   1,
		MaxQueue:      1,
		Transport:     ft,
		HedgeAfter:    time.Hour, // no hedge: the hang must hold the slot
		Timeout:       700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(coordTS.Close)
	f.coordTS = coordTS

	queries, regions := regionQueries2(t, f)
	victim := regions[0]
	ft.set(f.shardTS[victim].URL, "hang")
	defer ft.set(f.shardTS[victim].URL, "")

	// One request holds the only slot (its shard call hangs until
	// Timeout); a second parks as the only permitted waiter.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := postRaw(t, f.coordTS.URL+"/v1/batch", api.BatchRequest{Queries: queries[:1]})
			codes[i] = code
		}(i)
		deadline := time.Now().Add(5 * time.Second)
		for int(coord.queued.Load()) < i {
			if time.Now().After(deadline) {
				t.Fatalf("request %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Queue full: the next arrival must be rejected at the door.
	resp, err := http.Post(f.coordTS.URL+"/v1/distribution", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded coordinator answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if coord.shed.Load() == 0 {
		t.Fatal("shed counter did not move")
	}

	// The parked requests drain once the hung legs time out: both get
	// whole-batch 200s (the victim entry inside carries its own 503).
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("parked request %d = %d, want 200", i, code)
		}
	}
}

// regionQueries2 is regionQueries for a hand-built 2-way fleet.
func regionQueries2(t *testing.T, f *fleet) ([]api.BatchQuery, []int) {
	t.Helper()
	sys := testSystem(t)
	byRegion := map[int][]int64{}
	for _, p := range queryPaths(t, sys, 300, 31) {
		segs := f.part.SegmentPath(sys.Graph, p)
		if len(segs) == 1 {
			if _, ok := byRegion[segs[0].Region]; !ok {
				byRegion[segs[0].Region] = edgeIDs(p)
			}
		}
	}
	var queries []api.BatchQuery
	var regions []int
	for r := 0; r < f.part.K; r++ {
		if path, ok := byRegion[r]; ok {
			queries = append(queries, api.BatchQuery{Kind: "distribution", Path: path, Depart: 8 * 3600})
			regions = append(regions, r)
		}
	}
	if len(queries) == 0 {
		t.Fatal("no single-region queries found")
	}
	return queries, regions
}
