package shard

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadConfig drives RunLoad: an open-loop constant-rate load test
// against a serving tier (coordinator or single server).
type LoadConfig struct {
	// NewRequest builds one request per arrival. It is called from
	// worker goroutines and must be safe for concurrent use.
	NewRequest func() (*http.Request, error)
	// QPS is the target arrival rate (> 0).
	QPS float64
	// Duration bounds the generation window (> 0); in-flight requests
	// started inside the window are still awaited.
	Duration time.Duration
	// Workers bounds concurrent in-flight requests (0 = 16). An
	// arrival finding no free worker is counted as Dropped rather than
	// queued — open-loop load must not degrade into a closed loop
	// measuring its own backlog.
	Workers int
	// Client overrides the HTTP client (nil = http.DefaultClient).
	Client *http.Client
}

// LoadResult summarizes one RunLoad window.
type LoadResult struct {
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationS   float64 `json:"duration_s"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	// Shed counts 429 answers — the serving tier's load shedder.
	Shed int `json:"shed"`
	// Errors counts transport failures and non-2xx, non-429 answers.
	Errors int `json:"errors"`
	// Dropped counts arrivals skipped because all workers were busy.
	Dropped int     `json:"dropped"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// RunLoad fires cfg.QPS requests per second for cfg.Duration and
// reports latency quantiles and outcome counts. Latency is measured
// per request, send to last body byte.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.NewRequest == nil {
		return nil, fmt.Errorf("shard: loadgen needs a request builder")
	}
	if cfg.QPS <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("shard: loadgen needs qps > 0 and duration > 0, got %g qps over %v", cfg.QPS, cfg.Duration)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 16
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}

	var (
		mu        sync.Mutex
		latencies []float64
		res       = LoadResult{TargetQPS: cfg.QPS}
		wg        sync.WaitGroup
		slots     = make(chan struct{}, workers)
	)
	fire := func() {
		defer wg.Done()
		defer func() { <-slots }()
		req, err := cfg.NewRequest()
		if err == nil {
			req = req.WithContext(ctx)
		}
		start := time.Now()
		var status int
		if err == nil {
			var resp *http.Response
			resp, err = client.Do(req)
			if err == nil {
				status = resp.StatusCode
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		elapsed := time.Since(start).Seconds() * 1000
		mu.Lock()
		defer mu.Unlock()
		res.Sent++
		switch {
		case err != nil:
			res.Errors++
		case status == http.StatusTooManyRequests:
			res.Shed++
		case status >= 200 && status < 300:
			res.OK++
			latencies = append(latencies, elapsed)
		default:
			res.Errors++
		}
	}

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()
	t0 := time.Now()
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go fire()
			default:
				mu.Lock()
				res.Dropped++
				mu.Unlock()
			}
		}
	}
	wg.Wait()
	res.DurationS = time.Since(t0).Seconds()
	if res.DurationS > 0 {
		res.AchievedQPS = float64(res.Sent) / res.DurationS
	}
	sort.Float64s(latencies)
	res.P50MS = quantileMS(latencies, 0.50)
	res.P99MS = quantileMS(latencies, 0.99)
	if n := len(latencies); n > 0 {
		res.MaxMS = latencies[n-1]
	}
	if ctx.Err() != nil {
		return &res, ctx.Err()
	}
	return &res, nil
}

// quantileMS reads the q-quantile from sorted latencies (nearest-rank).
func quantileMS(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
