package shard

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/server"
)

// replicatedFleet is a fleet where every region is served by a group
// of identical replicas. replicaTS[r][i] is region r's i-th replica.
type replicatedFleet struct {
	*fleet
	replicaTS [][]*httptest.Server
}

// startReplicatedFleet boots k regions with n replicas each, every
// replica of a region serving the same shard model, plus the union
// reference server and a coordinator over the groups.
func startReplicatedFleet(t testing.TB, k, n int, extra func(*Config)) *replicatedFleet {
	t.Helper()
	sys := testSystem(t)
	part, err := NewPartition(sys.Graph, k, sys.Params)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	split, err := SplitModel(sys, part)
	if err != nil {
		t.Fatalf("SplitModel: %v", err)
	}
	rf := &replicatedFleet{fleet: &fleet{part: part, split: split}}
	cfg := Config{ProbeInterval: -1}
	for _, ss := range split.Shards {
		h := server.New(ss, server.Config{MaxInFlight: 4}).Handler()
		var group []*httptest.Server
		groupURL := ""
		for i := 0; i < n; i++ {
			ts := httptest.NewServer(h)
			group = append(group, ts)
			if i > 0 {
				groupURL += "|"
			}
			groupURL += ts.URL
		}
		rf.replicaTS = append(rf.replicaTS, group)
		rf.shardTS = append(rf.shardTS, group[0])
		cfg.Shards = append(cfg.Shards, groupURL)
	}
	rf.unionTS = httptest.NewServer(server.New(split.Union, server.Config{MaxInFlight: 4}).Handler())
	if extra != nil {
		extra(&cfg)
	}
	rf.coord, err = New(sys.Graph, part, cfg)
	if err != nil {
		t.Fatalf("New coordinator: %v", err)
	}
	rf.coordTS = httptest.NewServer(rf.coord.Handler())
	t.Cleanup(func() {
		rf.coordTS.Close()
		rf.unionTS.Close()
		for _, group := range rf.replicaTS {
			for _, ts := range group {
				ts.Close()
			}
		}
	})
	return rf
}

// assertCoordinatorMatchesUnion drives the full mixed workload —
// in-region and cross-region distribution queries — through the
// coordinator and the union reference server and requires status 200
// and byte-identical bodies on every single one.
func assertCoordinatorMatchesUnion(t *testing.T, rf *replicatedFleet, nPaths int, seed int64) {
	t.Helper()
	sys := testSystem(t)
	for i, p := range queryPaths(t, sys, nPaths, seed) {
		req := api.DistributionRequest{Path: edgeIDs(p), Depart: 8 * 3600}
		ucode, ubody := postRaw(t, rf.unionTS.URL+"/v1/distribution", req)
		ccode, cbody := postRaw(t, rf.coordTS.URL+"/v1/distribution", req)
		if ucode != http.StatusOK {
			t.Fatalf("path %d: union = %d: %s", i, ucode, ubody)
		}
		if ccode != http.StatusOK {
			t.Fatalf("path %d: coordinator = %d: %s", i, ccode, cbody)
		}
		ubody = normalize(t, "distribution", ubody)
		cbody = normalize(t, "distribution", cbody)
		if !bytes.Equal(ubody, cbody) {
			t.Fatalf("path %d: coordinator differs from union:\n coord: %s\n union: %s", i, cbody, ubody)
		}
	}
}

// TestReplicaGroupServesIdenticallyToUnion: the healthy replicated
// fleet is byte-identical to the union model, and the round-robin
// cursor actually spreads legs across both replicas of each group.
func TestReplicaGroupServesIdenticallyToUnion(t *testing.T) {
	rf := startReplicatedFleet(t, 2, 2, nil)
	assertCoordinatorMatchesUnion(t, rf, 40, 57)
	for r, ss := range rf.coord.shards {
		for i, rs := range ss.replicas {
			if rs.calls.Load() == 0 {
				t.Errorf("region %d replica %d never received a leg: round-robin is not rotating", r, i)
			}
		}
	}
}

// TestKilledReplicaDegradesNothing is the failover differential test:
// with one replica of EVERY region dead, the full workload must still
// come back byte-identical to the union model with zero non-200s —
// sibling replicas absorb the legs.
func TestKilledReplicaDegradesNothing(t *testing.T) {
	ft := newFaultTransport()
	rf := startReplicatedFleet(t, 2, 2, func(cfg *Config) {
		cfg.Transport = ft
		cfg.HedgeAfter = 25 * time.Millisecond
		cfg.Timeout = 2 * time.Second
	})
	for _, group := range rf.replicaTS {
		ft.set(group[0].URL, "kill")
	}
	assertCoordinatorMatchesUnion(t, rf, 40, 58)

	// The dead replicas' breakers opened after BreakerThreshold
	// consecutive failures, so the tail of the workload never even
	// dialed them; the survivors took every leg.
	now := time.Now()
	for r, ss := range rf.coord.shards {
		dead, live := ss.replicas[0], ss.replicas[1]
		if dead.breakerTrips.Load() == 0 {
			t.Errorf("region %d: dead replica's breaker never tripped", r)
		}
		if dead.admitted(now) {
			t.Errorf("region %d: dead replica still admitted", r)
		}
		if dead.healthy.Load() {
			t.Errorf("region %d: dead replica still marked healthy", r)
		}
		if !ss.healthy() {
			t.Errorf("region %d: group unhealthy with a live sibling", r)
		}
		if live.callFailures.Load() != 0 {
			t.Errorf("region %d: surviving replica recorded %d failures", r, live.callFailures.Load())
		}
	}

	// Revive the dead replicas: after the cooldown a half-open trial
	// leg succeeds and closes the breaker.
	for _, group := range rf.replicaTS {
		ft.set(group[0].URL, "")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		assertCoordinatorMatchesUnion(t, rf, 4, 59)
		closed := true
		for _, ss := range rf.coord.shards {
			if !ss.replicas[0].admitted(time.Now()) || ss.replicas[0].consecFails.Load() != 0 {
				closed = false
			}
		}
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breakers never closed after the replicas revived")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestProbeClosesBreakerEarly: a revived replica does not have to wait
// for query traffic — one successful health probe closes its breaker.
func TestProbeClosesBreakerEarly(t *testing.T) {
	rf := startReplicatedFleet(t, 2, 2, func(cfg *Config) {
		// A cooldown far longer than the test: only the probe can
		// readmit the replica.
		cfg.BreakerCooldown = time.Hour
	})
	rs := rf.coord.shards[0].replicas[0]
	for i := 0; i < 3; i++ {
		rs.noteFailure(&rf.coord.cfg, time.Now())
	}
	if rs.admitted(time.Now()) {
		t.Fatal("breaker did not open after threshold failures")
	}
	rf.coord.probeOnce(t.Context(), rs)
	if !rs.admitted(time.Now()) || !rs.healthy.Load() {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestBreakerStateMachine exercises the replica breaker as a pure
// state machine: closed until threshold consecutive failures, open for
// the cooldown, half-open trial afterwards, re-opened by a failed
// trial, closed by a successful one, and a success anywhere resets the
// consecutive count.
func TestBreakerStateMachine(t *testing.T) {
	cfg := &Config{BreakerThreshold: 3, BreakerCooldown: time.Minute}
	rs := &replicaState{}
	rs.healthy.Store(true)
	t0 := time.Unix(1000, 0)

	rs.noteFailure(cfg, t0)
	rs.noteFailure(cfg, t0)
	if !rs.admitted(t0) {
		t.Fatal("breaker open below threshold")
	}
	rs.noteSuccess()
	rs.noteFailure(cfg, t0)
	rs.noteFailure(cfg, t0)
	if !rs.admitted(t0) {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	rs.noteFailure(cfg, t0)
	if rs.admitted(t0.Add(time.Second)) {
		t.Fatal("breaker closed after threshold consecutive failures")
	}
	if rs.breakerTrips.Load() != 1 {
		t.Fatalf("breakerTrips = %d, want 1", rs.breakerTrips.Load())
	}
	// Cooldown elapsed: half-open, one trial admitted.
	half := t0.Add(time.Minute + time.Second)
	if !rs.admitted(half) {
		t.Fatal("breaker still closed to the half-open trial")
	}
	// Failed trial re-opens for a fresh cooldown.
	rs.noteFailure(cfg, half)
	if rs.admitted(half.Add(30 * time.Second)) {
		t.Fatal("failed half-open trial did not re-open the breaker")
	}
	// Successful trial closes it for good.
	rs.noteSuccess()
	if !rs.admitted(half) || rs.consecFails.Load() != 0 {
		t.Fatal("successful trial did not close the breaker")
	}
}

// TestBreakerDisabled: a negative threshold turns the breaker off —
// failures mark health but never fence the replica.
func TestBreakerDisabled(t *testing.T) {
	cfg := &Config{BreakerThreshold: -1, BreakerCooldown: time.Minute}
	rs := &replicaState{}
	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		rs.noteFailure(cfg, t0)
	}
	if !rs.admitted(t0) {
		t.Fatal("disabled breaker opened anyway")
	}
	if rs.callFailures.Load() != 10 {
		t.Fatalf("callFailures = %d, want 10", rs.callFailures.Load())
	}
}
