package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
)

// --- request plumbing --------------------------------------------------

func (c *Coordinator) readRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		c.writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		c.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, code int, v any) {
	c.writeJSONUncounted(w, code, v)
	c.served.Add(1)
}

func (c *Coordinator) writeJSONUncounted(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(api.Error{Error: msg})
	c.rejected.Add(1)
}

// writeEntryOutcome writes a single-query handler's composed result:
// the payload on 200, the error envelope otherwise. An entry never
// carries status 0; a vanished client just makes the write a no-op at
// the socket.
func (c *Coordinator) writeEntryOutcome(w http.ResponseWriter, res *api.BatchResult, payload any) {
	if res.Status == http.StatusOK {
		c.writeJSON(w, http.StatusOK, payload)
		return
	}
	c.writeError(w, res.Status, res.Error)
}

// processOne runs a single entry through the wave engine under one
// admission slot.
func (c *Coordinator) processOne(ctx context.Context, q api.BatchQuery) (api.BatchResult, bool) {
	if !c.acquire(ctx) {
		return api.BatchResult{}, false
	}
	defer c.release()
	res := c.process(ctx, []api.BatchQuery{q})
	return res[0], true
}

// --- handlers ----------------------------------------------------------

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	c.writeJSONUncounted(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleDistribution(w http.ResponseWriter, r *http.Request) {
	if c.shedIfOverloaded(w) {
		return
	}
	var req api.DistributionRequest
	if !c.readRequest(w, r, &req) {
		return
	}
	res, ok := c.processOne(r.Context(), api.BatchQuery{
		Kind: "distribution", Path: req.Path, Depart: req.Depart,
		Method: req.Method, Budget: req.Budget,
	})
	if !ok {
		return
	}
	c.writeEntryOutcome(w, &res, res.Distribution)
}

func (c *Coordinator) handleRoute(w http.ResponseWriter, r *http.Request) {
	if c.shedIfOverloaded(w) {
		return
	}
	var req api.RouteRequest
	if !c.readRequest(w, r, &req) {
		return
	}
	res, ok := c.processOne(r.Context(), api.BatchQuery{
		Kind: "route", Source: req.Source, Dest: req.Dest,
		Depart: req.Depart, Budget: req.Budget, Method: req.Method,
	})
	if !ok {
		return
	}
	c.writeEntryOutcome(w, &res, res.Route)
}

func (c *Coordinator) handleTopK(w http.ResponseWriter, r *http.Request) {
	if c.shedIfOverloaded(w) {
		return
	}
	var req api.TopKRequest
	if !c.readRequest(w, r, &req) {
		return
	}
	res, ok := c.processOne(r.Context(), api.BatchQuery{
		Kind: "topk", Source: req.Source, Dest: req.Dest,
		Depart: req.Depart, Budget: req.Budget, Method: req.Method, K: req.K,
	})
	if !ok {
		return
	}
	c.writeEntryOutcome(w, &res, res.TopK)
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	if c.shedIfOverloaded(w) {
		return
	}
	var req api.BatchRequest
	if !c.readRequest(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		c.writeError(w, http.StatusBadRequest, "batch must contain at least one query")
		return
	}
	if len(req.Queries) > c.cfg.MaxBatch {
		c.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d queries, cap is %d", len(req.Queries), c.cfg.MaxBatch))
		return
	}
	ctx := r.Context()
	if !c.acquire(ctx) {
		return
	}
	results := func() []api.BatchResult {
		defer c.release()
		return c.process(ctx, req.Queries)
	}()
	if ctx.Err() != nil {
		return
	}
	c.writeJSON(w, http.StatusOK, api.BatchResponse{Results: results})
}

// --- stats -------------------------------------------------------------

// coordShardStatus is one shard's health as the coordinator sees it.
type coordShardStatus struct {
	Region        int    `json:"region"`
	Base          string `json:"base"`
	Healthy       bool   `json:"healthy"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	Calls         uint64 `json:"calls"`
	CallFailures  uint64 `json:"call_failures"`
	// Epoch is the shard's served model epoch, fetched live from its
	// /v1/stats; absent when the shard is unreachable or runs with
	// ingestion off.
	Epoch *uint64 `json:"epoch,omitempty"`
}

type coordStatsResponse struct {
	K           int                `json:"k"`
	Shards      []coordShardStatus `json:"shards"`
	UptimeS     float64            `json:"uptime_s"`
	Served      uint64             `json:"served"`
	Rejected    uint64             `json:"rejected"`
	Abandoned   uint64             `json:"abandoned"`
	Shed        uint64             `json:"shed"`
	Hedges      uint64             `json:"hedges"`
	MaxInFlight int                `json:"max_in_flight"`
	MaxQueue    int                `json:"max_queue,omitempty"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := coordStatsResponse{
		K:           c.part.K,
		UptimeS:     time.Since(c.start).Seconds(),
		Served:      c.served.Load(),
		Rejected:    c.rejected.Load(),
		Abandoned:   c.abandoned.Load(),
		Shed:        c.shed.Load(),
		Hedges:      c.hedges.Load(),
		MaxInFlight: c.cfg.MaxInFlight,
		MaxQueue:    c.cfg.MaxQueue,
	}
	for _, ss := range c.shards {
		st := coordShardStatus{
			Region:        ss.region,
			Base:          ss.base,
			Healthy:       ss.healthy.Load(),
			Probes:        ss.probes.Load(),
			ProbeFailures: ss.probeFailures.Load(),
			Calls:         ss.calls.Load(),
			CallFailures:  ss.callFailures.Load(),
		}
		st.Epoch = c.fetchEpoch(r.Context(), ss)
		resp.Shards = append(resp.Shards, st)
	}
	c.writeJSONUncounted(w, http.StatusOK, resp)
}

// fetchEpoch asks one shard's /v1/stats for its epoch sequence; nil
// when the shard is down or serves without an epoch block.
func (c *Coordinator) fetchEpoch(ctx context.Context, ss *shardState) *uint64 {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, ss.base+"/v1/stats", nil)
	if err != nil {
		return nil
	}
	hresp, err := c.client.Do(req)
	if err != nil {
		return nil
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Epoch *struct {
			Seq uint64 `json:"seq"`
		} `json:"epoch"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&body); err != nil || body.Epoch == nil {
		return nil
	}
	return &body.Epoch.Seq
}

// --- metrics -----------------------------------------------------------

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "use GET", http.StatusMethodNotAllowed)
		return
	}
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("pathcost_coordinator_requests_served_total", "Requests answered 2xx.", c.served.Load())
	counter("pathcost_coordinator_requests_rejected_total", "Requests answered 4xx/5xx.", c.rejected.Load())
	counter("pathcost_coordinator_requests_abandoned_total", "Clients gone before composition started.", c.abandoned.Load())
	counter("pathcost_coordinator_requests_shed_total", "Requests answered 429 by the MaxQueue load shedder.", c.shed.Load())
	counter("pathcost_coordinator_hedges_total", "Second legs launched against slow or failed shard calls.", c.hedges.Load())
	fmt.Fprintf(&b, "# HELP pathcost_coordinator_uptime_seconds Seconds since the coordinator started.\n"+
		"# TYPE pathcost_coordinator_uptime_seconds gauge\npathcost_coordinator_uptime_seconds %g\n",
		time.Since(c.start).Seconds())
	fmt.Fprintf(&b, "# HELP pathcost_coordinator_shard_healthy Last known shard health (1 healthy, 0 not).\n"+
		"# TYPE pathcost_coordinator_shard_healthy gauge\n")
	for _, ss := range c.shards {
		v := 0
		if ss.healthy.Load() {
			v = 1
		}
		fmt.Fprintf(&b, "pathcost_coordinator_shard_healthy{region=%q} %d\n", fmt.Sprint(ss.region), v)
	}
	fmt.Fprintf(&b, "# HELP pathcost_coordinator_shard_calls_total Batch calls per shard.\n"+
		"# TYPE pathcost_coordinator_shard_calls_total counter\n")
	for _, ss := range c.shards {
		fmt.Fprintf(&b, "pathcost_coordinator_shard_calls_total{region=%q} %d\n", fmt.Sprint(ss.region), ss.calls.Load())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
