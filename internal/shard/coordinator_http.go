package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
)

// --- request plumbing --------------------------------------------------

func (c *Coordinator) readRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		c.writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		c.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// requestContext derives the composition context for one request: the
// tighter of Config.DefaultTimeout and the caller's api.BudgetHeader
// header, layered on the request's own context. ok = false means the
// header was garbage and a 400 was already written. The returned
// cancel must always be called.
func (c *Coordinator) requestContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	budget, hasBudget, err := api.ParseBudget(r.Header.Get(api.BudgetHeader))
	if err != nil {
		c.writeError(w, http.StatusBadRequest, err.Error())
		return nil, nil, false
	}
	timeout := c.cfg.DefaultTimeout
	if hasBudget && (timeout <= 0 || budget < timeout) {
		timeout = budget
	}
	if timeout <= 0 {
		return r.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, true
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, code int, v any) {
	c.writeJSONUncounted(w, code, v)
	c.served.Add(1)
}

func (c *Coordinator) writeJSONUncounted(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(api.Error{Error: msg})
	c.rejected.Add(1)
}

// writeEntryOutcome writes a single-query handler's composed result:
// the payload on 200, the error envelope otherwise. An entry never
// carries status 0; a vanished client just makes the write a no-op at
// the socket.
func (c *Coordinator) writeEntryOutcome(w http.ResponseWriter, res *api.BatchResult, payload any) {
	if res.Status == http.StatusOK {
		c.writeJSON(w, http.StatusOK, payload)
		return
	}
	c.writeError(w, res.Status, res.Error)
}

// processOne runs a single entry through the wave engine under one
// admission slot.
func (c *Coordinator) processOne(ctx context.Context, q api.BatchQuery) (api.BatchResult, bool) {
	if !c.acquire(ctx) {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return api.BatchResult{Status: http.StatusGatewayTimeout, Error: "deadline exceeded"}, true
		}
		return api.BatchResult{}, false
	}
	defer c.release()
	res := c.process(ctx, []api.BatchQuery{q})
	return res[0], true
}

// --- handlers ----------------------------------------------------------

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	c.writeJSONUncounted(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleDistribution(w http.ResponseWriter, r *http.Request) {
	if c.shedIfOverloaded(w) {
		return
	}
	var req api.DistributionRequest
	if !c.readRequest(w, r, &req) {
		return
	}
	ctx, cancel, ok := c.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	res, ok := c.processOne(ctx, api.BatchQuery{
		Kind: "distribution", Path: req.Path, Depart: req.Depart,
		Method: req.Method, Budget: req.Budget,
	})
	if !ok {
		return
	}
	c.writeEntryOutcome(w, &res, res.Distribution)
}

func (c *Coordinator) handleRoute(w http.ResponseWriter, r *http.Request) {
	if c.shedIfOverloaded(w) {
		return
	}
	var req api.RouteRequest
	if !c.readRequest(w, r, &req) {
		return
	}
	ctx, cancel, ok := c.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	res, ok := c.processOne(ctx, api.BatchQuery{
		Kind: "route", Source: req.Source, Dest: req.Dest,
		Depart: req.Depart, Budget: req.Budget, Method: req.Method,
	})
	if !ok {
		return
	}
	c.writeEntryOutcome(w, &res, res.Route)
}

func (c *Coordinator) handleTopK(w http.ResponseWriter, r *http.Request) {
	if c.shedIfOverloaded(w) {
		return
	}
	var req api.TopKRequest
	if !c.readRequest(w, r, &req) {
		return
	}
	ctx, cancel, ok := c.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	res, ok := c.processOne(ctx, api.BatchQuery{
		Kind: "topk", Source: req.Source, Dest: req.Dest,
		Depart: req.Depart, Budget: req.Budget, Method: req.Method, K: req.K,
	})
	if !ok {
		return
	}
	c.writeEntryOutcome(w, &res, res.TopK)
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	if c.shedIfOverloaded(w) {
		return
	}
	var req api.BatchRequest
	if !c.readRequest(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		c.writeError(w, http.StatusBadRequest, "batch must contain at least one query")
		return
	}
	if len(req.Queries) > c.cfg.MaxBatch {
		c.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d queries, cap is %d", len(req.Queries), c.cfg.MaxBatch))
		return
	}
	ctx, cancel, ok := c.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	if !c.acquire(ctx) {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			c.writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		}
		return
	}
	results := func() []api.BatchResult {
		defer c.release()
		return c.process(ctx, req.Queries)
	}()
	if r.Context().Err() != nil {
		return // client gone; an expired deadline still answers (per-entry 504s)
	}
	c.writeJSON(w, http.StatusOK, api.BatchResponse{Results: results})
}

// --- stats -------------------------------------------------------------

// coordReplicaStatus is one replica's health and breaker state as the
// coordinator sees it.
type coordReplicaStatus struct {
	Base          string `json:"base"`
	Healthy       bool   `json:"healthy"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	Calls         uint64 `json:"calls"`
	CallFailures  uint64 `json:"call_failures"`
	// BreakerOpen reports a breaker currently fencing this replica out
	// of the rotation; BreakerTrips counts how often it has opened.
	BreakerOpen  bool   `json:"breaker_open"`
	BreakerTrips uint64 `json:"breaker_trips"`
}

// coordShardStatus is one region's replica group. Healthy is the
// group verdict: true while any replica is believed up.
type coordShardStatus struct {
	Region   int                  `json:"region"`
	Healthy  bool                 `json:"healthy"`
	Replicas []coordReplicaStatus `json:"replicas"`
	// Epoch is the region's served model epoch, fetched live from the
	// first answering replica's /v1/stats; absent when the whole group
	// is unreachable or runs with ingestion off.
	Epoch *uint64 `json:"epoch,omitempty"`
}

type coordStatsResponse struct {
	K           int                `json:"k"`
	Shards      []coordShardStatus `json:"shards"`
	UptimeS     float64            `json:"uptime_s"`
	Served      uint64             `json:"served"`
	Rejected    uint64             `json:"rejected"`
	Abandoned   uint64             `json:"abandoned"`
	Shed        uint64             `json:"shed"`
	Hedges      uint64             `json:"hedges"`
	MaxInFlight int                `json:"max_in_flight"`
	MaxQueue    int                `json:"max_queue,omitempty"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := coordStatsResponse{
		K:           c.part.K,
		UptimeS:     time.Since(c.start).Seconds(),
		Served:      c.served.Load(),
		Rejected:    c.rejected.Load(),
		Abandoned:   c.abandoned.Load(),
		Shed:        c.shed.Load(),
		Hedges:      c.hedges.Load(),
		MaxInFlight: c.cfg.MaxInFlight,
		MaxQueue:    c.cfg.MaxQueue,
	}
	now := time.Now()
	for _, ss := range c.shards {
		st := coordShardStatus{
			Region:  ss.region,
			Healthy: ss.healthy(),
		}
		for _, rs := range ss.replicas {
			st.Replicas = append(st.Replicas, coordReplicaStatus{
				Base:          rs.base,
				Healthy:       rs.healthy.Load(),
				Probes:        rs.probes.Load(),
				ProbeFailures: rs.probeFailures.Load(),
				Calls:         rs.calls.Load(),
				CallFailures:  rs.callFailures.Load(),
				BreakerOpen:   !rs.admitted(now),
				BreakerTrips:  rs.breakerTrips.Load(),
			})
		}
		st.Epoch = c.fetchEpoch(r.Context(), ss)
		resp.Shards = append(resp.Shards, st)
	}
	c.writeJSONUncounted(w, http.StatusOK, resp)
}

// fetchEpoch asks a region's /v1/stats for its epoch sequence, trying
// replicas in breaker-preference order; nil when the whole group is
// down or serves without an epoch block.
func (c *Coordinator) fetchEpoch(ctx context.Context, ss *shardState) *uint64 {
	for _, rs := range ss.candidates(time.Now()) {
		if seq := c.fetchReplicaEpoch(ctx, rs); seq != nil {
			return seq
		}
	}
	return nil
}

func (c *Coordinator) fetchReplicaEpoch(ctx context.Context, rs *replicaState) *uint64 {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, rs.base+"/v1/stats", nil)
	if err != nil {
		return nil
	}
	hresp, err := c.client.Do(req)
	if err != nil {
		return nil
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Epoch *struct {
			Seq uint64 `json:"seq"`
		} `json:"epoch"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&body); err != nil || body.Epoch == nil {
		return nil
	}
	return &body.Epoch.Seq
}

// --- metrics -----------------------------------------------------------

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "use GET", http.StatusMethodNotAllowed)
		return
	}
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("pathcost_coordinator_requests_served_total", "Requests answered 2xx.", c.served.Load())
	counter("pathcost_coordinator_requests_rejected_total", "Requests answered 4xx/5xx.", c.rejected.Load())
	counter("pathcost_coordinator_requests_abandoned_total", "Clients gone before composition started.", c.abandoned.Load())
	counter("pathcost_coordinator_requests_shed_total", "Requests answered 429 by the MaxQueue load shedder.", c.shed.Load())
	counter("pathcost_coordinator_hedges_total", "Second legs launched against slow or failed shard calls.", c.hedges.Load())
	fmt.Fprintf(&b, "# HELP pathcost_coordinator_uptime_seconds Seconds since the coordinator started.\n"+
		"# TYPE pathcost_coordinator_uptime_seconds gauge\npathcost_coordinator_uptime_seconds %g\n",
		time.Since(c.start).Seconds())
	fmt.Fprintf(&b, "# HELP pathcost_coordinator_shard_healthy Last known group health per region (1 while any replica is up).\n"+
		"# TYPE pathcost_coordinator_shard_healthy gauge\n")
	for _, ss := range c.shards {
		v := 0
		if ss.healthy() {
			v = 1
		}
		fmt.Fprintf(&b, "pathcost_coordinator_shard_healthy{region=%q} %d\n", fmt.Sprint(ss.region), v)
	}
	fmt.Fprintf(&b, "# HELP pathcost_coordinator_replica_healthy Last known replica health (1 healthy, 0 not).\n"+
		"# TYPE pathcost_coordinator_replica_healthy gauge\n")
	for _, ss := range c.shards {
		for _, rs := range ss.replicas {
			v := 0
			if rs.healthy.Load() {
				v = 1
			}
			fmt.Fprintf(&b, "pathcost_coordinator_replica_healthy{region=%q,replica=%q} %d\n",
				fmt.Sprint(ss.region), rs.base, v)
		}
	}
	fmt.Fprintf(&b, "# HELP pathcost_coordinator_shard_calls_total Call legs per replica.\n"+
		"# TYPE pathcost_coordinator_shard_calls_total counter\n")
	for _, ss := range c.shards {
		for _, rs := range ss.replicas {
			fmt.Fprintf(&b, "pathcost_coordinator_shard_calls_total{region=%q,replica=%q} %d\n",
				fmt.Sprint(ss.region), rs.base, rs.calls.Load())
		}
	}
	fmt.Fprintf(&b, "# HELP pathcost_coordinator_breaker_open Replica circuit breaker state (1 open, 0 closed).\n"+
		"# TYPE pathcost_coordinator_breaker_open gauge\n")
	now := time.Now()
	for _, ss := range c.shards {
		for _, rs := range ss.replicas {
			v := 0
			if !rs.admitted(now) {
				v = 1
			}
			fmt.Fprintf(&b, "pathcost_coordinator_breaker_open{region=%q,replica=%q} %d\n",
				fmt.Sprint(ss.region), rs.base, v)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
