package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/api"
)

// normalize re-marshals a JSON response with its timing zeroed, so two
// servers' answers can be compared byte for byte. Everything else —
// float formatting included — must match exactly.
func normalize(t testing.TB, kind string, data []byte) []byte {
	t.Helper()
	var v any
	switch kind {
	case "distribution":
		r := &api.DistributionResponse{}
		if err := json.Unmarshal(data, r); err != nil {
			t.Fatalf("decoding %s response %q: %v", kind, data, err)
		}
		r.EvalUS = 0
		v = r
	case "route":
		r := &api.RouteResponse{}
		if err := json.Unmarshal(data, r); err != nil {
			t.Fatalf("decoding %s response %q: %v", kind, data, err)
		}
		r.EvalUS = 0
		v = r
	case "topk":
		r := &api.TopKResponse{}
		if err := json.Unmarshal(data, r); err != nil {
			t.Fatalf("decoding %s response %q: %v", kind, data, err)
		}
		v = r // topk entries carry no timing: compare verbatim
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return out
}

// TestCoordinatorByteIdenticalToUnion is the differential harness the
// sharded tier's correctness rests on: for 2/3/4-way partitions, a
// random distribution workload answered by the coordinator must be
// byte-identical — status and body — to a single process serving the
// union model, cold and warm, for every composable method.
func TestCoordinatorByteIdenticalToUnion(t *testing.T) {
	sys := testSystem(t)
	for _, k := range []int{2, 3, 4} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			f := startFleet(t, k, nil)
			paths := queryPaths(t, sys, 30, int64(100+k))
			depart := 8 * 3600.0
			crossed := 0
			// Two passes: the warm pass hits the shards' synopsis/memo
			// state populated by the cold one, which must not change a
			// single byte.
			for pass, label := range []string{"cold", "warm"} {
				for i, p := range paths {
					multi := len(f.part.SegmentPath(sys.Graph, p)) > 1
					if multi && pass == 0 {
						crossed++
					}
					for _, m := range []string{"OD", "HP", "LB"} {
						req := api.DistributionRequest{
							Path: edgeIDs(p), Depart: depart, Method: m, Budget: 1800,
						}
						cCode, cBody := postRaw(t, f.coordTS.URL+"/v1/distribution", req)
						uCode, uBody := postRaw(t, f.unionTS.URL+"/v1/distribution", req)
						if cCode != uCode {
							t.Fatalf("%s path %d %s: coordinator=%d union=%d (%s vs %s)",
								label, i, m, cCode, uCode, cBody, uBody)
						}
						if cCode != http.StatusOK {
							continue
						}
						cn, un := normalize(t, "distribution", cBody), normalize(t, "distribution", uBody)
						if !bytes.Equal(cn, un) {
							t.Fatalf("%s path %d %s (multi=%v): coordinator diverged from union\ncoord: %s\nunion: %s",
								label, i, m, multi, cn, un)
						}
					}
				}
			}
			if crossed == 0 {
				t.Fatal("workload crossed no region cut: differential test is vacuous")
			}
		})
	}
}

// TestCoordinatorRDSemantics: RD draws one decomposition over the
// whole path, so a single-region query is proxied whole (byte-equal to
// the owning shard) and a cross-region one is a 422, never a wrong
// answer.
func TestCoordinatorRDSemantics(t *testing.T) {
	sys := testSystem(t)
	f := startFleet(t, 3, nil)
	depart := 8 * 3600.0

	in := inRegionPath(t, f, sys)
	req := api.DistributionRequest{Path: edgeIDs(in), Depart: depart, Method: "RD"}
	cCode, cBody := postRaw(t, f.coordTS.URL+"/v1/distribution", req)
	region := f.part.SegmentPath(sys.Graph, in)[0].Region
	sCode, sBody := postRaw(t, f.shardTS[region].URL+"/v1/distribution", req)
	if cCode != sCode {
		t.Fatalf("single-region RD: coordinator=%d shard=%d", cCode, sCode)
	}
	if cCode == http.StatusOK && !bytes.Equal(normalize(t, "distribution", cBody), normalize(t, "distribution", sBody)) {
		t.Fatalf("single-region RD diverged from owning shard:\n%s\nvs\n%s", cBody, sBody)
	}

	cross := crossRegionPath(t, f, sys)
	code, body := postRaw(t, f.coordTS.URL+"/v1/distribution",
		api.DistributionRequest{Path: edgeIDs(cross), Depart: depart, Method: "RD"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("cross-region RD = %d (%s), want 422", code, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || !bytes.Contains(body, []byte("cannot be composed")) {
		t.Fatalf("cross-region RD error malformed: %s", body)
	}
}

// TestCoordinatorProxiesRoutingToOwningShard: route/topk run
// region-local routing on the shard owning the source vertex; the
// coordinator's answer must be that shard's answer, byte for byte.
func TestCoordinatorProxiesRoutingToOwningShard(t *testing.T) {
	sys := testSystem(t)
	f := startFleet(t, 2, nil)
	depart := 8 * 3600.0

	// Pick a source/dest pair inside one region so the owning shard can
	// actually route it.
	var src, dst int64
	var budget float64
	found := false
	for _, p := range queryPaths(t, sys, 100, 17) {
		if len(f.part.SegmentPath(sys.Graph, p)) != 1 {
			continue
		}
		e0, eN := sys.Graph.Edge(p[0]), sys.Graph.Edge(p[len(p)-1])
		if e0.From == eN.To {
			continue
		}
		src, dst = int64(e0.From), int64(eN.To)
		budget = 3600
		found = true
		break
	}
	if !found {
		t.Fatal("no single-region routing pair found")
	}
	region := f.part.Vertex[src]

	rreq := api.RouteRequest{Source: src, Dest: dst, Depart: depart, Budget: budget}
	cCode, cBody := postRaw(t, f.coordTS.URL+"/v1/route", rreq)
	sCode, sBody := postRaw(t, f.shardTS[region].URL+"/v1/route", rreq)
	if cCode != sCode {
		t.Fatalf("route: coordinator=%d shard=%d (%s vs %s)", cCode, sCode, cBody, sBody)
	}
	if cCode == http.StatusOK && !bytes.Equal(normalize(t, "route", cBody), normalize(t, "route", sBody)) {
		t.Fatalf("route diverged from owning shard:\n%s\nvs\n%s", cBody, sBody)
	}

	treq := api.TopKRequest{RouteRequest: rreq, K: 3}
	cCode, cBody = postRaw(t, f.coordTS.URL+"/v1/topk", treq)
	sCode, sBody = postRaw(t, f.shardTS[region].URL+"/v1/topk", treq)
	if cCode != sCode {
		t.Fatalf("topk: coordinator=%d shard=%d", cCode, sCode)
	}
	if cCode == http.StatusOK && !bytes.Equal(normalize(t, "topk", cBody), normalize(t, "topk", sBody)) {
		t.Fatalf("topk diverged from owning shard:\n%s\nvs\n%s", cBody, sBody)
	}
}

// TestCoordinatorBatchMatchesUnion sends one mixed batch through the
// coordinator and checks each distribution entry against the union
// server's batch answer for the same queries.
func TestCoordinatorBatchMatchesUnion(t *testing.T) {
	sys := testSystem(t)
	f := startFleet(t, 3, nil)
	depart := 8 * 3600.0

	var queries []api.BatchQuery
	for _, p := range queryPaths(t, sys, 8, 23) {
		queries = append(queries, api.BatchQuery{
			Kind: "distribution", Path: edgeIDs(p), Depart: depart, Budget: 1200,
		})
	}
	// One invalid entry: must fail alone, identically on both tiers.
	queries = append(queries, api.BatchQuery{Kind: "distribution", Path: []int64{1 << 40}, Depart: depart})

	breq := api.BatchRequest{Queries: queries}
	cCode, cBody := postRaw(t, f.coordTS.URL+"/v1/batch", breq)
	uCode, uBody := postRaw(t, f.unionTS.URL+"/v1/batch", breq)
	if cCode != http.StatusOK || uCode != http.StatusOK {
		t.Fatalf("batch: coordinator=%d union=%d", cCode, uCode)
	}
	var cResp, uResp api.BatchResponse
	if err := json.Unmarshal(cBody, &cResp); err != nil {
		t.Fatalf("decoding coordinator batch: %v", err)
	}
	if err := json.Unmarshal(uBody, &uResp); err != nil {
		t.Fatalf("decoding union batch: %v", err)
	}
	if len(cResp.Results) != len(queries) || len(uResp.Results) != len(queries) {
		t.Fatalf("result counts %d/%d for %d queries", len(cResp.Results), len(uResp.Results), len(queries))
	}
	for i := range queries {
		cr, ur := cResp.Results[i], uResp.Results[i]
		if cr.Status != ur.Status {
			t.Errorf("entry %d: coordinator=%d union=%d (%s vs %s)", i, cr.Status, ur.Status, cr.Error, ur.Error)
			continue
		}
		if cr.Status != http.StatusOK {
			continue
		}
		cr.Distribution.EvalUS = 0
		ur.Distribution.EvalUS = 0
		cb, _ := json.Marshal(cr.Distribution)
		ub, _ := json.Marshal(ur.Distribution)
		if !bytes.Equal(cb, ub) {
			t.Errorf("entry %d diverged:\n%s\nvs\n%s", i, cb, ub)
		}
	}
}

// TestCoordinatorRejectsClientStateKind: the partial-state protocol is
// shard-internal; a client must not be able to inject states.
func TestCoordinatorRejectsClientStateKind(t *testing.T) {
	f := startFleet(t, 2, nil)
	code, body := postRaw(t, f.coordTS.URL+"/v1/batch", api.BatchRequest{
		Queries: []api.BatchQuery{{Kind: "state", Path: []int64{0}, Depart: 0}},
	})
	if code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	var resp api.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Results) != 1 {
		t.Fatalf("batch response malformed: %s", body)
	}
	if resp.Results[0].Status != http.StatusBadRequest {
		t.Fatalf("client state kind = %d, want 400", resp.Results[0].Status)
	}
}

// TestCoordinatorStatsAndMetrics covers the coordinator's operational
// surface: /v1/stats shard table and the Prometheus scrape.
func TestCoordinatorStatsAndMetrics(t *testing.T) {
	sys := testSystem(t)
	f := startFleet(t, 2, nil)
	p := crossRegionPath(t, f, sys)
	if code, _ := postRaw(t, f.coordTS.URL+"/v1/distribution",
		api.DistributionRequest{Path: edgeIDs(p), Depart: 8 * 3600}); code != http.StatusOK {
		t.Fatalf("distribution = %d", code)
	}

	resp, err := http.Get(f.coordTS.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		K      int `json:"k"`
		Shards []struct {
			Region   int  `json:"region"`
			Healthy  bool `json:"healthy"`
			Replicas []struct {
				Base        string `json:"base"`
				Healthy     bool   `json:"healthy"`
				Calls       uint64 `json:"calls"`
				BreakerOpen bool   `json:"breaker_open"`
			} `json:"replicas"`
			Epoch *uint64
		} `json:"shards"`
		Served uint64 `json:"served"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	resp.Body.Close()
	if stats.K != 2 || len(stats.Shards) != 2 || stats.Served == 0 {
		t.Fatalf("stats malformed: %+v", stats)
	}
	totalCalls := uint64(0)
	for _, ss := range stats.Shards {
		if !ss.Healthy {
			t.Errorf("shard %d reported unhealthy in a healthy fleet", ss.Region)
		}
		if len(ss.Replicas) != 1 {
			t.Fatalf("shard %d lists %d replicas, want 1", ss.Region, len(ss.Replicas))
		}
		if ss.Replicas[0].BreakerOpen {
			t.Errorf("shard %d replica breaker open in a healthy fleet", ss.Region)
		}
		totalCalls += ss.Replicas[0].Calls
	}
	if totalCalls == 0 {
		t.Error("no shard calls recorded after a cross-region query")
	}

	mresp, err := http.Get(f.coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", mresp.StatusCode)
	}
	for _, want := range []string{
		"pathcost_coordinator_requests_served_total",
		"pathcost_coordinator_shard_healthy{region=\"0\"} 1",
		"pathcost_coordinator_shard_calls_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestProbeObservesShardDeath exercises probeOnce directly: a live
// shard probes healthy, a dead one flips the flag, and recovery flips
// it back.
func TestProbeObservesShardDeath(t *testing.T) {
	f := startFleet(t, 2, nil)
	rs := f.coord.shards[0].replicas[0]
	f.coord.probeOnce(t.Context(), rs)
	if !rs.healthy.Load() {
		t.Fatal("live shard probed unhealthy")
	}
	f.shardTS[0].Close()
	f.coord.probeOnce(t.Context(), rs)
	if rs.healthy.Load() {
		t.Fatal("dead shard probed healthy")
	}
	if rs.probes.Load() != 2 || rs.probeFailures.Load() != 1 {
		t.Fatalf("probe counters = %d/%d, want 2/1", rs.probes.Load(), rs.probeFailures.Load())
	}
}
