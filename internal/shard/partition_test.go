package shard

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	pathcost "repro"
	"repro/internal/hist"
)

func TestNewPartitionDeterministicAndComplete(t *testing.T) {
	sys := testSystem(t)
	for _, k := range []int{1, 2, 3, 4} {
		p1, err := NewPartition(sys.Graph, k, sys.Params)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		p2, err := NewPartition(sys.Graph, k, sys.Params)
		if err != nil {
			t.Fatalf("k=%d second run: %v", k, err)
		}
		if !reflect.DeepEqual(p1.Vertex, p2.Vertex) {
			t.Fatalf("k=%d: partition is not deterministic", k)
		}
		if len(p1.Vertex) != sys.Graph.NumVertices() {
			t.Fatalf("k=%d: %d assignments for %d vertices", k, len(p1.Vertex), sys.Graph.NumVertices())
		}
		seen := make([]bool, k)
		for v, r := range p1.Vertex {
			if r < 0 || r >= k {
				t.Fatalf("k=%d: vertex %d in region %d", k, v, r)
			}
			seen[r] = true
		}
		for r, ok := range seen {
			if !ok {
				t.Fatalf("k=%d: region %d owns no vertices", k, r)
			}
		}
	}
}

func TestNewPartitionRejectsBadK(t *testing.T) {
	sys := testSystem(t)
	if _, err := NewPartition(sys.Graph, 0, sys.Params); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewPartition(sys.Graph, sys.Graph.NumVertices()+1, sys.Params); err == nil {
		t.Error("k>n accepted")
	}
}

func TestSegmentPathReconstructsAndIsMaximal(t *testing.T) {
	sys := testSystem(t)
	part, err := NewPartition(sys.Graph, 3, sys.Params)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range queryPaths(t, sys, 50, 3) {
		segs := part.SegmentPath(sys.Graph, p)
		var rebuilt pathcost.Path
		for i, s := range segs {
			if len(s.Path) == 0 {
				t.Fatalf("empty segment for %v", p)
			}
			for _, e := range s.Path {
				if part.EdgeRegion(sys.Graph, e) != s.Region {
					t.Fatalf("segment %d claims region %d but edge %d is in %d",
						i, s.Region, e, part.EdgeRegion(sys.Graph, e))
				}
			}
			if i > 0 && segs[i-1].Region == s.Region {
				t.Fatalf("adjacent segments share region %d: not maximal", s.Region)
			}
			rebuilt = append(rebuilt, s.Path...)
		}
		if !reflect.DeepEqual(rebuilt, p) {
			t.Fatalf("segments do not concatenate to the path: %v vs %v", rebuilt, p)
		}
	}
	if segs := part.SegmentPath(sys.Graph, nil); segs != nil {
		t.Fatalf("empty path segmented to %v", segs)
	}
}

func TestPartitionWriteReadRoundTrip(t *testing.T) {
	sys := testSystem(t)
	part, err := NewPartition(sys.Graph, 3, sys.Params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := part.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadPartition(bytes.NewReader(buf.Bytes()), sys.Graph)
	if err != nil {
		t.Fatalf("ReadPartition: %v", err)
	}
	if got.K != part.K || !reflect.DeepEqual(got.Vertex, part.Vertex) {
		t.Fatal("round-trip changed the region assignment")
	}
	// The params line carries the model file's 10 fields; Auto keeps
	// only Folds (the rest is training-time tuning the serving tier
	// never reads).
	want := part.Params
	want.Auto = hist.AutoConfig{Folds: part.Params.Auto.Folds}
	want.Workers = 0
	if got.Params != want {
		t.Fatalf("round-trip changed params:\n%+v\nvs\n%+v", got.Params, want)
	}
}

func TestReadPartitionRejectsGarbage(t *testing.T) {
	sys := testSystem(t)
	part, err := NewPartition(sys.Graph, 2, sys.Params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := part.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"empty":           "",
		"wrong version":   strings.Replace(good, partitionVersion, "partition-v9", 1),
		"no params":       strings.SplitAfter(good, "\n")[0],
		"truncated":       good[:len(good)/2],
		"missing end":     strings.Replace(good, "end-partition\n", "", 1),
		"region range":    strings.Replace(good, "region 0", "region 7", 1),
		"negative region": strings.Replace(good, "region 0", "region -1", 1),
		"junk line":       strings.Replace(good, "end-partition", "junk 1 2 3\nend-partition", 1),
		"binary":          "\x00\xff\x13\x37",
	}
	for name, data := range cases {
		if _, err := ReadPartition(strings.NewReader(data), sys.Graph); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSplitModelPartitionsVariables(t *testing.T) {
	sys := testSystem(t)
	part, err := NewPartition(sys.Graph, 3, sys.Params)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitModel(sys, part)
	if err != nil {
		t.Fatalf("SplitModel: %v", err)
	}
	if len(split.Shards) != 3 {
		t.Fatalf("%d shards, want 3", len(split.Shards))
	}
	// The synthesized workload concentrates trips, so a region may
	// legitimately own zero trajectory-backed variables (it still
	// serves its edges through the loader's fallbacks); what must hold
	// is that the shards partition exactly the union's variables.
	shardVars, unionVars, totalVars := 0, 0, 0
	for _, ss := range split.Shards {
		shardVars += ss.Stats().TotalVariables()
	}
	unionVars = split.Union.Stats().TotalVariables()
	totalVars = sys.Stats().TotalVariables()
	if shardVars != unionVars {
		t.Errorf("shards hold %d variables, union holds %d — must be a disjoint union", shardVars, unionVars)
	}
	if unionVars+split.Dropped != totalVars {
		t.Errorf("union %d + dropped %d != total %d", unionVars, split.Dropped, totalVars)
	}
	if split.Dropped == 0 {
		t.Error("no variables dropped: the partition cut nothing, test is vacuous")
	}

	// A written shard model round-trips through the standard loader
	// with its variable count intact — the pathcostd -model contract.
	var buf bytes.Buffer
	if err := WriteShardModel(&buf, split.Shards[1]); err != nil {
		t.Fatalf("WriteShardModel: %v", err)
	}
	loaded, err := pathcost.LoadSystem(sys.Graph, nil, &buf)
	if err != nil {
		t.Fatalf("loading written shard model: %v", err)
	}
	if got, want := loaded.Stats().TotalVariables(), split.Shards[1].Stats().TotalVariables(); got != want {
		t.Errorf("loaded shard model has %d variables, want %d", got, want)
	}
}
