package shard

import (
	"bytes"
	"fmt"
	"io"

	pathcost "repro"
	"repro/internal/core"
)

// SplitResult is a model split by region: Shards[r] serves region r,
// and Union is the reference model a single process would serve — the
// disjoint union of every shard's variables. Cross-region variables
// appear in neither: a variable whose path crosses a region cut
// cannot live on any one shard, so the sharded deployment's promise
// is byte-identity with a single process serving Union, not with the
// unsplit original. The splitter reports how many variables the cuts
// cost so operators can judge a partition before deploying it.
type SplitResult struct {
	Shards []*pathcost.System
	Union  *pathcost.System
	// Dropped counts variables whose path crossed a region cut.
	Dropped int
	// DroppedSynopsis counts synopsis entries lost the same way.
	DroppedSynopsis int
}

// SplitModel cuts sys's trained model along part. Each output system
// is built by serializing the filtered model + synopsis and loading
// it back — the exact loader path a shard daemon takes with a model
// file — so a split-in-process system and a shard booted from a
// written file behave identically, byte for byte.
func SplitModel(sys *pathcost.System, part *Partition) (*SplitResult, error) {
	g := sys.Graph
	if len(part.Vertex) != g.NumVertices() {
		return nil, fmt.Errorf("shard: partition is for %d vertices, network has %d", len(part.Vertex), g.NumVertices())
	}
	h := sys.Hybrid()
	syn := sys.Synopsis()

	total := 0
	h.ForEachVariable(func(*core.Variable) { total++ })

	res := &SplitResult{Shards: make([]*pathcost.System, part.K)}
	kept := 0
	for r := 0; r < part.K; r++ {
		region := r
		fh := h.FilterVariables(func(v *core.Variable) bool {
			vr, ok := part.PathInRegion(g, v.Path)
			return ok && vr == region
		})
		var fs *core.SynopsisStore
		if syn != nil {
			var err error
			fs, err = syn.Filter(func(p pathcost.Path) bool {
				vr, ok := part.PathInRegion(g, p)
				return ok && vr == region
			})
			if err != nil {
				return nil, fmt.Errorf("shard: filtering synopsis for region %d: %w", r, err)
			}
		}
		shardSys, err := roundTrip(g, fh, fs)
		if err != nil {
			return nil, fmt.Errorf("shard: building region %d: %w", r, err)
		}
		res.Shards[r] = shardSys
		shardSys.Hybrid().ForEachVariable(func(*core.Variable) { kept++ })
	}

	uh := h.FilterVariables(func(v *core.Variable) bool {
		_, ok := part.PathInRegion(g, v.Path)
		return ok
	})
	var us *core.SynopsisStore
	if syn != nil {
		before := syn.Len()
		var err error
		us, err = syn.Filter(func(p pathcost.Path) bool {
			_, ok := part.PathInRegion(g, p)
			return ok
		})
		if err != nil {
			return nil, fmt.Errorf("shard: filtering union synopsis: %w", err)
		}
		res.DroppedSynopsis = before - us.Len()
	}
	union, err := roundTrip(g, uh, us)
	if err != nil {
		return nil, fmt.Errorf("shard: building union model: %w", err)
	}
	res.Union = union
	res.Dropped = total - kept
	return res, nil
}

// WriteShardModel writes one split system's model file, loadable by
// pathcostd -model.
func WriteShardModel(w io.Writer, sys *pathcost.System) error { return sys.SaveModel(w) }

// roundTrip serializes a filtered model and loads it back through the
// standard loader, yielding a fresh System with loader-identical
// in-memory state.
func roundTrip(g *pathcost.Graph, h *core.HybridGraph, syn *core.SynopsisStore) (*pathcost.System, error) {
	var buf bytes.Buffer
	if err := h.WriteModelSynopsis(&buf, syn); err != nil {
		return nil, err
	}
	return pathcost.LoadSystem(g, nil, &buf)
}
