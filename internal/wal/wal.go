package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/gps"
)

const (
	frameMagic   = 0x57414C31 // "WAL1"
	frameHeader  = 12         // magic + length + crc
	checkpointV1 = "ckpt-v1"

	// maxPayload bounds one frame's payload so a corrupt length field
	// cannot force a huge allocation during replay.
	maxPayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one appended batch with its log sequence number.
type Record struct {
	Seq   uint64
	Batch []*gps.Matched
}

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (0 = 4 MiB).
	SegmentBytes int64
	// Sync fsyncs after every append. Off by default: the tier's
	// durability target is process crashes, which the OS page cache
	// survives; turn it on when the disk must survive power loss too.
	Sync bool
}

// Stats snapshots a log's state.
type Stats struct {
	// LastSeq is the highest sequence number ever appended (or
	// recovered); Checkpoint is the highest sequence covered by a
	// persisted model.
	LastSeq    uint64
	Checkpoint uint64
	// Segments and Bytes describe the on-disk footprint.
	Segments int
	Bytes    int64
	// Appends counts Append calls this process made; Truncations
	// counts TruncateThrough calls; Discarded counts torn or corrupt
	// frames dropped during Open's replay scan.
	Appends     uint64
	Truncations uint64
	Discarded   int
}

// segMeta is one closed or active segment's bookkeeping.
type segMeta struct {
	path        string
	first, last uint64
	bytes       int64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends are serialized internally.
type Log struct {
	dir string
	opt Options

	mu          sync.Mutex
	f           *os.File // active segment, nil until first Append
	active      segMeta
	closed      []segMeta
	nextSeq     uint64
	checkpoint  uint64
	pending     []Record
	appends     uint64
	truncations uint64
	discarded   int
}

// Open opens (creating if needed) the log directory, scans every
// segment, and holds the records above the checkpoint for Pending.
// Corrupt or torn frames are discarded — scanning stops at the first
// bad frame of a segment, and any later segments are still scanned
// (their frames are independent). Open never fails on bad record
// bytes, only on I/O errors.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, nextSeq: 1}

	ckpt, err := readCheckpoint(filepath.Join(dir, "checkpoint"))
	if err != nil {
		return nil, err
	}
	l.checkpoint = ckpt
	if ckpt >= l.nextSeq {
		l.nextSeq = ckpt + 1
	}

	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		recs, discarded := DecodeSegment(data)
		l.discarded += discarded
		meta := segMeta{path: path, bytes: int64(len(data))}
		for _, r := range recs {
			if meta.first == 0 {
				meta.first = r.Seq
			}
			if r.Seq > meta.last {
				meta.last = r.Seq
			}
			if r.Seq >= l.nextSeq {
				l.nextSeq = r.Seq + 1
			}
			if r.Seq > ckpt {
				l.pending = append(l.pending, r)
			}
		}
		l.closed = append(l.closed, meta)
	}
	sort.Slice(l.pending, func(i, j int) bool { return l.pending[i].Seq < l.pending[j].Seq })
	return l, nil
}

// Pending returns the records recovered at Open whose sequence exceeds
// the checkpoint, in sequence order — the batches a crashed process
// staged but never persisted. The slice is owned by the caller.
func (l *Log) Pending() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.pending
	l.pending = nil
	return out
}

// Append writes one batch as a single frame and reports its sequence
// number. The frame is on disk (modulo OS cache; see Options.Sync)
// before Append returns, so callers may acknowledge the batch.
func (l *Log) Append(batch []*gps.Matched) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.active.bytes >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.nextSeq
	frame := encodeFrame(seq, batch)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: appending record %d: %w", seq, err)
	}
	if l.opt.Sync {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: syncing record %d: %w", seq, err)
		}
	}
	l.nextSeq = seq + 1
	l.appends++
	l.active.bytes += int64(len(frame))
	if l.active.first == 0 {
		l.active.first = seq
	}
	l.active.last = seq
	return seq, nil
}

// rotateLocked closes the active segment and opens a fresh one named
// by the next sequence number. Also used for the first append — a new
// process never appends to an old segment, so a torn tail left by a
// crash can never be followed by live frames.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.closed = append(l.closed, l.active)
		l.f = nil
	}
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%016x.seg", l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	l.f = f
	l.active = segMeta{path: path}
	return nil
}

// TruncateThrough records that every sequence number up to and
// including seq is durably reflected in a persisted model: the
// checkpoint file is rewritten atomically, and closed segments whose
// records are all covered are deleted. Call it only after the model
// checkpoint itself is safely on disk.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.checkpoint {
		return nil
	}
	if err := writeCheckpoint(filepath.Join(l.dir, "checkpoint"), seq); err != nil {
		return err
	}
	l.checkpoint = seq
	l.truncations++
	kept := l.closed[:0]
	for _, m := range l.closed {
		if m.last != 0 && m.last <= seq {
			if err := os.Remove(m.path); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		kept = append(kept, m)
	}
	l.closed = kept
	return nil
}

// Checkpoint returns the current checkpoint sequence.
func (l *Log) Checkpoint() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint
}

// Stats snapshots the log's counters and footprint.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		LastSeq:     l.nextSeq - 1,
		Checkpoint:  l.checkpoint,
		Appends:     l.appends,
		Truncations: l.truncations,
		Discarded:   l.discarded,
	}
	for _, m := range l.closed {
		st.Segments++
		st.Bytes += m.bytes
	}
	if l.f != nil {
		st.Segments++
		st.Bytes += l.active.bytes
	}
	return st
}

// Close closes the active segment. The log must not be used after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// segmentNames lists the directory's segment files in name order,
// which is first-sequence order by construction.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

func readCheckpoint(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) != 2 || fields[0] != checkpointV1 {
		// A torn checkpoint write lost at most a truncation marker;
		// replaying extra records is safe (see the package comment), so
		// treat it as absent rather than refusing to open.
		return 0, nil
	}
	seq, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, nil
	}
	return seq, nil
}

func writeCheckpoint(path string, seq uint64) error {
	tmp := path + ".tmp"
	body := checkpointV1 + " " + strconv.FormatUint(seq, 10) + "\n"
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// encodeFrame builds the on-disk frame for one record.
func encodeFrame(seq uint64, batch []*gps.Matched) []byte {
	payload := encodePayload(seq, batch)
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], frameMagic)
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	return frame
}

// DecodeSegment scans one segment's bytes, returning every intact
// record and the number of frames discarded as torn or corrupt.
// Scanning stops at the first bad frame: bytes after it cannot be
// trusted to align. It never panics, whatever the input — the fuzz
// target FuzzWALReplay pins that.
func DecodeSegment(data []byte) (recs []Record, discarded int) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			discarded++
			return recs, discarded
		}
		if binary.LittleEndian.Uint32(data[off:]) != frameMagic {
			discarded++
			return recs, discarded
		}
		n := int(binary.LittleEndian.Uint32(data[off+4:]))
		if n > maxPayload || len(data)-off-frameHeader < n {
			discarded++
			return recs, discarded
		}
		crc := binary.LittleEndian.Uint32(data[off+8:])
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			discarded++
			return recs, discarded
		}
		rec, ok := decodePayload(payload)
		if !ok {
			// An intact CRC over a malformed payload means a writer bug
			// or hand-edited file, not a torn tail; still never trust
			// what follows.
			discarded++
			return recs, discarded
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, discarded
}
