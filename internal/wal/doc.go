// Package wal is the ingest write-ahead log: an append-only,
// checksummed, segment-rotated record of every staged trajectory
// batch, written before the batch is acknowledged. A crash between
// staging and the next epoch publish then loses nothing — boot replays
// the unpublished records and the recovered daemon serves the same
// epochs it would have served without the crash.
//
// Format. A log is a directory of segment files named
// wal-<firstseq>.seg plus one checkpoint file. Each segment is a
// sequence of frames:
//
//	magic   uint32  "WAL1" (0x57414C31), little-endian
//	length  uint32  payload bytes
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload length bytes
//
// The payload is one Record: a sequence number followed by a binary
// encoding of its matched-trajectory batch. Torn or corrupt tails —
// the expected shape of a crash mid-append — fail the CRC or run out
// of bytes and are cleanly discarded: replay stops at the last intact
// frame and never panics, whatever the bytes (see FuzzWALReplay).
//
// The checkpoint file holds the highest sequence number whose records
// are durably reflected in a persisted model. TruncateThrough writes
// it atomically (temp + rename) and deletes every segment whose
// records are all covered; replay skips records at or below it.
// Without checkpointing, records are retained and replayed against the
// base model — exact-mode epoch builds are batching-invariant, so
// replay-then-publish reproduces the uninterrupted model bytes either
// way.
package wal
