package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gps"
	"repro/internal/graph"
)

func testBatch(id int64, n int, emissions bool) []*gps.Matched {
	out := make([]*gps.Matched, n)
	for i := range out {
		m := &gps.Matched{
			ID:        id + int64(i),
			Depart:    28800.5 + float64(i),
			Path:      graph.Path{graph.EdgeID(i), graph.EdgeID(i + 1), graph.EdgeID(i + 2)},
			EdgeCosts: []float64{1.5, 2.25, 3.125},
		}
		if emissions {
			m.Emissions = []float64{0.1, 0.2, 0.3}
		}
		out[i] = m
	}
	return out
}

func mustOpen(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	batches := [][]*gps.Matched{
		testBatch(1, 3, false),
		testBatch(100, 1, true),
		testBatch(200, 5, false),
	}
	var seqs []uint64
	for _, b := range batches {
		seq, err := l.Append(b)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		seqs = append(seqs, seq)
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
		t.Fatalf("seqs = %v, want 1..3", seqs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir, Options{})
	pending := r.Pending()
	if len(pending) != len(batches) {
		t.Fatalf("replayed %d records, want %d", len(pending), len(batches))
	}
	for i, rec := range pending {
		if rec.Seq != seqs[i] {
			t.Errorf("record %d seq = %d, want %d", i, rec.Seq, seqs[i])
		}
		if !reflect.DeepEqual(rec.Batch, batches[i]) {
			t.Errorf("record %d batch differs after replay:\n got %+v\nwant %+v", i, rec.Batch[0], batches[i][0])
		}
	}
	if again := r.Pending(); again != nil {
		t.Errorf("second Pending returned %d records, want none", len(again))
	}
}

func TestTruncateThroughSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(testBatch(int64(i*10), 2, false)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.TruncateThrough(3); err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	l.Close()

	r := mustOpen(t, dir, Options{})
	pending := r.Pending()
	if len(pending) != 2 {
		t.Fatalf("replayed %d records after checkpoint 3, want 2", len(pending))
	}
	if pending[0].Seq != 4 || pending[1].Seq != 5 {
		t.Fatalf("replayed seqs %d, %d; want 4, 5", pending[0].Seq, pending[1].Seq)
	}
	// New appends continue the sequence, never reusing a number.
	seq, err := r.Append(testBatch(999, 1, false))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if seq != 6 {
		t.Fatalf("post-recovery seq = %d, want 6", seq)
	}
}

func TestTruncateDeletesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every append rotates.
	l := mustOpen(t, dir, Options{SegmentBytes: 1})
	for i := 0; i < 4; i++ {
		if _, err := l.Append(testBatch(int64(i), 1, false)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.TruncateThrough(3); err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	l.Close()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Segments 1..3 are covered and deleted; segment 4 survives.
	if len(names) != 1 {
		t.Fatalf("%d segments on disk after truncation, want 1: %v", len(names), names)
	}
	r := mustOpen(t, dir, Options{})
	if p := r.Pending(); len(p) != 1 || p[0].Seq != 4 {
		t.Fatalf("pending after truncation = %+v, want one record with seq 4", p)
	}
}

// TestTornTailDiscarded simulates a crash mid-append: the last frame
// is cut short. Replay must keep every intact record and drop the torn
// one without error.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testBatch(int64(i), 2, false)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	if r.Stats().Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", r.Stats().Discarded)
	}
	pending := r.Pending()
	if len(pending) != 2 {
		t.Fatalf("replayed %d records from torn segment, want 2", len(pending))
	}
	// The torn record never became durable, so its sequence number is
	// free again; the next append claims it in a fresh segment.
	seq, err := r.Append(testBatch(50, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Errorf("seq after torn tail = %d, want 3", seq)
	}
}

// TestCorruptMiddleRecordStopsSegmentScan flips a payload byte in the
// middle record: it and everything after it in that segment drop, and
// nothing panics.
func TestCorruptMiddleRecordStopsSegmentScan(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	var offsets []int64
	for i := 0; i < 3; i++ {
		st := l.Stats()
		offsets = append(offsets, st.Bytes)
		if _, err := l.Append(testBatch(int64(i), 2, false)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, _ := segmentNames(dir)
	path := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(path)
	data[offsets[1]+frameHeader+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	pending := r.Pending()
	if len(pending) != 1 || pending[0].Seq != 1 {
		t.Fatalf("pending after mid-segment corruption = %d records, want just record 1", len(pending))
	}
	if r.Stats().Discarded == 0 {
		t.Error("corruption not counted in Discarded")
	}
}

func TestCorruptCheckpointTreatedAsAbsent(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	l.Append(testBatch(1, 1, false))
	l.TruncateThrough(1)
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	// The segment was deleted by truncation, so replaying "everything"
	// is still nothing; the point is Open does not fail.
	if got := r.Checkpoint(); got != 0 {
		t.Errorf("checkpoint after corrupt file = %d, want 0", got)
	}
}

func TestEmptyDirIsEmptyLog(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	if p := l.Pending(); len(p) != 0 {
		t.Fatalf("fresh log has %d pending records", len(p))
	}
	st := l.Stats()
	if st.LastSeq != 0 || st.Segments != 0 {
		t.Fatalf("fresh log stats = %+v", st)
	}
}

// FuzzWALReplay pins the replayer's core promise: arbitrary bytes
// never panic it, and whatever it does return decodes to structurally
// consistent records.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("WAL1 not really a frame"))
	f.Add(encodeFrame(1, testBatch(1, 2, false)))
	f.Add(encodeFrame(7, testBatch(9, 1, true))[:20])
	long := bytes.Repeat(encodeFrame(3, testBatch(5, 3, false)), 3)
	f.Add(long)
	// A frame with a huge declared length.
	bad := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(bad[0:], frameMagic)
	binary.LittleEndian.PutUint32(bad[4:], 0xFFFFFFFF)
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := DecodeSegment(data)
		for _, r := range recs {
			for _, m := range r.Batch {
				if m == nil {
					t.Fatal("decoded nil trajectory")
				}
				if len(m.EdgeCosts) != len(m.Path) {
					t.Fatalf("decoded %d costs for %d edges", len(m.EdgeCosts), len(m.Path))
				}
				if m.Emissions != nil && len(m.Emissions) != len(m.Path) {
					t.Fatalf("decoded %d emissions for %d edges", len(m.Emissions), len(m.Path))
				}
			}
		}
	})
}
