package wal

import (
	"encoding/binary"
	"math"

	"repro/internal/gps"
	"repro/internal/graph"
)

// Payload encoding for one Record, little-endian throughout:
//
//	seq    uint64
//	count  uint32                 trajectories in the batch
//	per trajectory:
//	  id      uint64 (int64 bits)
//	  depart  uint64 (float64 bits)
//	  nedges  uint32
//	  edges   [nedges]uint32      (EdgeID values)
//	  costs   [nedges]uint64      (float64 bits)
//	  emflag  uint8               1 when emissions follow
//	  emis    [nedges]uint64      (float64 bits, emflag == 1 only)
//
// Floats travel as raw bits so a replayed trajectory is bit-identical
// to the staged one — the recovery differential test compares model
// bytes, which any rounding would break.

// maxBatchEdges bounds the per-trajectory edge count a decoder will
// allocate for; real paths are capped far lower by the API layer.
const maxBatchEdges = 1 << 20

func encodePayload(seq uint64, batch []*gps.Matched) []byte {
	n := 12
	for _, m := range batch {
		n += 8 + 8 + 4 + len(m.Path)*12 + 1
		if m.Emissions != nil {
			n += len(m.Path) * 8
		}
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batch)))
	for _, m := range batch {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.ID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Depart))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Path)))
		for _, e := range m.Path {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e))
		}
		for _, c := range m.EdgeCosts {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
		}
		if m.Emissions != nil {
			buf = append(buf, 1)
			for _, c := range m.Emissions {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
			}
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// payloadReader is a bounds-checked cursor over untrusted bytes.
type payloadReader struct {
	data []byte
	off  int
	bad  bool
}

func (r *payloadReader) u8() uint8 {
	if r.bad || r.off+1 > len(r.data) {
		r.bad = true
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.bad || r.off+4 > len(r.data) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.bad || r.off+8 > len(r.data) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func decodePayload(payload []byte) (Record, bool) {
	r := &payloadReader{data: payload}
	rec := Record{Seq: r.u64()}
	count := r.u32()
	// Reject batch counts the remaining bytes cannot possibly hold
	// before allocating (each trajectory is ≥ 21 bytes).
	if r.bad || int(count) > (len(payload)-r.off)/21+1 {
		return Record{}, false
	}
	rec.Batch = make([]*gps.Matched, 0, count)
	for i := uint32(0); i < count; i++ {
		m := &gps.Matched{
			ID:     int64(r.u64()),
			Depart: math.Float64frombits(r.u64()),
		}
		nedges := r.u32()
		if r.bad || nedges > maxBatchEdges || int(nedges) > (len(payload)-r.off)/12+1 {
			return Record{}, false
		}
		m.Path = make(graph.Path, nedges)
		for j := range m.Path {
			m.Path[j] = graph.EdgeID(r.u32())
		}
		m.EdgeCosts = make([]float64, nedges)
		for j := range m.EdgeCosts {
			m.EdgeCosts[j] = math.Float64frombits(r.u64())
		}
		if r.u8() == 1 {
			m.Emissions = make([]float64, nedges)
			for j := range m.Emissions {
				m.Emissions[j] = math.Float64frombits(r.u64())
			}
		}
		if r.bad {
			return Record{}, false
		}
		rec.Batch = append(rec.Batch, m)
	}
	if r.off != len(payload) {
		return Record{}, false
	}
	return rec, true
}
