package routing

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hist"
)

// sameBuckets asserts bucket-level identity of two distributions —
// the byte-identity guarantee the convolution memo makes.
func sameBuckets(t *testing.T, ctx string, a, b *hist.Histogram) {
	t.Helper()
	ab, bb := a.Buckets(), b.Buckets()
	if len(ab) != len(bb) {
		t.Fatalf("%s: %d vs %d buckets", ctx, len(ab), len(bb))
	}
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("%s: bucket %d differs: %+v vs %+v", ctx, i, ab[i], bb[i])
		}
	}
}

// TestMemoEquivalence proves BestPath, TopKPaths and SkylinePaths
// return byte-identical answers with the memo on and off, for every
// incremental method, across repeated queries (the second round is
// answered almost entirely from the memo).
func TestMemoEquivalence(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	plain := New(h)
	memod := New(h)
	memod.EnableMemo(4096)

	for _, m := range []core.Method{core.MethodOD, core.MethodHP, core.MethodLB} {
		q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2}
		opt := Options{Method: m, Incremental: true}
		for round := 0; round < 2; round++ {
			pb, err := plain.BestPath(q, opt)
			if err != nil {
				t.Fatalf("%s round %d: plain BestPath: %v", m, round, err)
			}
			mb, err := memod.BestPath(q, opt)
			if err != nil {
				t.Fatalf("%s round %d: memo BestPath: %v", m, round, err)
			}
			if !pb.Path.Equal(mb.Path) || pb.Prob != mb.Prob {
				t.Fatalf("%s round %d: BestPath diverged: %v p=%v vs %v p=%v",
					m, round, pb.Path, pb.Prob, mb.Path, mb.Prob)
			}
			sameBuckets(t, "BestPath dist", pb.Dist, mb.Dist)

			pk, err := plain.TopKPaths(q, 3, opt)
			if err != nil {
				t.Fatalf("%s round %d: plain TopK: %v", m, round, err)
			}
			mk, err := memod.TopKPaths(q, 3, opt)
			if err != nil {
				t.Fatalf("%s round %d: memo TopK: %v", m, round, err)
			}
			if len(pk) != len(mk) {
				t.Fatalf("%s round %d: topk lengths %d vs %d", m, round, len(pk), len(mk))
			}
			for i := range pk {
				if !pk[i].Path.Equal(mk[i].Path) || pk[i].Prob != mk[i].Prob {
					t.Fatalf("%s round %d: topk[%d] diverged", m, round, i)
				}
				sameBuckets(t, "TopK dist", pk[i].Dist, mk[i].Dist)
			}

			ps, err := plain.SkylinePaths(q, 4, opt)
			if err != nil {
				t.Fatalf("%s round %d: plain skyline: %v", m, round, err)
			}
			ms, err := memod.SkylinePaths(q, 4, opt)
			if err != nil {
				t.Fatalf("%s round %d: memo skyline: %v", m, round, err)
			}
			if len(ps) != len(ms) {
				t.Fatalf("%s round %d: skyline lengths %d vs %d", m, round, len(ps), len(ms))
			}
			for i := range ps {
				if !ps[i].Path.Equal(ms[i].Path) {
					t.Fatalf("%s round %d: skyline[%d] diverged", m, round, i)
				}
			}
		}
	}
	if st, ok := memod.MemoStats(); !ok || st.Hits == 0 {
		t.Fatalf("memo never hit: %+v", st)
	}
	if _, ok := plain.MemoStats(); ok {
		t.Fatal("plain router reports a memo")
	}
}

// TestMemoConcurrentQueries runs overlapping routing queries from one
// source through a shared memo; under -race this proves memoized
// chain states are safely shared, and every result must match the
// memo-off answer bit for bit.
func TestMemoConcurrentQueries(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	plain := New(h)
	memod := New(h)
	memod.EnableMemo(4096)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2}
	opt := Options{Incremental: true}
	want, err := plain.BestPath(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantK, err := plain.TopKPaths(q, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 24)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				res, err := memod.BestPath(q, opt)
				if err != nil {
					errs <- err.Error()
					return
				}
				if !res.Path.Equal(want.Path) || res.Prob != want.Prob {
					errs <- "concurrent BestPath diverged from memo-off result"
				}
			} else {
				res, err := memod.TopKPaths(q, 2, opt)
				if err != nil {
					errs <- err.Error()
					return
				}
				if len(res) != len(wantK) || !res[0].Path.Equal(wantK[0].Path) || res[0].Prob != wantK[0].Prob {
					errs <- "concurrent TopKPaths diverged from memo-off result"
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestRoutingEdgeCasesWithMemo pins the degenerate-query contract the
// memo must not change: src == dst errors, and a zero budget behaves
// identically with and without the memo.
func TestRoutingEdgeCasesWithMemo(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, _ := pickQuery(t, g)
	r := New(h)
	r.EnableMemo(1024)

	// Source equals destination: rejected by every query family.
	if _, err := r.BestPath(Query{Source: src, Dest: src, Budget: 100}, Options{Incremental: true}); err == nil {
		t.Fatal("BestPath accepted src == dst")
	}
	if _, err := r.TopKPaths(Query{Source: src, Dest: src, Budget: 100}, 2, Options{}); err == nil {
		t.Fatal("TopKPaths accepted src == dst")
	}
	if _, err := r.SkylinePaths(Query{Source: src, Dest: src, Budget: 100}, 2, Options{}); err == nil {
		t.Fatal("SkylinePaths accepted src == dst")
	}

	// Zero budget: P(cost ≤ 0) is 0 everywhere, so the search cannot
	// beat the initial incumbent bound; whatever the outcome (a
	// zero-probability path or a not-found error), it must be the
	// same with and without the memo.
	plain := New(h)
	zq := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: 0}
	pres, perr := plain.BestPath(zq, Options{Incremental: true})
	mres, merr := r.BestPath(zq, Options{Incremental: true})
	if (perr == nil) != (merr == nil) {
		t.Fatalf("zero budget: plain err %v, memo err %v", perr, merr)
	}
	if perr == nil {
		if !pres.Path.Equal(mres.Path) || pres.Prob != mres.Prob {
			t.Fatalf("zero budget diverged: %v p=%v vs %v p=%v", pres.Path, pres.Prob, mres.Path, mres.Prob)
		}
		if pres.Prob != 0 {
			t.Fatalf("zero budget path has positive probability %v", pres.Prob)
		}
	}

	// Unreachable-ish sanity: a vertex with no outgoing edges cannot
	// be a source of any path.
	for v := 0; v < g.NumVertices(); v++ {
		if len(g.Out(graph.VertexID(v))) == 0 && graph.VertexID(v) != dst {
			if _, err := r.BestPath(Query{Source: graph.VertexID(v), Dest: dst, Budget: 1000}, Options{Incremental: true}); err == nil {
				t.Fatalf("BestPath from sink vertex %d succeeded", v)
			}
			break
		}
	}
}
