package routing

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hist"
)

// Query is a probabilistic budget query: find the path from Source to
// Dest departing at Depart that maximizes P(travel time ≤ Budget).
type Query struct {
	Source, Dest graph.VertexID
	Depart       float64
	Budget       float64 // seconds
}

// Options tunes the search.
type Options struct {
	// Method selects the cost estimator (OD by default); RankCap caps
	// OD's variable ranks.
	Method  core.Method
	RankCap int
	// Incremental reuses chain states along the DFS ("path + another
	// edge", Section 4.3); when false every prefix is recomputed from
	// scratch, which is the Σ RT(P, method) cost model of the paper.
	Incremental bool
	// MaxExpansions bounds the number of explored prefixes (0 = the
	// default of 20000).
	MaxExpansions int
	// MaxEdges bounds candidate path cardinality (0 = 150).
	MaxEdges int
	// BatchWorkers > 1 evaluates each DFS node's sibling expansions as
	// one implicit batch on a worker pool of that size (their common
	// sub-expression is the parent's chain state): the DFS-frontier
	// form of batch planning. BestPath requires Incremental for it;
	// TopKPaths/SkylinePaths are always incremental. Results are
	// byte-identical to sequential expansion because each extension
	// goes through the same synopsis → memo → compute probe order and
	// all pruning decisions stay in the sequential consuming loop.
	BatchWorkers int
}

// Result reports the best path found.
type Result struct {
	Path     graph.Path
	Prob     float64 // P(cost ≤ budget) under the estimator
	Dist     *hist.Histogram
	Explored int // prefixes whose distribution was evaluated
	Pruned   int // prefixes cut by the probabilistic bound
	Elapsed  time.Duration
}

// Router answers stochastic routing queries over one hybrid graph.
// It is safe for concurrent use; the optional convolution memo
// (EnableMemo/SetMemo) is shared by all concurrent queries.
type Router struct {
	h *core.HybridGraph

	// memo, when non-nil, caches sub-path chain states across queries
	// so a DFS expansion whose prefix was already evaluated — by an
	// earlier query, a concurrent batch entry, or a distribution
	// query sharing the memo — costs one lookup instead of a
	// convolution. Atomic so it can be installed or dropped while
	// queries run.
	memo atomic.Pointer[core.ConvMemo]

	// synopsis, when non-nil, is the offline sub-path synopsis: it is
	// probed before the memo on every DFS expansion, so prefixes
	// materialized at training time cost zero convolutions from the
	// first query after boot. Atomic for the same hot-swap reason.
	synopsis atomic.Pointer[core.SynopsisStore]
}

// New creates a Router.
func New(h *core.HybridGraph) *Router {
	return &Router{h: h}
}

// EnableMemo installs a fresh convolution memo holding at most
// capacity prefix states; capacity ≤ 0 removes the memo. Memoized
// results are byte-identical to unmemoized ones (the memo keys on the
// exact departure time, not the α-interval). Safe to call while
// queries are in flight: running queries finish against whichever
// memo they started with.
func (r *Router) EnableMemo(capacity int) {
	if capacity <= 0 {
		r.memo.Store(nil)
		return
	}
	r.memo.Store(core.NewConvMemo(capacity))
}

// SetMemo shares an existing memo (possibly nil) with this router —
// used by pathcost.System to let routing and distribution queries
// reuse each other's prefix states.
func (r *Router) SetMemo(m *core.ConvMemo) { r.memo.Store(m) }

// Memo returns the currently installed memo, or nil.
func (r *Router) Memo() *core.ConvMemo { return r.memo.Load() }

// MemoStats snapshots the memo's hit/miss/eviction counters; ok is
// false when no memo is installed.
func (r *Router) MemoStats() (cache.Stats, bool) {
	m := r.memo.Load()
	if m == nil {
		return cache.Stats{}, false
	}
	return m.Stats(), true
}

// SetSynopsis shares an offline synopsis store (possibly nil) with
// this router — installed by pathcost.System so routing expansions
// reuse the sub-path states persisted with the model. Synopsis-backed
// expansions are byte-identical to computed ones.
func (r *Router) SetSynopsis(s *core.SynopsisStore) { r.synopsis.Store(s) }

// Synopsis returns the currently installed synopsis store, or nil.
func (r *Router) Synopsis() *core.SynopsisStore { return r.synopsis.Load() }

// BestPath runs the DFS budget query. It returns an error when the
// destination is unreachable or no path satisfies the budget with
// positive probability.
func (r *Router) BestPath(q Query, opt Options) (*Result, error) {
	start := time.Now()
	if opt.Method == "" {
		opt.Method = core.MethodOD
	}
	if opt.MaxExpansions == 0 {
		opt.MaxExpansions = 20000
	}
	if opt.MaxEdges == 0 {
		opt.MaxEdges = 150
	}
	g := r.h.G
	if q.Source == q.Dest {
		return nil, fmt.Errorf("routing: source equals destination")
	}
	// Admissible remaining-time lower bounds (free-flow Dijkstra on the
	// reverse graph).
	lb := g.ReverseShortestDistances(q.Dest, graph.FreeFlowWeight)
	if math.IsInf(lb[q.Source], 1) {
		return nil, fmt.Errorf("routing: destination unreachable from source")
	}

	res := &Result{}
	best := 0.0
	memo := r.memo.Load()
	syn := r.synopsis.Load()
	var batch *core.BatchPlanner
	if opt.Incremental && opt.BatchWorkers > 1 {
		batch = core.NewBatchPlanner(r.h, opt.BatchWorkers)
	}
	visited := make(map[graph.VertexID]bool)
	visited[q.Source] = true

	var dfs func(prefix graph.Path, state *core.PathState, v graph.VertexID) error
	dfs = func(prefix graph.Path, state *core.PathState, v graph.VertexID) error {
		if res.Explored >= opt.MaxExpansions || len(prefix) >= opt.MaxEdges {
			return nil
		}
		// Expand neighbors closest to the destination first so a good
		// incumbent is found early and prunes aggressively.
		outs := append([]graph.EdgeID(nil), g.Out(v)...)
		sort.Slice(outs, func(i, j int) bool {
			return lb[g.Edge(outs[i]).To] < lb[g.Edge(outs[j]).To]
		})
		bpos, bstates, berrs := frontierBatch(batch, syn, memo, g, lb, visited,
			state, q.Depart, core.QueryOptions{Method: opt.Method, RankCap: opt.RankCap}, outs)
		for _, eid := range outs {
			e := g.Edge(eid)
			if visited[e.To] {
				continue
			}
			if math.IsInf(lb[e.To], 1) {
				continue // cannot reach the destination from there
			}
			if res.Explored >= opt.MaxExpansions {
				return nil
			}
			var ns *core.PathState
			var dist *hist.Histogram
			var err error
			if opt.Incremental {
				if i, ok := bpos[eid]; ok {
					ns, err = bstates[i], berrs[i]
				} else if state == nil {
					ns, err = r.h.StartPathWith(syn, memo, eid, q.Depart, core.QueryOptions{Method: opt.Method, RankCap: opt.RankCap})
				} else {
					ns, err = r.h.ExtendPathWith(syn, memo, state, eid)
				}
				if err == nil {
					dist, err = ns.DistErr()
				}
				if err != nil {
					return err
				}
			} else {
				np := append(prefix.Clone(), eid)
				qr, err := r.h.CostDistribution(np, q.Depart, core.QueryOptions{Method: opt.Method, RankCap: opt.RankCap})
				if err != nil {
					return err
				}
				dist = qr.Dist
			}
			res.Explored++

			// Optimistic bound: the remaining edges take at least the
			// free-flow time, so P(total ≤ B) ≤ P(prefix ≤ B − lb).
			bound := dist.CDF(q.Budget - lb[e.To])
			if e.To == q.Dest {
				p := dist.CDF(q.Budget)
				if p > best || res.Path == nil {
					best = p
					res.Path = append(prefix.Clone(), eid)
					res.Prob = p
					res.Dist = dist
				}
				continue
			}
			if bound <= best {
				res.Pruned++
				continue
			}
			visited[e.To] = true
			err = dfs(append(prefix, eid), ns, e.To)
			visited[e.To] = false
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(nil, nil, q.Source); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	if res.Path == nil {
		return nil, fmt.Errorf("routing: no path to destination found within limits")
	}
	return res, nil
}

// frontierBatch pre-evaluates the extensions of one DFS node's chain
// state by every eligible out-edge concurrently through the batch
// planner — the sibling expansions are one implicit batch whose
// common sub-expression is the parent state. It returns a positional
// lookup (edge → slot) into states/errs, or a nil map when batching
// is off or fewer than two extensions are eligible (sequential
// evaluation is then strictly cheaper). Eligibility mirrors exactly
// the consuming loop's skip conditions that are stable across the
// loop (visited, unreachable); the loop's explored-cap cutoff is not
// mirrored, so a search that hits its cap mid-frontier may evaluate a
// few unused states — they feed the shared memo but alter no counter
// or result, keeping answers byte-identical to sequential expansion.
func frontierBatch(bp *core.BatchPlanner, syn *core.SynopsisStore, memo *core.ConvMemo,
	g *graph.Graph, lb []float64, visited map[graph.VertexID]bool,
	state *core.PathState, t float64, opt core.QueryOptions, outs []graph.EdgeID,
) (map[graph.EdgeID]int, []*core.PathState, []error) {
	if bp == nil {
		return nil, nil, nil
	}
	edges := make([]graph.EdgeID, 0, len(outs))
	for _, eid := range outs {
		e := g.Edge(eid)
		if visited[e.To] || isInf(lb[e.To]) {
			continue
		}
		edges = append(edges, eid)
	}
	if len(edges) < 2 {
		return nil, nil, nil
	}
	states, errs := bp.ExtendAll(syn, memo, state, t, opt, edges)
	pos := make(map[graph.EdgeID]int, len(edges))
	for i, eid := range edges {
		pos[eid] = i
	}
	return pos, states, errs
}

// FastestPath is the deterministic comparison baseline: the free-flow
// Dijkstra path and its (deterministic) travel time.
func (r *Router) FastestPath(src, dst graph.VertexID) (graph.Path, float64, error) {
	p, d, ok := r.h.G.ShortestPath(src, dst, graph.FreeFlowWeight)
	if !ok {
		return nil, 0, fmt.Errorf("routing: destination unreachable")
	}
	return p, d, nil
}
