package routing

import (
	"fmt"

	"repro/internal/hist"
)

// SkylinePaths answers a stochastic-skyline style query (in the spirit
// of Yang et al. [22], the third routing family the paper integrates
// with): among candidate paths from source to destination, return
// those whose travel-time distribution is not first-order
// stochastically dominated by any other candidate's. Dominated paths
// are never preferable to any risk attitude; the skyline is what a
// rational traveller chooses from.
//
// Candidates come from a top-k exploration (k = maxCandidates); the
// skyline filter then removes dominated entries.
func (r *Router) SkylinePaths(q Query, maxCandidates int, opt Options) ([]TopKResult, error) {
	if maxCandidates < 1 {
		return nil, fmt.Errorf("routing: maxCandidates = %d must be ≥ 1", maxCandidates)
	}
	cands, err := r.TopKPaths(q, maxCandidates, opt)
	if err != nil {
		return nil, err
	}
	var skyline []TopKResult
	for i, c := range cands {
		dominated := false
		for j, d := range cands {
			if i == j {
				continue
			}
			if d.Dist.Dominates(c.Dist) && !c.Dist.Dominates(d.Dist) {
				dominated = true
				break
			}
		}
		if !dominated {
			skyline = append(skyline, c)
		}
	}
	return skyline, nil
}

var _ = hist.DefaultResolution
