package routing

import (
	"testing"

	"repro/internal/core"
)

// Frontier batching is an execution strategy, not an approximation:
// with BatchWorkers set, eligible sibling extensions of each DFS node
// are pre-evaluated on the planner pool, but the search must visit,
// prune, count and rank exactly as the sequential walk does.

func TestBestPathFrontierBatchIdentical(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	for _, m := range []core.Method{core.MethodOD, core.MethodHP, core.MethodLB} {
		q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2.5}
		seq, err := r.BestPath(q, Options{Method: m, Incremental: true})
		if err != nil {
			t.Fatalf("%s sequential: %v", m, err)
		}
		bat, err := r.BestPath(q, Options{Method: m, Incremental: true, BatchWorkers: 4})
		if err != nil {
			t.Fatalf("%s batched: %v", m, err)
		}
		if seq.Path.Key() != bat.Path.Key() {
			t.Fatalf("%s: batched search chose %v, sequential %v", m, bat.Path, seq.Path)
		}
		if seq.Prob != bat.Prob {
			t.Fatalf("%s: batched prob %v != sequential %v", m, bat.Prob, seq.Prob)
		}
		if seq.Explored != bat.Explored {
			t.Fatalf("%s: batched explored %d nodes, sequential %d — the frontier batch changed the walk",
				m, bat.Explored, seq.Explored)
		}
	}
}

func TestTopKFrontierBatchIdentical(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2.5}
	seq, err := r.TopKPaths(q, 3, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	bat, err := r.TopKPaths(q, 3, Options{Incremental: true, BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(bat) {
		t.Fatalf("batched returned %d paths, sequential %d", len(bat), len(seq))
	}
	for i := range seq {
		if seq[i].Path.Key() != bat[i].Path.Key() || seq[i].Prob != bat[i].Prob {
			t.Fatalf("rank %d: batched (%v, %v) != sequential (%v, %v)",
				i, bat[i].Path, bat[i].Prob, seq[i].Path, seq[i].Prob)
		}
	}
}

func TestSkylineFrontierBatchIdentical(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2.5}
	seq, err := r.SkylinePaths(q, 8, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	bat, err := r.SkylinePaths(q, 8, Options{Incremental: true, BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(bat) {
		t.Fatalf("batched skyline has %d paths, sequential %d", len(bat), len(seq))
	}
	for i := range seq {
		if seq[i].Path.Key() != bat[i].Path.Key() || seq[i].Prob != bat[i].Prob {
			t.Fatalf("skyline entry %d diverged under frontier batching", i)
		}
	}
}

// Batching composes with the router memo: a warm memo plus a worker
// pool must still reproduce the cold sequential answer exactly.
func TestFrontierBatchWithMemoIdentical(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2.5}

	cold := New(h)
	seq, err := cold.BestPath(q, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}

	warm := New(h)
	warm.EnableMemo(1 << 12)
	for pass := 0; pass < 2; pass++ {
		bat, err := warm.BestPath(q, Options{Incremental: true, BatchWorkers: 4})
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if seq.Path.Key() != bat.Path.Key() || seq.Prob != bat.Prob || seq.Explored != bat.Explored {
			t.Fatalf("pass %d: memoized batched search diverged from cold sequential", pass)
		}
	}
	if st, ok := warm.MemoStats(); !ok || st.Hits == 0 {
		t.Fatal("second pass never hit the memo")
	}
}
