package routing

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// buildHybrid constructs a small trained hybrid graph for routing
// tests, shared across tests via a package-level cache (training is
// the expensive part).
var cached struct {
	g *graph.Graph
	h *core.HybridGraph
}

func hybridFixture(t testing.TB) (*graph.Graph, *core.HybridGraph) {
	t.Helper()
	if cached.h != nil {
		return cached.g, cached.h
	}
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 5, NumTrips: 3000,
	})
	res := gen.Generate()
	params := core.DefaultParams()
	params.MaxRank = 4
	params.Beta = 20
	h, err := core.Build(g, res.Collection, params)
	if err != nil {
		t.Fatal(err)
	}
	cached.g, cached.h = g, h
	return g, h
}

// pickQuery finds a reachable OD pair a few edges apart.
func pickQuery(t testing.TB, g *graph.Graph) (graph.VertexID, graph.VertexID, float64) {
	t.Helper()
	src := graph.VertexID(10)
	dist := g.ShortestDistances(src, graph.FreeFlowWeight)
	var dst graph.VertexID = -1
	bestD := 0.0
	for v, d := range dist {
		if !math.IsInf(d, 1) && d > bestD && d < 400 {
			bestD = d
			dst = graph.VertexID(v)
		}
	}
	if dst < 0 {
		t.Skip("no suitable destination")
	}
	return src, dst, bestD
}

func TestBestPathFindsValidRoute(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	res, err := r.BestPath(Query{
		Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 3,
	}, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.ValidPath(res.Path) {
		t.Fatalf("invalid path %v", res.Path)
	}
	vs := g.PathVertices(res.Path)
	if vs[0] != src || vs[len(vs)-1] != dst {
		t.Fatalf("path endpoints %v..%v, want %v..%v", vs[0], vs[len(vs)-1], src, dst)
	}
	if res.Prob <= 0 || res.Prob > 1 {
		t.Fatalf("prob = %v", res.Prob)
	}
	if res.Explored == 0 {
		t.Fatal("nothing explored")
	}
}

func TestBestPathProbMonotoneInBudget(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	prev := -1.0
	for _, mult := range []float64{1.2, 2, 4} {
		res, err := r.BestPath(Query{
			Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * mult,
		}, Options{Incremental: true})
		if err != nil {
			t.Fatalf("budget ×%v: %v", mult, err)
		}
		if res.Prob < prev-1e-9 {
			t.Fatalf("probability decreased with larger budget: %v -> %v", prev, res.Prob)
		}
		prev = res.Prob
	}
}

func TestBestPathMethodsAgreeOnEndpoints(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	for _, m := range []core.Method{core.MethodOD, core.MethodHP, core.MethodLB} {
		res, err := r.BestPath(Query{
			Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2.5,
		}, Options{Method: m, Incremental: true})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		vs := g.PathVertices(res.Path)
		if vs[0] != src || vs[len(vs)-1] != dst {
			t.Fatalf("%s: wrong endpoints", m)
		}
	}
}

func TestBestPathIncrementalMatchesBatchSearch(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2}
	inc, err := r.BestPath(q, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	bat, err := r.BestPath(q, Options{Incremental: false})
	if err != nil {
		t.Fatal(err)
	}
	// The two searches may tie-break differently, but the best
	// probabilities must be close.
	if math.Abs(inc.Prob-bat.Prob) > 0.12 {
		t.Fatalf("incremental prob %v vs batch %v", inc.Prob, bat.Prob)
	}
}

func TestBestPathErrors(t *testing.T) {
	g, h := hybridFixture(t)
	r := New(h)
	if _, err := r.BestPath(Query{Source: 1, Dest: 1, Budget: 100}, Options{}); err == nil {
		t.Fatal("source == dest accepted")
	}
	// A sink vertex (no outgoing edges back) may not exist in this
	// network; use an impossible budget instead: probability can be 0
	// but a path must still be reported (the best available).
	src, dst, _ := pickQuery(t, g)
	res, err := r.BestPath(Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: 1}, Options{Incremental: true})
	if err == nil && res.Prob > 0.01 {
		t.Fatalf("1-second budget should have ~0 probability, got %v", res.Prob)
	}
}

func TestFastestPath(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	p, d, err := r.FastestPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !g.ValidPath(p) {
		t.Fatal("invalid fastest path")
	}
	if math.Abs(d-ff) > 1e-9 {
		t.Fatalf("fastest = %v, want %v", d, ff)
	}
}

func TestPruningHappens(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	res, err := r.BestPath(Query{
		Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 1.5,
	}, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 && res.Explored > 100 {
		t.Fatal("large search with no pruning suggests the bound is broken")
	}
}
