package routing

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hist"
)

// TopKResult is one ranked path of a probabilistic top-k query.
type TopKResult struct {
	Path graph.Path
	Prob float64
	Dist *hist.Histogram
}

// TopKPaths answers the probabilistic top-k path query of Hua & Pei
// [10]: the k loop-free paths from source to destination with the
// highest probability of arriving within the budget. It reuses the
// DFS machinery with a result heap; pruning compares against the k-th
// best incumbent instead of the single best.
func (r *Router) TopKPaths(q Query, k int, opt Options) ([]TopKResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("routing: k = %d must be ≥ 1", k)
	}
	if opt.Method == "" {
		opt.Method = core.MethodOD
	}
	if opt.MaxExpansions == 0 {
		opt.MaxExpansions = 20000
	}
	if opt.MaxEdges == 0 {
		opt.MaxEdges = 150
	}
	g := r.h.G
	if q.Source == q.Dest {
		return nil, fmt.Errorf("routing: source equals destination")
	}
	lb := g.ReverseShortestDistances(q.Dest, graph.FreeFlowWeight)
	if isInf(lb[q.Source]) {
		return nil, fmt.Errorf("routing: destination unreachable from source")
	}

	results := &topKHeap{}
	heap.Init(results)
	kth := func() float64 {
		if results.Len() < k {
			return 0
		}
		return (*results)[0].Prob
	}

	explored := 0
	memo := r.memo.Load()
	syn := r.synopsis.Load()
	var batch *core.BatchPlanner
	if opt.BatchWorkers > 1 {
		batch = core.NewBatchPlanner(r.h, opt.BatchWorkers)
	}
	visited := make(map[graph.VertexID]bool)
	visited[q.Source] = true

	var dfs func(prefix graph.Path, state *core.PathState, v graph.VertexID) error
	dfs = func(prefix graph.Path, state *core.PathState, v graph.VertexID) error {
		if explored >= opt.MaxExpansions || len(prefix) >= opt.MaxEdges {
			return nil
		}
		outs := append([]graph.EdgeID(nil), g.Out(v)...)
		sort.Slice(outs, func(i, j int) bool {
			return lb[g.Edge(outs[i]).To] < lb[g.Edge(outs[j]).To]
		})
		bpos, bstates, berrs := frontierBatch(batch, syn, memo, g, lb, visited,
			state, q.Depart, core.QueryOptions{Method: opt.Method, RankCap: opt.RankCap}, outs)
		for _, eid := range outs {
			e := g.Edge(eid)
			if visited[e.To] || isInf(lb[e.To]) {
				continue
			}
			if explored >= opt.MaxExpansions {
				return nil
			}
			var ns *core.PathState
			var err error
			if i, ok := bpos[eid]; ok {
				ns, err = bstates[i], berrs[i]
			} else if state == nil {
				ns, err = r.h.StartPathWith(syn, memo, eid, q.Depart, core.QueryOptions{Method: opt.Method, RankCap: opt.RankCap})
			} else {
				ns, err = r.h.ExtendPathWith(syn, memo, state, eid)
			}
			if err != nil {
				return err
			}
			explored++
			dist, err := ns.DistErr()
			if err != nil {
				return err
			}
			if e.To == q.Dest {
				p := dist.CDF(q.Budget)
				if results.Len() < k {
					heap.Push(results, TopKResult{
						Path: append(prefix.Clone(), eid), Prob: p, Dist: dist,
					})
				} else if p > kth() {
					(*results)[0] = TopKResult{
						Path: append(prefix.Clone(), eid), Prob: p, Dist: dist,
					}
					heap.Fix(results, 0)
				}
				continue
			}
			if dist.CDF(q.Budget-lb[e.To]) <= kth() {
				continue
			}
			visited[e.To] = true
			err = dfs(append(prefix, eid), ns, e.To)
			visited[e.To] = false
			if err != nil {
				return err
			}
		}
		return nil
	}
	start := time.Now()
	if err := dfs(nil, nil, q.Source); err != nil {
		return nil, err
	}
	_ = start
	if results.Len() == 0 {
		return nil, fmt.Errorf("routing: no path to destination found within limits")
	}
	out := make([]TopKResult, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(results).(TopKResult)
	}
	// out is now descending by probability.
	return out, nil
}

func isInf(v float64) bool { return v > 1e300 }

// topKHeap is a min-heap on probability so the worst incumbent is on
// top and cheap to replace.
type topKHeap []TopKResult

func (h topKHeap) Len() int            { return len(h) }
func (h topKHeap) Less(i, j int) bool  { return h[i].Prob < h[j].Prob }
func (h topKHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *topKHeap) Push(x interface{}) { *h = append(*h, x.(TopKResult)) }
func (h *topKHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
