package routing_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

// exampleRouter trains a small hybrid graph and picks a reachable
// origin–destination pair; shared by the runnable examples below.
func exampleRouter() (*routing.Router, graph.VertexID, graph.VertexID, float64, error) {
	g := netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
	gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 5, NumTrips: 3000,
	})
	params := core.DefaultParams()
	params.Beta = 20
	params.MaxRank = 4
	h, err := core.Build(g, gen.Generate().Collection, params)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	src := graph.VertexID(10)
	dist := g.ShortestDistances(src, graph.FreeFlowWeight)
	dst, best := graph.VertexID(-1), 0.0
	for v, d := range dist {
		if graph.VertexID(v) != src && d > best && d < 400 {
			best = d
			dst = graph.VertexID(v)
		}
	}
	return routing.New(h), src, dst, best, nil
}

// ExampleRouter_BestPath answers a probabilistic budget query: the
// path from src to dst that maximizes the probability of arriving
// within the budget, departing at 08:00. EnableMemo turns on the
// incremental sub-path convolution engine, so repeating or
// overlapping queries reuse already-evaluated prefixes.
func ExampleRouter_BestPath() {
	r, src, dst, freeFlow, err := exampleRouter()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r.EnableMemo(4096) // share sub-path convolutions across queries

	res, err := r.BestPath(routing.Query{
		Source: src, Dest: dst, Depart: 8 * 3600, Budget: freeFlow * 2,
	}, routing.Options{Incremental: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("path found:", len(res.Path) > 0)
	fmt.Println("on-time probability in [0,1]:", res.Prob >= 0 && res.Prob <= 1)
	fmt.Println("distribution has mass:", res.Dist.ProbWithin(1e12) > 0.99)
	// Output:
	// path found: true
	// on-time probability in [0,1]: true
	// distribution has mass: true
}

// ExampleRouter_TopKPaths ranks the k best loop-free paths by their
// probability of arriving within the budget.
func ExampleRouter_TopKPaths() {
	r, src, dst, freeFlow, err := exampleRouter()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r.EnableMemo(4096)

	routes, err := r.TopKPaths(routing.Query{
		Source: src, Dest: dst, Depart: 8 * 3600, Budget: freeFlow * 2,
	}, 3, routing.Options{Incremental: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("got 1..3 routes:", len(routes) >= 1 && len(routes) <= 3)
	sorted := true
	for i := 1; i < len(routes); i++ {
		if routes[i].Prob > routes[i-1].Prob {
			sorted = false
		}
	}
	fmt.Println("descending by probability:", sorted)
	// Output:
	// got 1..3 routes: true
	// descending by probability: true
}
