// Package routing implements the DFS-based stochastic routing
// algorithm the paper integrates its estimator into (Section 4.3 and
// Figure 18): a probabilistic budget query in the style of Hua and
// Pei [10] that searches for the path maximizing the probability of
// arriving within a travel-time budget, pruning candidates whose
// optimistic arrival probability cannot beat the incumbent.
//
// The path-cost estimator is pluggable (OD / HP / LB — any core
// method), which is exactly how the paper compares LB-DFS, HP-DFS and
// OD-DFS; Options.Incremental reuses the chain-evaluation state along
// the DFS so each edge extension costs one factor multiplication
// instead of a full re-evaluation. topk.go generalizes the search to
// probabilistic top-k path queries and skyline.go to stochastic
// skyline queries.
//
// Router.EnableMemo layers the incremental sub-path convolution
// engine (core.ConvMemo) under the DFS: prefix chain states are
// memoized across queries, so repeated or overlapping searches —
// including the entries of one server batch — extend a candidate by
// one edge with a single memo lookup when the prefix was seen before.
// Memoized results are byte-identical to unmemoized ones.
package routing
