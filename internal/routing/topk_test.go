package routing

import (
	"testing"

	"repro/internal/core"
)

func TestTopKPaths(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2.5}
	res, err := r.TopKPaths(q, 3, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || len(res) > 3 {
		t.Fatalf("got %d results", len(res))
	}
	seen := make(map[string]bool)
	for i, tk := range res {
		if !g.ValidPath(tk.Path) {
			t.Fatalf("result %d invalid", i)
		}
		vs := g.PathVertices(tk.Path)
		if vs[0] != src || vs[len(vs)-1] != dst {
			t.Fatalf("result %d wrong endpoints", i)
		}
		if seen[tk.Path.Key()] {
			t.Fatalf("duplicate path in top-k")
		}
		seen[tk.Path.Key()] = true
		if i > 0 && tk.Prob > res[i-1].Prob+1e-9 {
			t.Fatalf("results not sorted by probability: %v then %v", res[i-1].Prob, tk.Prob)
		}
		if tk.Prob < 0 || tk.Prob > 1 {
			t.Fatalf("prob %v out of range", tk.Prob)
		}
	}
}

func TestTopKConsistentWithBestPath(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2}
	best, err := r.BestPath(q, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	topk, err := r.TopKPaths(q, 3, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	// Top-1 of top-k must be at least as good as BestPath's result
	// (both explore with the same bound; ties can differ slightly due
	// to pruning thresholds).
	if topk[0].Prob < best.Prob-0.05 {
		t.Fatalf("top-1 prob %v much worse than best-path %v", topk[0].Prob, best.Prob)
	}
}

func TestTopKErrors(t *testing.T) {
	_, h := hybridFixture(t)
	r := New(h)
	if _, err := r.TopKPaths(Query{Source: 1, Dest: 2, Budget: 100}, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := r.TopKPaths(Query{Source: 1, Dest: 1, Budget: 100}, 2, Options{}); err == nil {
		t.Fatal("source == dest accepted")
	}
}

func TestTopKMethodsRun(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2.2}
	for _, m := range []core.Method{core.MethodOD, core.MethodLB} {
		if _, err := r.TopKPaths(q, 2, Options{Method: m, Incremental: true}); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestSkylinePaths(t *testing.T) {
	g, h := hybridFixture(t)
	src, dst, ff := pickQuery(t, g)
	r := New(h)
	q := Query{Source: src, Dest: dst, Depart: 8 * 3600, Budget: ff * 2.5}
	sky, err := r.SkylinePaths(q, 4, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) == 0 {
		t.Fatal("empty skyline")
	}
	// No skyline member may be strictly dominated by another.
	for i, a := range sky {
		for j, b := range sky {
			if i == j {
				continue
			}
			if b.Dist.Dominates(a.Dist) && !a.Dist.Dominates(b.Dist) {
				t.Fatalf("skyline member %d dominated by %d", i, j)
			}
		}
		if !g.ValidPath(a.Path) {
			t.Fatalf("skyline path %d invalid", i)
		}
	}
	if _, err := r.SkylinePaths(q, 0, Options{}); err == nil {
		t.Fatal("maxCandidates=0 accepted")
	}
}
