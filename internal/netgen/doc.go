// Package netgen generates synthetic city road networks that stand in
// for the paper's Aalborg (N1, OpenStreetMap, all roads) and Beijing
// (N2, highways and main roads only) networks. The generator lays out
// a jittered grid of intersections, promotes periodic rows/columns to
// arterial classes, threads a motorway ring around the center, drops a
// fraction of residential streets, and makes a fraction of the
// remainder one-way — yielding an urban-looking directed graph that is
// deterministic in the seed.
package netgen
