package netgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/graph"
)

// WriteGraph serializes g as line-oriented text: one "V lat lon" line
// per vertex (IDs are implicit, in order) followed by one
// "E from to length speed class" line per edge. The format is stable
// and diff-friendly so generated networks can be committed or shipped.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for _, v := range g.Vertices() {
		if _, err := fmt.Fprintf(bw, "V %.7f %.7f\n", v.Pt.Lat, v.Pt.Lon); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "E %d %d %.2f %.1f %d\n",
			e.From, e.To, e.LengthM, e.SpeedKmh, e.Class); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGraph parses the format written by WriteGraph.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	b := graph.NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	nVertices := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "V":
			if len(fields) != 3 {
				return nil, fmt.Errorf("netgen: line %d: vertex needs 2 fields", line)
			}
			lat, err1 := strconv.ParseFloat(fields[1], 64)
			lon, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("netgen: line %d: bad vertex coordinates", line)
			}
			b.AddVertex(geo.Point{Lat: lat, Lon: lon})
			nVertices++
		case "E":
			if len(fields) != 6 {
				return nil, fmt.Errorf("netgen: line %d: edge needs 5 fields", line)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			length, err3 := strconv.ParseFloat(fields[3], 64)
			speed, err4 := strconv.ParseFloat(fields[4], 64)
			class, err5 := strconv.Atoi(fields[5])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
				return nil, fmt.Errorf("netgen: line %d: bad edge fields", line)
			}
			if from < 0 || from >= nVertices || to < 0 || to >= nVertices {
				return nil, fmt.Errorf("netgen: line %d: edge endpoint out of range", line)
			}
			if class < 0 || class >= graph.NumRoadClasses {
				return nil, fmt.Errorf("netgen: line %d: bad road class %d", line, class)
			}
			b.AddEdge(graph.VertexID(from), graph.VertexID(to), length, speed, graph.RoadClass(class))
		default:
			return nil, fmt.Errorf("netgen: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := b.Freeze()
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("netgen: no vertices in input")
	}
	return g, nil
}
