package netgen

import (
	"math/rand"

	"repro/internal/geo"
	"repro/internal/graph"
)

// Preset names a calibrated network size.
type Preset string

// Presets. Test is small enough for unit tests; Small suits benches;
// Aalborg and Beijing approximate the paper's network scales.
const (
	PresetTest    Preset = "test"
	PresetSmall   Preset = "small"
	PresetAalborg Preset = "aalborg"
	PresetBeijing Preset = "beijing"
)

// Config controls network generation.
type Config struct {
	Rows, Cols int
	SpacingM   float64 // grid spacing in meters between intersections
	Seed       int64
	// RemoveProb drops a residential street entirely; OneWayProb turns
	// a surviving residential street into a one-way street.
	RemoveProb, OneWayProb float64
	// ArterialEvery promotes every k-th row/column to primary roads;
	// SecondaryEvery promotes every k-th to secondary.
	ArterialEvery, SecondaryEvery int
	Origin                        geo.Point
}

// PresetConfig returns the generation parameters for a preset.
func PresetConfig(p Preset) Config {
	base := Config{
		SpacingM:       150,
		RemoveProb:     0.12,
		OneWayProb:     0.15,
		ArterialEvery:  8,
		SecondaryEvery: 4,
		Origin:         geo.Point{Lat: 57.0488, Lon: 9.9217}, // Aalborg
	}
	switch p {
	case PresetTest:
		base.Rows, base.Cols, base.Seed = 12, 12, 1
	case PresetSmall:
		base.Rows, base.Cols, base.Seed = 40, 40, 2
	case PresetAalborg:
		base.Rows, base.Cols, base.Seed = 142, 142, 3
	case PresetBeijing:
		// Beijing N2 contains only highways and main roads: a coarser
		// grid with wider spacing, almost no removals, and larger
		// arterial share.
		base.Rows, base.Cols, base.Seed = 119, 238, 4
		base.SpacingM = 400
		base.RemoveProb = 0.04
		base.OneWayProb = 0.08
		base.ArterialEvery = 6
		base.SecondaryEvery = 3
		base.Origin = geo.Point{Lat: 39.9042, Lon: 116.4074}
	default:
		base.Rows, base.Cols, base.Seed = 12, 12, 1
	}
	return base
}

// speedFor maps a road class to its speed limit in km/h.
func speedFor(c graph.RoadClass) float64 {
	switch c {
	case graph.ClassMotorway:
		return 110
	case graph.ClassPrimary:
		return 70
	case graph.ClassSecondary:
		return 50
	default:
		return 40
	}
}

// Generate builds the network for cfg. The graph is deterministic in
// cfg.Seed.
func Generate(cfg Config) *graph.Graph {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		panic("netgen: grid must be at least 2x2")
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	proj := geo.NewProjection(cfg.Origin)
	b := graph.NewBuilder()

	// Lay out jittered grid vertices, centered on the origin.
	ids := make([][]graph.VertexID, cfg.Rows)
	pts := make(map[graph.VertexID]geo.Point, cfg.Rows*cfg.Cols)
	x0 := -float64(cfg.Cols-1) * cfg.SpacingM / 2
	y0 := -float64(cfg.Rows-1) * cfg.SpacingM / 2
	for r := 0; r < cfg.Rows; r++ {
		ids[r] = make([]graph.VertexID, cfg.Cols)
		for c := 0; c < cfg.Cols; c++ {
			jx := (rnd.Float64() - 0.5) * cfg.SpacingM * 0.35
			jy := (rnd.Float64() - 0.5) * cfg.SpacingM * 0.35
			pt := proj.ToPoint(x0+float64(c)*cfg.SpacingM+jx, y0+float64(r)*cfg.SpacingM+jy)
			id := b.AddVertex(pt)
			ids[r][c] = id
			pts[id] = pt
		}
	}

	// classOf returns the class of the street along a row or column
	// index; the outermost ring and the central cross are motorways.
	classOf := func(idx, max int) graph.RoadClass {
		if idx == 0 || idx == max-1 || idx == max/2 {
			return graph.ClassMotorway
		}
		if cfg.ArterialEvery > 0 && idx%cfg.ArterialEvery == 0 {
			return graph.ClassPrimary
		}
		if cfg.SecondaryEvery > 0 && idx%cfg.SecondaryEvery == 0 {
			return graph.ClassSecondary
		}
		return graph.ClassResidential
	}

	addStreet := func(va, vb graph.VertexID, class graph.RoadClass) {
		length := geo.Haversine(pts[va], pts[vb])
		if length < 1 {
			length = 1
		}
		speed := speedFor(class)
		if class == graph.ClassResidential {
			if rnd.Float64() < cfg.RemoveProb {
				return // street does not exist
			}
			if rnd.Float64() < cfg.OneWayProb {
				// One-way street with random direction.
				if rnd.Intn(2) == 0 {
					b.AddEdge(va, vb, length, speed, class)
				} else {
					b.AddEdge(vb, va, length, speed, class)
				}
				return
			}
		}
		b.AddEdge(va, vb, length, speed, class)
		b.AddEdge(vb, va, length, speed, class)
	}

	// Horizontal streets follow the row's class; vertical follow the
	// column's. A street adjacent to a motorway/arterial index takes
	// the stronger class of its two cells.
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c+1 < cfg.Cols; c++ {
			addStreet(ids[r][c], ids[r][c+1], classOf(r, cfg.Rows))
		}
	}
	for c := 0; c < cfg.Cols; c++ {
		for r := 0; r+1 < cfg.Rows; r++ {
			addStreet(ids[r][c], ids[r+1][c], classOf(c, cfg.Cols))
		}
	}
	return b.Freeze()
}
