package netgen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestGenerateTestPreset(t *testing.T) {
	g := Generate(PresetConfig(PresetTest))
	if g.NumVertices() != 144 {
		t.Fatalf("vertices = %d, want 144", g.NumVertices())
	}
	if g.NumEdges() < 300 {
		t.Fatalf("edges = %d, want a few hundred", g.NumEdges())
	}
	// Every class should appear.
	seen := make(map[graph.RoadClass]int)
	for _, e := range g.Edges() {
		seen[e.Class]++
		if e.LengthM <= 0 || e.SpeedKmh <= 0 {
			t.Fatalf("edge %d has bad attributes: %+v", e.ID, e)
		}
	}
	for c := graph.RoadClass(0); int(c) < graph.NumRoadClasses; c++ {
		if seen[c] == 0 {
			t.Errorf("class %v missing from generated network", c)
		}
	}
	// Residential must dominate in an all-roads city.
	if seen[graph.ClassResidential] < seen[graph.ClassMotorway] {
		t.Error("residential should outnumber motorway edges")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := PresetConfig(PresetTest)
	a := Generate(cfg)
	b := Generate(cfg)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give identical sizes")
	}
	for i := 0; i < a.NumEdges(); i++ {
		ea, eb := a.Edge(graph.EdgeID(i)), b.Edge(graph.EdgeID(i))
		if ea != eb {
			t.Fatalf("edge %d differs between runs: %+v vs %+v", i, ea, eb)
		}
	}
	cfg.Seed = 99
	c := Generate(cfg)
	if c.NumEdges() == a.NumEdges() {
		// Sizes can coincide, but full equality would be suspicious.
		same := true
		for i := 0; i < c.NumEdges(); i++ {
			if c.Edge(graph.EdgeID(i)) != a.Edge(graph.EdgeID(i)) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical networks")
		}
	}
}

func TestGenerateConnectivity(t *testing.T) {
	g := Generate(PresetConfig(PresetTest))
	// From the center vertex, most of the network must be reachable.
	center := graph.VertexID(g.NumVertices() / 2)
	dist := g.ShortestDistances(center, graph.LengthWeight)
	reach := 0
	for _, d := range dist {
		if d < 1e17 {
			reach++
		}
	}
	if frac := float64(reach) / float64(g.NumVertices()); frac < 0.9 {
		t.Fatalf("only %.0f%% of vertices reachable from center", frac*100)
	}
}

func TestGenerateEdgeLengthsMatchSpacing(t *testing.T) {
	cfg := PresetConfig(PresetTest)
	g := Generate(cfg)
	for _, e := range g.Edges() {
		if e.LengthM < cfg.SpacingM*0.2 || e.LengthM > cfg.SpacingM*2.5 {
			t.Fatalf("edge length %v far from spacing %v", e.LengthM, cfg.SpacingM)
		}
	}
}

func TestPresetConfigs(t *testing.T) {
	aal := PresetConfig(PresetAalborg)
	if aal.Rows*aal.Cols < 20000 {
		t.Errorf("aalborg preset too small: %d vertices", aal.Rows*aal.Cols)
	}
	bj := PresetConfig(PresetBeijing)
	if bj.Rows*bj.Cols < 28000 {
		t.Errorf("beijing preset too small: %d vertices", bj.Rows*bj.Cols)
	}
	if bj.SpacingM <= aal.SpacingM {
		t.Error("beijing (main roads only) should have wider spacing")
	}
	if def := PresetConfig(Preset("bogus")); def.Rows < 2 {
		t.Error("unknown preset should fall back to a usable config")
	}
}

func TestGeneratePanicsOnTinyGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1x1 grid")
		}
	}()
	Generate(Config{Rows: 1, Cols: 1, SpacingM: 100})
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := Generate(PresetConfig(PresetTest))
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(graph.EdgeID(i)), g2.Edge(graph.EdgeID(i))
		if a.From != b.From || a.To != b.To || a.Class != b.Class {
			t.Fatalf("edge %d mismatch after round trip", i)
		}
		if diff := a.LengthM - b.LengthM; diff > 0.02 || diff < -0.02 {
			t.Fatalf("edge %d length drifted: %v vs %v", i, a.LengthM, b.LengthM)
		}
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad record", "X 1 2\n"},
		{"short vertex", "V 1\n"},
		{"bad vertex floats", "V a b\n"},
		{"short edge", "V 1 2\nV 3 4\nE 0 1\n"},
		{"edge before vertices", "E 0 1 10 50 1\n"},
		{"bad class", "V 1 2\nV 3 4\nE 0 1 10 50 9\n"},
		{"edge out of range", "V 1 2\nV 3 4\nE 0 7 10 50 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadGraph(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadGraphSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nV 57.0 9.9\nV 57.1 9.9\nE 0 1 100 50 2\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}
