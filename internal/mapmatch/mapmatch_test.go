package mapmatch

import (
	"math"
	"testing"

	"repro/internal/gps"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/traffic"
	"repro/internal/trajgen"
)

func testNetwork(t testing.TB) *graph.Graph {
	t.Helper()
	return netgen.Generate(netgen.PresetConfig(netgen.PresetTest))
}

func testTraces(t testing.TB, n int, noise float64) (*graph.Graph, *trajgen.Result) {
	t.Helper()
	g := testNetwork(t)
	gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
		Seed: 11, NumTrips: n, EmitGPS: true,
		SamplingIntervalS: 3, GPSNoiseM: noise,
	})
	return g, gen.Generate()
}

// edgeAccuracy returns the fraction of true path edges recovered by
// the matched path (order-respecting containment measured per edge).
func edgeAccuracy(truth, matched graph.Path) float64 {
	inMatched := make(map[graph.EdgeID]struct{}, len(matched))
	for _, e := range matched {
		inMatched[e] = struct{}{}
	}
	hit := 0
	for _, e := range truth {
		if _, ok := inMatched[e]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

func TestMatchRecoversTruePathsLowNoise(t *testing.T) {
	g, res := testTraces(t, 30, 4)
	m := New(g, Config{})
	var accSum float64
	matchedCount := 0
	for i, tr := range res.Raw {
		path, err := m.Match(tr)
		if err != nil {
			continue
		}
		if !g.ValidPath(path) {
			t.Fatalf("trajectory %d: matched path invalid: %v", i, path)
		}
		accSum += edgeAccuracy(res.Collection.Traj(i).Path, path)
		matchedCount++
	}
	if matchedCount < 25 {
		t.Fatalf("only %d/30 trajectories matched", matchedCount)
	}
	if avg := accSum / float64(matchedCount); avg < 0.9 {
		t.Fatalf("average edge recovery = %.2f, want ≥ 0.9", avg)
	}
}

func TestMatchDegradesGracefullyHighNoise(t *testing.T) {
	g, res := testTraces(t, 15, 25)
	m := New(g, Config{SigmaM: 25, CandidateRadiusM: 90})
	ok := 0
	for _, tr := range res.Raw {
		if path, err := m.Match(tr); err == nil {
			if !g.ValidPath(path) {
				t.Fatal("invalid path returned")
			}
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("only %d/15 noisy trajectories matched at all", ok)
	}
}

func TestMatchRejectsInvalidTrajectory(t *testing.T) {
	g := testNetwork(t)
	m := New(g, Config{})
	if _, err := m.Match(&gps.Trajectory{ID: 1}); err == nil {
		t.Fatal("empty trajectory should fail")
	}
}

func TestMatchFarFromNetwork(t *testing.T) {
	g := testNetwork(t)
	m := New(g, Config{})
	tr := &gps.Trajectory{ID: 1, Records: []gps.Record{
		{Pt: g.BBox().Center(), Time: 0},
		{Pt: g.BBox().Center(), Time: 10},
	}}
	// Move fixes far away: +1 degree latitude ≈ 111 km.
	for i := range tr.Records {
		tr.Records[i].Pt.Lat += 1
	}
	if _, err := m.Match(tr); err == nil {
		t.Fatal("fixes far from any road should fail")
	}
}

func TestMatchToTimed(t *testing.T) {
	g, res := testTraces(t, 20, 4)
	m := New(g, Config{})
	okCount := 0
	for i, tr := range res.Raw {
		timed, err := m.MatchToTimed(tr)
		if err != nil {
			continue
		}
		okCount++
		if err := timed.Validate(g); err != nil {
			t.Fatalf("trajectory %d: %v", i, err)
		}
		truth := res.Collection.Traj(i)
		// Total cost must match the GPS span closely.
		if math.Abs(timed.TotalCost()-truth.TotalCost()) > truth.TotalCost()*0.25+15 {
			t.Fatalf("trajectory %d: timed cost %v vs truth %v",
				i, timed.TotalCost(), truth.TotalCost())
		}
		if timed.Depart != tr.Records[0].Time {
			t.Fatalf("trajectory %d: depart mismatch", i)
		}
	}
	if okCount < 15 {
		t.Fatalf("only %d/20 matched", okCount)
	}
}

func TestCandidatesNearOrderingAndRadius(t *testing.T) {
	g := testNetwork(t)
	m := New(g, Config{})
	// Take a point on the first edge.
	e := g.Edge(0)
	pt := g.Vertex(e.From).Pt
	cands := m.candidatesNear(pt)
	if len(cands) == 0 {
		t.Fatal("no candidates at a vertex location")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].dist < cands[i-1].dist {
			t.Fatal("candidates not sorted by distance")
		}
	}
	for _, c := range cands {
		if c.dist > m.cfg.CandidateRadiusM {
			t.Fatal("candidate outside radius")
		}
		if c.frac < 0 || c.frac > 1 {
			t.Fatalf("frac %v out of range", c.frac)
		}
	}
	if len(cands) > m.cfg.MaxCandidates {
		t.Fatalf("too many candidates: %d", len(cands))
	}
}

func TestRouteDistancesSameEdgeForward(t *testing.T) {
	g := testNetwork(t)
	m := New(g, Config{})
	e := g.Edge(0)
	pc := candidate{edge: e.ID, frac: 0.2}
	next := []candidate{{edge: e.ID, frac: 0.7}}
	d := m.routeDistances(pc, next)
	want := 0.5 * e.LengthM
	if math.Abs(d[0]-want) > 1e-9 {
		t.Fatalf("same-edge distance = %v, want %v", d[0], want)
	}
}

func TestRouteDistancesAdjacentEdge(t *testing.T) {
	g := testNetwork(t)
	m := New(g, Config{})
	e := g.Edge(0)
	nexts := g.NextEdges(e.ID)
	if len(nexts) == 0 {
		t.Skip("first edge has no continuation in this network")
	}
	ne := g.Edge(nexts[0])
	pc := candidate{edge: e.ID, frac: 0.5}
	next := []candidate{{edge: ne.ID, frac: 0.5}}
	d := m.routeDistances(pc, next)
	want := 0.5*e.LengthM + 0.5*ne.LengthM
	if math.Abs(d[0]-want) > 1e-6 {
		t.Fatalf("adjacent distance = %v, want %v", d[0], want)
	}
}

func TestMatcherDefaultsFilled(t *testing.T) {
	g := testNetwork(t)
	m := New(g, Config{})
	def := DefaultConfig()
	if m.cfg != def {
		t.Fatalf("config = %+v, want defaults %+v", m.cfg, def)
	}
}

// TestPropertyMatchedPathsAlwaysValid fuzzes the matcher with varying
// noise and sampling rates: whatever it returns must be a valid simple
// path with positive, finite edge times.
func TestPropertyMatchedPathsAlwaysValid(t *testing.T) {
	g := testNetwork(t)
	for seed := int64(0); seed < 6; seed++ {
		noise := 2 + float64(seed)*6
		gen := trajgen.New(g, traffic.NewModel(traffic.Config{}), trajgen.Config{
			Seed: 100 + seed, NumTrips: 10, EmitGPS: true,
			SamplingIntervalS: 1 + float64(seed), GPSNoiseM: noise,
		})
		res := gen.Generate()
		m := New(g, Config{SigmaM: noise + 2, CandidateRadiusM: 40 + noise*2})
		for i, tr := range res.Raw {
			timed, err := m.MatchToTimed(tr)
			if err != nil {
				continue // unmatchable under heavy noise is acceptable
			}
			if err := timed.Validate(g); err != nil {
				t.Fatalf("seed %d trajectory %d: %v", seed, i, err)
			}
			for _, c := range timed.EdgeCosts {
				if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
					t.Fatalf("seed %d trajectory %d: bad cost %v", seed, i, c)
				}
			}
		}
	}
}
