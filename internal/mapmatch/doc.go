// Package mapmatch aligns raw GPS trajectories with road-network
// paths — the ingestion step the paper assumes before training
// (Section 2.1, "map matching is applied to map match GPS records
// onto the road network", citing Newson and Krumm [16]).
//
// The implementation is the hidden Markov model approach of Newson
// and Krumm (SIGSPATIAL 2009): candidate road edges near each fix are
// HMM states, emission probabilities are Gaussian in the perpendicular
// distance, transition probabilities penalize the difference between
// the on-network route length and the great-circle distance, and
// Viterbi decoding yields the most likely edge sequence. MatchToTimed
// additionally "blasts" the trajectory onto the matched path: fix
// timestamps pin progress positions, and per-edge travel times are
// interpolated between the pins, producing the (path, departure,
// per-edge cost) observations of Section 2.1 that training consumes.
//
// A Matcher is safe for concurrent use after construction; batch
// ingestion parallelism lives one level up, in
// pathcost.MatchTrajectories, which shards a trajectory batch across
// a pool of matchers (Config.Workers).
package mapmatch
