package mapmatch

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/graph"
)

// Config tunes the matcher.
type Config struct {
	// SigmaM is the GPS noise standard deviation in meters (emission
	// model); BetaM is the exponential scale of the route-vs-line
	// length discrepancy (transition model).
	SigmaM, BetaM float64
	// CandidateRadiusM bounds the candidate search around each fix;
	// MaxCandidates caps candidates per fix.
	CandidateRadiusM float64
	MaxCandidates    int
	// MaxRouteDistM bounds the Dijkstra expansion between consecutive
	// fixes.
	MaxRouteDistM float64
	// Workers parallelizes batch ingestion (pathcost.MatchTrajectories)
	// across a goroutine pool, one Matcher per worker; ≤ 1 matches
	// sequentially. Results are identical either way.
	Workers int
}

// DefaultConfig mirrors the Newson–Krumm calibration at urban scale.
func DefaultConfig() Config {
	return Config{
		SigmaM:           10,
		BetaM:            20,
		CandidateRadiusM: 60,
		MaxCandidates:    8,
		MaxRouteDistM:    3000,
	}
}

// Matcher matches trajectories against one road network. It is safe
// for concurrent use after construction.
type Matcher struct {
	g    *graph.Graph
	cfg  Config
	proj *geo.Projection
	// Planar segment per edge and a uniform grid index over edge IDs.
	segs     []geo.Segment
	grid     map[[2]int][]graph.EdgeID
	cellSize float64
}

// New builds a matcher (and its spatial index) for g.
func New(g *graph.Graph, cfg Config) *Matcher {
	def := DefaultConfig()
	if cfg.SigmaM == 0 {
		cfg.SigmaM = def.SigmaM
	}
	if cfg.BetaM == 0 {
		cfg.BetaM = def.BetaM
	}
	if cfg.CandidateRadiusM == 0 {
		cfg.CandidateRadiusM = def.CandidateRadiusM
	}
	if cfg.MaxCandidates == 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	if cfg.MaxRouteDistM == 0 {
		cfg.MaxRouteDistM = def.MaxRouteDistM
	}
	m := &Matcher{
		g:        g,
		cfg:      cfg,
		proj:     geo.NewProjection(g.BBox().Center()),
		segs:     make([]geo.Segment, g.NumEdges()),
		grid:     make(map[[2]int][]graph.EdgeID),
		cellSize: cfg.CandidateRadiusM * 2,
	}
	for _, e := range g.Edges() {
		ax, ay := m.proj.ToXY(g.Vertex(e.From).Pt)
		bx, by := m.proj.ToXY(g.Vertex(e.To).Pt)
		seg := geo.Segment{A: geo.XY{X: ax, Y: ay}, B: geo.XY{X: bx, Y: by}}
		m.segs[e.ID] = seg
		m.indexSegment(e.ID, seg)
	}
	return m
}

func (m *Matcher) cellOf(x, y float64) [2]int {
	return [2]int{int(math.Floor(x / m.cellSize)), int(math.Floor(y / m.cellSize))}
}

func (m *Matcher) indexSegment(id graph.EdgeID, s geo.Segment) {
	c1 := m.cellOf(math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y))
	c2 := m.cellOf(math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y))
	for cx := c1[0]; cx <= c2[0]; cx++ {
		for cy := c1[1]; cy <= c2[1]; cy++ {
			key := [2]int{cx, cy}
			m.grid[key] = append(m.grid[key], id)
		}
	}
}

// candidate is one HMM state: an edge with the projection of the fix
// onto it.
type candidate struct {
	edge graph.EdgeID
	frac float64 // position along the edge in [0,1]
	dist float64 // perpendicular distance in meters
}

// candidatesNear returns up to MaxCandidates edges within the radius
// of the fix, nearest first.
func (m *Matcher) candidatesNear(p geo.Point) []candidate {
	x, y := m.proj.ToXY(p)
	pt := geo.XY{X: x, Y: y}
	center := m.cellOf(x, y)
	var cands []candidate
	seen := make(map[graph.EdgeID]struct{})
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, id := range m.grid[[2]int{center[0] + dx, center[1] + dy}] {
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				closest, frac := m.segs[id].ClosestPoint(pt)
				d := closest.Dist(pt)
				if d <= m.cfg.CandidateRadiusM {
					cands = append(cands, candidate{edge: id, frac: frac, dist: d})
				}
			}
		}
	}
	// Partial selection of the nearest MaxCandidates.
	for i := 0; i < len(cands) && i < m.cfg.MaxCandidates; i++ {
		min := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].dist < cands[min].dist {
				min = j
			}
		}
		cands[i], cands[min] = cands[min], cands[i]
	}
	if len(cands) > m.cfg.MaxCandidates {
		cands = cands[:m.cfg.MaxCandidates]
	}
	return cands
}

// Match decodes the most likely path for the trajectory. It returns an
// error when the trajectory is invalid or no candidate chain connects.
func (m *Matcher) Match(tr *gps.Trajectory) (graph.Path, error) {
	seq, _, err := m.decode(tr)
	if err != nil {
		return nil, err
	}
	return m.expandPath(seq)
}

// decode runs the Viterbi pass, returning the matched candidate and
// the timestamp for every fix that had road candidates.
func (m *Matcher) decode(tr *gps.Trajectory) ([]candidate, []float64, error) {
	if err := tr.Validate(); err != nil {
		return nil, nil, err
	}
	type layerState struct {
		cands []candidate
		logp  []float64
		back  []int
		// route[i][j]: network distance from previous layer's cand i to
		// this layer's cand j, reused for backtracking route expansion.
	}
	layers := make([]*layerState, 0, len(tr.Records))
	var times []float64
	emission := func(c candidate) float64 {
		z := c.dist / m.cfg.SigmaM
		return -0.5 * z * z
	}

	var prev *layerState
	var prevRecord gps.Record
	for _, rec := range tr.Records {
		cands := m.candidatesNear(rec.Pt)
		if len(cands) == 0 {
			continue // skip fixes with no nearby road (outliers)
		}
		times = append(times, rec.Time)
		cur := &layerState{
			cands: cands,
			logp:  make([]float64, len(cands)),
			back:  make([]int, len(cands)),
		}
		if prev == nil {
			for j, c := range cands {
				cur.logp[j] = emission(c)
				cur.back[j] = -1
			}
		} else {
			line := geo.Haversine(prevRecord.Pt, rec.Pt)
			for j := range cur.logp {
				cur.logp[j] = math.Inf(-1)
				cur.back[j] = -1
			}
			for i, pc := range prev.cands {
				if math.IsInf(prev.logp[i], -1) {
					continue
				}
				dists := m.routeDistances(pc, cands)
				for j, c := range cands {
					rd := dists[j]
					if math.IsInf(rd, 1) {
						continue
					}
					trans := -math.Abs(rd-line) / m.cfg.BetaM
					lp := prev.logp[i] + trans + emission(c)
					if lp > cur.logp[j] {
						cur.logp[j] = lp
						cur.back[j] = i
					}
				}
			}
			allDead := true
			for _, lp := range cur.logp {
				if !math.IsInf(lp, -1) {
					allDead = false
					break
				}
			}
			if allDead {
				// HMM break: restart the chain at this fix, keeping the
				// best prefix so far (Newson–Krumm split heuristic).
				for j, c := range cands {
					cur.logp[j] = emission(c)
					cur.back[j] = -1
				}
			}
		}
		layers = append(layers, cur)
		prev = cur
		prevRecord = rec
	}
	if len(layers) == 0 {
		return nil, nil, fmt.Errorf("mapmatch: no road candidates near any fix")
	}

	// Backtrack the best final state.
	last := layers[len(layers)-1]
	best := 0
	for j := range last.logp {
		if last.logp[j] > last.logp[best] {
			best = j
		}
	}
	seq := make([]candidate, len(layers))
	j := best
	for li := len(layers) - 1; li >= 0; li-- {
		seq[li] = layers[li].cands[j]
		j = layers[li].back[j]
		if j < 0 && li > 0 {
			// Chain restart: pick that layer's best state independently.
			pl := layers[li-1]
			j = 0
			for k := range pl.logp {
				if pl.logp[k] > pl.logp[j] {
					j = k
				}
			}
		}
	}

	return seq, times, nil
}

// expandPath connects consecutive matched edges with shortest-path
// gap filling and collapses duplicates, producing a valid path.
func (m *Matcher) expandPath(seq []candidate) (graph.Path, error) {
	var out graph.Path
	push := func(e graph.EdgeID) {
		if len(out) == 0 || out[len(out)-1] != e {
			out = append(out, e)
		}
	}
	push(seq[0].edge)
	for i := 1; i < len(seq); i++ {
		cur := seq[i].edge
		prevEdge := out[len(out)-1]
		if cur == prevEdge {
			continue
		}
		if m.g.Adjacent(prevEdge, cur) {
			push(cur)
			continue
		}
		// Fill the gap with the shortest edge chain.
		gapPath, _, ok := m.g.ShortestPath(m.g.Edge(prevEdge).To, m.g.Edge(cur).From, graph.LengthWeight)
		if ok {
			for _, e := range gapPath {
				push(e)
			}
		}
		push(cur)
	}
	// The expansion may still contain a discontinuity when no gap path
	// exists; in that case report failure rather than a broken path.
	for i := 1; i < len(out); i++ {
		if !m.g.Adjacent(out[i-1], out[i]) {
			return nil, fmt.Errorf("mapmatch: matched edges %v and %v are not connectable", out[i-1], out[i])
		}
	}
	// Noise can make the decoded sequence double back on itself;
	// splice out such cycles so the result is a simple path, matching
	// the paper's path definition (distinct vertices).
	out = m.removeLoops(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("mapmatch: match collapsed to an empty path")
	}
	return out, nil
}

// removeLoops cuts cycles from an edge chain: whenever the chain
// returns to an already-visited vertex, the edges of the detour are
// dropped. The input chain must be edge-adjacent; the output is a
// simple, still-adjacent path.
func (m *Matcher) removeLoops(p graph.Path) graph.Path {
	out := make(graph.Path, 0, len(p))
	// visited[v] = number of edges in out when v was the chain head.
	visited := map[graph.VertexID]int{m.g.Edge(p[0]).From: 0}
	for _, e := range p {
		to := m.g.Edge(e).To
		if k, dup := visited[to]; dup {
			// Splice: drop edges k..len(out) (the cycle back to `to`),
			// and un-visit the vertices they introduced.
			for _, dropped := range out[k:] {
				delete(visited, m.g.Edge(dropped).To)
			}
			out = out[:k]
			visited[to] = len(out)
			continue
		}
		out = append(out, e)
		visited[to] = len(out)
	}
	return out
}

// routeDistances returns the network distance in meters from the
// candidate position pc to each candidate in next, travelling forward
// along directed edges, bounded by MaxRouteDistM.
func (m *Matcher) routeDistances(pc candidate, next []candidate) []float64 {
	out := make([]float64, len(next))
	for i := range out {
		out[i] = math.Inf(1)
	}
	eFrom := m.g.Edge(pc.edge)
	remOnEdge := (1 - pc.frac) * eFrom.LengthM

	// Same-edge forward moves need no graph search.
	remaining := 0
	for i, nc := range next {
		if nc.edge == pc.edge && nc.frac >= pc.frac {
			out[i] = (nc.frac - pc.frac) * eFrom.LengthM
		} else {
			remaining++
		}
	}
	if remaining == 0 {
		return out
	}

	// Dijkstra from the end vertex of pc's edge, bounded by the radius.
	dist := map[graph.VertexID]float64{eFrom.To: remOnEdge}
	pq := &vdHeap{{V: eFrom.To, D: remOnEdge}}
	heap.Init(pq)
	targets := make(map[graph.VertexID][]int) // vertex -> indexes of next starting there
	for i, nc := range next {
		if !math.IsInf(out[i], 1) {
			continue
		}
		targets[m.g.Edge(nc.edge).From] = append(targets[m.g.Edge(nc.edge).From], i)
	}
	found := 0
	want := remaining
	for pq.Len() > 0 && found < want {
		it := heap.Pop(pq).(VertexDist)
		if it.D > dist[it.V] {
			continue
		}
		if idxs, ok := targets[it.V]; ok {
			for _, i := range idxs {
				if math.IsInf(out[i], 1) {
					nc := next[i]
					out[i] = it.D + nc.frac*m.g.Edge(nc.edge).LengthM
					found++
				}
			}
			delete(targets, it.V)
		}
		if it.D > m.cfg.MaxRouteDistM {
			break
		}
		for _, eid := range m.g.Out(it.V) {
			e := m.g.Edge(eid)
			nd := it.D + e.LengthM
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
				heap.Push(pq, VertexDist{V: e.To, D: nd})
			}
		}
	}
	return out
}

// VertexDist is a (vertex, distance) heap entry.
type VertexDist struct {
	V graph.VertexID
	D float64
}

type vdHeap []VertexDist

func (h vdHeap) Len() int            { return len(h) }
func (h vdHeap) Less(i, j int) bool  { return h[i].D < h[j].D }
func (h vdHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vdHeap) Push(x interface{}) { *h = append(*h, x.(VertexDist)) }
func (h *vdHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MatchToTimed matches the trajectory and estimates per-edge travel
// times from the fix-to-edge assignment: each matched fix pins the
// vehicle to a progress position along the path at its timestamp, and
// edge boundary crossing times are interpolated between those pins
// ("blasting" the trajectory onto the path, Section 2.1). Edges with
// no pins inherit interpolated times; degenerate cases fall back to a
// length-proportional split of the total duration.
func (m *Matcher) MatchToTimed(tr *gps.Trajectory) (*gps.Matched, error) {
	seq, times, err := m.decode(tr)
	if err != nil {
		return nil, err
	}
	path, err := m.expandPath(seq)
	if err != nil {
		return nil, err
	}
	total := tr.Duration()
	if total <= 0 {
		return nil, fmt.Errorf("mapmatch: zero-duration trajectory")
	}
	costs := m.edgeTimes(path, seq, times)
	if costs == nil {
		// Fallback: proportional-to-length split.
		var lenSum float64
		for _, e := range path {
			lenSum += m.g.Edge(e).LengthM
		}
		costs = make([]float64, len(path))
		for i, e := range path {
			costs[i] = total * m.g.Edge(e).LengthM / lenSum
		}
	}
	return &gps.Matched{
		ID:        tr.ID,
		Path:      path,
		Depart:    tr.Records[0].Time,
		EdgeCosts: costs,
	}, nil
}

// edgeTimes interpolates per-edge travel times from the fix-to-edge
// assignment. It returns nil when fewer than two usable pins exist.
func (m *Matcher) edgeTimes(path graph.Path, seq []candidate, times []float64) []float64 {
	// Cumulative length at each edge boundary: bounds[i] is the travel
	// distance at the start of path[i].
	bounds := make([]float64, len(path)+1)
	firstPos := make(map[graph.EdgeID]int, len(path))
	for i, e := range path {
		bounds[i+1] = bounds[i] + m.g.Edge(e).LengthM
		if _, dup := firstPos[e]; !dup {
			firstPos[e] = i
		}
	}
	// Pins: (progress, time), kept monotone in both coordinates.
	type pin struct{ s, t float64 }
	var pins []pin
	for k, c := range seq {
		pos, ok := firstPos[c.edge]
		if !ok {
			continue // edge spliced out by loop removal
		}
		s := bounds[pos] + c.frac*m.g.Edge(c.edge).LengthM
		if len(pins) > 0 && (s <= pins[len(pins)-1].s || times[k] <= pins[len(pins)-1].t) {
			continue
		}
		pins = append(pins, pin{s: s, t: times[k]})
	}
	if len(pins) < 2 {
		return nil
	}
	// Interpolated (extrapolated at the ends) time at progress s.
	// Extrapolation is clamped near the observed time span: a vehicle
	// pausing at a junction must not blow up boundary estimates.
	tLo := pins[0].t - 5
	tHi := pins[len(pins)-1].t + 5
	timeAt := func(s float64) float64 {
		var t float64
		switch {
		case s <= pins[0].s:
			p0, p1 := pins[0], pins[1]
			t = p0.t - (p0.s-s)*(p1.t-p0.t)/(p1.s-p0.s)
		case s >= pins[len(pins)-1].s:
			p0, p1 := pins[len(pins)-2], pins[len(pins)-1]
			t = p1.t + (s-p1.s)*(p1.t-p0.t)/(p1.s-p0.s)
		default:
			for i := 1; i < len(pins); i++ {
				if s <= pins[i].s {
					p0, p1 := pins[i-1], pins[i]
					t = p0.t + (s-p0.s)*(p1.t-p0.t)/(p1.s-p0.s)
					break
				}
			}
		}
		if t < tLo {
			t = tLo
		}
		if t > tHi {
			t = tHi
		}
		return t
	}
	costs := make([]float64, len(path))
	prev := timeAt(bounds[0])
	for i := range path {
		next := timeAt(bounds[i+1])
		c := next - prev
		if c < 0.1 {
			c = 0.1 // numeric floor: traversal takes some time
		}
		costs[i] = c
		prev = next
	}
	return costs
}
