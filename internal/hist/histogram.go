package hist

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Bucket is a half-open cost range [Lo, Hi) carrying probability Pr.
// Probability mass is uniformly distributed within the bucket.
type Bucket struct {
	Lo, Hi float64
	Pr     float64
}

// Width returns Hi − Lo.
func (b Bucket) Width() float64 { return b.Hi - b.Lo }

// Histogram is a one-dimensional histogram: a set of disjoint,
// strictly increasing buckets whose probabilities sum to one
// (Section 3.1). The zero value is not usable; construct via
// FromBuckets, FromRaw, or the V-Optimal builders.
type Histogram struct {
	buckets []Bucket
}

// validateBuckets runs the FromBuckets shape checks and returns the
// total mass.
func validateBuckets(bs []Bucket) (float64, error) {
	if len(bs) == 0 {
		return 0, fmt.Errorf("hist: no buckets")
	}
	var total float64
	for i, b := range bs {
		if !(b.Hi > b.Lo) {
			return 0, fmt.Errorf("hist: bucket %d has non-positive width [%v,%v)", i, b.Lo, b.Hi)
		}
		if b.Pr < 0 || math.IsNaN(b.Pr) {
			return 0, fmt.Errorf("hist: bucket %d has invalid probability %v", i, b.Pr)
		}
		if i > 0 && b.Lo < bs[i-1].Hi {
			return 0, fmt.Errorf("hist: bucket %d overlaps or is out of order", i)
		}
		total += b.Pr
	}
	if total <= 0 {
		return 0, fmt.Errorf("hist: zero total probability")
	}
	return total, nil
}

// normalizeBuckets validates bs in place and divides every probability
// by the total — the FromBuckets normalization without the defensive
// copy, for callers that own bs.
func normalizeBuckets(bs []Bucket) error {
	total, err := validateBuckets(bs)
	if err != nil {
		return err
	}
	for i := range bs {
		bs[i].Pr /= total
	}
	return nil
}

// FromBuckets validates and constructs a histogram from buckets. The
// buckets must be non-empty, each with Hi > Lo and Pr ≥ 0, pairwise
// disjoint and sorted; probabilities are normalized to sum to one.
func FromBuckets(bs []Bucket) (*Histogram, error) {
	total, err := validateBuckets(bs)
	if err != nil {
		return nil, err
	}
	out := make([]Bucket, len(bs))
	copy(out, bs)
	for i := range out {
		out[i].Pr /= total
	}
	return &Histogram{buckets: out}, nil
}

// fromBucketsOwned is FromBuckets taking ownership of bs: it
// normalizes in place instead of copying. The float operations are
// identical, so results are bit-identical to FromBuckets.
func fromBucketsOwned(bs []Bucket) (*Histogram, error) {
	if err := normalizeBuckets(bs); err != nil {
		return nil, err
	}
	return &Histogram{buckets: bs}, nil
}

// FromBucketsExact is FromBuckets for already-normalized input: it
// runs the same shape validation but keeps every probability exactly
// as given instead of renormalizing, requiring the total mass to lie
// within tol of one. Deserializers use it so that a load followed by
// a save reproduces the input bytes — FromBuckets' renormalization
// divides by a total that is only approximately one, perturbing every
// value at the bit level.
func FromBucketsExact(bs []Bucket, tol float64) (*Histogram, error) {
	if len(bs) == 0 {
		return nil, fmt.Errorf("hist: no buckets")
	}
	var total float64
	for i, b := range bs {
		if !(b.Hi > b.Lo) {
			return nil, fmt.Errorf("hist: bucket %d has non-positive width [%v,%v)", i, b.Lo, b.Hi)
		}
		if b.Pr < 0 || math.IsNaN(b.Pr) {
			return nil, fmt.Errorf("hist: bucket %d has invalid probability %v", i, b.Pr)
		}
		if i > 0 && b.Lo < bs[i-1].Hi {
			return nil, fmt.Errorf("hist: bucket %d overlaps or is out of order", i)
		}
		total += b.Pr
	}
	if math.Abs(total-1) > tol {
		return nil, fmt.Errorf("hist: bucket mass %v is not normalized (tolerance %v)", total, tol)
	}
	return &Histogram{buckets: append([]Bucket(nil), bs...)}, nil
}

// MustFromBuckets is FromBuckets that panics on error; for fixtures
// and generators whose inputs are known-valid by construction.
func MustFromBuckets(bs []Bucket) *Histogram {
	h, err := FromBuckets(bs)
	if err != nil {
		panic(err)
	}
	return h
}

// Point returns a histogram concentrated on the resolution-wide bucket
// starting at v; used for speed-limit fallback costs.
func Point(v, resolution float64) *Histogram {
	return MustFromBuckets([]Bucket{{Lo: v, Hi: v + resolution, Pr: 1}})
}

// NumBuckets returns the bucket count b.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Buckets returns the backing bucket slice; callers must not modify it.
func (h *Histogram) Buckets() []Bucket { return h.buckets }

// Min returns the lower support bound (used by shift-and-enlarge).
func (h *Histogram) Min() float64 { return h.buckets[0].Lo }

// Max returns the upper support bound (used by shift-and-enlarge).
func (h *Histogram) Max() float64 { return h.buckets[len(h.buckets)-1].Hi }

// Mean returns the expected value under uniform-within-bucket.
func (h *Histogram) Mean() float64 {
	var m float64
	for _, b := range h.buckets {
		m += b.Pr * (b.Lo + b.Hi) / 2
	}
	return m
}

// Variance returns the variance under uniform-within-bucket.
func (h *Histogram) Variance() float64 {
	mu := h.Mean()
	var v float64
	for _, b := range h.buckets {
		mid := (b.Lo + b.Hi) / 2
		w := b.Width()
		// E[X²] within a uniform bucket = mid² + w²/12.
		v += b.Pr * (mid*mid + w*w/12)
	}
	return v - mu*mu
}

// CDF returns P(X ≤ x), clamped to [0, 1] against floating-point
// accumulation error.
func (h *Histogram) CDF(x float64) float64 {
	var acc float64
	for _, b := range h.buckets {
		switch {
		case x >= b.Hi:
			acc += b.Pr
		case x <= b.Lo:
			return clamp01(acc)
		default:
			return clamp01(acc + b.Pr*(x-b.Lo)/b.Width())
		}
	}
	return clamp01(acc)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ProbWithin returns P(X ≤ budget); convenience alias used by the
// stochastic routing queries ("probability of arriving within x").
func (h *Histogram) ProbWithin(budget float64) float64 { return h.CDF(budget) }

// Quantile returns the smallest x with CDF(x) ≥ q, for q in [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	var acc float64
	for _, b := range h.buckets {
		if acc+b.Pr >= q {
			frac := (q - acc) / b.Pr
			return b.Lo + frac*b.Width()
		}
		acc += b.Pr
	}
	return h.Max()
}

// DensityAt returns the probability density at x (0 outside support,
// left-continuous at bucket edges).
func (h *Histogram) DensityAt(x float64) float64 {
	i := sort.Search(len(h.buckets), func(i int) bool { return h.buckets[i].Hi > x })
	if i >= len(h.buckets) {
		return 0
	}
	b := h.buckets[i]
	if x < b.Lo {
		return 0
	}
	return b.Pr / b.Width()
}

// MassOn returns the probability mass on [lo, hi) under
// uniform-within-bucket semantics.
func (h *Histogram) MassOn(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	var acc float64
	for _, b := range h.buckets {
		ol := math.Max(lo, b.Lo)
		oh := math.Min(hi, b.Hi)
		if oh > ol {
			acc += b.Pr * (oh - ol) / b.Width()
		}
	}
	return acc
}

// Sample draws one value using u ∈ [0,1) as the uniform source.
func (h *Histogram) Sample(u float64) float64 {
	return h.Quantile(u)
}

// Shift returns a histogram translated by delta (used when composing
// departure-time intervals).
func (h *Histogram) Shift(delta float64) *Histogram {
	bs := make([]Bucket, len(h.buckets))
	for i, b := range h.buckets {
		bs[i] = Bucket{Lo: b.Lo + delta, Hi: b.Hi + delta, Pr: b.Pr}
	}
	return &Histogram{buckets: bs}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	bs := make([]Bucket, len(h.buckets))
	copy(bs, h.buckets)
	return &Histogram{buckets: bs}
}

// String renders the histogram compactly, e.g. "{[40,50):0.100 ...}".
func (h *Histogram) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, b := range h.buckets {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "[%g,%g):%.4f", b.Lo, b.Hi, b.Pr)
	}
	sb.WriteByte('}')
	return sb.String()
}

// weightedInterval is an intermediate (possibly overlapping) interval
// mass produced by convolution and hyper-bucket flattening.
type weightedInterval struct {
	lo, hi float64
	pr     float64
}

// rearrangeScratch pools the transient buffers of one rearrangement
// (the cut set, and for the cuts-only entry point also the interval
// copy and the bucket workspace), so the evaluator's per-fold
// rearrangements stop allocating once warm.
type rearrangeScratch struct {
	cuts  []float64
	wi    []weightedInterval
	bs    []Bucket
	act   []int     // live-interval working set of the sweep
	costs []float64 // adjacent-pair merge costs for compression
}

var rearrangePool = sync.Pool{New: func() any { return new(rearrangeScratch) }}

// rearrange implements the bucket rearrangement of Section 4.2: it
// overlays possibly-overlapping uniform interval masses, splits at all
// interval boundaries, and returns disjoint buckets whose mass is the
// length-proportional share of each contributing interval — exactly
// the procedure of the paper's Figure 7 example. ivals is sorted in
// place.
func rearrange(ivals []weightedInterval) (*Histogram, error) {
	sc := rearrangePool.Get().(*rearrangeScratch)
	defer rearrangePool.Put(sc)
	bs, err := rearrangeInto(sc, nil, ivals)
	if err != nil {
		return nil, err
	}
	return fromBucketsOwned(bs)
}

// rearrangeInto is the rearrangement core: it splits at all interval
// boundaries and emits the disjoint density-merged buckets into bs
// (grown as needed), without the final normalization. The cut set
// lives in sc; ivals is sorted in place.
func rearrangeInto(sc *rearrangeScratch, bs []Bucket, ivals []weightedInterval) ([]Bucket, error) {
	if len(ivals) == 0 {
		return nil, fmt.Errorf("hist: rearrange of zero intervals")
	}
	cuts := sc.cuts[:0]
	if cap(cuts) < 2*len(ivals) {
		cuts = make([]float64, 0, 2*len(ivals))
	}
	for _, iv := range ivals {
		if !(iv.hi > iv.lo) {
			sc.cuts = cuts
			return nil, fmt.Errorf("hist: interval [%v,%v) has non-positive width", iv.lo, iv.hi)
		}
		cuts = append(cuts, iv.lo, iv.hi)
	}
	sort.Float64s(cuts)
	cuts = dedupFloats(cuts)
	sc.cuts = cuts

	// Sort intervals by lo so each elementary cell only scans forward.
	slices.SortFunc(ivals, func(a, b weightedInterval) int {
		switch {
		case a.lo < b.lo:
			return -1
		case b.lo < a.lo:
			return 1
		default:
			return 0
		}
	})

	if cap(bs) < len(cuts)-1 {
		bs = make([]Bucket, 0, len(cuts)-1)
	} else {
		bs = bs[:0]
	}
	// Sweep the elementary cells left to right with a live-interval
	// working set: each interval enters when its lo crosses the cell
	// (intervals are sorted by lo, so entries arrive in index order) and
	// is compacted out once fully behind the sweep. Every interval is
	// touched once per cell it actually overlaps, instead of being
	// rescanned from the start for every cell. Compaction preserves
	// index order, so the per-cell accumulation visits intervals in the
	// same sequence as the full rescan did — the sums are bit-identical.
	act := sc.act[:0]
	next := 0
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		for next < len(ivals) && ivals[next].lo < hi {
			act = append(act, next)
			next++
		}
		var pr float64
		w := 0
		for _, j := range act {
			iv := ivals[j]
			if iv.hi <= lo {
				continue // fully behind the sweep; drop from the set
			}
			act[w] = j
			w++
			pr += iv.pr * (hi - lo) / (iv.hi - iv.lo)
		}
		act = act[:w]
		if pr > 0 {
			bs = append(bs, Bucket{Lo: lo, Hi: hi, Pr: pr})
		}
	}
	sc.act = act
	// Merge adjacent cells with (near-)identical density to keep the
	// result minimal without changing the distribution.
	return mergeEqualDensity(bs), nil
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func mergeEqualDensity(bs []Bucket) []Bucket {
	if len(bs) < 2 {
		return bs
	}
	const tol = 1e-12
	out := bs[:1]
	for _, b := range bs[1:] {
		last := &out[len(out)-1]
		if b.Lo == last.Hi {
			d1 := last.Pr / last.Width()
			d2 := b.Pr / b.Width()
			if math.Abs(d1-d2) <= tol*(d1+d2+1) {
				last.Hi = b.Hi
				last.Pr += b.Pr
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

// Convolve returns the distribution of X+Y for independent X, Y
// (the ⊙ operator of the legacy baseline, Section 2.3). Each pair of
// buckets contributes the interval sum [loX+loY, hiX+hiY) with mass
// prX·prY; overlaps are resolved by rearrangement, mirroring the
// paper's uniform-within-bucket treatment.
func Convolve(x, y *Histogram) *Histogram {
	ivals := make([]weightedInterval, 0, len(x.buckets)*len(y.buckets))
	for _, bx := range x.buckets {
		for _, by := range y.buckets {
			ivals = append(ivals, weightedInterval{
				lo: bx.Lo + by.Lo,
				hi: bx.Hi + by.Hi,
				pr: bx.Pr * by.Pr,
			})
		}
	}
	h, err := rearrange(ivals)
	if err != nil {
		// Inputs are valid histograms, so intervals are valid; this is
		// unreachable but kept explicit.
		panic(err)
	}
	return h
}

// ConvolveAll folds Convolve over hs left to right. It panics on an
// empty input because the sum of zero distributions is undefined.
func ConvolveAll(hs []*Histogram) *Histogram {
	if len(hs) == 0 {
		panic("hist: ConvolveAll of no histograms")
	}
	acc := hs[0]
	for _, h := range hs[1:] {
		acc = Convolve(acc, h)
	}
	return acc
}

// Rearranged builds a histogram from raw interval masses (exported for
// the multi-dimensional flattening in Section 4.2).
func Rearranged(intervals []Bucket) (*Histogram, error) {
	sc := rearrangePool.Get().(*rearrangeScratch)
	defer rearrangePool.Put(sc)
	wi := fillWeighted(sc, intervals)
	bs, err := rearrangeInto(sc, nil, wi)
	if err != nil {
		return nil, err
	}
	return fromBucketsOwned(bs)
}

// fillWeighted copies interval buckets into the scratch's pooled
// weightedInterval buffer.
func fillWeighted(sc *rearrangeScratch, intervals []Bucket) []weightedInterval {
	wi := sc.wi
	if cap(wi) < len(intervals) {
		wi = make([]weightedInterval, len(intervals))
	} else {
		wi = wi[:len(intervals)]
	}
	for i, b := range intervals {
		wi[i] = weightedInterval{lo: b.Lo, hi: b.Hi, pr: b.Pr}
	}
	sc.wi = wi
	return wi
}

// RearrangedCuts is Rearranged followed by Compress(maxBuckets),
// returning only the resulting bucket boundaries. The evaluator
// re-buckets its accumulator axis with it on every fold; keeping the
// interval copy, the cut set and the bucket workspace pooled makes the
// warm path allocate nothing but the returned boundary slice. The
// float operations replicate Rearranged+Compress exactly, so the
// boundaries are bit-identical to that composition.
func RearrangedCuts(intervals []Bucket, maxBuckets int) ([]float64, error) {
	sc := rearrangePool.Get().(*rearrangeScratch)
	defer rearrangePool.Put(sc)
	wi := fillWeighted(sc, intervals)
	bs, err := rearrangeInto(sc, sc.bs, wi)
	if err != nil {
		return nil, err
	}
	sc.bs = bs[:0]
	// Rearranged ends in the FromBuckets normalization.
	if err := normalizeBuckets(bs); err != nil {
		return nil, err
	}
	// Compress merges on a working copy (bs already is one) and
	// re-normalizes through FromBuckets; it no-ops when small enough.
	if maxBuckets >= 1 && len(bs) > maxBuckets {
		bs = compressBucketsInto(bs, maxBuckets, sc)
		if err := normalizeBuckets(bs); err != nil {
			panic(err) // merging valid disjoint buckets keeps them valid
		}
	}
	cuts := make([]float64, 0, len(bs)+1)
	for _, b := range bs {
		cuts = append(cuts, b.Lo)
	}
	cuts = append(cuts, bs[len(bs)-1].Hi)
	return cuts, nil
}

// compressBuckets is the Compress merge loop operating in place on a
// caller-owned working slice.
func compressBuckets(bs []Bucket, maxBuckets int) []Bucket {
	return compressBucketsInto(bs, maxBuckets, nil)
}

// compressBucketsInto is compressBuckets with the adjacent-pair cost
// array kept in pooled scratch (when sc is non-nil). mergeCost is a
// pure function of the two buckets, so each merge invalidates only the
// (at most two) pairs adjacent to the merge point; every other cached
// cost is exactly what a full rescan would recompute. The selection
// scan keeps the first-strictly-smaller tie-break of the rescan loop,
// so the merge sequence — and every output byte — is identical.
func compressBucketsInto(bs []Bucket, maxBuckets int, sc *rearrangeScratch) []Bucket {
	if len(bs) <= maxBuckets {
		return bs
	}
	var costs []float64
	if sc != nil && cap(sc.costs) >= len(bs)-1 {
		costs = sc.costs[:len(bs)-1]
	} else {
		costs = make([]float64, len(bs)-1)
		if sc != nil {
			sc.costs = costs
		}
	}
	for i := range costs {
		costs[i] = mergeCost(bs[i], bs[i+1])
	}
	for len(bs) > maxBuckets {
		bestIdx, bestCost := 0, costs[0]
		for i := 1; i < len(costs); i++ {
			if costs[i] < bestCost {
				bestCost, bestIdx = costs[i], i
			}
		}
		a, b := bs[bestIdx], bs[bestIdx+1]
		bs[bestIdx] = Bucket{Lo: a.Lo, Hi: b.Hi, Pr: a.Pr + b.Pr}
		bs = append(bs[:bestIdx+1], bs[bestIdx+2:]...)
		costs = append(costs[:bestIdx], costs[bestIdx+1:]...)
		if bestIdx > 0 {
			costs[bestIdx-1] = mergeCost(bs[bestIdx-1], bs[bestIdx])
		}
		if bestIdx < len(costs) {
			costs[bestIdx] = mergeCost(bs[bestIdx], bs[bestIdx+1])
		}
	}
	return bs
}

// Compress reduces the histogram to at most maxBuckets buckets by
// repeatedly merging the adjacent pair whose merge increases the
// squared-error of the piecewise-uniform density least. Used to bound
// state growth in the chain evaluator; a no-op when already small.
func (h *Histogram) Compress(maxBuckets int) *Histogram {
	if maxBuckets < 1 || len(h.buckets) <= maxBuckets {
		return h
	}
	bs := make([]Bucket, len(h.buckets))
	copy(bs, h.buckets)
	bs = compressBuckets(bs, maxBuckets)
	out, err := fromBucketsOwned(bs)
	if err != nil {
		panic(err) // merging valid disjoint buckets keeps them valid
	}
	return out
}

// mergeCost scores merging adjacent buckets a and b: the L2 distance
// between the original two-step density and the merged flat density,
// plus the mass "smeared" into any gap between them.
func mergeCost(a, b Bucket) float64 {
	lo, hi := a.Lo, b.Hi
	w := hi - lo
	dm := (a.Pr + b.Pr) / w
	da := a.Pr / a.Width()
	db := b.Pr / b.Width()
	cost := (da-dm)*(da-dm)*a.Width() + (db-dm)*(db-dm)*b.Width()
	if gap := b.Lo - a.Hi; gap > 0 {
		cost += dm * dm * gap
	}
	return cost
}

// SquaredError computes SE(H, D) of Section 3.1: the sum over the raw
// distribution's cost values of the squared difference between the
// histogram's per-value probability estimate and the raw probability.
// The histogram's estimate for a lattice value is its bucket
// probability split uniformly over the lattice points the bucket
// covers.
func (h *Histogram) SquaredError(d *Raw) float64 {
	var se float64
	for _, e := range d.Entries {
		est := h.MassOn(e.Value, e.Value+d.Resolution)
		diff := est - e.Perc
		se += diff * diff
	}
	return se
}

// Dominates reports whether h first-order stochastically dominates g:
// P(h ≤ x) ≥ P(g ≤ x) at every x (h is never worse). Stochastic
// routing algorithms use this to discard dominated candidate paths.
func (h *Histogram) Dominates(g *Histogram) bool {
	cuts := make([]float64, 0, 2*(len(h.buckets)+len(g.buckets)))
	for _, b := range h.buckets {
		cuts = append(cuts, b.Lo, b.Hi)
	}
	for _, b := range g.buckets {
		cuts = append(cuts, b.Lo, b.Hi)
	}
	sort.Float64s(cuts)
	cuts = dedupFloats(cuts)
	for _, x := range cuts {
		if h.CDF(x) < g.CDF(x)-1e-12 {
			return false
		}
	}
	return true
}
