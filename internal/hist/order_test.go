package hist

import (
	"math/rand"
	"testing"
)

// Unit tests for the ordering invariants that the deterministic-
// serialization and bit-reproducibility guarantees rest on. These
// previously held only transitively (equivalence tests comparing
// whole pipelines); here they are pinned directly.

// lexLess is the ordering ForEachSorted promises.
func lexLess(a, b CellKey) bool {
	for d := 0; d < MaxDims; d++ {
		if a[d] != b[d] {
			return a[d] < b[d]
		}
	}
	return false
}

// orderTestMulti builds a 3-dimensional multi holding the given
// cells, inserted in the order perm visits them.
func orderTestMulti(t *testing.T, rnd *rand.Rand, cells []CellKey, prs []float64, perm []int) *Multi {
	t.Helper()
	bounds := [][]float64{
		{0, 1, 2, 3, 4, 5},
		{0, 10, 20, 30},
		{0, 0.5, 1.5, 2.5, 4},
	}
	m, err := NewMulti(bounds)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range perm {
		k := cells[i]
		m.SetCell([]int{int(k[0]), int(k[1]), int(k[2])}, prs[i])
	}
	return m
}

// orderTestCells draws n distinct cell keys within the orderTestMulti grid,
// with adversarial probabilities spanning 16 orders of magnitude so
// any accumulation-order difference shows up in the sums.
func orderTestCells(rnd *rand.Rand, n int) ([]CellKey, []float64) {
	seen := make(map[CellKey]bool)
	var cells []CellKey
	var prs []float64
	for len(cells) < n {
		var k CellKey
		k[0] = uint16(rnd.Intn(5))
		k[1] = uint16(rnd.Intn(3))
		k[2] = uint16(rnd.Intn(4))
		if seen[k] {
			continue
		}
		seen[k] = true
		cells = append(cells, k)
		// Mix huge and tiny masses: (a + tiny) + tiny ≠ a + (tiny + tiny)
		// in float64, so ordering bugs cannot hide.
		if len(cells)%3 == 0 {
			prs = append(prs, 1.0)
		} else {
			prs = append(prs, rnd.Float64()*1e-16)
		}
	}
	return cells, prs
}

// INVARIANT: ForEachSorted visits occupied cells in strictly
// increasing lexicographic key order, regardless of insertion order.
func TestForEachSortedLexicographicOrder(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		cells, prs := orderTestCells(rnd, 12+rnd.Intn(20))
		perm := rnd.Perm(len(cells))
		m := orderTestMulti(t, rnd, cells, prs, perm)

		var visited []CellKey
		m.ForEachSorted(func(k CellKey, pr float64) {
			visited = append(visited, k)
		})
		if len(visited) != len(cells) {
			t.Fatalf("trial %d: visited %d cells, want %d", trial, len(visited), len(cells))
		}
		for i := 1; i < len(visited); i++ {
			if !lexLess(visited[i-1], visited[i]) {
				t.Fatalf("trial %d: visit order not strictly lexicographic at %d: %v !< %v",
					trial, i, visited[i-1], visited[i])
			}
		}
	}
}

// INVARIANT: the visit sequence — keys and values — is identical for
// two multis holding the same cells inserted in different orders, so
// every consumer of ForEachSorted (serialization, Total, marginals)
// is insertion-order independent.
func TestForEachSortedInsertionOrderIndependent(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		cells, prs := orderTestCells(rnd, 12+rnd.Intn(20))
		a := orderTestMulti(t, rnd, cells, prs, rnd.Perm(len(cells)))
		b := orderTestMulti(t, rnd, cells, prs, rnd.Perm(len(cells)))

		type visit struct {
			k  CellKey
			pr float64
		}
		var va, vb []visit
		a.ForEachSorted(func(k CellKey, pr float64) { va = append(va, visit{k, pr}) })
		b.ForEachSorted(func(k CellKey, pr float64) { vb = append(vb, visit{k, pr}) })
		if len(va) != len(vb) {
			t.Fatalf("trial %d: %d vs %d visits", trial, len(va), len(vb))
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("trial %d: visit %d differs: %+v vs %+v", trial, i, va[i], vb[i])
			}
		}

		// The derived accumulations must be bit-identical too.
		if a.Total() != b.Total() {
			t.Fatalf("trial %d: totals differ: %v vs %v", trial, a.Total(), b.Total())
		}
		ma, err1 := a.MarginalOnto([]int{1, 2})
		mb, err2 := b.MarginalOnto([]int{1, 2})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		var sa, sb []visit
		ma.ForEachSorted(func(k CellKey, pr float64) { sa = append(sa, visit{k, pr}) })
		mb.ForEachSorted(func(k CellKey, pr float64) { sb = append(sb, visit{k, pr}) })
		if len(sa) != len(sb) {
			t.Fatalf("trial %d: marginal sizes differ", trial)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("trial %d: marginal cell %d differs bit-level: %+v vs %+v", trial, i, sa[i], sb[i])
			}
		}
		ha, err1 := a.SumHistogram(0)
		hb, err2 := b.SumHistogram(0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		ba, bb := ha.Buckets(), hb.Buckets()
		if len(ba) != len(bb) {
			t.Fatalf("trial %d: sum histograms differ in size", trial)
		}
		for i := range ba {
			if ba[i] != bb[i] {
				t.Fatalf("trial %d: sum histogram bucket %d differs: %+v vs %+v", trial, i, ba[i], bb[i])
			}
		}
	}
}
