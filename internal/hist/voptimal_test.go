package hist

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewRawValidation(t *testing.T) {
	if _, err := NewRaw(nil, 1); err == nil {
		t.Error("empty samples should error")
	}
	if _, err := NewRaw([]float64{1}, 0); err == nil {
		t.Error("zero resolution should error")
	}
	if _, err := NewRaw([]float64{math.NaN()}, 1); err == nil {
		t.Error("NaN sample should error")
	}
	if _, err := NewRaw([]float64{math.Inf(1)}, 1); err == nil {
		t.Error("Inf sample should error")
	}
}

func TestNewRawSnapsAndNormalizes(t *testing.T) {
	r, err := NewRaw([]float64{10.2, 9.8, 10.4, 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumDistinct() != 2 {
		t.Fatalf("distinct = %d, want 2 (10 and 20)", r.NumDistinct())
	}
	if !almostEq(r.Prob(10), 0.75, 1e-12) {
		t.Fatalf("P(10) = %v, want 0.75", r.Prob(10))
	}
	if !almostEq(r.Prob(20), 0.25, 1e-12) {
		t.Fatalf("P(20) = %v", r.Prob(20))
	}
	if r.Prob(15) != 0 {
		t.Fatal("P(absent) must be 0")
	}
	if r.Min() != 10 || r.Max() != 20 {
		t.Fatalf("range [%v,%v]", r.Min(), r.Max())
	}
	if !almostEq(r.Mean(), 12.5, 1e-12) {
		t.Fatalf("mean = %v, want 12.5", r.Mean())
	}
	if r.StorageEntries() != 2 {
		t.Fatal("storage entries")
	}
	vs := r.Values()
	if len(vs) != 2 || vs[0] != 10 || vs[1] != 20 {
		t.Fatalf("values = %v", vs)
	}
}

func TestVOptimalSingleBucket(t *testing.T) {
	raw, _ := NewRaw([]float64{1, 2, 3, 4}, 1)
	h, err := VOptimal(raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 1 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("support [%v,%v), want [1,5)", h.Min(), h.Max())
	}
}

func TestVOptimalSeparatesModes(t *testing.T) {
	// Two well-separated modes; with b=2 the cut must fall between them.
	var samples []float64
	for i := 0; i < 50; i++ {
		samples = append(samples, 10+float64(i%3)) // 10,11,12
		samples = append(samples, 100+float64(i%3))
	}
	raw, _ := NewRaw(samples, 1)
	h, err := VOptimal(raw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 2 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	b := h.Buckets()
	if b[0].Hi > 100 || b[1].Lo < 13 {
		t.Fatalf("cut not between modes: %v", h)
	}
	if !almostEq(b[0].Pr, 0.5, 1e-9) || !almostEq(b[1].Pr, 0.5, 1e-9) {
		t.Fatalf("mode masses: %v", h)
	}
}

func TestVOptimalErrorMonotoneInB(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	samples := make([]float64, 300)
	for i := range samples {
		samples[i] = math.Round(rnd.NormFloat64()*15 + 100)
	}
	raw, _ := NewRaw(samples, 1)
	prev := math.Inf(1)
	for b := 1; b <= 8; b++ {
		e, err := VOptimalError(raw, b)
		if err != nil {
			t.Fatal(err)
		}
		if e > prev+1e-12 {
			t.Fatalf("error increased at b=%d: %v > %v", b, e, prev)
		}
		prev = e
	}
}

func TestVOptimalBExceedsDistinct(t *testing.T) {
	raw, _ := NewRaw([]float64{5, 7}, 1)
	h, err := VOptimal(raw, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 2 {
		t.Fatalf("buckets = %d, want clamped to 2", h.NumBuckets())
	}
}

func TestVOptimalInvalidArgs(t *testing.T) {
	raw, _ := NewRaw([]float64{1}, 1)
	if _, err := VOptimal(raw, 0); err == nil {
		t.Error("b=0 should error")
	}
	if _, err := VOptimal(&Raw{}, 1); err == nil {
		t.Error("empty raw should error")
	}
}

func TestVOptimalMassMatchesRaw(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	samples := make([]float64, 500)
	for i := range samples {
		if i%3 == 0 {
			samples[i] = math.Round(50 + rnd.NormFloat64()*5)
		} else {
			samples[i] = math.Round(90 + rnd.NormFloat64()*10)
		}
	}
	raw, _ := NewRaw(samples, 1)
	for b := 1; b <= 6; b++ {
		h, err := VOptimal(raw, b)
		if err != nil {
			t.Fatal(err)
		}
		// Each bucket's probability must equal the raw mass it covers.
		for _, bk := range h.Buckets() {
			var mass float64
			for _, e := range raw.Entries {
				if e.Value >= bk.Lo && e.Value < bk.Hi {
					mass += e.Perc
				}
			}
			if !almostEq(mass, bk.Pr, 1e-9) {
				t.Fatalf("b=%d bucket [%v,%v): pr %v vs raw mass %v", b, bk.Lo, bk.Hi, bk.Pr, mass)
			}
		}
	}
}

func TestAutoBucketCountBimodal(t *testing.T) {
	// Clearly bimodal data: Auto should pick at least 2 buckets.
	rnd := rand.New(rand.NewSource(21))
	var samples []float64
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			samples = append(samples, math.Round(60+rnd.NormFloat64()*2))
		} else {
			samples = append(samples, math.Round(120+rnd.NormFloat64()*2))
		}
	}
	res, err := AutoBucketCount(samples, 1, DefaultAutoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen < 2 {
		t.Fatalf("chosen = %d for bimodal data, want ≥ 2 (errors %v)", res.Chosen, res.Errors)
	}
	// E_b must be non-increasing in expectation for the recorded prefix.
	for i := 1; i < len(res.Errors)-1; i++ {
		if res.Errors[i] > res.Errors[i-1]*1.5 {
			t.Fatalf("error curve spikes at b=%d: %v", i+1, res.Errors)
		}
	}
}

func TestAutoBucketCountUniform(t *testing.T) {
	// Near-uniform single-regime data: 1 bucket should suffice (the
	// error drop from adding buckets is small).
	rnd := rand.New(rand.NewSource(17))
	samples := make([]float64, 600)
	for i := range samples {
		samples[i] = math.Round(100 + rnd.Float64()*10)
	}
	res, err := AutoBucketCount(samples, 1, DefaultAutoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen > 3 {
		t.Fatalf("chosen = %d for uniform data, want small", res.Chosen)
	}
}

func TestAutoBucketCountTinySample(t *testing.T) {
	res, err := AutoBucketCount([]float64{42, 43}, 1, DefaultAutoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen != 1 {
		t.Fatalf("chosen = %d, want 1 for tiny samples", res.Chosen)
	}
}

func TestAutoBucketCountBadConfig(t *testing.T) {
	cfg := DefaultAutoConfig()
	cfg.Folds = 1
	if _, err := AutoBucketCount([]float64{1, 2, 3}, 1, cfg); err == nil {
		t.Fatal("folds=1 should error")
	}
}

func TestAutoHistogramAccuracyVsStatic(t *testing.T) {
	// Auto should be roughly as accurate as a generous static choice.
	rnd := rand.New(rand.NewSource(33))
	var samples []float64
	for i := 0; i < 900; i++ {
		switch i % 3 {
		case 0:
			samples = append(samples, math.Round(60+rnd.NormFloat64()*3))
		case 1:
			samples = append(samples, math.Round(110+rnd.NormFloat64()*4))
		default:
			samples = append(samples, math.Round(160+rnd.NormFloat64()*3))
		}
	}
	auto, res, err := AutoHistogram(samples, 1, DefaultAutoConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := NewRaw(samples, 1)
	sta1, _ := VOptimal(raw, 1)
	if auto.SquaredError(raw) > sta1.SquaredError(raw) {
		t.Fatalf("Auto (b=%d) worse than a single bucket", res.Chosen)
	}
	if res.Chosen < 2 {
		t.Fatalf("trimodal data chose b=%d", res.Chosen)
	}
}

func TestStaticHistogram(t *testing.T) {
	h, err := StaticHistogram([]float64{1, 2, 3, 10, 11, 12}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 2 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	if _, err := StaticHistogram(nil, 1, 2); err == nil {
		t.Fatal("empty samples should error")
	}
}

func TestSplitFoldsDeterministicPartition(t *testing.T) {
	samples := make([]float64, 103)
	for i := range samples {
		samples[i] = float64(i)
	}
	folds := splitFolds(samples, 5, 42)
	total := 0
	seen := make(map[float64]bool)
	for _, f := range folds {
		total += len(f)
		for _, v := range f {
			if seen[v] {
				t.Fatalf("value %v in two folds", v)
			}
			seen[v] = true
		}
	}
	if total != len(samples) {
		t.Fatalf("folds cover %d of %d samples", total, len(samples))
	}
	// Deterministic for a fixed seed.
	again := splitFolds(samples, 5, 42)
	for i := range folds {
		if len(folds[i]) != len(again[i]) {
			t.Fatal("fold split not deterministic")
		}
	}
}
