package hist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Edge-case coverage for RemapDim/RemapTable/UnionBounds under the
// columnar layout, where remapping is a single linear pass emitting
// sorted cells and the identity remap is a pointer-preserving no-op.

// Identical bounds: the no-op fast path returns the receiver itself.
func TestRemapDimIdenticalBoundsNoOp(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1, 2}, {0, 5, 10}})
	m.SetCell([]int{0, 1}, 0.25)
	m.SetCell([]int{1, 0}, 0.75)
	same := append([]float64(nil), m.Bounds(1)...)
	r, err := m.RemapDim(1, same)
	if err != nil {
		t.Fatal(err)
	}
	if r != m {
		t.Fatal("remap onto identical bounds should return the receiver (no-op fast path)")
	}
	// UnionBounds of equal sets short-circuits to the first operand.
	u := UnionBounds(m.Bounds(0), []float64{0, 1, 2})
	if len(u) != 3 || &u[0] != &m.Bounds(0)[0] {
		t.Fatal("UnionBounds of equal sets should return the first operand")
	}
}

// Single-bucket dims survive remapping, both as the remapped dimension
// (splitting the one bucket) and as a bystander dimension.
func TestRemapDimSingleBucketDims(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 10}, {0, 4}})
	m.SetCell([]int{0, 0}, 1)
	// Split the single bucket of dim 0 into three.
	r, err := m.RemapDim(0, []float64{0, 2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumCells() != 3 {
		t.Fatalf("split of one cell into 3 sub-buckets gives %d cells", r.NumCells())
	}
	wantFracs := []float64{0.2, 0.3, 0.5}
	for i, w := range wantFracs {
		if got := r.Cell([]int{i, 0}); !almostEq(got, w, 1e-15) {
			t.Fatalf("cell %d = %v, want %v", i, got, w)
		}
	}
	// Extend the single-bucket dim without touching its support: cells
	// move index but keep their exact probability.
	r2, err := m.RemapDim(1, []float64{-2, 0, 4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Cell([]int{0, 1}); got != 1 {
		t.Fatalf("extension remap moved mass: cell = %v, want exactly 1", got)
	}
}

// A refinement followed by a marginal onto a single-bucket dimension
// funnels every cell into one: the degenerate coarse end of the
// Fig. 11 spectrum must still carry the exact total.
func TestRemapThenMarginalMergesAllCells(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1, 2, 3}, {0, 7}})
	m.SetCell([]int{0, 0}, 0.125)
	m.SetCell([]int{1, 0}, 0.25)
	m.SetCell([]int{2, 0}, 0.625)
	r, err := m.RemapDim(0, []float64{0, 0.5, 1, 1.5, 2, 2.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumCells() != 6 {
		t.Fatalf("refined multi has %d cells, want 6", r.NumCells())
	}
	onto, err := r.MarginalOnto([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if onto.NumCells() != 1 {
		t.Fatalf("marginal onto the single-bucket dim has %d cells, want 1", onto.NumCells())
	}
	if got := onto.Cell([]int{0}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("merged cell mass %v, want 1", got)
	}
}

// PROPERTY: an extension-only remap (no bucket is split) translates
// indices without rescaling, so the total mass is preserved
// bit-identically; a splitting remap preserves it to accumulation
// tolerance and is itself bit-deterministic across repeated runs.
func TestPropertyRemapMassPreservation(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		m := randomMulti(rnd)
		d := rnd.Intn(m.Dims())
		bd := m.Bounds(d)

		// Extension only: new boundaries strictly outside the support.
		ext := UnionBounds(bd, []float64{bd[0] - 3 - rnd.Float64(), bd[len(bd)-1] + 1 + rnd.Float64()})
		r, err := m.RemapDim(d, ext)
		if err != nil {
			return false
		}
		if math.Float64bits(r.Total()) != math.Float64bits(m.Total()) {
			return false // extension must not perturb a single bit
		}

		// Splitting remap: a cut strictly inside the support.
		cut := bd[0] + rnd.Float64()*(bd[len(bd)-1]-bd[0])
		union := UnionBounds(bd, []float64{cut})
		s1, err := m.RemapDim(d, union)
		if err != nil {
			return false
		}
		if !almostEq(s1.Total(), m.Total(), 1e-12) {
			return false
		}
		// Determinism: repeating the remap reproduces every cell bit.
		s2, err := m.RemapDim(d, union)
		if err != nil {
			return false
		}
		k1, p1 := s1.Cells()
		k2, p2 := s2.Cells()
		if len(k1) != len(k2) {
			return false
		}
		for i := range k1 {
			if k1[i] != k2[i] || math.Float64bits(p1[i]) != math.Float64bits(p2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// RemapTable reuse: one precomputed table applied to two histograms
// sharing the boundary set gives the same result as two independent
// RemapDim calls, and a table built for different boundaries is
// rejected.
func TestRemapTableReuseAndMismatch(t *testing.T) {
	a := mustMulti(t, [][]float64{{0, 1, 2}})
	a.SetCell([]int{0}, 0.5)
	a.SetCell([]int{1}, 0.5)
	b := mustMulti(t, [][]float64{{0, 1, 2}})
	b.SetCell([]int{1}, 1)

	tbl, err := NewRemapTable([]float64{0, 1, 2}, []float64{0, 0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.RemapDimTable(0, tbl)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RemapDimTable(0, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if ra.NumCells() != 3 || rb.NumCells() != 1 {
		t.Fatalf("reused table results: %d and %d cells, want 3 and 1", ra.NumCells(), rb.NumCells())
	}
	c := mustMulti(t, [][]float64{{0, 3, 9}})
	if _, err := c.RemapDimTable(0, tbl); err == nil {
		t.Fatal("table built for different boundaries must be rejected")
	}
	if _, err := NewRemapTable([]float64{0, 1, 2}, []float64{0, 2}); err == nil {
		t.Fatal("new grid missing an old boundary must be rejected")
	}
}
