package hist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mergeDeltaRef is the rebuild-from-scratch oracle for MergeDelta: a
// naive map-based merge performing the same per-cell arithmetic
// (old×scale, then +mass), materialized through the ordinary SetCell
// path instead of the merge-join.
func mergeDeltaRef(t *testing.T, m *Multi, d *Delta, scale float64) *Multi {
	t.Helper()
	cells := map[CellKey]float64{}
	m.ForEachSorted(func(key CellKey, p float64) {
		cells[key] = p * scale
	})
	d.ForEachSealed(func(key CellKey, w float64) {
		cells[key] += w
	})
	bounds := make([][]float64, m.Dims())
	for dd := 0; dd < m.Dims(); dd++ {
		bounds[dd] = m.Bounds(dd)
	}
	out, err := NewMulti(bounds)
	if err != nil {
		t.Fatalf("oracle NewMulti: %v", err)
	}
	idx := make([]int, m.Dims())
	for key, p := range cells {
		for dd := range idx {
			idx[dd] = int(key[dd])
		}
		out.SetCell(idx, p)
	}
	return out
}

// randomDelta builds a delta whose keys lie inside m's grid, added in
// random order with some duplicate keys.
func randomDelta(rnd *rand.Rand, m *Multi) *Delta {
	d := NewDelta()
	n := rnd.Intn(12)
	for i := 0; i < n; i++ {
		var key CellKey
		for dd := 0; dd < m.Dims(); dd++ {
			key[dd] = uint16(rnd.Intn(m.NumBuckets(dd)))
		}
		d.Add(key, float64(1+rnd.Intn(5)))
	}
	return d
}

func sameCells(a, b *Multi) bool {
	if a.NumCells() != b.NumCells() {
		return false
	}
	ok := true
	i := 0
	bk := make([]CellKey, 0, b.NumCells())
	bp := make([]float64, 0, b.NumCells())
	b.ForEachSorted(func(key CellKey, p float64) {
		bk = append(bk, key)
		bp = append(bp, p)
	})
	a.ForEachSorted(func(key CellKey, p float64) {
		if i >= len(bk) || key != bk[i] || math.Float64bits(p) != math.Float64bits(bp[i]) {
			ok = false
		}
		i++
	})
	return ok
}

// PROPERTY: MergeDelta agrees byte-for-byte with the map-based oracle
// for random histograms, deltas and decay scales.
func TestPropertyMergeDeltaMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		m := randomMulti(rnd)
		d := randomDelta(rnd, m)
		scale := []float64{0, 0.25, 1, 3.5}[rnd.Intn(4)]
		got, err := m.MergeDelta(d, scale)
		if err != nil {
			return false
		}
		defer PutMulti(got)
		want := mergeDeltaRef(t, m, d, scale)
		return sameCells(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// MergeDelta with an empty delta and scale 1 must reproduce the
// receiver's cells exactly (identity).
func TestMergeDeltaIdentity(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	m := randomMulti(rnd)
	got, err := m.MergeDelta(NewDelta(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer PutMulti(got)
	if !sameCells(got, m) {
		t.Fatal("identity merge changed cells")
	}
}

// Adding the same multiset of (key, mass) pairs in different orders of
// distinct keys must seal to identical cells (IEEE addition of two
// values per key is commutative).
func TestDeltaOrderIndependentForDistinctKeys(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	m := randomMulti(rnd)
	keys := make([]CellKey, 0, 8)
	seen := map[CellKey]bool{}
	for len(keys) < 5 {
		var key CellKey
		for dd := 0; dd < m.Dims(); dd++ {
			key[dd] = uint16(rnd.Intn(m.NumBuckets(dd)))
		}
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	fwd, rev := NewDelta(), NewDelta()
	for i, k := range keys {
		fwd.Add(k, float64(i+1))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		rev.Add(keys[i], float64(i+1))
	}
	a, err := m.MergeDelta(fwd, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.MergeDelta(rev, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer PutMulti(a)
	defer PutMulti(b)
	if !sameCells(a, b) {
		t.Fatal("merge result depends on Add order for distinct keys")
	}
}

// Mass conservation: unnormalized total of the merged histogram equals
// scale×(old total) + delta mass, up to float accumulation error.
func TestMergeDeltaMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		m := randomMulti(rnd)
		d := randomDelta(rnd, m)
		scale := 0.1 + rnd.Float64()*5
		var deltaMass float64
		d.ForEachSealed(func(_ CellKey, w float64) { deltaMass += w })
		got, err := m.MergeDelta(d, scale)
		if err != nil {
			return false
		}
		defer PutMulti(got)
		want := scale*m.Total() + deltaMass
		return math.Abs(got.Total()-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Out-of-grid delta keys must be rejected, not silently dropped.
func TestMergeDeltaRejectsOutOfGrid(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	m := randomMulti(rnd)
	d := NewDelta()
	var key CellKey
	key[0] = uint16(m.NumBuckets(0)) // one past the end
	d.Add(key, 1)
	if _, err := m.MergeDelta(d, 1); err == nil {
		t.Fatal("expected out-of-grid error")
	}
	if _, err := m.MergeDelta(NewDelta(), -1); err == nil {
		t.Fatal("expected negative-scale error")
	}
}

// BinClamped: in-range points land in the same cell locate would pick;
// out-of-range points clamp to the boundary buckets.
func TestBinClamped(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	m := randomMulti(rnd)
	lo := make([]float64, m.Dims())
	hi := make([]float64, m.Dims())
	mid := make([]float64, m.Dims())
	for dd := 0; dd < m.Dims(); dd++ {
		bd := m.Bounds(dd)
		lo[dd] = bd[0] - 100
		hi[dd] = bd[len(bd)-1] + 100
		mid[dd] = (bd[0] + bd[1]) / 2
	}
	kLo, err := m.BinClamped(lo)
	if err != nil {
		t.Fatal(err)
	}
	kHi, err := m.BinClamped(hi)
	if err != nil {
		t.Fatal(err)
	}
	kMid, err := m.BinClamped(mid)
	if err != nil {
		t.Fatal(err)
	}
	for dd := 0; dd < m.Dims(); dd++ {
		if kLo[dd] != 0 {
			t.Fatalf("dim %d: below-range point binned to %d, want 0", dd, kLo[dd])
		}
		if int(kHi[dd]) != m.NumBuckets(dd)-1 {
			t.Fatalf("dim %d: above-range point binned to %d, want %d", dd, kHi[dd], m.NumBuckets(dd)-1)
		}
		if kMid[dd] != 0 {
			t.Fatalf("dim %d: first-bucket midpoint binned to %d, want 0", dd, kMid[dd])
		}
	}
	if _, err := m.BinClamped(mid[:1]); err == nil && m.Dims() > 1 {
		t.Fatal("expected dim-mismatch error")
	}
}

// mergeCountsRef is the 1-D oracle: scale old probabilities, count
// samples into buckets by linear scan, renormalize via FromBuckets.
func mergeCountsRef(t *testing.T, h *Histogram, samples []float64, w float64) *Histogram {
	t.Helper()
	bs := make([]Bucket, h.NumBuckets())
	copy(bs, h.Buckets())
	for i := range bs {
		bs[i].Pr *= w
	}
	for _, v := range samples {
		placed := false
		for i := range bs {
			if v < bs[i].Hi {
				bs[i].Pr++
				placed = true
				break
			}
		}
		if !placed {
			bs[len(bs)-1].Pr++
		}
	}
	out, err := FromBuckets(bs)
	if err != nil {
		t.Fatalf("oracle FromBuckets: %v", err)
	}
	return out
}

// PROPERTY: MergeCounts agrees byte-for-byte with the scan oracle.
func TestPropertyMergeCountsMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		h := randomHistogram(rnd)
		n := 1 + rnd.Intn(20)
		samples := make([]float64, n)
		span := h.Max() - h.Min()
		for i := range samples {
			samples[i] = h.Min() - span/2 + rnd.Float64()*span*2
		}
		w := []float64{0, 0.5, 1, 17.25}[rnd.Intn(4)]
		got, err := h.MergeCounts(samples, w)
		if err != nil {
			return false
		}
		want := mergeCountsRef(t, h, samples, w)
		if got.NumBuckets() != want.NumBuckets() {
			return false
		}
		gb, wb := got.Buckets(), want.Buckets()
		for i := range gb {
			if gb[i] != wb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// MergeCounts must keep the frozen grid: bucket boundaries are those
// of the receiver regardless of where the samples fall.
func TestMergeCountsKeepsGrid(t *testing.T) {
	h := MustFromBuckets([]Bucket{{Lo: 0, Hi: 1, Pr: 0.5}, {Lo: 1, Hi: 2, Pr: 0.5}})
	got, err := h.MergeCounts([]float64{-50, 0.5, 99}, 2)
	if err != nil {
		t.Fatal(err)
	}
	gb := got.Buckets()
	if gb[0].Lo != 0 || gb[0].Hi != 1 || gb[1].Lo != 1 || gb[1].Hi != 2 {
		t.Fatalf("grid moved: %+v", gb)
	}
	// counts: bucket0 = 0.5*2 + 2 (clamped -50 and 0.5), bucket1 = 0.5*2 + 1 (clamped 99)
	tot := 3.0 + 2.0
	if math.Abs(gb[0].Pr-3/tot) > 1e-15 || math.Abs(gb[1].Pr-2/tot) > 1e-15 {
		t.Fatalf("unexpected probabilities: %+v", gb)
	}
	if _, err := h.MergeCounts([]float64{math.NaN()}, 1); err == nil {
		t.Fatal("expected NaN rejection")
	}
	if _, err := h.MergeCounts(nil, -1); err == nil {
		t.Fatal("expected negative-weight rejection")
	}
}
