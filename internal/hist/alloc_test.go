package hist

import (
	"math/rand"
	"testing"
)

// Allocation regression tests for the columnar cell store: the hot
// read paths of the chain evaluator — sorted iteration, totals,
// marginals — must not allocate once warm. The map-based predecessor
// allocated (and sorted) a key slice on every ForEachSorted visit;
// these tests pin the improvement so it cannot silently regress.

func allocFixtureMulti(tb testing.TB) *Multi {
	tb.Helper()
	rnd := rand.New(rand.NewSource(5))
	m, err := NewMulti([][]float64{
		{0, 10, 20, 40, 80, 160},
		{0, 5, 9, 33},
		{0, 1, 2, 3, 4},
	})
	if err != nil {
		tb.Fatal(err)
	}
	idx := make([]int, 3)
	for c := 0; c < 40; c++ {
		for d := range idx {
			idx[d] = rnd.Intn(m.NumBuckets(d))
		}
		m.SetCell(idx, 0.01+rnd.Float64())
	}
	if err := m.Normalize(); err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestForEachSortedZeroAllocs(t *testing.T) {
	m := allocFixtureMulti(t)
	var sink float64
	visit := func(_ CellKey, pr float64) { sink += pr }
	if n := testing.AllocsPerRun(100, func() { m.ForEachSorted(visit) }); n != 0 {
		t.Fatalf("ForEachSorted allocates %v times per run, want 0", n)
	}
	_ = sink
}

func TestTotalZeroAllocs(t *testing.T) {
	m := allocFixtureMulti(t)
	var sink float64
	if n := testing.AllocsPerRun(100, func() { sink = m.Total() }); n != 0 {
		t.Fatalf("Total allocates %v times per run, want 0", n)
	}
	_ = sink
}

func TestMarginalWarmZeroAllocs(t *testing.T) {
	m := allocFixtureMulti(t)
	for d := 0; d < m.Dims(); d++ {
		m.Marginal(d) // warm the per-dimension cache
	}
	var sink *Histogram
	if n := testing.AllocsPerRun(100, func() { sink = m.Marginal(1) }); n != 0 {
		t.Fatalf("warm Marginal allocates %v times per run, want 0", n)
	}
	_ = sink
}

// Mutations must invalidate the marginal cache: a stale marginal would
// silently mis-answer after SetCell/Add/Normalize.
func TestMarginalCacheInvalidation(t *testing.T) {
	m := allocFixtureMulti(t)
	before := m.Marginal(0).Mean()
	// Move all of bucket-0 mass (if any) far to the right.
	keys, probs := m.Cells()
	last := len(keys) - 1
	m.SetCell([]int{4, 2, 3}, probs[last]+0.5)
	after := m.Marginal(0)
	if after == nil || after.Mean() == before {
		t.Fatalf("marginal not recomputed after SetCell (mean still %v)", before)
	}
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	renorm := m.Marginal(0)
	if renorm.Mean() == 0 {
		t.Fatal("marginal after Normalize is empty")
	}
}
