package hist

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// Differential tests for the rearrangement sweep and the compression
// cost cache: both were rewritten for speed with the explicit claim
// that every output byte is unchanged. The originals — a full interval
// rescan per elementary cell, and a full adjacent-pair rescan per
// merge — are small enough to keep here as oracles.

// rearrangeRef is the pre-sweep rearrangement core: for every
// elementary cell, rescan all intervals in sorted order and accumulate
// the overlapping shares. The sweep's compaction preserves index
// order, so its per-cell accumulation must match this bit for bit.
func rearrangeRef(ivals []weightedInterval) ([]Bucket, error) {
	if len(ivals) == 0 {
		return nil, nil
	}
	var cuts []float64
	for _, iv := range ivals {
		if !(iv.hi > iv.lo) {
			return nil, nil
		}
		cuts = append(cuts, iv.lo, iv.hi)
	}
	sort.Float64s(cuts)
	cuts = dedupFloats(cuts)
	// The exact sort rearrangeInto runs (slices.SortFunc is unstable, so
	// a different-but-equivalent sort could permute equal-lo intervals
	// and change the accumulation order).
	slices.SortFunc(ivals, func(a, b weightedInterval) int {
		switch {
		case a.lo < b.lo:
			return -1
		case b.lo < a.lo:
			return 1
		default:
			return 0
		}
	})
	var bs []Bucket
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		var pr float64
		for _, iv := range ivals {
			if iv.lo < hi && iv.hi > lo {
				pr += iv.pr * (hi - lo) / (iv.hi - iv.lo)
			}
		}
		if pr > 0 {
			bs = append(bs, Bucket{Lo: lo, Hi: hi, Pr: pr})
		}
	}
	return mergeEqualDensity(bs), nil
}

// compressRef is the pre-cache merge loop: rescan every adjacent pair
// for the cheapest merge each round, first strictly smaller wins.
func compressRef(bs []Bucket, maxBuckets int) []Bucket {
	for len(bs) > maxBuckets {
		bestIdx, bestCost := 0, mergeCost(bs[0], bs[1])
		for i := 1; i+1 < len(bs); i++ {
			if c := mergeCost(bs[i], bs[i+1]); c < bestCost {
				bestCost, bestIdx = c, i
			}
		}
		a, b := bs[bestIdx], bs[bestIdx+1]
		bs[bestIdx] = Bucket{Lo: a.Lo, Hi: b.Hi, Pr: a.Pr + b.Pr}
		bs = append(bs[:bestIdx+1], bs[bestIdx+2:]...)
	}
	return bs
}

func randomIvals(rnd *rand.Rand, n int) []weightedInterval {
	ivals := make([]weightedInterval, n)
	for i := range ivals {
		lo := float64(rnd.Intn(40)) * 0.5
		w := 0.5 + float64(rnd.Intn(10))*0.5
		ivals[i] = weightedInterval{lo: lo, hi: lo + w, pr: 0.01 + rnd.Float64()}
	}
	return ivals
}

func sameBucketsBits(t *testing.T, got, want []Bucket, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d buckets, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Lo) != math.Float64bits(want[i].Lo) ||
			math.Float64bits(got[i].Hi) != math.Float64bits(want[i].Hi) ||
			math.Float64bits(got[i].Pr) != math.Float64bits(want[i].Pr) {
			t.Fatalf("%s: bucket %d differs at the bit level: %+v vs %+v",
				what, i, got[i], want[i])
		}
	}
}

// INVARIANT: the live-set sweep emits byte-identical buckets to the
// full-rescan rearrangement it replaced.
func TestRearrangeSweepMatchesRescan(t *testing.T) {
	rnd := rand.New(rand.NewSource(51))
	sc := &rearrangeScratch{}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rnd.Intn(40)
		ivals := randomIvals(rnd, n)
		ref := append([]weightedInterval(nil), ivals...)
		got, err := rearrangeInto(sc, sc.bs, ivals)
		if err != nil {
			t.Fatal(err)
		}
		sc.bs = got[:0]
		want, err := rearrangeRef(ref)
		if err != nil {
			t.Fatal(err)
		}
		sameBucketsBits(t, got, want, "rearrange")
	}
}

// INVARIANT: the incremental pair-cost cache reproduces the rescan
// loop's merge sequence — identical buckets after compression, with
// and without pooled scratch.
func TestCompressCacheMatchesRescan(t *testing.T) {
	rnd := rand.New(rand.NewSource(52))
	sc := &rearrangeScratch{}
	for trial := 0; trial < 500; trial++ {
		n := 2 + rnd.Intn(60)
		bs := make([]Bucket, 0, n)
		lo := 0.0
		for i := 0; i < n; i++ {
			if rnd.Intn(4) == 0 {
				lo += 0.25 // gaps exercise the smear term of mergeCost
			}
			w := 0.25 + float64(rnd.Intn(8))*0.25
			bs = append(bs, Bucket{Lo: lo, Hi: lo + w, Pr: 0.01 + rnd.Float64()})
			lo += w
		}
		maxBuckets := 1 + rnd.Intn(n)
		want := compressRef(append([]Bucket(nil), bs...), maxBuckets)
		got := compressBucketsInto(append([]Bucket(nil), bs...), maxBuckets, sc)
		sameBucketsBits(t, got, want, "compress(sc)")
		got2 := compressBuckets(append([]Bucket(nil), bs...), maxBuckets)
		sameBucketsBits(t, got2, want, "compress(nil)")
	}
}
