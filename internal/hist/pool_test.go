package hist

import (
	"math"
	"testing"
)

// Regression test for the Multi pool: a pooled Multi carrying cached
// per-dimension marginals must not leak them into the next histogram
// built from the pool. PutMulti is responsible for clearing every
// marg slot (including dimensions beyond the next user's Dims()), and
// this test pins that contract by recycling a Multi whose marginal
// cache is warm and asserting the reborn histogram's Marginal reflects
// its own cells — by identity and by value.
func TestPutMultiPoolReuseMarginal(t *testing.T) {
	bounds3 := [][]float64{{0, 1, 2, 3}, {0, 10, 20}, {0, 5, 10}}
	keys3 := []CellKey{{0, 0, 1}, {1, 1, 0}, {2, 0, 1}}
	probs3 := []float64{0.25, 0.5, 0.25}

	bounds1 := [][]float64{{0, 1, 2, 3}}
	keys1 := []CellKey{{0}, {2}}
	probs1 := []float64{0.75, 0.25}

	for iter := 0; iter < 100; iter++ {
		m1, err := NewMultiFromCells(bounds3, keys3, probs3)
		if err != nil {
			t.Fatal(err)
		}
		// Warm every dimension's marginal cache, then recycle. sync.Pool
		// reuse is not guaranteed on any single iteration, so the loop
		// makes a hit near-certain; each iteration's assertions are valid
		// whether or not the struct was actually reused.
		stale := make([]*Histogram, m1.Dims())
		for d := range stale {
			stale[d] = m1.Marginal(d)
		}
		PutMulti(m1)

		m2, err := NewMultiFromCells(bounds1, keys1, probs1)
		if err != nil {
			t.Fatal(err)
		}
		got := m2.Marginal(0)
		for d, h := range stale {
			if got == h {
				t.Fatalf("iter %d: pooled Multi handed out the previous owner's dim-%d marginal", iter, d)
			}
		}
		bs := got.Buckets()
		if len(bs) != 2 {
			t.Fatalf("iter %d: marginal has %d buckets, want 2: %+v", iter, len(bs), bs)
		}
		if bs[0].Lo != 0 || bs[0].Hi != 1 || math.Abs(bs[0].Pr-0.75) > 1e-12 {
			t.Fatalf("iter %d: marginal bucket 0 = %+v", iter, bs[0])
		}
		if bs[1].Lo != 2 || bs[1].Hi != 3 || math.Abs(bs[1].Pr-0.25) > 1e-12 {
			t.Fatalf("iter %d: marginal bucket 1 = %+v", iter, bs[1])
		}
		PutMulti(m2)
	}
}

// A pooled Multi rebuilt with the same shape but different cells must
// serve the new cells' marginal, not the cached one — the "same dims,
// different mass" variant of the stale-cache hazard.
func TestPutMultiPoolReuseSameShape(t *testing.T) {
	bounds := [][]float64{{0, 1, 2}, {0, 1, 2}}
	for iter := 0; iter < 100; iter++ {
		m1, err := NewMultiFromCells(bounds,
			[]CellKey{{0, 0}}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if got := m1.Marginal(0).Buckets(); len(got) != 1 || got[0].Lo != 0 {
			t.Fatalf("iter %d: m1 marginal = %+v", iter, got)
		}
		PutMulti(m1)

		m2, err := NewMultiFromCells(bounds,
			[]CellKey{{1, 1}}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		got := m2.Marginal(0).Buckets()
		if len(got) != 1 || got[0].Lo != 1 || got[0].Hi != 2 {
			t.Fatalf("iter %d: m2 marginal = %+v (stale cache?)", iter, got)
		}
		PutMulti(m2)
	}
}
