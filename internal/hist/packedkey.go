package hist

// Packed cell keys: the storage form of CellKey inside Multi.
//
// A CellKey is MaxDims uint16 bucket indices compared lexicographically
// — the hot comparison of every sorted-cell operation (merge-joins,
// binary searches, fold-emission sorts). Packing four dimensions per
// uint64 word, dimension-major (dimension 0 in the highest 16 bits of
// word 0), makes that comparison 1–3 machine-word compares instead of
// up to MaxDims uint16 compares, and makes common prefix tests a masked
// word compare. For the common ≤ 4-dimension case the first word
// decides everything.
//
// The packing is pure shift/or arithmetic, so it is endianness-
// independent and the invariant below holds by construction:
//
//	PackKey(a).Less(PackKey(b)) == cellKeyLess(a, b)
//
// CellKey remains the API form (ForEach callbacks, SetCell index
// arguments, the Delta accumulator's Add) and the differential oracle
// for the packed ordering; see TestPackedKeyOrderMatchesCellKeyLess.

// keyDimsPerWord is how many uint16 dimensions one uint64 word holds.
const keyDimsPerWord = 4

// keyWords is the number of uint64 words backing one packed key.
const keyWords = (MaxDims + keyDimsPerWord - 1) / keyDimsPerWord

// pkDim0Mask selects dimension 0 (the chain evaluator's accumulator
// axis) within word 0.
const pkDim0Mask = uint64(0xffff) << 48

// PackedKey is a CellKey packed four dimensions per word, dimension-
// major, so that lexicographic CellKey order equals word-by-word
// integer order. The zero value is the key with all indices zero.
type PackedKey [keyWords]uint64

// pkShift returns the bit offset of dimension d within its word.
func pkShift(d int) uint { return uint(keyDimsPerWord-1-(d&(keyDimsPerWord-1))) * 16 }

// PackKey packs a CellKey into its word form.
func PackKey(k CellKey) PackedKey {
	return PackedKey{
		uint64(k[0])<<48 | uint64(k[1])<<32 | uint64(k[2])<<16 | uint64(k[3]),
		uint64(k[4])<<48 | uint64(k[5])<<32 | uint64(k[6])<<16 | uint64(k[7]),
		uint64(k[8])<<48 | uint64(k[9])<<32 | uint64(k[10])<<16 | uint64(k[11]),
	}
}

// Unpack expands the key back to its per-dimension index form.
func (p PackedKey) Unpack() CellKey {
	return CellKey{
		uint16(p[0] >> 48), uint16(p[0] >> 32), uint16(p[0] >> 16), uint16(p[0]),
		uint16(p[1] >> 48), uint16(p[1] >> 32), uint16(p[1] >> 16), uint16(p[1]),
		uint16(p[2] >> 48), uint16(p[2] >> 32), uint16(p[2] >> 16), uint16(p[2]),
	}
}

// Dim returns the bucket index of dimension d.
func (p PackedKey) Dim(d int) uint16 {
	return uint16(p[d>>2] >> pkShift(d))
}

// WithDim returns the key with dimension d set to v.
func (p PackedKey) WithDim(d int, v uint16) PackedKey {
	s := pkShift(d)
	w := d >> 2
	p[w] = p[w]&^(uint64(0xffff)<<s) | uint64(v)<<s
	return p
}

// Less reports whether p sorts before q — identical to cellKeyLess on
// the unpacked forms, in at most keyWords word compares.
func (p PackedKey) Less(q PackedKey) bool {
	if p[0] != q[0] {
		return p[0] < q[0]
	}
	if p[1] != q[1] {
		return p[1] < q[1]
	}
	return p[2] < q[2]
}

// Compare three-way-compares p and q in lexicographic dimension order.
func (p PackedKey) Compare(q PackedKey) int {
	for w := 0; w < keyWords; w++ {
		if p[w] != q[w] {
			if p[w] < q[w] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// pkPrefixMask returns the word-w mask selecting the dimensions of a
// length-n prefix that fall inside word w (zero when none do).
func pkPrefixMask(n int) uint64 {
	// Only the partial word needs a mask; full words compare directly.
	r := n & (keyDimsPerWord - 1)
	return ^uint64(0) << (uint(keyDimsPerWord-r) * 16)
}

// PrefixEq reports whether p and q agree on their first n dimensions.
func (p PackedKey) PrefixEq(q PackedKey, n int) bool {
	w := n >> 2
	for i := 0; i < w; i++ {
		if p[i] != q[i] {
			return false
		}
	}
	if n&3 != 0 {
		return (p[w]^q[w])&pkPrefixMask(n) == 0
	}
	return true
}

// PrefixLess orders p against q on their first n dimensions only.
func (p PackedKey) PrefixLess(q PackedKey, n int) bool {
	w := n >> 2
	for i := 0; i < w; i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	if n&3 != 0 {
		m := pkPrefixMask(n)
		return p[w]&m < q[w]&m
	}
	return false
}

// MaskPrefix returns the key with every dimension ≥ n zeroed.
func (p PackedKey) MaskPrefix(n int) PackedKey {
	w := n >> 2
	if n&3 != 0 {
		p[w] &= pkPrefixMask(n)
		w++
	}
	for ; w < keyWords; w++ {
		p[w] = 0
	}
	return p
}

// ShiftDimRight shifts every dimension one position up (dimension d
// moves to d+1) and zeroes dimension 0 — the chain evaluator's
// "prepend an accumulator axis" operation. The caller must ensure
// dimension MaxDims−1 is zero; otherwise its index is silently lost.
// The map is strictly order-preserving, so shifting a sorted key
// sequence keeps it sorted.
func (p PackedKey) ShiftDimRight() PackedKey {
	return PackedKey{
		p[0] >> 16,
		p[0]<<48 | p[1]>>16,
		p[1]<<48 | p[2]>>16,
	}
}

// ShiftDimLeft drops dimension 0 and shifts every other dimension one
// position down (dimension d moves to d−1); the last dimension becomes
// zero. This aligns a chain state's open dimensions (state dims 1..n)
// with a factor's leading dimensions for overlap comparison.
func (p PackedKey) ShiftDimLeft() PackedKey {
	return PackedKey{
		p[0]<<16 | p[1]>>48,
		p[1]<<16 | p[2]>>48,
		p[2] << 16,
	}
}

// WithDim0From returns p with dimension 0 replaced by q's dimension 0.
// The merge-join kernel stamps the state cell's accumulator index onto
// pre-shifted factor keys with it.
func (p PackedKey) WithDim0From(q PackedKey) PackedKey {
	p[0] = p[0]&^pkDim0Mask | q[0]&pkDim0Mask
	return p
}
