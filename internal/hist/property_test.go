package hist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomHistogram builds a valid random histogram from a seed.
func randomHistogram(rnd *rand.Rand) *Histogram {
	n := 1 + rnd.Intn(6)
	bs := make([]Bucket, 0, n)
	lo := rnd.Float64() * 100
	for i := 0; i < n; i++ {
		w := 0.5 + rnd.Float64()*40
		bs = append(bs, Bucket{Lo: lo, Hi: lo + w, Pr: 0.05 + rnd.Float64()})
		lo += w + rnd.Float64()*10
	}
	return MustFromBuckets(bs)
}

// randomMulti builds a valid random 2-3 dimensional joint histogram.
func randomMulti(rnd *rand.Rand) *Multi {
	dims := 2 + rnd.Intn(2)
	bounds := make([][]float64, dims)
	for d := range bounds {
		n := 2 + rnd.Intn(4)
		bd := make([]float64, n)
		bd[0] = rnd.Float64() * 50
		for i := 1; i < n; i++ {
			bd[i] = bd[i-1] + 0.5 + rnd.Float64()*30
		}
		bounds[d] = bd
	}
	m, err := NewMulti(bounds)
	if err != nil {
		panic(err)
	}
	idx := make([]int, dims)
	cells := 1 + rnd.Intn(8)
	for c := 0; c < cells; c++ {
		for d := range idx {
			idx[d] = rnd.Intn(m.NumBuckets(d))
		}
		m.SetCell(idx, m.Cell(idx)+0.05+rnd.Float64())
	}
	if err := m.Normalize(); err != nil {
		panic(err)
	}
	return m
}

// PROPERTY: CDF is monotone non-decreasing and spans [0, 1].
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		h := randomHistogram(rnd)
		prev := -1.0
		for x := h.Min() - 5; x <= h.Max()+5; x += (h.Max() - h.Min() + 10) / 57 {
			c := h.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return almostEq(h.CDF(h.Max()+1), 1, 1e-9) && h.CDF(h.Min()-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PROPERTY: MassOn is additive over adjacent ranges.
func TestPropertyMassAdditive(t *testing.T) {
	f := func(seed int64, aRaw, bRaw, cRaw float64) bool {
		rnd := rand.New(rand.NewSource(seed))
		h := randomHistogram(rnd)
		span := h.Max() - h.Min()
		xs := []float64{
			h.Min() + math.Mod(math.Abs(aRaw), span),
			h.Min() + math.Mod(math.Abs(bRaw), span),
			h.Min() + math.Mod(math.Abs(cRaw), span),
		}
		sortThree(xs)
		whole := h.MassOn(xs[0], xs[2])
		parts := h.MassOn(xs[0], xs[1]) + h.MassOn(xs[1], xs[2])
		return almostEq(whole, parts, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sortThree(xs []float64) {
	if xs[0] > xs[1] {
		xs[0], xs[1] = xs[1], xs[0]
	}
	if xs[1] > xs[2] {
		xs[1], xs[2] = xs[2], xs[1]
	}
	if xs[0] > xs[1] {
		xs[0], xs[1] = xs[1], xs[0]
	}
}

// PROPERTY: quantile inverts CDF: CDF(Quantile(q)) ≥ q.
func TestPropertyQuantileInverse(t *testing.T) {
	f := func(seed int64, qRaw float64) bool {
		rnd := rand.New(rand.NewSource(seed))
		h := randomHistogram(rnd)
		q := math.Mod(math.Abs(qRaw), 1)
		return h.CDF(h.Quantile(q)) >= q-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PROPERTY: convolution preserves total mass and adds means and
// supports, for arbitrary histogram pairs.
func TestPropertyConvolution(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		x, y := randomHistogram(rnd), randomHistogram(rnd)
		c := Convolve(x, y)
		if !almostEq(c.CDF(math.Inf(1)), 1, 1e-9) {
			return false
		}
		if !almostEq(c.Mean(), x.Mean()+y.Mean(), 1e-6*(1+c.Mean())) {
			return false
		}
		return c.Min() >= x.Min()+y.Min()-1e-9 && c.Max() <= x.Max()+y.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PROPERTY: a joint histogram's sum distribution has mean equal to the
// sum of its marginal means (flattening is mean-exact).
func TestPropertySumHistogramMeanExact(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		m := randomMulti(rnd)
		sum, err := m.SumHistogram(0)
		if err != nil {
			return false
		}
		var want float64
		for d := 0; d < m.Dims(); d++ {
			want += m.Marginal(d).Mean()
		}
		return almostEq(sum.Mean(), want, 1e-6*(1+math.Abs(want)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PROPERTY: refining or remapping any dimension never changes any
// marginal's mean or the total mass.
func TestPropertyRefineRemapInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		m := randomMulti(rnd)
		d := rnd.Intn(m.Dims())
		bd := m.Bounds(d)
		cut := bd[0] + rnd.Float64()*(bd[len(bd)-1]-bd[0])
		r, err := m.RefineDim(d, []float64{cut})
		if err != nil {
			return false
		}
		union := UnionBounds(r.Bounds(d), []float64{bd[0] - 10, bd[len(bd)-1] + 10})
		r2, err := r.RemapDim(d, union)
		if err != nil {
			return false
		}
		if !almostEq(r2.Total(), 1, 1e-9) {
			return false
		}
		for dd := 0; dd < m.Dims(); dd++ {
			if !almostEq(r2.Marginal(dd).Mean(), m.Marginal(dd).Mean(), 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PROPERTY: V-Optimal bucket probabilities equal the raw mass they
// cover, for random sample sets and bucket counts.
func TestPropertyVOptimalMassConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 20 + rnd.Intn(200)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = math.Round(rnd.Float64()*120 + rnd.NormFloat64()*5)
		}
		raw, err := NewRaw(samples, 1)
		if err != nil {
			return false
		}
		b := 1 + rnd.Intn(6)
		h, err := VOptimal(raw, b)
		if err != nil {
			return false
		}
		for _, bk := range h.Buckets() {
			var mass float64
			for _, e := range raw.Entries {
				if e.Value >= bk.Lo && e.Value < bk.Hi {
					mass += e.Perc
				}
			}
			if !almostEq(mass, bk.Pr, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PROPERTY: Compress never loses mass and respects the bucket cap.
func TestPropertyCompress(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		h := randomHistogram(rnd)
		cap := 1 + int(capRaw)%6
		c := h.Compress(cap)
		if c.NumBuckets() > cap && c.NumBuckets() < h.NumBuckets() {
			return false
		}
		return almostEq(c.CDF(math.Inf(1)), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
