package hist

import (
	"fmt"
	"math/rand"
)

// AutoConfig controls the self-tuning bucket-count selection of
// Section 3.1.
type AutoConfig struct {
	Folds      int     // f in f-fold cross validation
	MaxBuckets int     // upper bound on b during the search
	MinImprove float64 // relative error-drop below which the search stops
	Seed       int64   // RNG seed for the fold split (deterministic runs)
}

// DefaultAutoConfig mirrors the paper's setup: 5-fold cross
// validation, stop when adding a bucket improves the error by less
// than 10%.
func DefaultAutoConfig() AutoConfig {
	return AutoConfig{Folds: 5, MaxBuckets: 16, MinImprove: 0.10, Seed: 1}
}

// AutoResult reports what the Auto procedure measured: Errors[b-1] is
// the cross-validated error E_b of using b buckets (the Fig. 5(a)
// curve), and Chosen is the selected bucket count.
type AutoResult struct {
	Errors []float64
	Chosen int
}

// AutoBucketCount runs the Section 3.1 procedure on the cost samples:
// it increases b from 1, computing the f-fold cross-validated squared
// error E_b of the V-Optimal b-bucket histogram, and stops at the
// first b whose error is not a significant improvement over b−1,
// returning b−1.
func AutoBucketCount(samples []float64, resolution float64, cfg AutoConfig) (AutoResult, error) {
	var res AutoResult
	if cfg.Folds < 2 {
		return res, fmt.Errorf("hist: need at least 2 folds, got %d", cfg.Folds)
	}
	if len(samples) < cfg.Folds {
		// Too little data to cross-validate; a single bucket is the
		// only defensible choice.
		res.Chosen = 1
		res.Errors = []float64{0}
		return res, nil
	}
	folds := splitFolds(samples, cfg.Folds, cfg.Seed)

	maxB := cfg.MaxBuckets
	if maxB < 1 {
		maxB = 1
	}
	prev := -1.0
	chosen := 1
	for b := 1; b <= maxB; b++ {
		eb, err := cvError(folds, resolution, b)
		if err != nil {
			return res, err
		}
		res.Errors = append(res.Errors, eb)
		if prev >= 0 {
			if prev <= 0 || (prev-eb) < cfg.MinImprove*prev {
				chosen = b - 1
				break
			}
			chosen = b
		}
		prev = eb
	}
	if chosen < 1 {
		chosen = 1
	}
	res.Chosen = chosen
	return res, nil
}

// AutoHistogram selects the bucket count via AutoBucketCount and
// returns the V-Optimal histogram with that many buckets, built on the
// full sample set. This is the paper's "Auto" method.
func AutoHistogram(samples []float64, resolution float64, cfg AutoConfig) (*Histogram, AutoResult, error) {
	res, err := AutoBucketCount(samples, resolution, cfg)
	if err != nil {
		return nil, res, err
	}
	raw, err := NewRaw(samples, resolution)
	if err != nil {
		return nil, res, err
	}
	h, err := VOptimal(raw, res.Chosen)
	return h, res, err
}

// StaticHistogram is the paper's Sta-b baseline: a V-Optimal histogram
// with a fixed bucket count b.
func StaticHistogram(samples []float64, resolution float64, b int) (*Histogram, error) {
	raw, err := NewRaw(samples, resolution)
	if err != nil {
		return nil, err
	}
	return VOptimal(raw, b)
}

// splitFolds randomly partitions samples into f near-equal folds.
func splitFolds(samples []float64, f int, seed int64) [][]float64 {
	rnd := rand.New(rand.NewSource(seed))
	perm := rnd.Perm(len(samples))
	folds := make([][]float64, f)
	for i, pi := range perm {
		k := i % f
		folds[k] = append(folds[k], samples[pi])
	}
	return folds
}

// cvError computes E_b: for each fold k, train V-Optimal with b
// buckets on the other folds and accumulate the squared error against
// fold k's raw distribution; return the average over folds.
func cvError(folds [][]float64, resolution float64, b int) (float64, error) {
	var total float64
	n := 0
	for k := range folds {
		if len(folds[k]) == 0 {
			continue
		}
		var train []float64
		for j := range folds {
			if j != k {
				train = append(train, folds[j]...)
			}
		}
		if len(train) == 0 {
			continue
		}
		trainRaw, err := NewRaw(train, resolution)
		if err != nil {
			return 0, err
		}
		h, err := VOptimal(trainRaw, b)
		if err != nil {
			return 0, err
		}
		heldOut, err := NewRaw(folds[k], resolution)
		if err != nil {
			return 0, err
		}
		total += h.SquaredError(heldOut)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("hist: all folds empty")
	}
	return total / float64(n), nil
}
