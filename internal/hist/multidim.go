package hist

import (
	"fmt"
	"math"
	"sort"
)

// MaxDims bounds the dimensionality of a multi-dimensional histogram.
// A dimension corresponds to one edge of a path, plus one synthetic
// accumulator dimension used by the chain evaluator, so this bounds
// the maximum instantiable path rank.
const MaxDims = 12

// CellKey identifies a hyper-bucket by its per-dimension bucket
// indices. Unused trailing dimensions must be zero so that keys remain
// comparable map keys.
type CellKey [MaxDims]uint16

// Multi is a multi-dimensional histogram (Section 3.2): per-dimension
// bucket boundaries form a grid, and a sparse map assigns probability
// to occupied hyper-buckets. Probabilities sum to one.
type Multi struct {
	bounds [][]float64 // bounds[d] has len nb_d+1, strictly increasing
	cells  map[CellKey]float64
}

// NewMulti creates an empty multi-dimensional histogram over the given
// per-dimension boundaries. Mass must be added via Add and then
// Normalize must be called.
func NewMulti(bounds [][]float64) (*Multi, error) {
	if len(bounds) == 0 || len(bounds) > MaxDims {
		return nil, fmt.Errorf("hist: %d dimensions out of range [1,%d]", len(bounds), MaxDims)
	}
	cp := make([][]float64, len(bounds))
	for d, bd := range bounds {
		if len(bd) < 2 {
			return nil, fmt.Errorf("hist: dimension %d has %d boundaries, need ≥ 2", d, len(bd))
		}
		if len(bd) > math.MaxUint16 {
			return nil, fmt.Errorf("hist: dimension %d has too many buckets", d)
		}
		for i := 1; i < len(bd); i++ {
			if !(bd[i] > bd[i-1]) {
				return nil, fmt.Errorf("hist: dimension %d boundaries not increasing at %d", d, i)
			}
		}
		cp[d] = append([]float64(nil), bd...)
	}
	return &Multi{bounds: cp, cells: make(map[CellKey]float64)}, nil
}

// Dims returns the number of dimensions.
func (m *Multi) Dims() int { return len(m.bounds) }

// Bounds returns the boundary slice of dimension d; do not modify.
func (m *Multi) Bounds(d int) []float64 { return m.bounds[d] }

// NumBuckets returns the bucket count of dimension d.
func (m *Multi) NumBuckets(d int) int { return len(m.bounds[d]) - 1 }

// NumCells returns the number of occupied hyper-buckets.
func (m *Multi) NumCells() int { return len(m.cells) }

// StorageFloats approximates the storage footprint as a float count:
// all boundaries plus one probability per occupied cell. Used for the
// Fig. 11(c)/Fig. 12 space accounting.
func (m *Multi) StorageFloats() int {
	n := 0
	for _, bd := range m.bounds {
		n += len(bd)
	}
	// Each occupied cell stores its index tuple (counted as one float
	// equivalent) and its probability.
	return n + 2*len(m.cells)
}

// BucketRange returns [lo, hi) of bucket i on dimension d.
func (m *Multi) BucketRange(d, i int) (lo, hi float64) {
	return m.bounds[d][i], m.bounds[d][i+1]
}

// locate returns the bucket index of v on dimension d, or -1 when v is
// outside the dimension's support.
func (m *Multi) locate(d int, v float64) int {
	bd := m.bounds[d]
	if v < bd[0] || v >= bd[len(bd)-1] {
		// Values exactly at the top boundary belong to the last bucket;
		// this keeps max-valued samples inside the histogram.
		if v == bd[len(bd)-1] {
			return len(bd) - 2
		}
		return -1
	}
	i := sort.SearchFloat64s(bd, v)
	if i < len(bd) && bd[i] == v {
		return i
	}
	return i - 1
}

// Add accrues weight w to the hyper-bucket containing point; it
// reports false when the point is outside the grid.
func (m *Multi) Add(point []float64, w float64) bool {
	var key CellKey
	for d := range m.bounds {
		i := m.locate(d, point[d])
		if i < 0 {
			return false
		}
		key[d] = uint16(i)
	}
	m.cells[key] += w
	return true
}

// SetCell assigns probability to a hyper-bucket by index; indexes must
// be in range. Used by tests and by factor operations.
func (m *Multi) SetCell(idx []int, pr float64) {
	var key CellKey
	for d, i := range idx {
		if i < 0 || i >= m.NumBuckets(d) {
			panic(fmt.Sprintf("hist: cell index %d out of range on dim %d", i, d))
		}
		key[d] = uint16(i)
	}
	if pr == 0 {
		delete(m.cells, key)
		return
	}
	m.cells[key] = pr
}

// Cell returns the probability of the hyper-bucket with the given
// indices (0 when unoccupied).
func (m *Multi) Cell(idx []int) float64 {
	var key CellKey
	for d, i := range idx {
		key[d] = uint16(i)
	}
	return m.cells[key]
}

// ForEach visits every occupied hyper-bucket in map order; use
// ForEachSorted when the visit order must be reproducible.
func (m *Multi) ForEach(fn func(key CellKey, pr float64)) {
	for k, v := range m.cells {
		fn(k, v)
	}
}

// ForEachSorted visits every occupied hyper-bucket in lexicographic
// key order, so serialization and other order-sensitive consumers are
// deterministic across runs.
func (m *Multi) ForEachSorted(fn func(key CellKey, pr float64)) {
	keys := make([]CellKey, 0, len(m.cells))
	for k := range m.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for d := 0; d < MaxDims; d++ {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
	for _, k := range keys {
		fn(k, m.cells[k])
	}
}

// Total returns the current probability mass (1 after Normalize).
// Summation runs in sorted key order: float addition is not
// associative, so map-order iteration would make the total — and
// everything normalized by it — drift at the bit level between runs.
func (m *Multi) Total() float64 {
	var t float64
	m.ForEachSorted(func(_ CellKey, v float64) { t += v })
	return t
}

// Normalize scales cell masses to sum to one. It returns an error when
// the histogram is empty.
func (m *Multi) Normalize() error {
	t := m.Total()
	if t <= 0 {
		return fmt.Errorf("hist: cannot normalize empty multi-histogram")
	}
	for k, v := range m.cells {
		m.cells[k] = v / t
	}
	return nil
}

// CheckNormalized verifies that the probability mass lies within tol
// of one, without rescaling anything. Deserializers of
// already-normalized joints use it instead of Normalize: dividing by
// a total that is only approximately one would perturb every cell at
// the bit level and break byte-identical round trips.
func (m *Multi) CheckNormalized(tol float64) error {
	t := m.Total()
	if math.Abs(t-1) > tol {
		return fmt.Errorf("hist: multi mass %v is not normalized (tolerance %v)", t, tol)
	}
	return nil
}

// Clone returns a deep copy.
func (m *Multi) Clone() *Multi {
	out, err := NewMulti(m.bounds)
	if err != nil {
		panic(err) // m was valid
	}
	for k, v := range m.cells {
		out.cells[k] = v
	}
	return out
}

// Marginal returns the one-dimensional marginal distribution of
// dimension d. Accumulation runs in sorted key order so the result is
// bit-identical across runs (see Total).
func (m *Multi) Marginal(d int) *Histogram {
	pr := make([]float64, m.NumBuckets(d))
	m.ForEachSorted(func(k CellKey, v float64) {
		pr[k[d]] += v
	})
	bs := make([]Bucket, 0, len(pr))
	for i, p := range pr {
		if p > 0 {
			lo, hi := m.BucketRange(d, i)
			bs = append(bs, Bucket{Lo: lo, Hi: hi, Pr: p})
		}
	}
	h, err := FromBuckets(bs)
	if err != nil {
		panic(fmt.Sprintf("hist: marginal of dim %d: %v", d, err))
	}
	return h
}

// MarginalOnto returns the joint marginal over the given dimensions,
// in the given order. dims must be distinct and in range.
func (m *Multi) MarginalOnto(dims []int) (*Multi, error) {
	bounds := make([][]float64, len(dims))
	for i, d := range dims {
		if d < 0 || d >= m.Dims() {
			return nil, fmt.Errorf("hist: marginal dim %d out of range", d)
		}
		bounds[i] = m.bounds[d]
	}
	out, err := NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	// Sorted order: distinct cells fold onto shared marginal cells, so
	// the accumulation order must be reproducible (see Total).
	m.ForEachSorted(func(k CellKey, v float64) {
		var nk CellKey
		for i, d := range dims {
			nk[i] = k[d]
		}
		out.cells[nk] += v
	})
	return out, nil
}

// MinSum and MaxSum return the support bounds of the sum of all
// dimensions (the tightest interval the flattened cost can occupy).
func (m *Multi) MinSum() float64 {
	min := math.Inf(1)
	for k := range m.cells {
		var s float64
		for d := 0; d < m.Dims(); d++ {
			s += m.bounds[d][k[d]]
		}
		if s < min {
			min = s
		}
	}
	return min
}

// MaxSum returns the maximum possible sum over occupied cells.
func (m *Multi) MaxSum() float64 {
	max := math.Inf(-1)
	for k := range m.cells {
		var s float64
		for d := 0; d < m.Dims(); d++ {
			s += m.bounds[d][k[d]+1]
		}
		if s > max {
			max = s
		}
	}
	return max
}

// SumHistogram flattens the joint into the distribution of the sum of
// its dimensions (Section 4.2): each hyper-bucket contributes the
// interval [Σ lo_d, Σ hi_d) with its probability, and overlapping
// intervals are rearranged into disjoint buckets. maxBuckets ≤ 0
// leaves the result uncompressed.
func (m *Multi) SumHistogram(maxBuckets int) (*Histogram, error) {
	if len(m.cells) == 0 {
		return nil, fmt.Errorf("hist: empty multi-histogram")
	}
	// Sorted order: rearrange accumulates overlapping intervals, so
	// the input sequence must be reproducible (see Total).
	ivals := make([]weightedInterval, 0, len(m.cells))
	m.ForEachSorted(func(k CellKey, v float64) {
		var lo, hi float64
		for d := 0; d < m.Dims(); d++ {
			lo += m.bounds[d][k[d]]
			hi += m.bounds[d][k[d]+1]
		}
		ivals = append(ivals, weightedInterval{lo: lo, hi: hi, pr: v})
	})
	h, err := rearrange(ivals)
	if err != nil {
		return nil, err
	}
	if maxBuckets > 0 {
		h = h.Compress(maxBuckets)
	}
	return h, nil
}

// RefineDim splits dimension d's buckets at the given cut points
// (those inside the dimension's support), distributing each cell's
// mass proportionally to sub-bucket width, per uniform-within-bucket.
// The result represents the same distribution on a finer grid.
func (m *Multi) RefineDim(d int, cuts []float64) (*Multi, error) {
	if d < 0 || d >= m.Dims() {
		return nil, fmt.Errorf("hist: refine dim %d out of range", d)
	}
	old := m.bounds[d]
	merged := make([]float64, 0, len(old)+len(cuts))
	merged = append(merged, old...)
	for _, c := range cuts {
		if c > old[0] && c < old[len(old)-1] {
			merged = append(merged, c)
		}
	}
	sort.Float64s(merged)
	merged = dedupFloats(merged)

	bounds := make([][]float64, m.Dims())
	copy(bounds, m.bounds)
	bounds[d] = merged
	out, err := NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	// Map each old bucket on d to its new sub-bucket range.
	type span struct{ first, last int } // inclusive new-bucket indices
	spans := make([]span, len(old)-1)
	for i := 0; i+1 < len(old); i++ {
		first := sort.SearchFloat64s(merged, old[i])
		last := sort.SearchFloat64s(merged, old[i+1]) - 1
		spans[i] = span{first, last}
	}
	for k, v := range m.cells {
		sp := spans[k[d]]
		oldLo, oldHi := old[k[d]], old[k[d]+1]
		for ni := sp.first; ni <= sp.last; ni++ {
			frac := (merged[ni+1] - merged[ni]) / (oldHi - oldLo)
			nk := k
			nk[d] = uint16(ni)
			out.cells[nk] += v * frac
		}
	}
	return out, nil
}

// RemapDim rebuilds dimension d onto newBounds, a strictly increasing
// boundary set that must contain every existing boundary of d (it may
// extend beyond the current support; the extension cells simply stay
// empty). Unlike RefineDim this aligns histograms with *different*
// supports onto one shared grid, which the Equation 2 evaluators need
// when two factors disagree about an edge's cost range.
func (m *Multi) RemapDim(d int, newBounds []float64) (*Multi, error) {
	if d < 0 || d >= m.Dims() {
		return nil, fmt.Errorf("hist: remap dim %d out of range", d)
	}
	old := m.bounds[d]
	// Every old boundary must appear in newBounds so old cells map to
	// whole runs of new cells.
	for _, b := range old {
		i := sort.SearchFloat64s(newBounds, b)
		if i >= len(newBounds) || newBounds[i] != b {
			return nil, fmt.Errorf("hist: remap boundary %v missing from new grid", b)
		}
	}
	bounds := make([][]float64, m.Dims())
	copy(bounds, m.bounds)
	bounds[d] = newBounds
	out, err := NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	type span struct{ first, last int }
	spans := make([]span, len(old)-1)
	for i := 0; i+1 < len(old); i++ {
		first := sort.SearchFloat64s(newBounds, old[i])
		last := sort.SearchFloat64s(newBounds, old[i+1]) - 1
		spans[i] = span{first, last}
	}
	for k, v := range m.cells {
		sp := spans[k[d]]
		oldLo, oldHi := old[k[d]], old[k[d]+1]
		for ni := sp.first; ni <= sp.last; ni++ {
			frac := (newBounds[ni+1] - newBounds[ni]) / (oldHi - oldLo)
			nk := k
			nk[d] = uint16(ni)
			out.cells[nk] += v * frac
		}
	}
	return out, nil
}

// UnionBounds merges two boundary sets into one strictly increasing
// set covering both supports.
func UnionBounds(a, b []float64) []float64 {
	merged := make([]float64, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	sort.Float64s(merged)
	return dedupFloats(merged)
}

// FromSamplesConfig controls multi-dimensional histogram construction.
type FromSamplesConfig struct {
	Resolution float64
	Auto       AutoConfig
	// FixedBuckets, when positive, skips the Auto selection and uses
	// exactly this many V-Optimal buckets per dimension (the paper's
	// Sta-b baseline).
	FixedBuckets int
}

// DefaultFromSamplesConfig uses one-second resolution and the default
// Auto settings.
func DefaultFromSamplesConfig() FromSamplesConfig {
	return FromSamplesConfig{Resolution: DefaultResolution, Auto: DefaultAutoConfig()}
}

// NewMultiFromSamples builds a multi-dimensional histogram from joint
// cost observations, one row per trajectory and one column per edge
// (Section 3.2): the bucket count of each dimension is chosen by the
// Auto method on that dimension's marginal samples, V-Optimal places
// the boundaries, and hyper-bucket probabilities are filled from the
// joint observations.
func NewMultiFromSamples(rows [][]float64, cfg FromSamplesConfig) (*Multi, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("hist: no joint samples")
	}
	d := len(rows[0])
	if d == 0 || d > MaxDims {
		return nil, fmt.Errorf("hist: %d dimensions out of range [1,%d]", d, MaxDims)
	}
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("hist: row %d has %d values, want %d", i, len(r), d)
		}
	}
	bounds := make([][]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(rows))
		for i, r := range rows {
			col[i] = r[j]
		}
		b := cfg.FixedBuckets
		if b <= 0 {
			res, err := AutoBucketCount(col, cfg.Resolution, cfg.Auto)
			if err != nil {
				return nil, fmt.Errorf("hist: dim %d: %w", j, err)
			}
			b = res.Chosen
		}
		raw, err := NewRaw(col, cfg.Resolution)
		if err != nil {
			return nil, fmt.Errorf("hist: dim %d: %w", j, err)
		}
		h, err := VOptimal(raw, b)
		if err != nil {
			return nil, fmt.Errorf("hist: dim %d: %w", j, err)
		}
		bd := make([]float64, 0, h.NumBuckets()+1)
		for _, b := range h.Buckets() {
			bd = append(bd, b.Lo)
		}
		bd = append(bd, h.Max())
		bounds[j] = bd
	}
	m, err := NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	snapped := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			snapped[j] = math.Round(v/cfg.Resolution) * cfg.Resolution
		}
		if !m.Add(snapped, 1) {
			// A snapped value can only leave the grid through floating
			// point rounding at the extremes; clamp it in.
			for j := range snapped {
				bd := bounds[j]
				if snapped[j] < bd[0] {
					snapped[j] = bd[0]
				}
				if snapped[j] >= bd[len(bd)-1] {
					snapped[j] = bd[len(bd)-1] - 1e-9
				}
			}
			m.Add(snapped, 1)
		}
	}
	if err := m.Normalize(); err != nil {
		return nil, err
	}
	return m, nil
}
