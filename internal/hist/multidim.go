package hist

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// MaxDims bounds the dimensionality of a multi-dimensional histogram.
// A dimension corresponds to one edge of a path, plus one synthetic
// accumulator dimension used by the chain evaluator, so this bounds
// the maximum instantiable path rank.
const MaxDims = 12

// CellKey identifies a hyper-bucket by its per-dimension bucket
// indices. Unused trailing dimensions must be zero so that keys remain
// directly comparable. This is the API form; storage and all hot
// comparisons use the dimension-packed PackedKey (see packedkey.go),
// for which cellKeyLess is the ordering oracle.
type CellKey [MaxDims]uint16

// cellKeyLess reports whether a sorts before b in lexicographic order
// over all dimensions — the storage order of Multi and the visit order
// of ForEachSorted. PackedKey.Less implements the same order on the
// packed form; the differential tests pin the two against each other.
func cellKeyLess(a, b CellKey) bool {
	for d := 0; d < MaxDims; d++ {
		if a[d] != b[d] {
			return a[d] < b[d]
		}
	}
	return false
}

// Multi is a multi-dimensional histogram (Section 3.2): per-dimension
// bucket boundaries form a grid, and a sparse columnar cell store
// assigns probability to occupied hyper-buckets. Probabilities sum to
// one.
//
// Cells live in two parallel slices — keys and probs — kept in
// ascending lexicographic key order at all times. The sorted layout
// makes ForEachSorted (and everything built on it: Total, marginals,
// folding, serialization) a zero-allocation linear scan, and lets the
// chain evaluator join two histograms' cells with a merge instead of
// hash lookups. The map-based predecessor re-derived this order with a
// sort on every visit. Keys are stored dimension-packed (PackedKey),
// so the order is maintained with 1–3 word compares per key pair.
type Multi struct {
	bounds [][]float64 // bounds[d] has len nb_d+1, strictly increasing
	keys   []PackedKey // ascending lexicographic, no duplicates
	probs  []float64   // probs[i] belongs to keys[i]

	// marg caches per-dimension marginals so a warm Marginal is
	// allocation-free; any cell mutation invalidates the cache.
	marg [MaxDims]atomic.Pointer[Histogram]

	// sum caches the last SumHistogram result the same way: model
	// variables are immutable once built, and the single-factor "lucky
	// case" of chain evaluation flattens the same joint on every query.
	sum atomic.Pointer[sumHistCache]
}

// sumHistCache is one memoized SumHistogram answer; maxBuckets is part
// of the identity because compression depends on it.
type sumHistCache struct {
	maxBuckets int
	h          *Histogram
}

// NewMulti creates an empty multi-dimensional histogram over the given
// per-dimension boundaries. Mass must be added via Add and then
// Normalize must be called.
func NewMulti(bounds [][]float64) (*Multi, error) {
	cp, err := validateBounds(bounds, true)
	if err != nil {
		return nil, err
	}
	return &Multi{bounds: cp}, nil
}

// multiPool recycles the transient Multis the chain evaluator churns
// through: remapped alignment views and intermediate chain states live
// for one multiply/fold step and then die. A pooled Multi keeps its
// cell buffers and top-level bounds slice attached, so reuse restores
// their capacity without re-allocating.
var multiPool = sync.Pool{New: func() any { return new(Multi) }}

// newMultiFromPool returns a pooled Multi with a bounds top-slice of
// length ndims (nil elements, to be filled by the caller) and empty
// cell buffers with capacity ≥ cellCap.
func newMultiFromPool(ndims, cellCap int) *Multi {
	m := multiPool.Get().(*Multi)
	if cap(m.bounds) < ndims {
		m.bounds = make([][]float64, ndims)
	} else {
		m.bounds = m.bounds[:ndims]
		for i := range m.bounds {
			m.bounds[i] = nil
		}
	}
	if cap(m.keys) < cellCap {
		m.keys = make([]PackedKey, 0, cellCap)
	} else {
		m.keys = m.keys[:0]
	}
	if cap(m.probs) < cellCap {
		m.probs = make([]float64, 0, cellCap)
	} else {
		m.probs = m.probs[:0]
	}
	return m
}

// PutMulti recycles a transient Multi: the struct, its cell buffers
// and its top-level bounds slice return to the pool. The caller must
// be the Multi's sole owner and must not touch it afterwards. The
// per-dimension boundary slices are released, not pooled — they are
// routinely shared between histograms.
func PutMulti(m *Multi) {
	if m == nil {
		return
	}
	for i := range m.bounds {
		m.bounds[i] = nil
	}
	m.bounds = m.bounds[:0]
	m.keys = m.keys[:0]
	m.probs = m.probs[:0]
	// Clear only the cached marginals that exist: most transient Multis
	// never compute one, and an unconditional atomic store per dimension
	// (write barrier included) was a measurable slice of the uncached
	// query path.
	for d := range m.marg {
		if m.marg[d].Load() != nil {
			m.marg[d].Store(nil)
		}
	}
	if m.sum.Load() != nil {
		m.sum.Store(nil)
	}
	multiPool.Put(m)
}

// NewMultiFromCells builds a pooled Multi from a columnar cell dump:
// the per-dimension boundary slices are shared (treat them as
// immutable), while the top-level bounds slice and the cells are
// copied into the Multi's pooled storage — the caller keeps ownership
// of all three argument slices and may reuse them. keys must be
// strictly ascending in lexicographic order, within the grid, with
// zero trailing dimensions. The chain evaluator's merge-join kernel
// emits its result cells already sorted, so this constructor turns
// them into a Multi in O(cells) with no re-sorting and no hashing.
func NewMultiFromCells(bounds [][]float64, keys []CellKey, probs []float64) (*Multi, error) {
	if _, err := validateBounds(bounds, false); err != nil {
		return nil, err
	}
	if err := validateCells(bounds, keys, probs); err != nil {
		return nil, err
	}
	m := newMultiFromPool(len(bounds), len(keys))
	copy(m.bounds, bounds)
	m.keys = m.keys[:len(keys)]
	for i, k := range keys {
		m.keys[i] = PackKey(k)
	}
	m.probs = m.probs[:len(probs)]
	copy(m.probs, probs)
	return m, nil
}

// NewMultiFromPackedCells is NewMultiFromCells for producers that
// already hold packed keys and guarantee the cell contract by
// construction: keys strictly ascending, indices inside the grid, zero
// unused dimensions. The chain evaluator's kernels qualify — their
// emission loops provably emit in sorted order — so this constructor
// skips the per-cell validation pass entirely; everyone else must use
// NewMultiFromCells. Violating the contract corrupts every sorted-scan
// consumer downstream; CheckInvariants exists for tests to assert the
// contract after kernel changes.
func NewMultiFromPackedCells(bounds [][]float64, keys []PackedKey, probs []float64) (*Multi, error) {
	// Trusted constructor: callers own boundary monotonicity (kernel
	// states pass model bounds plus rearranged cuts, both ascending by
	// construction), so the O(Σ|bounds|) per-value scan of
	// validateBounds is skipped. Shape is still checked; tests cover
	// the rest via CheckInvariants.
	if len(bounds) == 0 || len(bounds) > MaxDims {
		return nil, fmt.Errorf("hist: %d dimensions out of range [1,%d]", len(bounds), MaxDims)
	}
	for d, bd := range bounds {
		if len(bd) < 2 {
			return nil, fmt.Errorf("hist: dimension %d has %d boundaries, need ≥ 2", d, len(bd))
		}
		if len(bd) > math.MaxUint16 {
			return nil, fmt.Errorf("hist: dimension %d has too many buckets", d)
		}
	}
	if len(keys) != len(probs) {
		return nil, fmt.Errorf("hist: %d keys but %d probabilities", len(keys), len(probs))
	}
	m := newMultiFromPool(len(bounds), len(keys))
	copy(m.bounds, bounds)
	m.keys = m.keys[:len(keys)]
	copy(m.keys, keys)
	m.probs = m.probs[:len(probs)]
	copy(m.probs, probs)
	return m, nil
}

// CheckInvariants verifies the sorted-cell storage contract — strictly
// ascending keys, in-range indices, zero unused dimensions. Tests run
// it after trusted-constructor paths; it is never on a hot path.
func (m *Multi) CheckInvariants() error {
	dims := len(m.bounds)
	for i, pk := range m.keys {
		if i > 0 && !m.keys[i-1].Less(pk) {
			return fmt.Errorf("hist: cell keys not in ascending order at %d", i)
		}
		k := pk.Unpack()
		for d := 0; d < MaxDims; d++ {
			if d < dims {
				if int(k[d]) >= len(m.bounds[d])-1 {
					return fmt.Errorf("hist: cell %d index %d out of range on dim %d", i, k[d], d)
				}
			} else if k[d] != 0 {
				return fmt.Errorf("hist: cell %d has non-zero index on unused dim %d", i, d)
			}
		}
	}
	return nil
}

func validateCells(bounds [][]float64, keys []CellKey, probs []float64) error {
	if len(keys) != len(probs) {
		return fmt.Errorf("hist: %d keys but %d probabilities", len(keys), len(probs))
	}
	dims := len(bounds)
	for i, k := range keys {
		if i > 0 && !cellKeyLess(keys[i-1], k) {
			return fmt.Errorf("hist: cell keys not in ascending order at %d", i)
		}
		for d := 0; d < MaxDims; d++ {
			if d < dims {
				if int(k[d]) >= len(bounds[d])-1 {
					return fmt.Errorf("hist: cell %d index %d out of range on dim %d", i, k[d], d)
				}
			} else if k[d] != 0 {
				return fmt.Errorf("hist: cell %d has non-zero index on unused dim %d", i, d)
			}
		}
	}
	return nil
}

// validateBounds checks the grid shape; when copy is true the returned
// slices are deep copies of the input.
func validateBounds(bounds [][]float64, copyBounds bool) ([][]float64, error) {
	if len(bounds) == 0 || len(bounds) > MaxDims {
		return nil, fmt.Errorf("hist: %d dimensions out of range [1,%d]", len(bounds), MaxDims)
	}
	out := bounds
	if copyBounds {
		out = make([][]float64, len(bounds))
	}
	for d, bd := range bounds {
		if len(bd) < 2 {
			return nil, fmt.Errorf("hist: dimension %d has %d boundaries, need ≥ 2", d, len(bd))
		}
		if len(bd) > math.MaxUint16 {
			return nil, fmt.Errorf("hist: dimension %d has too many buckets", d)
		}
		for i := 1; i < len(bd); i++ {
			if !(bd[i] > bd[i-1]) {
				return nil, fmt.Errorf("hist: dimension %d boundaries not increasing at %d", d, i)
			}
		}
		if copyBounds {
			out[d] = append([]float64(nil), bd...)
		}
	}
	return out, nil
}

// Dims returns the number of dimensions.
func (m *Multi) Dims() int { return len(m.bounds) }

// Bounds returns the boundary slice of dimension d; do not modify.
func (m *Multi) Bounds(d int) []float64 { return m.bounds[d] }

// NumBuckets returns the bucket count of dimension d.
func (m *Multi) NumBuckets(d int) int { return len(m.bounds[d]) - 1 }

// NumCells returns the number of occupied hyper-buckets.
func (m *Multi) NumCells() int { return len(m.keys) }

// Cells exposes the columnar cell storage: the packed keys in
// ascending lexicographic order and the parallel probabilities. The
// chain evaluator's merge-join and fold kernels iterate these
// directly. Callers must not modify either slice.
func (m *Multi) Cells() (keys []PackedKey, probs []float64) { return m.keys, m.probs }

// cellKeyFloats is the float64-equivalent storage of one cell key in
// the columnar layout (a CellKey is MaxDims uint16 words).
const cellKeyFloats = MaxDims * 2 / 8

// StorageFloats reports the storage footprint as a float count: all
// boundaries plus, per occupied cell, the key's columnar storage
// (cellKeyFloats float-equivalents) and one probability. Used for the
// Fig. 11(c)/Fig. 12 space accounting.
func (m *Multi) StorageFloats() int {
	n := 0
	for _, bd := range m.bounds {
		n += len(bd)
	}
	return n + (cellKeyFloats+1)*len(m.keys)
}

// BucketRange returns [lo, hi) of bucket i on dimension d.
func (m *Multi) BucketRange(d, i int) (lo, hi float64) {
	return m.bounds[d][i], m.bounds[d][i+1]
}

// locate returns the bucket index of v on dimension d, or -1 when v is
// outside the dimension's support.
func (m *Multi) locate(d int, v float64) int {
	bd := m.bounds[d]
	if v < bd[0] || v >= bd[len(bd)-1] {
		// Values exactly at the top boundary belong to the last bucket;
		// this keeps max-valued samples inside the histogram.
		if v == bd[len(bd)-1] {
			return len(bd) - 2
		}
		return -1
	}
	i := sort.SearchFloat64s(bd, v)
	if i < len(bd) && bd[i] == v {
		return i
	}
	return i - 1
}

// search returns the storage index of key and whether it is occupied;
// for absent keys the returned index is the insertion position.
func (m *Multi) search(key PackedKey) (int, bool) {
	i := sort.Search(len(m.keys), func(i int) bool { return !m.keys[i].Less(key) })
	if i < len(m.keys) && m.keys[i] == key {
		return i, true
	}
	return i, false
}

// invalidateMarginals drops the cached per-dimension marginals; every
// cell mutation must call it. Only populated entries are cleared —
// atomic stores dirty the cache line and run a write barrier, and most
// mutated histograms never computed a marginal.
func (m *Multi) invalidateMarginals() {
	for d := range m.bounds {
		if m.marg[d].Load() != nil {
			m.marg[d].Store(nil)
		}
	}
	if m.sum.Load() != nil {
		m.sum.Store(nil)
	}
}

// insertAt places a new cell at storage position i, shifting the tail.
func (m *Multi) insertAt(i int, key PackedKey, pr float64) {
	m.keys = append(m.keys, PackedKey{})
	copy(m.keys[i+1:], m.keys[i:])
	m.keys[i] = key
	m.probs = append(m.probs, 0)
	copy(m.probs[i+1:], m.probs[i:])
	m.probs[i] = pr
}

// removeAt deletes the cell at storage position i.
func (m *Multi) removeAt(i int) {
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.probs = append(m.probs[:i], m.probs[i+1:]...)
}

// addKey accrues w to the cell with the given key, inserting it when
// absent (mirroring map += semantics: a zero-weight accrual still
// creates the cell). Ascending insertions — the common case, since
// producers emit in sorted order — append in O(1).
func (m *Multi) addKey(key PackedKey, w float64) {
	if n := len(m.keys); n == 0 || m.keys[n-1].Less(key) {
		m.keys = append(m.keys, key)
		m.probs = append(m.probs, w)
	} else if i, ok := m.search(key); ok {
		m.probs[i] += w
	} else {
		m.insertAt(i, key, w)
	}
	m.invalidateMarginals()
}

// Add accrues weight w to the hyper-bucket containing point; it
// reports false when the point is outside the grid.
func (m *Multi) Add(point []float64, w float64) bool {
	var key CellKey
	for d := range m.bounds {
		i := m.locate(d, point[d])
		if i < 0 {
			return false
		}
		key[d] = uint16(i)
	}
	m.addKey(PackKey(key), w)
	return true
}

// checkedKey converts per-dimension indices to a packed key, panicking
// on out-of-range indices. Used by tests and by factor operations.
func (m *Multi) checkedKey(idx []int) PackedKey {
	var key CellKey
	for d, i := range idx {
		if i < 0 || i >= m.NumBuckets(d) {
			panic(fmt.Sprintf("hist: cell index %d out of range on dim %d", i, d))
		}
		key[d] = uint16(i)
	}
	return PackKey(key)
}

// SetCell assigns probability to a hyper-bucket by index; indexes must
// be in range. Setting zero removes the cell. Used by tests and by
// factor operations; deserializers feed it cells in ascending key
// order, which appends directly into the columnar layout.
func (m *Multi) SetCell(idx []int, pr float64) {
	key := m.checkedKey(idx)
	if pr == 0 {
		if i, ok := m.search(key); ok {
			m.removeAt(i)
			m.invalidateMarginals()
		}
		return
	}
	if n := len(m.keys); n == 0 || m.keys[n-1].Less(key) {
		m.keys = append(m.keys, key)
		m.probs = append(m.probs, pr)
	} else if i, ok := m.search(key); ok {
		m.probs[i] = pr
	} else {
		m.insertAt(i, key, pr)
	}
	m.invalidateMarginals()
}

// AddCell accrues w to the hyper-bucket with the given indices,
// inserting the cell when absent; indexes must be in range. Unlike
// SetCell a zero accrual onto an absent cell creates it, mirroring the
// += semantics the evaluator's fold assembly relies on.
func (m *Multi) AddCell(idx []int, w float64) {
	m.addKey(m.checkedKey(idx), w)
}

// Cell returns the probability of the hyper-bucket with the given
// indices (0 when unoccupied).
func (m *Multi) Cell(idx []int) float64 {
	var key CellKey
	for d, i := range idx {
		key[d] = uint16(i)
	}
	if i, ok := m.search(PackKey(key)); ok {
		return m.probs[i]
	}
	return 0
}

// ForEach visits every occupied hyper-bucket. With the columnar layout
// this is the same zero-allocation sorted scan as ForEachSorted (the
// map-based predecessor visited in map order here).
func (m *Multi) ForEach(fn func(key CellKey, pr float64)) {
	for i, k := range m.keys {
		fn(k.Unpack(), m.probs[i])
	}
}

// ForEachSorted visits every occupied hyper-bucket in lexicographic
// key order, so serialization and other order-sensitive consumers are
// deterministic across runs. Cells are stored in exactly this order,
// making the visit a zero-allocation linear scan.
func (m *Multi) ForEachSorted(fn func(key CellKey, pr float64)) {
	for i, k := range m.keys {
		fn(k.Unpack(), m.probs[i])
	}
}

// Total returns the current probability mass (1 after Normalize).
// Summation runs in sorted key order — the storage order — because
// float addition is not associative: an arbitrary iteration order
// would make the total, and everything normalized by it, drift at the
// bit level between runs.
func (m *Multi) Total() float64 {
	var t float64
	for _, v := range m.probs {
		t += v
	}
	return t
}

// Normalize scales cell masses to sum to one. It returns an error when
// the histogram is empty.
func (m *Multi) Normalize() error {
	t := m.Total()
	if t <= 0 {
		return fmt.Errorf("hist: cannot normalize empty multi-histogram")
	}
	for i, v := range m.probs {
		m.probs[i] = v / t
	}
	m.invalidateMarginals()
	return nil
}

// CheckNormalized verifies that the probability mass lies within tol
// of one, without rescaling anything. Deserializers of
// already-normalized joints use it instead of Normalize: dividing by
// a total that is only approximately one would perturb every cell at
// the bit level and break byte-identical round trips.
func (m *Multi) CheckNormalized(tol float64) error {
	t := m.Total()
	if math.Abs(t-1) > tol {
		return fmt.Errorf("hist: multi mass %v is not normalized (tolerance %v)", t, tol)
	}
	return nil
}

// Clone returns a deep copy.
func (m *Multi) Clone() *Multi {
	cp := make([][]float64, len(m.bounds))
	for d, bd := range m.bounds {
		cp[d] = append([]float64(nil), bd...)
	}
	return &Multi{
		bounds: cp,
		keys:   append([]PackedKey(nil), m.keys...),
		probs:  append([]float64(nil), m.probs...),
	}
}

// Marginal returns the one-dimensional marginal distribution of
// dimension d. Accumulation runs in sorted key order so the result is
// bit-identical across runs (see Total). The marginal is cached on the
// Multi — a warm call is allocation-free — and invalidated by any cell
// mutation; callers must treat the returned histogram as read-only.
func (m *Multi) Marginal(d int) *Histogram {
	if h := m.marg[d].Load(); h != nil {
		return h
	}
	pr := make([]float64, m.NumBuckets(d))
	for i, k := range m.keys {
		pr[k.Dim(d)] += m.probs[i]
	}
	bs := make([]Bucket, 0, len(pr))
	for i, p := range pr {
		if p > 0 {
			lo, hi := m.BucketRange(d, i)
			bs = append(bs, Bucket{Lo: lo, Hi: hi, Pr: p})
		}
	}
	h, err := FromBuckets(bs)
	if err != nil {
		panic(fmt.Sprintf("hist: marginal of dim %d: %v", d, err))
	}
	// Concurrent readers may race to fill the cache; the computation is
	// deterministic, so whichever value lands is the same histogram.
	m.marg[d].Store(h)
	return h
}

// MarginalOnto returns the joint marginal over the given dimensions,
// in the given order. dims must be distinct and in range.
func (m *Multi) MarginalOnto(dims []int) (*Multi, error) {
	bounds := make([][]float64, len(dims))
	for i, d := range dims {
		if d < 0 || d >= m.Dims() {
			return nil, fmt.Errorf("hist: marginal dim %d out of range", d)
		}
		bounds[i] = m.bounds[d]
	}
	out, err := NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	// Sorted order: distinct cells fold onto shared marginal cells, so
	// the accumulation order must be reproducible (see Total). When
	// dims is a leading prefix of the source dims — the evaluator's
	// overlap marginal — projections arrive in non-decreasing order and
	// accumulate onto the tail cell directly, with no searching.
	prefix := true
	for i, d := range dims {
		if d != i {
			prefix = false
			break
		}
	}
	if prefix {
		for i, k := range m.keys {
			nk := k.MaskPrefix(len(dims))
			if n := len(out.keys); n > 0 && out.keys[n-1] == nk {
				out.probs[n-1] += m.probs[i]
			} else {
				out.keys = append(out.keys, nk)
				out.probs = append(out.probs, m.probs[i])
			}
		}
		return out, nil
	}
	for i, k := range m.keys {
		var nk PackedKey
		for j, d := range dims {
			nk = nk.WithDim(j, k.Dim(d))
		}
		out.addKey(nk, m.probs[i])
	}
	return out, nil
}

// MinSum and MaxSum return the support bounds of the sum of all
// dimensions (the tightest interval the flattened cost can occupy).
func (m *Multi) MinSum() float64 {
	min := math.Inf(1)
	for _, k := range m.keys {
		var s float64
		for d := 0; d < m.Dims(); d++ {
			s += m.bounds[d][k.Dim(d)]
		}
		if s < min {
			min = s
		}
	}
	return min
}

// MaxSum returns the maximum possible sum over occupied cells.
func (m *Multi) MaxSum() float64 {
	max := math.Inf(-1)
	for _, k := range m.keys {
		var s float64
		for d := 0; d < m.Dims(); d++ {
			s += m.bounds[d][k.Dim(d)+1]
		}
		if s > max {
			max = s
		}
	}
	return max
}

// SumHistogram flattens the joint into the distribution of the sum of
// its dimensions (Section 4.2): each hyper-bucket contributes the
// interval [Σ lo_d, Σ hi_d) with its probability, and overlapping
// intervals are rearranged into disjoint buckets. maxBuckets ≤ 0
// leaves the result uncompressed.
func (m *Multi) SumHistogram(maxBuckets int) (*Histogram, error) {
	if len(m.keys) == 0 {
		return nil, fmt.Errorf("hist: empty multi-histogram")
	}
	if c := m.sum.Load(); c != nil && c.maxBuckets == maxBuckets {
		return c.h, nil
	}
	// Sorted (storage) order: rearrange accumulates overlapping
	// intervals, so the input sequence must be reproducible (see Total).
	sc := rearrangePool.Get().(*rearrangeScratch)
	defer rearrangePool.Put(sc)
	ivals := sc.wi
	if cap(ivals) < len(m.keys) {
		ivals = make([]weightedInterval, 0, len(m.keys))
	} else {
		ivals = ivals[:0]
	}
	for i, k := range m.keys {
		var lo, hi float64
		for d := 0; d < m.Dims(); d++ {
			b := m.bounds[d][k.Dim(d):]
			lo += b[0]
			hi += b[1]
		}
		ivals = append(ivals, weightedInterval{lo: lo, hi: hi, pr: m.probs[i]})
	}
	sc.wi = ivals
	h, err := rearrange(ivals)
	if err != nil {
		return nil, err
	}
	if maxBuckets > 0 {
		h = h.Compress(maxBuckets)
	}
	// Racing fillers computed the identical histogram; whichever lands
	// is the same answer (see Marginal).
	m.sum.Store(&sumHistCache{maxBuckets: maxBuckets, h: h})
	return h, nil
}

// RefineDim splits dimension d's buckets at the given cut points
// (those inside the dimension's support), distributing each cell's
// mass proportionally to sub-bucket width, per uniform-within-bucket.
// The result represents the same distribution on a finer grid. When
// every cut falls outside the support the receiver itself is returned;
// treat the result as read-only.
func (m *Multi) RefineDim(d int, cuts []float64) (*Multi, error) {
	if d < 0 || d >= m.Dims() {
		return nil, fmt.Errorf("hist: refine dim %d out of range", d)
	}
	old := m.bounds[d]
	merged := make([]float64, 0, len(old)+len(cuts))
	merged = append(merged, old...)
	for _, c := range cuts {
		if c > old[0] && c < old[len(old)-1] {
			merged = append(merged, c)
		}
	}
	sort.Float64s(merged)
	merged = dedupFloats(merged)
	t, err := NewRemapTable(old, merged)
	if err != nil {
		return nil, err
	}
	return m.RemapDimTable(d, t)
}

// RemapDim rebuilds dimension d onto newBounds, a strictly increasing
// boundary set that must contain every existing boundary of d (it may
// extend beyond the current support; the extension cells simply stay
// empty). Unlike RefineDim this aligns histograms with *different*
// supports onto one shared grid, which the Equation 2 evaluators need
// when two factors disagree about an edge's cost range. When newBounds
// equals the current boundary set the receiver itself is returned (the
// evaluator's common case); treat the result as read-only, and do not
// modify newBounds afterwards — the result references it.
func (m *Multi) RemapDim(d int, newBounds []float64) (*Multi, error) {
	if d < 0 || d >= m.Dims() {
		return nil, fmt.Errorf("hist: remap dim %d out of range", d)
	}
	t, err := NewRemapTable(m.bounds[d], newBounds)
	if err != nil {
		return nil, err
	}
	return m.RemapDimTable(d, t)
}

// RemapTable is the precomputed index translation of one RemapDim: for
// every old bucket, the run of new buckets it splits into and the
// width fraction of each, so applying the remap — possibly to several
// histograms sharing the boundary set, as the evaluator's overlap
// alignment does — never re-derives spans or fractions per cell.
type RemapTable struct {
	oldBounds, newBounds []float64
	identity             bool
	first                []int     // first[i]: first new bucket of old bucket i
	off                  []int     // fracs[off[i]:off[i+1]] belong to old bucket i
	fracs                []float64 // width fraction of each new sub-bucket
}

// NewRemapTable validates that newBounds contains every boundary of
// old and precomputes the per-bucket translation spans and fractions.
func NewRemapTable(old, newBounds []float64) (*RemapTable, error) {
	// Every old boundary must appear in newBounds so old cells map to
	// whole runs of new cells.
	for _, b := range old {
		i := sort.SearchFloat64s(newBounds, b)
		if i >= len(newBounds) || newBounds[i] != b {
			return nil, fmt.Errorf("hist: remap boundary %v missing from new grid", b)
		}
	}
	t := &RemapTable{oldBounds: old, newBounds: newBounds}
	if len(old) == len(newBounds) {
		// Containment plus equal length means the sets are identical.
		t.identity = true
		return t, nil
	}
	nb := len(old) - 1
	t.first = make([]int, nb)
	t.off = make([]int, nb+1)
	for i := 0; i < nb; i++ {
		first := sort.SearchFloat64s(newBounds, old[i])
		last := sort.SearchFloat64s(newBounds, old[i+1]) - 1
		t.first[i] = first
		t.off[i+1] = t.off[i] + (last - first + 1)
	}
	t.fracs = make([]float64, t.off[nb])
	for i := 0; i < nb; i++ {
		oldLo, oldHi := old[i], old[i+1]
		for j, ni := t.off[i], t.first[i]; j < t.off[i+1]; j, ni = j+1, ni+1 {
			t.fracs[j] = (newBounds[ni+1] - newBounds[ni]) / (oldHi - oldLo)
		}
	}
	return t, nil
}

// RemapDimTable applies a precomputed remap table to dimension d. The
// identity table returns the receiver unchanged (read-only contract).
//
// The rebuild is a single linear pass that emits cells already in
// sorted order: cells sharing key[0..d] form contiguous sub-runs in
// the sorted input, each sub-run expands to its new-bucket span in
// ascending span order, and distinct sub-runs expand to disjoint,
// ordered key ranges — so no sorting and no per-cell searching happen.
func (m *Multi) RemapDimTable(d int, t *RemapTable) (*Multi, error) {
	if d < 0 || d >= m.Dims() {
		return nil, fmt.Errorf("hist: remap dim %d out of range", d)
	}
	if !floatsEqual(m.bounds[d], t.oldBounds) {
		return nil, fmt.Errorf("hist: remap table built for different boundaries on dim %d", d)
	}
	if t.identity {
		return m, nil
	}
	out := newMultiFromPool(len(m.bounds), len(m.keys)+len(m.keys)/2)
	copy(out.bounds, m.bounds)
	out.bounds[d] = t.newBounds
	n := len(m.keys)
	for i := 0; i < n; {
		// Sub-run [i, j): cells identical through dimension d.
		j := i + 1
		for j < n && m.keys[i].PrefixEq(m.keys[j], d+1) {
			j++
		}
		od := int(m.keys[i].Dim(d))
		base, span := t.off[od], t.off[od+1]-t.off[od]
		for s := 0; s < span; s++ {
			frac := t.fracs[base+s]
			ni := uint16(t.first[od] + s)
			for c := i; c < j; c++ {
				out.keys = append(out.keys, m.keys[c].WithDim(d, ni))
				out.probs = append(out.probs, m.probs[c]*frac)
			}
		}
		i = j
	}
	return out, nil
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) > 0 && &a[0] == &b[0] {
		return true
	}
	for i, x := range a {
		if b[i] != x {
			return false
		}
	}
	return true
}

// UnionBounds merges two boundary sets into one strictly increasing
// set covering both supports. Equal inputs return the first operand
// itself — the evaluator's common case — so the result may alias an
// input; treat it as read-only.
func UnionBounds(a, b []float64) []float64 {
	if floatsEqual(a, b) && len(a) > 0 {
		return a
	}
	merged := make([]float64, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	sort.Float64s(merged)
	return dedupFloats(merged)
}

// FromSamplesConfig controls multi-dimensional histogram construction.
type FromSamplesConfig struct {
	Resolution float64
	Auto       AutoConfig
	// FixedBuckets, when positive, skips the Auto selection and uses
	// exactly this many V-Optimal buckets per dimension (the paper's
	// Sta-b baseline).
	FixedBuckets int
}

// DefaultFromSamplesConfig uses one-second resolution and the default
// Auto settings.
func DefaultFromSamplesConfig() FromSamplesConfig {
	return FromSamplesConfig{Resolution: DefaultResolution, Auto: DefaultAutoConfig()}
}

// NewMultiFromSamples builds a multi-dimensional histogram from joint
// cost observations, one row per trajectory and one column per edge
// (Section 3.2): the bucket count of each dimension is chosen by the
// Auto method on that dimension's marginal samples, V-Optimal places
// the boundaries, and hyper-bucket probabilities are filled from the
// joint observations.
func NewMultiFromSamples(rows [][]float64, cfg FromSamplesConfig) (*Multi, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("hist: no joint samples")
	}
	d := len(rows[0])
	if d == 0 || d > MaxDims {
		return nil, fmt.Errorf("hist: %d dimensions out of range [1,%d]", d, MaxDims)
	}
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("hist: row %d has %d values, want %d", i, len(r), d)
		}
	}
	bounds := make([][]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(rows))
		for i, r := range rows {
			col[i] = r[j]
		}
		b := cfg.FixedBuckets
		if b <= 0 {
			res, err := AutoBucketCount(col, cfg.Resolution, cfg.Auto)
			if err != nil {
				return nil, fmt.Errorf("hist: dim %d: %w", j, err)
			}
			b = res.Chosen
		}
		raw, err := NewRaw(col, cfg.Resolution)
		if err != nil {
			return nil, fmt.Errorf("hist: dim %d: %w", j, err)
		}
		h, err := VOptimal(raw, b)
		if err != nil {
			return nil, fmt.Errorf("hist: dim %d: %w", j, err)
		}
		bd := make([]float64, 0, h.NumBuckets()+1)
		for _, b := range h.Buckets() {
			bd = append(bd, b.Lo)
		}
		bd = append(bd, h.Max())
		bounds[j] = bd
	}
	m, err := NewMulti(bounds)
	if err != nil {
		return nil, err
	}
	snapped := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			snapped[j] = math.Round(v/cfg.Resolution) * cfg.Resolution
		}
		if !m.Add(snapped, 1) {
			// A snapped value can only leave the grid through floating
			// point rounding at the extremes; clamp it in.
			for j := range snapped {
				bd := bounds[j]
				if snapped[j] < bd[0] {
					snapped[j] = bd[0]
				}
				if snapped[j] >= bd[len(bd)-1] {
					snapped[j] = bd[len(bd)-1] - 1e-9
				}
			}
			m.Add(snapped, 1)
		}
	}
	if err := m.Normalize(); err != nil {
		return nil, err
	}
	return m, nil
}
