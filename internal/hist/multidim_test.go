package hist

import (
	"math"
	"math/rand"
	"testing"
)

func mustMulti(t testing.TB, bounds [][]float64) *Multi {
	t.Helper()
	m, err := NewMulti(bounds)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(nil); err == nil {
		t.Error("no dims should error")
	}
	if _, err := NewMulti([][]float64{{1}}); err == nil {
		t.Error("single boundary should error")
	}
	if _, err := NewMulti([][]float64{{2, 1}}); err == nil {
		t.Error("decreasing boundaries should error")
	}
	if _, err := NewMulti([][]float64{{1, 1}}); err == nil {
		t.Error("equal boundaries should error")
	}
	tooMany := make([][]float64, MaxDims+1)
	for i := range tooMany {
		tooMany[i] = []float64{0, 1}
	}
	if _, err := NewMulti(tooMany); err == nil {
		t.Error("too many dims should error")
	}
}

func TestMultiAddLocateNormalize(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 10, 20}, {0, 5}})
	if ok := m.Add([]float64{5, 2}, 1); !ok {
		t.Fatal("in-range add failed")
	}
	if ok := m.Add([]float64{15, 2}, 3); !ok {
		t.Fatal("in-range add failed")
	}
	if ok := m.Add([]float64{25, 2}, 1); ok {
		t.Fatal("out-of-range add succeeded")
	}
	if ok := m.Add([]float64{5, -1}, 1); ok {
		t.Fatal("below-range add succeeded")
	}
	// Top boundary value belongs to the last bucket.
	if ok := m.Add([]float64{20, 5}, 1); !ok {
		t.Fatal("top-boundary add failed")
	}
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Total(), 1, 1e-12) {
		t.Fatalf("total = %v", m.Total())
	}
	// cell(1,0) holds the weight-3 add at (15,2) plus the top-boundary
	// add at (20,5), which snaps into the last bucket on both dims.
	if got := m.Cell([]int{1, 0}); !almostEq(got, 4.0/5, 1e-12) {
		t.Fatalf("cell(1,0) = %v, want 0.8", got)
	}
}

func TestMultiNormalizeEmpty(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1}})
	if err := m.Normalize(); err == nil {
		t.Fatal("normalizing empty histogram should error")
	}
}

func TestMultiSetCellPanicsOutOfRange(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetCell([]int{5}, 0.5)
}

func TestMultiMarginal(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 10, 20}, {0, 5, 15}})
	m.SetCell([]int{0, 0}, 0.1)
	m.SetCell([]int{0, 1}, 0.2)
	m.SetCell([]int{1, 0}, 0.3)
	m.SetCell([]int{1, 1}, 0.4)
	h0 := m.Marginal(0)
	if !almostEq(h0.MassOn(0, 10), 0.3, 1e-12) || !almostEq(h0.MassOn(10, 20), 0.7, 1e-12) {
		t.Fatalf("marginal 0 = %v", h0)
	}
	h1 := m.Marginal(1)
	if !almostEq(h1.MassOn(0, 5), 0.4, 1e-12) || !almostEq(h1.MassOn(5, 15), 0.6, 1e-12) {
		t.Fatalf("marginal 1 = %v", h1)
	}
}

func TestMultiMarginalOnto(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1, 2}, {0, 1}, {0, 1, 2, 3}})
	m.SetCell([]int{0, 0, 1}, 0.5)
	m.SetCell([]int{1, 0, 2}, 0.5)
	// Marginal over dims (2, 0) in that order.
	mm, err := m.MarginalOnto([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Dims() != 2 {
		t.Fatalf("dims = %d", mm.Dims())
	}
	if got := mm.Cell([]int{1, 0}); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("cell = %v", got)
	}
	if got := mm.Cell([]int{2, 1}); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("cell = %v", got)
	}
	if _, err := m.MarginalOnto([]int{7}); err == nil {
		t.Fatal("bad dim should error")
	}
}

func TestMultiMinMaxSum(t *testing.T) {
	m := mustMulti(t, [][]float64{{10, 20, 30}, {5, 15}})
	m.SetCell([]int{0, 0}, 0.5)
	m.SetCell([]int{1, 0}, 0.5)
	if got := m.MinSum(); got != 15 {
		t.Fatalf("MinSum = %v, want 15", got)
	}
	if got := m.MaxSum(); got != 45 {
		t.Fatalf("MaxSum = %v, want 45", got)
	}
}

func TestMultiRefineDim(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 10}, {0, 4}})
	m.SetCell([]int{0, 0}, 1)
	r, err := m.RefineDim(0, []float64{2.5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumBuckets(0) != 3 {
		t.Fatalf("refined buckets = %d, want 3", r.NumBuckets(0))
	}
	if got := r.Cell([]int{0, 0}); !almostEq(got, 0.25, 1e-12) {
		t.Fatalf("cell [0,2.5) = %v, want 0.25", got)
	}
	if got := r.Cell([]int{1, 0}); !almostEq(got, 0.25, 1e-12) {
		t.Fatalf("cell [2.5,5) = %v, want 0.25", got)
	}
	if got := r.Cell([]int{2, 0}); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("cell [5,10) = %v, want 0.5", got)
	}
	// Marginals must be preserved by refinement.
	if !almostEq(r.Marginal(1).Mean(), m.Marginal(1).Mean(), 1e-12) {
		t.Fatal("refinement changed the other dimension")
	}
	// Cuts outside support are ignored.
	r2, err := m.RefineDim(0, []float64{-5, 100})
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumBuckets(0) != 1 {
		t.Fatalf("out-of-range cuts changed grid: %d", r2.NumBuckets(0))
	}
	if _, err := m.RefineDim(9, nil); err == nil {
		t.Fatal("bad dim should error")
	}
}

func TestMultiRefinePreservesSumHistogram(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	m := mustMulti(t, [][]float64{{0, 5, 12, 20}, {0, 8, 16}})
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			m.SetCell([]int{i, j}, rnd.Float64()+0.05)
		}
	}
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	before, err := m.SumHistogram(0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RefineDim(0, []float64{3, 9, 15})
	if err != nil {
		t.Fatal(err)
	}
	after, err := r.SumHistogram(0)
	if err != nil {
		t.Fatal(err)
	}
	// Means agree exactly; the full distributions agree only up to the
	// uniform-within-bucket approximation, so compare CDFs loosely.
	if !almostEq(before.Mean(), after.Mean(), 1e-9) {
		t.Fatalf("refinement changed mean: %v vs %v", before.Mean(), after.Mean())
	}
	for _, x := range []float64{5, 10, 15, 20, 25, 30} {
		if math.Abs(before.CDF(x)-after.CDF(x)) > 0.15 {
			t.Fatalf("CDF(%v) moved too much: %v vs %v", x, before.CDF(x), after.CDF(x))
		}
	}
}

func TestNewMultiFromSamplesValidation(t *testing.T) {
	if _, err := NewMultiFromSamples(nil, DefaultFromSamplesConfig()); err == nil {
		t.Error("no rows should error")
	}
	if _, err := NewMultiFromSamples([][]float64{{}}, DefaultFromSamplesConfig()); err == nil {
		t.Error("zero-dim rows should error")
	}
	if _, err := NewMultiFromSamples([][]float64{{1, 2}, {1}}, DefaultFromSamplesConfig()); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestNewMultiFromSamplesBasic(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	rows := make([][]float64, 500)
	for i := range rows {
		// Correlated pair: second dim follows first.
		a := math.Round(50 + rnd.NormFloat64()*5)
		b := math.Round(a + 20 + rnd.NormFloat64()*3)
		rows[i] = []float64{a, b}
	}
	m, err := NewMultiFromSamples(rows, DefaultFromSamplesConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims() != 2 {
		t.Fatalf("dims = %d", m.Dims())
	}
	if !almostEq(m.Total(), 1, 1e-9) {
		t.Fatalf("total = %v", m.Total())
	}
	// Marginal means should be near the generating means.
	if got := m.Marginal(0).Mean(); math.Abs(got-50) > 3 {
		t.Fatalf("marginal-0 mean %v, want ≈50", got)
	}
	if got := m.Marginal(1).Mean(); math.Abs(got-70) > 3 {
		t.Fatalf("marginal-1 mean %v, want ≈70", got)
	}
	// The sum distribution should center near 120.
	sum, err := m.SumHistogram(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean()-120) > 4 {
		t.Fatalf("sum mean %v, want ≈120", sum.Mean())
	}
}

func TestMultiCapturesDependenceThatConvolutionMisses(t *testing.T) {
	// Anti-correlated regimes: when edge A is congested edge B is free
	// and vice versa, so X+Y is nearly constant while the marginals are
	// bimodal. The joint histogram's sum distribution must be much
	// tighter than the convolution of the marginals.
	rnd := rand.New(rand.NewSource(99))
	rows := make([][]float64, 800)
	for i := range rows {
		var a, b float64
		if i%2 == 0 {
			a = math.Round(40 + rnd.NormFloat64()*2)
			b = math.Round(120 + rnd.NormFloat64()*2)
		} else {
			a = math.Round(100 + rnd.NormFloat64()*2)
			b = math.Round(50 + rnd.NormFloat64()*2)
		}
		rows[i] = []float64{a, b}
	}
	m, err := NewMultiFromSamples(rows, DefaultFromSamplesConfig())
	if err != nil {
		t.Fatal(err)
	}
	joint, err := m.SumHistogram(0)
	if err != nil {
		t.Fatal(err)
	}
	conv := Convolve(m.Marginal(0), m.Marginal(1))
	if joint.Variance() >= conv.Variance()*0.5 {
		t.Fatalf("joint variance %v not much tighter than convolution %v",
			joint.Variance(), conv.Variance())
	}
	if math.Abs(joint.Mean()-conv.Mean()) > 2 {
		t.Fatalf("means should agree: %v vs %v", joint.Mean(), conv.Mean())
	}
}

func TestMultiStorageFloats(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1, 2}, {0, 1}})
	m.SetCell([]int{0, 0}, 1)
	// Boundaries plus, per occupied cell, the columnar key (MaxDims
	// uint16s = 3 float-equivalents) and one probability.
	want := (3 + 2) + (3+1)*1
	if got := m.StorageFloats(); got != want {
		t.Fatalf("StorageFloats = %d, want %d", got, want)
	}
}

func TestMultiCloneIndependent(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1}})
	m.SetCell([]int{0}, 1)
	c := m.Clone()
	c.SetCell([]int{0}, 0.5)
	if m.Cell([]int{0}) != 1 {
		t.Fatal("clone mutated original")
	}
}

func TestMultiForEach(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1, 2}})
	m.SetCell([]int{0}, 0.25)
	m.SetCell([]int{1}, 0.75)
	var total float64
	count := 0
	m.ForEach(func(k CellKey, pr float64) {
		total += pr
		count++
	})
	if count != 2 || !almostEq(total, 1, 1e-12) {
		t.Fatalf("ForEach visited %d cells totalling %v", count, total)
	}
	// SetCell to zero removes the cell.
	m.SetCell([]int{0}, 0)
	if m.NumCells() != 1 {
		t.Fatalf("cells = %d after zeroing", m.NumCells())
	}
}

func TestSumHistogramCompression(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1, 2, 3, 4, 5, 6, 7, 8}, {0, 3, 6, 9, 12}})
	rnd := rand.New(rand.NewSource(4))
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			m.SetCell([]int{i, j}, rnd.Float64()+0.01)
		}
	}
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	full, err := m.SumHistogram(0)
	if err != nil {
		t.Fatal(err)
	}
	small, err := m.SumHistogram(6)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumBuckets() > 6 {
		t.Fatalf("compressed buckets = %d", small.NumBuckets())
	}
	// Compression preserves mass exactly and the mean approximately
	// (merging unequal-density buckets shifts centroids slightly).
	if !almostEq(small.CDF(math.Inf(1)), 1, 1e-9) {
		t.Fatal("compression lost mass")
	}
	if math.Abs(full.Mean()-small.Mean()) > 0.05*full.Mean() {
		t.Fatalf("compression moved mean too far: %v vs %v", full.Mean(), small.Mean())
	}
}

func TestSumHistogramEmpty(t *testing.T) {
	m := mustMulti(t, [][]float64{{0, 1}})
	if _, err := m.SumHistogram(0); err == nil {
		t.Fatal("empty multi should error")
	}
}

func TestRemapDim(t *testing.T) {
	m := mustMulti(t, [][]float64{{10, 20, 30}})
	m.SetCell([]int{0}, 0.4)
	m.SetCell([]int{1}, 0.6)
	// Extend support on both sides and split the first bucket.
	union := UnionBounds([]float64{10, 20, 30}, []float64{0, 15, 40})
	r, err := m.RemapDim(0, union)
	if err != nil {
		t.Fatal(err)
	}
	// New grid: 0,10,15,20,30,40 → cells [0,10)=0, [10,15)=0.2,
	// [15,20)=0.2, [20,30)=0.6, [30,40)=0.
	if got := r.Cell([]int{0}); got != 0 {
		t.Fatalf("[0,10) = %v", got)
	}
	if got := r.Cell([]int{1}); !almostEq(got, 0.2, 1e-12) {
		t.Fatalf("[10,15) = %v", got)
	}
	if got := r.Cell([]int{3}); !almostEq(got, 0.6, 1e-12) {
		t.Fatalf("[20,30) = %v", got)
	}
	if !almostEq(r.Total(), 1, 1e-12) {
		t.Fatal("remap lost mass")
	}
	if !almostEq(r.Marginal(0).Mean(), m.Marginal(0).Mean(), 1e-9) {
		t.Fatal("remap moved the mean")
	}
	// Missing old boundary must be rejected.
	if _, err := m.RemapDim(0, []float64{0, 12, 40}); err == nil {
		t.Fatal("grid missing old boundaries accepted")
	}
	if _, err := m.RemapDim(5, union); err == nil {
		t.Fatal("bad dim accepted")
	}
}

func TestUnionBounds(t *testing.T) {
	got := UnionBounds([]float64{1, 3, 5}, []float64{0, 3, 7})
	want := []float64{0, 1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("UnionBounds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UnionBounds = %v, want %v", got, want)
		}
	}
	if got := UnionBounds(nil, []float64{1, 2}); len(got) != 2 {
		t.Fatalf("UnionBounds(nil, x) = %v", got)
	}
}
