package hist

import (
	"math/rand"
	"testing"
)

// Differential tests for the packed cell-key representation: every
// PackedKey operation must agree with the corresponding operation on
// the unpacked CellKey form, which stays in the codebase as the
// ordering oracle.

// randomCellKey draws a key biased toward the shapes the evaluator
// produces: a leading run of populated dimensions with zero trailing
// dims, index values clustered near bucket-count boundaries (small
// grids are the common case) but also spanning the full uint16 range.
func randomCellKey(rnd *rand.Rand) CellKey {
	var k CellKey
	ndims := rnd.Intn(MaxDims + 1)
	for d := 0; d < ndims; d++ {
		switch rnd.Intn(5) {
		case 0:
			k[d] = 0
		case 1:
			k[d] = uint16(rnd.Intn(4)) // small bucket counts dominate in practice
		case 2:
			k[d] = uint16(rnd.Intn(64)) // MaxResultBuckets-scale grids
		case 3:
			k[d] = uint16(1)<<uint(rnd.Intn(16)) - 1 // word/nibble boundary patterns
		default:
			k[d] = uint16(rnd.Intn(1 << 16))
		}
	}
	return k
}

// mutateKey returns a near-neighbor of k: one dimension nudged by ±1
// or replaced, so ordering is exercised at single-index boundaries —
// including across the packing's word boundaries (dims 3↔4, 7↔8).
func mutateKey(rnd *rand.Rand, k CellKey) CellKey {
	d := rnd.Intn(MaxDims)
	switch rnd.Intn(3) {
	case 0:
		k[d]++
	case 1:
		k[d]--
	default:
		k[d] = uint16(rnd.Intn(1 << 16))
	}
	return k
}

// INVARIANT: PackKey(a).Less(PackKey(b)) == cellKeyLess(a, b) for all
// keys — the packed store sorts exactly as the unpacked oracle does.
func TestPackedKeyOrderMatchesCellKeyLess(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	check := func(a, b CellKey) {
		t.Helper()
		pa, pb := PackKey(a), PackKey(b)
		if got, want := pa.Less(pb), cellKeyLess(a, b); got != want {
			t.Fatalf("Less(%v, %v) = %v, oracle %v", a, b, got, want)
		}
		if got, want := pb.Less(pa), cellKeyLess(b, a); got != want {
			t.Fatalf("Less(%v, %v) = %v, oracle %v", b, a, got, want)
		}
		if got, want := pa == pb, a == b; got != want {
			t.Fatalf("equality of %v, %v: packed %v, oracle %v", a, b, got, want)
		}
		cmp := pa.Compare(pb)
		switch {
		case cellKeyLess(a, b) && cmp != -1:
			t.Fatalf("Compare(%v, %v) = %d, want -1", a, b, cmp)
		case cellKeyLess(b, a) && cmp != 1:
			t.Fatalf("Compare(%v, %v) = %d, want 1", a, b, cmp)
		case a == b && cmp != 0:
			t.Fatalf("Compare(%v, %v) = %d, want 0", a, b, cmp)
		}
	}
	for trial := 0; trial < 20000; trial++ {
		a := randomCellKey(rnd)
		check(a, randomCellKey(rnd)) // independent pair
		check(a, mutateKey(rnd, a))  // near-neighbor pair
		check(a, a)                  // self
	}
}

// Packing round-trips losslessly and Dim reads each dimension.
func TestPackedKeyRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		k := randomCellKey(rnd)
		p := PackKey(k)
		if p.Unpack() != k {
			t.Fatalf("Unpack(PackKey(%v)) = %v", k, p.Unpack())
		}
		for d := 0; d < MaxDims; d++ {
			if p.Dim(d) != k[d] {
				t.Fatalf("Dim(%d) of %v = %d, want %d", d, k, p.Dim(d), k[d])
			}
		}
	}
}

// WithDim writes exactly one dimension; WithDim0From transplants
// exactly dimension 0.
func TestPackedKeyWithDim(t *testing.T) {
	rnd := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5000; trial++ {
		k := randomCellKey(rnd)
		d := rnd.Intn(MaxDims)
		v := uint16(rnd.Intn(1 << 16))
		want := k
		want[d] = v
		if got := PackKey(k).WithDim(d, v); got != PackKey(want) {
			t.Fatalf("WithDim(%d, %d) of %v = %v, want %v", d, v, k, got.Unpack(), want)
		}
		q := randomCellKey(rnd)
		want = k
		want[0] = q[0]
		if got := PackKey(k).WithDim0From(PackKey(q)); got != PackKey(want) {
			t.Fatalf("WithDim0From: got %v, want %v", got.Unpack(), want)
		}
	}
}

// Prefix operations agree with truncated-key comparisons on the oracle
// form, for every prefix length including word-aligned ones.
func TestPackedKeyPrefixOps(t *testing.T) {
	rnd := rand.New(rand.NewSource(44))
	truncate := func(k CellKey, n int) CellKey {
		for d := n; d < MaxDims; d++ {
			k[d] = 0
		}
		return k
	}
	for trial := 0; trial < 5000; trial++ {
		a := randomCellKey(rnd)
		b := randomCellKey(rnd)
		if rnd.Intn(2) == 0 {
			b = mutateKey(rnd, a) // near-neighbors stress partial-word masks
		}
		pa, pb := PackKey(a), PackKey(b)
		for n := 0; n <= MaxDims; n++ {
			ta, tb := truncate(a, n), truncate(b, n)
			if got, want := pa.PrefixEq(pb, n), ta == tb; got != want {
				t.Fatalf("PrefixEq(%v, %v, %d) = %v, oracle %v", a, b, n, got, want)
			}
			if got, want := pa.PrefixLess(pb, n), cellKeyLess(ta, tb); got != want {
				t.Fatalf("PrefixLess(%v, %v, %d) = %v, oracle %v", a, b, n, got, want)
			}
			if got, want := pa.MaskPrefix(n), PackKey(ta); got != want {
				t.Fatalf("MaskPrefix(%v, %d) = %v, want %v", a, n, got.Unpack(), ta)
			}
		}
	}
}

// Shift operations implement prepend/drop of the accumulator axis and
// preserve relative order.
func TestPackedKeyShifts(t *testing.T) {
	rnd := rand.New(rand.NewSource(45))
	for trial := 0; trial < 5000; trial++ {
		k := randomCellKey(rnd)
		k[MaxDims-1] = 0 // ShiftDimRight's documented precondition
		var right CellKey
		copy(right[1:], k[:MaxDims-1])
		if got := PackKey(k).ShiftDimRight(); got != PackKey(right) {
			t.Fatalf("ShiftDimRight(%v) = %v, want %v", k, got.Unpack(), right)
		}

		j := randomCellKey(rnd)
		var left CellKey
		copy(left[:MaxDims-1], j[1:])
		if got := PackKey(j).ShiftDimLeft(); got != PackKey(left) {
			t.Fatalf("ShiftDimLeft(%v) = %v, want %v", j, got.Unpack(), left)
		}

		// Order preservation of the prepend map.
		a, b := randomCellKey(rnd), randomCellKey(rnd)
		a[MaxDims-1], b[MaxDims-1] = 0, 0
		pa, pb := PackKey(a), PackKey(b)
		if pa.Less(pb) != pa.ShiftDimRight().Less(pb.ShiftDimRight()) {
			t.Fatalf("ShiftDimRight broke the order of %v, %v", a, b)
		}
	}
}
