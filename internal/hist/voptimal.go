package hist

import (
	"fmt"
	"math"
)

// VOptimal builds the error-optimal b-bucket histogram over the raw
// distribution using the dynamic program of Jagadish et al. [12]:
// buckets partition the sorted distinct values, and the error of a
// bucket is the sum over the *value lattice* it spans (at the raw
// distribution's resolution) of squared deviations between the bucket's
// uniform per-lattice-point estimate and the raw probability. Counting
// empty lattice points penalizes buckets that span gaps between modes,
// which is what makes V-Optimal separate a multi-modal travel-time
// distribution. O(b·n²) time with O(1) per-cell error via prefix sums.
//
// The resulting buckets span [first value, last value + resolution) of
// each run so that every observed value lies inside a bucket.
func VOptimal(d *Raw, b int) (*Histogram, error) {
	n := len(d.Entries)
	if n == 0 {
		return nil, fmt.Errorf("hist: empty raw distribution")
	}
	if b < 1 {
		return nil, fmt.Errorf("hist: bucket count %d < 1", b)
	}
	if b > n {
		b = n
	}

	// Prefix sums of probability and squared probability.
	pre := make([]float64, n+1)
	pre2 := make([]float64, n+1)
	for i, e := range d.Entries {
		pre[i+1] = pre[i] + e.Perc
		pre2[i+1] = pre2[i] + e.Perc*e.Perc
	}
	// sse(i, j) is the lattice error of a bucket covering values i..j
	// inclusive: with m lattice points in the span and mass S, the
	// uniform estimate is S/m at each point, so the error is
	// Σ p_c² − S²/m (absent lattice points contribute (S/m)² each).
	totalSpan := math.Round((d.Entries[n-1].Value-d.Entries[0].Value)/d.Resolution) + 1
	sse := func(i, j int) float64 {
		m := math.Round((d.Entries[j].Value-d.Entries[i].Value)/d.Resolution) + 1
		s := pre[j+1] - pre[i]
		s2 := pre2[j+1] - pre2[i]
		v := s2 - s*s/m
		if v < 0 {
			v = 0 // numeric guard
		}
		// Tie-breaker: among equal-error partitions (e.g. perfectly
		// uniform data, where every partition has zero error) prefer
		// balanced bucket widths. The penalty is far below any real
		// error difference, so optimality is unaffected.
		return v + 1e-12*(m/totalSpan)*(m/totalSpan)
	}

	// dp[k][j] = min error of covering values 0..j-1 with k buckets.
	dp := make([][]float64, b+1)
	cut := make([][]int, b+1)
	for k := range dp {
		dp[k] = make([]float64, n+1)
		cut[k] = make([]int, n+1)
		for j := range dp[k] {
			dp[k][j] = math.Inf(1)
		}
	}
	dp[0][0] = 0
	for k := 1; k <= b; k++ {
		for j := k; j <= n; j++ {
			// Last bucket covers values i..j-1.
			for i := k - 1; i < j; i++ {
				if dp[k-1][i] == math.Inf(1) {
					continue
				}
				c := dp[k-1][i] + sse(i, j-1)
				if c < dp[k][j] {
					dp[k][j] = c
					cut[k][j] = i
				}
			}
		}
	}

	// Recover bucket boundaries.
	bounds := make([]int, 0, b+1)
	j := n
	for k := b; k >= 1; k-- {
		bounds = append(bounds, j)
		j = cut[k][j]
	}
	bounds = append(bounds, 0)
	// bounds is reversed: [0, c1, ..., n].
	for l, r := 0, len(bounds)-1; l < r; l, r = l+1, r-1 {
		bounds[l], bounds[r] = bounds[r], bounds[l]
	}

	bs := make([]Bucket, 0, b)
	for k := 0; k+1 < len(bounds); k++ {
		i, jj := bounds[k], bounds[k+1]-1
		lo := d.Entries[i].Value
		hi := d.Entries[jj].Value + d.Resolution
		pr := pre[jj+1] - pre[i]
		bs = append(bs, Bucket{Lo: lo, Hi: hi, Pr: pr})
	}
	return FromBuckets(bs)
}

// VOptimalError returns the DP objective (within-bucket SSE of the
// per-value probabilities) achieved by the optimal b-bucket histogram.
// Exposed for diagnostics and the Fig. 5(a) error-vs-b curve.
func VOptimalError(d *Raw, b int) (float64, error) {
	h, err := VOptimal(d, b)
	if err != nil {
		return 0, err
	}
	// Recompute the objective from the histogram's bucket layout.
	var total float64
	i := 0
	for _, bk := range h.buckets {
		var sum, sum2 float64
		first := i
		for i < len(d.Entries) && d.Entries[i].Value < bk.Hi {
			p := d.Entries[i].Perc
			sum += p
			sum2 += p * p
			i++
		}
		if i > first {
			m := math.Round((d.Entries[i-1].Value-d.Entries[first].Value)/d.Resolution) + 1
			total += sum2 - sum*sum/m
		}
	}
	return total, nil
}
