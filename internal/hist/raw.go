package hist

import (
	"fmt"
	"math"
	"sort"
)

// DefaultResolution is the granularity at which raw cost values are
// snapped before histogram construction. Travel times are treated at
// one-second resolution, matching the integer-second costs in the
// paper's figures.
const DefaultResolution = 1.0

// ValueFreq is one entry of a raw cost distribution: perc percent of
// the qualified trajectories took cost Value (Section 3.1's
// ⟨cost, perc⟩ pairs).
type ValueFreq struct {
	Value float64
	Perc  float64
}

// Raw is a raw cost distribution: a normalized multiset of cost
// values. Values are strictly increasing and Perc sums to 1.
type Raw struct {
	Entries    []ValueFreq
	Resolution float64 // lattice step between representable values
}

// NewRaw builds a raw distribution from cost samples, snapping each
// sample to the given resolution (use DefaultResolution for seconds).
// It returns an error on an empty sample set or non-positive
// resolution, since a distribution cannot be formed.
func NewRaw(samples []float64, resolution float64) (*Raw, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("hist: no samples")
	}
	if resolution <= 0 {
		return nil, fmt.Errorf("hist: resolution must be positive, got %v", resolution)
	}
	counts := make(map[float64]int, len(samples))
	for _, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("hist: invalid sample %v", s)
		}
		v := math.Round(s/resolution) * resolution
		counts[v]++
	}
	r := &Raw{Resolution: resolution, Entries: make([]ValueFreq, 0, len(counts))}
	n := float64(len(samples))
	for v, c := range counts {
		r.Entries = append(r.Entries, ValueFreq{Value: v, Perc: float64(c) / n})
	}
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Value < r.Entries[j].Value })
	return r, nil
}

// NumDistinct returns the number of distinct cost values.
func (r *Raw) NumDistinct() int { return len(r.Entries) }

// Min returns the smallest cost value.
func (r *Raw) Min() float64 { return r.Entries[0].Value }

// Max returns the largest cost value.
func (r *Raw) Max() float64 { return r.Entries[len(r.Entries)-1].Value }

// Mean returns the expected cost.
func (r *Raw) Mean() float64 {
	var m float64
	for _, e := range r.Entries {
		m += e.Value * e.Perc
	}
	return m
}

// Prob returns the probability mass at value v (0 when absent).
func (r *Raw) Prob(v float64) float64 {
	i := sort.Search(len(r.Entries), func(i int) bool { return r.Entries[i].Value >= v })
	if i < len(r.Entries) && r.Entries[i].Value == v {
		return r.Entries[i].Perc
	}
	return 0
}

// Values returns the distinct values in increasing order.
func (r *Raw) Values() []float64 {
	vs := make([]float64, len(r.Entries))
	for i, e := range r.Entries {
		vs[i] = e.Value
	}
	return vs
}

// StorageEntries returns the number of (cost, frequency) pairs the raw
// form needs; the paper's Figure 11(c) space-saving ratio compares
// this against the histogram's bucket count.
func (r *Raw) StorageEntries() int { return len(r.Entries) }
