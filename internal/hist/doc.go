// Package hist implements the distribution machinery of Dai et al.
// (PVLDB 2016): the histogram representations that serve as the
// hybrid graph's weights and the factor operations that combine them.
//
// Paper-section map:
//
//   - Section 3.1: one-dimensional V-Optimal histograms (voptimal.go)
//     with automatic bucket-count selection by f-fold cross validation
//     (auto.go, AutoHistogram); StaticHistogram is the Sta-b baseline
//     of Figure 5.
//   - Section 3.2: multi-dimensional histograms over hyper-buckets
//     (multidim.go, Multi), stored sparsely as an occupied-cell map,
//     including the factor operations — remapping onto union grids,
//     marginalization, sum distributions — needed to evaluate the
//     decomposable-model estimate of Equation 2.
//   - Section 4.2: the bucket-rearrangement marginalization
//     (Rearranged) and compression used when folding accumulated-cost
//     dimensions.
//
// Histograms use uniform-within-bucket semantics throughout, exactly
// as the paper's Figure 7 worked example assumes. Multi.ForEach
// iterates in map order; consumers that need reproducible output
// (e.g. model serialization) use Multi.ForEachSorted.
package hist
