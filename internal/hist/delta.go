package hist

import (
	"fmt"
	"math"
	"sort"
)

// Delta accumulates new probability mass (typically raw sample counts)
// addressed by multi-dimensional cell keys, to be merged into an
// existing Multi with MergeDelta. It is the write-side companion of
// the columnar sorted-cell layout: Add is cheap and order-tolerant,
// and sealing sorts the accumulated cells once so the merge itself is
// a linear merge-join over two sorted arrays.
//
// Determinism: for a fixed sequence of Add calls the sealed cell
// array — and therefore every byte of the merged histogram — is
// identical across runs. Mass added under duplicate keys is summed in
// insertion order (the sort is stable), so callers that need
// bit-exact reproducibility must feed samples in a deterministic
// order, which the trajectory pipeline does.
type Delta struct {
	keys  []PackedKey
	mass  []float64
	dirty bool // keys are not known to be sorted+deduplicated
}

// NewDelta returns an empty accumulator.
func NewDelta() *Delta {
	return &Delta{}
}

// Add accumulates w units of mass in the cell addressed by key.
// Consecutive Adds to the same key collapse immediately; otherwise
// out-of-order keys are tolerated and resolved at seal time.
func (d *Delta) Add(key CellKey, w float64) {
	pk := PackKey(key)
	if n := len(d.keys); n > 0 {
		if d.keys[n-1] == pk {
			d.mass[n-1] += w
			return
		}
		if !d.keys[n-1].Less(pk) {
			d.dirty = true
		}
	}
	d.keys = append(d.keys, pk)
	d.mass = append(d.mass, w)
}

// Len reports the number of distinct cells accumulated so far (an
// upper bound until the delta is sealed; exact afterwards).
func (d *Delta) Len() int { return len(d.keys) }

// seal sorts the accumulated cells by key and folds duplicates,
// summing duplicate mass in insertion order. Idempotent.
func (d *Delta) seal() {
	if !d.dirty {
		return
	}
	idx := make([]int, len(d.keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return d.keys[idx[a]].Less(d.keys[idx[b]])
	})
	keys := make([]PackedKey, 0, len(d.keys))
	mass := make([]float64, 0, len(d.mass))
	for _, i := range idx {
		if n := len(keys); n > 0 && keys[n-1] == d.keys[i] {
			mass[n-1] += d.mass[i]
			continue
		}
		keys = append(keys, d.keys[i])
		mass = append(mass, d.mass[i])
	}
	d.keys, d.mass, d.dirty = keys, mass, false
}

// ForEachSealed seals the delta and visits its cells in ascending key
// order. Exposed for tests and oracles.
func (d *Delta) ForEachSealed(fn func(key CellKey, w float64)) {
	d.seal()
	for i := range d.keys {
		fn(d.keys[i].Unpack(), d.mass[i])
	}
}

// BinClamped maps a point to the receiver's cell key, clamping each
// coordinate that falls outside the bucket range to the nearest
// boundary bucket. This is how streaming samples are binned onto a
// frozen grid: the grid never moves between epochs, so outliers land
// in the extreme buckets instead of forcing a rebucketing.
func (m *Multi) BinClamped(point []float64) (CellKey, error) {
	if len(point) != len(m.bounds) {
		return CellKey{}, fmt.Errorf("hist: point has %d dims, histogram has %d", len(point), len(m.bounds))
	}
	var key CellKey
	for d := range m.bounds {
		i := m.locate(d, point[d])
		if i < 0 {
			if point[d] < m.bounds[d][0] {
				i = 0
			} else {
				i = len(m.bounds[d]) - 2
			}
		}
		key[d] = uint16(i)
	}
	return key, nil
}

// MergeDelta returns a new Multi on the receiver's (frozen) bounds
// whose cell mass is scale×(existing mass) plus the delta's mass — a
// single linear merge-join over the two sorted cell arrays, the same
// machinery the convolution kernel uses. scale < 1 implements
// exponential time-decay of stale mass; scale is typically
// decayFactor×oldSupport so that existing probabilities re-enter the
// count domain before new sample counts are added.
//
// The result is NOT normalized (callers usually batch several merges
// before renormalizing) and is allocated from the shared cell pool;
// the caller owns it. The receiver is unchanged; the delta is sealed
// in place (idempotent). Delta keys must address cells inside the
// receiver's grid.
func (m *Multi) MergeDelta(d *Delta, scale float64) (*Multi, error) {
	if scale < 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("hist: invalid merge scale %v", scale)
	}
	d.seal()
	ndims := len(m.bounds)
	for i, k := range d.keys {
		for dd := 0; dd < ndims; dd++ {
			if int(k.Dim(dd)) >= len(m.bounds[dd])-1 {
				return nil, fmt.Errorf("hist: delta cell %d key dim %d = %d outside grid (%d buckets)",
					i, dd, k.Dim(dd), len(m.bounds[dd])-1)
			}
		}
		if k.MaskPrefix(ndims) != k {
			return nil, fmt.Errorf("hist: delta cell %d has nonzero key beyond dim %d", i, ndims)
		}
		if d.mass[i] < 0 || math.IsNaN(d.mass[i]) || math.IsInf(d.mass[i], 0) {
			return nil, fmt.Errorf("hist: delta cell %d has invalid mass %v", i, d.mass[i])
		}
	}

	out := newMultiFromPool(ndims, len(m.keys)+len(d.keys))
	// Boundary slices are immutable and routinely shared between
	// histograms (see PutMulti); the merged epoch keeps the old grid.
	copy(out.bounds, m.bounds)
	// Cells whose merged mass is exactly zero (fully decayed, or a
	// zero-mass delta entry) are dropped, not stored: the columnar
	// arrays only ever hold occupied cells.
	emit := func(key PackedKey, p float64) {
		if p == 0 {
			return
		}
		out.keys = append(out.keys, key)
		out.probs = append(out.probs, p)
	}
	i, j := 0, 0
	for i < len(m.keys) && j < len(d.keys) {
		switch {
		case m.keys[i] == d.keys[j]:
			emit(m.keys[i], m.probs[i]*scale+d.mass[j])
			i++
			j++
		case m.keys[i].Less(d.keys[j]):
			emit(m.keys[i], m.probs[i]*scale)
			i++
		default:
			emit(d.keys[j], d.mass[j])
			j++
		}
	}
	for ; i < len(m.keys); i++ {
		emit(m.keys[i], m.probs[i]*scale)
	}
	for ; j < len(d.keys); j++ {
		emit(d.keys[j], d.mass[j])
	}
	return out, nil
}

// MergeCounts is the 1-D analogue of MergeDelta for rank-1 variables:
// it returns a histogram on the receiver's frozen bucket grid whose
// unnormalized mass is oldWeight×(existing probability) plus the
// per-bucket count of the new samples, renormalized. Samples that
// fall outside the support (or into a gap between buckets) clamp to
// the nearest bucket, matching BinClamped semantics.
func (h *Histogram) MergeCounts(samples []float64, oldWeight float64) (*Histogram, error) {
	if oldWeight < 0 || math.IsNaN(oldWeight) || math.IsInf(oldWeight, 0) {
		return nil, fmt.Errorf("hist: invalid merge weight %v", oldWeight)
	}
	if len(h.buckets) == 0 {
		return nil, fmt.Errorf("hist: cannot merge into empty histogram")
	}
	bs := make([]Bucket, len(h.buckets))
	copy(bs, h.buckets)
	for i := range bs {
		bs[i].Pr *= oldWeight
	}
	for _, v := range samples {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("hist: NaN sample in merge")
		}
		bs[h.bucketIndexClamped(v)].Pr++
	}
	return fromBucketsOwned(bs)
}

// bucketIndexClamped returns the index of the bucket a value falls
// into, clamping values below the support to the first bucket and
// values at or above the top boundary to the last. Values in a gap
// between disjoint buckets round up to the next bucket.
func (h *Histogram) bucketIndexClamped(v float64) int {
	i := sort.Search(len(h.buckets), func(i int) bool { return v < h.buckets[i].Hi })
	if i == len(h.buckets) {
		return len(h.buckets) - 1
	}
	return i
}
